#!/usr/bin/env bash
# Tier-1 verification gate. Everything runs --offline: the repo has zero
# external dependencies (randomness, property testing and benchmarking all
# come from the in-tree picachu-testkit crate), so a clean checkout must
# build and test without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== clippy (all targets, warnings are errors) =="
# picachu-{compiler,core,runtime,faults} additionally deny
# clippy::unwrap_used / clippy::expect_used in-source (crate attributes in
# each lib.rs), so a new unwrap on the compile/serve path fails this stage.
cargo clippy --all-targets --offline -- -D warnings

echo "== test (workspace, offline) =="
cargo test -q --offline

echo "== backend parity (Accelerator contract across all six devices) =="
cargo test -q -p picachu --test backends --offline

echo "== differential oracle (smoke grid) =="
PICACHU_ORACLE_SMOKE=1 cargo test -q -p picachu-oracle --test differential --offline

echo "== fault oracle (smoke sweep: dead PEs/links + seeded plans) =="
PICACHU_FAULT_SMOKE=1 cargo test -q -p picachu-oracle --test faults --offline

echo "== test (workspace, offline, PICACHU_THREADS=4) =="
PICACHU_THREADS=4 cargo test -q --offline

echo "== serve smoke (short seeded trace: invariants + JSON emission) =="
cargo run --release -q -p picachu-bench --bin serve_bench --offline -- --smoke

echo "== bench smoke (one call per benchmark, offline) =="
cargo bench -p picachu-bench --offline -- --smoke

echo "== parallel-compile microbench (serial vs parallel, median/p95) =="
mkdir -p results
cargo bench -p picachu-bench --bench compile --offline \
  | tee results/BENCH_compile.json

echo "verify: OK"
