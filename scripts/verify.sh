#!/usr/bin/env bash
# Tier-1 verification gate. Everything runs --offline: the repo has zero
# external dependencies (randomness, property testing and benchmarking all
# come from the in-tree picachu-testkit crate), so a clean checkout must
# build and test without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== test (workspace, offline) =="
cargo test -q --offline

echo "== bench smoke (one call per benchmark, offline) =="
cargo bench -p picachu-bench --offline -- --smoke

echo "verify: OK"
