#!/usr/bin/env bash
# Tier-1 verification gate. Everything runs --offline: the repo has zero
# external dependencies (randomness, property testing and benchmarking all
# come from the in-tree picachu-testkit crate), so a clean checkout must
# build and test without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== clippy (all targets, warnings are errors) =="
# picachu-{compiler,core,runtime,faults} additionally deny
# clippy::unwrap_used / clippy::expect_used in-source (crate attributes in
# each lib.rs), so a new unwrap on the compile/serve path fails this stage.
cargo clippy --all-targets --offline -- -D warnings

echo "== test (workspace, offline) =="
cargo test -q --offline

echo "== backend parity (Accelerator contract across all six devices) =="
cargo test -q -p picachu --test backends --offline

echo "== differential oracle (smoke grid) =="
PICACHU_ORACLE_SMOKE=1 cargo test -q -p picachu-oracle --test differential --offline

echo "== fault oracle (smoke sweep: dead PEs/links + seeded plans) =="
PICACHU_FAULT_SMOKE=1 cargo test -q -p picachu-oracle --test faults --offline

echo "== test (workspace, offline, PICACHU_THREADS=4) =="
PICACHU_THREADS=4 cargo test -q --offline

echo "== serve smoke (short seeded trace: invariants + JSON emission) =="
cargo run --release -q -p picachu-bench --bin serve_bench --offline -- --smoke

echo "== soak smoke (chaos: crash/retry/preempt/shed invariants, thread-invariant artifact) =="
# The chaos soak's --smoke mode replays a short trace under the full chaos
# schedule (in-binary: audit + replay bit-exactness + event floor). On top
# of that the gate checks the artifact schema, the availability floor, and
# that the artifact is byte-identical at 1 and 4 compile threads. Runs from
# a scratch directory so the committed full-run artifact stays untouched.
REPO_ROOT=$(pwd)
SOAK_SCRATCH=$(mktemp -d)
(cd "$SOAK_SCRATCH" && PICACHU_THREADS=1 "$REPO_ROOT/target/release/serve_soak" --smoke)
mv "$SOAK_SCRATCH/results/BENCH_soak.json" "$SOAK_SCRATCH/soak.t1.json"
(cd "$SOAK_SCRATCH" && PICACHU_THREADS=4 "$REPO_ROOT/target/release/serve_soak" --smoke)
cmp "$SOAK_SCRATCH/results/BENCH_soak.json" "$SOAK_SCRATCH/soak.t1.json" \
  || { echo "soak smoke: FAILED (artifact differs between 1 and 4 threads)"; exit 1; }
python3 - "$SOAK_SCRATCH/results/BENCH_soak.json" <<'EOF'
import json, sys
required = {"mode", "seed", "shards", "requests", "events", "horizon_ns",
            "chaos_crashes", "chaos_degradations", "chaos_compile_outages",
            "completed", "rejected", "shed", "abandoned", "retries",
            "preemptions", "killed_batches", "wasted_ns", "availability",
            "shed_rate", "retry_amplification", "p50_latency_ns",
            "p99_latency_ns", "p99_ttft_ns", "slo_attainment",
            "throughput_tokens_per_s", "audit_ok"}
rows = [json.loads(l) for l in open(sys.argv[1]) if l.strip().startswith("{")]
if len(rows) != 1:
    sys.exit(f"soak smoke: expected 1 artifact row, got {len(rows)}")
r = rows[0]
missing = required - r.keys()
if missing:
    sys.exit(f"soak smoke: row missing keys {sorted(missing)}")
if not r["audit_ok"]:
    sys.exit("soak smoke: scheduler audit violated under chaos")
if r["availability"] < 0.6:
    sys.exit(f"soak smoke: availability {r['availability']:.3f} below the 0.6 floor")
print(f"soak smoke: OK ({r['events']} events, availability {r['availability']:.3f}, "
      f"{r['preemptions']} preemptions, {r['shed']} shed, thread-count invariant)")
EOF
rm -rf "$SOAK_SCRATCH"

echo "== bench smoke (one call per benchmark, offline) =="
cargo bench -p picachu-bench --offline -- --smoke

echo "== parallel-compile microbench (serial vs parallel @4 threads, median/p95) =="
mkdir -p results
PICACHU_THREADS=4 cargo bench -p picachu-bench --bench compile --offline \
  | tee results/BENCH_compile.json

echo "== compile speedup gate (cold parallel vs cold serial) =="
# The flat grouped compile pass must make cold compiles measurably faster
# than the serial path when real parallelism exists. Thresholds scale with
# the machine: skipped on 1 core (the pool cannot help), >=1.2x on 2-3
# cores, >=2.0x on 4+ (the ISSUE acceptance bar).
python3 - <<'EOF'
import json, os, sys
cores = os.cpu_count() or 1
rows = {}
with open("results/BENCH_compile.json") as f:
    for line in f:
        line = line.strip()
        if not line.startswith("{"):
            continue
        r = json.loads(line)
        if "bench" in r and "median_ns" in r:
            rows[r["bench"]] = r["median_ns"]
serial = rows.get("kernel_library_cold_serial")
parallel = rows.get("kernel_library_cold_parallel")
if not serial or not parallel:
    sys.exit("speedup gate: cold serial/parallel rows missing from BENCH_compile.json")
speedup = serial / parallel
print(f"cold compile speedup: {speedup:.2f}x on {cores} cores")
if cores < 2:
    print("speedup gate: SKIPPED (single-core machine, the pool cannot help)")
elif cores < 4 and speedup < 1.2:
    sys.exit(f"speedup gate: FAILED ({speedup:.2f}x < 1.2x on {cores} cores)")
elif cores >= 4 and speedup < 2.0:
    sys.exit(f"speedup gate: FAILED ({speedup:.2f}x < 2.0x on {cores} cores)")
else:
    print("speedup gate: OK")
EOF

echo "== mapstore round-trip smoke (cold compile -> store -> warm, bit-identical) =="
cargo test -q -p picachu --test mapstore_store_roundtrip --offline

echo "== bitstream round-trip smoke (16x16 export -> fresh cache -> zero mapper calls) =="
cargo test -q -p picachu --test bitstream_roundtrip --offline

echo "== pnr smoke (staged P&R: paper-scale bit-identity + 16x16 payoff, thread-invariant) =="
# pnr_scaling --smoke maps softmax on 4x4 (greedy fast path) and 16x16
# (annealed Place->Route->Fold). The gate checks the artifact schema, that
# Auto==Greedy stays bit-identical at paper scale, that the annealed engine
# demonstrates a payoff at 16x16, and that the artifact is byte-identical at
# 1 and 4 compile threads. Scratch directory keeps the committed full-run
# artifact untouched.
PNR_SCRATCH=$(mktemp -d)
(cd "$PNR_SCRATCH" && PICACHU_THREADS=1 "$REPO_ROOT/target/release/pnr_scaling" --smoke)
mv "$PNR_SCRATCH/results/BENCH_pnr.json" "$PNR_SCRATCH/pnr.t1.json"
(cd "$PNR_SCRATCH" && PICACHU_THREADS=4 "$REPO_ROOT/target/release/pnr_scaling" --smoke)
cmp "$PNR_SCRATCH/results/BENCH_pnr.json" "$PNR_SCRATCH/pnr.t1.json" \
  || { echo "pnr smoke: FAILED (artifact differs between 1 and 4 threads)"; exit 1; }
python3 - "$PNR_SCRATCH/results/BENCH_pnr.json" <<'EOF'
import json, sys
case_keys = {"kind", "loop", "uf", "rows", "cols", "tiles", "mode", "ok", "ii",
             "area", "chan_util", "folded_hops", "congestion_free"}
rows = [json.loads(l) for l in open(sys.argv[1]) if l.strip().startswith("{")]
cases = [r for r in rows if r.get("kind") == "case"]
idents = [r for r in rows if r.get("kind") == "identity"]
summaries = [r for r in rows if r.get("kind") == "summary"]
if not cases:
    sys.exit("pnr smoke: no case rows")
for r in cases:
    missing = case_keys - r.keys()
    if missing:
        sys.exit(f"pnr smoke: case row missing keys {sorted(missing)}")
if not idents:
    sys.exit("pnr smoke: no paper-scale identity rows")
for r in idents:
    if not r["bit_identical"]:
        sys.exit(f"pnr smoke: Auto != Greedy at {r['rows']}x{r['cols']} (paper-scale regression)")
if len(summaries) != 1:
    sys.exit(f"pnr smoke: expected 1 summary row, got {len(summaries)}")
s = summaries[0]
if s["payoff_kind"] == "none":
    sys.exit("pnr smoke: annealed engine shows no payoff at the largest fabric")
print(f"pnr smoke: OK ({len(cases)} cases, identity at paper scale, "
      f"payoff {s['payoff_kind']} on {s['payoff_kernel']}, thread-count invariant)")
EOF
rm -rf "$PNR_SCRATCH"

echo "== dse smoke (seeded mini-search: artifact schema + thread-count invariance) =="
# The co-design search must emit a non-empty, schema-valid results/pareto.json
# and the artifact must be bit-identical at 1 and 4 worker threads (the search
# parallelizes candidate evaluation but is seeded and submission-ordered).
PICACHU_THREADS=1 cargo run --release -q -p picachu-bench --bin dse_pareto --offline -- --smoke
cp results/pareto.json results/pareto.t1.json
PICACHU_THREADS=4 cargo run --release -q -p picachu-bench --bin dse_pareto --offline -- --smoke
cmp results/pareto.json results/pareto.t1.json \
  || { echo "dse smoke: FAILED (pareto.json differs between 1 and 4 threads)"; exit 1; }
rm -f results/pareto.t1.json
python3 - <<'EOF'
import json, sys
required = {"model", "cgra_rows", "cgra_cols", "fabric", "buffer_kb", "format",
            "lean_unroll", "incremental_repair", "latency", "energy_nj",
            "area_mm2", "resilience", "utilization"}
rows = 0
with open("results/pareto.json") as f:
    for line in f:
        line = line.strip()
        if not line.startswith("{"):
            continue
        r = json.loads(line)
        missing = required - r.keys()
        if missing:
            sys.exit(f"dse smoke: row missing keys {sorted(missing)}")
        rows += 1
if rows == 0:
    sys.exit("dse smoke: results/pareto.json has no frontier rows")
print(f"dse smoke: OK ({rows} frontier rows, thread-count invariant)")
EOF

echo "verify: OK"
