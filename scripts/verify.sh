#!/usr/bin/env bash
# Tier-1 verification gate. Everything runs --offline: the repo has zero
# external dependencies (randomness, property testing and benchmarking all
# come from the in-tree picachu-testkit crate), so a clean checkout must
# build and test without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== clippy (all targets, warnings are errors) =="
# picachu-{compiler,core,runtime,faults} additionally deny
# clippy::unwrap_used / clippy::expect_used in-source (crate attributes in
# each lib.rs), so a new unwrap on the compile/serve path fails this stage.
cargo clippy --all-targets --offline -- -D warnings

echo "== test (workspace, offline) =="
cargo test -q --offline

echo "== backend parity (Accelerator contract across all six devices) =="
cargo test -q -p picachu --test backends --offline

echo "== differential oracle (smoke grid) =="
PICACHU_ORACLE_SMOKE=1 cargo test -q -p picachu-oracle --test differential --offline

echo "== fault oracle (smoke sweep: dead PEs/links + seeded plans) =="
PICACHU_FAULT_SMOKE=1 cargo test -q -p picachu-oracle --test faults --offline

echo "== test (workspace, offline, PICACHU_THREADS=4) =="
PICACHU_THREADS=4 cargo test -q --offline

echo "== serve smoke (short seeded trace: invariants + JSON emission) =="
cargo run --release -q -p picachu-bench --bin serve_bench --offline -- --smoke

echo "== bench smoke (one call per benchmark, offline) =="
cargo bench -p picachu-bench --offline -- --smoke

echo "== parallel-compile microbench (serial vs parallel @4 threads, median/p95) =="
mkdir -p results
PICACHU_THREADS=4 cargo bench -p picachu-bench --bench compile --offline \
  | tee results/BENCH_compile.json

echo "== compile speedup gate (cold parallel vs cold serial) =="
# The flat grouped compile pass must make cold compiles measurably faster
# than the serial path when real parallelism exists. Thresholds scale with
# the machine: skipped on 1 core (the pool cannot help), >=1.2x on 2-3
# cores, >=2.0x on 4+ (the ISSUE acceptance bar).
python3 - <<'EOF'
import json, os, sys
cores = os.cpu_count() or 1
rows = {}
with open("results/BENCH_compile.json") as f:
    for line in f:
        line = line.strip()
        if not line.startswith("{"):
            continue
        r = json.loads(line)
        if "bench" in r and "median_ns" in r:
            rows[r["bench"]] = r["median_ns"]
serial = rows.get("kernel_library_cold_serial")
parallel = rows.get("kernel_library_cold_parallel")
if not serial or not parallel:
    sys.exit("speedup gate: cold serial/parallel rows missing from BENCH_compile.json")
speedup = serial / parallel
print(f"cold compile speedup: {speedup:.2f}x on {cores} cores")
if cores < 2:
    print("speedup gate: SKIPPED (single-core machine, the pool cannot help)")
elif cores < 4 and speedup < 1.2:
    sys.exit(f"speedup gate: FAILED ({speedup:.2f}x < 1.2x on {cores} cores)")
elif cores >= 4 and speedup < 2.0:
    sys.exit(f"speedup gate: FAILED ({speedup:.2f}x < 2.0x on {cores} cores)")
else:
    print("speedup gate: OK")
EOF

echo "== mapstore round-trip smoke (cold compile -> store -> warm, bit-identical) =="
cargo test -q -p picachu --test mapstore_store_roundtrip --offline

echo "== dse smoke (seeded mini-search: artifact schema + thread-count invariance) =="
# The co-design search must emit a non-empty, schema-valid results/pareto.json
# and the artifact must be bit-identical at 1 and 4 worker threads (the search
# parallelizes candidate evaluation but is seeded and submission-ordered).
PICACHU_THREADS=1 cargo run --release -q -p picachu-bench --bin dse_pareto --offline -- --smoke
cp results/pareto.json results/pareto.t1.json
PICACHU_THREADS=4 cargo run --release -q -p picachu-bench --bin dse_pareto --offline -- --smoke
cmp results/pareto.json results/pareto.t1.json \
  || { echo "dse smoke: FAILED (pareto.json differs between 1 and 4 threads)"; exit 1; }
rm -f results/pareto.t1.json
python3 - <<'EOF'
import json, sys
required = {"model", "cgra_rows", "cgra_cols", "fabric", "buffer_kb", "format",
            "lean_unroll", "incremental_repair", "latency", "energy_nj",
            "area_mm2", "resilience", "utilization"}
rows = 0
with open("results/pareto.json") as f:
    for line in f:
        line = line.strip()
        if not line.startswith("{"):
            continue
        r = json.loads(line)
        missing = required - r.keys()
        if missing:
            sys.exit(f"dse smoke: row missing keys {sorted(missing)}")
        rows += 1
if rows == 0:
    sys.exit("dse smoke: results/pareto.json has no frontier rows")
print(f"dse smoke: OK ({rows} frontier rows, thread-count invariant)")
EOF

echo "verify: OK"
