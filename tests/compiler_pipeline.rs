//! Compiler-pipeline integration tests: every transform composition over the
//! whole kernel library, with the cycle simulator as the dynamic checker of
//! every static schedule (it asserts operand arrival internally).

use picachu_cgra::{CgraConfig, CgraSimulator};
use picachu_compiler::arch::CgraSpec;
use picachu_compiler::mapper::{map_dfg, min_ii};
use picachu_compiler::transform::{
    count_patterns, fuse_patterns, lower_special_ops, unroll, vectorize,
};
use picachu_ir::kernels::kernel_library;

/// unroll → fuse → vectorize → map → simulate, for every kernel loop and a
/// grid of factors. The simulator panics on any dataflow violation, so this
/// is a broad consistency sweep over the whole compilation space.
#[test]
fn transform_grid_maps_and_simulates() {
    let spec = CgraSpec::picachu(4, 4);
    for k in kernel_library(3) {
        for l in &k.loops {
            for uf in [1usize, 2] {
                for vf in [1usize, 4] {
                    let mut dfg = fuse_patterns(&unroll(&l.dfg, uf));
                    if vf > 1 {
                        dfg = vectorize(&dfg, vf).dfg;
                    }
                    let Ok(m) = map_dfg(&dfg, &spec, 21) else {
                        panic!("{} UF{uf} VF{vf} failed to map", l.label);
                    };
                    let cfg = CgraConfig::from_mapping(&dfg, &m, &spec);
                    let rep = CgraSimulator::new(&spec, &dfg, &cfg).run(32);
                    assert_eq!(rep.iterations, 32, "{} UF{uf} VF{vf}", l.label);
                }
            }
        }
    }
}

/// Fusion + unrolling conserve the primitive work regardless of order of
/// composition with lowering on the baseline path.
#[test]
fn work_conservation_across_paths() {
    for k in kernel_library(4) {
        for l in &k.loops {
            let base_ops = l.dfg.primitive_op_count();
            // PICACHU path: unrolling replicates the body but keeps the 4
            // control ops and every reduction φ single
            let reduction_phis = l
                .dfg
                .nodes()
                .iter()
                .filter(|n| n.op == picachu_ir::Opcode::Phi)
                .count()
                - 1; // minus the induction φ
            for uf in [1usize, 2, 4] {
                let u = unroll(&l.dfg, uf);
                let f = fuse_patterns(&u);
                let expected = base_ops + (uf - 1) * (base_ops - 4 - reduction_phis);
                assert_eq!(u.primitive_op_count(), expected, "{} UF{uf}", l.label);
                assert_eq!(f.primitive_op_count(), expected, "{} UF{uf} fused", l.label);
            }
            // baseline path only grows work (special-op emulation)
            let low = lower_special_ops(&l.dfg);
            assert!(low.primitive_op_count() >= base_ops, "{}", l.label);
        }
    }
}

/// Achieved II never beats the theoretical lower bound, and fusion never
/// raises the lower bound.
#[test]
fn ii_respects_lower_bounds() {
    let spec = CgraSpec::picachu(4, 4);
    for k in kernel_library(4) {
        for l in &k.loops {
            let fused = fuse_patterns(&l.dfg);
            let bound = min_ii(&fused, &spec).expect("mappable ops");
            let m = map_dfg(&fused, &spec, 3).expect("maps");
            assert!(m.ii >= bound, "{}: II {} < bound {bound}", l.label, m.ii);
        }
    }
}

/// The pattern counts reported by Table 4's experiment match what fusion
/// actually fuses (counting is a dry run of the same grouping).
#[test]
fn count_and_fuse_agree() {
    for k in kernel_library(4) {
        for l in &k.loops {
            let counts = count_patterns(&l.dfg);
            let fused = fuse_patterns(&l.dfg);
            let fused_nodes = fused.nodes().iter().filter(|n| n.op.is_fused()).count();
            assert_eq!(counts.total(), fused_nodes, "{}", l.label);
        }
    }
}

/// Bigger fabrics never increase the resource-constrained lower bound.
#[test]
fn res_mii_monotone_in_fabric_size() {
    use picachu_compiler::mapper::res_mii;
    for k in kernel_library(4) {
        for l in &k.loops {
            let fused = fuse_patterns(&unroll(&l.dfg, 4));
            let small = res_mii(&fused, &CgraSpec::picachu(3, 3)).expect("ok");
            let big = res_mii(&fused, &CgraSpec::picachu(5, 5)).expect("ok");
            assert!(big <= small, "{}: {big} > {small}", l.label);
        }
    }
}
