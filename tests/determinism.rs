//! Thread-count determinism: the parallel compilation service must be
//! semantically invisible. `PICACHU_THREADS=1` and `PICACHU_THREADS=8` (here
//! driven through the runtime's programmatic override, which takes precedence
//! over the environment) must produce bit-identical `Mapping`s for the full
//! kernel library, bit-identical `Breakdown`s for end-to-end execution, and
//! bit-identical search results for a `dse::search` run.
//!
//! The compile cache is cleared between runs so every configuration actually
//! re-compiles — otherwise the second run would trivially replay the first
//! run's cached mappings and the test would prove nothing.
//!
//! The serving half extends the contract one layer up: a full
//! `picachu-serve` run over a PICACHU-backed pool (whose shard
//! construction and degraded-compile path both go through the parallel
//! compile service) must produce identical per-request records at 1 and 4
//! threads — and the same must hold under a full chaos schedule (crashes,
//! retries, preemption and shedding in the loop) at 1 and 8 threads.

use picachu::compile_cache;
use picachu::compiler::mapper::Mapping;
use picachu::dse::{search, SearchConfig, SearchResult};
use picachu::engine::{EngineConfig, PicachuEngine};
use picachu::runtime;
use picachu::Breakdown;
use picachu::faults::FaultPlan;
use picachu_llm::ModelConfig;
use picachu_nonlinear::NonlinearOp;
use picachu_num::DataFormat;
use picachu_serve::{
    chaos_schedule, run, ArrivalPattern, ChaosConfig, FaultEvent, RetryPolicy, ServeConfig,
    ServeReport, ShardSpec, Tenant,
};

struct Snapshot {
    mappings: Vec<(String, Mapping)>,
    breakdown: Breakdown,
    dse: SearchResult,
}

fn snapshot(threads: usize) -> Snapshot {
    runtime::set_thread_override(Some(threads));
    compile_cache::clear();

    // full kernel library, both formats (FP16 scalar + INT16 vectorized)
    let mut mappings = Vec::new();
    for format in [DataFormat::Fp16, DataFormat::Int16] {
        let mut engine =
            PicachuEngine::new(EngineConfig { format, ..EngineConfig::default() });
        for op in NonlinearOp::ALL {
            for (i, l) in engine.compile_op(op).to_vec().into_iter().enumerate() {
                mappings.push((format!("{format}/{op:?}/{i}"), l.mapping));
            }
        }
    }

    // end-to-end breakdown on a fresh engine (hits the cache warmed above)
    let mut engine = PicachuEngine::new(EngineConfig::default());
    let breakdown = engine.execute_model(&ModelConfig::gpt2(), 128);

    // a DSE mini-search (parallel over candidates at `threads > 1`)
    let dse = search(&ModelConfig::gpt2(), &SearchConfig::smoke(99));

    runtime::set_thread_override(None);
    Snapshot { mappings, breakdown, dse }
}

#[test]
fn threads_1_and_8_are_bit_identical() {
    let serial = snapshot(1);
    let parallel = snapshot(8);

    assert_eq!(serial.mappings.len(), parallel.mappings.len());
    for ((name_s, m_s), (name_p, m_p)) in
        serial.mappings.iter().zip(parallel.mappings.iter())
    {
        assert_eq!(name_s, name_p);
        assert_eq!(m_s, m_p, "{name_s}: mapping diverged between 1 and 8 threads");
    }

    assert_eq!(
        serial.breakdown, parallel.breakdown,
        "end-to-end breakdown diverged between 1 and 8 threads"
    );

    assert_eq!(serial.dse.evaluated.len(), parallel.dse.evaluated.len());
    for (a, b) in serial.dse.evaluated.iter().zip(parallel.dse.evaluated.iter()) {
        assert_eq!(a, b, "DSE point diverged between 1 and 8 threads");
    }
    assert_eq!(serial.dse.frontier, parallel.dse.frontier);
}

/// One full serving run over a PICACHU + Gemmini pool, with a mid-trace
/// fault so the degraded-compile path (also parallel) is on the critical
/// path of the schedule.
fn serve_snapshot(threads: usize) -> ServeReport {
    runtime::set_thread_override(Some(threads));
    compile_cache::clear();
    let cfg = ServeConfig {
        seed: 0xDE7E_2217,
        n_requests: 30,
        max_batch: 4,
        log_batches: true,
        faults: vec![FaultEvent {
            at_ns: 40_000_000,
            shard: 0,
            plan: FaultPlan::dead_tile(5),
        }],
        ..ServeConfig::new(
            vec![Tenant {
                name: "t",
                model: ModelConfig {
                    name: "tiny-serve-det",
                    layers: 1,
                    d_model: 64,
                    n_heads: 4,
                    d_ff: 128,
                    ..ModelConfig::gpt2()
                },
                weight: 1,
                prompt: 24,
                decode: (2, 4),
                slo_ns: u64::MAX,
                priority: 0,
            }],
            ArrivalPattern::Bursty { mean_gap_ns: 200_000.0, mean_burst: 3 },
            vec![ShardSpec::picachu(), ShardSpec::Gemmini],
        )
    };
    let report = run(&cfg);
    runtime::set_thread_override(None);
    report
}

#[test]
fn serving_run_is_thread_count_invariant() {
    let serial = serve_snapshot(1);
    let parallel = serve_snapshot(4);

    serial.audit.check().unwrap();
    assert_eq!(
        serial.records, parallel.records,
        "per-request records diverged between 1 and 4 threads"
    );
    assert_eq!(
        serial.batch_log, parallel.batch_log,
        "batch schedule diverged between 1 and 4 threads"
    );
    assert_eq!(serial, parallel, "full serving report diverged");
}

/// The chaos extension of the serving snapshot: two priority tenants,
/// preemption and shedding on, and a generated chaos schedule (crashes +
/// degradations + a compile outage) over a PICACHU + Gemmini pool — the
/// crash-retry and degraded-recompile paths all ride the parallel compile
/// service and must still be schedule-invisible.
fn chaos_snapshot(threads: usize) -> ServeReport {
    runtime::set_thread_override(Some(threads));
    compile_cache::clear();
    let tiny = |name: &'static str| ModelConfig {
        name,
        layers: 1,
        d_model: 64,
        n_heads: 4,
        d_ff: 128,
        ..ModelConfig::gpt2()
    };
    let tenants = vec![
        Tenant {
            name: "hi",
            model: tiny("tiny-chaos-hi"),
            weight: 2,
            prompt: 24,
            decode: (2, 4),
            slo_ns: 1 << 33,
            priority: 0,
        },
        Tenant {
            name: "lo",
            model: tiny("tiny-chaos-lo"),
            weight: 1,
            prompt: 16,
            decode: (2, 6),
            slo_ns: 1 << 34,
            priority: 1,
        },
    ];
    let pool = vec![ShardSpec::picachu(), ShardSpec::Gemmini];
    let cfg = ServeConfig {
        seed: 0xC4A0_2217,
        n_requests: 60,
        max_batch: 4,
        log_batches: true,
        chaos: chaos_schedule(&ChaosConfig::new(11, 20_000_000), pool.len()),
        retry: RetryPolicy::new(3, 250_000),
        preempt: true,
        shed_deadline_factor: Some(6.0),
        ..ServeConfig::new(
            tenants,
            ArrivalPattern::Bursty { mean_gap_ns: 150_000.0, mean_burst: 4 },
            pool,
        )
    };
    let report = run(&cfg);
    runtime::set_thread_override(None);
    report
}

#[test]
fn chaos_serving_run_is_thread_count_invariant() {
    let serial = chaos_snapshot(1);
    let parallel = chaos_snapshot(8);

    serial.audit.check().unwrap();
    assert!(serial.audit.completed > 0, "chaos must not starve the trace");
    assert_eq!(
        serial.records, parallel.records,
        "per-request records diverged between 1 and 8 threads under chaos"
    );
    assert_eq!(serial, parallel, "full chaos serving report diverged");
}
