//! Degenerate-shape and degenerate-geometry coverage: 0-element ops,
//! single-iteration loops, buffers smaller than one channel row, and 1×1
//! fabric/systolic grids must produce sane zero-or-positive costs — never
//! a panic, an underflow wraparound, or a NaN.

use picachu::engine::{EngineConfig, PicachuEngine};
use picachu::faults::FaultPlan;
use picachu_llm::trace::TraceOp;
use picachu_cgra::{CgraConfig, CgraSimulator};
use picachu_compiler::arch::CgraSpec;
use picachu_compiler::mapper::{map_dfg, map_dfg_mode, map_dfg_with, PnrMode, ResourceMask};
use picachu_compiler::transform::{fuse_patterns, unroll};
use picachu_ir::kernels::{kernel_library, relu_kernel};
use picachu_nonlinear::NonlinearOp;
use picachu_systolic::{DmaModel, SharedBuffer, SystolicArray};

fn finite_and_nonnegative(b: &picachu::Breakdown) {
    for (name, v) in [
        ("gemm", b.gemm),
        ("nonlinear", b.nonlinear),
        ("dm", b.data_movement),
        ("overhead", b.overhead),
    ] {
        assert!(v.is_finite() && v >= 0.0, "{name} = {v}");
    }
}

#[test]
fn zero_element_ops_cost_nothing() {
    let mut e = PicachuEngine::new(EngineConfig::default());
    for op in NonlinearOp::ALL {
        assert_eq!(e.nonlinear_compute_cycles(op, 0, 64), 0, "{op:?} rows=0");
        assert_eq!(e.nonlinear_compute_cycles(op, 64, 0), 0, "{op:?} channel=0");
        assert_eq!(e.nonlinear_compute_cycles(op, 0, 0), 0, "{op:?} empty");
    }
}

#[test]
fn zero_shape_traces_execute_cleanly() {
    let mut e = PicachuEngine::new(EngineConfig::default());
    for op in NonlinearOp::ALL {
        for (rows, channel) in [(0usize, 64usize), (64, 0), (0, 0)] {
            let trace = [
                TraceOp::Gemm { m: rows, k: 16, n: channel, count: 1 },
                TraceOp::Nonlinear { op, rows, channel },
            ];
            let b = e.execute_trace(&trace);
            finite_and_nonnegative(&b);
            assert_eq!(b.nonlinear, 0.0, "{op:?} {rows}x{channel} costs compute");
        }
    }
}

#[test]
fn single_element_runs_one_iteration() {
    // elements < elements_per_ii collapses to one iteration: exactly the
    // prologue, on both the analytical and the simulated path.
    let mut e = PicachuEngine::new(EngineConfig::default());
    for op in NonlinearOp::ALL {
        let loops = e.compile_op(op).to_vec();
        for (i, l) in loops.iter().enumerate() {
            assert_eq!(l.cycles(1), l.mapping.schedule_len as u64, "{}", l.label);
            let dfg = e.lowered_dfg(op, i, l.uf, l.vf);
            let cfg = CgraConfig::from_mapping(&dfg, &l.mapping, e.spec());
            let r = CgraSimulator::new(e.spec(), &dfg, &cfg).run(1);
            assert_eq!(r.cycles, l.cycles(1), "{}", l.label);
        }
        let b = e.execute_trace(&[TraceOp::Nonlinear { op, rows: 1, channel: 1 }]);
        finite_and_nonnegative(&b);
        assert!(b.nonlinear > 0.0, "{op:?} 1x1 must cost at least the prologue");
    }
}

#[test]
fn buffer_smaller_than_one_channel_row() {
    // 1 KB buffer => 256-byte working set; a 4096-element FP16 channel is
    // 8 KB => hard Case 2 with many chunks per row. Must stay finite and
    // strictly more expensive than the roomy default.
    let total = |kb: usize| {
        let mut e =
            PicachuEngine::new(EngineConfig { buffer_kb: kb, ..EngineConfig::default() });
        let b = e.execute_trace(&[TraceOp::Nonlinear {
            op: NonlinearOp::LayerNorm,
            rows: 8,
            channel: 4096,
        }]);
        finite_and_nonnegative(&b);
        b.total()
    };
    assert!(total(1) > total(40), "starved buffer must pay for DMA round trips");

    let tiny = SharedBuffer::new_kb(1);
    assert!(!tiny.channel_fits(4096, 2));
    // chunks = 0 must short-circuit, not divide by zero
    assert_eq!(tiny.pipelined_cycles(0, 256, 10, &DmaModel::default()), 0);
}

#[test]
fn one_by_one_fabric_compiles_and_simulates() {
    let mut e = PicachuEngine::new(EngineConfig {
        cgra_rows: 1,
        cgra_cols: 1,
        unroll_candidates: vec![1],
        ..EngineConfig::default()
    });
    assert_eq!(e.spec().len(), 1);
    for op in [NonlinearOp::Relu, NonlinearOp::Softmax, NonlinearOp::Gelu] {
        let loops = e.compile_op(op).to_vec();
        for (i, l) in loops.iter().enumerate() {
            // every node shares the single tile: II >= node count, 0 hops
            let dfg = e.lowered_dfg(op, i, l.uf, l.vf);
            assert!(l.mapping.ii as usize >= dfg.len(), "{}", l.label);
            let cfg = CgraConfig::from_mapping(&dfg, &l.mapping, e.spec());
            let r = CgraSimulator::new(e.spec(), &dfg, &cfg).run(16);
            assert_eq!(r.cycles, l.mapping.cycles_for(16), "{}", l.label);
            assert_eq!(r.noc_hops, 0, "{} routed off a 1x1 grid", l.label);
        }
    }
}

#[test]
fn one_by_one_fabric_maps_relu_directly() {
    let spec = CgraSpec::picachu(1, 1);
    let d = fuse_patterns(&relu_kernel().loops[0].dfg);
    let m = map_dfg(&d, &spec, 17).expect("relu maps on a single universal tile");
    assert!(m.ii as usize >= d.len());
}

#[test]
fn all_but_one_tile_dead_degrades_like_a_one_by_one_fabric() {
    // A 4×4 universal fabric with 15 dead PEs is functionally a 1×1 grid:
    // relu must still map (II >= node count, zero hops — every node shares
    // the survivor) and simulate under the matching fault plan.
    let spec = CgraSpec::universal(4, 4);
    let mut plan = FaultPlan::none();
    for t in 0..15 {
        plan = plan.with_dead_tile(t);
    }
    let mask = ResourceMask::degraded(&spec, plan.dead_tiles.iter().copied(), []);
    assert_eq!(mask.alive_count(), 1);
    let d = fuse_patterns(&relu_kernel().loops[0].dfg);
    let m = map_dfg_with(&d, &spec, 17, &mask, None)
        .expect("relu maps on the lone surviving universal tile");
    assert!(m.ii as usize >= d.len());
    for p in &m.placements {
        assert_eq!(p.tile, 15, "only tile 15 is alive");
    }
    let cfg = CgraConfig::from_mapping(&d, &m, &spec);
    let run = CgraSimulator::new(&spec, &d, &cfg)
        .run_faulted(16, &plan)
        .expect("degraded mapping simulates under its own plan");
    assert_eq!(run.report.cycles, m.cycles_for(16));
    assert_eq!(run.report.noc_hops, 0, "a single survivor routes nowhere");
}

#[test]
fn single_surviving_serpentine_route_still_maps() {
    // Kill every mesh link except a serpentine path
    // 0-1-2-3 | 3-7 | 7-6-5-4 | 4-8 | 8-9-10-11 | 11-15 | 15-14-13-12:
    // the alive topology is one Hamiltonian path, so any two tiles remain
    // connected but many hop distances inflate well past Manhattan.
    let spec = CgraSpec::universal(4, 4);
    let keep: &[(usize, usize)] = &[
        (0, 1), (1, 2), (2, 3), (3, 7), (6, 7), (5, 6), (4, 5), (4, 8),
        (8, 9), (9, 10), (10, 11), (11, 15), (14, 15), (13, 14), (12, 13),
    ];
    let mut plan = FaultPlan::none();
    for r in 0..4usize {
        for c in 0..4usize {
            let t = r * 4 + c;
            for n in [(c + 1 < 4).then_some(t + 1), (r + 1 < 4).then_some(t + 4)]
                .into_iter()
                .flatten()
            {
                let link = (t.min(n), t.max(n));
                if !keep.contains(&link) {
                    plan = plan.with_dead_link(link.0, link.1);
                }
            }
        }
    }
    assert_eq!(plan.dead_links.len(), 24 - keep.len());
    let mask = ResourceMask::degraded(&spec, [], plan.dead_links.iter().copied());
    // endpoints of the serpentine are 15 hops apart on the surviving path
    assert_eq!(mask.hops(&spec, 0, 12), Some(15));
    let d = fuse_patterns(&relu_kernel().loops[0].dfg);
    let m = map_dfg_with(&d, &spec, 17, &mask, None)
        .expect("relu maps along the single surviving route");
    let cfg = CgraConfig::from_mapping(&d, &m, &spec);
    let run = CgraSimulator::new(&spec, &d, &cfg)
        .run_faulted(16, &plan)
        .expect("serpentine mapping simulates under its own plan");
    assert_eq!(run.report.cycles, m.cycles_for(16));
}

#[test]
fn annealed_scale_up_fabrics_hold_exact_identities() {
    // 12×12 and 16×16 sit above the anneal threshold, so these mappings
    // come from the staged Place→Route→Fold pipeline — and must hold the
    // same exact cycle/II/NoC-hop identities the greedy paper-scale path
    // holds (the timing oracle sweeps this too; this is the directed
    // fast-failing version).
    for (rows, cols) in [(12usize, 12usize), (16, 16)] {
        let mut e = PicachuEngine::new(EngineConfig {
            cgra_rows: rows,
            cgra_cols: cols,
            unroll_candidates: vec![1, 2],
            ..EngineConfig::default()
        });
        for op in [NonlinearOp::Softmax, NonlinearOp::Gelu, NonlinearOp::Rope] {
            let loops = e.compile_op(op).to_vec();
            for (i, l) in loops.iter().enumerate() {
                let tag = format!("{}x{} {}", rows, cols, l.label);
                let dfg = e.lowered_dfg(op, i, l.uf, l.vf);
                let spec = e.spec();
                let cfg = CgraConfig::from_mapping(&dfg, &l.mapping, spec);
                let sim = CgraSimulator::new(spec, &dfg, &cfg);
                let (r1, r2, rn) = (sim.run(1), sim.run(2), sim.run(16));
                // prologue, derived II, and total-cycle identities
                assert_eq!(r1.cycles, l.mapping.schedule_len as u64, "{tag}");
                assert_eq!(r2.cycles - r1.cycles, l.mapping.ii as u64, "{tag}");
                assert_eq!(rn.cycles, l.mapping.cycles_for(16), "{tag}");
                // NoC hops: exactly the placement-derived per-iteration sum
                let hops: u64 = dfg
                    .nodes()
                    .iter()
                    .map(|n| {
                        let dst = l.mapping.placements[n.id.0].tile;
                        n.inputs
                            .iter()
                            .map(|e| spec.hops(l.mapping.placements[e.from.0].tile, dst) as u64)
                            .sum::<u64>()
                    })
                    .sum();
                assert_eq!(rn.noc_hops, hops * 16, "{tag}");
            }
        }
    }
}

#[test]
fn congestion_ripup_never_routes_over_a_dead_link() {
    // Kill a staggered set of links through the middle of a 16×16 fabric
    // (annealed path) and map every kernel loop at UF4 — real congestion
    // pressure, so the router's rip-up rounds genuinely fire. No routed
    // edge may cross a masked link, and every accepted mapping must still
    // be congestion-free.
    let spec = CgraSpec::picachu(16, 16);
    let mut plan = FaultPlan::none();
    for r in 0..16usize {
        // vertical links between rows 7 and 8, except every fourth column
        let t = r + 7 * 16;
        if r % 4 != 0 {
            plan = plan.with_dead_link(t, t + 16);
        }
        // horizontal links between cols 7 and 8 on odd rows
        let h = r * 16 + 7;
        if r % 2 == 1 {
            plan = plan.with_dead_link(h, h + 1);
        }
    }
    let mask = ResourceMask::degraded(&spec, [], plan.dead_links.iter().copied());
    let mut checked = 0usize;
    for k in kernel_library(4) {
        for l in &k.loops {
            let dfg = fuse_patterns(&unroll(&l.dfg, 4));
            let Ok(m) = map_dfg_mode(&dfg, &spec, 17, &mask, None, PnrMode::Annealed) else {
                continue; // a loop that cannot meet II on the cut fabric is fine
            };
            let routes =
                picachu_compiler::mapper::route_mapping(&dfg, &spec, &mask, m.ii, &m.placements)
                    .unwrap_or_else(|| panic!("{}: accepted mapping must route", l.label));
            assert!(routes.congestion_free(), "{}: overused channel slots", l.label);
            for e in &routes.edges {
                for w in e.tiles.windows(2) {
                    assert!(
                        mask.link_alive(w[0], w[1]),
                        "{}: route {}→{} crosses dead link {:?}",
                        l.label,
                        e.from.0,
                        e.to.0,
                        (w[0], w[1])
                    );
                }
            }
            checked += 1;
        }
    }
    assert!(checked >= 5, "the cut fabric must still map most kernels: {checked}");
}

#[test]
fn one_by_one_systolic_array() {
    let s = SystolicArray::new(1, 1);
    assert_eq!(s.gemm_cycles(0, 8, 8), 0);
    assert_eq!(s.gemm_cycles(1, 1, 1), 1);
    // m*n tiles of k cycles each on a 1x1 grid
    assert_eq!(s.gemm_cycles(2, 3, 4), 2 * 4 * 3);

    let mut e = PicachuEngine::new(EngineConfig {
        systolic_rows: 1,
        systolic_cols: 1,
        ..EngineConfig::default()
    });
    let b = e.execute_trace(&[
        TraceOp::Gemm { m: 8, k: 8, n: 8, count: 1 },
        TraceOp::Nonlinear { op: NonlinearOp::Relu, rows: 8, channel: 8 },
    ]);
    finite_and_nonnegative(&b);
    assert!(b.gemm > 0.0);
}
