//! Bitstream interchange round trip at scale-up geometry: a process that
//! compiled a 16×16 fabric (through the annealed Place→Route→Fold pipeline)
//! exports every compile-cache entry as versioned bitstream text; a "fresh
//! process" (modelled by clearing the process-wide compile cache) installs
//! the bitstreams and serves the same trace with **zero mapper invocations**
//! and a bit-identical [`ExecutionReport`](picachu::ExecutionReport).
//!
//! Own integration-test binary (own process) because the compile cache and
//! its hit/miss counters are process-global.

use picachu::engine::{EngineConfig, PicachuEngine};
use picachu::mapstore::bitstream::{export_bitstream, install_bitstream};
use picachu::{compile_cache, Accelerator, CompileKey};
use picachu_llm::trace::model_trace;
use picachu_llm::ModelConfig;
use picachu_nonlinear::NonlinearOp;

fn config_16x16() -> EngineConfig {
    EngineConfig {
        cgra_rows: 16,
        cgra_cols: 16,
        // two unroll candidates keep the annealed cold compile quick while
        // still exercising a non-trivial portfolio
        unroll_candidates: vec![1, 2],
        ..EngineConfig::default()
    }
}

fn key_for(cfg: &EngineConfig, op: NonlinearOp) -> CompileKey {
    CompileKey {
        op,
        cgra_rows: cfg.cgra_rows,
        cgra_cols: cfg.cgra_cols,
        format: cfg.format,
        taylor_terms: cfg.taylor_terms,
        unroll_candidates: cfg.unroll_candidates.clone(),
        seed: cfg.seed,
        dead_tiles: vec![],
        dead_links: vec![],
        universal: false,
        incremental: false,
    }
}

#[test]
fn bitstream_reload_is_bit_identical_and_mapper_free() {
    compile_cache::clear();
    let cfg = config_16x16();
    let trace = model_trace(&ModelConfig::gpt2(), 32);

    let mut cold_engine = PicachuEngine::new(cfg.clone());
    let cold = Accelerator::execute_trace(&mut cold_engine, &trace);
    let (_, cold_misses) = compile_cache::stats();
    assert!(cold_misses > 0, "first run must actually compile cold");

    // export every op the trace compiled (16×16 > the anneal threshold, so
    // these mappings came from the staged pipeline)
    let mut bitstreams = Vec::new();
    for op in NonlinearOp::ALL {
        if let Some(loops) = compile_cache::lookup(&key_for(&cfg, op)) {
            let text = export_bitstream(&key_for(&cfg, op), &loops)
                .unwrap_or_else(|e| panic!("{op:?}: export failed: {e}"));
            assert!(text.starts_with("picachu-bitstream,1\n"), "versioned header");
            assert!(text.contains("\nroute,"), "{op:?}: bitstream must carry routes");
            bitstreams.push(text);
        }
    }
    assert!(!bitstreams.is_empty(), "the trace must have compiled something");

    // a fresh process: empty cache, bitstreams installed, no mapstore
    compile_cache::clear();
    for text in &bitstreams {
        install_bitstream(text).expect("exported bitstream must install");
    }
    let mut warm_engine = PicachuEngine::new(cfg);
    let warm = Accelerator::execute_trace(&mut warm_engine, &trace);
    let (warm_hits, warm_misses) = compile_cache::stats();
    assert!(warm_hits > 0, "reloaded run must serve from the installed bitstreams");
    assert_eq!(warm_misses, 0, "bitstream-warmed run must never invoke the mapper");
    assert_eq!(cold, warm, "bitstream-reloaded report diverged from the cold one");

    compile_cache::clear();
}
