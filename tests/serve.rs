//! Property/invariant suite for the serving scheduler: seeded random
//! arrival traces × pool configurations × chaos schedules must uphold the
//! five invariants — conservation (every admitted request reaches exactly
//! one typed terminal state), work conservation (no startable shard idles
//! while compatible work waits), batching legality (no batch mixes
//! tenants/phases/shape buckets), bit-exact replay from the seed, and
//! conservation under failure (tokens committed by surviving batch steps
//! equal tokens reported by terminal states) — with shrinking, replayable
//! counterexample seeds on failure (the `tests/faults.rs` / oracle replay
//! pattern). Directed tests cover the degraded-capacity story (mid-trace
//! `FaultPlan`, rebalancing, pool-wide outage), the chaos story (crash
//! mid-prefill, crash over an empty queue, recover-then-re-crash), and the
//! degenerate corners (pool of 1, all shards faulted, zero requests).

use picachu::faults::FaultPlan;
use picachu_llm::ModelConfig;
use picachu_serve::{
    run, summarize, ArrivalPattern, ChaosAction, ChaosEvent, FaultEvent, Outcome, RejectReason,
    RetryPolicy, ServeConfig, ShardSpec, Tenant,
};
use picachu_testkit::prop::{check_result, replay, Gen, PropError, PropResult};
use picachu_testkit::{prop_assert, prop_assert_eq, prop_check};
use std::collections::BTreeMap;

fn tiny_model(name: &'static str, layers: usize, d_model: usize) -> ModelConfig {
    ModelConfig {
        name,
        layers,
        d_model,
        n_heads: 4,
        d_ff: 2 * d_model,
        ..ModelConfig::gpt2()
    }
}

/// A fault plan that no PICACHU mapping survives (every tile dead) and
/// that zeroes every analytical shard's nominal units.
fn total_outage() -> FaultPlan {
    let mut plan = FaultPlan::none();
    for t in 0..16 {
        plan = plan.with_dead_tile(t);
    }
    plan
}

/// Draws a random serving config: 1–2 tenants (random priorities) over
/// tiny models, one of the three arrival patterns, a 1–3 shard pool over
/// all six device kinds, random batching/admission knobs, sometimes a
/// mid-trace fault, and sometimes chaos events, preemption, shedding and a
/// random retry budget.
fn draw_config(g: &mut Gen) -> ServeConfig {
    let mut tenants = vec![Tenant {
        name: "alpha",
        model: tiny_model("tiny-alpha", 2, 64),
        weight: g.draw(1..4u32),
        prompt: g.draw(8..48usize),
        decode: (1, g.draw(1..6usize)),
        slo_ns: 1 << g.draw(20..34u32),
        priority: g.draw(0..2u32) as u8,
    }];
    if g.draw(0..2u32) == 1 {
        tenants.push(Tenant {
            name: "beta",
            model: tiny_model("tiny-beta", 1, 32),
            weight: g.draw(1..4u32),
            prompt: g.draw(8..48usize),
            decode: (1, g.draw(1..4usize)),
            slo_ns: 1 << g.draw(20..34u32),
            priority: g.draw(0..2u32) as u8,
        });
    }
    let mean_gap_ns = g.f64(1e4..5e6);
    let pattern = match g.draw(0..3u32) {
        0 => ArrivalPattern::Poisson { mean_gap_ns },
        1 => ArrivalPattern::Bursty { mean_gap_ns, mean_burst: g.draw(2..10usize) },
        _ => ArrivalPattern::Diurnal { mean_gap_ns, period_ns: g.f64(1e6..1e9) },
    };
    let n_shards = g.draw(1..4usize);
    let pool: Vec<ShardSpec> = (0..n_shards)
        .map(|_| match g.draw(0..6u32) {
            0 => ShardSpec::picachu(),
            1 => ShardSpec::Gemmini,
            2 => ShardSpec::Gpu,
            3 => ShardSpec::Cpu,
            4 => ShardSpec::Tandem,
            _ => ShardSpec::CgraBase,
        })
        .collect();
    // fixed fault-plan menu so degraded PICACHU compiles hit the process
    // cache across cases instead of re-mapping novel fault sets each time
    let faults = if g.draw(0..2u32) == 1 {
        let plan = match g.draw(0..3u32) {
            0 => FaultPlan::dead_tile(5),
            1 => FaultPlan::dead_link(5, 6),
            _ => total_outage(),
        };
        vec![FaultEvent {
            at_ns: g.draw(1..200u64) * 50_000,
            shard: g.draw(0..n_shards),
            plan,
        }]
    } else {
        Vec::new()
    };
    // chaos events are drawn raw (unsorted, unpaired) on purpose: the
    // scheduler must hold its invariants through any interleaving,
    // including a crash with no recover or a recover of a healthy shard
    let chaos = if g.draw(0..2u32) == 1 {
        (0..g.draw(1..4usize))
            .map(|_| ChaosEvent {
                at_ns: g.draw(1..200u64) * 50_000,
                shard: g.draw(0..n_shards),
                action: match g.draw(0..4u32) {
                    0 => ChaosAction::Crash,
                    1 => ChaosAction::Recover,
                    2 => ChaosAction::CompileOutage { for_ns: g.draw(1..100u64) * 10_000 },
                    _ => ChaosAction::Degrade(FaultPlan::dead_tile(5)),
                },
            })
            .collect()
    } else {
        Vec::new()
    };
    ServeConfig {
        seed: g.draw(0..u32::MAX) as u64,
        tenants,
        pattern,
        n_requests: g.draw(5..40usize),
        pool,
        max_batch: g.draw(1..9usize),
        max_in_flight: g.draw(2..64usize),
        faults,
        chaos,
        retry: RetryPolicy::new(g.draw(0..4u32), g.draw(1..10u64) * 100_000),
        preempt: g.draw(0..2u32) == 1,
        shed_deadline_factor: if g.draw(0..2u32) == 1 { Some(g.f64(1.0..8.0)) } else { None },
        log_batches: true,
    }
}

/// Re-checks the five invariants from the *outside* of the simulator —
/// records and batch log only, trusting no internal audit arithmetic
/// beyond the violation counters.
fn assert_invariants(cfg: &ServeConfig) -> PropResult {
    let report = run(cfg);

    // invariant 1 — conservation: every generated request has exactly one
    // record (ids 0..n each once) and exactly one typed terminal state
    prop_assert_eq!(report.records.len(), cfg.n_requests);
    for (i, r) in report.records.iter().enumerate() {
        prop_assert_eq!(r.id, i as u64);
        match &r.outcome {
            Outcome::Completed { tokens, finish_ns, ttft_ns, shards, retries } => {
                prop_assert!(*tokens >= 1);
                prop_assert!(*finish_ns >= r.arrival_ns + ttft_ns);
                prop_assert!(!shards.is_empty(), "completed with no serving shard");
                prop_assert!(
                    *retries <= cfg.retry.max_attempts,
                    "completed after more retries than the budget allows"
                );
            }
            Outcome::Rejected { at_ns, reason, .. } => {
                prop_assert!(*at_ns >= r.arrival_ns);
                prop_assert!(matches!(
                    reason,
                    RejectReason::QueueFull | RejectReason::NoCapacity | RejectReason::Shed
                ));
                if *reason == RejectReason::Shed {
                    prop_assert!(
                        cfg.shed_deadline_factor.is_some(),
                        "shed with shedding disabled"
                    );
                }
            }
            Outcome::Abandoned { at_ns, attempts } => {
                prop_assert!(*at_ns >= r.arrival_ns);
                prop_assert_eq!(*attempts, cfg.retry.max_attempts);
                prop_assert!(!cfg.chaos.is_empty(), "abandoned without any chaos");
            }
        }
    }
    let audit = report.audit;
    prop_assert_eq!(audit.generated, cfg.n_requests as u64);
    prop_assert!(audit.check().is_ok(), "audit: {:?}", audit.check());

    // invariant 2 — work conservation, counted per event by the simulator
    prop_assert_eq!(audit.work_conservation_violations, 0u64);

    // invariant 3 — batching legality, re-derived from the batch log:
    // members of one batch share tenant/phase/bucket by construction of
    // the key, so cross-check every member's tenant against its record,
    // batch sizes against the cap, and prefill batches against size 1
    let by_id: BTreeMap<u64, usize> =
        report.records.iter().map(|r| (r.id, r.tenant)).collect();
    for b in &report.batch_log {
        prop_assert!(!b.members.is_empty());
        prop_assert!(b.members.len() <= cfg.max_batch.max(1));
        if b.prefill {
            prop_assert_eq!(b.members.len(), 1usize);
        }
        for id in &b.members {
            prop_assert_eq!(by_id.get(id).copied(), Some(b.tenant));
        }
        prop_assert!(b.shard < cfg.pool.len());
    }
    prop_assert_eq!(audit.batch_legality_violations, 0u64);

    // every completed token was produced by some batch: total steps across
    // shards equals total batch-log members — except batches killed by a
    // chaos crash or preempted, which are logged at issue but never
    // complete a step (their members re-batch and are logged again)
    let steps: u64 = report.shards.iter().map(|s| s.steps).sum();
    let logged: u64 = report.batch_log.iter().map(|b| b.members.len() as u64).sum();
    if cfg.chaos.is_empty() && !cfg.preempt {
        prop_assert_eq!(steps, logged);
    } else {
        prop_assert!(steps <= logged, "more steps than issued batch members");
    }

    // invariant 5 — conservation under failure, cross-checked by the audit
    // arithmetic (tokens_committed == tokens_reported inside check()), plus
    // the kill/preempt counters agreeing between audit and shard reports
    let killed: u64 = report.shards.iter().map(|s| s.killed_batches).sum();
    let preempted: u64 = report.shards.iter().map(|s| s.preempted_batches).sum();
    prop_assert_eq!(killed, audit.killed_batches);
    prop_assert_eq!(preempted, audit.preemptions);

    // invariant 4 — bit-exact replay from the seed
    let again = run(cfg);
    prop_assert!(report == again, "replay diverged");

    // the summary is well-formed whatever happened
    let s = summarize(&report);
    prop_assert!(s.slo_attainment >= 0.0 && s.slo_attainment <= 1.0);
    prop_assert_eq!(s.completed + s.rejected + s.abandoned, cfg.n_requests as u64);
    prop_assert!(s.shed <= s.rejected);
    Ok(())
}

#[test]
fn prop_scheduler_invariants_hold_over_random_traces_and_pools() {
    prop_check!(12, 0x5E2F_0001, |g: &mut Gen| {
        let cfg = draw_config(g);
        assert_invariants(&cfg)
    });
}

#[test]
fn failing_properties_shrink_to_replayable_seeds() {
    // the replay contract of the harness itself, driven through a serving
    // property that must fail: every run completes at least one request
    // here, so demanding zero completions trips the assertion, and the
    // reported case seed must reproduce the identical failure
    let prop = |g: &mut Gen| -> PropResult {
        let cfg = ServeConfig {
            n_requests: g.draw(3..10usize),
            ..ServeConfig::new(
                vec![Tenant {
                    name: "t",
                    model: tiny_model("tiny-replay", 1, 32),
                    weight: 1,
                    prompt: 16,
                    decode: (1, 2),
                    slo_ns: u64::MAX,
                    priority: 0,
                }],
                ArrivalPattern::Poisson { mean_gap_ns: 1e6 },
                vec![ShardSpec::Gemmini],
            )
        };
        let report = run(&cfg);
        prop_assert_eq!(report.audit.completed, 0u64); // deliberately false
        Ok(())
    };
    let failure = check_result(8, 0xBAD_5EED, prop).expect_err("property must fail");
    match replay(failure.case_seed, prop) {
        Err(PropError::Fail(msg)) => assert_eq!(msg, failure.message),
        other => panic!("case seed did not replay the failure: {other:?}"),
    }
}

#[test]
fn degraded_shard_rebalances_and_healthy_shards_stay_bit_identical() {
    let tenants = vec![Tenant {
        name: "t",
        model: tiny_model("tiny-degrade", 2, 64),
        weight: 1,
        prompt: 32,
        decode: (2, 4),
        slo_ns: u64::MAX,
        priority: 0,
    }];
    let base = ServeConfig {
        seed: 0xD1E5,
        n_requests: 40,
        max_batch: 4,
        log_batches: true,
        ..ServeConfig::new(
            tenants,
            ArrivalPattern::Poisson { mean_gap_ns: 100_000.0 },
            vec![ShardSpec::picachu(), ShardSpec::Gemmini],
        )
    };
    let clean = run(&base);
    clean.audit.check().unwrap();
    assert_eq!(clean.audit.completed, 40, "all complete fault-free");

    // kill shard 0 mid-trace
    let fault_at = clean.horizon_ns / 3;
    let faulted = run(&ServeConfig {
        faults: vec![FaultEvent { at_ns: fault_at, shard: 0, plan: total_outage() }],
        ..base.clone()
    });
    faulted.audit.check().unwrap();

    // the scheduler rebalanced: nothing piles up on the dead shard — no
    // batch is issued on it after the fault lands, and every request
    // still reaches a terminal state (shard 1 absorbs the work)
    for b in &faulted.batch_log {
        assert!(
            b.shard != 0 || b.start_ns < fault_at,
            "batch issued on the dead shard at {} (fault at {fault_at})",
            b.start_ns
        );
    }
    assert_eq!(
        faulted.audit.completed + faulted.audit.rejected_after_admission
            + faulted.audit.rejected_at_admission,
        40
    );
    assert_eq!(faulted.audit.completed, 40, "healthy shard absorbs the whole trace");
    assert!(!faulted.shards[0].final_capacity_factor.is_finite());

    // fault isolation: the healthy shard's measured report is bit-identical
    // to its fault-free run — same cost table, same backend
    assert_eq!(faulted.shards[1].cost_table, clean.shards[1].cost_table);
    assert_eq!(faulted.shards[1].backend, clean.shards[1].backend);
    // and it did at least as many steps as before (it inherited work)
    assert!(faulted.shards[1].steps >= clean.shards[1].steps);

    // a *degraded* (not dead) shard stays in service at reduced capacity
    let degraded = run(&ServeConfig {
        faults: vec![FaultEvent { at_ns: fault_at, shard: 0, plan: FaultPlan::dead_tile(5) }],
        ..base
    });
    degraded.audit.check().unwrap();
    assert!(degraded.shards[0].final_capacity_factor >= 1.0);
    assert!(degraded.shards[0].final_capacity_factor.is_finite());
    assert_eq!(degraded.audit.completed, 40);
}

#[test]
fn pool_wide_outage_rejects_typed() {
    let tenants = vec![Tenant {
        name: "t",
        model: tiny_model("tiny-outage", 1, 32),
        weight: 1,
        prompt: 16,
        decode: (2, 2),
        slo_ns: u64::MAX,
        priority: 0,
    }];
    let cfg = ServeConfig {
        seed: 7,
        n_requests: 30,
        faults: vec![FaultEvent { at_ns: 1, shard: 0, plan: total_outage() }],
        ..ServeConfig::new(
            tenants,
            ArrivalPattern::Bursty { mean_gap_ns: 1e5, mean_burst: 4 },
            vec![ShardSpec::Gemmini],
        )
    };
    let report = run(&cfg);
    report.audit.check().unwrap();
    // pool of 1, faulted at t=1: everything after is a typed NoCapacity
    // rejection, nothing hangs, nothing panics
    assert_eq!(report.records.len(), 30);
    let mut rejected = 0;
    for r in &report.records {
        if let Outcome::Rejected { reason, .. } = &r.outcome {
            assert_eq!(*reason, RejectReason::NoCapacity);
            rejected += 1;
        }
    }
    assert!(rejected >= 29, "at most the t=0 arrivals can slip in: {rejected}");
    let s = summarize(&report);
    assert_eq!(s.rejected, rejected as u64);
}

#[test]
fn degenerate_configs_are_clean() {
    let tenant = Tenant {
        name: "t",
        model: tiny_model("tiny-degenerate", 1, 32),
        weight: 1,
        prompt: 16,
        decode: (1, 3),
        slo_ns: u64::MAX,
        priority: 0,
    };
    // zero-request trace
    let empty = run(&ServeConfig {
        n_requests: 0,
        ..ServeConfig::new(
            vec![tenant.clone()],
            ArrivalPattern::Poisson { mean_gap_ns: 1e6 },
            vec![ShardSpec::Gpu],
        )
    });
    empty.audit.check().unwrap();
    assert!(empty.records.is_empty());
    assert_eq!(summarize(&empty).throughput_tokens_per_s, 0.0);

    // pool of 1, batch of 1, admission cap of 1: strictly serial serving
    let serial = run(&ServeConfig {
        n_requests: 12,
        max_batch: 1,
        max_in_flight: 1,
        log_batches: true,
        ..ServeConfig::new(
            vec![tenant],
            ArrivalPattern::Poisson { mean_gap_ns: 1e6 },
            vec![ShardSpec::Tandem],
        )
    });
    serial.audit.check().unwrap();
    for b in &serial.batch_log {
        assert_eq!(b.members.len(), 1);
    }
    // admission cap 1 can reject under bursts, but whatever was admitted
    // completed
    assert_eq!(
        serial.audit.admitted,
        serial.audit.completed,
        "pool never died, so no admitted request may be lost"
    );
}

/// Shared base for the directed chaos tests: two shards, one tenant,
/// modest steady load, batch logging on.
fn chaos_base(name: &'static str, n_requests: usize) -> ServeConfig {
    ServeConfig {
        seed: 0xC4A0,
        n_requests,
        max_batch: 4,
        log_batches: true,
        ..ServeConfig::new(
            vec![Tenant {
                name: "t",
                model: tiny_model(name, 2, 64),
                weight: 1,
                prompt: 32,
                decode: (2, 6),
                slo_ns: u64::MAX,
                priority: 0,
            }],
            ArrivalPattern::Poisson { mean_gap_ns: 100_000.0 },
            vec![ShardSpec::Gemmini, ShardSpec::Gpu],
        )
    }
}

#[test]
fn crash_during_prefill_retries_on_survivors() {
    // dry-run clean to find a prefill batch's execution window, then aim a
    // crash into the middle of it
    let base = chaos_base("tiny-crash-prefill", 40);
    let clean = run(&base);
    clean.audit.check().unwrap();
    let b = clean
        .batch_log
        .iter()
        .find(|b| b.prefill && b.cost_ns > 1)
        .expect("trace must contain a prefill batch");
    let (shard, at_ns) = (b.shard, b.start_ns + b.cost_ns / 2);
    let chaotic = run(&ServeConfig {
        chaos: vec![
            ChaosEvent { at_ns, shard, action: ChaosAction::Crash },
            ChaosEvent { at_ns: at_ns * 16, shard, action: ChaosAction::Recover },
        ],
        ..base
    });
    chaotic.audit.check().unwrap();
    assert!(chaotic.audit.killed_batches >= 1, "the crash must land mid-batch");
    assert!(
        chaotic.audit.retries >= 1,
        "killed prefill members must enter the retry path"
    );
    // one shard stayed healthy throughout, so every admitted request still
    // terminates — and the killed prefill's tokens were never committed
    assert_eq!(
        chaotic.audit.completed + chaotic.audit.abandoned,
        chaotic.audit.admitted
    );
    let retried = chaotic
        .records
        .iter()
        .filter(|r| matches!(&r.outcome, Outcome::Completed { retries, .. } if *retries > 0))
        .count();
    assert!(
        retried >= 1 || chaotic.audit.abandoned >= 1,
        "someone must have survived (or exhausted) a retry"
    );
}

#[test]
fn crash_with_empty_queue_is_a_non_event_for_conservation() {
    // nearly no load: long gaps mean the crash lands while the pool idles
    let base = ServeConfig {
        n_requests: 4,
        ..chaos_base("tiny-crash-idle", 4)
    };
    let clean = run(&base);
    clean.audit.check().unwrap();
    // crash long after the last completion, recover later still
    let quiet = clean.horizon_ns * 4 + 1_000_000;
    let chaotic = run(&ServeConfig {
        chaos: vec![
            ChaosEvent { at_ns: quiet, shard: 0, action: ChaosAction::Crash },
            ChaosEvent { at_ns: quiet * 2, shard: 0, action: ChaosAction::Recover },
        ],
        ..base
    });
    chaotic.audit.check().unwrap();
    assert_eq!(chaotic.audit.killed_batches, 0, "nothing in flight to kill");
    assert_eq!(chaotic.audit.retries, 0);
    assert_eq!(chaotic.audit.completed, chaotic.audit.admitted);
    // the quiet crash cannot change what the requests experienced
    assert_eq!(chaotic.records, clean.records);
}

#[test]
fn recover_then_re_crash_keeps_invariants() {
    let base = chaos_base("tiny-recrash", 60);
    let clean = run(&base);
    clean.audit.check().unwrap();
    let h = clean.horizon_ns.max(8);
    // crash → recover → crash again → final recover, all on shard 0
    let cfg = ServeConfig {
        chaos: vec![
            ChaosEvent { at_ns: h / 8, shard: 0, action: ChaosAction::Crash },
            ChaosEvent { at_ns: h / 4, shard: 0, action: ChaosAction::Recover },
            ChaosEvent { at_ns: h / 2, shard: 0, action: ChaosAction::Crash },
            ChaosEvent { at_ns: h, shard: 0, action: ChaosAction::Recover },
        ],
        ..base
    };
    let a = run(&cfg);
    a.audit.check().unwrap();
    assert_eq!(a.audit.completed + a.audit.abandoned, a.audit.admitted);
    assert!(a.audit.completed > 0, "the surviving shard keeps serving");
    // the recovered shard really did come back: it, not just shard 1,
    // keeps batching between and after the outages unless the trace ended
    let shard0_after_recover =
        a.batch_log.iter().any(|b| b.shard == 0 && b.start_ns >= h / 4);
    assert!(
        shard0_after_recover || a.horizon_ns < h / 4,
        "recovery must return the shard to service"
    );
    let b = run(&cfg);
    assert_eq!(a, b, "double-crash chaos still replays bit-exactly");
}
