//! Cross-crate integration tests: the full PICACHU pipeline from the
//! high-level front end down to the cycle simulator, plus the end-to-end
//! orderings the paper's evaluation depends on.

use picachu::engine::{EngineConfig, PicachuEngine};
use picachu_baselines::common::evaluate_model;
use picachu_baselines::{CpuModel, GemminiModel, GpuModel, TandemModel};
use picachu_cgra::{CgraConfig, CgraSimulator};
use picachu_compiler::arch::CgraSpec;
use picachu_compiler::frontend::{match_patterns, offload, HlGraph, OffloadItem, TensorOp};
use picachu_compiler::mapper::map_dfg;
use picachu_compiler::transform::fuse_patterns;
use picachu_ir::kernels::kernel_library;
use picachu_llm::ModelConfig;
use picachu_num::DataFormat;
use picachu_systolic::SystolicArray;

/// Front end → offload plan → engine execution: the §4.3 flow end to end.
#[test]
fn frontend_to_engine_pipeline() {
    // a transformer FFN block as a front end would emit it
    let mut g = HlGraph::new();
    let x = g.push(TensorOp::Input, vec![], 128 * 768);
    let up = g.push(TensorOp::MatMul { m: 128, k: 768, n: 3072 }, vec![x], 128 * 3072);
    let act = g.push_decomposed_gelu(up, 128 * 3072);
    g.push(TensorOp::MatMul { m: 128, k: 3072, n: 768 }, vec![act], 128 * 768);

    assert_eq!(match_patterns(&mut g), 1);
    let plan = offload(&g);
    assert_eq!(plan.len(), 3, "{plan:?}");

    // execute the plan through the engine's primitives
    let mut engine = PicachuEngine::new(EngineConfig::default());
    let mut total = 0u64;
    for item in &plan {
        match *item {
            OffloadItem::SystolicGemm { m, k, n } => {
                total += engine.systolic().gemm_cycles(m, k, n);
            }
            OffloadItem::CgraKernel { name, elems } => {
                let op = picachu_nonlinear::NonlinearOp::ALL
                    .iter()
                    .copied()
                    .find(|o| o.name() == name)
                    .expect("known op");
                total += engine.nonlinear_compute_cycles(op, 1, elems);
            }
            OffloadItem::CgraElementwise { elems } => total += elems as u64,
        }
    }
    assert!(total > 0);
}

/// Every kernel in the library survives the full compile→simulate pipeline
/// on every fabric geometry of Fig. 7b.
#[test]
fn all_kernels_on_all_fabrics() {
    for (r, c) in [(3usize, 3usize), (4, 4), (5, 5), (4, 8)] {
        let spec = CgraSpec::picachu(r, c);
        for k in kernel_library(4) {
            for l in &k.loops {
                let fused = fuse_patterns(&l.dfg);
                let m = map_dfg(&fused, &spec, 13)
                    .unwrap_or_else(|e| panic!("{} on {r}x{c}: {e}", l.label));
                let cfg = CgraConfig::from_mapping(&fused, &m, &spec);
                let rep = CgraSimulator::new(&spec, &fused, &cfg).run(64);
                assert_eq!(rep.iterations, 64);
            }
        }
    }
}

/// Fig. 8a ordering: PICACHU beats CPU on every model, and beats Gemmini on
/// the LLaMA models while staying within range on GPT/OPT.
#[test]
fn end_to_end_orderings() {
    let sys = SystolicArray::new(32, 32);
    let mut engine = PicachuEngine::new(EngineConfig {
        format: DataFormat::Int16,
        ..EngineConfig::default()
    });
    for cfg in ModelConfig::evaluation_set() {
        let pic = engine.execute_model(&cfg, 512).total();
        let cpu = evaluate_model(&CpuModel::default(), &sys, &cfg, 512).total();
        assert!(pic < cpu, "{}: PICACHU {pic} !< CPU {cpu}", cfg.name);
    }
    for cfg in [ModelConfig::llama2_7b(), ModelConfig::llama2_13b()] {
        let pic = engine.execute_model(&cfg, 512).total();
        let gem = evaluate_model(&GemminiModel::default(), &sys, &cfg, 512).total();
        assert!(pic < gem, "{}: PICACHU {pic} !< Gemmini {gem}", cfg.name);
    }
}

/// Fig. 8b ordering at the trace level: PICACHU ≥ Tandem on nonlinear work.
#[test]
fn picachu_at_least_matches_tandem() {
    let sys = SystolicArray::new(32, 32);
    let mut engine = PicachuEngine::new(EngineConfig {
        format: DataFormat::Int16,
        ..EngineConfig::default()
    });
    for cfg in [ModelConfig::bert_base(), ModelConfig::gpt2()] {
        let pic = engine.execute_model(&cfg, 1024).total();
        let tan = evaluate_model(&TandemModel::default(), &sys, &cfg, 1024).total();
        assert!(pic <= tan, "{}: PICACHU {pic} !<= Tandem {tan}", cfg.name);
    }
}

/// Fig. 7c property: the buffer-size knee sits where one channel fits, and
/// larger buffers plateau.
#[test]
fn buffer_knee_and_plateau() {
    let run = |kb: usize| {
        let mut e = PicachuEngine::new(EngineConfig { buffer_kb: kb, ..EngineConfig::default() });
        e.execute_model(&ModelConfig::llama2_7b(), 256).total()
    };
    let t20 = run(20);
    let t40 = run(40);
    let t80 = run(80);
    assert!(t40 < t20, "40KB must beat 20KB for d=4096");
    assert!((t80 - t40).abs() / t40 < 0.01, "beyond the knee is flat");
}

/// Fig. 1 property at the GPU model level composed with real traces.
#[test]
fn gpu_nonlinear_share_shape() {
    let gpu = GpuModel::default();
    // grows with seq on LLaMA
    let shares: Vec<f64> = [256usize, 1024, 2048]
        .iter()
        .map(|&s| gpu.nonlinear_share(&ModelConfig::llama2_7b(), s))
        .collect();
    assert!(shares[0] < shares[1] && shares[1] < shares[2]);
    // GPT2-XL is the most nonlinear-heavy dense model at 1024
    let g = gpu.nonlinear_share(&ModelConfig::gpt2_xl(), 1024);
    let o = gpu.nonlinear_share(&ModelConfig::opt_6_7b(), 1024);
    assert!(g > o);
}

/// Energy accounting is consistent across engine configurations.
#[test]
fn energy_scales_with_work() {
    let mut small = PicachuEngine::new(EngineConfig::default());
    let b1 = small.execute_model(&ModelConfig::gpt2(), 128);
    let b2 = small.execute_model(&ModelConfig::gpt2(), 512);
    assert!(small.energy_nj(&b2) > small.energy_nj(&b1) * 3.0);
}

/// The INT16 path is never slower end to end than FP32 (it vectorizes), and
/// both produce identical GEMM time (GEMMs are format-independent here).
#[test]
fn int16_no_slower_than_fp32() {
    let total = |fmt: DataFormat| {
        let mut e = PicachuEngine::new(EngineConfig { format: fmt, ..EngineConfig::default() });
        e.execute_model(&ModelConfig::opt_6_7b(), 256)
    };
    let fp32 = total(DataFormat::Fp32);
    let int16 = total(DataFormat::Int16);
    assert!(int16.total() <= fp32.total());
    assert_eq!(int16.gemm, fp32.gemm);
}
