//! Mapper fuzzing: randomly generated loop-body DFGs (arbitrary arithmetic
//! chains, reductions, memory mix) must map on the PICACHU fabric, respect
//! every dependence in the resulting schedule, and survive the cycle
//! simulator's dynamic checks. This explores compilation space far beyond
//! the nine library kernels.

use picachu_cgra::{CgraConfig, CgraSimulator};
use picachu_compiler::arch::CgraSpec;
use picachu_compiler::mapper::{map_dfg, min_ii};
use picachu_compiler::transform::fuse_patterns;
use picachu_ir::{Dfg, DfgBuilder, NodeId, Opcode};
use picachu_testkit::prop::{check_result, replay, PropError};
use picachu_testkit::TestRng;

/// Generates a random but well-formed loop body: loop control, 1–3 loads,
/// a random arithmetic DAG (with optional exp chains, divisions and
/// reductions), and 1–2 stores.
fn random_loop(seed: u64) -> Dfg {
    let mut rng = TestRng::seed_from_u64(seed);
    let mut b = DfgBuilder::new(format!("fuzz-{seed}"));
    let i = b.loop_control();
    let n_loads = rng.gen_range(1..=3);
    let mut values: Vec<NodeId> = (0..n_loads).map(|_| b.load_elem(i)).collect();

    let body_ops = rng.gen_range(3..=20);
    for _ in 0..body_ops {
        let pick = |rng: &mut TestRng, vs: &[NodeId]| vs[rng.gen_range(0..vs.len())];
        let a = pick(&mut rng, &values);
        let v = match rng.gen_range(0..10) {
            0 => b.op_imm(Opcode::Add, &[a], rng.gen_range(-2.0..2.0)),
            1 => b.op(Opcode::Sub, &[a, pick(&mut rng, &values)]),
            2 | 3 => b.op_imm(Opcode::Mul, &[a, pick(&mut rng, &values)], 1.0),
            4 => b.op(Opcode::Div, &[a, pick(&mut rng, &values)]),
            5 => {
                let c = b.op_imm(Opcode::Cmp, &[a], 0.0);
                b.op_imm(Opcode::Select, &[c, a], 0.0)
            }
            6 => b.exp_chain(a, rng.gen_range(2..=5), 1.0),
            7 => b.accumulate(a),
            8 => b.op(Opcode::LutRead, &[a]),
            _ => b.op_imm(Opcode::Mul, &[a], rng.gen_range(0.1..3.0)),
        };
        values.push(v);
    }
    let n_stores = rng.gen_range(1..=2);
    for _ in 0..n_stores {
        let v = values[rng.gen_range(0..values.len())];
        b.store_elem(i, v);
    }
    b.finish()
}

#[test]
fn random_loops_map_and_simulate() {
    let spec = CgraSpec::picachu(4, 4);
    for seed in 0..64u64 {
        let dfg = random_loop(seed);
        assert!(dfg.validate().is_ok(), "seed {seed}");
        let fused = fuse_patterns(&dfg);
        assert!(fused.validate().is_ok(), "seed {seed} fused");
        let bound = min_ii(&fused, &spec).expect("capable fabric");
        let m = map_dfg(&fused, &spec, seed ^ 0xF00D)
            .unwrap_or_else(|e| panic!("seed {seed} ({} nodes): {e}", fused.len()));
        assert!(m.ii >= bound, "seed {seed}: II {} < bound {bound}", m.ii);
        // dynamic verification: the simulator asserts every operand arrival
        let cfg = CgraConfig::from_mapping(&fused, &m, &spec);
        let rep = CgraSimulator::new(&spec, &fused, &cfg).run(16);
        assert_eq!(rep.iterations, 16, "seed {seed}");
    }
}

#[test]
fn random_loops_map_on_every_fabric() {
    for seed in 0..16u64 {
        let dfg = fuse_patterns(&random_loop(seed));
        for (r, c) in [(3usize, 3usize), (4, 4), (5, 5), (4, 8)] {
            let spec = CgraSpec::picachu(r, c);
            let m = map_dfg(&dfg, &spec, seed)
                .unwrap_or_else(|e| panic!("seed {seed} on {r}x{c}: {e}"));
            assert!(m.ii >= 1);
        }
    }
}

#[test]
fn fusion_preserves_random_loop_semantics() {
    use picachu_ir::interp::interpret;
    for seed in 0..40u64 {
        let dfg = random_loop(seed);
        let loads = dfg.nodes().iter().filter(|n| n.op == Opcode::Load).count();
        let n = 32;
        let streams: Vec<Vec<f32>> = (0..loads)
            .map(|s| {
                (0..n)
                    .map(|i| (i as f32 * 0.37 + s as f32).sin() * 1.5 + 0.2)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f32]> = streams.iter().map(|s| s.as_slice()).collect();
        let base = interpret(&dfg, n, &refs, &[]).expect("base interprets");
        let fused = fuse_patterns(&dfg);
        let got = interpret(&fused, n, &refs, &[]).expect("fused interprets");
        for (o, (a, b)) in base.outputs.iter().zip(&got.outputs).enumerate() {
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                let both_non_finite = !x.is_finite() && !y.is_finite();
                assert!(
                    both_non_finite || (x - y).abs() <= 1e-4 * (1.0 + x.abs()),
                    "seed {seed} out {o} elem {i}: {x} vs {y}"
                );
            }
        }
    }
}

#[test]
fn mapper_rejects_impossible_fabric_gracefully() {
    // a fabric too narrow to host a kernel's memory ops must error, not hang
    let mut b = DfgBuilder::new("wide");
    let i = b.loop_control();
    for _ in 0..40 {
        let x = b.load_elem(i);
        b.store_elem(i, x);
    }
    let dfg = fuse_patterns(&b.finish());
    let spec = CgraSpec::picachu(1, 2); // 2 tiles
    match map_dfg(&dfg, &spec, 1) {
        Ok(m) => assert!(m.ii >= 40, "80 memory ops on 2 ports need II >= 40"),
        Err(e) => {
            let msg = e.to_string();
            assert!(!msg.is_empty());
        }
    }
}

#[test]
fn failing_prop_seed_replays_to_same_failure() {
    // The whole point of the deterministic harness is that a CI failure log
    // ("failing case_seed = ...") can be replayed locally. Exercise that loop
    // on a real property over the fuzz generator: deliberately assert a
    // too-tight bound on DFG size so some generated loop violates it, then
    // check the reported case seed reproduces the exact same failure.
    let prop = |g: &mut picachu_testkit::Gen| -> picachu_testkit::PropResult {
        let seed = g.draw(0u64..1 << 20);
        let dfg = random_loop(seed);
        if dfg.len() >= 12 {
            return Err(PropError::Fail(format!(
                "loop seed {seed} has {} nodes",
                dfg.len()
            )));
        }
        Ok(())
    };
    let failure = check_result(256, 0xFA112, prop).expect_err("bound must be violated");
    let replayed = replay(failure.case_seed, prop);
    match replayed {
        Err(PropError::Fail(msg)) => assert_eq!(
            msg, failure.message,
            "replay of case_seed {:#x} diverged from original failure",
            failure.case_seed
        ),
        other => panic!("replay did not fail: {other:?}"),
    }
}
