//! Semantic-preservation tests: the compiler transforms must not change what
//! a kernel *computes*. The functional interpreter runs the same inputs
//! through the original, fused, and unrolled graphs and compares outputs —
//! the strongest correctness property a DFG-rewriting compiler can offer.

use picachu_compiler::transform::{fuse_patterns, unroll};
use picachu_ir::interp::interpret;
use picachu_ir::kernels::{kernel_library, Kernel};

fn streams_for(kernel: &Kernel, loop_idx: usize, n: usize) -> Vec<Vec<f32>> {
    let loads = kernel.loops[loop_idx]
        .dfg
        .nodes()
        .iter()
        .filter(|nd| nd.op == picachu_ir::Opcode::Load)
        .count();
    (0..loads)
        .map(|s| {
            (0..n)
                .map(|i| (i as f32 * 0.61 + s as f32 * 1.7).sin() * 2.0 + 0.1)
                .collect()
        })
        .collect()
}

fn params_for(name: &str, loop_idx: usize) -> Vec<f32> {
    match (name, loop_idx) {
        ("softmax", 1) => vec![2.2],        // running max
        ("softmax", 2) => vec![37.5],       // sum
        ("layernorm", 1) => vec![0.1, 0.8], // mu, gamma/sigma
        ("rmsnorm", 1) => vec![0.6],        // 1/sigma
        ("rope", 0) => vec![9.0],           // position m
        _ => vec![],
    }
}

/// Fusion preserves the outputs and reduction results of every kernel loop.
#[test]
fn fusion_preserves_semantics() {
    let n = 64;
    for k in kernel_library(6) {
        for (li, l) in k.loops.iter().enumerate() {
            let streams = streams_for(&k, li, n);
            let refs: Vec<&[f32]> = streams.iter().map(|s| s.as_slice()).collect();
            let params = params_for(k.name, li);
            let base = interpret(&l.dfg, n, &refs, &params).expect("base interprets");
            let fused = fuse_patterns(&l.dfg);
            let got = interpret(&fused, n, &refs, &params).expect("fused interprets");
            assert_eq!(base.outputs.len(), got.outputs.len(), "{}", l.label);
            for (o, (a, b)) in base.outputs.iter().zip(&got.outputs).enumerate() {
                for (i, (x, y)) in a.iter().zip(b).enumerate() {
                    assert!(
                        (x - y).abs() <= 1e-5 * (1.0 + x.abs()),
                        "{} output {o} elem {i}: {x} vs {y}",
                        l.label
                    );
                }
            }
        }
    }
}

/// Unrolling preserves the outputs: UF copies consume interleaved elements,
/// so running n/UF iterations over the same data reproduces the scalar
/// outputs up to reassociation of the reductions.
#[test]
fn unroll_preserves_elementwise_semantics() {
    let n = 64;
    for k in kernel_library(4) {
        for (li, l) in k.loops.iter().enumerate() {
            if l.class != picachu_ir::kernels::LoopClass::ElementWise {
                continue;
            }
            let streams = streams_for(&k, li, n);
            let refs: Vec<&[f32]> = streams.iter().map(|s| s.as_slice()).collect();
            let params = params_for(k.name, li);
            let base = interpret(&l.dfg, n, &refs, &params).expect("base");

            let uf = 2usize;
            let unrolled = unroll(&l.dfg, uf);
            // the unrolled body has 2x the loads: split each stream into
            // even/odd element interleaves matching copy order
            let mut u_streams: Vec<Vec<f32>> = Vec::new();
            for copy in 0..uf {
                for stream in &streams {
                    u_streams.push(
                        stream
                            .iter()
                            .skip(copy)
                            .step_by(uf)
                            .copied()
                            .collect(),
                    );
                }
            }
            // unroller emits copy-major loads: copy0's loads first
            let u_refs: Vec<&[f32]> = u_streams.iter().map(|s| s.as_slice()).collect();
            let got = interpret(&unrolled, n / uf, &u_refs, &params).expect("unrolled");
            // outputs likewise come out per copy: interleave back
            for (o, base_out) in base.outputs.iter().enumerate() {
                let stores_per_copy = base.outputs.len();
                for (i, &x) in base_out.iter().enumerate() {
                    let copy = i % uf;
                    let slot = copy * stores_per_copy + o;
                    let y = got.outputs[slot][i / uf];
                    assert!(
                        (x - y).abs() <= 1e-5 * (1.0 + x.abs()),
                        "{} out {o} elem {i}: {x} vs {y}",
                        l.label
                    );
                }
            }
        }
    }
}

/// Unrolled reductions produce the same statistics (up to float
/// reassociation): checked on the softmax sum and the norm Σx².
#[test]
fn unroll_preserves_reductions() {
    let n = 64;
    let k = kernel_library(4);
    for (name, li) in [("softmax", 1usize), ("rmsnorm", 0), ("layernorm", 0)] {
        let kernel = k.iter().find(|kk| kk.name == name).unwrap();
        let l = &kernel.loops[li];
        let streams = streams_for(kernel, li, n);
        let refs: Vec<&[f32]> = streams.iter().map(|s| s.as_slice()).collect();
        let params = params_for(name, li);
        let base = interpret(&l.dfg, n, &refs, &params).expect("base");

        let uf = 4usize;
        let unrolled = unroll(&l.dfg, uf);
        let mut u_streams: Vec<Vec<f32>> = Vec::new();
        for copy in 0..uf {
            for s in &streams {
                u_streams.push(s.iter().skip(copy).step_by(uf).copied().collect());
            }
        }
        let u_refs: Vec<&[f32]> = u_streams.iter().map(|s| s.as_slice()).collect();
        let got = interpret(&unrolled, n / uf, &u_refs, &params).expect("unrolled");
        // compare the non-induction reductions (induction φ differs by design)
        let base_stats: Vec<f32> = base.reductions[1..].to_vec();
        let got_stats: Vec<f32> = got.reductions[1..].to_vec();
        assert_eq!(base_stats.len(), got_stats.len(), "{name}");
        for (a, b) in base_stats.iter().zip(&got_stats) {
            assert!(
                (a - b).abs() <= 1e-3 * (1.0 + a.abs()),
                "{name}: reduction {a} vs {b}"
            );
        }
    }
}

/// End-to-end functional agreement: the hardware softmax kernel (three
/// interpreted loops chained through params) matches the software
/// implementation in picachu-nonlinear.
#[test]
fn hardware_softmax_matches_software() {
    use picachu_ir::kernels::softmax_kernel;
    use picachu_nonlinear::kernels::softmax::softmax_fp;
    use picachu_nonlinear::ApproxConfig;

    let n = 256;
    let x: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.173).sin() * 7.0).collect();
    let k = softmax_kernel(8);

    let r1 = interpret(&k.loops[0].dfg, n, &[&x], &[]).expect("loop1");
    let max = r1.reductions[1];
    let r2 = interpret(&k.loops[1].dfg, n, &[&x], &[max]).expect("loop2");
    let sum = r2.reductions[1];
    let r3 = interpret(&k.loops[2].dfg, n, &[&r2.outputs[0]], &[sum]).expect("loop3");

    let sw = softmax_fp(&x, &ApproxConfig { exp_terms: 8, ..ApproxConfig::default() });
    for (i, (hw, sw)) in r3.outputs[0].iter().zip(&sw).enumerate() {
        assert!(
            (hw - sw).abs() < 1e-5,
            "elem {i}: hardware {hw} vs software {sw}"
        );
    }
}
