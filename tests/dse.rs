//! Co-design search engine suite: the multi-dimensional Pareto frontier
//! against a brute-force dominance reference on adversarial random point
//! clouds (NaN / exact-tie / duplicate cases included), and the end-to-end
//! deployment round-trip — a searched design point instantiates as a
//! first-class `Accelerator`, serves a `picachu-serve` trace, and improves
//! on at least one objective over `EngineConfig::default()`.

use picachu::dse::{
    cmp_objectives, dominates, pareto_frontier, search, DesignKnobs, DesignPoint, SearchConfig,
    OBJECTIVES,
};
use picachu_llm::ModelConfig;
use picachu_serve::{run, ArrivalPattern, ServeConfig, ShardSpec, Tenant};
use picachu_testkit::prop::Gen;
use picachu_testkit::{prop_assert, prop_assert_eq, prop_check};
use std::cmp::Ordering;

/// Wraps a raw objective vector in a `DesignPoint` (the knobs are inert for
/// frontier math; `objectives()` negates resilience, so store the negation).
fn point(obj: [f64; OBJECTIVES]) -> DesignPoint {
    DesignPoint {
        knobs: DesignKnobs::baseline(),
        latency: obj[0],
        energy_nj: obj[1],
        area_mm2: obj[2],
        resilience: -obj[3],
        utilization: 0.5,
    }
}

/// Independent brute-force O(n²) dominance reference: a point survives iff
/// no other point is ≤ on every axis and < on at least one (all per-axis
/// comparisons under `total_cmp`), and its exact objective vector has not
/// already survived (first occurrence wins). Sorted like the production
/// frontier for comparison.
fn reference_frontier(points: &[DesignPoint]) -> Vec<[u64; OBJECTIVES]> {
    let objs: Vec<[f64; OBJECTIVES]> = points.iter().map(DesignPoint::objectives).collect();
    let mut out: Vec<[f64; OBJECTIVES]> = Vec::new();
    for (i, a) in objs.iter().enumerate() {
        let mut dominated = false;
        for (j, b) in objs.iter().enumerate() {
            if i == j {
                continue;
            }
            let mut all_le = true;
            let mut any_lt = false;
            for k in 0..OBJECTIVES {
                match b[k].total_cmp(&a[k]) {
                    Ordering::Less => any_lt = true,
                    Ordering::Greater => all_le = false,
                    Ordering::Equal => {}
                }
            }
            if all_le && any_lt {
                dominated = true;
                break;
            }
        }
        if dominated {
            continue;
        }
        let tie = out
            .iter()
            .any(|o| (0..OBJECTIVES).all(|k| o[k].total_cmp(&a[k]) == Ordering::Equal));
        if !tie {
            out.push(*a);
        }
    }
    out.sort_by(cmp_objectives);
    out.iter().map(|o| o.map(f64::to_bits)).collect()
}

/// Draws one objective coordinate from a tiny palette, so ties, duplicate
/// vectors and NaNs all occur with high probability.
fn coord(g: &mut Gen) -> f64 {
    match g.usize(0..8) {
        0 => f64::NAN,
        1 => -f64::NAN,
        2 => 0.0,
        3 => -0.0,
        n => (n as f64) - 5.0, // -1.0, 0.0(dup), 1.0, 2.0
    }
}

#[test]
fn prop_frontier_matches_brute_force_reference_with_nans_ties_duplicates() {
    prop_check!(128, 0x9A2E_70F1, |g: &mut Gen| {
        let n = g.usize(0..24);
        let mut pts: Vec<DesignPoint> = Vec::with_capacity(n);
        for _ in 0..n {
            // sometimes replay an earlier point verbatim (exact duplicate)
            if !pts.is_empty() && g.usize(0..4) == 0 {
                let i = g.usize(0..pts.len());
                let p = pts[i].clone();
                pts.push(p);
            } else {
                pts.push(point([coord(g), coord(g), coord(g), coord(g)]));
            }
        }
        let got: Vec<[u64; OBJECTIVES]> =
            pareto_frontier(&pts).iter().map(|p| p.objectives().map(f64::to_bits)).collect();
        let want = reference_frontier(&pts);
        prop_assert_eq!(got, want);
        // every frontier member must be one of the input points
        for f in pareto_frontier(&pts) {
            prop_assert!(
                pts.iter().any(|p| cmp_objectives(&p.objectives(), &f.objectives())
                    == Ordering::Equal),
                "frontier invented a point"
            );
        }
        Ok(())
    });
}

#[test]
fn frontier_of_empty_and_singleton() {
    assert!(pareto_frontier(&[]).is_empty());
    let single = vec![point([1.0, 2.0, 3.0, 4.0])];
    assert_eq!(pareto_frontier(&single).len(), 1);
}

/// The full deployment round-trip demanded of the search: a frontier point
/// beats the default configuration on at least one objective, instantiates
/// as an engine, and serves a real multi-tenant trace through
/// `picachu-serve` with a clean audit.
#[test]
fn searched_point_deploys_and_beats_the_default_config() {
    let cfg = SearchConfig::smoke(0x0DE5_16F0);
    let r = search(&ModelConfig::gpt2(), &cfg);
    let baseline = r
        .evaluated
        .iter()
        .find(|p| p.knobs == DesignKnobs::baseline())
        .expect("the search must always score the deployed default");

    // every frontier member is non-dominated, so any member with a
    // different objective vector is strictly better on >= 1 objective
    let better = r
        .frontier
        .iter()
        .find(|p| {
            let (a, b) = (p.objectives(), baseline.objectives());
            (0..OBJECTIVES).any(|k| a[k].total_cmp(&b[k]) == Ordering::Less)
        })
        .expect("no frontier point improves on the default config");
    assert!(
        !dominates(&baseline.objectives(), &better.objectives()),
        "a frontier member cannot be dominated"
    );

    // deploy it: the design point becomes a servable shard
    let serve_cfg = ServeConfig {
        n_requests: 12,
        ..ServeConfig::new(
            vec![Tenant {
                name: "dse",
                model: ModelConfig { name: "tiny-dse", layers: 2, d_model: 64, n_heads: 4, d_ff: 128, ..ModelConfig::gpt2() },
                weight: 1,
                prompt: 16,
                decode: (1, 3),
                slo_ns: u64::MAX,
                priority: 0,
            }],
            ArrivalPattern::Poisson { mean_gap_ns: 1e6 },
            vec![ShardSpec::from_design(better)],
        )
    };
    let report = run(&serve_cfg);
    report.audit.check().expect("serving audit must pass on a searched design");
    assert!(report.audit.completed > 0, "the searched shard served nothing");
}
