//! Backend-parity suite: every accelerator in the workspace — PICACHU plus
//! the five §5.4 baselines — runs the same prefill and decode traces behind
//! the unified [`picachu::Accelerator`] contract, and every report must be
//! finite, deterministic and phase-consistent. The PR-3 oracle identity
//! (`nonlinear_compute_cycles` = Σ compiled-loop cycles) and the PR-4
//! empty-fault-plan identity are re-checked through the trait path, so the
//! backend seam cannot drift from the engine it fronts.

use picachu::engine::{EngineConfig, PicachuEngine};
use picachu::{Accelerator, ExecutionReport};
use picachu_backend::HINT_WARM_TOLERANCE;
use picachu_baselines::{CpuModel, GemminiModel, GpuModel, HomogeneousCgraModel, TandemModel};
use picachu_llm::trace::TraceOp;
use picachu_llm::ModelConfig;

/// Every backend in the workspace, freshly constructed.
fn all_backends() -> Vec<Box<dyn Accelerator>> {
    vec![
        Box::new(PicachuEngine::new(EngineConfig::default())),
        Box::new(CpuModel::hosted()),
        Box::new(GpuModel::default()),
        Box::new(GemminiModel::hosted()),
        Box::new(TandemModel::hosted()),
        Box::new(HomogeneousCgraModel::hosted()),
    ]
}

fn prefill() -> Vec<TraceOp> {
    picachu_llm::model_trace(&ModelConfig::gpt2(), 128)
}

fn decode() -> Vec<TraceOp> {
    picachu_llm::decode_trace(&ModelConfig::gpt2(), 128)
}

fn assert_sane(r: &ExecutionReport, workload: &str) {
    assert!(r.is_sane(), "{} on {workload}: report not sane: {r}", r.backend);
    assert!(r.total() > 0.0, "{} on {workload}: zero total", r.backend);
    assert!(r.energy_nj > 0.0, "{} on {workload}: zero energy", r.backend);
}

#[test]
fn six_backends_cover_prefill_and_decode() {
    let mut seen = Vec::new();
    for mut b in all_backends() {
        let name = b.name().to_string();
        assert!(!seen.contains(&name), "duplicate backend name {name}");
        for (workload, trace) in [("prefill", prefill()), ("decode", decode())] {
            let r = b.execute_trace(&trace);
            assert_eq!(r.backend, name);
            assert_sane(&r, workload);
        }
        assert!(b.area_mm2() > 0.0, "{name}: no silicon priced");
        seen.push(name);
    }
    assert_eq!(seen.len(), 6, "PICACHU + five baselines");
}

#[test]
fn every_backend_is_deterministic_bit_for_bit() {
    for trace in [prefill(), decode()] {
        let first: Vec<ExecutionReport> =
            all_backends().iter_mut().map(|b| b.execute_trace(&trace)).collect();
        let second: Vec<ExecutionReport> =
            all_backends().iter_mut().map(|b| b.execute_trace(&trace)).collect();
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.breakdown.gemm.to_bits(), b.breakdown.gemm.to_bits(), "{}", a.backend);
            assert_eq!(
                a.breakdown.nonlinear.to_bits(),
                b.breakdown.nonlinear.to_bits(),
                "{}",
                a.backend
            );
            assert_eq!(
                a.breakdown.data_movement.to_bits(),
                b.breakdown.data_movement.to_bits(),
                "{}",
                a.backend
            );
            assert_eq!(
                a.breakdown.overhead.to_bits(),
                b.breakdown.overhead.to_bits(),
                "{}",
                a.backend
            );
            assert_eq!(a.energy_nj.to_bits(), b.energy_nj.to_bits(), "{}", a.backend);
        }
    }
}

#[test]
fn healthy_dispatch_has_zero_overhead_phase() {
    // the `overhead` phase is reserved for fault service; no healthy
    // backend may put cycles there
    for mut b in all_backends() {
        let r = b.execute_trace(&prefill());
        assert_eq!(r.breakdown.overhead, 0.0, "{}: healthy overhead must be 0", r.backend);
    }
}

#[test]
fn picachu_trait_path_preserves_oracle_identities() {
    // PR-3 identity through the trait seam: the trait report's nonlinear
    // term for a single un-overlapped op equals Σ CompiledLoop::cycles
    let mut e = PicachuEngine::new(EngineConfig { streaming: false, ..EngineConfig::default() });
    let (rows, channel) = (32usize, 256usize);
    let op = picachu_nonlinear::NonlinearOp::Gelu;
    let expect = e.nonlinear_compute_cycles(op, rows, channel);
    let r = Accelerator::execute_trace(&mut e, &[TraceOp::Nonlinear { op, rows, channel }]);
    assert_eq!(r.breakdown.nonlinear, expect as f64, "Σ loop cycles identity");

    // PR-4 identity: the empty fault plan is the identity on the breakdown
    let trace = prefill();
    let healthy = Accelerator::execute_trace(&mut e, &trace).breakdown;
    let faulted = e
        .try_execute_trace_faulted(&trace, &picachu::faults::FaultPlan::none())
        .expect("empty plan executes");
    assert_eq!(healthy, faulted, "empty fault plan must be the identity");
}

#[test]
fn compile_hints_distinguish_compiled_from_analytical_backends() {
    let hints: Vec<(String, bool)> = all_backends()
        .iter()
        .map(|b| (b.name().to_string(), b.compile_hint().cached_kernel_compilation))
        .collect();
    for (name, cached) in &hints {
        let expect = matches!(name.as_str(), "PICACHU" | "CGRA-base");
        assert_eq!(*cached, expect, "{name}: cached_kernel_compilation");
    }
}

#[test]
fn cost_hints_are_exact_when_warm_and_bounded_when_cold() {
    // the PR-6 placement contract: `estimate_trace` must agree with the
    // measured `execute_trace(..).total()` to HINT_WARM_TOLERANCE once a
    // backend is warm, and land within a small constant factor cold —
    // otherwise the serving placer schedules against fiction
    for (workload, trace) in [("prefill", prefill()), ("decode", decode())] {
        for mut b in all_backends() {
            let name = b.name().to_string();
            let cold = b.estimate_trace(&trace);
            let measured = b.execute_trace(&trace).total();
            assert!(
                cold.is_finite() && cold > 0.0,
                "{name} on {workload}: cold hint not positive-finite: {cold}"
            );
            let ratio = cold / measured;
            assert!(
                (0.125..=8.0).contains(&ratio),
                "{name} on {workload}: cold hint off by {ratio:.3}×"
            );
            // warm: after one real execution the hint must be exact
            let warm = b.estimate_trace(&trace);
            let rel = (warm - measured).abs() / measured;
            assert!(
                rel <= HINT_WARM_TOLERANCE,
                "{name} on {workload}: warm hint rel error {rel:e} > {HINT_WARM_TOLERANCE:e}"
            );
            // estimation is read-only: re-measuring is bit-identical
            let again = b.execute_trace(&trace).total();
            assert_eq!(again.to_bits(), measured.to_bits(), "{name}: estimate perturbed state");
        }
    }
}

#[test]
fn default_hint_floor_is_not_good_enough_for_the_a100() {
    // the gap this suite exposed: the trait's default macs+elements floor
    // prices one MAC per cycle, but the A100 retires thousands of MACs per
    // ns — so the floor overprices a decode trace by ~two orders of
    // magnitude while simultaneously ignoring the 8 µs kernel launches
    // that actually dominate it. That is why GpuModel overrides
    // `estimate_trace` with its full roofline; keep the negative result on
    // record so nobody "simplifies" the override away.
    let trace = decode();
    let floor: f64 = trace.iter().map(|o| (o.macs() + o.elements()) as f64).sum();
    let mut gpu = GpuModel::default();
    let measured = Accelerator::execute_trace(&mut gpu, &trace).total();
    assert!(
        floor > 10.0 * measured,
        "floor {floor:.3e} vs measured {measured:.3e}: the default floor \
         suddenly models the A100?"
    );
    // while the override stays exact on the very same trace
    let hinted = Accelerator::estimate_trace(&gpu, &trace);
    assert!((hinted - measured).abs() / measured <= HINT_WARM_TOLERANCE);
}

#[test]
fn picachu_cold_hint_does_not_touch_the_compile_cache() {
    // a config no other test uses, so its compile keys are cold in the
    // process-wide cache no matter what ran before us; estimating a trace
    // must price it via COLD_NONLINEAR_CYCLES_PER_ELEMENT without
    // publishing mappings as a side effect
    let cfg = EngineConfig { cgra_rows: 5, cgra_cols: 3, ..EngineConfig::default() };
    let e = PicachuEngine::new(cfg.clone());
    let trace = prefill();
    let cold = e.estimate_trace(&trace);
    assert!(cold > 0.0 && cold.is_finite());
    // still cold after estimating: a second estimate is bit-identical and
    // a fresh engine with the same config sees the same cold number
    assert_eq!(e.estimate_trace(&trace).to_bits(), cold.to_bits());
    assert_eq!(PicachuEngine::new(cfg).estimate_trace(&trace).to_bits(), cold.to_bits());
}

#[test]
fn relative_ordering_matches_the_paper() {
    // end-to-end on one LLaMA prefill trace through the unified harness:
    // PICACHU beats the CPU offload, Gemmini (whose scalar core owns
    // SwiGLU/RMSNorm/RoPE) and the conventional scalar CGRA; Tandem stays
    // the strongest baseline (the Fig. 8 premise). The GPU roofline is a
    // whole A100 die and is excluded from the on-chip ordering.
    let trace = picachu_llm::model_trace(&ModelConfig::llama2_7b(), 256);
    let totals: Vec<(String, f64)> = all_backends()
        .iter_mut()
        .map(|b| {
            let r = b.execute_trace(&trace);
            (r.backend.clone(), r.total())
        })
        .collect();
    let total = |name: &str| {
        totals
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .1
    };
    assert!(total("PICACHU") < total("CPU"), "PICACHU must beat the CPU offload");
    assert!(total("PICACHU") < total("Gemmini"), "PICACHU must beat Gemmini on LLaMA");
    assert!(total("PICACHU") < total("CGRA-base"), "PICACHU must beat the scalar CGRA");
    assert!(total("Tandem") < total("CGRA-base"), "vector unit beats scalar fabric");
}
