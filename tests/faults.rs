//! Engine-level fault scenarios: the degradation ladder, faulted trace
//! execution, DMA stall accounting, mapper deadlines, and worker-panic
//! isolation — exercised end-to-end through the public `picachu` API.
//!
//! The exhaustive per-fault oracle identities live in `picachu-oracle`
//! (`PICACHU_FAULT_SMOKE=1 cargo test -p picachu-oracle --test faults`);
//! this suite covers the integration seams those sweeps assume.

use picachu::engine::{EngineConfig, FallbackLevel, PicachuEngine};
use picachu::faults::{DmaFaultModel, FaultPlan};
use picachu::PicachuError;
use picachu_llm::trace::TraceOp;
use picachu_nonlinear::NonlinearOp;
use picachu_runtime::{try_parallel_find_first, try_parallel_map};

#[test]
fn every_paper_kernel_survives_a_dead_pe_and_a_dead_link() {
    // One central dead PE and one central dead link, every paper kernel:
    // the degradation ladder must re-map (never reject) and the faulted
    // trace must execute with finite, positive-where-expected costs.
    for plan in [FaultPlan::dead_tile(5), FaultPlan::dead_link(5, 6)] {
        let mut e = PicachuEngine::new(EngineConfig::default());
        for op in NonlinearOp::ALL {
            let d = e
                .compile_op_degraded(op, &plan)
                .unwrap_or_else(|err| panic!("{op:?} under {plan}: {err}"));
            assert!(
                matches!(d.fallback, FallbackLevel::Remapped),
                "{op:?} under {plan}: a single fault must re-map, got {}",
                d.fallback
            );
            assert!(d.ii_inflation >= 1.0 || d.ii_inflation > 0.0);
            let b = e
                .try_execute_trace_faulted(
                    &[TraceOp::Nonlinear { op, rows: 32, channel: 64 }],
                    &plan,
                )
                .unwrap_or_else(|err| panic!("{op:?} trace under {plan}: {err}"));
            assert!(b.nonlinear.is_finite() && b.nonlinear > 0.0, "{op:?}");
        }
    }
}

#[test]
fn faulted_execution_is_deterministic() {
    let plan = FaultPlan::seeded(0xFA17_0001, 4, 4);
    let trace = [
        TraceOp::Gemm { m: 64, k: 64, n: 64, count: 1 },
        TraceOp::Nonlinear { op: NonlinearOp::Softmax, rows: 64, channel: 64 },
        TraceOp::Nonlinear { op: NonlinearOp::Gelu, rows: 64, channel: 256 },
    ];
    let run = || {
        let mut e = PicachuEngine::new(EngineConfig::default());
        e.try_execute_trace_faulted(&trace, &plan).expect("seeded plan executes")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.gemm.to_bits(), b.gemm.to_bits());
    assert_eq!(a.nonlinear.to_bits(), b.nonlinear.to_bits());
    assert_eq!(a.data_movement.to_bits(), b.data_movement.to_bits());
    assert_eq!(a.overhead.to_bits(), b.overhead.to_bits());
}

#[test]
fn dma_stall_density_monotonically_inflates_overhead() {
    // More stall probability can only add retry/backoff cycles to the
    // dedicated fault-service `overhead` phase (the healthy data-movement
    // term never moves); the deterministic per-(transfer, attempt) draw
    // makes this exactly monotone, not just statistically so.
    let trace = [TraceOp::Nonlinear { op: NonlinearOp::LayerNorm, rows: 64, channel: 4096 }];
    let run = |ppm: u32| {
        let plan = FaultPlan::none()
            .with_dma(DmaFaultModel { stall_ppm: ppm, stall_cycles: 400, seed: 0xD3AD });
        let mut e =
            PicachuEngine::new(EngineConfig { buffer_kb: 1, ..EngineConfig::default() });
        e.try_execute_trace_faulted(&trace, &plan).expect("stalls retry, not fail")
    };
    let clean = run(0);
    let mild = run(5_000);
    let harsh = run(50_000);
    assert!(
        clean.overhead <= mild.overhead && mild.overhead <= harsh.overhead,
        "{} / {} / {}",
        clean.overhead,
        mild.overhead,
        harsh.overhead
    );
    assert!(
        harsh.overhead > clean.overhead,
        "5 % stall density over many Case-2 chunks must cost something"
    );
    assert_eq!(
        clean.data_movement, harsh.data_movement,
        "stall service must never inflate the healthy data-movement term"
    );
}

#[test]
fn hopeless_dma_channel_is_a_typed_rejection() {
    // stall_ppm = 1e6 stalls every attempt of every transfer: the retry
    // ladder exhausts and the engine returns PicachuError::Dma, not a hang
    // or a panic.
    let plan = FaultPlan::none()
        .with_dma(DmaFaultModel { stall_ppm: 1_000_000, stall_cycles: 10, seed: 1 });
    let mut e = PicachuEngine::new(EngineConfig { buffer_kb: 1, ..EngineConfig::default() });
    let err = e
        .try_execute_trace_faulted(
            &[TraceOp::Nonlinear { op: NonlinearOp::LayerNorm, rows: 8, channel: 4096 }],
            &plan,
        )
        .expect_err("a channel that always stalls must exhaust its retries");
    assert!(matches!(err, PicachuError::Dma(_)), "got {err}");
}

#[test]
fn zero_deadline_on_a_cold_engine_rejects_typed() {
    // A 0 ms budget with nothing cached times out on every rung (own spec,
    // then the universal fallback fabric) and surfaces the mapper's typed
    // error — the process must never abort on a pathological deadline.
    let plan = FaultPlan::dead_tile(3);
    let mut e = PicachuEngine::new(EngineConfig {
        compile_deadline_ms: Some(0),
        seed: 0xC01D_DEAD, // unique seed => cold process cache
        ..EngineConfig::default()
    });
    match e.compile_op_degraded(NonlinearOp::Silu, &plan) {
        Err(PicachuError::Compile { op, .. }) => assert_eq!(op, NonlinearOp::Silu),
        Ok(d) => panic!("0 ms deadline on a cold cache compiled via {}", d.fallback),
        Err(other) => panic!("wrong error class: {other}"),
    }
}

#[test]
fn worker_panics_are_isolated_and_typed() {
    let err = try_parallel_map(&[1usize, 2, 3, 4], |_, &x| {
        if x == 3 {
            panic!("injected worker fault");
        }
        x * 10
    })
    .expect_err("the panicking worker must surface as WorkerPanic");
    assert!(err.to_string().contains("injected worker fault"), "{err}");

    // the non-panicking path keeps input order bit-identically
    let ok = try_parallel_map(&[3usize, 1, 2], |_, &x| x * 2).expect("no faults");
    assert_eq!(ok, vec![6, 2, 4]);

    let err = try_parallel_find_first(4, |i| {
        if i == 1 {
            panic!("scout {i} died");
        }
        None::<usize>
    })
    .expect_err("panicking scout must not be swallowed as 'not found'");
    assert!(err.to_string().contains("scout"), "{err}");
}
