//! On-disk mapping-store round trip: a process that compiled cold with a
//! `PICACHU_MAPSTORE` directory configured leaves behind a versioned
//! JSON-lines store, and a "repeat process" (modelled here by clearing the
//! process-wide compile cache, which also re-arms the store load) warms
//! every kernel from disk — zero mapper invocations — and produces a
//! bit-identical [`ExecutionReport`](picachu::ExecutionReport).
//!
//! This lives in its own integration-test binary (its own process) because
//! the store override is process-global: any other test compiling while it
//! is set would publish into — and warm from — the temporary store.

use picachu::engine::{EngineConfig, PicachuEngine};
use picachu::{compile_cache, set_mapstore_dir, Accelerator};
use picachu_llm::trace::model_trace;
use picachu_llm::ModelConfig;

#[test]
fn warm_from_store_run_is_bit_identical_and_mapper_free() {
    let dir = std::env::temp_dir()
        .join(format!("picachu-mapstore-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    set_mapstore_dir(Some(dir.clone()));
    compile_cache::clear();

    let trace = model_trace(&ModelConfig::gpt2(), 64);
    let mut cold_engine = PicachuEngine::new(EngineConfig::default());
    // the trait method returns the full ExecutionReport (the inherent
    // method on the engine returns only the Breakdown)
    let cold = Accelerator::execute_trace(&mut cold_engine, &trace);
    let (_, cold_misses) = compile_cache::stats();
    assert!(cold_misses > 0, "first run must actually compile cold");

    // the store file is versioned JSON lines
    let raw = std::fs::read_to_string(dir.join("mappings.jsonl")).expect("store file written");
    assert!(
        raw.starts_with("{\"picachu_mapstore\":1}"),
        "store must lead with its version header: {:?}",
        raw.lines().next()
    );
    assert!(raw.lines().count() > 1, "cold compiles must be persisted");

    // a repeat process: empty in-memory cache, same store directory
    compile_cache::clear();
    let mut warm_engine = PicachuEngine::new(EngineConfig::default());
    let warm = Accelerator::execute_trace(&mut warm_engine, &trace);
    let (warm_hits, warm_misses) = compile_cache::stats();
    assert!(warm_hits > 0, "repeat run must warm from the on-disk store");
    assert_eq!(warm_misses, 0, "store-warmed run must never re-run the mapper");
    assert_eq!(cold, warm, "warm-from-store report diverged from the cold one");

    set_mapstore_dir(None);
    compile_cache::clear();
    let _ = std::fs::remove_dir_all(&dir);
}
