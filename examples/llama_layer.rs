//! A LLaMA2-7B decoder layer, end to end, on PICACHU and every baseline.
//!
//! Demonstrates the paper's headline comparison at layer granularity: the
//! same operator trace executed by PICACHU (systolic array + plug-in CGRA),
//! a Gemmini-class accelerator (dedicated units + RISC-V fallback), a
//! Tandem-class processor and the CPU configuration — plus a functional
//! check that the CGRA-side math (RMSNorm → SwiGLU path) matches a f64
//! reference on real tensors.
//!
//! Run with: `cargo run --release --example llama_layer`

use picachu::engine::{EngineConfig, PicachuEngine};
use picachu_baselines::common::{execute_trace_with, NonlinearExecutor};
use picachu_baselines::{CpuModel, GemminiModel, TandemModel};
use picachu_llm::trace::layer_trace;
use picachu_llm::ModelConfig;
use picachu_nonlinear::kernels::{activation, norm};
use picachu_nonlinear::ApproxConfig;
use picachu_num::{DataFormat, ErrorStats};
use picachu_systolic::SystolicArray;

fn main() {
    let cfg = ModelConfig::llama2_7b();
    let seq = 1024;
    let trace = layer_trace(&cfg, seq);
    println!("one {} decoder layer at seq {}: {} operators", cfg.name, seq, trace.len());
    for op in &trace {
        println!("  {op}");
    }

    // functional spot-check: RMSNorm + SwiGLU on realistic tensors
    let x: Vec<f32> = (0..4096).map(|i| ((i as f32) * 0.311).sin() * 2.5).collect();
    let approx_cfg = ApproxConfig::default();
    let normed = norm::rmsnorm_fp(&x, &approx_cfg);
    let gate: Vec<f32> = (0..4096).map(|i| ((i as f32) * 0.177).cos()).collect();
    let gated = activation::swiglu_fp(&normed, &gate, &approx_cfg);
    let reference = {
        let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let nd = norm::rmsnorm_ref(&xd);
        let gd: Vec<f64> = gate.iter().map(|&v| v as f64).collect();
        activation::swiglu_ref(&nd, &gd)
    };
    let got: Vec<f64> = gated.iter().map(|&v| v as f64).collect();
    println!("\nRMSNorm→SwiGLU accuracy: {}", ErrorStats::compare(&got, &reference));

    // latency on every device
    let sys = SystolicArray::new(32, 32);
    println!("\n{:<10} {:>14} {:>10}", "device", "cycles", "nl share");
    let mut engine = PicachuEngine::new(EngineConfig {
        format: DataFormat::Int16,
        ..EngineConfig::default()
    });
    let pic = engine.execute_trace(&trace);
    println!(
        "{:<10} {:>14.0} {:>9.1}%",
        "PICACHU",
        pic.total(),
        100.0 * (pic.nonlinear + pic.data_movement) / pic.total()
    );
    let devices: [&dyn NonlinearExecutor; 3] =
        [&TandemModel::default(), &GemminiModel::default(), &CpuModel::default()];
    for d in devices {
        let b = execute_trace_with(d, &sys, &trace);
        println!(
            "{:<10} {:>14.0} {:>9.1}%   ({:.2}x slower than PICACHU)",
            d.name(),
            b.total(),
            100.0 * (b.nonlinear + b.data_movement) / b.total(),
            b.total() / pic.total()
        );
    }
}
