//! The §3.2.3 / §5.3.3 user-defined-precision story: sweep the Taylor-term
//! count and the data format, showing the accuracy/latency trade-off the
//! precision-aware design exposes.
//!
//! Run with: `cargo run --release --example precision_tradeoff`

use picachu::engine::{EngineConfig, PicachuEngine};
use picachu_llm::ModelConfig;
use picachu_nonlinear::accuracy::{Distribution, Scheme};
use picachu_nonlinear::kernels::softmax::{softmax_fp, softmax_ref};
use picachu_nonlinear::ApproxConfig;
use picachu_num::{DataFormat, ErrorStats};

fn main() {
    // --- accuracy knob: Taylor terms ---
    println!("{:<8} {:>14} {:>16}", "terms", "exp max rel", "softmax max abs");
    let logits = Distribution::AttentionLogits.sample(4096, 3);
    let reference = softmax_ref(&logits.iter().map(|&v| v as f64).collect::<Vec<_>>());
    for terms in [2usize, 3, 4, 6, 8] {
        let cfg = ApproxConfig { exp_terms: terms, ..ApproxConfig::default() };
        let exp_err = ErrorStats::sweep(-20.0, 0.0, 10_000, |x| {
            picachu_nonlinear::ops::exp_approx(x as f32, &cfg) as f64
        }, f64::exp);
        let got: Vec<f64> = softmax_fp(&logits, &cfg).iter().map(|&v| v as f64).collect();
        let sm = ErrorStats::compare(&got, &reference);
        println!("{:<8} {:>14.2e} {:>16.2e}", terms, exp_err.max_rel, sm.max_abs);
    }

    // --- performance knob: format (INT16 = 4-lane vectorization) ---
    println!("\n{:<8} {:>14} {:>12}", "format", "LLaMA2-7B cyc", "vs FP32");
    let mut base_total = 0.0;
    for fmt in [DataFormat::Fp32, DataFormat::Fp16, DataFormat::Int32, DataFormat::Int16] {
        let mut e = PicachuEngine::new(EngineConfig { format: fmt, ..EngineConfig::default() });
        let t = e.execute_model(&ModelConfig::llama2_7b(), 512).total();
        if fmt == DataFormat::Fp32 {
            base_total = t;
        }
        println!("{:<8} {:>14.3e} {:>11.2}x", fmt.to_string(), t, base_total / t);
    }

    // --- the combined check: INT16 keeps model-level accuracy (Table 5) ---
    let x = Distribution::LlamaWide.sample(8192, 9);
    let ref64: Vec<f64> = {
        let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        picachu_nonlinear::kernels::norm::rmsnorm_ref(&xd)
    };
    let int16: Vec<f64> = Scheme::PicachuInt16.rmsnorm(&x).iter().map(|&v| v as f64).collect();
    println!(
        "\nINT16 RMSNorm on llama-wide activations: {}",
        ErrorStats::compare(&int16, &ref64)
    );
    println!("faster format, same model accuracy — the §5.3.3 trade-off.");
}
