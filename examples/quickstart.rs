//! Quickstart: the full PICACHU pipeline on one kernel.
//!
//! 1. approximate a nonlinear operation (softmax) with the Table 3 algorithm
//!    and check its accuracy;
//! 2. compile the kernel: fuse the Table 4 patterns and modulo-map it onto
//!    the 4×4 heterogeneous CGRA;
//! 3. simulate the mapped configuration cycle by cycle;
//! 4. run an end-to-end model through the engine.
//!
//! Run with: `cargo run --release --example quickstart`

use picachu::engine::{EngineConfig, PicachuEngine};
use picachu_cgra::{CgraConfig, CgraSimulator};
use picachu_compiler::arch::CgraSpec;
use picachu_compiler::mapper::map_dfg;
use picachu_compiler::transform::fuse_patterns;
use picachu_ir::kernels::softmax_kernel;
use picachu_llm::ModelConfig;
use picachu_nonlinear::kernels::softmax::{softmax_fp, softmax_ref};
use picachu_nonlinear::ApproxConfig;
use picachu_num::ErrorStats;

fn main() {
    // --- 1. the algorithm ---
    let logits: Vec<f32> = (0..256).map(|i| ((i as f32) * 0.173).sin() * 8.0).collect();
    let approx = softmax_fp(&logits, &ApproxConfig::default());
    let reference = softmax_ref(&logits.iter().map(|&v| v as f64).collect::<Vec<_>>());
    let approx64: Vec<f64> = approx.iter().map(|&v| v as f64).collect();
    println!("softmax accuracy: {}", ErrorStats::compare(&approx64, &reference));

    // --- 2. the compiler ---
    let spec = CgraSpec::picachu(4, 4);
    println!("\nfabric:\n{spec}");
    let kernel = softmax_kernel(4);
    for l in &kernel.loops {
        let fused = fuse_patterns(&l.dfg);
        let mapping = map_dfg(&fused, &spec, 42).expect("kernel maps");
        println!(
            "{:<12} {} nodes -> {} fused, II={} (util {:.0}%)",
            l.label,
            l.dfg.len(),
            fused.len(),
            mapping.ii,
            100.0 * mapping.utilization(spec.len())
        );

        // --- 3. the simulator ---
        let cfg = CgraConfig::from_mapping(&fused, &mapping, &spec);
        let report = CgraSimulator::new(&spec, &fused, &cfg).run(1024);
        println!("  simulated: {report}");
    }

    // the compiled artifact a hardware engineer would inspect
    let fused = fuse_patterns(&kernel.loops[2].dfg);
    let mapping = map_dfg(&fused, &spec, 42).expect("maps");
    let cfg = CgraConfig::from_mapping(&fused, &mapping, &spec);
    println!("
{}", picachu_cgra::schedule::reservation_table(&cfg, &spec));

    // --- 4. end to end ---
    let mut engine = PicachuEngine::new(EngineConfig::default());
    let b = engine.execute_model(&ModelConfig::gpt2(), 256);
    println!("\nGPT-2 @256 on {engine}:\n  {b}");
    println!("  energy: {:.1} uJ", engine.energy_nj(&b) / 1000.0);
}
