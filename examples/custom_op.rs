//! The "upcoming operations" story: add a *new* nonlinear operation —
//! Mish, `x·tanh(softplus(x))` — that PICACHU has never seen, without any
//! hardware change.
//!
//! 1. implement it numerically from the Table 3 operator primitives
//!    (two range-reduced exponentials + division) and verify accuracy;
//! 2. build its loop-body DFG with the same builder the kernel library uses;
//! 3. fuse, map and simulate it on the unmodified 4×4 fabric —
//!    the flexibility claim of §3.2.2 made concrete.
//!
//! Run with: `cargo run --release --example custom_op`

use picachu_cgra::{CgraConfig, CgraSimulator};
use picachu_compiler::arch::CgraSpec;
use picachu_compiler::mapper::map_dfg;
use picachu_compiler::transform::{count_patterns, fuse_patterns, unroll};
use picachu_ir::{DfgBuilder, Opcode};
use picachu_nonlinear::ops::{exp_approx, tanh_approx, ApproxConfig};
use picachu_num::ErrorStats;

/// Mish from the PICACHU operator primitives: softplus via the range-reduced
/// exp + log... here the numerically stable form `softplus(x) =
/// max(x, 0) + ln(1 + exp(-|x|))`, with `ln(1+u)` evaluated through the
/// exp-based identity to stay within the primitive set.
fn mish_approx(x: f32, cfg: &ApproxConfig) -> f32 {
    let sp = if x > 20.0 {
        x
    } else {
        // softplus(x) = ln(1 + e^x) computed as x + ln(1 + e^-x) for x > 0
        let e = exp_approx(-x.abs(), cfg);
        x.max(0.0) + picachu_nonlinear::ops::ln_approx(1.0 + e, cfg)
    };
    x * tanh_approx(sp, cfg)
}

fn mish_ref(x: f64) -> f64 {
    x * ((1.0 + x.exp()).ln()).tanh()
}

fn main() {
    // --- numerics ---
    let cfg = ApproxConfig::default();
    let s = ErrorStats::sweep(-15.0, 15.0, 50_000, |x| mish_approx(x as f32, &cfg) as f64, mish_ref);
    println!("Mish accuracy vs f64 reference: {s}");
    assert!(s.max_abs < 1e-4, "accuracy target missed");

    // --- the kernel DFG (what the pattern matcher + offload pass would emit) ---
    let mut b = DfgBuilder::new("mish");
    let i = b.loop_control();
    let x = b.load_elem(i);
    // softplus: exp chain + ln via second chain (constants folded)
    let e = b.exp_chain(x, 4, 1.0);
    let lg = b.op(Opcode::Add, &[e]); // 1 + e
    let sp = b.op(Opcode::Mul, &[lg]); // ln series head (folded Horner start)
    // tanh(sp): exp chain + rational combine
    let e2 = b.exp_chain(sp, 4, 1.0);
    let num = b.op(Opcode::Sub, &[e2]);
    let den = b.op(Opcode::Add, &[e2]);
    let th = b.op(Opcode::Div, &[num, den]);
    let y = b.op(Opcode::Mul, &[x, th]);
    b.store_elem(i, y);
    let dfg = b.finish();
    println!("\nmish kernel: {} nodes, intensity {:.1}", dfg.len(), dfg.computational_intensity());
    let patterns = count_patterns(&dfg);
    println!("Table 4 patterns found: {patterns:?}");

    // --- compile & map on the unmodified fabric ---
    let spec = CgraSpec::picachu(4, 4);
    println!("\n{:<6} {:>8} {:>6} {:>14}", "UF", "nodes", "II", "cyc/element");
    for uf in [1usize, 2, 4] {
        let fused = fuse_patterns(&unroll(&dfg, uf));
        let m = map_dfg(&fused, &spec, 7).expect("mish maps on the stock fabric");
        println!("{:<6} {:>8} {:>6} {:>14.2}", uf, fused.len(), m.ii, m.ii as f64 / uf as f64);
        // --- simulate ---
        let cfg = CgraConfig::from_mapping(&fused, &m, &spec);
        let r = CgraSimulator::new(&spec, &fused, &cfg).run(256);
        assert_eq!(r.iterations, 256);
    }
    println!("\na brand-new operation runs on unmodified PICACHU hardware — only the");
    println!("compiler saw it (the §3.2.2 flexibility claim).");
}
