//! Golden-value regression tests for the nonlinear kernels.
//!
//! The accuracy suite (`accuracy.rs`, Tables 2/5/6) samples random inputs and
//! asserts *statistical* error bounds, so it is insensitive to small kernel
//! changes as long as the aggregate stays under threshold. These tests pin the
//! exact outputs of each kernel on one fixed input vector instead — any change
//! to an approximation constant, LUT layout, rounding mode or requantization
//! step shows up as a diff here even if Table 5's aggregate metric still
//! passes. The values were produced by the kernels themselves at the revision
//! that introduced this file and are compared bit-for-bit-ish (1e-7 absolute),
//! independent of any PRNG.

use picachu_nonlinear::kernels::{activation, norm, softmax};
use picachu_nonlinear::ApproxConfig;

/// Fixed probe vector: spans both GELU tails, softmax dynamic range, and a
/// zero (exercises rmsnorm's zero-preservation and exp(0)).
const X: [f32; 8] = [-4.0, -2.5, -1.0, -0.25, 0.0, 0.5, 1.75, 3.0];

fn assert_pinned(name: &str, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{name}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= 1e-7,
            "{name}[{i}] drifted: got {g:?}, pinned {w:?}"
        );
    }
}

#[test]
fn golden_softmax_fp32() {
    let got = softmax::softmax_fp(&X, &ApproxConfig::default());
    assert_pinned(
        "softmax_fp",
        &got,
        &[
            0.00061594247,
            0.0027604643,
            0.012371542,
            0.026190553,
            0.03362934,
            0.055445403,
            0.19352347,
            0.67546326,
        ],
    );
}

#[test]
fn golden_softmax_int16() {
    let got = softmax::softmax_int(&X, 16, &ApproxConfig::default());
    assert_pinned(
        "softmax_int16",
        &got,
        &[
            0.00061035156,
            0.002746582,
            0.012359619,
            0.026184082,
            0.033599854,
            0.055419922,
            0.19351196,
            0.67544556,
        ],
    );
}

#[test]
fn golden_softmax_int8() {
    let got = softmax::softmax_int(&X, 8, &ApproxConfig::default());
    assert_pinned(
        "softmax_int8",
        &got,
        &[
            0.00061035156,
            0.0027770996,
            0.012298584,
            0.026184082,
            0.033691406,
            0.055786133,
            0.19668579,
            0.6718445,
        ],
    );
}

#[test]
fn golden_layernorm() {
    let cfg = ApproxConfig::default();
    assert_pinned(
        "layernorm_fp",
        &norm::layernorm_fp(&X, &cfg),
        &[
            -1.7669086,
            -1.0481662,
            -0.32942367,
            0.029947605,
            0.14973803,
            0.38931885,
            0.98827094,
            1.587223,
        ],
    );
    assert_pinned(
        "layernorm_int16",
        &norm::layernorm_int(&X, 16, &cfg),
        &[
            -1.7668996,
            -1.0481277,
            -0.32935575,
            0.030030213,
            0.14966278,
            0.3894162,
            0.9883114,
            1.5872066,
        ],
    );
}

#[test]
fn golden_rmsnorm() {
    let cfg = ApproxConfig::default();
    assert_pinned(
        "rmsnorm_fp",
        &norm::rmsnorm_fp(&X, &cfg),
        &[
            -1.8955142,
            -1.1846964,
            -0.47387856,
            -0.11846964,
            0.0,
            0.23693928,
            0.82928747,
            1.4216356,
        ],
    );
    assert_pinned(
        "rmsnorm_int16",
        &norm::rmsnorm_int(&X, 16, &cfg),
        &[
            -1.8955656,
            -1.1846064,
            -0.4738914,
            -0.11841182,
            0.0,
            0.23706779,
            0.82937104,
            1.4216743,
        ],
    );
}

#[test]
fn golden_gelu() {
    let cfg = ApproxConfig::default();
    let fp: Vec<f32> = X.iter().map(|&v| activation::gelu_fp(v, &cfg)).collect();
    assert_pinned(
        "gelu_fp",
        &fp,
        &[
            -7.021427e-5,
            -0.015084296,
            -0.158808,
            -0.100324646,
            0.0,
            0.345714,
            1.6797954,
            2.9963627,
        ],
    );
    assert_pinned(
        "gelu_int16",
        &activation::gelu_int(&X, 16, 512),
        &[
            -0.00012207404,
            -0.014648885,
            -0.15442365,
            -0.0987579,
            0.0,
            0.3431501,
            1.6780298,
            2.9958189,
        ],
    );
}

#[test]
fn golden_silu() {
    let cfg = ApproxConfig::default();
    let fp: Vec<f32> = X.iter().map(|&v| activation::silu_fp(v, &cfg)).collect();
    assert_pinned(
        "silu_fp",
        &fp,
        &[
            -0.071944855,
            -0.18964545,
            -0.26894143,
            -0.109455876,
            0.0,
            0.31122968,
            1.4909173,
            2.8577223,
        ],
    );
}
