//! # picachu-nonlinear — PICACHU's nonlinear-operation algorithms
//!
//! This crate implements §4.1 of the paper end to end:
//!
//! * [`ops`] — the Table 3 calculation methods for the basic nonlinear
//!   mathematical operators (`exp`, `log`, `sin`, `cos`, division, inverse
//!   square root) using range reduction through the FP2FX unit followed by
//!   user-adjustable Taylor expansion;
//! * [`kernels`] — the Table 1 nonlinear *operations* (Softmax, ReLU, GeLU,
//!   GeGLU, SiLU/SwiGLU, LayerNorm, RMSNorm, RoPE) in reference `f64`,
//!   PICACHU FP (FP32/FP16-storage) and PICACHU INT (INT32/INT16) variants,
//!   with their element-wise (EO) vs reduction-then-element-wise (RE) loop
//!   structure made explicit;
//! * [`intpoly`] — I-BERT-style completing-the-square polynomial evaluation
//!   on quantized inputs with dyadic rescaling;
//! * [`baselines`] — the I-BERT and gemmlowp approximation schemes the paper
//!   compares against in Table 2;
//! * [`accuracy`] — the accuracy-evaluation harness behind Tables 2, 5, 6.
//!
//! ```
//! use picachu_nonlinear::ops::{exp_approx, ApproxConfig};
//!
//! let cfg = ApproxConfig::default();
//! let y = exp_approx(1.0, &cfg);
//! assert!((y - std::f32::consts::E).abs() < 1e-5);
//! ```

pub mod accuracy;
pub mod baselines;
pub mod intpoly;
pub mod kernels;
pub mod ops;

pub use kernels::{LoopKind, LoopPhase, NonlinearOp, OpCategory};
pub use ops::ApproxConfig;
