//! Accuracy-evaluation harness behind Tables 2, 5 and 6.
//!
//! **Substitution note (see DESIGN.md §1):** the paper measures perplexity of
//! multi-billion-parameter checkpoints on Wikitext2 and lm-eval zero-shot
//! tasks. This sandbox cannot run those checkpoints, so the harness evaluates
//! the *identical code paths* on (a) the activation distributions those layers
//! actually see — including the wide-dynamic-range LLaMA regime that breaks
//! I-BERT — and (b) a self-contained attention language model
//! (`picachu-llm::tinylm`) whose perplexity proxy is re-measured under each
//! scheme. The comparisons preserve the paper's qualitative result: who wins,
//! who blows up, and by how many orders of magnitude.

use crate::baselines::{gemmlowp, ibert};
use crate::kernels::{activation, norm, softmax};
use crate::ops::ApproxConfig;
use picachu_num::Fp16;
use picachu_testkit::TestRng;
use std::fmt;

/// A nonlinear-operation implementation scheme under accuracy evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Half-precision reference: exact math with FP16 storage (the paper's
    /// "FP16" baseline rows).
    Fp16Reference,
    /// PICACHU algorithm, FP16 storage / FP32 intermediates.
    PicachuFp16,
    /// PICACHU algorithm, INT16 quantized path.
    PicachuInt16,
    /// I-BERT integer-only kernels at INT8 (Table 2 row).
    IBert,
    /// gemmlowp fixed-point kernels (Table 2 row).
    Gemmlowp,
}

impl Scheme {
    /// All schemes in the order Table 2/5 present them.
    pub const ALL: [Scheme; 5] = [
        Scheme::Fp16Reference,
        Scheme::PicachuFp16,
        Scheme::PicachuInt16,
        Scheme::IBert,
        Scheme::Gemmlowp,
    ];

    /// Display name matching the tables.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Fp16Reference => "FP16",
            Scheme::PicachuFp16 => "Ours (FP16)",
            Scheme::PicachuInt16 => "Ours (INT16)",
            Scheme::IBert => "I-BERT",
            Scheme::Gemmlowp => "Gemmlowp",
        }
    }

    /// Softmax under this scheme.
    pub fn softmax(self, x: &[f32]) -> Vec<f32> {
        let cfg = ApproxConfig::default();
        match self {
            Scheme::Fp16Reference => {
                let x16: Vec<f64> = x.iter().map(|&v| Fp16::round_trip(v) as f64).collect();
                softmax::softmax_ref(&x16)
                    .into_iter()
                    .map(|v| Fp16::round_trip(v as f32))
                    .collect()
            }
            Scheme::PicachuFp16 => softmax::softmax_fp16(x, &cfg),
            Scheme::PicachuInt16 => softmax::softmax_int(x, 16, &cfg),
            Scheme::IBert => ibert::i_softmax(x),
            Scheme::Gemmlowp => gemmlowp::softmax(x),
        }
    }

    /// GeLU under this scheme.
    pub fn gelu(self, x: &[f32]) -> Vec<f32> {
        let cfg = ApproxConfig::default();
        match self {
            Scheme::Fp16Reference => x
                .iter()
                .map(|&v| {
                    Fp16::round_trip(activation::gelu_tanh_ref(Fp16::round_trip(v) as f64) as f32)
                })
                .collect(),
            Scheme::PicachuFp16 => x
                .iter()
                .map(|&v| Fp16::round_trip(activation::gelu_fp(Fp16::round_trip(v), &cfg)))
                .collect(),
            Scheme::PicachuInt16 => activation::gelu_int(x, 16, 1024),
            Scheme::IBert => {
                let params = picachu_num::QuantParams::calibrate(x, 8);
                x.iter()
                    .map(|&v| ibert::i_gelu(params.quantize(v as f64), params.scale) as f32)
                    .collect()
            }
            Scheme::Gemmlowp => {
                let params = picachu_num::QuantParams::calibrate(x, 8);
                x.iter()
                    .map(|&v| gemmlowp::gelu(params.dequantize(params.quantize(v as f64))) as f32)
                    .collect()
            }
        }
    }

    /// SiLU under this scheme.
    pub fn silu(self, x: &[f32]) -> Vec<f32> {
        let cfg = ApproxConfig::default();
        match self {
            Scheme::Fp16Reference => x
                .iter()
                .map(|&v| Fp16::round_trip(activation::silu_ref(Fp16::round_trip(v) as f64) as f32))
                .collect(),
            Scheme::PicachuFp16 => x
                .iter()
                .map(|&v| Fp16::round_trip(activation::silu_fp(Fp16::round_trip(v), &cfg)))
                .collect(),
            Scheme::PicachuInt16 => activation::silu_int(x, 16, 1024),
            Scheme::IBert => ibert::i_silu(x),
            Scheme::Gemmlowp => {
                let params = picachu_num::QuantParams::calibrate(x, 8);
                x.iter()
                    .map(|&v| gemmlowp::silu(params.dequantize(params.quantize(v as f64))) as f32)
                    .collect()
            }
        }
    }

    /// LayerNorm under this scheme.
    pub fn layernorm(self, x: &[f32]) -> Vec<f32> {
        let cfg = ApproxConfig::default();
        match self {
            Scheme::Fp16Reference => {
                let x16: Vec<f64> = x.iter().map(|&v| Fp16::round_trip(v) as f64).collect();
                norm::layernorm_ref(&x16)
                    .into_iter()
                    .map(|v| Fp16::round_trip(v as f32))
                    .collect()
            }
            Scheme::PicachuFp16 => norm::layernorm_fp16(x, &cfg),
            Scheme::PicachuInt16 => norm::layernorm_int(x, 16, &cfg),
            Scheme::IBert => ibert::i_layernorm(x),
            Scheme::Gemmlowp => gemmlowp::layernorm(x),
        }
    }

    /// RMSNorm under this scheme.
    pub fn rmsnorm(self, x: &[f32]) -> Vec<f32> {
        let cfg = ApproxConfig::default();
        match self {
            Scheme::Fp16Reference => {
                let x16: Vec<f64> = x.iter().map(|&v| Fp16::round_trip(v) as f64).collect();
                norm::rmsnorm_ref(&x16)
                    .into_iter()
                    .map(|v| Fp16::round_trip(v as f32))
                    .collect()
            }
            Scheme::PicachuFp16 => norm::rmsnorm_fp16(x, &cfg),
            Scheme::PicachuInt16 => norm::rmsnorm_int(x, 16, &cfg),
            Scheme::IBert => ibert::i_rmsnorm(x),
            Scheme::Gemmlowp => gemmlowp::rmsnorm(x),
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Activation distributions the nonlinear layers see during inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Narrow Gaussian — the BERT/GPT-2 regime I-BERT was designed for.
    BertLike,
    /// Attention logits after scaling: moderate range with deep negatives.
    AttentionLogits,
    /// LLaMA-class hidden states: heavy-tailed with rare large outliers
    /// (the regime that breaks fixed-range INT8 polynomials).
    LlamaWide,
}

impl Distribution {
    /// Samples `n` activations with a fixed seed.
    pub fn sample(self, n: usize, seed: u64) -> Vec<f32> {
        let mut rng = TestRng::seed_from_u64(seed);
        let gauss = |rng: &mut TestRng| rng.normal();
        match self {
            Distribution::BertLike => (0..n).map(|_| (gauss(&mut rng) * 1.5) as f32).collect(),
            Distribution::AttentionLogits => (0..n)
                .map(|_| (gauss(&mut rng) * 6.0 - 4.0).min(12.0) as f32)
                .collect(),
            Distribution::LlamaWide => (0..n)
                .map(|_| {
                    if rng.gen_bool(0.01) {
                        (gauss(&mut rng) * 45.0) as f32 // outlier channel
                    } else {
                        (gauss(&mut rng) * 2.0) as f32
                    }
                })
                .collect(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Distribution::BertLike => "bert-like",
            Distribution::AttentionLogits => "attention-logits",
            Distribution::LlamaWide => "llama-wide",
        }
    }
}

/// A synthetic zero-shot classification task (Table 6 substitution): a frozen
/// random linear scorer over `dim` features with `classes` choices; accuracy
/// is measured as argmax agreement with labels generated by the exact model,
/// after passing the logits through each scheme's softmax and the features
/// through its activation/normalization.
#[derive(Debug, Clone)]
pub struct ZeroShotTask {
    /// Task name (mirrors the paper's task list).
    pub name: &'static str,
    /// Feature dimension.
    pub dim: usize,
    /// Number of answer choices.
    pub classes: usize,
    /// Number of evaluation examples.
    pub examples: usize,
    /// Label-noise temperature: higher = harder task (lower baseline accuracy).
    pub temperature: f64,
    /// Target FP16 accuracy (the paper's baseline row); labels carry random
    /// noise calibrated so the exact pipeline scores approximately this.
    pub target_accuracy: f64,
}

/// The five synthetic tasks standing in for ARC-c, ARC-e, HellaSwag, PIQA and
/// WinoGrande, with difficulty (temperature) ordered to produce baseline
/// accuracies roughly matching the paper's FP16 rows.
pub fn zero_shot_tasks() -> Vec<ZeroShotTask> {
    // target accuracies follow the paper's GPT2-XL FP16 row (Table 6)
    vec![
        ZeroShotTask { name: "ARC-c", dim: 96, classes: 4, examples: 1200, temperature: 3.2, target_accuracy: 0.2849 },
        ZeroShotTask { name: "ARC-e", dim: 96, classes: 4, examples: 2300, temperature: 1.4, target_accuracy: 0.5096 },
        ZeroShotTask { name: "HS", dim: 128, classes: 4, examples: 4000, temperature: 1.5, target_accuracy: 0.5079 },
        ZeroShotTask { name: "PQ", dim: 64, classes: 2, examples: 1800, temperature: 1.1, target_accuracy: 0.7051 },
        ZeroShotTask { name: "WG", dim: 64, classes: 2, examples: 1200, temperature: 1.6, target_accuracy: 0.5832 },
    ]
}

impl ZeroShotTask {
    /// Evaluates the task under `scheme`, returning accuracy in `[0, 1]`.
    ///
    /// The pipeline per example: features → scheme.layernorm → frozen linear
    /// scorer → scheme.gelu on the pooled representation → scheme.softmax →
    /// argmax. Labels are sampled from the exact-arithmetic pipeline with
    /// temperature noise so the task has an intrinsic error floor.
    pub fn evaluate(&self, scheme: Scheme, seed: u64) -> f64 {
        let mut rng = TestRng::seed_from_u64(seed ^ 0x5eed);
        // Frozen scorer weights.
        let w: Vec<f32> = (0..self.dim * self.classes)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let mut correct = 0usize;
        for ex in 0..self.examples {
            let mut ex_rng = TestRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(ex as u64));
            let x: Vec<f32> = (0..self.dim).map(|_| ex_rng.gen_range(-2.0f32..2.0)).collect();

            // Exact pipeline defines the signal label; task-intrinsic label
            // noise (identical across schemes — it is part of the data, not
            // the model) calibrates the baseline to the target accuracy.
            let p_signal = (self.target_accuracy - 1.0 / self.classes as f64)
                / (1.0 - 1.0 / self.classes as f64);
            let noisy = ex_rng.gen_range(0.0..1.0) >= p_signal;
            let noise_label = ex_rng.gen_range(0..self.classes);
            let label = if noisy { noise_label } else {
                let xn: Vec<f64> = {
                    let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
                    norm::layernorm_ref(&xd)
                };
                let mut logits = vec![0.0f64; self.classes];
                for c in 0..self.classes {
                    for d in 0..self.dim {
                        logits[c] += xn[d] * w[c * self.dim + d] as f64;
                    }
                    logits[c] = activation::gelu_tanh_ref(logits[c] / self.temperature);
                }
                argmax_f64(&logits)
            };

            // Scheme pipeline predicts.
            let pred = {
                let xn = scheme.layernorm(&x);
                let mut logits = vec![0.0f32; self.classes];
                for c in 0..self.classes {
                    for d in 0..self.dim {
                        logits[c] += xn[d] * w[c * self.dim + d];
                    }
                    logits[c] /= self.temperature as f32;
                }
                let acts = scheme.gelu(&logits);
                let probs = scheme.softmax(&acts);
                argmax_f32(&probs)
            };
            if pred == label {
                correct += 1;
            }
        }
        correct as f64 / self.examples as f64
    }
}

fn argmax_f64(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn argmax_f32(v: &[f32]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_num::ErrorStats;

    #[test]
    fn distributions_have_expected_ranges() {
        let bert = Distribution::BertLike.sample(10_000, 1);
        let llama = Distribution::LlamaWide.sample(10_000, 1);
        let max_bert = bert.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let max_llama = llama.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(max_bert < 10.0, "bert-like range {max_bert}");
        assert!(max_llama > 30.0, "llama-wide must contain outliers, got {max_llama}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = Distribution::AttentionLogits.sample(100, 42);
        let b = Distribution::AttentionLogits.sample(100, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn picachu_beats_ibert_on_llama_wide_gelu() {
        // LLaMA-scale activations force I-BERT's INT8 quantization onto a
        // coarse grid (scale ~0.5-1.5), collapsing its polynomial accuracy —
        // the Table 2 failure mode. Our INT16 path stays faithful.
        let x = Distribution::LlamaWide.sample(4096, 7);
        let reference: Vec<f64> = x.iter().map(|&v| activation::gelu_phi_ref(v as f64)).collect();
        let ours: Vec<f64> = Scheme::PicachuInt16.gelu(&x).iter().map(|&v| v as f64).collect();
        let ib: Vec<f64> = Scheme::IBert.gelu(&x).iter().map(|&v| v as f64).collect();
        let ours_err = ErrorStats::compare(&ours, &reference).mean_abs;
        let ibert_err = ErrorStats::compare(&ib, &reference).mean_abs;
        assert!(
            ibert_err > ours_err * 5.0,
            "I-BERT ({ibert_err:.2e}) should be much worse than ours ({ours_err:.2e})"
        );
    }

    #[test]
    fn all_schemes_produce_finite_softmax_on_bert_range() {
        let x = Distribution::BertLike.sample(256, 3);
        for s in Scheme::ALL {
            let p = s.softmax(&x);
            assert!(p.iter().all(|v| v.is_finite()), "{s} produced non-finite output");
        }
    }

    #[test]
    fn zero_shot_fp16_baseline_tracks_target() {
        // label noise calibrates the baseline to the paper's FP16 rows
        for task in zero_shot_tasks() {
            let acc = task.evaluate(Scheme::Fp16Reference, 11);
            assert!(
                (acc - task.target_accuracy).abs() < 0.03,
                "{}: {acc} vs target {}",
                task.name,
                task.target_accuracy
            );
        }
    }

    #[test]
    fn zero_shot_picachu_close_to_fp16() {
        let task = ZeroShotTask { name: "mini", dim: 32, classes: 2, examples: 300, temperature: 1.2, target_accuracy: 0.9 };
        let base = task.evaluate(Scheme::Fp16Reference, 5);
        let ours = task.evaluate(Scheme::PicachuFp16, 5);
        assert!((base - ours).abs() < 0.03, "base {base} vs ours {ours}");
    }

    #[test]
    fn scheme_names_match_tables() {
        assert_eq!(Scheme::PicachuInt16.name(), "Ours (INT16)");
        assert_eq!(Scheme::IBert.name(), "I-BERT");
    }
}
