//! Normalization — RE operations with two single-level loops (§3.1): the
//! first reduces the channel statistics (mean/variance for LayerNorm, mean
//! square for RMSNorm), the second applies the element-wise rescale. The
//! inverse square root runs once per channel *outside* the loops, using the
//! GNU-libc-style method (§4.1), so its cost is negligible.

use crate::ops::{invsqrt_approx, ApproxConfig};
use picachu_num::{DyadicScale, Fp16, QuantParams};

/// Numerical-stability epsilon used by all normalizations, matching common
/// LLM configurations.
pub const EPS: f64 = 1e-5;

/// Reference LayerNorm `(x - μ)/σ` in `f64`.
///
/// # Panics
/// Panics if `x` is empty.
pub fn layernorm_ref(x: &[f64]) -> Vec<f64> {
    assert!(!x.is_empty(), "layernorm input must be non-empty");
    let n = x.len() as f64;
    let mu = x.iter().sum::<f64>() / n;
    let var = x.iter().map(|&v| (v - mu) * (v - mu)).sum::<f64>() / n;
    let sigma = (var + EPS).sqrt();
    x.iter().map(|&v| (v - mu) / sigma).collect()
}

/// Reference RMSNorm `x/σ` with `σ = √(mean(x²)+ε)`.
///
/// # Panics
/// Panics if `x` is empty.
pub fn rmsnorm_ref(x: &[f64]) -> Vec<f64> {
    assert!(!x.is_empty(), "rmsnorm input must be non-empty");
    let n = x.len() as f64;
    let ms = x.iter().map(|&v| v * v).sum::<f64>() / n;
    let sigma = (ms + EPS).sqrt();
    x.iter().map(|&v| v / sigma).collect()
}

/// PICACHU FP LayerNorm: loop 1 reduces `Σx` and `Σx²` in one pass; the
/// per-channel `1/σ` comes from [`invsqrt_approx`]; loop 2 is a fused
/// multiply-add per element.
///
/// # Panics
/// Panics if `x` is empty.
pub fn layernorm_fp(x: &[f32], cfg: &ApproxConfig) -> Vec<f32> {
    assert!(!x.is_empty(), "layernorm input must be non-empty");
    let n = x.len() as f32;
    // Loop 1 (reduction): sum and sum of squares.
    let (mut s, mut s2) = (0.0f32, 0.0f32);
    for &v in x {
        s += v;
        s2 += v * v;
    }
    let mu = s / n;
    let var = (s2 / n - mu * mu).max(0.0);
    // Outside the loops: inverse square root.
    let inv_sigma = invsqrt_approx(var + EPS as f32, cfg);
    // Loop 2 (element-wise): (x - mu) * inv_sigma.
    x.iter().map(|&v| (v - mu) * inv_sigma).collect()
}

/// PICACHU FP RMSNorm: single-statistic version of [`layernorm_fp`].
///
/// # Panics
/// Panics if `x` is empty.
pub fn rmsnorm_fp(x: &[f32], cfg: &ApproxConfig) -> Vec<f32> {
    assert!(!x.is_empty(), "rmsnorm input must be non-empty");
    let n = x.len() as f32;
    let s2: f32 = x.iter().map(|&v| v * v).sum();
    let inv_sigma = invsqrt_approx(s2 / n + EPS as f32, cfg);
    x.iter().map(|&v| v * inv_sigma).collect()
}

/// PICACHU FP16-storage LayerNorm (FP32 intermediates).
pub fn layernorm_fp16(x: &[f32], cfg: &ApproxConfig) -> Vec<f32> {
    let x16: Vec<f32> = x.iter().map(|&v| Fp16::round_trip(v)).collect();
    layernorm_fp(&x16, cfg)
        .into_iter()
        .map(Fp16::round_trip)
        .collect()
}

/// PICACHU FP16-storage RMSNorm (FP32 intermediates).
pub fn rmsnorm_fp16(x: &[f32], cfg: &ApproxConfig) -> Vec<f32> {
    let x16: Vec<f32> = x.iter().map(|&v| Fp16::round_trip(v)).collect();
    rmsnorm_fp(&x16, cfg)
        .into_iter()
        .map(Fp16::round_trip)
        .collect()
}

/// PICACHU integer LayerNorm.
///
/// Loop 1 accumulates `Σq` and `Σq²` in 64-bit integers; the statistics and
/// the single inverse square root are computed once per channel; loop 2 is an
/// integer subtract followed by one dyadic requantization per element.
/// Outputs are returned dequantized (the normalized output is re-quantized to
/// the same bit width with a fixed `[-8, 8]` range, which always covers a
/// normalized distribution).
///
/// # Panics
/// Panics if `x` is empty.
pub fn layernorm_int(x: &[f32], bits: u32, cfg: &ApproxConfig) -> Vec<f32> {
    assert!(!x.is_empty(), "layernorm input must be non-empty");
    let n = x.len() as f64;
    let params = QuantParams::calibrate(x, bits);
    let q: Vec<i64> = x.iter().map(|&v| params.quantize(v as f64) as i64).collect();
    // Loop 1: integer reductions.
    let s: i64 = q.iter().sum();
    let s2: i64 = q.iter().map(|&v| v * v).sum();
    // Per-channel statistics (integer means in the q domain).
    let mu_q = s as f64 / n;
    let var_q = (s2 as f64 / n - mu_q * mu_q).max(0.0);
    let var = var_q * params.scale * params.scale;
    let inv_sigma = invsqrt_approx((var + EPS) as f32, cfg) as f64;
    // Output quantization: normalized values live well inside [-8, 8].
    let out = QuantParams::from_max_abs(8.0, bits);
    let dy = DyadicScale::from_real(params.scale * inv_sigma / out.scale);
    let mu_int = mu_q.round() as i64;
    // Loop 2: integer subtract + dyadic multiply.
    q.iter()
        .map(|&v| {
            let centered = (v - mu_int).clamp(i32::MIN as i64, i32::MAX as i64) as i32;
            out.dequantize(dy.apply(centered)) as f32
        })
        .collect()
}

/// PICACHU integer RMSNorm, same structure as [`layernorm_int`] without the
/// mean subtraction.
///
/// # Panics
/// Panics if `x` is empty.
pub fn rmsnorm_int(x: &[f32], bits: u32, cfg: &ApproxConfig) -> Vec<f32> {
    assert!(!x.is_empty(), "rmsnorm input must be non-empty");
    let n = x.len() as f64;
    let params = QuantParams::calibrate(x, bits);
    let q: Vec<i64> = x.iter().map(|&v| params.quantize(v as f64) as i64).collect();
    let s2: i64 = q.iter().map(|&v| v * v).sum();
    let ms = s2 as f64 / n * params.scale * params.scale;
    let inv_sigma = invsqrt_approx((ms + EPS) as f32, cfg) as f64;
    let out = QuantParams::from_max_abs(8.0, bits);
    let dy = DyadicScale::from_real(params.scale * inv_sigma / out.scale);
    q.iter()
        .map(|&v| out.dequantize(dy.apply(v as i32)) as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_num::ErrorStats;
    use picachu_testkit::{prop_assert, prop_assume, prop_check};

    fn channel(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * 0.613).sin() * 3.0 + 0.5 * (i as f32 * 0.17).cos())
            .collect()
    }

    #[test]
    fn layernorm_ref_zero_mean_unit_var() {
        let x: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.37).sin() * 5.0 + 2.0).collect();
        let y = layernorm_ref(&x);
        let mu: f64 = y.iter().sum::<f64>() / y.len() as f64;
        let var: f64 = y.iter().map(|&v| (v - mu) * (v - mu)).sum::<f64>() / y.len() as f64;
        assert!(mu.abs() < 1e-10);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn layernorm_fp_matches_ref() {
        let x = channel(4096);
        let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let reference = layernorm_ref(&xd);
        let got: Vec<f64> = layernorm_fp(&x, &ApproxConfig::default())
            .iter()
            .map(|&v| v as f64)
            .collect();
        let s = ErrorStats::compare(&got, &reference);
        assert!(s.max_abs < 1e-3, "{s}");
    }

    #[test]
    fn rmsnorm_fp_matches_ref() {
        let x = channel(4096);
        let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let reference = rmsnorm_ref(&xd);
        let got: Vec<f64> = rmsnorm_fp(&x, &ApproxConfig::default())
            .iter()
            .map(|&v| v as f64)
            .collect();
        let s = ErrorStats::compare(&got, &reference);
        assert!(s.max_abs < 1e-3, "{s}");
    }

    #[test]
    fn layernorm_constant_input() {
        // Variance zero: epsilon keeps it finite, outputs all zero.
        let y = layernorm_fp(&[5.0; 64], &ApproxConfig::default());
        assert!(y.iter().all(|&v| v.abs() < 1e-3));
    }

    #[test]
    fn layernorm_int16_close() {
        let x = channel(2048);
        let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let reference = layernorm_ref(&xd);
        let got: Vec<f64> = layernorm_int(&x, 16, &ApproxConfig::default())
            .iter()
            .map(|&v| v as f64)
            .collect();
        let s = ErrorStats::compare(&got, &reference);
        assert!(s.max_abs < 5e-3, "{s}");
    }

    #[test]
    fn rmsnorm_int16_close() {
        let x = channel(2048);
        let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let reference = rmsnorm_ref(&xd);
        let got: Vec<f64> = rmsnorm_int(&x, 16, &ApproxConfig::default())
            .iter()
            .map(|&v| v as f64)
            .collect();
        let s = ErrorStats::compare(&got, &reference);
        assert!(s.max_abs < 5e-3, "{s}");
    }

    #[test]
    fn fp16_storage_error_bounded() {
        let x = channel(1024);
        let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let reference = layernorm_ref(&xd);
        let got: Vec<f64> = layernorm_fp16(&x, &ApproxConfig::default())
            .iter()
            .map(|&v| v as f64)
            .collect();
        let s = ErrorStats::compare(&got, &reference);
        assert!(s.max_abs < 5e-3, "{s}");
    }

    #[test]
    fn rmsnorm_scale_invariance() {
        // RMSNorm(k·x) == RMSNorm(x) for k > 0 (up to eps effects).
        let x = channel(512);
        let scaled: Vec<f32> = x.iter().map(|&v| v * 7.0).collect();
        let a = rmsnorm_fp(&x, &ApproxConfig::default());
        let b = rmsnorm_fp(&scaled, &ApproxConfig::default());
        for (u, v) in a.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-3);
        }
    }

    #[test]
    fn layernorm_output_statistics() {
        prop_check!(256, 0x20201, |g| {
            let x: Vec<f32> = g.vec(-10.0f32..10.0, 16..512);
            // skip degenerate near-constant inputs
            let spread = x.iter().cloned().fold(f32::MIN, f32::max) - x.iter().cloned().fold(f32::MAX, f32::min);
            prop_assume!(spread > 0.5);
            let y = layernorm_fp(&x, &ApproxConfig::default());
            let n = y.len() as f32;
            let mu: f32 = y.iter().sum::<f32>() / n;
            let var: f32 = y.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / n;
            prop_assert!(mu.abs() < 1e-3);
            prop_assert!((var - 1.0).abs() < 0.05);
            Ok(())
        });
    }

    #[test]
    fn rmsnorm_unit_rms() {
        prop_check!(256, 0x20202, |g| {
            let x: Vec<f32> = g.vec(-10.0f32..10.0, 16..512);
            let energy: f32 = x.iter().map(|&v| v * v).sum();
            prop_assume!(energy / x.len() as f32 > 0.1);
            let y = rmsnorm_fp(&x, &ApproxConfig::default());
            let ms: f32 = y.iter().map(|&v| v * v).sum::<f32>() / y.len() as f32;
            prop_assert!((ms - 1.0).abs() < 0.05);
            Ok(())
        });
    }

    #[test]
    fn layernorm_shift_invariance() {
        prop_check!(256, 0x20203, |g| {
            let x: Vec<f32> = g.vec(-5.0f32..5.0, 16..128);
            let shift = g.f32(-100.0..100.0);
            let spread = x.iter().cloned().fold(f32::MIN, f32::max) - x.iter().cloned().fold(f32::MAX, f32::min);
            prop_assume!(spread > 0.5);
            let shifted: Vec<f32> = x.iter().map(|&v| v + shift).collect();
            let a = layernorm_fp(&x, &ApproxConfig::default());
            let b = layernorm_fp(&shifted, &ApproxConfig::default());
            for (u, v) in a.iter().zip(b.iter()) {
                prop_assert!((u - v).abs() < 0.02);
            }
            Ok(())
        });
    }
}
