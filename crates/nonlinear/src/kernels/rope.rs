//! Rotary positional embedding (RoPE) — an element-wise operation over pairs:
//! `(x₂ᵢ₋₁, x₂ᵢ) → (x₂ᵢ₋₁·cos(mθᵢ) − x₂ᵢ·sin(mθᵢ), x₂ᵢ₋₁·sin(mθᵢ) + x₂ᵢ·cos(mθᵢ))`
//! with `θᵢ = 10000^(−2(i−1)/d)` (Table 1). The sines/cosines come from the
//! range-reduced Taylor operators of Table 3.

use crate::ops::{cos_approx, sin_approx, ApproxConfig};
use picachu_num::{DyadicScale, QuantParams};

/// The RoPE angle `θ_i` for pair index `i ∈ 0..d/2` and head dimension `d`.
pub fn rope_theta(i: usize, d: usize) -> f64 {
    10000f64.powf(-2.0 * i as f64 / d as f64)
}

/// Reference RoPE in `f64` for one token at position `m`.
///
/// # Panics
/// Panics if `x.len()` is odd or zero.
pub fn rope_ref(x: &[f64], m: usize) -> Vec<f64> {
    assert!(!x.is_empty() && x.len().is_multiple_of(2), "RoPE needs an even-length vector");
    let d = x.len();
    let mut out = vec![0.0; d];
    for i in 0..d / 2 {
        let angle = m as f64 * rope_theta(i, d);
        let (s, c) = angle.sin_cos();
        out[2 * i] = x[2 * i] * c - x[2 * i + 1] * s;
        out[2 * i + 1] = x[2 * i] * s + x[2 * i + 1] * c;
    }
    out
}

/// PICACHU FP RoPE using the Taylor sine/cosine operators.
///
/// # Panics
/// Panics if `x.len()` is odd or zero.
pub fn rope_fp(x: &[f32], m: usize, cfg: &ApproxConfig) -> Vec<f32> {
    assert!(!x.is_empty() && x.len().is_multiple_of(2), "RoPE needs an even-length vector");
    let d = x.len();
    let mut out = vec![0.0f32; d];
    for i in 0..d / 2 {
        let angle = (m as f64 * rope_theta(i, d)) as f32;
        let s = sin_approx(angle, cfg);
        let c = cos_approx(angle, cfg);
        out[2 * i] = x[2 * i] * c - x[2 * i + 1] * s;
        out[2 * i + 1] = x[2 * i] * s + x[2 * i + 1] * c;
    }
    out
}

/// PICACHU integer RoPE: the rotation coefficients are computed once per
/// `(m, i)` with the FP operators, quantized to Q15, and applied to the
/// quantized activations with integer multiply-adds and one dyadic
/// requantization per output.
///
/// # Panics
/// Panics if `x.len()` is odd or zero.
pub fn rope_int(x: &[f32], m: usize, bits: u32, cfg: &ApproxConfig) -> Vec<f32> {
    assert!(!x.is_empty() && x.len().is_multiple_of(2), "RoPE needs an even-length vector");
    let d = x.len();
    let params = QuantParams::calibrate(x, bits);
    let q: Vec<i64> = x.iter().map(|&v| params.quantize(v as f64) as i64).collect();
    // Rotation is norm-preserving; outputs fit the input quantization grid
    // with one extra bit of headroom folded into the dyadic rescale.
    let dy = DyadicScale::from_real(1.0 / 32768.0);
    let mut out = vec![0.0f32; d];
    for i in 0..d / 2 {
        let angle = (m as f64 * rope_theta(i, d)) as f32;
        let s_q = (sin_approx(angle, cfg) as f64 * 32768.0).round() as i64;
        let c_q = (cos_approx(angle, cfg) as f64 * 32768.0).round() as i64;
        let a = q[2 * i];
        let b = q[2 * i + 1];
        let r0 = (a * c_q - b * s_q).clamp(i32::MIN as i64, i32::MAX as i64) as i32;
        let r1 = (a * s_q + b * c_q).clamp(i32::MIN as i64, i32::MAX as i64) as i32;
        out[2 * i] = params.dequantize(dy.apply(r0)) as f32;
        out[2 * i + 1] = params.dequantize(dy.apply(r1)) as f32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_num::ErrorStats;
    use picachu_testkit::{prop_assert, prop_check};

    fn vector(d: usize) -> Vec<f32> {
        (0..d).map(|i| (i as f32 * 0.531).sin() * 2.0).collect()
    }

    #[test]
    fn position_zero_is_identity() {
        let x = vector(128);
        let y = rope_fp(&x, 0, &ApproxConfig::default());
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn fp_matches_ref() {
        let x = vector(128);
        let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        for m in [1usize, 17, 511, 2047, 4095] {
            let reference = rope_ref(&xd, m);
            let got: Vec<f64> = rope_fp(&x, m, &ApproxConfig::default())
                .iter()
                .map(|&v| v as f64)
                .collect();
            let s = ErrorStats::compare(&got, &reference);
            assert!(s.max_abs < 2e-3, "m={m}: {s}");
        }
    }

    #[test]
    fn norm_preserved() {
        // Rotation preserves the L2 norm of each pair.
        let x = vector(64);
        let y = rope_fp(&x, 1234, &ApproxConfig::default());
        for i in 0..32 {
            let n_in = x[2 * i] * x[2 * i] + x[2 * i + 1] * x[2 * i + 1];
            let n_out = y[2 * i] * y[2 * i] + y[2 * i + 1] * y[2 * i + 1];
            assert!((n_in - n_out).abs() < 1e-3, "pair {i}");
        }
    }

    #[test]
    fn int16_matches_ref() {
        let x = vector(128);
        let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let reference = rope_ref(&xd, 777);
        let got: Vec<f64> = rope_int(&x, 777, 16, &ApproxConfig::default())
            .iter()
            .map(|&v| v as f64)
            .collect();
        let s = ErrorStats::compare(&got, &reference);
        assert!(s.max_abs < 5e-3, "{s}");
    }

    #[test]
    fn theta_decreases_with_index() {
        let d = 128;
        for i in 1..d / 2 {
            assert!(rope_theta(i, d) < rope_theta(i - 1, d));
        }
        assert_eq!(rope_theta(0, d), 1.0);
    }

    #[test]
    #[should_panic(expected = "even-length")]
    fn odd_length_panics() {
        rope_fp(&[1.0, 2.0, 3.0], 1, &ApproxConfig::default());
    }

    #[test]
    fn relative_position_property() {
        prop_check!(256, 0x40B01, |g| {
            let m = g.usize(0..1000);
            let delta = g.usize(0..100);
            // RoPE encodes relative position: <RoPE(q, m), RoPE(k, m+delta)>
            // depends only on delta. Check with fixed q, k vectors.
            let d = 16;
            let q: Vec<f64> = (0..d).map(|i| ((i * 7 % 5) as f64 - 2.0) * 0.5).collect();
            let k: Vec<f64> = (0..d).map(|i| ((i * 3 % 7) as f64 - 3.0) * 0.4).collect();
            let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
            let d1 = dot(&rope_ref(&q, m), &rope_ref(&k, m + delta));
            let d2 = dot(&rope_ref(&q, m + 31), &rope_ref(&k, m + 31 + delta));
            prop_assert!((d1 - d2).abs() < 1e-9);
            Ok(())
        });
    }

    #[test]
    fn fp_error_bounded_random() {
        prop_check!(256, 0x40B02, |g| {
            let m = g.usize(0..4096);
            let x = vector(64);
            let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
            let reference = rope_ref(&xd, m);
            let got: Vec<f64> = rope_fp(&x, m, &ApproxConfig::default())
                .iter().map(|&v| v as f64).collect();
            let s = ErrorStats::compare(&got, &reference);
            prop_assert!(s.max_abs < 5e-3);
            Ok(())
        });
    }
}
