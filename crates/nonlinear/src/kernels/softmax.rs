//! Softmax — the RE operation with three single-level loops (§3.1):
//! loop 1 reduces the running maximum, loop 2 computes `exp(x−u)` and reduces
//! the sum, loop 3 divides every exponential by the sum.

use crate::intpoly::exp_int_q;
use crate::ops::{exp_approx, ApproxConfig};
use picachu_num::{Fp16, QuantParams};

/// Reference softmax in `f64` with max subtraction.
///
/// # Panics
/// Panics if `x` is empty.
pub fn softmax_ref(x: &[f64]) -> Vec<f64> {
    assert!(!x.is_empty(), "softmax input must be non-empty");
    let u = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = x.iter().map(|&v| (v - u).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// PICACHU FP32 softmax: the three loops execute the paper's exp algorithm
/// per element and a pipelined divide in the final loop.
///
/// # Panics
/// Panics if `x` is empty.
pub fn softmax_fp(x: &[f32], cfg: &ApproxConfig) -> Vec<f32> {
    assert!(!x.is_empty(), "softmax input must be non-empty");
    // Loop 1: running max reduction.
    let u = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    // Loop 2: exp + sum reduction.
    let exps: Vec<f32> = x.iter().map(|&v| exp_approx(v - u, cfg)).collect();
    let sum: f32 = exps.iter().sum();
    // Loop 3: element-wise division.
    exps.iter().map(|&e| e / sum).collect()
}

/// PICACHU softmax with FP16 storage: inputs/outputs round-trip through
/// binary16 while intermediates stay in FP32, per §4.2.1.
pub fn softmax_fp16(x: &[f32], cfg: &ApproxConfig) -> Vec<f32> {
    let x16: Vec<f32> = x.iter().map(|&v| Fp16::round_trip(v)).collect();
    softmax_fp(&x16, cfg)
        .into_iter()
        .map(Fp16::round_trip)
        .collect()
}

/// PICACHU integer softmax.
///
/// Inputs are symmetric-quantized to `bits` (16 or 32); the three loops run
/// entirely on integers: max reduction on `q`, the range-reduced integer
/// exponential of [`crate::intpoly::exp_int_q`] accumulated into a 64-bit
/// fixed-point sum, and a final integer divide producing Q15 outputs.
/// Returns dequantized `f32` for comparison.
///
/// # Panics
/// Panics if `x` is empty.
pub fn softmax_int(x: &[f32], bits: u32, cfg: &ApproxConfig) -> Vec<f32> {
    assert!(!x.is_empty(), "softmax input must be non-empty");
    const FRAC_BITS: u32 = 20;
    let params = QuantParams::calibrate(x, bits);
    let q: Vec<i32> = x.iter().map(|&v| params.quantize(v as f64)).collect();
    // Loop 1: integer max reduction.
    let qmax = q.iter().copied().max().expect("non-empty");
    // Loop 2: integer exp + sum.
    let exps: Vec<i32> = q
        .iter()
        .map(|&qi| exp_int_q(qi - qmax, params.scale, FRAC_BITS, cfg.exp_terms + 1))
        .collect();
    let sum: i64 = exps.iter().map(|&e| e as i64).sum();
    // Loop 3: integer divide into Q15 outputs.
    exps.iter()
        .map(|&e| {
            let q15 = ((e as i64) << 15) / sum.max(1);
            q15 as f32 / 32768.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_num::ErrorStats;
    use picachu_testkit::{prop_assert, prop_check};

    fn logits(n: usize, spread: f32) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32 * 0.713).sin() * spread) - 0.3 * (i as f32 % 7.0))
            .collect()
    }

    #[test]
    fn ref_sums_to_one() {
        let p = softmax_ref(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn fp_matches_ref() {
        let x = logits(256, 8.0);
        let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let reference = softmax_ref(&xd);
        let got: Vec<f64> = softmax_fp(&x, &ApproxConfig::default())
            .iter()
            .map(|&v| v as f64)
            .collect();
        let s = ErrorStats::compare(&got, &reference);
        assert!(s.max_abs < 1e-5, "{s}");
    }

    #[test]
    fn fp_handles_extreme_logits() {
        // Max subtraction must prevent overflow even for huge logits.
        let x = vec![1e4f32, 1e4 - 1.0, 0.0];
        let p = softmax_fp(&x, &ApproxConfig::default());
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn fp_uniform_input() {
        let p = softmax_fp(&[3.0; 10], &ApproxConfig::default());
        for v in p {
            assert!((v - 0.1).abs() < 1e-6);
        }
    }

    #[test]
    fn int16_close_to_ref() {
        let x = logits(512, 10.0);
        let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let reference = softmax_ref(&xd);
        let got: Vec<f64> = softmax_int(&x, 16, &ApproxConfig::default())
            .iter()
            .map(|&v| v as f64)
            .collect();
        let s = ErrorStats::compare(&got, &reference);
        // Q15 output resolution bounds the error.
        assert!(s.max_abs < 1e-3, "{s}");
    }

    #[test]
    fn int_sums_near_one() {
        let x = logits(128, 5.0);
        let p = softmax_int(&x, 16, &ApproxConfig::default());
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 0.01, "sum={sum}");
    }

    #[test]
    fn fp16_storage_error_small() {
        let x = logits(64, 6.0);
        let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let reference = softmax_ref(&xd);
        let got: Vec<f64> = softmax_fp16(&x, &ApproxConfig::default())
            .iter()
            .map(|&v| v as f64)
            .collect();
        let s = ErrorStats::compare(&got, &reference);
        assert!(s.max_abs < 1e-3, "{s}");
    }

    #[test]
    fn fp_output_is_distribution() {
        prop_check!(256, 0x50F01, |g| {
            let x: Vec<f32> = g.vec(-50.0f32..50.0, 1..200);
            let p = softmax_fp(&x, &ApproxConfig::default());
            prop_assert!(p.iter().all(|&v| (0.0..=1.0001).contains(&v)));
            prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-3);
            Ok(())
        });
    }

    #[test]
    fn fp_preserves_argmax() {
        prop_check!(256, 0x50F02, |g| {
            let x: Vec<f32> = g.vec(-20.0f32..20.0, 2..100);
            let p = softmax_fp(&x, &ApproxConfig::default());
            let arg_in = x.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
            let arg_out = p.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
            // ties can flip the index; compare values instead
            prop_assert!((p[arg_in] - p[arg_out]).abs() < 1e-6);
            Ok(())
        });
    }

    #[test]
    fn int_monotonicity_preserved() {
        prop_check!(128, 0x50F03, |g| {
            let x: Vec<f32> = g.vec(-15.0f32..15.0, 2..64);
            let p = softmax_int(&x, 16, &ApproxConfig::default());
            for i in 0..x.len() {
                for j in 0..x.len() {
                    if x[i] > x[j] + 0.1 {
                        prop_assert!(p[i] >= p[j] - 2e-3);
                    }
                }
            }
            Ok(())
        });
    }
}
