//! The Table 1 nonlinear operations and their loop structure.
//!
//! PICACHU classifies every nonlinear operation in LLMs into two dataflow
//! classes (§3.1):
//!
//! * **EO** — element-wise operations: one loop over a flattened 1-D tensor
//!   (ReLU, GeLU, GeGLU, SiLU/SwiGLU, RoPE);
//! * **RE** — a reduction followed by element-wise work: Softmax (three
//!   single-level loops, the first two reductions) and the normalizations
//!   (two loops, the first a reduction).
//!
//! Each submodule provides a reference `f64` implementation, the PICACHU
//! floating-point implementation built from the [`crate::ops`] primitives, and
//! an integer implementation built from [`crate::intpoly`].

pub mod activation;
pub mod norm;
pub mod rope;
pub mod softmax;

use std::fmt;

/// Dataflow class of a nonlinear operation (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpCategory {
    /// Element-wise: a single loop, overlappable with systolic-array output
    /// streaming (Shared Buffer Case 1).
    ElementWise,
    /// Reduction followed by element-wise loops (Shared Buffer Cases 2/3).
    ReductionElementWise,
}

/// The role of one single-level loop inside an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopKind {
    /// Produces a scalar statistic (max, sum, sum of squares).
    Reduction,
    /// Produces one output element per input element.
    ElementWise,
}

/// One loop of an operation, as seen by the compiler and the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopPhase {
    /// Reduction or element-wise.
    pub kind: LoopKind,
    /// Human-readable label, e.g. `"softmax(2)"` following Fig. 7a's naming.
    pub label: &'static str,
}

/// The nonlinear operations PICACHU supports (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NonlinearOp {
    /// `exp(x_i - max) / Σ exp(x_j - max)` — used by every LLM.
    Softmax,
    /// `max(0, x)` — OPT, T5.
    Relu,
    /// `0.5·x·(1 + tanh(√(2/π)(x + 0.044715·x³)))` — GPT family, BLOOM, ….
    Gelu,
    /// `GeLU(u) ⊙ v` on the two gate projections — LaMDA, GLM-130B.
    Geglu,
    /// `x·sigmoid(x)` — building block of SwiGLU.
    Silu,
    /// `SiLU(u) ⊙ v` — PaLM, LLaMA, Qwen, DeepSeek, ….
    Swiglu,
    /// `(x - μ)/σ` — GPT family, BERT, OPT.
    LayerNorm,
    /// `x/σ` with `σ = √(mean(x²)+ε)` — LLaMA, T5, Mistral.
    RmsNorm,
    /// Rotary positional embedding — LLaMA, PaLM, GPT-NeoX.
    Rope,
}

impl NonlinearOp {
    /// All operations, in Table 1 order.
    pub const ALL: [NonlinearOp; 9] = [
        NonlinearOp::Softmax,
        NonlinearOp::Relu,
        NonlinearOp::Gelu,
        NonlinearOp::Geglu,
        NonlinearOp::Silu,
        NonlinearOp::Swiglu,
        NonlinearOp::LayerNorm,
        NonlinearOp::RmsNorm,
        NonlinearOp::Rope,
    ];

    /// Short lower-case name used across tables, figures and kernel labels.
    pub fn name(self) -> &'static str {
        match self {
            NonlinearOp::Softmax => "softmax",
            NonlinearOp::Relu => "relu",
            NonlinearOp::Gelu => "gelu",
            NonlinearOp::Geglu => "geglu",
            NonlinearOp::Silu => "silu",
            NonlinearOp::Swiglu => "swiglu",
            NonlinearOp::LayerNorm => "layernorm",
            NonlinearOp::RmsNorm => "rmsnorm",
            NonlinearOp::Rope => "rope",
        }
    }

    /// EO vs RE classification (§3.1, Table 1 colouring).
    pub fn category(self) -> OpCategory {
        match self {
            NonlinearOp::Softmax | NonlinearOp::LayerNorm | NonlinearOp::RmsNorm => {
                OpCategory::ReductionElementWise
            }
            _ => OpCategory::ElementWise,
        }
    }

    /// The single-level loops the operation decomposes into. Softmax has
    /// three (two reductions), normalizations two (one reduction), EO ops one.
    pub fn loops(self) -> &'static [LoopPhase] {
        use LoopKind::*;
        match self {
            NonlinearOp::Softmax => &[
                LoopPhase { kind: Reduction, label: "softmax(1)" },
                LoopPhase { kind: Reduction, label: "softmax(2)" },
                LoopPhase { kind: ElementWise, label: "softmax(3)" },
            ],
            NonlinearOp::LayerNorm => &[
                LoopPhase { kind: Reduction, label: "layernorm(1)" },
                LoopPhase { kind: ElementWise, label: "layernorm(2)" },
            ],
            NonlinearOp::RmsNorm => &[
                LoopPhase { kind: Reduction, label: "rmsnorm(1)" },
                LoopPhase { kind: ElementWise, label: "rmsnorm(2)" },
            ],
            NonlinearOp::Relu => &[LoopPhase { kind: ElementWise, label: "relu" }],
            NonlinearOp::Gelu => &[LoopPhase { kind: ElementWise, label: "gelu" }],
            NonlinearOp::Geglu => &[LoopPhase { kind: ElementWise, label: "geglu" }],
            NonlinearOp::Silu => &[LoopPhase { kind: ElementWise, label: "silu" }],
            NonlinearOp::Swiglu => &[LoopPhase { kind: ElementWise, label: "swiglu" }],
            NonlinearOp::Rope => &[LoopPhase { kind: ElementWise, label: "rope" }],
        }
    }

    /// The basic mathematical operators the operation needs (Table 1,
    /// "Mathematical Operator" column).
    pub fn math_operators(self) -> &'static [MathOperator] {
        use MathOperator::*;
        match self {
            NonlinearOp::Softmax => &[Division, Exponential, Maximum],
            NonlinearOp::Relu => &[Maximum],
            NonlinearOp::Gelu | NonlinearOp::Geglu => &[Division, Exponential],
            NonlinearOp::Silu | NonlinearOp::Swiglu => &[Division, Exponential],
            NonlinearOp::LayerNorm | NonlinearOp::RmsNorm => &[InvSqrt],
            NonlinearOp::Rope => &[Sine, Cosine],
        }
    }

    /// Whether the element-wise loop benefits from INT16 4-lane vectorization
    /// (Fig. 7d lists only vectorizable kernels; gated ops and RoPE vectorize,
    /// ReLU is a pure `max` that is trivially vectorized too, while the
    /// reduction loops are limited by their cross-iteration dependence).
    pub fn is_vectorizable(self) -> bool {
        !matches!(self.category(), OpCategory::ReductionElementWise) || self == NonlinearOp::Softmax
    }

    /// Number of distinct input tensors (gated ops read two projections).
    pub fn input_arity(self) -> usize {
        match self {
            NonlinearOp::Geglu | NonlinearOp::Swiglu => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for NonlinearOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_counts_match_paper() {
        assert_eq!(NonlinearOp::Softmax.loops().len(), 3);
        assert_eq!(NonlinearOp::LayerNorm.loops().len(), 2);
        assert_eq!(NonlinearOp::RmsNorm.loops().len(), 2);
        assert_eq!(NonlinearOp::Gelu.loops().len(), 1);
    }

    #[test]
    fn softmax_first_two_loops_are_reductions() {
        let loops = NonlinearOp::Softmax.loops();
        assert_eq!(loops[0].kind, LoopKind::Reduction);
        assert_eq!(loops[1].kind, LoopKind::Reduction);
        assert_eq!(loops[2].kind, LoopKind::ElementWise);
    }

    #[test]
    fn category_partition() {
        use OpCategory::*;
        let re: Vec<_> = NonlinearOp::ALL
            .iter()
            .filter(|o| o.category() == ReductionElementWise)
            .collect();
        assert_eq!(re.len(), 3); // softmax + two norms
    }

    #[test]
    fn math_operators_match_table1() {
        assert!(NonlinearOp::Rope.math_operators().contains(&MathOperator::Sine));
        assert!(NonlinearOp::LayerNorm.math_operators().contains(&MathOperator::InvSqrt));
        assert!(NonlinearOp::Softmax.math_operators().contains(&MathOperator::Exponential));
    }

    #[test]
    fn gated_ops_take_two_inputs() {
        assert_eq!(NonlinearOp::Swiglu.input_arity(), 2);
        assert_eq!(NonlinearOp::Geglu.input_arity(), 2);
        assert_eq!(NonlinearOp::Gelu.input_arity(), 1);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = NonlinearOp::ALL.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NonlinearOp::ALL.len());
    }
}

/// The small set of basic nonlinear mathematical operators (§3.1: "nonlinear
/// functions in LLMs consist of a limited set of basic functions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathOperator {
    /// Pipelined FP division.
    Division,
    /// Range-reduced exponential.
    Exponential,
    /// Max (compare-select).
    Maximum,
    /// Inverse square root (outside the hot loops).
    InvSqrt,
    /// Range-reduced sine.
    Sine,
    /// Range-reduced cosine.
    Cosine,
}
