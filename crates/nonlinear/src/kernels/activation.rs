//! Activation functions — element-wise operations of Table 1: ReLU, GeLU
//! (tanh form and the Φ-LUT form enabled by the Compute Tiles' lookup
//! tables), SiLU, and the gated variants GeGLU / SwiGLU.

use crate::ops::{sigmoid_approx, tanh_approx, ApproxConfig};
use picachu_num::lut::gaussian_cdf;
use picachu_num::{DyadicScale, Lut, QuantParams};

/// Reference ReLU.
pub fn relu_ref(x: f64) -> f64 {
    x.max(0.0)
}

/// ReLU on the CGRA is a single compare-select; it is exact in every format.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Reference GeLU in the paper's tanh form:
/// `0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))`.
pub fn gelu_tanh_ref(x: f64) -> f64 {
    let c = (2.0 / std::f64::consts::PI).sqrt();
    0.5 * x * (1.0 + (c * (x + 0.044715 * x * x * x)).tanh())
}

/// Reference "exact" GeLU `x·Φ(x)` via the Gaussian CDF.
pub fn gelu_phi_ref(x: f64) -> f64 {
    x * gaussian_cdf(x)
}

/// PICACHU FP GeLU via the tanh form, with tanh built from the range-reduced
/// exponential (Table 3) plus the divider FU.
pub fn gelu_fp(x: f32, cfg: &ApproxConfig) -> f32 {
    let c = (2.0f32 / std::f32::consts::PI).sqrt();
    0.5 * x * (1.0 + tanh_approx(c * (x + 0.044715 * x * x * x), cfg))
}

/// Builds the Φ LUT a Compute Tile stores for GeLU (§4.2.1 "Special function
/// support"). 512 entries over `[-6, 6]` reach FP16-level accuracy.
pub fn phi_lut(entries: usize) -> Lut {
    Lut::tabulate("phi", -6.0, 6.0, entries, gaussian_cdf)
}

/// PICACHU GeLU via the Φ LUT: one table read plus one multiply per element.
pub fn gelu_lut(x: f32, lut: &Lut) -> f32 {
    x * lut.eval(x)
}

/// PICACHU FP SiLU: `x·sigmoid(x)` from the exponential + divider FUs.
pub fn silu_fp(x: f32, cfg: &ApproxConfig) -> f32 {
    x * sigmoid_approx(x, cfg)
}

/// Reference SiLU.
pub fn silu_ref(x: f64) -> f64 {
    x / (1.0 + (-x).exp())
}

/// SwiGLU gate: `SiLU(u) ⊙ v` where `u = xW+b`, `v = xV+c` are produced by
/// the systolic array; the CGRA only runs this element-wise kernel.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn swiglu_fp(u: &[f32], v: &[f32], cfg: &ApproxConfig) -> Vec<f32> {
    assert_eq!(u.len(), v.len(), "swiglu gates must have equal length");
    u.iter()
        .zip(v.iter())
        .map(|(&a, &b)| silu_fp(a, cfg) * b)
        .collect()
}

/// Reference SwiGLU.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn swiglu_ref(u: &[f64], v: &[f64]) -> Vec<f64> {
    assert_eq!(u.len(), v.len(), "swiglu gates must have equal length");
    u.iter().zip(v.iter()).map(|(&a, &b)| silu_ref(a) * b).collect()
}

/// GeGLU gate: `GeLU(u) ⊙ v`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn geglu_fp(u: &[f32], v: &[f32], cfg: &ApproxConfig) -> Vec<f32> {
    assert_eq!(u.len(), v.len(), "geglu gates must have equal length");
    u.iter()
        .zip(v.iter())
        .map(|(&a, &b)| gelu_fp(a, cfg) * b)
        .collect()
}

/// Reference GeGLU.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn geglu_ref(u: &[f64], v: &[f64]) -> Vec<f64> {
    assert_eq!(u.len(), v.len(), "geglu gates must have equal length");
    u.iter()
        .zip(v.iter())
        .map(|(&a, &b)| gelu_tanh_ref(a) * b)
        .collect()
}

/// PICACHU integer GeLU: the Compute Tile LUT is re-indexed by the quantized
/// integer directly (`q → Φ(q·s)`), so the kernel is one table read, one
/// integer multiply and one dyadic requantization per element.
///
/// Returns dequantized outputs for accuracy comparison.
pub fn gelu_int(x: &[f32], bits: u32, lut_entries: usize) -> Vec<f32> {
    let params = QuantParams::calibrate(x, bits);
    // Φ saturates outside ±8, so the table covers the fixed real domain
    // [-8, 8] in Q15; inputs beyond it clamp to the saturated entries.
    const DOMAIN: f64 = 8.0;
    let lut: Vec<i32> = (0..lut_entries)
        .map(|i| {
            let x = -DOMAIN + 2.0 * DOMAIN * i as f64 / (lut_entries - 1) as f64;
            (gaussian_cdf(x) * 32768.0).round() as i32
        })
        .collect();
    // index = (x + 8) / 16 * (entries-1), computed from q by one dyadic mul
    let idx_scale = DyadicScale::from_real(
        params.scale / (2.0 * DOMAIN) * (lut_entries - 1) as f64,
    );
    let half = (lut_entries - 1) as i64 / 2;
    let out = DyadicScale::from_real(1.0 / 32768.0);
    x.iter()
        .map(|&v| {
            let q = params.quantize(v as f64);
            let idx = (idx_scale.apply(q) as i64 + half).clamp(0, lut_entries as i64 - 1);
            let prod = q as i64 * lut[idx as usize] as i64;
            let q_out = out.apply(prod.clamp(i32::MIN as i64, i32::MAX as i64) as i32);
            params.dequantize(q_out) as f32
        })
        .collect()
}

/// PICACHU integer SiLU via a sigmoid LUT, same structure as [`gelu_int`].
pub fn silu_int(x: &[f32], bits: u32, lut_entries: usize) -> Vec<f32> {
    let params = QuantParams::calibrate(x, bits);
    // sigmoid saturates outside ±16: fixed-domain Q15 table as in gelu_int.
    const DOMAIN: f64 = 16.0;
    let lut: Vec<i32> = (0..lut_entries)
        .map(|i| {
            let x = -DOMAIN + 2.0 * DOMAIN * i as f64 / (lut_entries - 1) as f64;
            ((1.0 / (1.0 + (-x).exp())) * 32768.0).round() as i32
        })
        .collect();
    let idx_scale = DyadicScale::from_real(
        params.scale / (2.0 * DOMAIN) * (lut_entries - 1) as f64,
    );
    let half = (lut_entries - 1) as i64 / 2;
    let out = DyadicScale::from_real(1.0 / 32768.0);
    x.iter()
        .map(|&v| {
            let q = params.quantize(v as f64);
            let idx = (idx_scale.apply(q) as i64 + half).clamp(0, lut_entries as i64 - 1);
            let prod = q as i64 * lut[idx as usize] as i64;
            let q_out = out.apply(prod.clamp(i32::MIN as i64, i32::MAX as i64) as i32);
            params.dequantize(q_out) as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_num::ErrorStats;
    use picachu_testkit::{prop_assert, prop_assert_eq, prop_check};

    fn cfg() -> ApproxConfig {
        ApproxConfig::default()
    }

    #[test]
    fn relu_basics() {
        assert_eq!(relu(-3.0), 0.0);
        assert_eq!(relu(2.5), 2.5);
        assert_eq!(relu(0.0), 0.0);
    }

    #[test]
    fn gelu_fp_matches_ref() {
        let s = ErrorStats::sweep(-8.0, 8.0, 20_000, |x| gelu_fp(x as f32, &cfg()) as f64, gelu_tanh_ref);
        assert!(s.max_abs < 1e-5, "{s}");
    }

    #[test]
    fn gelu_tanh_vs_phi_forms_close() {
        // The tanh form is itself an approximation of x·Φ(x): max gap ~1e-3.
        let s = ErrorStats::sweep(-6.0, 6.0, 10_000, gelu_tanh_ref, gelu_phi_ref);
        assert!(s.max_abs < 3e-3, "{s}");
    }

    #[test]
    fn gelu_lut_matches_phi_ref() {
        let lut = phi_lut(512);
        let s = ErrorStats::sweep(-6.0, 6.0, 10_000, |x| gelu_lut(x as f32, &lut) as f64, gelu_phi_ref);
        assert!(s.max_abs < 2e-3, "{s}");
    }

    #[test]
    fn gelu_asymptotes() {
        assert!((gelu_fp(10.0, &cfg()) - 10.0).abs() < 1e-4);
        assert!(gelu_fp(-10.0, &cfg()).abs() < 1e-4);
        assert_eq!(gelu_fp(0.0, &cfg()), 0.0);
    }

    #[test]
    fn silu_matches_ref() {
        let s = ErrorStats::sweep(-20.0, 20.0, 20_000, |x| silu_fp(x as f32, &cfg()) as f64, silu_ref);
        assert!(s.max_abs < 1e-4, "{s}");
    }

    #[test]
    fn swiglu_matches_ref() {
        let u: Vec<f32> = (0..256).map(|i| (i as f32 * 0.37).sin() * 4.0).collect();
        let v: Vec<f32> = (0..256).map(|i| (i as f32 * 0.11).cos() * 2.0).collect();
        let ud: Vec<f64> = u.iter().map(|&x| x as f64).collect();
        let vd: Vec<f64> = v.iter().map(|&x| x as f64).collect();
        let reference = swiglu_ref(&ud, &vd);
        let got: Vec<f64> = swiglu_fp(&u, &v, &cfg()).iter().map(|&x| x as f64).collect();
        let s = ErrorStats::compare(&got, &reference);
        assert!(s.max_abs < 1e-4, "{s}");
    }

    #[test]
    fn geglu_matches_ref() {
        let u: Vec<f32> = (0..256).map(|i| (i as f32 * 0.29).sin() * 3.0).collect();
        let v: Vec<f32> = (0..256).map(|i| (i as f32 * 0.17).cos()).collect();
        let ud: Vec<f64> = u.iter().map(|&x| x as f64).collect();
        let vd: Vec<f64> = v.iter().map(|&x| x as f64).collect();
        let reference = geglu_ref(&ud, &vd);
        let got: Vec<f64> = geglu_fp(&u, &v, &cfg()).iter().map(|&x| x as f64).collect();
        let s = ErrorStats::compare(&got, &reference);
        assert!(s.max_abs < 1e-4, "{s}");
    }

    #[test]
    fn gelu_int16_accuracy() {
        let x: Vec<f32> = (0..2000).map(|i| -6.0 + 12.0 * i as f32 / 1999.0).collect();
        let reference: Vec<f64> = x.iter().map(|&v| gelu_phi_ref(v as f64)).collect();
        let got: Vec<f64> = gelu_int(&x, 16, 1024).iter().map(|&v| v as f64).collect();
        let s = ErrorStats::compare(&got, &reference);
        // INT16 quantization grid over [-6,6] has step ~3.7e-4
        assert!(s.max_abs < 5e-3, "{s}");
    }

    #[test]
    fn silu_int16_accuracy() {
        let x: Vec<f32> = (0..2000).map(|i| -8.0 + 16.0 * i as f32 / 1999.0).collect();
        let reference: Vec<f64> = x.iter().map(|&v| silu_ref(v as f64)).collect();
        let got: Vec<f64> = silu_int(&x, 16, 1024).iter().map(|&v| v as f64).collect();
        let s = ErrorStats::compare(&got, &reference);
        // bounded by the 1024-entry sigmoid table's step over [-16, 16]
        assert!(s.max_abs < 8e-3, "{s}");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn swiglu_length_mismatch_panics() {
        swiglu_fp(&[1.0], &[1.0, 2.0], &cfg());
    }

    #[test]
    fn relu_idempotent() {
        prop_check!(256, 0xAC701, |g| {
            let x = g.f32(-100.0..100.0);
            prop_assert_eq!(relu(relu(x)), relu(x));
            Ok(())
        });
    }

    #[test]
    fn gelu_between_zero_and_x_for_positive() {
        prop_check!(256, 0xAC702, |g| {
            let x = g.f32(0.0..20.0);
            let y = gelu_fp(x, &cfg());
            prop_assert!(y >= -1e-5 && y <= x + 1e-5);
            Ok(())
        });
    }

    #[test]
    fn gelu_bounded_below() {
        prop_check!(256, 0xAC703, |g| {
            let x = g.f32(-30.0..0.0);
            // min of GeLU is about -0.17
            prop_assert!(gelu_fp(x, &cfg()) >= -0.2);
            Ok(())
        });
    }

    #[test]
    fn silu_bounded_below() {
        prop_check!(256, 0xAC704, |g| {
            let x = g.f32(-50.0..50.0);
            // min of SiLU is about -0.278
            prop_assert!(silu_fp(x, &cfg()) >= -0.3);
            Ok(())
        });
    }
}
