//! Basic nonlinear mathematical operators — the Table 3 calculation methods.
//!
//! Every operator follows the paper's recipe: **range reduction** through the
//! FP2FX special functional unit, followed by a **Taylor expansion whose term
//! count the user selects** (§3.2.3 user-defined precision, §4.1). Division is
//! executed directly by a pipelined divider FU, and the inverse square root
//! uses the GNU-libc-style Newton iteration because it only occurs outside the
//! hot normalization loops.

use picachu_num::Fp2Fx;

/// User-selected approximation levels: the number of Taylor terms per
/// operator (§4.1 "PICACHU allows the users to adjust the level of
/// approximation by selecting the number of polynomial terms").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ApproxConfig {
    /// Terms of the `2^f` series (exp Step 4 of Table 3).
    pub exp_terms: usize,
    /// Terms of the `log2(1+m)` series (log Step 2 of Table 3).
    pub log_terms: usize,
    /// Terms of the sine/cosine series (only odd/even powers are counted).
    pub trig_terms: usize,
    /// Newton–Raphson refinement steps for the inverse square root.
    pub invsqrt_iters: usize,
}

impl Default for ApproxConfig {
    /// The paper's accuracy-evaluation configuration: enough terms that the
    /// FP16-storage path shows no perplexity degradation (Table 5).
    fn default() -> ApproxConfig {
        ApproxConfig {
            exp_terms: 8,
            log_terms: 12,
            trig_terms: 6,
            invsqrt_iters: 3,
        }
    }
}

impl ApproxConfig {
    /// A deliberately cheap configuration for the precision/performance
    /// trade-off experiments (§5.3.3).
    pub fn fast() -> ApproxConfig {
        ApproxConfig {
            exp_terms: 3,
            log_terms: 3,
            trig_terms: 2,
            invsqrt_iters: 1,
        }
    }

    /// A high-precision configuration used to bound the achievable accuracy.
    pub fn precise() -> ApproxConfig {
        ApproxConfig {
            exp_terms: 9,
            log_terms: 14,
            trig_terms: 7,
            invsqrt_iters: 4,
        }
    }
}

/// `exp(x)` via Table 3:
/// 1. `t = log2(e)·x`
/// 2. FP2FX splits `t` into integer `i` and fraction `f ∈ [0,1)`
/// 3. `2^i` by direct exponent construction
/// 4. `2^f = 1 + ln2·f + ln²2/2!·f² + …` (`cfg.exp_terms` terms)
/// 5. multiply.
pub fn exp_approx(x: f32, cfg: &ApproxConfig) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    let t = std::f32::consts::LOG2_E * x;
    // Saturate like the hardware: |t| beyond the exponent range.
    if t >= 128.0 {
        return f32::INFINITY;
    }
    if t < -149.0 {
        return 0.0;
    }
    let parts = Fp2Fx::split_int_frac(t);
    let pow2_i = Fp2Fx::pow2_int(parts.int_part);
    let pow2_f = pow2_frac(parts.frac_part, cfg.exp_terms);
    pow2_i * pow2_f
}

/// `2^f` for `f ∈ [0,1)` by the Taylor series of `exp(f·ln2)` with `terms`
/// terms (`terms = n` keeps powers `f^0 … f^(n-1)`).
pub fn pow2_frac(f: f32, terms: usize) -> f32 {
    debug_assert!((0.0..1.0).contains(&f), "pow2_frac domain is [0,1), got {f}");
    let ln2 = std::f32::consts::LN_2;
    // Horner evaluation of sum_{k<terms} (ln2·f)^k / k!
    let z = ln2 * f;
    let mut acc = 0.0f32;
    for k in (0..terms).rev() {
        acc = acc * z / (k as f32 + 1.0) + 1.0;
        if k == 0 {
            break;
        }
    }
    // The loop above computes 1 + z/1·(1 + z/2·(1 + …)) which equals the
    // truncated series.
    acc
}

/// `ln(x)` via Table 3:
/// 1. FP2FX extracts exponent `e` and mantissa `m ∈ [0,1)`
/// 2. `log2(1+m) = 1/ln2 · (m - m²/2 + m³/3 - …)` — we fold the `1/ln2`
///    constant and instead evaluate `ln(1+m)` directly, then
/// 3. `ln(x) = e·ln2 + ln(1+m)`.
///
/// For `m > 0.5` the series converges slowly, so the hardware kernel applies
/// one extra halving step (`1+m = 2·(1+m')/… `): we reduce via
/// `ln(1+m) = ln2 + ln((1+m)/2)` keeping the series argument in `[-0.25, 0.5]`.
pub fn ln_approx(x: f32, cfg: &ApproxConfig) -> f32 {
    if x.is_nan() || x < 0.0 {
        return f32::NAN;
    }
    if x == 0.0 {
        return f32::NEG_INFINITY;
    }
    if x.is_infinite() {
        return f32::INFINITY;
    }
    let parts = Fp2Fx::split_exp_mantissa(x);
    let mut e = parts.int_part as f32;
    let mut m = parts.frac_part;
    if m > 0.5 {
        // (1+m) in (1.5, 2): write as 2·(1 + m') with m' = (m-1)/2 ∈ (-0.25, 0)
        e += 1.0;
        m = (m - 1.0) / 2.0;
    }
    let ln1p = ln_1p_series(m, cfg.log_terms);
    e * std::f32::consts::LN_2 + ln1p
}

/// Truncated Mercator series `ln(1+m) = m - m²/2 + m³/3 - …` with `terms`
/// terms.
pub fn ln_1p_series(m: f32, terms: usize) -> f32 {
    let mut acc = 0.0f32;
    let mut pow = m;
    for k in 1..=terms {
        let term = pow / k as f32;
        if k % 2 == 1 {
            acc += term;
        } else {
            acc -= term;
        }
        pow *= m;
    }
    acc
}

/// `sin(x)` via Table 3: reduce to `t ∈ [-π/2, π/2]` with `sin(t) = sin(x)`,
/// then the odd Taylor series `t - t³/3! + t⁵/5! - …` with `cfg.trig_terms`
/// terms.
pub fn sin_approx(x: f32, cfg: &ApproxConfig) -> f32 {
    if !x.is_finite() {
        return f32::NAN;
    }
    let (t, negate) = reduce_to_half_pi(x);
    let s = sin_series(t, cfg.trig_terms);
    if negate {
        -s
    } else {
        s
    }
}

/// `cos(x)` via Table 3: `cos(x) = sin(x + π/2)` reuses the same reduction,
/// then the even series `1 - t²/2! + t⁴/4! - …`.
pub fn cos_approx(x: f32, cfg: &ApproxConfig) -> f32 {
    if !x.is_finite() {
        return f32::NAN;
    }
    sin_approx(x + std::f32::consts::FRAC_PI_2, cfg)
}

/// Range reduction: find `t ∈ [-π/2, π/2]` and a sign such that
/// `sin(x) = ±sin(t)`. Uses the FP2FX floor split on `x/π`.
fn reduce_to_half_pi(x: f32) -> (f32, bool) {
    // x = k·π + r with r ∈ [-π/2, π/2): sin(x) = (-1)^k · sin(r)
    let inv_pi = std::f32::consts::FRAC_1_PI;
    // Work in f64 for the reduction itself; the hardware uses an extended
    // fixed-point accumulator for the same reason (argument-reduction error
    // would otherwise dominate).
    let xd = x as f64;
    let k = (xd * inv_pi as f64 + 0.5).floor();
    let r = xd - k * std::f64::consts::PI;
    (r as f32, (k as i64).rem_euclid(2) == 1)
}

/// Odd Taylor series for sine with `terms` terms (`terms = n` keeps powers
/// `t^1 … t^(2n-1)`).
pub fn sin_series(t: f32, terms: usize) -> f32 {
    let t2 = t * t;
    let mut acc = 0.0f32;
    let mut term = t;
    for k in 0..terms {
        if k % 2 == 0 {
            acc += term;
        } else {
            acc -= term;
        }
        let n = (2 * k + 2) as f32;
        term = term * t2 / (n * (n + 1.0));
    }
    acc
}

/// Division — executed directly by the pipelined divider FU (§4.1). The
/// functional model is exact FP32 division.
pub fn div_exact(num: f32, den: f32) -> f32 {
    num / den
}

/// Inverse square root, GNU-libc style (§4.1): an exponent-halving initial
/// guess (the classic bit trick) refined by `cfg.invsqrt_iters` Newton steps.
/// It runs on the CGRA outside the normalization loops, so its cost is
/// negligible relative to the loop bodies.
pub fn invsqrt_approx(x: f32, cfg: &ApproxConfig) -> f32 {
    if x.is_nan() || x < 0.0 {
        return f32::NAN;
    }
    if x == 0.0 {
        return f32::INFINITY;
    }
    if x.is_infinite() {
        return 0.0;
    }
    let mut y = f32::from_bits(0x5F37_59DF_u32.wrapping_sub(x.to_bits() >> 1));
    for _ in 0..cfg.invsqrt_iters {
        y *= 1.5 - 0.5 * x * y * y;
    }
    y
}

/// `tanh(x) = (exp(2x) - 1) / (exp(2x) + 1)`, built from the range-reduced
/// exponential plus the divider FU — exactly how the GeLU kernel of Table 1
/// computes its `Tanh`.
pub fn tanh_approx(x: f32, cfg: &ApproxConfig) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    // Saturate early: |x| > 10 is 1.0 to within FP32.
    if x > 10.0 {
        return 1.0;
    }
    if x < -10.0 {
        return -1.0;
    }
    let e2x = exp_approx(2.0 * x, cfg);
    (e2x - 1.0) / (e2x + 1.0)
}

/// `sigmoid(x) = 1 / (1 + exp(-x))` from the same primitives (used by SiLU).
pub fn sigmoid_approx(x: f32, cfg: &ApproxConfig) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    if x > 30.0 {
        return 1.0;
    }
    if x < -30.0 {
        return 0.0;
    }
    1.0 / (1.0 + exp_approx(-x, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_num::ErrorStats;
    use picachu_testkit::{prop_assert, prop_check};

    fn cfg() -> ApproxConfig {
        ApproxConfig::default()
    }

    #[test]
    fn exp_matches_reference_over_softmax_range() {
        // Softmax after max-subtraction sees x in [-inf, 0]; attention logits
        // commonly span [-30, 0].
        let s = ErrorStats::sweep(-30.0, 0.0, 50_000, |x| exp_approx(x as f32, &cfg()) as f64, f64::exp);
        assert!(s.max_rel < 1e-5, "exp rel err {s}");
    }

    #[test]
    fn exp_positive_range() {
        let s = ErrorStats::sweep(0.0, 30.0, 50_000, |x| exp_approx(x as f32, &cfg()) as f64, f64::exp);
        assert!(s.max_rel < 1e-5, "exp rel err {s}");
    }

    #[test]
    fn exp_extremes() {
        assert_eq!(exp_approx(1000.0, &cfg()), f32::INFINITY);
        assert_eq!(exp_approx(-1000.0, &cfg()), 0.0);
        assert!(exp_approx(f32::NAN, &cfg()).is_nan());
        assert_eq!(exp_approx(0.0, &cfg()), 1.0);
    }

    #[test]
    fn exp_term_count_monotone_accuracy() {
        // More Taylor terms -> lower error (the user-defined precision knob).
        let mut prev = f64::INFINITY;
        for terms in [2usize, 3, 4, 5, 6] {
            let c = ApproxConfig { exp_terms: terms, ..cfg() };
            let s = ErrorStats::sweep(-5.0, 5.0, 2000, |x| exp_approx(x as f32, &c) as f64, f64::exp);
            assert!(s.max_rel < prev, "terms={terms}: {} !< {prev}", s.max_rel);
            prev = s.max_rel;
        }
    }

    #[test]
    fn ln_matches_reference() {
        let s = ErrorStats::sweep(1e-6, 1e6, 50_000, |x| ln_approx(x as f32, &cfg()) as f64, f64::ln);
        // absolute error matters for ln (values near 0 cross zero at x=1)
        assert!(s.max_abs < 1e-4, "ln err {s}");
    }

    #[test]
    fn ln_edge_cases() {
        assert_eq!(ln_approx(0.0, &cfg()), f32::NEG_INFINITY);
        assert!(ln_approx(-1.0, &cfg()).is_nan());
        assert_eq!(ln_approx(f32::INFINITY, &cfg()), f32::INFINITY);
        assert!((ln_approx(1.0, &cfg())).abs() < 1e-6);
    }

    #[test]
    fn sin_cos_match_reference() {
        let s = ErrorStats::sweep(-100.0, 100.0, 100_000, |x| sin_approx(x as f32, &cfg()) as f64, f64::sin);
        assert!(s.max_abs < 1e-5, "sin err {s}");
        let c = ErrorStats::sweep(-100.0, 100.0, 100_000, |x| cos_approx(x as f32, &cfg()) as f64, f64::cos);
        assert!(c.max_abs < 1e-5, "cos err {c}");
    }

    #[test]
    fn sin_rope_angles() {
        // RoPE angles: m·θ_i with θ_i = 10000^(-2(i-1)/d); m up to 4096.
        for i in 0..64 {
            let theta = 10000f64.powf(-2.0 * i as f64 / 128.0);
            for m in [0u32, 1, 100, 1024, 4095] {
                let a = m as f64 * theta;
                assert!(
                    (sin_approx(a as f32, &cfg()) as f64 - a.sin()).abs() < 2e-4,
                    "angle {a}"
                );
            }
        }
    }

    #[test]
    fn invsqrt_matches_reference() {
        let s = ErrorStats::sweep(1e-4, 1e6, 50_000, |x| invsqrt_approx(x as f32, &cfg()) as f64, |x| 1.0 / x.sqrt());
        assert!(s.max_rel < 1e-5, "invsqrt err {s}");
    }

    #[test]
    fn invsqrt_edge_cases() {
        assert_eq!(invsqrt_approx(0.0, &cfg()), f32::INFINITY);
        assert_eq!(invsqrt_approx(f32::INFINITY, &cfg()), 0.0);
        assert!(invsqrt_approx(-1.0, &cfg()).is_nan());
    }

    #[test]
    fn tanh_and_sigmoid() {
        let s = ErrorStats::sweep(-8.0, 8.0, 10_000, |x| tanh_approx(x as f32, &cfg()) as f64, f64::tanh);
        assert!(s.max_abs < 1e-5, "tanh err {s}");
        let g = ErrorStats::sweep(-20.0, 20.0, 10_000, |x| sigmoid_approx(x as f32, &cfg()) as f64, |x| 1.0 / (1.0 + (-x).exp()));
        assert!(g.max_abs < 1e-5, "sigmoid err {g}");
    }

    #[test]
    fn tanh_saturation() {
        assert_eq!(tanh_approx(50.0, &cfg()), 1.0);
        assert_eq!(tanh_approx(-50.0, &cfg()), -1.0);
    }

    #[test]
    fn fast_config_worse_than_default() {
        let sf = ErrorStats::sweep(-5.0, 5.0, 2000, |x| exp_approx(x as f32, &ApproxConfig::fast()) as f64, f64::exp);
        let sd = ErrorStats::sweep(-5.0, 5.0, 2000, |x| exp_approx(x as f32, &cfg()) as f64, f64::exp);
        assert!(sf.max_rel > sd.max_rel * 10.0);
    }

    #[test]
    fn exp_always_nonnegative() {
        prop_check!(256, 0x0B501, |g| {
            let x = g.f32(-200.0..200.0);
            prop_assert!(exp_approx(x, &cfg()) >= 0.0);
            Ok(())
        });
    }

    #[test]
    fn exp_monotone() {
        prop_check!(256, 0x0B502, |g| {
            let a = g.f32(-40.0..40.0);
            let d = g.f32(0.01..10.0);
            prop_assert!(exp_approx(a + d, &cfg()) >= exp_approx(a, &cfg()));
            Ok(())
        });
    }

    #[test]
    fn ln_exp_inverse() {
        prop_check!(256, 0x0B503, |g| {
            let x = g.f32(-20.0..20.0);
            let y = ln_approx(exp_approx(x, &cfg()), &cfg());
            prop_assert!((y - x).abs() < 1e-3);
            Ok(())
        });
    }

    #[test]
    fn sin_bounded() {
        prop_check!(256, 0x0B504, |g| {
            let x = g.f32(-1000.0..1000.0);
            let s = sin_approx(x, &cfg());
            prop_assert!((-1.0001..=1.0001).contains(&s));
            Ok(())
        });
    }

    #[test]
    fn pythagorean_identity() {
        prop_check!(256, 0x0B505, |g| {
            let x = g.f32(-50.0..50.0);
            let s = sin_approx(x, &cfg());
            let c = cos_approx(x, &cfg());
            prop_assert!((s * s + c * c - 1.0).abs() < 1e-4);
            Ok(())
        });
    }

    #[test]
    fn sigmoid_in_unit_interval() {
        prop_check!(256, 0x0B506, |g| {
            let x = g.f32(-100.0..100.0);
            let y = sigmoid_approx(x, &cfg());
            prop_assert!((0.0..=1.0).contains(&y));
            Ok(())
        });
    }

    #[test]
    fn tanh_odd() {
        prop_check!(256, 0x0B507, |g| {
            let x = g.f32(-8.0..8.0);
            prop_assert!((tanh_approx(x, &cfg()) + tanh_approx(-x, &cfg())).abs() < 1e-5);
            Ok(())
        });
    }

    #[test]
    fn invsqrt_positive() {
        prop_check!(256, 0x0B508, |g| {
            let x = g.f32(1e-6..1e6);
            prop_assert!(invsqrt_approx(x, &cfg()) > 0.0);
            Ok(())
        });
    }
}
