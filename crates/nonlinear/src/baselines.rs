//! Baseline integer approximation schemes the paper compares against in
//! Table 2: **I-BERT** (Kim et al., integer-only second-order polynomials on
//! INT8 activations) and **gemmlowp** (Jacob & Warden, fixed-point arithmetic
//! with precomputed exponential constants).
//!
//! Both are implemented faithfully to their published algorithms. The key
//! behavioural difference the paper's Table 2 exposes — I-BERT's fixed-range
//! INT8 polynomials collapse on LLaMA-scale activation ranges while gemmlowp
//! degrades more gently and PICACHU's range-reduced Taylor scheme stays
//! faithful — emerges directly from these implementations.

use picachu_num::fixed::round_shift_right;
use picachu_num::Fixed32;

/// I-BERT's integer-only kernels (arXiv:2101.01321).
///
/// I-BERT quantizes activations to **INT8** and evaluates second-order
/// polynomials with completing-the-square. The polynomial coefficients were
/// fit on the narrow ranges BERT activations occupy; on wide-range inputs the
/// scheme's INT8 scale destroys the approximation.
pub mod ibert {
    /// i-exp: `exp(x)` for `x ≤ 0` via `x = -ln2·z + p`, `p ∈ (-ln2, 0]`,
    /// `exp(p) ≈ 0.3585(p + 1.353)² + 0.344`, `exp(x) = exp(p) >> z`.
    ///
    /// Input: quantized `q ≤ 0` with scale `s`. Output `(q_out, s_out)`.
    pub fn i_exp(q: i32, s: f64) -> (i32, f64) {
        debug_assert!(q <= 0, "i-exp domain is x <= 0");
        let ln2 = std::f64::consts::LN_2;
        // z = floor(q*s / -ln2) computed in integers: q_ln2 = floor(-ln2/s)
        let q_ln2 = (ln2 / s).floor().max(1.0) as i64;
        let z = (-(q as i64)) / q_ln2;
        let qp = q as i64 + z * q_ln2; // p = qp*s in (-ln2, 0]
        // Second-order poly via completing the square (I-BERT's i-poly).
        let coeff_b = 1.353;
        let coeff_c = 0.344 / 0.3585;
        let qb = (coeff_b / s).floor() as i64;
        let qc = (coeff_c / (s * s)).floor() as i64;
        let t = qp + qb;
        let q_exp_p = t * t + qc; // scale 0.3585 * s^2
        let s_out = 0.3585 * s * s;
        let q_out = (q_exp_p >> z.min(62)).clamp(i32::MIN as i64, i32::MAX as i64) as i32;
        (q_out, s_out)
    }

    /// i-erf core polynomial: `sgn(x)·(a·(clip(|x|, max=-b) + b)² + 1)` with
    /// `a = -0.2888`, `b = -1.769` — I-BERT's i-GELU building block.
    pub fn i_erf(q: i32, s: f64) -> (i32, f64) {
        let a = -0.2888;
        let b = -1.769;
        let sgn = if q < 0 { -1i64 } else { 1 };
        let q_abs = (q as i64).abs();
        let q_clip_max = ((-b) / s).floor() as i64;
        let q_clipped = q_abs.min(q_clip_max);
        let qb = (b / s).floor() as i64;
        let q1 = (1.0 / (a * s * s)).floor() as i64;
        let t = q_clipped + qb;
        let q_out = sgn * (t * t + q1);
        (
            q_out.clamp(i32::MIN as i64, i32::MAX as i64) as i32,
            a * s * s,
        )
    }

    /// i-GELU: `x · 0.5·(1 + erf(x/√2))` in integers.
    pub fn i_gelu(q: i32, s: f64) -> f64 {
        let s_inner = s / std::f64::consts::SQRT_2;
        let (q_erf, s_erf) = i_erf(q, s_inner);
        // x * 0.5 * (1 + erf): one integer multiply, fold 0.5 into the scale.
        let one_q = (1.0 / s_erf).floor() as i64;
        let q_out = q as i64 * (q_erf as i64 + one_q);
        q_out as f64 * (0.5 * s * s_erf)
    }

    /// i-exp applied to a whole softmax row at I-BERT's INT8 precision.
    ///
    /// # Panics
    /// Panics if `x` is empty.
    pub fn i_softmax(x: &[f32]) -> Vec<f32> {
        assert!(!x.is_empty(), "softmax input must be non-empty");
        let params = picachu_num::QuantParams::calibrate(x, 8);
        let q: Vec<i32> = x.iter().map(|&v| params.quantize(v as f64)).collect();
        let qmax = q.iter().copied().max().expect("non-empty");
        let mut s_out = 1.0;
        let exps: Vec<i64> = q
            .iter()
            .map(|&qi| {
                let (e, so) = i_exp(qi - qmax, params.scale);
                s_out = so;
                e as i64
            })
            .collect();
        let sum: i64 = exps.iter().sum();
        exps.iter()
            .map(|&e| {
                if sum <= 0 {
                    0.0
                } else {
                    ((e << 15) / sum) as f32 / 32768.0
                }
            })
            .collect()
    }

    /// Integer square root by bit-wise iteration (I-BERT's i-sqrt).
    pub fn i_sqrt(n: i64) -> i64 {
        if n <= 0 {
            return 0;
        }
        let mut x = n;
        let mut y = (x + 1) / 2;
        while y < x {
            x = y;
            y = (x + n / x) / 2;
        }
        x
    }

    /// I-BERT integer LayerNorm at INT8 activation precision.
    ///
    /// # Panics
    /// Panics if `x` is empty.
    pub fn i_layernorm(x: &[f32]) -> Vec<f32> {
        assert!(!x.is_empty(), "layernorm input must be non-empty");
        let params = picachu_num::QuantParams::calibrate(x, 8);
        let q: Vec<i64> = x.iter().map(|&v| params.quantize(v as f64) as i64).collect();
        let n = q.len() as i64;
        let mean = q.iter().sum::<i64>() / n;
        let var = q.iter().map(|&v| (v - mean) * (v - mean)).sum::<i64>() / n;
        let sigma_q = i_sqrt(var).max(1);
        // Integer-only inference requantizes the output to INT8 for the next
        // GEMM: out_scale derives from the output max. With massive
        // activation dims this step rounds small informative channels to
        // zero — the Table 2 failure mode on LLaMA-class models.
        let out: Vec<i64> = q.iter().map(|&v| ((v - mean) << 8) / sigma_q).collect();
        requantize_int8(&out, 256.0)
    }

    /// I-BERT-style integer RMSNorm (the paper applies I-BERT's methodology
    /// to LLaMA, which requires extending i-layernorm to RMSNorm).
    ///
    /// # Panics
    /// Panics if `x` is empty.
    pub fn i_rmsnorm(x: &[f32]) -> Vec<f32> {
        assert!(!x.is_empty(), "rmsnorm input must be non-empty");
        let params = picachu_num::QuantParams::calibrate(x, 8);
        let q: Vec<i64> = x.iter().map(|&v| params.quantize(v as f64) as i64).collect();
        let n = q.len() as i64;
        let ms = q.iter().map(|&v| v * v).sum::<i64>() / n;
        let sigma_q = i_sqrt(ms).max(1);
        let out: Vec<i64> = q.iter().map(|&v| (v << 8) / sigma_q).collect();
        requantize_int8(&out, 256.0)
    }

    /// Requantizes a Q8-grid integer tensor to INT8 with a per-tensor
    /// max-derived scale, as integer-only inference does between layers.
    fn requantize_int8(q8: &[i64], grid: f64) -> Vec<f32> {
        let max_abs = q8.iter().map(|v| v.abs()).max().unwrap_or(1).max(1) as f64;
        let step = max_abs / 127.0;
        q8.iter()
            .map(|&v| ((v as f64 / step).round() * step / grid) as f32)
            .collect()
    }

    /// I-BERT SiLU substitute: LLaMA needs `x·sigmoid(x)`, which I-BERT does
    /// not define; the standard extension expresses `sigmoid` through i-exp
    /// (`σ(x) = exp(x̃)/(1+exp(x̃))` with `x̃ = min(x, 0)` folding sign).
    pub fn i_silu(x: &[f32]) -> Vec<f32> {
        let params = picachu_num::QuantParams::calibrate(x, 8);
        let out: Vec<f64> = x
            .iter()
            .map(|&v| {
                let q = params.quantize(v as f64);
                let neg = q.min(0);
                let (e, s_e) = i_exp(neg - q.max(0), params.scale); // exp(-|x|)
                let em = e as f64 * s_e;
                let sig = if q >= 0 { 1.0 / (1.0 + em) } else { em / (1.0 + em) };
                params.dequantize(q) * sig
            })
            .collect();
        // integer-only inference requantizes the activation output to INT8
        let max_abs = out.iter().fold(1e-12f64, |m, v| m.max(v.abs()));
        let step = max_abs / 127.0;
        out.iter().map(|v| ((v / step).round() * step) as f32).collect()
    }
}

/// gemmlowp's fixed-point kernels (github.com/google/gemmlowp,
/// `fixedpoint.h`).
pub mod gemmlowp {
    use super::*;

    /// gemmlowp is an 8-bit inference library: activations enter its kernels
    /// through a symmetric INT8 quantization. Every public kernel below
    /// round-trips its input through this step.
    fn quantize_input(x: &[f32]) -> Vec<f32> {
        let params = picachu_num::QuantParams::calibrate(x, 8);
        x.iter()
            .map(|&v| params.dequantize(params.quantize(v as f64)) as f32)
            .collect()
    }

    /// Fraction bits of the gemmlowp exponential's working format (Q5.26:
    /// 5 integer bits for the range `[-32, 0]`).
    pub const EXP_FRAC_BITS: u32 = 26;

    /// `exp(x)` for `x ∈ (-1/4, 0]` by gemmlowp's 4th-order Taylor with
    /// barrel-shifted constants, in Q26.
    fn exp_on_interval_q(a: i64) -> i64 {
        // constants in Q26
        let one = 1i64 << EXP_FRAC_BITS;
        let c1 = one; // 1
        // Horner on exp(x) = 1 + x(1 + x/2(1 + x/3(1 + x/4)))
        let mut acc = one + round_shift_right(a, 2); // 1 + x/4
        acc = one + round_shift_right(mul_q(a, acc), 0) / 3; // careful: (x*acc)/3
        acc = one + round_shift_right(mul_q(a, acc), 1); // 1 + x*acc/2
        acc = c1 + mul_q(a, acc); // 1 + x*acc
        acc
    }

    fn mul_q(a: i64, b: i64) -> i64 {
        round_shift_right(a * b, EXP_FRAC_BITS)
    }

    /// gemmlowp `exp_on_negative_values`: input `x ≤ 0` in Q5.26; output
    /// `exp(x)` in Q0.26-ish (we return Q26). Decomposes `x` into multiples
    /// of `-1/4` handled by precomputed constants `exp(-1/4·2^k)` and a
    /// residual in `(-1/4, 0]` handled by the Taylor interval kernel.
    pub fn exp_on_negative_values_q(x_q: i64) -> i64 {
        debug_assert!(x_q <= 0, "gemmlowp exp domain is x <= 0");
        let one_quarter = 1i64 << (EXP_FRAC_BITS - 2);
        // mask the residual into (-1/4, 0]
        let mask = one_quarter - 1;
        let a = if x_q & mask == 0 { 0 } else { (x_q & mask) - one_quarter };
        let mut result = exp_on_interval_q(a);
        // remainder = x - a, a multiple of -1/4
        let mut remainder = ((x_q - a) / -one_quarter) as u64;
        // multiply by exp(-1/4 * 2^k) for each set bit k
        let mut k = 0u32;
        while remainder != 0 && k < 16 {
            if remainder & 1 == 1 {
                let c = ((-(2f64.powi(k as i32)) / 4.0).exp() * (1i64 << EXP_FRAC_BITS) as f64)
                    .round() as i64;
                result = mul_q(result, c);
            }
            remainder >>= 1;
            k += 1;
        }
        result.max(0)
    }

    /// `exp(x)` for real `x ≤ 0` through the gemmlowp fixed-point path.
    pub fn exp_neg(x: f64) -> f64 {
        debug_assert!(x <= 0.0);
        let clamped = x.max(-31.0);
        let x_q = (clamped * (1i64 << EXP_FRAC_BITS) as f64).round() as i64;
        exp_on_negative_values_q(x_q) as f64 / (1i64 << EXP_FRAC_BITS) as f64
    }

    /// gemmlowp `one_over_one_plus_x_for_x_in_0_1` via Newton–Raphson on
    /// fixed point (3 iterations, as in the library).
    pub fn one_over_one_plus_x(x: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&x));
        let fb = 29u32;
        let one = Fixed32::one(fb);
        let xq = Fixed32::from_f64(x, fb);
        // initial guess 48/17 - 32/17 * (1+x)/2 ; use float-free constants
        let half_den = Fixed32::from_f64((1.0 + x) / 2.0, fb);
        let mut y = Fixed32::from_f64(48.0 / 17.0 / 2.0, fb).sub(
            Fixed32::from_f64(32.0 / 17.0 / 2.0, fb).mul(half_den),
        );
        for _ in 0..3 {
            // y = y*(2 - (1+x)*y)  [adapted to the halved domain]
            let denom = one.add(xq);
            let prod = denom.mul(y);
            let two = Fixed32::from_f64(2.0, fb - 1).rescale(fb);
            y = y.mul(two.sub(prod));
        }
        y.to_f64()
    }

    /// gemmlowp softmax: fixed-point exp + Newton reciprocal.
    ///
    /// # Panics
    /// Panics if `x` is empty.
    pub fn softmax(x: &[f32]) -> Vec<f32> {
        assert!(!x.is_empty(), "softmax input must be non-empty");
        let x = quantize_input(x);
        let u = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
        let exps: Vec<f64> = x.iter().map(|&v| exp_neg(v as f64 - u)).collect();
        let sum: f64 = exps.iter().sum();
        // reciprocal via the fixed-point Newton kernel on a normalized sum
        let scale = 2f64.powi(sum.log2().floor() as i32 + 1);
        let frac = sum / scale - 0.0; // in (0.5, 1]
        let recip = if (0.0..=1.0).contains(&(frac * 2.0 - 1.0)) {
            one_over_one_plus_x(frac * 2.0 - 1.0) / (scale / 2.0)
        } else {
            1.0 / sum
        };
        exps.iter().map(|&e| (e * recip) as f32).collect()
    }

    /// gemmlowp tanh through `exp_on_negative_values`:
    /// `tanh(x) = sgn(x)·(1 − e)/(1 + e)` with `e = exp(-2|x|)`.
    pub fn tanh(x: f64) -> f64 {
        let e = exp_neg(-2.0 * x.abs());
        let t = (1.0 - e) / (1.0 + e);
        if x < 0.0 {
            -t
        } else {
            t
        }
    }

    /// gemmlowp logistic: `σ(x) = 1/(1 + exp(-|x|))`, mirrored for `x < 0`.
    pub fn logistic(x: f64) -> f64 {
        let e = exp_neg(-x.abs());
        let p = 1.0 / (1.0 + e);
        if x >= 0.0 {
            p
        } else {
            1.0 - p
        }
    }

    /// GeLU through the gemmlowp tanh kernel (tanh form of GeLU).
    pub fn gelu(x: f64) -> f64 {
        let c = (2.0 / std::f64::consts::PI).sqrt();
        0.5 * x * (1.0 + tanh(c * (x + 0.044715 * x * x * x)))
    }

    /// SiLU through the gemmlowp logistic kernel.
    pub fn silu(x: f64) -> f64 {
        x * logistic(x)
    }

    /// LayerNorm with gemmlowp-style fixed-point statistics (Q16
    /// accumulation, fixed-point reciprocal square root by Newton).
    ///
    /// # Panics
    /// Panics if `x` is empty.
    pub fn layernorm(x: &[f32]) -> Vec<f32> {
        assert!(!x.is_empty(), "layernorm input must be non-empty");
        let x = quantize_input(x);
        let n = x.len() as f64;
        let fb = 16u32;
        let q: Vec<i64> = x
            .iter()
            .map(|&v| (v as f64 * (1i64 << fb) as f64).round() as i64)
            .collect();
        let mean = q.iter().sum::<i64>() / n as i64;
        let var_q = q.iter().map(|&v| {
            let d = v - mean;
            round_shift_right(d * d, fb)
        }).sum::<i64>() / n as i64;
        let var = var_q as f64 / (1i64 << fb) as f64;
        let inv_sigma = 1.0 / (var + 1e-5).sqrt();
        q.iter()
            .map(|&v| (((v - mean) as f64 / (1i64 << fb) as f64) * inv_sigma) as f32)
            .collect()
    }

    /// RMSNorm with the same fixed-point statistics.
    ///
    /// # Panics
    /// Panics if `x` is empty.
    pub fn rmsnorm(x: &[f32]) -> Vec<f32> {
        assert!(!x.is_empty(), "rmsnorm input must be non-empty");
        let x = quantize_input(x);
        let n = x.len() as f64;
        let fb = 16u32;
        let q: Vec<i64> = x
            .iter()
            .map(|&v| (v as f64 * (1i64 << fb) as f64).round() as i64)
            .collect();
        let ms_q = q
            .iter()
            .map(|&v| round_shift_right(v * v, fb))
            .sum::<i64>()
            / n as i64;
        let ms = ms_q as f64 / (1i64 << fb) as f64;
        let inv_sigma = 1.0 / (ms + 1e-5).sqrt();
        q.iter()
            .map(|&v| ((v as f64 / (1i64 << fb) as f64) * inv_sigma) as f32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::softmax::softmax_ref;
    use picachu_num::ErrorStats;

    #[test]
    fn ibert_exp_reasonable_on_bert_range() {
        // On the narrow range I-BERT was designed for, error is moderate.
        let s = 8.0 / 127.0; // INT8 over [-8, 0]
        let mut max_err = 0.0f64;
        for q in -127..=0 {
            let x = q as f64 * s;
            let (e, so) = ibert::i_exp(q, s);
            let err = (e as f64 * so - x.exp()).abs();
            max_err = max_err.max(err);
        }
        assert!(max_err < 0.03, "i-exp err {max_err}");
    }

    #[test]
    fn ibert_exp_degrades_on_llama_range() {
        // LLaMA attention logits span far wider ranges; INT8 quantization of
        // [-80, 0] gives s ≈ 0.63 and the polynomial collapses.
        let s = 80.0 / 127.0;
        let mut max_err = 0.0f64;
        for q in -127..=0 {
            let x = q as f64 * s;
            let (e, so) = ibert::i_exp(q, s);
            max_err = max_err.max((e as f64 * so - x.exp()).abs());
        }
        assert!(max_err > 0.05, "expected visible degradation, got {max_err}");
    }

    #[test]
    fn ibert_softmax_vs_ref_narrow() {
        let x: Vec<f32> = (0..64).map(|i| -((i % 9) as f32) * 0.8).collect();
        let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let reference = softmax_ref(&xd);
        let got: Vec<f64> = ibert::i_softmax(&x).iter().map(|&v| v as f64).collect();
        let s = ErrorStats::compare(&got, &reference);
        assert!(s.max_abs < 0.02, "{s}");
    }

    #[test]
    fn ibert_sqrt_exact_on_squares() {
        for n in [0i64, 1, 4, 81, 1024, 99980001] {
            assert_eq!(ibert::i_sqrt(n) * ibert::i_sqrt(n), n);
        }
        assert_eq!(ibert::i_sqrt(10), 3);
    }

    #[test]
    fn ibert_gelu_reasonable_on_narrow_range() {
        let s = 4.0 / 127.0;
        let mut max_err = 0.0f64;
        for q in -127..=127 {
            let x = q as f64 * s;
            let reference = x * picachu_num::lut::gaussian_cdf(x);
            max_err = max_err.max((ibert::i_gelu(q, s) - reference).abs());
        }
        assert!(max_err < 0.05, "i-gelu err {max_err}");
    }

    #[test]
    fn gemmlowp_exp_accuracy() {
        let s = ErrorStats::sweep(-20.0, 0.0, 20_000, gemmlowp::exp_neg, f64::exp);
        assert!(s.max_abs < 1e-3, "gemmlowp exp err {s}");
    }

    #[test]
    fn gemmlowp_exp_worse_than_picachu() {
        use crate::ops::{exp_approx, ApproxConfig};
        let cfg = ApproxConfig::default();
        let g = ErrorStats::sweep(-20.0, 0.0, 20_000, gemmlowp::exp_neg, f64::exp);
        let p = ErrorStats::sweep(-20.0, 0.0, 20_000, |x| exp_approx(x as f32, &cfg) as f64, f64::exp);
        // Deep negatives underflow gemmlowp's Q26 grid (relative error -> 1),
        // while the range-reduced FP path keeps relative error tiny everywhere.
        assert!(g.max_rel > p.max_rel * 100.0, "gemmlowp {g} should be worse than picachu {p}");
    }

    #[test]
    fn gemmlowp_tanh_and_logistic() {
        let t = ErrorStats::sweep(-8.0, 8.0, 10_000, gemmlowp::tanh, f64::tanh);
        assert!(t.max_abs < 5e-3, "{t}");
        let l = ErrorStats::sweep(-15.0, 15.0, 10_000, gemmlowp::logistic, |x| 1.0 / (1.0 + (-x).exp()));
        assert!(l.max_abs < 5e-3, "{l}");
    }

    #[test]
    fn gemmlowp_softmax_close() {
        let x: Vec<f32> = (0..128).map(|i| (i as f32 * 0.61).sin() * 6.0).collect();
        let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let reference = softmax_ref(&xd);
        let got: Vec<f64> = gemmlowp::softmax(&x).iter().map(|&v| v as f64).collect();
        let s = ErrorStats::compare(&got, &reference);
        assert!(s.max_abs < 5e-3, "{s}");
    }

    #[test]
    fn gemmlowp_norms_close() {
        let x: Vec<f32> = (0..512).map(|i| (i as f32 * 0.37).sin() * 2.0).collect();
        let xd: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        // the INT8 input quantization bounds gemmlowp's accuracy to roughly
        // one input step (max|x|/127 ~ 0.02) propagated through the norm
        let ln_ref = crate::kernels::norm::layernorm_ref(&xd);
        let ln: Vec<f64> = gemmlowp::layernorm(&x).iter().map(|&v| v as f64).collect();
        assert!(ErrorStats::compare(&ln, &ln_ref).max_abs < 3e-2);
        let rn_ref = crate::kernels::norm::rmsnorm_ref(&xd);
        let rn: Vec<f64> = gemmlowp::rmsnorm(&x).iter().map(|&v| v as f64).collect();
        assert!(ErrorStats::compare(&rn, &rn_ref).max_abs < 3e-2);
    }

    #[test]
    fn newton_reciprocal() {
        for x in [0.0f64, 0.25, 0.5, 0.9, 1.0] {
            let got = gemmlowp::one_over_one_plus_x(x);
            assert!((got - 1.0 / (1.0 + x)).abs() < 1e-4, "x={x}: {got}");
        }
    }
}
