//! Integer polynomial evaluation on quantized inputs (§4.1).
//!
//! Managing INT addition with mismatched scale factors is the hard part of
//! integer nonlinear kernels. The paper adopts I-BERT's **completing the
//! square**: `a + b·x + c·x² = c·(x + b/2c)² + (a − b²/4c)`, which turns a
//! quadratic on a quantized input `x = q·s` into a pure integer computation
//! `(q + q_b)² + q_c` with a single output scale `c·s²`. Higher-degree Taylor
//! polynomials are evaluated by integer Horner steps with dyadic requantization
//! between stages, and the exponential's `2^f` series gets a dedicated
//! fixed-point evaluator used by the INT Softmax/GeLU/SiLU kernels.

use picachu_num::fixed::round_shift_right;
use picachu_num::DyadicScale;

/// A quadratic `a + b·x + c·x²` evaluated on quantized inputs via completing
/// the square.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadPoly {
    /// Constant coefficient.
    pub a: f64,
    /// Linear coefficient.
    pub b: f64,
    /// Quadratic coefficient (must be nonzero).
    pub c: f64,
}

impl QuadPoly {
    /// Reference evaluation in `f64`.
    pub fn eval_f64(&self, x: f64) -> f64 {
        self.a + self.b * x + self.c * x * x
    }

    /// Integer evaluation of the quadratic on `q` with input scale `s`
    /// (`x = q·s`), returning `(q_out, s_out)` with `x ≈ q_out · s_out`.
    ///
    /// Implements I-BERT's scheme exactly: `q_b = ⌊b/(2·c·s)⌋`,
    /// `q_c = ⌊(a − b²/4c) / (c·s²)⌋`, `q_out = (q + q_b)² + q_c`,
    /// `s_out = c·s²`.
    ///
    /// # Panics
    /// Panics if `c == 0` or `s <= 0`.
    pub fn eval_int(&self, q: i32, s: f64) -> (i64, f64) {
        assert!(self.c != 0.0, "completing the square requires c != 0");
        assert!(s > 0.0, "input scale must be positive, got {s}");
        let q_b = (self.b / (2.0 * self.c * s)).floor() as i64;
        let s_out = self.c * s * s;
        let q_c = ((self.a - self.b * self.b / (4.0 * self.c)) / s_out).floor() as i64;
        let t = q as i64 + q_b;
        (t * t + q_c, s_out)
    }
}

/// Integer Horner evaluation of `Σ coeffs[k]·x^k` on a quantized input.
///
/// Each Horner step computes `acc ← acc·x + coeff` entirely in integers:
/// the accumulator is requantized back to `acc_bits` fractional bits after the
/// widening multiply, and the coefficient is quantized to the same grid.
/// Returns the result as a real number reconstructed from the fixed-point
/// accumulator (callers that need the raw integer use [`exp2_frac_q`]).
///
/// # Panics
/// Panics if `coeffs` is empty or `acc_bits > 30`.
pub fn horner_int(coeffs: &[f64], q: i32, s: f64, acc_bits: u32) -> f64 {
    assert!(!coeffs.is_empty(), "polynomial needs at least one coefficient");
    assert!(acc_bits <= 30, "accumulator fraction bits must be <= 30");
    let one = 1i64 << acc_bits;
    // x in fixed point.
    let x_q = ((q as f64 * s) * one as f64).round() as i64;
    let mut acc = (coeffs[coeffs.len() - 1] * one as f64).round() as i64;
    for &c in coeffs.iter().rev().skip(1) {
        let prod = round_shift_right(acc.saturating_mul(x_q), acc_bits);
        acc = prod + (c * one as f64).round() as i64;
    }
    acc as f64 / one as f64
}

/// Fixed-point evaluation of `2^f` for `f ∈ [0,1)` given as a Q`frac_bits`
/// integer; returns a Q`frac_bits` integer in `[2^frac_bits, 2^(frac_bits+1))`.
///
/// This is the integer twin of [`crate::ops::pow2_frac`] and the core of the
/// INT Softmax kernel: after max subtraction the exponent split gives a
/// non-positive integer part (a pure shift) and this fraction.
///
/// # Panics
/// Panics if `f_q` is out of `[0, 2^frac_bits)` or `frac_bits` not in `4..=28`.
pub fn exp2_frac_q(f_q: i32, frac_bits: u32, terms: usize) -> i32 {
    assert!((4..=28).contains(&frac_bits), "frac_bits must be in 4..=28");
    let one = 1i64 << frac_bits;
    assert!(
        (0..one).contains(&(f_q as i64)),
        "f_q={f_q} outside [0, 2^{frac_bits})"
    );
    // z = ln2 · f in fixed point.
    let ln2_q = (std::f64::consts::LN_2 * one as f64).round() as i64;
    let z = round_shift_right(ln2_q * f_q as i64, frac_bits);
    // Horner: acc = 1 + z/1·(1 + z/2·(1 + z/3·(…)))
    let mut acc = one;
    for k in (1..terms).rev() {
        // acc ← 1 + (z/k)·acc
        let scaled = round_shift_right(z * acc, frac_bits) / k as i64;
        acc = one + scaled;
    }
    acc.clamp(0, i32::MAX as i64) as i32
}

/// Integer exponential used by the INT Softmax/GeLU kernels.
///
/// Input: quantized `q` with scale `s`, assumed **non-positive real value**
/// (as produced by the max-subtraction step). Output: a Q`frac_bits`
/// fixed-point value of `exp(q·s)` in `[0, 2^frac_bits]`.
///
/// Pipeline (all integer): dyadic multiply by `log2(e)·s` into Q`frac_bits`,
/// split integer/fraction by shift/mask, `2^f` via [`exp2_frac_q`], then an
/// arithmetic right shift by `-i`.
pub fn exp_int_q(q: i32, s: f64, frac_bits: u32, terms: usize) -> i32 {
    let one = 1i64 << frac_bits;
    // t = log2(e) · x in Q(frac_bits), via a single dyadic multiply.
    let dy = DyadicScale::from_real(std::f64::consts::LOG2_E * s * one as f64);
    let t = dy.apply(q) as i64;
    if t >= 0 {
        // exp(0) == 1 after max subtraction; positive t can only arise from
        // rounding, clamp to 1.0.
        return one as i32;
    }
    let i = t >> frac_bits; // arithmetic shift = floor division
    let f_q = (t - (i << frac_bits)) as i32; // in [0, 2^frac_bits)
    let pow2_f = exp2_frac_q(f_q, frac_bits, terms) as i64;
    let shift = (-i) as u32;
    if shift >= 63 {
        return 0;
    }
    round_shift_right(pow2_f, shift).clamp(0, i32::MAX as i64) as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_testkit::{prop_assert, prop_check};

    #[test]
    fn quad_completing_square_matches_float() {
        // I-BERT's i-exp quadratic: 0.3585(x + 1.353)^2 + 0.344 expanded.
        let p = QuadPoly {
            a: 0.3585 * 1.353 * 1.353 + 0.344,
            b: 0.3585 * 2.0 * 1.353,
            c: 0.3585,
        };
        let s = 0.01;
        for q in [-200i32, -50, 0, 37, 150] {
            let x = q as f64 * s;
            let (qo, so) = p.eval_int(q, s);
            let approx = qo as f64 * so;
            assert!(
                (approx - p.eval_f64(x)).abs() < 0.02,
                "q={q}: {approx} vs {}",
                p.eval_f64(x)
            );
        }
    }

    #[test]
    fn quad_int_is_shift_invariant_in_q() {
        // The integer output must be computable from q alone given the
        // precomputed q_b, q_c — check consistency across calls.
        let p = QuadPoly { a: 1.0, b: -2.0, c: 0.5 };
        let (q1, s1) = p.eval_int(100, 0.05);
        let (q2, s2) = p.eval_int(100, 0.05);
        assert_eq!((q1, s1.to_bits()), (q2, s2.to_bits()));
    }

    #[test]
    fn horner_matches_float_poly() {
        // p(x) = 1 + x + x^2/2 + x^3/6 (exp Taylor prefix)
        let coeffs = [1.0, 1.0, 0.5, 1.0 / 6.0];
        let s = 1.0 / 128.0;
        for q in -128..=128 {
            let x = q as f64 * s;
            let reference: f64 = coeffs
                .iter()
                .enumerate()
                .map(|(k, c)| c * x.powi(k as i32))
                .sum();
            let got = horner_int(&coeffs, q, s, 24);
            assert!((got - reference).abs() < 1e-4, "q={q}");
        }
    }

    #[test]
    fn exp2_frac_endpoints() {
        let fb = 20;
        let one = 1i32 << fb;
        // f = 0 -> 1.0
        assert_eq!(exp2_frac_q(0, fb, 6), one);
        // f -> 1: 2^f -> 2
        let near_one = one - 1;
        let v = exp2_frac_q(near_one, fb, 8) as f64 / one as f64;
        assert!((v - 2.0).abs() < 1e-4, "2^~1 = {v}");
    }

    #[test]
    fn exp2_frac_accuracy() {
        let fb = 20;
        let one = 1i64 << fb;
        for i in 0..1000 {
            let f = i as f64 / 1000.0;
            let f_q = (f * one as f64) as i32;
            let got = exp2_frac_q(f_q, fb, 7) as f64 / one as f64;
            let reference = 2f64.powf(f_q as f64 / one as f64);
            assert!((got - reference).abs() < 1e-4, "f={f}: {got} vs {reference}");
        }
    }

    #[test]
    fn exp_int_matches_reference_on_softmax_domain() {
        let fb = 20;
        let one = (1i64 << fb) as f64;
        let s = 20.0 / 32767.0; // INT16 quantization of logits in [-20, 0]
        for q in (-32767i32..=0).step_by(97) {
            let x = q as f64 * s;
            let got = exp_int_q(q, s, fb, 7) as f64 / one;
            assert!(
                (got - x.exp()).abs() < 5e-4,
                "x={x}: got {got} vs {}",
                x.exp()
            );
        }
    }

    #[test]
    fn exp_int_zero_is_one() {
        let fb = 16;
        assert_eq!(exp_int_q(0, 0.001, fb, 6), 1 << fb);
    }

    #[test]
    fn exp_int_deep_negative_underflows_to_zero() {
        assert_eq!(exp_int_q(-32767, 0.01, 20, 6), 0);
    }

    #[test]
    fn exp_int_monotone() {
        prop_check!(256, 0x17901, |g| {
            let q1 = g.i32(-30000..0);
            let d = g.i32(1..1000);
            let q2 = (q1 + d).min(0);
            let s = 15.0 / 32767.0;
            let a = exp_int_q(q1, s, 20, 7);
            let b = exp_int_q(q2, s, 20, 7);
            prop_assert!(a <= b + 1, "exp must be monotone: q1={q1} -> {a}, q2={q2} -> {b}");
            Ok(())
        });
    }

    #[test]
    fn exp2_frac_in_range() {
        prop_check!(256, 0x17902, |g| {
            let f_q = g.i32(0..(1 << 20));
            let v = exp2_frac_q(f_q, 20, 7);
            let one = 1 << 20;
            prop_assert!(v >= one - 1 && v <= 2 * one + 1);
            Ok(())
        });
    }

    #[test]
    fn horner_bounded_error() {
        prop_check!(256, 0x17903, |g| {
            let q = g.i32(-1000..1000);
            let bits = g.u32(16..26);
            let coeffs = [0.25, -0.5, 0.125];
            let s = 1.0 / 1024.0;
            let x = q as f64 * s;
            let reference = 0.25 - 0.5 * x + 0.125 * x * x;
            let got = horner_int(&coeffs, q, s, bits);
            prop_assert!((got - reference).abs() < 1e-3);
            Ok(())
        });
    }
}
