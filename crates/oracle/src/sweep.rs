//! Seeded sweep driver: (op × shape × format × fabric geometry) grid.
//!
//! Cases are linearized in a deterministic order; a discrepancy's `case`
//! field is its position in that order, and setting
//! `PICACHU_ORACLE_REPLAY=<case>` re-runs exactly that one case. The
//! process-wide compile cache keeps the grid affordable: only
//! (op, geometry, format, unroll set) combinations compile, not every
//! shape.

use crate::report::{CaseCtx, OracleReport};
use crate::{numerics, timing};
use picachu::engine::{EngineConfig, PicachuEngine};
use picachu_nonlinear::NonlinearOp;
use picachu_num::DataFormat;

/// One fabric-geometry tier of the sweep: the formats exercised on it and
/// the unroll candidates the compiler may try (small fabrics get small
/// unroll sets — an 8× unrolled, 4-lane kernel cannot fit a 1×1 grid at a
/// sane II).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepTier {
    /// CGRA (rows, cols).
    pub geometry: (usize, usize),
    /// Data formats run on this geometry.
    pub formats: Vec<DataFormat>,
    /// Unroll factors the engine may try.
    pub unroll_candidates: Vec<usize>,
}

/// The sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Operations under test.
    pub ops: Vec<NonlinearOp>,
    /// (rows, channel) tensor shapes for the timing oracle.
    pub shapes: Vec<(usize, usize)>,
    /// Geometry tiers.
    pub tiers: Vec<SweepTier>,
    /// Formats the numerics oracle runs (geometry-independent).
    pub numerics_formats: Vec<DataFormat>,
    /// Base engine/input seed.
    pub seed: u64,
    /// Taylor terms for the exp/sin chains.
    pub taylor_terms: usize,
}

impl SweepConfig {
    /// The full grid: ≥ 200 timing cases over three-class, degenerate and
    /// annealed scale-up (12×12/16×16) fabrics, plus every (op, format)
    /// numerics case.
    pub fn full() -> SweepConfig {
        let all = NonlinearOp::ALL.to_vec();
        SweepConfig {
            ops: all,
            shapes: vec![(1, 1), (1, 64), (16, 128), (128, 64)],
            tiers: vec![
                SweepTier {
                    geometry: (4, 4),
                    formats: DataFormat::ALL.to_vec(),
                    unroll_candidates: vec![1, 2, 4, 8],
                },
                SweepTier {
                    geometry: (3, 3),
                    formats: vec![DataFormat::Fp16],
                    unroll_candidates: vec![1, 2, 4],
                },
                SweepTier {
                    geometry: (2, 2),
                    formats: vec![DataFormat::Fp16, DataFormat::Int16],
                    unroll_candidates: vec![1, 2],
                },
                SweepTier {
                    geometry: (1, 1),
                    formats: vec![DataFormat::Fp16],
                    unroll_candidates: vec![1],
                },
                // scale-up tiers: above the 64-tile threshold the engine
                // takes the annealed Place→Route→Fold pipeline, so these
                // hold the exact cycle/II/NoC-hop identities through it
                SweepTier {
                    geometry: (12, 12),
                    formats: vec![DataFormat::Fp16],
                    unroll_candidates: vec![1, 2],
                },
                SweepTier {
                    geometry: (16, 16),
                    formats: vec![DataFormat::Fp16],
                    unroll_candidates: vec![1, 2],
                },
            ],
            numerics_formats: DataFormat::ALL.to_vec(),
            seed: 0x71CA,
            taylor_terms: 8,
        }
    }

    /// Small fixed-seed grid for the verify-script smoke gate.
    pub fn smoke() -> SweepConfig {
        SweepConfig {
            ops: NonlinearOp::ALL.to_vec(),
            shapes: vec![(1, 64), (16, 128)],
            tiers: vec![SweepTier {
                geometry: (4, 4),
                formats: vec![DataFormat::Fp16, DataFormat::Int16],
                unroll_candidates: vec![1, 2, 4, 8],
            }],
            numerics_formats: vec![DataFormat::Fp16, DataFormat::Int16],
            seed: 0x71CA,
            taylor_terms: 8,
        }
    }

    /// Total number of cases the grid linearizes to.
    pub fn case_count(&self) -> usize {
        let timing: usize = self
            .tiers
            .iter()
            .map(|t| t.formats.len() * self.ops.len() * self.shapes.len())
            .sum();
        timing + self.numerics_formats.len() * self.ops.len()
    }
}

/// Runs the sweep. When `PICACHU_ORACLE_REPLAY=<index>` is set, only that
/// case executes (same engines, same seeds — bit-identical to its run
/// inside the full sweep).
pub fn run_sweep(cfg: &SweepConfig) -> OracleReport {
    let replay: Option<usize> = std::env::var("PICACHU_ORACLE_REPLAY")
        .ok()
        .and_then(|s| s.parse().ok());
    let mut report = OracleReport::default();
    let mut index = 0usize;

    for tier in &cfg.tiers {
        for &format in &tier.formats {
            let mut engine = PicachuEngine::new(EngineConfig {
                cgra_rows: tier.geometry.0,
                cgra_cols: tier.geometry.1,
                format,
                taylor_terms: cfg.taylor_terms,
                unroll_candidates: tier.unroll_candidates.clone(),
                seed: cfg.seed,
                ..EngineConfig::default()
            });
            let mut engine_checked = false;
            for &op in &cfg.ops {
                for &(rows, channel) in &cfg.shapes {
                    let ctx = CaseCtx {
                        index,
                        op,
                        rows,
                        channel,
                        format,
                        cgra: tier.geometry,
                        seed: cfg.seed,
                    };
                    index += 1;
                    if replay.is_some_and(|r| r != ctx.index) {
                        continue;
                    }
                    if !engine_checked {
                        timing::check_energy(&mut report, ctx, &engine);
                        engine_checked = true;
                    }
                    timing::check_case(&mut report, ctx, &mut engine);
                    report.cases += 1;
                }
            }
        }
    }

    for &format in &cfg.numerics_formats {
        for &op in &cfg.ops {
            let ctx = CaseCtx {
                index,
                op,
                rows: 1,
                channel: numerics::NUMERICS_N,
                format,
                cgra: (0, 0),
                seed: cfg.seed,
            };
            index += 1;
            if replay.is_some_and(|r| r != ctx.index) {
                continue;
            }
            numerics::check_case(&mut report, ctx, cfg.taylor_terms);
            report.cases += 1;
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_is_big_enough() {
        assert!(SweepConfig::full().case_count() >= 200);
    }

    #[test]
    fn smoke_grid_is_small() {
        let c = SweepConfig::smoke().case_count();
        assert!((30..=100).contains(&c), "{c}");
    }
}
