//! Timing oracle: analytical accounting vs the cycle-level simulator.
//!
//! For every `CompiledLoop` the engine produces, the mapping is lowered to
//! a `CgraConfig` and executed on `CgraSimulator`; the simulated report
//! must reproduce the analytical quantities **exactly**:
//!
//! * `cycles(k) = schedule_len + (k−1)·II` for k ∈ {0, 1, 2, iters};
//! * the derived II, `cycles(2) − cycles(1)`;
//! * the prologue, `cycles(1) = schedule_len`;
//! * NoC hops, `Σ_edges hops(tile_prod, tile_cons) · k`;
//! * buffer accesses, `memory nodes · k`;
//! * total busy slots, `nodes · k`;
//! * the engine-level identities `CompiledLoop::cycles(elements)` and
//!   `nonlinear_compute_cycles = Σ loops`.
//!
//! One invariant is **bounded** rather than exact: simulated utilization
//! converges to the mapping's steady-state utilization only as iterations
//! grow (the prologue contributes `schedule_len − II` non-amortized
//! cycles), so it is checked at 100 000 iterations within 1% relative.
//! A simulator panic (operand-arrival violation) is itself reported as a
//! discrepancy rather than aborting the sweep.

use crate::report::{CaseCtx, OracleReport};
use picachu::engine::PicachuEngine;
use picachu::Breakdown;
use picachu_cgra::{CgraConfig, CgraSimulator, SimReport};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Iteration count for the bounded utilization-convergence check.
const UTIL_ITERS: u64 = 100_000;

/// Runs every timing invariant for one (op, shape) case on `engine`.
pub fn check_case(report: &mut OracleReport, ctx: CaseCtx, engine: &mut PicachuEngine) {
    let loops = engine.compile_op(ctx.op).to_vec();
    let elems = (ctx.rows * ctx.channel) as u64;

    // Engine-level: the op's raw compute cycles are exactly the per-loop sum.
    let total = engine.nonlinear_compute_cycles(ctx.op, ctx.rows, ctx.channel);
    let sum: u64 = loops.iter().map(|l| l.cycles(elems)).sum();
    report.check_exact("timing", ctx, "", "nonlinear_compute_cycles", sum, total);

    // Zero-element accounting must be exactly free.
    report.check_exact(
        "timing",
        ctx,
        "",
        "cycles(elements=0)",
        0,
        loops.iter().map(|l| l.cycles(0)).sum(),
    );

    for (idx, l) in loops.iter().enumerate() {
        let dfg = engine.lowered_dfg(ctx.op, idx, l.uf, l.vf);
        let spec = engine.spec();
        let cfg = CgraConfig::from_mapping(&dfg, &l.mapping, spec);
        let sim = CgraSimulator::new(spec, &dfg, &cfg);
        let m = &l.mapping;
        let label = &l.label;

        let run = |report: &mut OracleReport, k: u64| -> Option<SimReport> {
            let r = catch_unwind(AssertUnwindSafe(|| sim.run(k))).ok();
            if r.is_none() {
                report.check_exact("timing", ctx, label, format!("sim-panic(iters={k})"), 0, 1);
            }
            r
        };

        if let Some(r0) = run(report, 0) {
            report.check_exact("timing", ctx, label, "cycles(iters=0)", 0, r0.cycles);
        }
        let r1 = run(report, 1);
        if let Some(r1) = &r1 {
            report.check_exact(
                "timing", ctx, label, "prologue:cycles(iters=1)",
                m.schedule_len as u64, r1.cycles,
            );
            report.check_exact("timing", ctx, label, "report.ii", m.ii as u64, r1.ii);
            report.check_exact(
                "timing", ctx, label, "report.schedule_len",
                m.schedule_len as u64, r1.schedule_len,
            );
        }
        if let (Some(r1), Some(r2)) = (&r1, run(report, 2)) {
            report.check_exact(
                "timing", ctx, label, "derived-II:cycles(2)-cycles(1)",
                m.ii as u64, r2.cycles - r1.cycles,
            );
        }

        // The shape's actual iteration count (at least one probe even for
        // degenerate shapes so every mapping gets simulated).
        let iters = elems.div_ceil(l.elements_per_ii() as u64).max(1);
        if let Some(rn) = run(report, iters) {
            report.check_exact(
                "timing", ctx, label, format!("cycles(iters={iters})"),
                m.cycles_for(iters), rn.cycles,
            );
            if elems > 0 {
                report.check_exact(
                    "timing", ctx, label, format!("CompiledLoop::cycles({elems})"),
                    l.cycles(elems), rn.cycles,
                );
            }

            let hops_per_iter: u64 = dfg
                .nodes()
                .iter()
                .map(|n| {
                    let dst = m.placements[n.id.0].tile;
                    n.inputs
                        .iter()
                        .map(|e| spec.hops(m.placements[e.from.0].tile, dst) as u64)
                        .sum::<u64>()
                })
                .sum();
            report.check_exact(
                "timing", ctx, label, "noc_hops",
                hops_per_iter * iters, rn.noc_hops,
            );

            let mem_nodes = dfg.nodes().iter().filter(|n| n.op.is_memory()).count() as u64;
            report.check_exact(
                "timing", ctx, label, "buffer_accesses",
                mem_nodes * iters, rn.buffer_accesses,
            );
            report.check_exact(
                "timing", ctx, label, "tile_busy_total",
                dfg.len() as u64 * iters, rn.tile_busy.iter().sum(),
            );
        }

        // Bounded: utilization convergence. sim.run is O(tiles·II) regardless
        // of the iteration count, so a huge count costs nothing.
        if let Some(rb) = run(report, UTIL_ITERS) {
            let analytic = m.utilization(spec.len());
            report.check_bounded(
                "timing", ctx, label, "utilization@100k",
                analytic, rb.utilization(), analytic * 0.01 + 1e-9,
            );
        }
    }
}

/// Energy-accounting identities — checked once per engine configuration.
///
/// `energy_nj` is a power-×-time model, so it must be exactly zero on an
/// empty breakdown, strictly positive on work, and (bounded, float
/// arithmetic) homogeneous: doubling every component doubles the energy.
pub fn check_energy(report: &mut OracleReport, ctx: CaseCtx, engine: &PicachuEngine) {
    let zero = engine.energy_nj(&Breakdown::default());
    report.check_bounded("timing", ctx, "", "energy(zero breakdown)", 0.0, zero, 0.0);

    let b1 = Breakdown { gemm: 1e6, nonlinear: 2e5, data_movement: 3e4, overhead: 1e4 };
    let b2 = Breakdown { gemm: 2e6, nonlinear: 4e5, data_movement: 6e4, overhead: 2e4 };
    let (e1, e2) = (engine.energy_nj(&b1), engine.energy_nj(&b2));
    let positive = e1 > 0.0 && e1.is_finite();
    report.check_exact("timing", ctx, "", "energy positive+finite", 1, positive as u64);
    report.check_bounded("timing", ctx, "", "energy homogeneity", 2.0 * e1, e2, 1e-6 * e2.abs());

    // phase-additivity of the fault-overhead phase: overhead is priced at
    // the data-movement rate, so folding it into data_movement is an energy
    // no-op (the pre-split engine's accounting, kept as an identity)
    let folded = Breakdown {
        data_movement: b1.data_movement + b1.overhead,
        overhead: 0.0,
        ..b1
    };
    report.check_bounded(
        "timing", ctx, "", "energy overhead-folding identity",
        engine.energy_nj(&folded), e1, 1e-9 * e1.abs(),
    );
}
