//! Differential oracle over the PICACHU accounting stack.
//!
//! Three independent models of the same hardware coexist in this repository:
//! the **analytical** accounting (`Mapping::cycles_for`, the engine's
//! dataflow cases), the **cycle-level simulator** (`picachu-cgra`), and the
//! **functional interpreter** (`picachu-ir`). Each exists to check the
//! others; this crate runs them against each other systematically:
//!
//! * [`timing`] replays every `CompiledLoop` the engine produces on the
//!   cycle-level simulator and asserts the analytical cycles / II / NoC-hop
//!   / buffer-access accounting matches the simulated report exactly (plus
//!   one bounded utilization-convergence invariant);
//! * [`numerics`] runs every nonlinear kernel through the IR interpreter
//!   and cross-checks the results against the `f64` references in
//!   `picachu-nonlinear`, reporting max-abs and ULP error per data format;
//! * [`sweep`] drives both over a seeded grid of
//!   (op, shape, format, fabric geometry) cases and collects a
//!   machine-readable discrepancy report (JSON lines) in which every entry
//!   names the case index that reproduces it:
//!   `PICACHU_ORACLE_REPLAY=<case> cargo test -p picachu-oracle`;
//! * [`faults`] sweeps seeded fault plans (dead PEs, dead NoC links, SRAM
//!   upsets, DMA stalls) through the engine's degradation ladder and holds
//!   degraded mappings to the same exact timing identities
//!   (`PICACHU_FAULT_REPLAY=<case>` replays one fault case).
//!
//! The invariants and their exact-vs-bounded classification are documented
//! in `DESIGN.md` ("Differential-oracle invariants").

pub mod faults;
pub mod numerics;
pub mod report;
pub mod sweep;
pub mod timing;

pub use faults::{run_fault_sweep, FaultSweepConfig};
pub use report::{Discrepancy, NumericsSummary, OracleReport};
pub use sweep::{run_sweep, SweepConfig, SweepTier};

/// ULP distance between two `f32` values under the monotone bit mapping
/// (sign-magnitude folded onto a single ordered integer line). NaNs are
/// infinitely far from everything.
pub fn ulp_distance(a: f32, b: f32) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    fn ordered(x: f32) -> i64 {
        let bits = i64::from(x.to_bits() as i32);
        if bits < 0 {
            i64::from(i32::MIN) - bits
        } else {
            bits
        }
    }
    ordered(a).abs_diff(ordered(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        // symmetric across zero: -0.0 and +0.0 are adjacent-or-equal
        assert!(ulp_distance(-0.0, 0.0) <= 1);
        assert_eq!(ulp_distance(f32::NAN, 1.0), u64::MAX);
        assert!(ulp_distance(1.0, 2.0) > 1_000_000);
    }
}
