//! Machine-readable discrepancy reporting.
//!
//! Every failed invariant becomes one [`Discrepancy`]; the report serializes
//! to JSON lines (hand-rolled — the tree carries no serialization
//! dependency) so a driver script can diff runs. Each line embeds the exact
//! environment-variable incantation that re-runs just the failing case.

use picachu_nonlinear::NonlinearOp;
use picachu_num::DataFormat;
use std::fmt::Write as _;

/// Identifies one sweep case: everything needed to rebuild the engine and
/// inputs that produced a discrepancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseCtx {
    /// Position in the sweep's linearized case order (the replay key).
    pub index: usize,
    /// Operation under test.
    pub op: NonlinearOp,
    /// Tensor rows.
    pub rows: usize,
    /// Channel (row length) in elements.
    pub channel: usize,
    /// Data format.
    pub format: DataFormat,
    /// CGRA geometry (rows, cols).
    pub cgra: (usize, usize),
    /// Engine / input seed for the case.
    pub seed: u64,
}

/// One violated invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Discrepancy {
    /// Which oracle found it (`"timing"` or `"numerics"`).
    pub oracle: &'static str,
    /// The case it occurred in.
    pub ctx: CaseCtx,
    /// Kernel-loop label (empty for case-level invariants).
    pub loop_label: String,
    /// The quantity that diverged (e.g. `"cycles(iters=7)"`).
    pub quantity: String,
    /// Analytical / reference value.
    pub expected: f64,
    /// Simulated / interpreted value.
    pub actual: f64,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Discrepancy {
    /// The `(env var, test binary)` pair that replays this discrepancy's
    /// case in isolation. Each oracle family has its own linearized case
    /// order, so each gets its own replay variable: the fault sweep answers
    /// to `PICACHU_FAULT_REPLAY`, everything else to
    /// `PICACHU_ORACLE_REPLAY`.
    pub fn replay_target(&self) -> (&'static str, &'static str) {
        if self.oracle == "fault" {
            ("PICACHU_FAULT_REPLAY", "faults")
        } else {
            ("PICACHU_ORACLE_REPLAY", "differential")
        }
    }

    /// One JSON object per line, replayable via the embedded command.
    pub fn to_json_line(&self) -> String {
        let (env, test) = self.replay_target();
        format!(
            concat!(
                "{{\"oracle\":\"{}\",\"case\":{},\"op\":\"{:?}\",\"loop\":\"{}\",",
                "\"quantity\":\"{}\",\"rows\":{},\"channel\":{},\"format\":\"{}\",",
                "\"cgra\":[{},{}],\"expected\":{},\"actual\":{},\"seed\":{},",
                "\"replay\":\"{}={} cargo test -p picachu-oracle --test {}\"}}"
            ),
            self.oracle,
            self.ctx.index,
            self.ctx.op,
            json_escape(&self.loop_label),
            json_escape(&self.quantity),
            self.ctx.rows,
            self.ctx.channel,
            self.ctx.format,
            self.ctx.cgra.0,
            self.ctx.cgra.1,
            self.expected,
            self.actual,
            self.ctx.seed,
            env,
            self.ctx.index,
            test,
        )
    }
}

/// Per-(op, format) numerics error summary — reported even when green, so
/// accuracy regressions show up as diffs rather than only as failures.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericsSummary {
    /// Operation.
    pub op: NonlinearOp,
    /// Data format the inputs were round-tripped through.
    pub format: DataFormat,
    /// Largest absolute error vs the f64 reference.
    pub max_abs: f64,
    /// Largest f32 ULP distance vs the reference rounded to f32.
    pub max_ulp: u64,
    /// The documented max-abs tolerance the run was held to.
    pub tolerance: f64,
}

impl NumericsSummary {
    /// JSON-line form, same stream as the discrepancies.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"oracle\":\"numerics-summary\",\"op\":\"{:?}\",\"format\":\"{}\",\"max_abs\":{:e},\"max_ulp\":{},\"tolerance\":{:e}}}",
            self.op, self.format, self.max_abs, self.max_ulp, self.tolerance
        )
    }
}

/// Everything one sweep produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OracleReport {
    /// Cases executed (a replay run executes exactly one).
    pub cases: usize,
    /// Individual invariant checks evaluated.
    pub checks: u64,
    /// Violations, in discovery order.
    pub discrepancies: Vec<Discrepancy>,
    /// Per-(op, format) numerics error measurements.
    pub numerics: Vec<NumericsSummary>,
}

impl OracleReport {
    /// `true` when every check passed.
    pub fn is_green(&self) -> bool {
        self.discrepancies.is_empty()
    }

    /// Exact check: records a discrepancy unless `expected == actual`.
    pub fn check_exact(
        &mut self,
        oracle: &'static str,
        ctx: CaseCtx,
        loop_label: &str,
        quantity: impl Into<String>,
        expected: u64,
        actual: u64,
    ) {
        self.checks += 1;
        if expected != actual {
            self.discrepancies.push(Discrepancy {
                oracle,
                ctx,
                loop_label: loop_label.to_string(),
                quantity: quantity.into(),
                expected: expected as f64,
                actual: actual as f64,
            });
        }
    }

    /// Bounded check: records a discrepancy when
    /// `|expected − actual| > tolerance` — NaN on either side fails.
    #[allow(clippy::too_many_arguments)]
    pub fn check_bounded(
        &mut self,
        oracle: &'static str,
        ctx: CaseCtx,
        loop_label: &str,
        quantity: impl Into<String>,
        expected: f64,
        actual: f64,
        tolerance: f64,
    ) {
        self.checks += 1;
        let within = (expected - actual).abs() <= tolerance;
        if !within {
            self.discrepancies.push(Discrepancy {
                oracle,
                ctx,
                loop_label: loop_label.to_string(),
                quantity: quantity.into(),
                expected,
                actual,
            });
        }
    }

    /// The full JSON-lines stream: numerics summaries, then discrepancies.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for s in &self.numerics {
            out.push_str(&s.to_json_line());
            out.push('\n');
        }
        for d in &self.discrepancies {
            out.push_str(&d.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Human one-liner for test logs.
    pub fn summary(&self) -> String {
        format!(
            "oracle: {} cases, {} checks, {} discrepancies",
            self.cases,
            self.checks,
            self.discrepancies.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CaseCtx {
        CaseCtx {
            index: 7,
            op: NonlinearOp::Gelu,
            rows: 4,
            channel: 64,
            format: DataFormat::Fp16,
            cgra: (4, 4),
            seed: 0x71CA,
        }
    }

    #[test]
    fn exact_check_records_mismatch() {
        let mut r = OracleReport::default();
        r.check_exact("timing", ctx(), "gelu", "cycles", 10, 10);
        assert!(r.is_green());
        r.check_exact("timing", ctx(), "gelu", "cycles", 10, 11);
        assert_eq!(r.discrepancies.len(), 1);
        assert_eq!(r.checks, 2);
    }

    #[test]
    fn bounded_check_rejects_nan() {
        let mut r = OracleReport::default();
        r.check_bounded("timing", ctx(), "", "util", 0.5, f64::NAN, 0.1);
        assert_eq!(r.discrepancies.len(), 1, "NaN must not pass a bound");
    }

    #[test]
    fn json_line_is_replayable_and_escaped() {
        let d = Discrepancy {
            oracle: "timing",
            ctx: ctx(),
            loop_label: "soft\"max".into(),
            quantity: "cycles(iters=2)".into(),
            expected: 12.0,
            actual: 13.0,
        };
        let line = d.to_json_line();
        assert!(line.contains("PICACHU_ORACLE_REPLAY=7"));
        assert!(line.contains("soft\\\"max"));
        assert!(line.contains("\"cgra\":[4,4]"));
        assert!(!line.contains('\n'));
    }
}
