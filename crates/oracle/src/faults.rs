//! Fault-injection oracle: degraded mappings must keep exact accounting.
//!
//! The sweep walks a deterministic list of [`FaultPlan`]s — every single
//! dead PE, every single dead NoC link, then seeded multi-fault scenarios —
//! and for each (plan, op) case drives the engine's degradation ladder
//! ([`PicachuEngine::compile_op_degraded`]) and replays every compiled loop
//! on the cycle-level simulator under the same plan. The invariants are the
//! PR-3 timing identities, unchanged: a degraded mapping is a *worse*
//! mapping, never a *differently accounted* one —
//!
//! * `cycles(k) = schedule_len + (k−1)·II` exactly, dead resources or not;
//! * NoC hops equal the alive-fabric (detoured) hop sum × iterations;
//! * busy slots and buffer accesses count `nodes × k` / `memory nodes × k`;
//! * ECC overhead obeys `corrected·scrub + detected·detect` and never leaks
//!   into the pipeline cycle count;
//! * directed single-fault plans (the acceptance bar) must compile; seeded
//!   pile-ups may be rejected, but only with a typed error — a panic
//!   anywhere is itself a discrepancy.
//!
//! Numerics are deliberately absent: kernel semantics are fabric-independent
//! (the interpreter never sees tiles), so the differential oracle's numeric
//! gates already cover every fault scenario.
//!
//! Cases are linearized deterministically; `PICACHU_FAULT_REPLAY=<case>`
//! re-runs exactly one, mirroring `PICACHU_ORACLE_REPLAY`.

use crate::report::{CaseCtx, OracleReport};
use picachu::engine::{EngineConfig, FallbackLevel, PicachuEngine};
use picachu::faults::FaultPlan;
use picachu::PicachuError;
use picachu_cgra::{CgraConfig, CgraSimulator};
use picachu_compiler::arch::CgraSpec;
use picachu_compiler::mapper::ResourceMask;
use picachu_nonlinear::NonlinearOp;
use picachu_num::DataFormat;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The fault-sweep grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSweepConfig {
    /// Operations under test.
    pub ops: Vec<NonlinearOp>,
    /// CGRA geometry the plans target.
    pub geometry: (usize, usize),
    /// Dead-PE indices, one single-fault plan each.
    pub dead_tiles: Vec<usize>,
    /// Dead-link pairs, one single-fault plan each.
    pub dead_links: Vec<(usize, usize)>,
    /// Seeds for [`FaultPlan::seeded`] multi-fault scenarios.
    pub seeded: Vec<u64>,
    /// Steady-state iterations for the identity checks.
    pub iters: u64,
    /// Engine seed.
    pub seed: u64,
    /// Taylor terms for the exp/sin chains.
    pub taylor_terms: usize,
    /// Unroll factors the engine may try.
    pub unroll_candidates: Vec<usize>,
}

impl FaultSweepConfig {
    /// The full grid on the paper's 4×4 fabric: all 16 single-dead-PE plans,
    /// all 24 single-dead-link plans, and 8 seeded pile-ups.
    pub fn full() -> FaultSweepConfig {
        let (rows, cols) = (4usize, 4usize);
        let mut links = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let t = r * cols + c;
                if c + 1 < cols {
                    links.push((t, t + 1));
                }
                if r + 1 < rows {
                    links.push((t, t + cols));
                }
            }
        }
        FaultSweepConfig {
            ops: NonlinearOp::ALL.to_vec(),
            geometry: (rows, cols),
            dead_tiles: (0..rows * cols).collect(),
            dead_links: links,
            seeded: (1..=8).collect(),
            iters: 64,
            seed: 0x71CA,
            taylor_terms: 8,
            unroll_candidates: vec![1, 2, 4, 8],
        }
    }

    /// Small fixed grid for the verify-script smoke gate: corner, center and
    /// edge PEs, two links, two seeded plans, four representative ops (one
    /// per kernel family: multi-loop reduction, Taylor chain, two-pass
    /// normalization, trigonometric).
    pub fn smoke() -> FaultSweepConfig {
        FaultSweepConfig {
            ops: vec![
                NonlinearOp::Softmax,
                NonlinearOp::Gelu,
                NonlinearOp::LayerNorm,
                NonlinearOp::Rope,
            ],
            geometry: (4, 4),
            dead_tiles: vec![0, 5, 15],
            dead_links: vec![(1, 2), (9, 13)],
            seeded: vec![1, 2],
            iters: 64,
            seed: 0x71CA,
            taylor_terms: 8,
            unroll_candidates: vec![1, 2, 4, 8],
        }
    }

    /// The deterministic plan list: single dead PEs, single dead links, then
    /// seeded scenarios. `(plan, directed)` — directed plans must compile,
    /// seeded ones may gracefully reject.
    pub fn plans(&self) -> Vec<(FaultPlan, bool)> {
        let mut out = Vec::new();
        for &t in &self.dead_tiles {
            out.push((FaultPlan::dead_tile(t), true));
        }
        for &(a, b) in &self.dead_links {
            out.push((FaultPlan::dead_link(a, b), true));
        }
        for &s in &self.seeded {
            out.push((FaultPlan::seeded(self.seed ^ s, self.geometry.0, self.geometry.1), false));
        }
        out
    }

    /// Total number of cases the grid linearizes to.
    pub fn case_count(&self) -> usize {
        (self.dead_tiles.len() + self.dead_links.len() + self.seeded.len()) * self.ops.len()
    }
}

/// Runs the fault sweep. `PICACHU_FAULT_REPLAY=<index>` restricts it to one
/// case, bit-identical to that case inside the full run.
pub fn run_fault_sweep(cfg: &FaultSweepConfig) -> OracleReport {
    let replay: Option<usize> = std::env::var("PICACHU_FAULT_REPLAY")
        .ok()
        .and_then(|s| s.parse().ok());
    let mut report = OracleReport::default();
    let mut engine = PicachuEngine::new(EngineConfig {
        cgra_rows: cfg.geometry.0,
        cgra_cols: cfg.geometry.1,
        taylor_terms: cfg.taylor_terms,
        unroll_candidates: cfg.unroll_candidates.clone(),
        seed: cfg.seed,
        ..EngineConfig::default()
    });
    let mut index = 0usize;
    for (plan, directed) in cfg.plans() {
        for &op in &cfg.ops {
            let ctx = CaseCtx {
                index,
                op,
                rows: cfg.iters as usize,
                channel: 0,
                format: DataFormat::Fp16,
                cgra: cfg.geometry,
                seed: plan.seed,
            };
            index += 1;
            if replay.is_some_and(|r| r != ctx.index) {
                continue;
            }
            check_case(&mut report, ctx, &mut engine, &plan, directed, cfg.iters);
            report.cases += 1;
        }
    }
    report
}

/// Drives one (plan, op) case and records every violated identity.
fn check_case(
    report: &mut OracleReport,
    ctx: CaseCtx,
    engine: &mut PicachuEngine,
    plan: &FaultPlan,
    directed: bool,
    iters: u64,
) {
    let label = plan.to_string();
    // prime the healthy baseline so II inflation is measured, not defaulted
    if let Err(e) = engine.try_compile_op(ctx.op) {
        report.check_exact("fault", ctx, &label, format!("healthy-compile: {e}"), 0, 1);
        return;
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| engine.compile_op_degraded(ctx.op, plan)));
    let dc = match outcome {
        Ok(Ok(dc)) => dc,
        Ok(Err(e)) => {
            // graceful typed rejection: allowed for seeded pile-ups, a
            // violation of the acceptance bar for directed single faults
            report.checks += 1;
            if directed {
                report.check_exact("fault", ctx, &label, format!("rejected: {e}"), 0, 1);
            } else if !matches!(e, PicachuError::Compile { .. }) {
                report.check_exact("fault", ctx, &label, format!("wrong-error-class: {e}"), 0, 1);
            }
            return;
        }
        Err(_) => {
            report.check_exact("fault", ctx, &label, "compile panicked", 0, 1);
            return;
        }
    };
    report.check_exact(
        "fault",
        ctx,
        &label,
        "ii_inflation finite+positive",
        1,
        (dc.ii_inflation.is_finite() && dc.ii_inflation > 0.0) as u64,
    );
    // the fabric the loops actually run on
    let spec = match dc.fallback {
        FallbackLevel::Universal => CgraSpec::universal(ctx.cgra.0, ctx.cgra.1),
        _ => engine.spec().clone(),
    };
    let mask = ResourceMask::degraded(
        &spec,
        plan.dead_tiles.iter().copied(),
        plan.dead_links.iter().copied(),
    );
    for (idx, l) in dc.loops.iter().enumerate() {
        let dfg = engine.lowered_dfg(ctx.op, idx, l.uf, l.vf);
        let cfg = CgraConfig::from_mapping(&dfg, &l.mapping, &spec);
        let sim = CgraSimulator::new(&spec, &dfg, &cfg);
        let m = &l.mapping;

        let run = |report: &mut OracleReport, k: u64| match sim.run_faulted(k, plan) {
            Ok(r) => Some(r),
            Err(e) => {
                report.check_exact(
                    "fault",
                    ctx,
                    &l.label,
                    format!("sim-fault(iters={k}): {e}"),
                    0,
                    1,
                );
                None
            }
        };

        let r1 = run(report, 1);
        if let Some(r1) = &r1 {
            report.check_exact(
                "fault", ctx, &l.label, "prologue:cycles(iters=1)",
                m.schedule_len as u64, r1.report.cycles,
            );
        }
        if let (Some(r1), Some(r2)) = (&r1, run(report, 2)) {
            report.check_exact(
                "fault", ctx, &l.label, "derived-II:cycles(2)-cycles(1)",
                m.ii as u64, r2.report.cycles - r1.report.cycles,
            );
        }
        if let Some(rn) = run(report, iters) {
            report.check_exact(
                "fault", ctx, &l.label, format!("cycles(iters={iters})"),
                m.cycles_for(iters), rn.report.cycles,
            );
            report.check_exact(
                "fault", ctx, &l.label, "tile_busy_total",
                dfg.len() as u64 * iters, rn.report.tile_busy.iter().sum(),
            );
            let mem_nodes = dfg.nodes().iter().filter(|n| n.op.is_memory()).count() as u64;
            report.check_exact(
                "fault", ctx, &l.label, "buffer_accesses",
                mem_nodes * iters, rn.report.buffer_accesses,
            );
            // NoC hops over the *alive* fabric: detours count, dead links
            // never traversed
            let hops_per_iter: Option<u64> = dfg
                .nodes()
                .iter()
                .map(|n| {
                    let dst = m.placements[n.id.0].tile;
                    n.inputs
                        .iter()
                        .map(|e| {
                            mask.hops(&spec, m.placements[e.from.0].tile, dst).map(u64::from)
                        })
                        .sum::<Option<u64>>()
                })
                .sum();
            match hops_per_iter {
                Some(h) => report.check_exact(
                    "fault", ctx, &l.label, "noc_hops(alive fabric)",
                    h * iters, rn.report.noc_hops,
                ),
                None => report.check_exact(
                    "fault", ctx, &l.label, "mapping routes over dead resources", 0, 1,
                ),
            }
            // ECC identity: overhead decomposes exactly, and never leaks
            // into the pipeline cycle count (checked above)
            report.check_exact(
                "fault", ctx, &l.label, "ecc overhead decomposition",
                rn.ecc.corrected * plan.ecc.scrub_cycles + rn.ecc.detected * plan.ecc.detect_cycles,
                rn.ecc.overhead_cycles,
            );
            // dead tiles must be idle
            for &t in &plan.dead_tiles {
                if t < rn.report.tile_busy.len() {
                    report.check_exact(
                        "fault", ctx, &l.label, format!("dead tile {t} busy"),
                        0, rn.report.tile_busy[t],
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_covers_every_single_fault() {
        let cfg = FaultSweepConfig::full();
        assert_eq!(cfg.dead_tiles.len(), 16);
        assert_eq!(cfg.dead_links.len(), 24, "4x4 mesh has 24 links");
        assert!(cfg.case_count() >= (16 + 24) * NonlinearOp::ALL.len());
    }

    #[test]
    fn smoke_grid_is_small_and_directed_first() {
        let cfg = FaultSweepConfig::smoke();
        assert!(cfg.case_count() <= 40, "{}", cfg.case_count());
        let plans = cfg.plans();
        assert!(plans[0].1, "directed plans lead the order");
        assert!(!plans.last().map(|p| p.1).unwrap_or(true), "seeded plans close it");
    }

    #[test]
    fn plan_list_is_deterministic() {
        let cfg = FaultSweepConfig::full();
        assert_eq!(cfg.plans(), cfg.plans());
    }
}
