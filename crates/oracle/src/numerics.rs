//! Numerics oracle: the IR interpreter vs the `f64` references.
//!
//! Each nonlinear kernel's loop bodies are interpreted on seeded inputs
//! round-tripped through the case's data format, orchestrated exactly the
//! way the hardware chains them (reduction results feed the next loop's
//! `Param`s), and the outputs are compared against the exact `f64`
//! reference in `picachu-nonlinear` evaluated **on the same round-tripped
//! inputs** — isolating kernel-algorithm error from input quantization.
//!
//! Both max-abs and f32-ULP error are measured and reported per
//! (op, format); only max-abs is *bounded* (see `tolerance` — the Taylor
//! truncation of the exp/sin chains dominates, which is an absolute-error
//! phenomenon; ULP counts explode harmlessly near zero, e.g. for softmax
//! tails, so they are reported for visibility, not gated).
//!
//! Single-loop (element-wise) kernels are additionally re-checked after
//! pattern fusion — the fused graph is what the fabric actually executes.

use crate::report::{CaseCtx, NumericsSummary, OracleReport};
use crate::ulp_distance;
use picachu::engine::kernel_for;
use picachu_compiler::transform::fuse_patterns;
use picachu_ir::dfg::Dfg;
use picachu_ir::interp::{interpret, InterpError};
use picachu_nonlinear::kernels::{activation, norm, rope, softmax};
use picachu_nonlinear::NonlinearOp;
use picachu_num::{DataFormat, Fp16, Quantized};
use picachu_testkit::TestRng;

/// Elements per channel the numerics cases run on.
pub const NUMERICS_N: usize = 64;

/// Documented max-abs tolerance per (op, format).
///
/// The base term bounds the 8-term exp/sin Taylor truncation plus f32
/// accumulation propagated through the op's arithmetic on inputs in
/// [−4, 4], with a ~30–100× margin over the measured error at the sweep
/// seed (e.g. GeLU measures ≈2e-7). The format term covers the residual
/// input-profile shift of the narrow formats — the reference is evaluated
/// on the *round-tripped* inputs, so quantization error itself cancels and
/// only the kernel's sensitivity to the shifted points remains. The
/// interpreter always computes in f32, so Fp32/Int32 add nothing.
pub fn tolerance(op: NonlinearOp, format: DataFormat) -> f64 {
    use NonlinearOp::*;
    let base = match op {
        Relu => 1e-6,
        Softmax => 1e-6,
        Gelu | Silu => 1e-5,
        Swiglu | Geglu => 2e-5,
        LayerNorm | RmsNorm => 1e-5,
        Rope => 1e-5,
    };
    let fmt = match format {
        DataFormat::Fp32 | DataFormat::Int32 => 0.0,
        DataFormat::Fp16 | DataFormat::Int16 => 1e-5,
    };
    base + fmt
}

fn gen_inputs(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut rng = TestRng::seed_from_u64(seed);
    (0..n).map(|_| lo + (hi - lo) * rng.next_f32()).collect()
}

fn round_trip(x: &[f32], fmt: DataFormat) -> Vec<f32> {
    match fmt {
        DataFormat::Fp32 => x.to_vec(),
        DataFormat::Fp16 => x.iter().map(|&v| Fp16::round_trip(v)).collect(),
        DataFormat::Int16 | DataFormat::Int32 => {
            Quantized::quantize(x, fmt.bit_width()).dequantize()
        }
    }
}

/// Interprets `bodies` (one `Dfg` per kernel loop, hardware orchestration)
/// and returns `(interpreted outputs, f64 reference on the same inputs)`.
fn run_op(
    op: NonlinearOp,
    bodies: &[Dfg],
    ctx: CaseCtx,
    n: usize,
) -> Result<(Vec<f32>, Vec<f64>), InterpError> {
    use NonlinearOp::*;
    let x = round_trip(&gen_inputs(ctx.seed, n, -4.0, 4.0), ctx.format);
    let xf: Vec<f64> = x.iter().map(|&v| f64::from(v)).collect();
    Ok(match op {
        Softmax => {
            let r1 = interpret(&bodies[0], n, &[&x], &[])?;
            let max = r1.reductions[1];
            let r2 = interpret(&bodies[1], n, &[&x], &[max])?;
            let sum = r2.reductions[1];
            let r3 = interpret(&bodies[2], n, &[&r2.outputs[0]], &[sum])?;
            (r3.outputs[0].clone(), softmax::softmax_ref(&xf))
        }
        Relu => {
            let r = interpret(&bodies[0], n, &[&x], &[])?;
            (r.outputs[0].clone(), xf.iter().map(|&v| activation::relu_ref(v)).collect())
        }
        Gelu => {
            let r = interpret(&bodies[0], n, &[&x], &[])?;
            (r.outputs[0].clone(), xf.iter().map(|&v| activation::gelu_tanh_ref(v)).collect())
        }
        Silu => {
            let r = interpret(&bodies[0], n, &[&x], &[])?;
            (r.outputs[0].clone(), xf.iter().map(|&v| activation::silu_ref(v)).collect())
        }
        Swiglu | Geglu => {
            let v = round_trip(&gen_inputs(ctx.seed ^ 0xBEEF, n, -4.0, 4.0), ctx.format);
            let vf: Vec<f64> = v.iter().map(|&g| f64::from(g)).collect();
            let r = interpret(&bodies[0], n, &[&x, &v], &[])?;
            let reference = if op == Swiglu {
                activation::swiglu_ref(&xf, &vf)
            } else {
                activation::geglu_ref(&xf, &vf)
            };
            (r.outputs[0].clone(), reference)
        }
        LayerNorm => {
            let r1 = interpret(&bodies[0], n, &[&x], &[])?;
            let (sx, sx2) = (f64::from(r1.reductions[1]), f64::from(r1.reductions[2]));
            let mu = sx / n as f64;
            let var = (sx2 / n as f64 - mu * mu).max(0.0);
            let inv = 1.0 / (var + norm::EPS).sqrt();
            let r2 = interpret(&bodies[1], n, &[&x], &[mu as f32, inv as f32])?;
            (r2.outputs[0].clone(), norm::layernorm_ref(&xf))
        }
        RmsNorm => {
            let r1 = interpret(&bodies[0], n, &[&x], &[])?;
            let inv = 1.0 / (f64::from(r1.reductions[1]) / n as f64 + norm::EPS).sqrt();
            let gain = vec![1.0f32; n];
            let r2 = interpret(&bodies[1], n, &[&x, &gain], &[inv as f32])?;
            (r2.outputs[0].clone(), norm::rmsnorm_ref(&xf))
        }
        Rope => {
            // Pairs (x₂ᵢ, x₂ᵢ₊₁) rotate by m·θᵢ; position m kept small so
            // every angle stays below π (exact range reduction).
            let d = n;
            let pairs = d / 2;
            let m = 2usize;
            let x0: Vec<f32> = x.iter().step_by(2).copied().collect();
            let x1: Vec<f32> = x.iter().skip(1).step_by(2).copied().collect();
            let theta: Vec<f32> =
                (0..pairs).map(|i| rope::rope_theta(i, d) as f32).collect();
            let r = interpret(&bodies[0], pairs, &[&x0, &x1, &theta], &[m as f32])?;
            let mut got = Vec::with_capacity(d);
            for i in 0..pairs {
                got.push(r.outputs[0][i]);
                got.push(r.outputs[1][i]);
            }
            (got, rope::rope_ref(&xf, m))
        }
    })
}

fn measure(got: &[f32], reference: &[f64]) -> (f64, u64) {
    if got.len() != reference.len() {
        return (f64::INFINITY, u64::MAX);
    }
    let mut max_abs = 0f64;
    let mut max_ulp = 0u64;
    for (&g, &r) in got.iter().zip(reference) {
        max_abs = max_abs.max((f64::from(g) - r).abs());
        max_ulp = max_ulp.max(ulp_distance(g, r as f32));
    }
    (max_abs, max_ulp)
}

/// Runs the numerics invariants for one (op, format) case.
pub fn check_case(report: &mut OracleReport, ctx: CaseCtx, terms: usize) {
    let kernel = kernel_for(ctx.op, terms);
    let base: Vec<Dfg> = kernel.loops.iter().map(|l| l.dfg.clone()).collect();
    let tol = tolerance(ctx.op, ctx.format);

    match run_op(ctx.op, &base, ctx, NUMERICS_N) {
        Ok((got, reference)) => {
            let (max_abs, max_ulp) = measure(&got, &reference);
            report.numerics.push(NumericsSummary {
                op: ctx.op,
                format: ctx.format,
                max_abs,
                max_ulp,
                tolerance: tol,
            });
            report.check_bounded("numerics", ctx, kernel.name, "max_abs", 0.0, max_abs, tol);
        }
        Err(e) => {
            report.check_exact("numerics", ctx, kernel.name, format!("interp-error: {e}"), 0, 1);
        }
    }

    // The fused graph is what the fabric executes: element-wise kernels are
    // re-checked post-fusion (multi-loop orchestration relies on reduction
    // slot positions, which fusion legitimately rearranges — those are
    // covered by the semantics tier-1 tests instead).
    if kernel.loops.len() == 1 {
        let fused = vec![fuse_patterns(&kernel.loops[0].dfg)];
        match run_op(ctx.op, &fused, ctx, NUMERICS_N) {
            Ok((got, reference)) => {
                let (max_abs, _) = measure(&got, &reference);
                report.check_bounded(
                    "numerics", ctx, kernel.name, "max_abs(fused)", 0.0, max_abs, tol,
                );
            }
            Err(e) => {
                report.check_exact(
                    "numerics", ctx, kernel.name, format!("interp-error(fused): {e}"), 0, 1,
                );
            }
        }
    }
}
