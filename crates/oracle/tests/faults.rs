//! The fault-injection suite: run the fault sweep (full, or smoke with
//! `PICACHU_FAULT_SMOKE=1`) and demand zero discrepancies. On failure the
//! JSON-lines report prints, one replayable line per violation
//! (`PICACHU_FAULT_REPLAY=<case>` re-runs exactly that case).

use picachu_oracle::{run_fault_sweep, FaultSweepConfig};

#[test]
fn fault_oracle_is_green() {
    let smoke = std::env::var("PICACHU_FAULT_SMOKE").is_ok();
    let cfg = if smoke { FaultSweepConfig::smoke() } else { FaultSweepConfig::full() };

    let report = run_fault_sweep(&cfg);
    println!("{}", report.summary());
    if !report.is_green() {
        for d in &report.discrepancies {
            println!("{}", d.to_json_line());
        }
        panic!(
            "fault oracle found {} discrepancies (JSON lines above are replayable)",
            report.discrepancies.len()
        );
    }

    let replaying = std::env::var("PICACHU_FAULT_REPLAY").is_ok();
    if replaying {
        assert_eq!(report.cases, 1, "replay runs exactly one case");
    } else {
        assert_eq!(report.cases, cfg.case_count());
        if !smoke {
            assert!(report.cases >= 360, "sweep too small: {}", report.cases);
        }
    }
}
