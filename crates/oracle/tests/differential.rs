//! The tier-1 differential suite: run the full (or smoke) sweep and demand
//! zero discrepancies. On failure the JSON-lines report prints, one
//! replayable line per violation.

use picachu_oracle::{run_sweep, SweepConfig};

#[test]
fn differential_oracle_is_green() {
    let smoke = std::env::var("PICACHU_ORACLE_SMOKE").is_ok();
    let cfg = if smoke { SweepConfig::smoke() } else { SweepConfig::full() };

    let report = run_sweep(&cfg);
    println!("{}", report.summary());
    for s in &report.numerics {
        println!("{}", s.to_json_line());
    }
    if !report.is_green() {
        for d in &report.discrepancies {
            println!("{}", d.to_json_line());
        }
        panic!(
            "differential oracle found {} discrepancies (JSON lines above are replayable)",
            report.discrepancies.len()
        );
    }

    let replaying = std::env::var("PICACHU_ORACLE_REPLAY").is_ok();
    if replaying {
        assert_eq!(report.cases, 1, "replay runs exactly one case");
    } else if smoke {
        assert_eq!(report.cases, cfg.case_count());
    } else {
        assert!(report.cases >= 200, "sweep too small: {}", report.cases);
        assert_eq!(report.cases, cfg.case_count());
    }
}
