//! Versioned on-disk mapping store: cross-process persistence for the
//! [`compile_cache`](crate::compile_cache).
//!
//! Modulo-scheduling is a pure function of [`CompileKey`], so a mapping
//! computed once is valid for every process that shares the key — a repeat
//! bench run, a restarted server, or a whole serving fleet pointed at one
//! shared directory. The store is a single JSON-lines file
//! (`mappings.jsonl`) inside a directory chosen by, in precedence order:
//!
//! 1. [`set_mapstore_dir`] (programmatic; tests use a temp dir),
//! 2. the `PICACHU_MAPSTORE` environment variable (e.g.
//!    `PICACHU_MAPSTORE=results/mapstore`),
//! 3. nothing — the store is **disabled by default**, so cold-compile
//!    benches and tests measure real mapper work unless they opt in.
//!
//! The file format is hand-rolled (the tree is hermetic — no serde):
//!
//! ```text
//! {"picachu_mapstore":1}
//! {"key":{"op":"softmax","rows":4,...},"loops":[{"label":"softmax(0)",...}]}
//! ```
//!
//! The first line is the format version; a reader that sees an unknown
//! version ignores the file rather than guessing. Every following line is
//! one `(CompileKey, Vec<CompiledLoop>)` entry. Writers append single
//! `O_APPEND` lines, so concurrent processes interleave whole entries;
//! duplicate keys (two processes compiling the same kernel cold) are
//! bit-identical by determinism and deduplicated on load. Unparseable lines
//! are skipped with a warning, never a panic — with one exception: a
//! malformed *final* record in a file that does not end in a newline is the
//! signature of a writer killed mid-`O_APPEND`, an expected crash artifact,
//! and is skipped *silently* (and does not veto compaction, which heals it
//! away). `append` also self-heals such a tail by terminating it with a
//! newline before writing, so a torn fragment never merges with the next
//! entry.
//!
//! The sibling [`bitstream`] module is the interchange face of the store: a
//! versioned CSV export of placement **and** routes (the Route+Fold pass
//! replay) that downstream tooling can consume and a fresh process can
//! install back into the compile cache without invoking the mapper.

pub mod bitstream;

use crate::compile_cache::CompileKey;
use crate::engine::CompiledLoop;
use picachu_compiler::mapper::{Mapping, Placement};
use picachu_ir::dfg::NodeId;
use picachu_nonlinear::{LoopKind, NonlinearOp};
use picachu_num::DataFormat;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

/// Store format version this build reads and writes.
const VERSION: u64 = 1;
/// Entry file inside the store directory.
const FILE: &str = "mappings.jsonl";

/// `None` = not overridden (fall through to the environment);
/// `Some(None)` = explicitly disabled; `Some(Some(dir))` = use `dir`.
static OVERRIDE: Mutex<Option<Option<PathBuf>>> = Mutex::new(None);

/// Overrides the store directory for this process: `Some(dir)` enables the
/// store there, `None` disables it regardless of `PICACHU_MAPSTORE`. Call
/// [`crate::compile_cache::clear`] afterwards if entries from a previous
/// location were already folded into the in-memory cache.
pub fn set_mapstore_dir(dir: Option<PathBuf>) {
    *OVERRIDE.lock().unwrap_or_else(|p| p.into_inner()) = Some(dir);
}

/// The effective store directory, or `None` when the store is disabled.
pub fn dir() -> Option<PathBuf> {
    if let Some(o) = OVERRIDE.lock().unwrap_or_else(|p| p.into_inner()).clone() {
        return o;
    }
    std::env::var_os("PICACHU_MAPSTORE").map(PathBuf::from)
}

/// Whether a store directory is configured.
pub fn is_enabled() -> bool {
    dir().is_some()
}

/// Compact the store file when duplicates exceed this percentage of the
/// decoded entries. Duplicate lines are normal operation — O_APPEND writers
/// race, and first-wins dedup on load makes them harmless — but a
/// long-lived shared store (a serving fleet pointed at one directory)
/// otherwise grows without bound and every process pays the parse cost.
const COMPACT_DUP_PERCENT: usize = 25;

/// Reads every well-formed entry from the store, first occurrence winning.
/// A missing file or directory is an empty store; I/O and parse problems
/// degrade to warnings (the cache then simply compiles cold).
///
/// When the duplicate ratio exceeds [`COMPACT_DUP_PERCENT`] *and* every
/// line parsed cleanly, the file is compacted in place (version header +
/// the deduplicated entries in first-wins order, written to a temp file and
/// atomically renamed over the store). Unparseable lines veto compaction —
/// a line this build cannot read is not a line it may destroy — with one
/// carve-out: a malformed final record in a file with no trailing newline
/// is EOF truncation from a writer killed mid-`O_APPEND`, provably debris
/// rather than an unreadable entry, so it neither warns nor vetoes (and
/// compaction drops it). Compaction is best-effort: a concurrent O_APPEND
/// between the read and the rename can lose that entry, which only costs
/// its writer a re-compile.
pub fn load_all() -> Vec<(CompileKey, Vec<CompiledLoop>)> {
    let Some(d) = dir() else { return Vec::new() };
    load_from(&d.join(FILE))
}

/// [`load_all`] against an explicit store file (the testable core).
fn load_from(path: &std::path::Path) -> Vec<(CompileKey, Vec<CompiledLoop>)> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(_) => return Vec::new(),
    };
    // a file not ending in '\n' ends in a torn record: its final line is
    // allowed to be garbage without counting as malformed
    let newline_terminated = bytes.last() == Some(&b'\n');
    let text = String::from_utf8_lossy(&bytes);
    let lines: Vec<&str> = text.split('\n').collect();
    let last_line = lines.len().saturating_sub(1);
    let mut seen: HashMap<CompileKey, ()> = HashMap::new();
    let mut out = Vec::new();
    let mut versioned = false;
    let mut skipped = 0usize;
    let mut duplicates = 0usize;
    for (i, line) in lines.iter().enumerate() {
        let benign_if_torn = !newline_terminated && i == last_line;
        let malformed = |skipped: &mut usize| {
            if !benign_if_torn {
                *skipped += 1;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let Some(v) = parse(line) else {
            malformed(&mut skipped);
            continue;
        };
        if let Some(ver) = v.get("picachu_mapstore").and_then(Json::as_u64) {
            if ver != VERSION {
                eprintln!(
                    "picachu-mapstore: {} has version {ver}, this build reads {VERSION}; ignoring it",
                    path.display()
                );
                return Vec::new();
            }
            versioned = true;
            continue;
        }
        if !versioned {
            // entries before any version header: refuse to guess
            malformed(&mut skipped);
            continue;
        }
        match decode_entry(&v) {
            Some((key, loops)) => {
                if seen.insert(key.clone(), ()).is_none() {
                    out.push((key, loops));
                } else {
                    duplicates += 1;
                }
            }
            None => malformed(&mut skipped),
        }
    }
    if skipped > 0 {
        eprintln!(
            "picachu-mapstore: skipped {skipped} malformed line(s) in {}",
            path.display()
        );
    }
    let total = out.len() + duplicates;
    if skipped == 0 && duplicates > 0 && duplicates * 100 >= total * COMPACT_DUP_PERCENT {
        compact(path, &out);
    }
    out
}

/// Rewrites the store as `header + entries` (first-wins order) via a temp
/// file and an atomic rename. Failures are warnings, never panics — the
/// oversized file keeps working.
fn compact(path: &std::path::Path, entries: &[(CompileKey, Vec<CompiledLoop>)]) {
    let mut buf = String::new();
    let _ = writeln!(buf, "{{\"picachu_mapstore\":{VERSION}}}");
    for (key, loops) in entries {
        encode_entry(&mut buf, key, loops);
        buf.push('\n');
    }
    let tmp = path.with_extension("jsonl.tmp");
    if let Err(e) = std::fs::write(&tmp, buf.as_bytes()) {
        eprintln!("picachu-mapstore: compaction write to {} failed: {e}", tmp.display());
        return;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        eprintln!("picachu-mapstore: compaction rename to {} failed: {e}", path.display());
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Appends one entry (creating the directory, file, and version header as
/// needed). Failures are warnings: the store is an accelerator, never a
/// correctness dependency.
pub fn append(key: &CompileKey, loops: &[CompiledLoop]) {
    let Some(d) = dir() else { return };
    if let Err(e) = std::fs::create_dir_all(&d) {
        eprintln!("picachu-mapstore: cannot create {}: {e}", d.display());
        return;
    }
    let path = d.join(FILE);
    let file =
        std::fs::OpenOptions::new().read(true).create(true).append(true).open(&path);
    let mut file = match file {
        Ok(f) => f,
        Err(e) => {
            eprintln!("picachu-mapstore: cannot open {}: {e}", path.display());
            return;
        }
    };
    let mut buf = String::new();
    let len = file.metadata().map(|m| m.len()).unwrap_or(0);
    if len == 0 {
        let _ = writeln!(buf, "{{\"picachu_mapstore\":{VERSION}}}");
    } else {
        // self-heal a torn tail from a writer killed mid-append: terminate
        // it so this entry starts on its own line instead of merging into
        // the fragment (O_APPEND ignores the read seek position)
        use std::io::{Read as _, Seek as _, SeekFrom};
        let mut last = [0u8; 1];
        if file.seek(SeekFrom::End(-1)).is_ok()
            && file.read_exact(&mut last).is_ok()
            && last[0] != b'\n'
        {
            buf.push('\n');
        }
    }
    encode_entry(&mut buf, key, loops);
    buf.push('\n');
    if let Err(e) = file.write_all(buf.as_bytes()) {
        eprintln!("picachu-mapstore: write to {} failed: {e}", path.display());
    }
}

// ---------------------------------------------------------------------------
// encoding

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn format_name(f: DataFormat) -> &'static str {
    match f {
        DataFormat::Fp32 => "fp32",
        DataFormat::Fp16 => "fp16",
        DataFormat::Int32 => "int32",
        DataFormat::Int16 => "int16",
    }
}

fn kind_name(k: LoopKind) -> &'static str {
    match k {
        LoopKind::Reduction => "reduction",
        LoopKind::ElementWise => "elementwise",
    }
}

fn encode_entry(out: &mut String, key: &CompileKey, loops: &[CompiledLoop]) {
    out.push_str("{\"key\":{\"op\":");
    escape(key.op.name(), out);
    let _ = write!(
        out,
        ",\"rows\":{},\"cols\":{},\"format\":\"{}\",\"taylor\":{},\"unroll\":[",
        key.cgra_rows,
        key.cgra_cols,
        format_name(key.format),
        key.taylor_terms
    );
    for (i, u) in key.unroll_candidates.iter().enumerate() {
        let _ = write!(out, "{}{u}", if i > 0 { "," } else { "" });
    }
    let _ = write!(out, "],\"seed\":{},\"dead_tiles\":[", key.seed);
    for (i, t) in key.dead_tiles.iter().enumerate() {
        let _ = write!(out, "{}{t}", if i > 0 { "," } else { "" });
    }
    out.push_str("],\"dead_links\":[");
    for (i, (a, b)) in key.dead_links.iter().enumerate() {
        let _ = write!(out, "{}[{a},{b}]", if i > 0 { "," } else { "" });
    }
    let _ = write!(
        out,
        "],\"universal\":{},\"incremental\":{}}},\"loops\":[",
        key.universal, key.incremental
    );
    for (i, l) in loops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"label\":");
        escape(&l.label, out);
        let _ = write!(
            out,
            ",\"kind\":\"{}\",\"uf\":{},\"vf\":{},\"ii\":{},\"len\":{},\"placements\":[",
            kind_name(l.kind),
            l.uf,
            l.vf,
            l.mapping.ii,
            l.mapping.schedule_len
        );
        for (j, p) in l.mapping.placements.iter().enumerate() {
            let _ = write!(
                out,
                "{}[{},{},{}]",
                if j > 0 { "," } else { "" },
                p.node.0,
                p.tile,
                p.time
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

// ---------------------------------------------------------------------------
// decoding

fn decode_entry(v: &Json) -> Option<(CompileKey, Vec<CompiledLoop>)> {
    let k = v.get("key")?;
    let op_name = k.get("op")?.as_str()?;
    let op = *NonlinearOp::ALL.iter().find(|o| o.name() == op_name)?;
    let format = match k.get("format")?.as_str()? {
        "fp32" => DataFormat::Fp32,
        "fp16" => DataFormat::Fp16,
        "int32" => DataFormat::Int32,
        "int16" => DataFormat::Int16,
        _ => return None,
    };
    let key = CompileKey {
        op,
        cgra_rows: k.get("rows")?.as_u64()? as usize,
        cgra_cols: k.get("cols")?.as_u64()? as usize,
        format,
        taylor_terms: k.get("taylor")?.as_u64()? as usize,
        unroll_candidates: k
            .get("unroll")?
            .as_array()?
            .iter()
            .map(|u| u.as_u64().map(|u| u as usize))
            .collect::<Option<Vec<_>>>()?,
        seed: k.get("seed")?.as_u64()?,
        dead_tiles: k
            .get("dead_tiles")?
            .as_array()?
            .iter()
            .map(|t| t.as_u64().map(|t| t as usize))
            .collect::<Option<Vec<_>>>()?,
        dead_links: k
            .get("dead_links")?
            .as_array()?
            .iter()
            .map(|l| {
                let pair = l.as_array()?;
                match pair {
                    [a, b] => Some((a.as_u64()? as usize, b.as_u64()? as usize)),
                    _ => None,
                }
            })
            .collect::<Option<Vec<_>>>()?,
        universal: k.get("universal")?.as_bool()?,
        incremental: k.get("incremental")?.as_bool()?,
    };
    let mut loops = Vec::new();
    for l in v.get("loops")?.as_array()? {
        let kind = match l.get("kind")?.as_str()? {
            "reduction" => LoopKind::Reduction,
            "elementwise" => LoopKind::ElementWise,
            _ => return None,
        };
        let placements = l
            .get("placements")?
            .as_array()?
            .iter()
            .map(|p| {
                let triple = p.as_array()?;
                match triple {
                    [n, t, c] => Some(Placement {
                        node: NodeId(n.as_u64()? as usize),
                        tile: t.as_u64()? as usize,
                        time: c.as_u64()? as u32,
                    }),
                    _ => None,
                }
            })
            .collect::<Option<Vec<_>>>()?;
        loops.push(CompiledLoop {
            label: l.get("label")?.as_str()?.to_string(),
            kind,
            uf: l.get("uf")?.as_u64()? as usize,
            vf: l.get("vf")?.as_u64()? as usize,
            mapping: Mapping {
                ii: l.get("ii")?.as_u64()? as u32,
                placements,
                schedule_len: l.get("len")?.as_u64()? as u32,
            },
        });
    }
    Some((key, loops))
}

// ---------------------------------------------------------------------------
// a minimal JSON reader — just enough for the lines this module writes.
// Numbers keep their raw token so `u64` round-trips exactly (an `f64`
// intermediate would corrupt large seeds).

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn parse(input: &str) -> Option<Json> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(v)
    } else {
        None
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn eat(b: &[u8], pos: &mut usize, c: u8) -> Option<()> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return None,
                };
                eat(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Json::Obj(fields));
                    }
                    _ => return None,
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Json::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'"' => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match *b.get(*pos)? {
                    b'"' => {
                        *pos += 1;
                        return Some(Json::Str(s));
                    }
                    b'\\' => {
                        *pos += 1;
                        match *b.get(*pos)? {
                            b'"' => s.push('"'),
                            b'\\' => s.push('\\'),
                            b'/' => s.push('/'),
                            b'n' => s.push('\n'),
                            b'r' => s.push('\r'),
                            b't' => s.push('\t'),
                            b'u' => {
                                let hex = b.get(*pos + 1..*pos + 5)?;
                                let code =
                                    u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16)
                                        .ok()?;
                                s.push(char::from_u32(code)?);
                                *pos += 4;
                            }
                            _ => return None,
                        }
                        *pos += 1;
                    }
                    _ => {
                        // consume one UTF-8 scalar
                        let rest = std::str::from_utf8(&b[*pos..]).ok()?;
                        let c = rest.chars().next()?;
                        s.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        b't' => {
            *pos = pos.checked_add(4)?;
            (b.get(*pos - 4..*pos)? == b"true").then_some(Json::Bool(true))
        }
        b'f' => {
            *pos = pos.checked_add(5)?;
            (b.get(*pos - 5..*pos)? == b"false").then_some(Json::Bool(false))
        }
        b'-' | b'0'..=b'9' => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            Some(Json::Num(String::from_utf8_lossy(&b[start..*pos]).into_owned()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_key() -> CompileKey {
        CompileKey {
            op: NonlinearOp::Softmax,
            cgra_rows: 4,
            cgra_cols: 4,
            format: DataFormat::Fp16,
            taylor_terms: 6,
            unroll_candidates: vec![1, 2, 4],
            seed: u64::MAX - 7, // exercises exact u64 round-trip
            dead_tiles: vec![3],
            dead_links: vec![(1, 2)],
            universal: false,
            incremental: true,
        }
    }

    fn sample_loops() -> Vec<CompiledLoop> {
        vec![CompiledLoop {
            label: "softmax(0) \"quoted\"".to_string(),
            kind: LoopKind::Reduction,
            uf: 2,
            vf: 1,
            mapping: Mapping {
                ii: 3,
                placements: vec![
                    Placement { node: NodeId(0), tile: 5, time: 0 },
                    Placement { node: NodeId(1), tile: 6, time: 2 },
                ],
                schedule_len: 12,
            },
        }]
    }

    #[test]
    fn entry_round_trips_exactly() {
        let key = sample_key();
        let loops = sample_loops();
        let mut line = String::new();
        encode_entry(&mut line, &key, &loops);
        let v = parse(&line).expect("well-formed line");
        let (k2, l2) = decode_entry(&v).expect("decodable entry");
        assert_eq!(k2, key);
        assert_eq!(l2.len(), loops.len());
        assert_eq!(l2[0].label, loops[0].label);
        assert_eq!(l2[0].kind, loops[0].kind);
        assert_eq!((l2[0].uf, l2[0].vf), (loops[0].uf, loops[0].vf));
        assert_eq!(l2[0].mapping, loops[0].mapping);
    }

    #[test]
    fn malformed_lines_decode_to_none() {
        for bad in [
            "",
            "{",
            "{\"key\":{}}",
            "not json at all",
            "{\"key\":{\"op\":\"no-such-op\"},\"loops\":[]}",
        ] {
            assert!(parse(bad).and_then(|v| decode_entry(&v)).is_none(), "{bad:?}");
        }
    }

    fn temp_file(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("picachu-mapstore-compact-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(FILE)
    }

    fn key_with_seed(seed: u64) -> CompileKey {
        CompileKey { seed, ..sample_key() }
    }

    fn loops_with_ii(ii: u32) -> Vec<CompiledLoop> {
        let mut loops = sample_loops();
        loops[0].mapping.ii = ii;
        loops
    }

    fn write_store(path: &PathBuf, lines: &[String]) {
        let mut buf = format!("{{\"picachu_mapstore\":{VERSION}}}\n");
        for l in lines {
            buf.push_str(l);
            buf.push('\n');
        }
        std::fs::write(path, buf).expect("write store");
    }

    fn entry_line(key: &CompileKey, loops: &[CompiledLoop]) -> String {
        let mut s = String::new();
        encode_entry(&mut s, key, loops);
        s
    }

    #[test]
    fn duplicate_heavy_store_compacts_preserving_first_wins_and_header() {
        let path = temp_file("dups");
        // key A appears three times with divergent payloads (a doctored
        // store — real duplicates are bit-identical); key B once. 2/4
        // duplicates is well past the threshold.
        write_store(
            &path,
            &[
                entry_line(&key_with_seed(1), &loops_with_ii(1)),
                entry_line(&key_with_seed(1), &loops_with_ii(9)),
                entry_line(&key_with_seed(2), &loops_with_ii(5)),
                entry_line(&key_with_seed(1), &loops_with_ii(9)),
            ],
        );
        let loaded = load_from(&path);
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].1[0].mapping.ii, 1, "first occurrence wins");
        let raw = std::fs::read_to_string(&path).expect("compacted file");
        let lines: Vec<&str> = raw.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 deduplicated entries");
        assert_eq!(lines[0], &format!("{{\"picachu_mapstore\":{VERSION}}}"));
        // the compacted file round-trips to the same view, compacting no
        // further (no duplicates left)
        let reloaded = load_from(&path);
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded[0].1[0].mapping.ii, 1);
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn low_duplicate_ratio_does_not_compact() {
        let path = temp_file("ratio");
        // 1 duplicate in 10 decoded entries = 10% < threshold
        let mut lines: Vec<String> =
            (1..=9).map(|s| entry_line(&key_with_seed(s), &loops_with_ii(1))).collect();
        lines.push(entry_line(&key_with_seed(1), &loops_with_ii(1)));
        write_store(&path, &lines);
        let before = std::fs::read_to_string(&path).expect("store");
        assert_eq!(load_from(&path).len(), 9);
        let after = std::fs::read_to_string(&path).expect("store");
        assert_eq!(before, after, "below-threshold store must stay untouched");
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn malformed_lines_veto_compaction() {
        let path = temp_file("veto");
        write_store(
            &path,
            &[
                entry_line(&key_with_seed(1), &loops_with_ii(1)),
                entry_line(&key_with_seed(1), &loops_with_ii(1)),
                entry_line(&key_with_seed(1), &loops_with_ii(1)),
                "{\"key\":\"written by a newer build\"}".to_string(),
            ],
        );
        let before = std::fs::read_to_string(&path).expect("store");
        assert_eq!(load_from(&path).len(), 1);
        let after = std::fs::read_to_string(&path).expect("store");
        assert_eq!(before, after, "a line this build cannot read must not be destroyed");
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn torn_trailing_line_is_benign_truncation() {
        let path = temp_file("torn");
        // duplicate-heavy store whose final record is cut mid-write: the
        // torn tail must not count as malformed, so compaction still fires
        // (and heals the fragment away)
        write_store(
            &path,
            &[
                entry_line(&key_with_seed(1), &loops_with_ii(1)),
                entry_line(&key_with_seed(1), &loops_with_ii(1)),
                entry_line(&key_with_seed(1), &loops_with_ii(1)),
                entry_line(&key_with_seed(2), &loops_with_ii(5)),
            ],
        );
        let full = std::fs::read_to_string(&path).expect("store");
        let cut = full.len() - 10; // mid-final-record, newline gone
        std::fs::write(&path, &full[..cut]).expect("truncate");
        let loaded = load_from(&path);
        assert_eq!(loaded.len(), 1, "the torn record is skipped, the rest load");
        assert_eq!(loaded[0].0.seed, key_with_seed(1).seed);
        let after = std::fs::read_to_string(&path).expect("store");
        assert!(after.ends_with('\n'), "compaction rewrote the store: {after:?}");
        assert_eq!(after.lines().count(), 2, "header + the one surviving entry");
        assert_eq!(load_from(&path).len(), 1, "healed store round-trips");
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn append_self_heals_a_torn_tail() {
        let path = temp_file("heal");
        write_store(&path, &[entry_line(&key_with_seed(1), &loops_with_ii(1))]);
        let full = std::fs::read_to_string(&path).expect("store");
        std::fs::write(&path, &full[..full.len() - 10]).expect("truncate");
        assert_eq!(load_from(&path).len(), 0, "the only entry was torn");
        // append must terminate the fragment so the new entry does not
        // merge into it
        let dir = path.parent().expect("parent").to_path_buf();
        set_mapstore_dir(Some(dir));
        append(&key_with_seed(2), &loops_with_ii(5));
        set_mapstore_dir(None);
        let line = entry_line(&key_with_seed(2), &loops_with_ii(5));
        let after = std::fs::read_to_string(&path).expect("store");
        assert!(after.lines().any(|l| l == line), "new entry sits on its own line");
        let loaded = load_from(&path);
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0.seed, key_with_seed(2).seed);
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse(r#"{"a":[1,{"b":"x\"y\\z"},[true,false]],"n":18446744073709551615}"#)
            .expect("parses");
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(u64::MAX));
        let arr = v.get("a").and_then(Json::as_array).expect("array");
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("x\"y\\z"));
    }
}
