//! The PICACHU end-to-end execution engine.
//!
//! Composes the whole system: the compiler maps each nonlinear kernel loop
//! onto the CGRA (picking the best unroll factor, and the INT16 vector
//! factor when the user selects that format), the systolic array model times
//! the GEMMs, and the Shared Buffer applies the §4.2.4 dataflow cases —
//! element-wise ops stream against the systolic array (Case 1), reductions
//! round-trip DRAM channel-by-channel under double buffering (Case 2) or
//! stay buffer-resident when they fit (Case 3). The result is the latency
//! breakdown and energy the Figs. 7c, 8, 9 experiments report.

use picachu_baselines::Breakdown;
use picachu_cgra::cost::CostModel;
use picachu_compiler::arch::CgraSpec;
use picachu_compiler::mapper::{map_dfg_with, MapError, Mapping, ResourceMask};
use picachu_compiler::transform::{fuse_patterns, unroll, vectorize};
use picachu_faults::FaultPlan;
use picachu_ir::kernels as klib;
use picachu_llm::trace::TraceOp;
use picachu_llm::ModelConfig;
use picachu_nonlinear::{LoopKind, NonlinearOp};
use picachu_num::DataFormat;
use crate::compile_cache::{self, CompileKey};
use crate::error::PicachuError;
use picachu_systolic::{DmaModel, SharedBuffer, SystolicArray};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Most detected-uncorrectable ECC words the engine re-fetches from DRAM per
/// request before declaring the SRAM unserviceable
/// ([`PicachuError::EccStorm`]). Eight uncorrectable words in one working
/// set is far past any transient-upset rate — at that point the macro is
/// failing, and re-fetching forever would hide it.
pub const ECC_MAX_DETECTED: u64 = 8;

/// Engine configuration (defaults reproduce the paper's evaluation setup:
/// 4×4 CGRA + 32×32 systolic array + 40 KB Shared Buffer at 1 GHz).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// CGRA grid rows.
    pub cgra_rows: usize,
    /// CGRA grid columns.
    pub cgra_cols: usize,
    /// Systolic array rows.
    pub systolic_rows: usize,
    /// Systolic array columns.
    pub systolic_cols: usize,
    /// Shared Buffer size in KB.
    pub buffer_kb: usize,
    /// Kernel data format (INT16 enables 4-lane vectorization).
    pub format: DataFormat,
    /// Taylor terms for the exp/sin hardware kernels.
    pub taylor_terms: usize,
    /// Unroll factors the compiler tries per kernel loop.
    pub unroll_candidates: Vec<usize>,
    /// Mapper seed.
    pub seed: u64,
    /// Double buffering in the Shared Buffer (§4.2.3). Off = serialized
    /// fills/drains (ablation knob).
    pub double_buffering: bool,
    /// Streaming overlap with the systolic array (Case 1). Off = every
    /// element-wise op fully exposed (ablation knob).
    pub streaming: bool,
    /// Per-mapping-attempt deadline in milliseconds for the degraded compile
    /// path (`None` = unbounded, the default — healthy compiles are fast and
    /// a deadline would make them timing-dependent). When set, a mapping
    /// attempt that exceeds the budget returns [`MapError::Timeout`] and the
    /// degradation ladder falls through to the next level.
    pub compile_deadline_ms: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            cgra_rows: 4,
            cgra_cols: 4,
            systolic_rows: 32,
            systolic_cols: 32,
            buffer_kb: 40,
            // FP16 storage with FP32 intermediates, the paper's default
            format: DataFormat::Fp16,
            taylor_terms: 4,
            unroll_candidates: vec![1, 2, 4, 8],
            seed: 0x71CA,
            double_buffering: true,
            streaming: true,
            compile_deadline_ms: None,
        }
    }
}

/// How far down the degradation ladder a faulted compile had to go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackLevel {
    /// The kernel re-mapped around the faults on the engine's own fabric.
    Remapped,
    /// Re-mapping failed (typically a deadline) but the fabric is intact, so
    /// the cached healthy mapping is served. Never used on a degraded
    /// fabric: a healthy mapping may place work on dead resources.
    Cached,
    /// The kernel only mapped on the all-universal fallback fabric (every PE
    /// supports every opcode — lower ResMII pressure around dead tiles).
    Universal,
}

impl fmt::Display for FallbackLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallbackLevel::Remapped => write!(f, "re-mapped"),
            FallbackLevel::Cached => write!(f, "cached fallback"),
            FallbackLevel::Universal => write!(f, "universal-fabric fallback"),
        }
    }
}

/// Result of compiling an op for a degraded fabric: the loops plus how
/// degraded the service is.
#[derive(Debug, Clone)]
pub struct DegradedCompile {
    /// The compiled loops (from the process cache when warm).
    pub loops: Arc<Vec<CompiledLoop>>,
    /// Which rung of the degradation ladder produced them.
    pub fallback: FallbackLevel,
    /// Σ degraded II / Σ healthy II across the op's loops — reported, not
    /// asserted (detours usually inflate II, but a smaller live portfolio
    /// can occasionally luck into a better placement). `1.0` when no
    /// healthy baseline exists to compare against.
    pub ii_inflation: f64,
    /// Alive PEs on the fabric the loops run on.
    pub alive_tiles: usize,
}

/// One compiled kernel loop: its mapping plus the unroll/vector factors.
#[derive(Debug, Clone)]
pub struct CompiledLoop {
    /// Loop label (e.g. `"softmax(2)"`).
    pub label: String,
    /// Reduction or element-wise.
    pub kind: LoopKind,
    /// The chosen mapping.
    pub mapping: Mapping,
    /// Unroll factor.
    pub uf: usize,
    /// Vector factor (4 for INT16, else 1).
    pub vf: usize,
}

impl CompiledLoop {
    /// Elements produced per initiation interval.
    pub fn elements_per_ii(&self) -> usize {
        self.uf * self.vf
    }

    /// Cycles to process `elements` elements in steady state.
    pub fn cycles(&self, elements: u64) -> u64 {
        let iters = elements.div_ceil(self.elements_per_ii() as u64);
        self.mapping.cycles_for(iters)
    }
}

/// The engine: owns the fabric, substrate models and kernel cache.
#[derive(Debug)]
pub struct PicachuEngine {
    /// Configuration.
    pub config: EngineConfig,
    spec: CgraSpec,
    systolic: SystolicArray,
    buffer: SharedBuffer,
    dma: DmaModel,
    cost: CostModel,
    /// Engine-local view of the process-wide [`compile_cache`]: one lookup
    /// per op after the first, no lock traffic on the hot path.
    cache: HashMap<NonlinearOp, Arc<Vec<CompiledLoop>>>,
}

impl PicachuEngine {
    /// Builds an engine (the CGRA and substrate models come up immediately;
    /// kernels are compiled lazily on first use).
    pub fn new(config: EngineConfig) -> PicachuEngine {
        let spec = CgraSpec::picachu(config.cgra_rows, config.cgra_cols);
        let systolic = SystolicArray::new(config.systolic_rows, config.systolic_cols);
        let buffer = SharedBuffer {
            double_buffered: config.double_buffering,
            ..SharedBuffer::new_kb(config.buffer_kb)
        };
        PicachuEngine {
            spec,
            systolic,
            buffer,
            dma: DmaModel::default(),
            cost: CostModel::default(),
            config,
            cache: HashMap::new(),
        }
    }

    /// The CGRA fabric specification in use.
    pub fn spec(&self) -> &CgraSpec {
        &self.spec
    }

    /// The systolic array model in use.
    pub fn systolic(&self) -> &SystolicArray {
        &self.systolic
    }

    /// Compiles (or returns cached) loops for a nonlinear operation: builds
    /// the kernel, then per loop picks the unroll factor minimizing the
    /// per-element II.
    ///
    /// # Panics
    /// Panics if a kernel loop fails to map on the fabric at every candidate
    /// unroll factor — a fabric misconfiguration, not a runtime condition.
    /// Serve paths that must stay up use
    /// [`PicachuEngine::try_compile_op`] instead.
    pub fn compile_op(&mut self, op: NonlinearOp) -> &[CompiledLoop] {
        if let Err(e) = self.try_compile_op(op) {
            panic!("{e}");
        }
        &self.cache[&op]
    }

    /// The non-panicking compile path: compiles (or returns cached) loops,
    /// reporting failure as a typed error instead of aborting.
    ///
    /// # Errors
    /// [`PicachuError::Compile`] when some kernel loop fails to map at every
    /// candidate unroll factor.
    pub fn try_compile_op(&mut self, op: NonlinearOp) -> Result<Arc<Vec<CompiledLoop>>, PicachuError> {
        if let Some(hit) = self.cache.get(&op) {
            return Ok(hit.clone());
        }
        let key = self.compile_key(op);
        let compiled = match compile_cache::lookup(&key) {
            Some(hit) => hit,
            None => {
                let full = ResourceMask::full(&self.spec);
                let loops = self.try_compile_with(op, &self.spec, &full, None)?;
                compile_cache::publish(key, loops)
            }
        };
        self.cache.insert(op, compiled.clone());
        Ok(compiled)
    }

    /// Compiles `op` for a faulted fabric, walking the degradation ladder
    /// (DESIGN §7): **re-map** around the dead resources on the engine's own
    /// fabric → **cached** healthy mapping (only when the fabric is intact
    /// and the failure was a deadline, never on real topology faults) →
    /// **universal-fabric** re-map (every PE supports every opcode) →
    /// **reject** with the primary error. Each rung is deadline-bounded by
    /// [`EngineConfig::compile_deadline_ms`] and every successful compile is
    /// published to the process cache under its exact fault set, so repeated
    /// requests against the same degraded part hit the cache.
    ///
    /// # Errors
    /// [`PicachuError::Compile`] when every rung fails — the error carries
    /// the mapper's diagnosis from the first (re-map) rung, which is the
    /// informative one.
    pub fn compile_op_degraded(
        &mut self,
        op: NonlinearOp,
        plan: &FaultPlan,
    ) -> Result<DegradedCompile, PicachuError> {
        let deadline = self.config.compile_deadline_ms.map(Duration::from_millis);
        let mask = ResourceMask::degraded(
            &self.spec,
            plan.dead_tiles.iter().copied(),
            plan.dead_links.iter().copied(),
        );
        let alive = mask.alive_count();
        // intact fabric, no deadline pressure: the healthy compile *is* the
        // degraded compile, bit-identically
        if plan.fabric_intact() && deadline.is_none() {
            let loops = self.try_compile_op(op)?;
            return Ok(DegradedCompile {
                loops,
                fallback: FallbackLevel::Remapped,
                ii_inflation: 1.0,
                alive_tiles: alive,
            });
        }
        // healthy baseline for II-inflation reporting — cache-only, so the
        // deadline-bounded degraded path never grows an unbounded healthy
        // compile (inflation reads 1.0 until something compiled healthy)
        let healthy_ii: Option<u64> = self
            .cache
            .get(&op)
            .cloned()
            .or_else(|| compile_cache::lookup(&self.compile_key(op)))
            .map(|loops| loops.iter().map(|l| l.mapping.ii as u64).sum());
        // rung 1: re-map around the faults on the engine's own fabric
        let key = self.degraded_key(op, plan, false);
        let primary = match compile_cache::lookup(&key) {
            Some(hit) => Ok(hit),
            None => self
                .try_compile_with(op, &self.spec, &mask, deadline)
                .map(|loops| compile_cache::publish(key, loops)),
        };
        let primary_err = match primary {
            Ok(loops) => {
                let ii_inflation = Self::ii_inflation(healthy_ii, &loops);
                return Ok(DegradedCompile {
                    loops,
                    fallback: FallbackLevel::Remapped,
                    ii_inflation,
                    alive_tiles: alive,
                });
            }
            Err(e) => e,
        };
        // rung 2: last-known-good mapping — legal only while the fabric is
        // intact (a healthy mapping may use any tile or link). The engine's
        // local view survives process-cache clears, so a deadline miss on
        // re-validation still serves.
        if plan.fabric_intact() {
            if let Some(hit) = self
                .cache
                .get(&op)
                .cloned()
                .or_else(|| compile_cache::lookup(&self.compile_key(op)))
            {
                return Ok(DegradedCompile {
                    loops: hit,
                    fallback: FallbackLevel::Cached,
                    ii_inflation: 1.0,
                    alive_tiles: alive,
                });
            }
        }
        // rung 3: the all-universal fallback fabric, same fault set
        let uspec = CgraSpec::universal(self.config.cgra_rows, self.config.cgra_cols);
        let umask = ResourceMask::degraded(
            &uspec,
            plan.dead_tiles.iter().copied(),
            plan.dead_links.iter().copied(),
        );
        let ukey = self.degraded_key(op, plan, true);
        let fallback = match compile_cache::lookup(&ukey) {
            Some(hit) => Ok(hit),
            None => self
                .try_compile_with(op, &uspec, &umask, deadline)
                .map(|loops| compile_cache::publish(ukey, loops)),
        };
        match fallback {
            Ok(loops) => {
                let ii_inflation = Self::ii_inflation(healthy_ii, &loops);
                Ok(DegradedCompile {
                    loops,
                    fallback: FallbackLevel::Universal,
                    ii_inflation,
                    alive_tiles: umask.alive_count(),
                })
            }
            // rung 4: reject, with the informative (own-fabric) diagnosis
            Err(_) => Err(primary_err),
        }
    }

    fn ii_inflation(healthy_ii: Option<u64>, loops: &[CompiledLoop]) -> f64 {
        let degraded: u64 = loops.iter().map(|l| l.mapping.ii as u64).sum();
        match healthy_ii {
            Some(h) if h > 0 => degraded as f64 / h as f64,
            _ => 1.0,
        }
    }

    /// The process-wide cache key for this engine's compilation of `op`:
    /// everything `compile_uncached` reads. `buffer_kb` and the ablation
    /// knobs are absent because mapping never sees them.
    fn compile_key(&self, op: NonlinearOp) -> CompileKey {
        CompileKey {
            op,
            cgra_rows: self.config.cgra_rows,
            cgra_cols: self.config.cgra_cols,
            format: self.config.format,
            taylor_terms: self.config.taylor_terms,
            unroll_candidates: self.config.unroll_candidates.clone(),
            seed: self.config.seed,
            dead_tiles: Vec::new(),
            dead_links: Vec::new(),
            universal: false,
        }
    }

    /// The cache key for a degraded compile: the healthy key plus the exact
    /// fault set and fallback-fabric flag.
    fn degraded_key(&self, op: NonlinearOp, plan: &FaultPlan, universal: bool) -> CompileKey {
        CompileKey {
            dead_tiles: plan.dead_tiles.iter().copied().collect(),
            dead_links: plan.dead_links.iter().copied().collect(),
            universal,
            ..self.compile_key(op)
        }
    }

    /// The compile kernel shared by the healthy and degraded paths: per
    /// kernel loop, picks the unroll factor minimizing per-element II among
    /// the candidates that map on `spec` restricted to `mask`. With a full
    /// mask, no deadline and the engine's own spec this is bit-identical to
    /// the historical healthy compile.
    fn try_compile_with(
        &self,
        op: NonlinearOp,
        spec: &CgraSpec,
        mask: &ResourceMask,
        deadline: Option<Duration>,
    ) -> Result<Vec<CompiledLoop>, PicachuError> {
        let kernel = kernel_for(op, self.config.taylor_terms);
        let vf_global = self.config.format.vector_factor();
        let mut out = Vec::new();
        for (i, l) in kernel.loops.iter().enumerate() {
            let kind = match l.class {
                klib::LoopClass::Reduction => LoopKind::Reduction,
                klib::LoopClass::ElementWise => LoopKind::ElementWise,
            };
            // reductions vectorize with per-lane partial accumulators (the
            // vector φ holds four lane partials; the cross-lane combine runs
            // once per channel and is negligible), so every loop gets the
            // format's vector factor.
            let vf = vf_global;
            let mut best: Option<CompiledLoop> = None;
            let mut last_err = MapError::EmptyDfg;
            for &uf in &self.config.unroll_candidates {
                let dfg = self.lowered_dfg(op, i, uf, vf);
                let mapping = match map_dfg_with(&dfg, spec, self.loop_seed(i), mask, deadline) {
                    Ok(m) => m,
                    Err(e) => {
                        last_err = e;
                        continue;
                    }
                };
                let per_elem =
                    mapping.ii as f64 / (uf * vf) as f64;
                let better = match &best {
                    None => true,
                    Some(b) => per_elem < b.mapping.ii as f64 / b.elements_per_ii() as f64,
                };
                if better {
                    best = Some(CompiledLoop {
                        label: l.label.clone(),
                        kind,
                        mapping,
                        uf,
                        vf,
                    });
                }
            }
            match best {
                Some(b) => out.push(b),
                None => {
                    return Err(PicachuError::Compile {
                        op,
                        label: l.label.clone(),
                        source: last_err,
                    })
                }
            }
        }
        Ok(out)
    }

    /// Reconstructs the exact lowered DFG the mapper saw for loop
    /// `loop_idx` of `op`: the kernel loop body after unrolling, pattern
    /// fusion and (when `vf > 1`) lane vectorization. The differential
    /// oracle replays this DFG on the cycle-level simulator against the
    /// analytical accounting; `compile_uncached` goes through the same
    /// method, so the two paths cannot drift.
    pub fn lowered_dfg(
        &self,
        op: NonlinearOp,
        loop_idx: usize,
        uf: usize,
        vf: usize,
    ) -> picachu_ir::dfg::Dfg {
        let kernel = kernel_for(op, self.config.taylor_terms);
        let mut dfg = fuse_patterns(&unroll(&kernel.loops[loop_idx].dfg, uf));
        if vf > 1 {
            dfg = vectorize(&dfg, vf).dfg;
        }
        dfg
    }

    /// The mapper seed used for loop `loop_idx` (derived from the config
    /// seed so that sibling loops explore independent placements).
    pub fn loop_seed(&self, loop_idx: usize) -> u64 {
        self.config.seed ^ (loop_idx as u64) << 8
    }

    /// Raw CGRA compute cycles for one nonlinear trace op (no memory-system
    /// effects) — the quantity the kernel-level figures use.
    pub fn nonlinear_compute_cycles(&mut self, op: NonlinearOp, rows: usize, channel: usize) -> u64 {
        let loops: Vec<CompiledLoop> = self.compile_op(op).to_vec();
        let elems = (rows * channel) as u64;
        loops.iter().map(|l| l.cycles(elems)).sum()
    }

    /// Executes a full operator trace with the §4.2.4 dataflow cases,
    /// returning the exposed-latency breakdown.
    pub fn execute_trace(&mut self, trace: &[TraceOp]) -> Breakdown {
        let mut b = Breakdown::default();
        let mut pending_gemm: u64 = 0; // cycles of the producing GEMM
        let elem_bytes = self.config.format.byte_width();
        for t in trace {
            match *t {
                TraceOp::Gemm { m, k, n, count } => {
                    let c = self.systolic.gemm_cycles(m, k, n) * count as u64;
                    b.gemm += c as f64;
                    pending_gemm = c;
                }
                TraceOp::Nonlinear { op, rows, channel } => {
                    let compute = self.nonlinear_compute_cycles(op, rows, channel);
                    match op.category() {
                        picachu_nonlinear::OpCategory::ElementWise => {
                            // Case 1: stream against the producing GEMM; only
                            // the excess over the producer is exposed.
                            let exposed = if self.config.streaming {
                                compute.saturating_sub(pending_gemm)
                            } else {
                                compute
                            };
                            b.nonlinear += exposed as f64;
                            pending_gemm = 0;
                        }
                        picachu_nonlinear::OpCategory::ReductionElementWise => {
                            let channel_bytes = channel * elem_bytes;
                            if op == NonlinearOp::Softmax {
                                // The first (max-reduction) loop overlaps the
                                // scores GEMM and is accounted row-by-row;
                                // the remaining loops are summed per-loop
                                // over the whole tensor. Both terms are
                                // computed directly — never as a
                                // `compute - overlap` difference: per-row
                                // accounting pays the prologue once per row,
                                // so for tall-skinny shapes the overlap term
                                // exceeds the whole-tensor total and the
                                // subtraction would wrap `u64`.
                                let loops: Vec<CompiledLoop> = self.compile_op(op).to_vec();
                                let elems = (rows * channel) as u64;
                                let first: u64 = loops[0]
                                    .cycles(channel as u64)
                                    .saturating_mul(rows as u64);
                                let rest: u64 = loops[1..]
                                    .iter()
                                    .map(|l| l.cycles(elems))
                                    .fold(0u64, |acc, c| acc.saturating_add(c));
                                let exposed_first = if self.config.streaming {
                                    first.saturating_sub(pending_gemm)
                                } else {
                                    first
                                };
                                pending_gemm = 0;
                                if self.buffer.channel_fits(channel, elem_bytes) {
                                    // Case 3: resident until statistics done.
                                    b.nonlinear += (exposed_first + rest) as f64;
                                } else {
                                    // Case 2 on the remaining loops.
                                    let total = self.buffer.pipelined_cycles(
                                        rows as u64,
                                        channel_bytes,
                                        ((rest as f64) / rows as f64).ceil() as u64,
                                        &self.dma,
                                    );
                                    b.nonlinear += (exposed_first + rest) as f64;
                                    b.data_movement += (total.saturating_sub(rest)) as f64;
                                }
                            } else if self.buffer.channel_fits(channel, elem_bytes) {
                                // Case 3 (DESIGN §5.5): the channel fits the
                                // working set, so the systolic output stays
                                // resident in the Shared Buffer across the
                                // statistics and apply passes and the result
                                // feeds the next GEMM in place — no DRAM
                                // round trip to expose.
                                b.nonlinear += compute as f64;
                            } else {
                                // Case 2: channel exceeds the working set —
                                // chunked two-pass execution (statistics,
                                // then apply), each chunk a DMA round trip
                                // under double buffering.
                                let working = self.buffer.working_bytes().max(1);
                                let chunks =
                                    rows as u64 * (channel_bytes.div_ceil(working)) as u64;
                                let per_chunk = ((2 * compute) as f64 / chunks as f64).ceil() as u64;
                                let total = self.buffer.pipelined_cycles(
                                    chunks,
                                    working,
                                    per_chunk,
                                    &self.dma,
                                );
                                b.nonlinear += (2 * compute) as f64;
                                b.data_movement += total.saturating_sub(2 * compute) as f64;
                            }
                        }
                    }
                }
            }
        }
        b
    }

    /// [`PicachuEngine::execute_trace`] under a fault plan: every nonlinear
    /// op is compiled through the degradation ladder
    /// ([`PicachuEngine::compile_op_degraded`]), the plan's SRAM flips are
    /// evaluated as SEC-DED outcomes over the Shared Buffer
    /// (detected-uncorrectable words re-fetch a 64-byte line from DRAM, up
    /// to [`ECC_MAX_DETECTED`]), and transient DMA stalls on the bulk Case-2
    /// traffic pay the bounded retry ladder. All fault overhead lands in
    /// `data_movement`, so the compute terms keep their healthy-identity
    /// accounting. Deterministic in `(self.config, trace, plan)`.
    ///
    /// # Errors
    /// [`PicachuError::Compile`] when an op survives no rung of the ladder,
    /// [`PicachuError::EccStorm`] past the re-fetch budget, or
    /// [`PicachuError::Dma`] when a transfer exhausts its retries.
    pub fn try_execute_trace_faulted(
        &mut self,
        trace: &[TraceOp],
        plan: &FaultPlan,
    ) -> Result<Breakdown, PicachuError> {
        // degraded-compile every distinct nonlinear op up front
        let mut degraded: HashMap<NonlinearOp, Arc<Vec<CompiledLoop>>> = HashMap::new();
        for t in trace {
            if let TraceOp::Nonlinear { op, .. } = *t {
                if let std::collections::hash_map::Entry::Vacant(e) = degraded.entry(op) {
                    e.insert(self.compile_op_degraded(op, plan)?.loops);
                }
            }
        }
        // the engine-local cache is consulted before the process cache, so
        // shadowing it points execute_trace at the degraded mappings; the
        // healthy view is restored before returning
        let saved = std::mem::replace(&mut self.cache, degraded);
        let mut b = self.execute_trace(trace);
        self.cache = saved;

        // ECC over the Shared Buffer working set
        let words = (self.config.buffer_kb * 1024 / 8) as u64;
        let ecc = plan.ecc.classify_sram(&plan.sram_flips, words);
        if ecc.detected > ECC_MAX_DETECTED {
            return Err(PicachuError::EccStorm { detected: ecc.detected, limit: ECC_MAX_DETECTED });
        }
        let mut overhead = ecc.overhead_cycles;
        let mut xfer: u64 = 0;
        for _ in 0..ecc.detected {
            // a detected-uncorrectable word re-fetches one 64-byte DRAM line,
            // itself subject to the transient-stall ladder
            let t = self.dma.transfer_cycles_faulted(64, xfer, &plan.dma)?;
            overhead += t.cycles;
            xfer += 1;
        }
        // transient stalls on the bulk Case-2 DMA traffic: these transfers
        // are already paid for in the healthy breakdown, so only the stall +
        // backoff overhead is added
        for (transfers, bytes) in self.case2_transfers(trace) {
            for _ in 0..transfers {
                let t = self.dma.transfer_cycles_faulted(bytes, xfer, &plan.dma)?;
                overhead += t.overhead_cycles;
                xfer += 1;
            }
        }
        b.data_movement += overhead as f64;
        Ok(b)
    }

    /// The Case-2 DMA transfer schedule of a trace: `(transfers, bytes)` per
    /// chunked reduction op, mirroring the chunk geometry `execute_trace`
    /// hands to [`SharedBuffer::pipelined_cycles`] (each chunk is one fill
    /// plus one drain). Pure geometry — compute never changes the transfer
    /// count.
    fn case2_transfers(&self, trace: &[TraceOp]) -> Vec<(u64, usize)> {
        let elem_bytes = self.config.format.byte_width();
        let mut out = Vec::new();
        for t in trace {
            let TraceOp::Nonlinear { op, rows, channel } = *t else {
                continue;
            };
            if op.category() != picachu_nonlinear::OpCategory::ReductionElementWise
                || self.buffer.channel_fits(channel, elem_bytes)
            {
                continue;
            }
            let channel_bytes = channel * elem_bytes;
            if op == NonlinearOp::Softmax {
                out.push((2 * rows as u64, channel_bytes));
            } else {
                let working = self.buffer.working_bytes().max(1);
                let chunks = rows as u64 * (channel_bytes.div_ceil(working)) as u64;
                out.push((2 * chunks, working));
            }
        }
        out
    }

    /// End-to-end evaluation of a model at a sequence length.
    pub fn execute_model(&mut self, cfg: &ModelConfig, seq: usize) -> Breakdown {
        self.execute_trace(&picachu_llm::model_trace(cfg, seq))
    }

    /// Energy in nJ for an exposed breakdown at 1 GHz: systolic + SRAM power
    /// over GEMM time, CGRA + buffer power over nonlinear time, DMA/glue
    /// over data movement.
    pub fn energy_nj(&self, b: &Breakdown) -> f64 {
        let cgra = self.cost.cgra_cost(&self.spec, 0.7);
        let sys = self
            .cost
            .systolic_cost(self.config.systolic_rows, self.config.systolic_cols, 0.8);
        let sys_sram = Self::systolic_sram_kb(self.config.systolic_rows, self.config.systolic_cols);
        let sram = self.cost.sram_cost(sys_sram + self.config.buffer_kb as f64);
        let glue = self.cost.glue_cost();
        self.cost.energy_nj(sys.power_mw + sram.power_mw, b.gemm as u64)
            + self.cost.energy_nj(cgra.power_mw + sram.power_mw * 0.3, b.nonlinear as u64)
            + self.cost.energy_nj(glue.power_mw + sram.power_mw * 0.2, b.data_movement as u64)
    }

    /// Systolic-array SRAM capacity in KB: the input/weight/output SRAMs
    /// scale with the MAC grid, calibrated to Table 7's 225 KB at 32×32
    /// (225 + 40 KB Shared Buffer = the table's 265 KB total).
    pub fn systolic_sram_kb(rows: usize, cols: usize) -> f64 {
        225.0 * (rows * cols) as f64 / (32.0 * 32.0)
    }
}

impl fmt::Display for PicachuEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PICACHU engine: {}x{} CGRA + {}x{} systolic + {} KB buffer ({})",
            self.config.cgra_rows,
            self.config.cgra_cols,
            self.config.systolic_rows,
            self.config.systolic_cols,
            self.config.buffer_kb,
            self.config.format
        )
    }
}

/// Maps an operation to its kernel (public so the differential oracle can
/// interpret the same loop bodies the engine compiles).
pub fn kernel_for(op: NonlinearOp, terms: usize) -> klib::Kernel {
    match op {
        NonlinearOp::Softmax => klib::softmax_kernel(terms),
        NonlinearOp::Relu => klib::relu_kernel(),
        NonlinearOp::Gelu => klib::gelu_kernel(terms),
        NonlinearOp::Geglu => klib::geglu_kernel(terms),
        NonlinearOp::Silu => klib::silu_kernel(terms),
        NonlinearOp::Swiglu => klib::swiglu_kernel(terms),
        NonlinearOp::LayerNorm => klib::layernorm_kernel(),
        NonlinearOp::RmsNorm => klib::rmsnorm_kernel(),
        NonlinearOp::Rope => klib::rope_kernel(terms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> PicachuEngine {
        PicachuEngine::new(EngineConfig::default())
    }

    #[test]
    fn compile_caches() {
        let mut e = engine();
        let a = e.compile_op(NonlinearOp::Gelu).len();
        let b = e.compile_op(NonlinearOp::Gelu).len();
        assert_eq!(a, b);
        assert_eq!(a, 1);
        assert_eq!(e.compile_op(NonlinearOp::Softmax).len(), 3);
    }

    #[test]
    fn int16_vectorizes_elementwise_loops() {
        let mut e = PicachuEngine::new(EngineConfig {
            format: DataFormat::Int16,
            ..EngineConfig::default()
        });
        let loops = e.compile_op(NonlinearOp::Gelu);
        assert_eq!(loops[0].vf, 4);
        let softmax = e.compile_op(NonlinearOp::Softmax).to_vec();
        assert_eq!(softmax[0].vf, 4, "max reduction uses 4 lane partials");
        assert_eq!(softmax[2].vf, 4, "divide loop vectorizes");
    }

    #[test]
    fn end_to_end_faster_than_gemmini_on_llama() {
        let mut e = engine();
        let cfg = ModelConfig::llama2_13b();
        let ours = e.execute_model(&cfg, 256).total();
        let sys = SystolicArray::new(32, 32);
        let gem = picachu_baselines::common::evaluate_model(
            &picachu_baselines::GemminiModel::default(),
            &sys,
            &cfg,
            256,
        )
        .total();
        assert!(ours < gem, "PICACHU {ours} should beat Gemmini {gem} on LLaMA2");
    }

    #[test]
    fn nonlinear_share_drops_vs_gpu_profile() {
        // Fig. 9b: nonlinear latency share falls to ~20% on PICACHU.
        let mut e = engine();
        let b = e.execute_model(&ModelConfig::llama2_7b(), 256);
        let share = (b.nonlinear + b.data_movement) / b.total();
        assert!(share < 0.45, "share {share}");
        assert!(b.gemm > 0.0 && b.nonlinear > 0.0);
    }

    #[test]
    fn tall_skinny_softmax_does_not_underflow() {
        // Regression: the exposed softmax cycles were computed as
        // `compute - overlap`, and the per-row overlap term pays the
        // prologue once per row — for rows >> channel it exceeded the
        // whole-tensor compute and wrapped u64 to ~2^64 cycles.
        let mut e = engine();
        let trace = [
            TraceOp::Gemm { m: 8192, k: 4, n: 4, count: 1 },
            TraceOp::Nonlinear { op: NonlinearOp::Softmax, rows: 8192, channel: 4 },
        ];
        let b = e.execute_trace(&trace);
        assert!(b.nonlinear.is_finite());
        assert!(
            b.nonlinear < 1e12,
            "tall-skinny softmax wrapped: {} exposed cycles",
            b.nonlinear
        );
        // and the accounting is still per-loop sane: at least the non-first
        // loops' steady-state work is exposed
        let loops = e.compile_op(NonlinearOp::Softmax).to_vec();
        let rest: u64 = loops[1..].iter().map(|l| l.cycles(8192 * 4)).sum();
        assert!(b.nonlinear >= rest as f64, "{} < {}", b.nonlinear, rest);
    }

    #[test]
    fn energy_scales_with_systolic_geometry() {
        // Regression: energy_nj hardcoded 225 KB of systolic SRAM, so
        // non-32x32 DSE points were charged a 32x32 memory system.
        assert!((PicachuEngine::systolic_sram_kb(32, 32) - 225.0).abs() < 1e-12);
        let b = Breakdown { gemm: 1e6, nonlinear: 1e5, data_movement: 1e4 };
        let half = PicachuEngine::new(EngineConfig {
            systolic_rows: 16,
            systolic_cols: 16,
            ..EngineConfig::default()
        });
        let full = engine();
        assert!(
            half.energy_nj(&b) < full.energy_nj(&b),
            "16x16 systolic must be charged less SRAM than 32x32"
        );
    }

    #[test]
    fn energy_positive_and_monotone() {
        let e = engine();
        let small = Breakdown { gemm: 1e6, nonlinear: 1e5, data_movement: 0.0 };
        let big = Breakdown { gemm: 2e6, nonlinear: 2e5, data_movement: 1e4 };
        assert!(e.energy_nj(&small) > 0.0);
        assert!(e.energy_nj(&big) > e.energy_nj(&small));
    }

    #[test]
    fn decode_trace_executes() {
        let mut e = engine();
        let trace = picachu_llm::decode_trace(&ModelConfig::llama2_7b(), 512);
        let b = e.execute_trace(&trace);
        assert!(b.total() > 0.0);
        // decode is GEMV-bound on the systolic array; nonlinear stays small
        assert!(b.gemm > b.nonlinear, "{b}");
    }

    #[test]
    fn streaming_off_is_never_faster() {
        let total = |streaming: bool| {
            let mut e = PicachuEngine::new(EngineConfig { streaming, ..EngineConfig::default() });
            e.execute_model(&ModelConfig::gpt2(), 256).total()
        };
        assert!(total(true) <= total(false));
    }

    #[test]
    fn double_buffering_off_is_never_faster() {
        let total = |double_buffering: bool| {
            let mut e = PicachuEngine::new(EngineConfig {
                double_buffering,
                ..EngineConfig::default()
            });
            e.execute_model(&ModelConfig::llama2_7b(), 128).total()
        };
        assert!(total(true) <= total(false));
    }

    #[test]
    fn degraded_compile_survives_every_single_dead_tile() {
        let mut e = engine();
        for tile in 0..16 {
            let plan = picachu_faults::FaultPlan::dead_tile(tile);
            let dc = e
                .compile_op_degraded(NonlinearOp::Softmax, &plan)
                .unwrap_or_else(|err| panic!("dead tile {tile}: {err}"));
            assert_eq!(dc.alive_tiles, 15);
            assert!(dc.ii_inflation > 0.0);
            for l in dc.loops.iter() {
                for p in &l.mapping.placements {
                    assert_ne!(p.tile, tile, "placement on dead tile {tile}");
                }
            }
        }
    }

    #[test]
    fn degraded_compile_survives_every_single_dead_link() {
        let mut e = engine();
        for r in 0..4usize {
            for c in 0..4usize {
                let t = r * 4 + c;
                let mut links = Vec::new();
                if c + 1 < 4 {
                    links.push((t, t + 1));
                }
                if r + 1 < 4 {
                    links.push((t, t + 4));
                }
                for (a, b) in links {
                    let plan = picachu_faults::FaultPlan::dead_link(a, b);
                    e.compile_op_degraded(NonlinearOp::Gelu, &plan)
                        .unwrap_or_else(|err| panic!("dead link {a}-{b}: {err}"));
                }
            }
        }
    }

    #[test]
    fn degraded_compile_reports_inflation_against_healthy_baseline() {
        let mut e = engine();
        e.compile_op(NonlinearOp::Silu); // prime the healthy baseline
        let plan = picachu_faults::FaultPlan::dead_tile(0)
            .with_dead_tile(5)
            .with_dead_tile(10);
        let dc = e.compile_op_degraded(NonlinearOp::Silu, &plan).unwrap();
        assert_eq!(dc.alive_tiles, 13);
        // reported, not asserted monotone — but it must be a real ratio
        assert!(dc.ii_inflation.is_finite() && dc.ii_inflation > 0.0);
    }

    #[test]
    fn zero_deadline_serves_last_known_good_compile() {
        // seeds unique to this test keep it hermetic against the shared
        // process cache while other tests run concurrently
        let mut warm = PicachuEngine::new(EngineConfig {
            seed: 0xD00D_0002,
            ..EngineConfig::default()
        });
        warm.compile_op(NonlinearOp::Relu);
        let mut e = PicachuEngine::new(EngineConfig {
            seed: 0xD00D_0001,
            compile_deadline_ms: Some(0),
            ..EngineConfig::default()
        });
        // transplant the warm engine's local cache: models an engine whose
        // process-cache entry was evicted but that served this op before
        e.cache = warm.cache.clone();
        // rung 1 misses the process cache and times out instantly; rung 2
        // serves the last known-good compile
        let dc = e
            .compile_op_degraded(NonlinearOp::Relu, &picachu_faults::FaultPlan::none())
            .unwrap();
        assert_eq!(dc.fallback, FallbackLevel::Cached);
    }

    #[test]
    fn dead_fabric_is_rejected_typed_not_panicking() {
        let mut e = engine();
        // kill 15 of 16 tiles; the lone survivor cannot host a whole kernel
        // at any II within slack on the heterogeneous fabric, and on the
        // universal fallback it either maps (degraded service) or the whole
        // request is rejected with a typed error — never a panic
        let mut plan = picachu_faults::FaultPlan::none();
        for t in 0..15 {
            plan = plan.with_dead_tile(t);
        }
        match e.compile_op_degraded(NonlinearOp::Softmax, &plan) {
            Ok(dc) => assert_eq!(dc.fallback, FallbackLevel::Universal),
            Err(PicachuError::Compile { op, .. }) => assert_eq!(op, NonlinearOp::Softmax),
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }

    #[test]
    fn faulted_trace_with_empty_plan_matches_healthy() {
        let mut e = engine();
        let trace = picachu_llm::model_trace(&ModelConfig::gpt2(), 64);
        let healthy = e.execute_trace(&trace);
        let faulted = e
            .try_execute_trace_faulted(&trace, &picachu_faults::FaultPlan::none())
            .unwrap();
        assert_eq!(healthy, faulted, "empty plan must be the identity");
        // and the healthy cache view is restored
        let again = e.execute_trace(&trace);
        assert_eq!(healthy, again);
    }

    #[test]
    fn faulted_trace_accounts_ecc_and_dma_overhead() {
        let mut e = engine();
        let trace = picachu_llm::model_trace(&ModelConfig::gpt2(), 64);
        let healthy = e.execute_trace(&trace);
        // two correctable words + one detected-uncorrectable re-fetch
        let plan = picachu_faults::FaultPlan::none()
            .with_sram_flip(3, 1)
            .with_sram_flip(700, 1)
            .with_sram_flip(41, 2);
        let b = e.try_execute_trace_faulted(&trace, &plan).unwrap();
        assert!(
            b.data_movement > healthy.data_movement,
            "ECC scrubs and the re-fetch must cost data-movement cycles"
        );
        assert_eq!(b.gemm, healthy.gemm, "faults never touch GEMM time");
    }

    #[test]
    fn ecc_storm_rejects() {
        let mut e = engine();
        let trace = picachu_llm::model_trace(&ModelConfig::gpt2(), 64);
        let mut plan = picachu_faults::FaultPlan::none();
        for w in 0..(ECC_MAX_DETECTED + 1) {
            plan = plan.with_sram_flip(w, 2);
        }
        match e.try_execute_trace_faulted(&trace, &plan) {
            Err(PicachuError::EccStorm { detected, limit }) => {
                assert_eq!(detected, ECC_MAX_DETECTED + 1);
                assert_eq!(limit, ECC_MAX_DETECTED);
            }
            other => panic!("expected EccStorm, got {other:?}"),
        }
    }

    #[test]
    fn bigger_buffer_never_slower() {
        let mk = |kb: usize| {
            let mut e = PicachuEngine::new(EngineConfig { buffer_kb: kb, ..EngineConfig::default() });
            e.execute_model(&ModelConfig::llama2_7b(), 128).total()
        };
        let t10 = mk(10);
        let t40 = mk(40);
        let t80 = mk(80);
        assert!(t40 <= t10, "40KB {t40} vs 10KB {t10}");
        assert!(t80 <= t40 * 1.001, "80KB {t80} vs 40KB {t40} (plateau)");
    }
}
