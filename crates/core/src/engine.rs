//! The PICACHU end-to-end execution engine.
//!
//! A thin composition of the three pipeline stages in [`crate::stages`]:
//! the [`CompileService`] maps each nonlinear kernel loop onto the CGRA
//! (picking the best unroll factor, and the INT16 vector factor when the
//! user selects that format), the [`Dispatcher`] walks operator traces over
//! the systolic-array/Shared-Buffer substrate applying the §4.2.4 dataflow
//! cases, and the [`Accountant`] rolls the resulting phase totals into
//! energy and area. The engine wires the stages together, preserves the
//! historical single-object API, and implements the workspace-wide
//! [`Accelerator`] backend contract the comparison harness drives.

use crate::error::PicachuError;
use crate::stages::{Accountant, CompileService, Dispatcher, PhaseTotals};
use picachu_backend::{Accelerator, Breakdown, CompileHint, ExecutionReport};
use picachu_compiler::arch::CgraSpec;
use picachu_compiler::mapper::{MapError, PnrReport, ResourceMask};
use picachu_faults::FaultPlan;
use picachu_llm::trace::TraceOp;
use picachu_llm::ModelConfig;
use picachu_nonlinear::NonlinearOp;
use picachu_num::DataFormat;
use picachu_systolic::SystolicArray;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

pub use crate::stages::compile::{kernel_for, CompiledLoop, DegradedCompile, FallbackLevel};
pub use crate::stages::dispatch::ECC_MAX_DETECTED;

/// Which CGRA fabric flavor the engine builds — the tile-class/routing
/// layout knob [`CgraSpec`] exposes. The co-design search
/// ([`crate::dse`]) treats this as a first-class dimension: the
/// heterogeneous layout is smaller, the universal one trades area for
/// placement freedom (every PE hosts every opcode, so degraded fabrics
/// keep more repair headroom).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricKind {
    /// The paper's heterogeneous BaT/BrT/CoT layout
    /// ([`CgraSpec::picachu`]).
    Heterogeneous,
    /// Every PE universal ([`CgraSpec::universal`]).
    Universal,
}

impl fmt::Display for FabricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricKind::Heterogeneous => write!(f, "het"),
            FabricKind::Universal => write!(f, "uni"),
        }
    }
}

/// Engine configuration (defaults reproduce the paper's evaluation setup:
/// 4×4 CGRA + 32×32 systolic array + 40 KB Shared Buffer at 1 GHz).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// CGRA grid rows.
    pub cgra_rows: usize,
    /// CGRA grid columns.
    pub cgra_cols: usize,
    /// CGRA fabric flavor (tile-class layout).
    pub fabric: FabricKind,
    /// Systolic array rows.
    pub systolic_rows: usize,
    /// Systolic array columns.
    pub systolic_cols: usize,
    /// Shared Buffer size in KB.
    pub buffer_kb: usize,
    /// Kernel data format (INT16 enables 4-lane vectorization).
    pub format: DataFormat,
    /// Taylor terms for the exp/sin hardware kernels.
    pub taylor_terms: usize,
    /// Unroll factors the compiler tries per kernel loop.
    pub unroll_candidates: Vec<usize>,
    /// Mapper seed.
    pub seed: u64,
    /// Double buffering in the Shared Buffer (§4.2.3). Off = serialized
    /// fills/drains (ablation knob).
    pub double_buffering: bool,
    /// Streaming overlap with the systolic array (Case 1). Off = every
    /// element-wise op fully exposed (ablation knob).
    pub streaming: bool,
    /// Whether fault recovery may take the degradation ladder's
    /// incremental-repair rung (retained II, pinned surviving placements).
    /// Off = every degraded compile is a full re-map — the deployment
    /// keeps no healthy mapping resident for repair. A co-design search
    /// knob: repair retains capacity under faults but implies the serving
    /// node holds healthy mappings for every kernel it may need to fix.
    pub incremental_repair: bool,
    /// Per-mapping-attempt deadline in milliseconds for the degraded compile
    /// path (`None` = unbounded, the default — healthy compiles are fast and
    /// a deadline would make them timing-dependent). When set, a mapping
    /// attempt that exceeds the budget returns a mapper timeout and the
    /// degradation ladder falls through to the next level.
    pub compile_deadline_ms: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            cgra_rows: 4,
            cgra_cols: 4,
            fabric: FabricKind::Heterogeneous,
            systolic_rows: 32,
            systolic_cols: 32,
            buffer_kb: 40,
            // FP16 storage with FP32 intermediates, the paper's default
            format: DataFormat::Fp16,
            taylor_terms: 4,
            unroll_candidates: vec![1, 2, 4, 8],
            seed: 0x71CA,
            double_buffering: true,
            streaming: true,
            incremental_repair: true,
            compile_deadline_ms: None,
        }
    }
}

/// Cycles per nonlinear element the cold capacity hint charges when a
/// kernel has never been compiled in the process (see
/// [`Accelerator::estimate_trace`] on the engine). Exposed nonlinear cost
/// on the healthy 4×4 fabric lands between ~0.5 (vectorized element-wise,
/// mostly overlapped) and ~4 (multi-loop reductions) cycles/element across
/// the paper kernels, so 2 keeps the cold estimate within the parity
/// suite's constant-factor envelope.
pub const COLD_NONLINEAR_CYCLES_PER_ELEMENT: f64 = 2.0;

/// The engine: the staged compile → dispatch → account pipeline behind one
/// object, plus the fault-path orchestration that spans the stages.
#[derive(Debug)]
pub struct PicachuEngine {
    /// Configuration.
    pub config: EngineConfig,
    pub(crate) compile: CompileService,
    dispatch: Dispatcher,
    account: Accountant,
}

impl PicachuEngine {
    /// Builds an engine (the CGRA and substrate models come up immediately;
    /// kernels are compiled lazily on first use).
    pub fn new(config: EngineConfig) -> PicachuEngine {
        let spec = match config.fabric {
            FabricKind::Heterogeneous => {
                CgraSpec::picachu(config.cgra_rows, config.cgra_cols)
            }
            FabricKind::Universal => {
                CgraSpec::universal(config.cgra_rows, config.cgra_cols)
            }
        };
        let compile = CompileService::new(spec);
        let dispatch = Dispatcher::new(&config);
        PicachuEngine { compile, dispatch, account: Accountant::new(), config }
    }

    /// The CGRA fabric specification in use.
    pub fn spec(&self) -> &CgraSpec {
        self.compile.spec()
    }

    /// The systolic array model in use.
    pub fn systolic(&self) -> &SystolicArray {
        self.dispatch.systolic()
    }

    /// Compiles (or returns cached) loops for a nonlinear operation.
    ///
    /// # Panics
    /// Panics if a kernel loop fails to map on the fabric at every candidate
    /// unroll factor — a fabric misconfiguration, not a runtime condition.
    /// Serve paths that must stay up use
    /// [`PicachuEngine::try_compile_op`] instead.
    pub fn compile_op(&mut self, op: NonlinearOp) -> &[CompiledLoop] {
        if let Err(e) = self.compile.try_compile_op(&self.config, op) {
            panic!("{e}");
        }
        self.compile.loops(op)
    }

    /// The non-panicking compile path: compiles (or returns cached) loops,
    /// reporting failure as a typed error instead of aborting.
    ///
    /// # Errors
    /// [`PicachuError::Compile`] when some kernel loop fails to map at every
    /// candidate unroll factor.
    pub fn try_compile_op(
        &mut self,
        op: NonlinearOp,
    ) -> Result<Arc<Vec<CompiledLoop>>, PicachuError> {
        self.compile.try_compile_op(&self.config, op)
    }

    /// Warms the compile caches for `ops` in one flat parallel batch: the
    /// whole multi-op search space is submitted to the runtime pool as a
    /// single grouped pass (see [`CompileService::warm`]), so a serving node
    /// compiles its tenants' kernel set at full parallelism before taking
    /// traffic. Bit-identical to compiling each op serially; with a mapping
    /// store configured ([`crate::mapstore`]), previously-persisted kernels
    /// load from disk instead of mapping at all.
    ///
    /// # Errors
    /// [`PicachuError::Compile`] for the first op whose kernel fails to map.
    pub fn prewarm(&mut self, ops: &[NonlinearOp]) -> Result<(), PicachuError> {
        self.compile.warm(&self.config, ops)
    }

    /// Compiles `op` for a faulted fabric through the DESIGN §7 degradation
    /// ladder (see [`CompileService::compile_op_degraded`]).
    ///
    /// # Errors
    /// [`PicachuError::Compile`] when every rung fails.
    pub fn compile_op_degraded(
        &mut self,
        op: NonlinearOp,
        plan: &FaultPlan,
    ) -> Result<DegradedCompile, PicachuError> {
        self.compile.compile_op_degraded(&self.config, op, plan)
    }

    /// Reconstructs the exact lowered DFG the mapper saw for loop
    /// `loop_idx` of `op` (see [`CompileService::lowered_dfg`] — the
    /// differential oracle replays this DFG on the cycle-level simulator).
    pub fn lowered_dfg(
        &self,
        op: NonlinearOp,
        loop_idx: usize,
        uf: usize,
        vf: usize,
    ) -> picachu_ir::dfg::Dfg {
        self.compile.lowered_dfg(&self.config, op, loop_idx, uf, vf)
    }

    /// The mapper seed used for loop `loop_idx` (derived from the config
    /// seed so that sibling loops explore independent placements).
    pub fn loop_seed(&self, loop_idx: usize) -> u64 {
        CompileService::loop_seed(&self.config, loop_idx)
    }

    /// Post-P&R quality reports for every compiled loop of `op`, labelled:
    /// the Route+Fold passes replayed over the cached mappings on the
    /// healthy fabric (see [`picachu_compiler::mapper::pnr_report`]). Pure
    /// analysis — nothing about the cached mappings changes, so calling
    /// this is free of compile-cache side effects beyond the compile
    /// itself.
    ///
    /// # Errors
    /// [`PicachuError::Compile`] when some kernel loop fails to map.
    pub fn pnr_reports(
        &mut self,
        op: NonlinearOp,
    ) -> Result<Vec<(String, PnrReport)>, PicachuError> {
        let loops = self.compile.try_compile_op(&self.config, op)?;
        let mask = ResourceMask::full(self.compile.spec());
        let mut reports = Vec::with_capacity(loops.len());
        for (idx, l) in loops.iter().enumerate() {
            let dfg = self.compile.lowered_dfg(&self.config, op, idx, l.uf, l.vf);
            let report = picachu_compiler::mapper::pnr_report(
                &dfg,
                self.compile.spec(),
                &mask,
                &l.mapping,
            )
            .ok_or_else(|| PicachuError::Compile {
                op,
                label: l.label.clone(),
                source: MapError::Internal("cached mapping does not route"),
            })?;
            reports.push((l.label.clone(), report));
        }
        Ok(reports)
    }

    /// Raw CGRA compute cycles for one nonlinear trace op (no memory-system
    /// effects) — the quantity the kernel-level figures use.
    pub fn nonlinear_compute_cycles(&mut self, op: NonlinearOp, rows: usize, channel: usize) -> u64 {
        let loops: Vec<CompiledLoop> = self.compile_op(op).to_vec();
        let elems = (rows * channel) as u64;
        loops.iter().map(|l| l.cycles(elems)).sum()
    }

    /// Runs the dispatcher over `trace` against the engine's compile cache,
    /// panicking (like [`PicachuEngine::compile_op`]) on a compile failure.
    fn dispatch_totals(&mut self, trace: &[TraceOp]) -> PhaseTotals {
        let PicachuEngine { ref config, ref mut compile, ref dispatch, .. } = *self;
        dispatch.execute_trace(config, trace, &mut |op| {
            match compile.try_compile_op(config, op) {
                Ok(loops) => loops,
                Err(e) => panic!("{e}"),
            }
        })
    }

    /// Executes a full operator trace with the §4.2.4 dataflow cases,
    /// returning the exposed-latency breakdown.
    pub fn execute_trace(&mut self, trace: &[TraceOp]) -> Breakdown {
        self.dispatch_totals(trace).breakdown()
    }

    /// [`PicachuEngine::execute_trace`] under a fault plan: every nonlinear
    /// op is compiled through the degradation ladder
    /// ([`PicachuEngine::compile_op_degraded`]) and the dispatcher walks the
    /// trace against those mappings; the plan's SRAM/DMA fault service is
    /// then priced by [`Dispatcher::fault_overhead`] and lands in the
    /// breakdown's dedicated `overhead` phase, so the compute and
    /// data-movement terms keep their healthy-identity accounting.
    /// Deterministic in `(self.config, trace, plan)`.
    ///
    /// # Errors
    /// [`PicachuError::Compile`] when an op survives no rung of the ladder,
    /// [`PicachuError::EccStorm`] past the re-fetch budget, or
    /// [`PicachuError::Dma`] when a transfer exhausts its retries.
    pub fn try_execute_trace_faulted(
        &mut self,
        trace: &[TraceOp],
        plan: &FaultPlan,
    ) -> Result<Breakdown, PicachuError> {
        // degraded-compile every distinct nonlinear op up front
        let mut degraded: HashMap<NonlinearOp, Arc<Vec<CompiledLoop>>> = HashMap::new();
        for t in trace {
            if let TraceOp::Nonlinear { op, .. } = *t {
                if let std::collections::hash_map::Entry::Vacant(e) = degraded.entry(op) {
                    e.insert(self.compile.compile_op_degraded(&self.config, op, plan)?.loops);
                }
            }
        }
        // the engine-local cache is consulted before the process cache, so
        // shadowing it points the dispatcher at the degraded mappings; the
        // healthy view is restored before returning
        let saved = std::mem::replace(&mut self.compile.cache, degraded);
        let mut totals = self.dispatch_totals(trace);
        self.compile.cache = saved;
        let overhead = self.dispatch.fault_overhead(&self.config, trace, plan)?;
        totals.overhead = totals.overhead.saturating_add(overhead);
        Ok(totals.breakdown())
    }

    /// End-to-end evaluation of a model at a sequence length.
    pub fn execute_model(&mut self, cfg: &ModelConfig, seq: usize) -> Breakdown {
        self.execute_trace(&picachu_llm::model_trace(cfg, seq))
    }

    /// Energy in nJ for an exposed breakdown at 1 GHz (see
    /// [`Accountant::energy_nj`]).
    pub fn energy_nj(&self, b: &Breakdown) -> f64 {
        self.account.energy_nj(&self.config, self.compile.spec(), b)
    }

    /// [`PicachuEngine::energy_nj`] with the CGRA dynamic-power term scaled
    /// by a measured fabric utilization instead of the nominal 0.7 activity
    /// (see [`Accountant::energy_nj_with_cgra_utilization`] — the DSE feeds
    /// the mapping-derived utilization from
    /// [`PicachuEngine::cgra_utilization`] here).
    pub fn energy_nj_at_utilization(&self, b: &Breakdown, utilization: f64) -> f64 {
        self.account
            .energy_nj_with_cgra_utilization(&self.config, self.compile.spec(), b, utilization)
    }

    /// Mean CGRA compute-slot utilization over the compiled mappings of
    /// `ops` — placements / (tiles × II) per kernel loop
    /// ([`picachu_compiler::mapper::Mapping::utilization`]), averaged over
    /// every loop of every op. Compiles any op not yet cached. `None` when
    /// `ops` is empty (nothing mapped, utilization is undefined — callers
    /// fall back to the nominal activity factor).
    ///
    /// # Errors
    /// [`PicachuError::Compile`] when some kernel loop fails to map.
    pub fn cgra_utilization(
        &mut self,
        ops: &[NonlinearOp],
    ) -> Result<Option<f64>, PicachuError> {
        let tiles = self.compile.spec().len();
        let mut sum = 0.0;
        let mut loops = 0usize;
        for &op in ops {
            for l in self.compile.try_compile_op(&self.config, op)?.iter() {
                sum += l.mapping.utilization(tiles);
                loops += 1;
            }
        }
        Ok((loops > 0).then(|| sum / loops as f64))
    }

    /// Systolic-array SRAM capacity in KB (see
    /// [`Accountant::systolic_sram_kb`]).
    pub fn systolic_sram_kb(rows: usize, cols: usize) -> f64 {
        Accountant::systolic_sram_kb(rows, cols)
    }
}

impl Accelerator for PicachuEngine {
    fn name(&self) -> &str {
        "PICACHU"
    }

    /// PICACHU compiles kernels once into the process-wide cache and (at
    /// INT16) vectorizes element-wise loops across 4 lanes.
    fn compile_hint(&self) -> CompileHint {
        CompileHint { cached_kernel_compilation: true, vectorizes_int16: true }
    }

    /// The backend-contract dispatch path: warms the compile cache for the
    /// trace's distinct operations in parallel (deterministically — mapping
    /// is a pure function of the config), then runs the serial trace walk.
    ///
    /// # Panics
    /// Panics when a kernel fails to map, matching
    /// [`PicachuEngine::compile_op`] — a fabric misconfiguration.
    fn execute_trace(&mut self, trace: &[TraceOp]) -> ExecutionReport {
        let mut ops: Vec<NonlinearOp> = Vec::new();
        for t in trace {
            if let TraceOp::Nonlinear { op, .. } = *t {
                if !ops.contains(&op) {
                    ops.push(op);
                }
            }
        }
        if let Err(e) = self.compile.warm(&self.config, &ops) {
            panic!("{e}");
        }
        let b = PicachuEngine::execute_trace(self, trace);
        self.report(b)
    }

    /// The capacity hint. **Warm** (every distinct nonlinear op of the
    /// trace already compiled, locally or in the process cache): runs the
    /// real dispatcher read-only against the cached mappings, so the
    /// estimate *is* the measurement, bit for bit. **Cold**: GEMM cycles
    /// are still exact (the systolic model is stateless); nonlinear work
    /// is priced at [`COLD_NONLINEAR_CYCLES_PER_ELEMENT`] without mapping
    /// anything — crude, but the serving placer only needs relative order
    /// and the parity suite bounds the error to a small constant factor.
    fn estimate_trace(&self, trace: &[TraceOp]) -> f64 {
        let mut cached: HashMap<NonlinearOp, Arc<Vec<CompiledLoop>>> = HashMap::new();
        let mut warm = true;
        for t in trace {
            if let TraceOp::Nonlinear { op, .. } = *t {
                if let std::collections::hash_map::Entry::Vacant(e) = cached.entry(op) {
                    match self.compile.peek(&self.config, op) {
                        Some(loops) => {
                            e.insert(loops);
                        }
                        None => {
                            warm = false;
                            break;
                        }
                    }
                }
            }
        }
        if warm {
            let totals =
                self.dispatch.execute_trace(&self.config, trace, &mut |op| cached[&op].clone());
            return totals.breakdown().total();
        }
        trace
            .iter()
            .map(|t| match *t {
                TraceOp::Gemm { m, k, n, count } => {
                    (self.dispatch.systolic().gemm_cycles(m, k, n) * count as u64) as f64
                }
                TraceOp::Nonlinear { .. } => {
                    t.elements() as f64 * COLD_NONLINEAR_CYCLES_PER_ELEMENT
                }
            })
            .sum()
    }

    fn energy_nj(&self, b: &Breakdown) -> f64 {
        PicachuEngine::energy_nj(self, b)
    }

    fn area_mm2(&self) -> f64 {
        self.account.area_mm2(&self.config, self.compile.spec())
    }
}

impl fmt::Display for PicachuEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PICACHU engine: {}x{} {} CGRA + {}x{} systolic + {} KB buffer ({})",
            self.config.cgra_rows,
            self.config.cgra_cols,
            self.config.fabric,
            self.config.systolic_rows,
            self.config.systolic_cols,
            self.config.buffer_kb,
            self.config.format
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> PicachuEngine {
        PicachuEngine::new(EngineConfig::default())
    }

    #[test]
    fn compile_caches() {
        let mut e = engine();
        let a = e.compile_op(NonlinearOp::Gelu).len();
        let b = e.compile_op(NonlinearOp::Gelu).len();
        assert_eq!(a, b);
        assert_eq!(a, 1);
        assert_eq!(e.compile_op(NonlinearOp::Softmax).len(), 3);
    }

    #[test]
    fn pnr_reports_cover_every_loop() {
        // default 4×4 (greedy, bit-frozen — its mappings predate the
        // channel model, so congestion_free is reported, not required)
        let mut e = engine();
        let loops = e.compile_op(NonlinearOp::Softmax).to_vec();
        let reports = e.pnr_reports(NonlinearOp::Softmax).expect("cached mappings report");
        assert_eq!(reports.len(), loops.len());
        for ((label, r), l) in reports.iter().zip(&loops) {
            assert_eq!(label, &l.label);
            assert_eq!(r.achieved_ii, l.mapping.ii, "{label}");
            assert!(r.area_used > 0.0 && r.area_used <= 1.0, "{label}: area {}", r.area_used);
            assert!(
                (0.0..=1.0).contains(&r.channel_utilization),
                "{label}: chan {}", r.channel_utilization
            );
        }
    }

    #[test]
    fn annealed_pnr_reports_are_congestion_free() {
        // 16×16 takes the staged pipeline, where the Route pass is the
        // acceptance gate: every cached mapping must be congestion-free
        let mut e = PicachuEngine::new(EngineConfig {
            cgra_rows: 16,
            cgra_cols: 16,
            unroll_candidates: vec![1, 2],
            ..EngineConfig::default()
        });
        let reports = e.pnr_reports(NonlinearOp::Softmax).expect("cached mappings report");
        assert!(!reports.is_empty());
        for (label, r) in &reports {
            assert!(r.congestion_free, "{label}: annealed mapping must route congestion-free");
        }
    }

    #[test]
    fn int16_vectorizes_elementwise_loops() {
        let mut e = PicachuEngine::new(EngineConfig {
            format: DataFormat::Int16,
            ..EngineConfig::default()
        });
        let loops = e.compile_op(NonlinearOp::Gelu);
        assert_eq!(loops[0].vf, 4);
        let softmax = e.compile_op(NonlinearOp::Softmax).to_vec();
        assert_eq!(softmax[0].vf, 4, "max reduction uses 4 lane partials");
        assert_eq!(softmax[2].vf, 4, "divide loop vectorizes");
    }

    #[test]
    fn end_to_end_faster_than_gemmini_on_llama() {
        let mut e = engine();
        let cfg = ModelConfig::llama2_13b();
        let ours = e.execute_model(&cfg, 256).total();
        let sys = SystolicArray::new(32, 32);
        let gem = picachu_baselines::common::evaluate_model(
            &picachu_baselines::GemminiModel::default(),
            &sys,
            &cfg,
            256,
        )
        .total();
        assert!(ours < gem, "PICACHU {ours} should beat Gemmini {gem} on LLaMA2");
    }

    #[test]
    fn nonlinear_share_drops_vs_gpu_profile() {
        // Fig. 9b: nonlinear latency share falls to ~20% on PICACHU.
        let mut e = engine();
        let b = e.execute_model(&ModelConfig::llama2_7b(), 256);
        let share = (b.nonlinear + b.data_movement) / b.total();
        assert!(share < 0.45, "share {share}");
        assert!(b.gemm > 0.0 && b.nonlinear > 0.0);
    }

    #[test]
    fn tall_skinny_softmax_does_not_underflow() {
        // Regression: the exposed softmax cycles were computed as
        // `compute - overlap`, and the per-row overlap term pays the
        // prologue once per row — for rows >> channel it exceeded the
        // whole-tensor compute and wrapped u64 to ~2^64 cycles.
        let mut e = engine();
        let trace = [
            TraceOp::Gemm { m: 8192, k: 4, n: 4, count: 1 },
            TraceOp::Nonlinear { op: NonlinearOp::Softmax, rows: 8192, channel: 4 },
        ];
        let b = e.execute_trace(&trace);
        assert!(b.nonlinear.is_finite());
        assert!(
            b.nonlinear < 1e12,
            "tall-skinny softmax wrapped: {} exposed cycles",
            b.nonlinear
        );
        // and the accounting is still per-loop sane: at least the non-first
        // loops' steady-state work is exposed
        let loops = e.compile_op(NonlinearOp::Softmax).to_vec();
        let rest: u64 = loops[1..].iter().map(|l| l.cycles(8192 * 4)).sum();
        assert!(b.nonlinear >= rest as f64, "{} < {}", b.nonlinear, rest);
    }

    #[test]
    fn energy_scales_with_systolic_geometry() {
        // Regression: energy_nj hardcoded 225 KB of systolic SRAM, so
        // non-32x32 DSE points were charged a 32x32 memory system.
        assert!((PicachuEngine::systolic_sram_kb(32, 32) - 225.0).abs() < 1e-12);
        let b = Breakdown { gemm: 1e6, nonlinear: 1e5, data_movement: 1e4, overhead: 0.0 };
        let half = PicachuEngine::new(EngineConfig {
            systolic_rows: 16,
            systolic_cols: 16,
            ..EngineConfig::default()
        });
        let full = engine();
        assert!(
            half.energy_nj(&b) < full.energy_nj(&b),
            "16x16 systolic must be charged less SRAM than 32x32"
        );
    }

    #[test]
    fn energy_positive_and_monotone() {
        let e = engine();
        let small = Breakdown { gemm: 1e6, nonlinear: 1e5, ..Breakdown::default() };
        let big = Breakdown { gemm: 2e6, nonlinear: 2e5, data_movement: 1e4, overhead: 0.0 };
        assert!(e.energy_nj(&small) > 0.0);
        assert!(e.energy_nj(&big) > e.energy_nj(&small));
    }

    #[test]
    fn decode_trace_executes() {
        let mut e = engine();
        let trace = picachu_llm::decode_trace(&ModelConfig::llama2_7b(), 512);
        let b = e.execute_trace(&trace);
        assert!(b.total() > 0.0);
        // decode is GEMV-bound on the systolic array; nonlinear stays small
        assert!(b.gemm > b.nonlinear, "{b}");
    }

    #[test]
    fn streaming_off_is_never_faster() {
        let total = |streaming: bool| {
            let mut e = PicachuEngine::new(EngineConfig { streaming, ..EngineConfig::default() });
            e.execute_model(&ModelConfig::gpt2(), 256).total()
        };
        assert!(total(true) <= total(false));
    }

    #[test]
    fn double_buffering_off_is_never_faster() {
        let total = |double_buffering: bool| {
            let mut e = PicachuEngine::new(EngineConfig {
                double_buffering,
                ..EngineConfig::default()
            });
            e.execute_model(&ModelConfig::llama2_7b(), 128).total()
        };
        assert!(total(true) <= total(false));
    }

    #[test]
    fn degraded_compile_survives_every_single_dead_tile() {
        let mut e = engine();
        for tile in 0..16 {
            let plan = picachu_faults::FaultPlan::dead_tile(tile);
            let dc = e
                .compile_op_degraded(NonlinearOp::Softmax, &plan)
                .unwrap_or_else(|err| panic!("dead tile {tile}: {err}"));
            assert_eq!(dc.alive_tiles, 15);
            assert!(dc.ii_inflation > 0.0);
            for l in dc.loops.iter() {
                for p in &l.mapping.placements {
                    assert_ne!(p.tile, tile, "placement on dead tile {tile}");
                }
            }
        }
    }

    #[test]
    fn degraded_compile_survives_every_single_dead_link() {
        let mut e = engine();
        for r in 0..4usize {
            for c in 0..4usize {
                let t = r * 4 + c;
                let mut links = Vec::new();
                if c + 1 < 4 {
                    links.push((t, t + 1));
                }
                if r + 1 < 4 {
                    links.push((t, t + 4));
                }
                for (a, b) in links {
                    let plan = picachu_faults::FaultPlan::dead_link(a, b);
                    e.compile_op_degraded(NonlinearOp::Gelu, &plan)
                        .unwrap_or_else(|err| panic!("dead link {a}-{b}: {err}"));
                }
            }
        }
    }

    #[test]
    fn degraded_compile_reports_inflation_against_healthy_baseline() {
        let mut e = engine();
        e.compile_op(NonlinearOp::Silu); // prime the healthy baseline
        let plan = picachu_faults::FaultPlan::dead_tile(0)
            .with_dead_tile(5)
            .with_dead_tile(10);
        let dc = e.compile_op_degraded(NonlinearOp::Silu, &plan).unwrap();
        assert_eq!(dc.alive_tiles, 13);
        // reported, not asserted monotone — but it must be a real ratio
        assert!(dc.ii_inflation.is_finite() && dc.ii_inflation > 0.0);
    }

    #[test]
    fn zero_deadline_serves_last_known_good_compile() {
        // seeds unique to this test keep it hermetic against the shared
        // process cache while other tests run concurrently
        let mut warm = PicachuEngine::new(EngineConfig {
            seed: 0xD00D_0002,
            ..EngineConfig::default()
        });
        warm.compile_op(NonlinearOp::Relu);
        let mut e = PicachuEngine::new(EngineConfig {
            seed: 0xD00D_0001,
            compile_deadline_ms: Some(0),
            ..EngineConfig::default()
        });
        // transplant the warm engine's local cache: models an engine whose
        // process-cache entry was evicted but that served this op before
        e.compile.cache = warm.compile.cache.clone();
        // rung 1 misses the process cache and times out instantly; rung 2
        // serves the last known-good compile
        let dc = e
            .compile_op_degraded(NonlinearOp::Relu, &picachu_faults::FaultPlan::none())
            .unwrap();
        assert_eq!(dc.fallback, FallbackLevel::Cached);
    }

    #[test]
    fn dead_fabric_is_rejected_typed_not_panicking() {
        let mut e = engine();
        // kill 15 of 16 tiles; the lone survivor cannot host a whole kernel
        // at any II within slack on the heterogeneous fabric, and on the
        // universal fallback it either maps (degraded service) or the whole
        // request is rejected with a typed error — never a panic
        let mut plan = picachu_faults::FaultPlan::none();
        for t in 0..15 {
            plan = plan.with_dead_tile(t);
        }
        match e.compile_op_degraded(NonlinearOp::Softmax, &plan) {
            Ok(dc) => assert_eq!(dc.fallback, FallbackLevel::Universal),
            Err(PicachuError::Compile { op, .. }) => assert_eq!(op, NonlinearOp::Softmax),
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }

    #[test]
    fn faulted_trace_with_empty_plan_matches_healthy() {
        let mut e = engine();
        let trace = picachu_llm::model_trace(&ModelConfig::gpt2(), 64);
        let healthy = e.execute_trace(&trace);
        let faulted = e
            .try_execute_trace_faulted(&trace, &picachu_faults::FaultPlan::none())
            .unwrap();
        assert_eq!(healthy, faulted, "empty plan must be the identity");
        assert_eq!(faulted.overhead, 0.0, "no faults, no service overhead");
        // and the healthy cache view is restored
        let again = e.execute_trace(&trace);
        assert_eq!(healthy, again);
    }

    #[test]
    fn faulted_trace_accounts_ecc_and_dma_overhead() {
        let mut e = engine();
        let trace = picachu_llm::model_trace(&ModelConfig::gpt2(), 64);
        let healthy = e.execute_trace(&trace);
        // two correctable words + one detected-uncorrectable re-fetch
        let plan = picachu_faults::FaultPlan::none()
            .with_sram_flip(3, 1)
            .with_sram_flip(700, 1)
            .with_sram_flip(41, 2);
        let b = e.try_execute_trace_faulted(&trace, &plan).unwrap();
        assert!(
            b.overhead > 0.0,
            "ECC scrubs and the re-fetch must cost overhead cycles"
        );
        assert_eq!(
            b.data_movement, healthy.data_movement,
            "fault service lands in the overhead phase, not data_movement"
        );
        assert_eq!(b.gemm, healthy.gemm, "faults never touch GEMM time");
    }

    #[test]
    fn ecc_storm_rejects() {
        let mut e = engine();
        let trace = picachu_llm::model_trace(&ModelConfig::gpt2(), 64);
        let mut plan = picachu_faults::FaultPlan::none();
        for w in 0..(ECC_MAX_DETECTED + 1) {
            plan = plan.with_sram_flip(w, 2);
        }
        match e.try_execute_trace_faulted(&trace, &plan) {
            Err(PicachuError::EccStorm { detected, limit }) => {
                assert_eq!(detected, ECC_MAX_DETECTED + 1);
                assert_eq!(limit, ECC_MAX_DETECTED);
            }
            other => panic!("expected EccStorm, got {other:?}"),
        }
    }

    #[test]
    fn bigger_buffer_never_slower() {
        let mk = |kb: usize| {
            let mut e = PicachuEngine::new(EngineConfig { buffer_kb: kb, ..EngineConfig::default() });
            e.execute_model(&ModelConfig::llama2_7b(), 128).total()
        };
        let t10 = mk(10);
        let t40 = mk(40);
        let t80 = mk(80);
        assert!(t40 <= t10, "40KB {t40} vs 10KB {t10}");
        assert!(t80 <= t40 * 1.001, "80KB {t80} vs 40KB {t40} (plateau)");
    }

    #[test]
    fn accelerator_contract_matches_inherent_api() {
        // the trait path must be pure plumbing over the inherent engine
        let trace = picachu_llm::model_trace(&ModelConfig::gpt2(), 64);
        let mut inherent = engine();
        let b = inherent.execute_trace(&trace);
        let mut hosted = engine();
        let r = Accelerator::execute_trace(&mut hosted, &trace);
        assert_eq!(r.breakdown, b, "trait dispatch must equal inherent dispatch");
        assert_eq!(r.backend, "PICACHU");
        assert_eq!(r.energy_nj, inherent.energy_nj(&b));
        assert!(hosted.area_mm2() > 0.0);
        assert!(hosted.compile_hint().cached_kernel_compilation);
        assert!(r.is_sane());
    }
}
