//! The PICACHU end-to-end execution engine.
//!
//! Composes the whole system: the compiler maps each nonlinear kernel loop
//! onto the CGRA (picking the best unroll factor, and the INT16 vector
//! factor when the user selects that format), the systolic array model times
//! the GEMMs, and the Shared Buffer applies the §4.2.4 dataflow cases —
//! element-wise ops stream against the systolic array (Case 1), reductions
//! round-trip DRAM channel-by-channel under double buffering (Case 2) or
//! stay buffer-resident when they fit (Case 3). The result is the latency
//! breakdown and energy the Figs. 7c, 8, 9 experiments report.

use picachu_baselines::Breakdown;
use picachu_cgra::cost::CostModel;
use picachu_compiler::arch::CgraSpec;
use picachu_compiler::mapper::{map_dfg, Mapping};
use picachu_compiler::transform::{fuse_patterns, unroll, vectorize};
use picachu_ir::kernels as klib;
use picachu_llm::trace::TraceOp;
use picachu_llm::ModelConfig;
use picachu_nonlinear::{LoopKind, NonlinearOp};
use picachu_num::DataFormat;
use crate::compile_cache::{self, CompileKey};
use picachu_systolic::{DmaModel, SharedBuffer, SystolicArray};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Engine configuration (defaults reproduce the paper's evaluation setup:
/// 4×4 CGRA + 32×32 systolic array + 40 KB Shared Buffer at 1 GHz).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// CGRA grid rows.
    pub cgra_rows: usize,
    /// CGRA grid columns.
    pub cgra_cols: usize,
    /// Systolic array rows.
    pub systolic_rows: usize,
    /// Systolic array columns.
    pub systolic_cols: usize,
    /// Shared Buffer size in KB.
    pub buffer_kb: usize,
    /// Kernel data format (INT16 enables 4-lane vectorization).
    pub format: DataFormat,
    /// Taylor terms for the exp/sin hardware kernels.
    pub taylor_terms: usize,
    /// Unroll factors the compiler tries per kernel loop.
    pub unroll_candidates: Vec<usize>,
    /// Mapper seed.
    pub seed: u64,
    /// Double buffering in the Shared Buffer (§4.2.3). Off = serialized
    /// fills/drains (ablation knob).
    pub double_buffering: bool,
    /// Streaming overlap with the systolic array (Case 1). Off = every
    /// element-wise op fully exposed (ablation knob).
    pub streaming: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            cgra_rows: 4,
            cgra_cols: 4,
            systolic_rows: 32,
            systolic_cols: 32,
            buffer_kb: 40,
            // FP16 storage with FP32 intermediates, the paper's default
            format: DataFormat::Fp16,
            taylor_terms: 4,
            unroll_candidates: vec![1, 2, 4, 8],
            seed: 0x71CA,
            double_buffering: true,
            streaming: true,
        }
    }
}

/// One compiled kernel loop: its mapping plus the unroll/vector factors.
#[derive(Debug, Clone)]
pub struct CompiledLoop {
    /// Loop label (e.g. `"softmax(2)"`).
    pub label: String,
    /// Reduction or element-wise.
    pub kind: LoopKind,
    /// The chosen mapping.
    pub mapping: Mapping,
    /// Unroll factor.
    pub uf: usize,
    /// Vector factor (4 for INT16, else 1).
    pub vf: usize,
}

impl CompiledLoop {
    /// Elements produced per initiation interval.
    pub fn elements_per_ii(&self) -> usize {
        self.uf * self.vf
    }

    /// Cycles to process `elements` elements in steady state.
    pub fn cycles(&self, elements: u64) -> u64 {
        let iters = elements.div_ceil(self.elements_per_ii() as u64);
        self.mapping.cycles_for(iters)
    }
}

/// The engine: owns the fabric, substrate models and kernel cache.
#[derive(Debug)]
pub struct PicachuEngine {
    /// Configuration.
    pub config: EngineConfig,
    spec: CgraSpec,
    systolic: SystolicArray,
    buffer: SharedBuffer,
    dma: DmaModel,
    cost: CostModel,
    /// Engine-local view of the process-wide [`compile_cache`]: one lookup
    /// per op after the first, no lock traffic on the hot path.
    cache: HashMap<NonlinearOp, Arc<Vec<CompiledLoop>>>,
}

impl PicachuEngine {
    /// Builds an engine (the CGRA and substrate models come up immediately;
    /// kernels are compiled lazily on first use).
    pub fn new(config: EngineConfig) -> PicachuEngine {
        let spec = CgraSpec::picachu(config.cgra_rows, config.cgra_cols);
        let systolic = SystolicArray::new(config.systolic_rows, config.systolic_cols);
        let buffer = SharedBuffer {
            double_buffered: config.double_buffering,
            ..SharedBuffer::new_kb(config.buffer_kb)
        };
        PicachuEngine {
            spec,
            systolic,
            buffer,
            dma: DmaModel::default(),
            cost: CostModel::default(),
            config,
            cache: HashMap::new(),
        }
    }

    /// The CGRA fabric specification in use.
    pub fn spec(&self) -> &CgraSpec {
        &self.spec
    }

    /// The systolic array model in use.
    pub fn systolic(&self) -> &SystolicArray {
        &self.systolic
    }

    /// Compiles (or returns cached) loops for a nonlinear operation: builds
    /// the kernel, then per loop picks the unroll factor minimizing the
    /// per-element II.
    ///
    /// # Panics
    /// Panics if a kernel loop fails to map on the fabric at every candidate
    /// unroll factor — a fabric misconfiguration, not a runtime condition.
    pub fn compile_op(&mut self, op: NonlinearOp) -> &[CompiledLoop] {
        if !self.cache.contains_key(&op) {
            let key = self.compile_key(op);
            let compiled = match compile_cache::lookup(&key) {
                Some(hit) => hit,
                None => compile_cache::publish(key, self.compile_uncached(op)),
            };
            self.cache.insert(op, compiled);
        }
        &self.cache[&op]
    }

    /// The process-wide cache key for this engine's compilation of `op`:
    /// everything `compile_uncached` reads. `buffer_kb` and the ablation
    /// knobs are absent because mapping never sees them.
    fn compile_key(&self, op: NonlinearOp) -> CompileKey {
        CompileKey {
            op,
            cgra_rows: self.config.cgra_rows,
            cgra_cols: self.config.cgra_cols,
            format: self.config.format,
            taylor_terms: self.config.taylor_terms,
            unroll_candidates: self.config.unroll_candidates.clone(),
            seed: self.config.seed,
        }
    }

    fn compile_uncached(&self, op: NonlinearOp) -> Vec<CompiledLoop> {
        let kernel = kernel_for(op, self.config.taylor_terms);
        let vf_global = self.config.format.vector_factor();
        let mut out = Vec::new();
        for (i, l) in kernel.loops.iter().enumerate() {
            let kind = match l.class {
                klib::LoopClass::Reduction => LoopKind::Reduction,
                klib::LoopClass::ElementWise => LoopKind::ElementWise,
            };
            // reductions vectorize with per-lane partial accumulators (the
            // vector φ holds four lane partials; the cross-lane combine runs
            // once per channel and is negligible), so every loop gets the
            // format's vector factor.
            let vf = vf_global;
            let mut best: Option<CompiledLoop> = None;
            for &uf in &self.config.unroll_candidates {
                let dfg = self.lowered_dfg(op, i, uf, vf);
                let Ok(mapping) = map_dfg(&dfg, &self.spec, self.loop_seed(i)) else {
                    continue;
                };
                let per_elem =
                    mapping.ii as f64 / (uf * vf) as f64;
                let better = match &best {
                    None => true,
                    Some(b) => per_elem < b.mapping.ii as f64 / b.elements_per_ii() as f64,
                };
                if better {
                    best = Some(CompiledLoop {
                        label: l.label.clone(),
                        kind,
                        mapping,
                        uf,
                        vf,
                    });
                }
            }
            out.push(best.unwrap_or_else(|| {
                panic!("kernel loop '{}' failed to map on the fabric", l.label)
            }));
        }
        out
    }

    /// Reconstructs the exact lowered DFG the mapper saw for loop
    /// `loop_idx` of `op`: the kernel loop body after unrolling, pattern
    /// fusion and (when `vf > 1`) lane vectorization. The differential
    /// oracle replays this DFG on the cycle-level simulator against the
    /// analytical accounting; `compile_uncached` goes through the same
    /// method, so the two paths cannot drift.
    pub fn lowered_dfg(
        &self,
        op: NonlinearOp,
        loop_idx: usize,
        uf: usize,
        vf: usize,
    ) -> picachu_ir::dfg::Dfg {
        let kernel = kernel_for(op, self.config.taylor_terms);
        let mut dfg = fuse_patterns(&unroll(&kernel.loops[loop_idx].dfg, uf));
        if vf > 1 {
            dfg = vectorize(&dfg, vf).dfg;
        }
        dfg
    }

    /// The mapper seed used for loop `loop_idx` (derived from the config
    /// seed so that sibling loops explore independent placements).
    pub fn loop_seed(&self, loop_idx: usize) -> u64 {
        self.config.seed ^ (loop_idx as u64) << 8
    }

    /// Raw CGRA compute cycles for one nonlinear trace op (no memory-system
    /// effects) — the quantity the kernel-level figures use.
    pub fn nonlinear_compute_cycles(&mut self, op: NonlinearOp, rows: usize, channel: usize) -> u64 {
        let loops: Vec<CompiledLoop> = self.compile_op(op).to_vec();
        let elems = (rows * channel) as u64;
        loops.iter().map(|l| l.cycles(elems)).sum()
    }

    /// Executes a full operator trace with the §4.2.4 dataflow cases,
    /// returning the exposed-latency breakdown.
    pub fn execute_trace(&mut self, trace: &[TraceOp]) -> Breakdown {
        let mut b = Breakdown::default();
        let mut pending_gemm: u64 = 0; // cycles of the producing GEMM
        let elem_bytes = self.config.format.byte_width();
        for t in trace {
            match *t {
                TraceOp::Gemm { m, k, n, count } => {
                    let c = self.systolic.gemm_cycles(m, k, n) * count as u64;
                    b.gemm += c as f64;
                    pending_gemm = c;
                }
                TraceOp::Nonlinear { op, rows, channel } => {
                    let compute = self.nonlinear_compute_cycles(op, rows, channel);
                    match op.category() {
                        picachu_nonlinear::OpCategory::ElementWise => {
                            // Case 1: stream against the producing GEMM; only
                            // the excess over the producer is exposed.
                            let exposed = if self.config.streaming {
                                compute.saturating_sub(pending_gemm)
                            } else {
                                compute
                            };
                            b.nonlinear += exposed as f64;
                            pending_gemm = 0;
                        }
                        picachu_nonlinear::OpCategory::ReductionElementWise => {
                            let channel_bytes = channel * elem_bytes;
                            if op == NonlinearOp::Softmax {
                                // The first (max-reduction) loop overlaps the
                                // scores GEMM and is accounted row-by-row;
                                // the remaining loops are summed per-loop
                                // over the whole tensor. Both terms are
                                // computed directly — never as a
                                // `compute - overlap` difference: per-row
                                // accounting pays the prologue once per row,
                                // so for tall-skinny shapes the overlap term
                                // exceeds the whole-tensor total and the
                                // subtraction would wrap `u64`.
                                let loops: Vec<CompiledLoop> = self.compile_op(op).to_vec();
                                let elems = (rows * channel) as u64;
                                let first: u64 = loops[0]
                                    .cycles(channel as u64)
                                    .saturating_mul(rows as u64);
                                let rest: u64 = loops[1..]
                                    .iter()
                                    .map(|l| l.cycles(elems))
                                    .fold(0u64, |acc, c| acc.saturating_add(c));
                                let exposed_first = if self.config.streaming {
                                    first.saturating_sub(pending_gemm)
                                } else {
                                    first
                                };
                                pending_gemm = 0;
                                if self.buffer.channel_fits(channel, elem_bytes) {
                                    // Case 3: resident until statistics done.
                                    b.nonlinear += (exposed_first + rest) as f64;
                                } else {
                                    // Case 2 on the remaining loops.
                                    let total = self.buffer.pipelined_cycles(
                                        rows as u64,
                                        channel_bytes,
                                        ((rest as f64) / rows as f64).ceil() as u64,
                                        &self.dma,
                                    );
                                    b.nonlinear += (exposed_first + rest) as f64;
                                    b.data_movement += (total.saturating_sub(rest)) as f64;
                                }
                            } else if self.buffer.channel_fits(channel, elem_bytes) {
                                // Case 3 (DESIGN §5.5): the channel fits the
                                // working set, so the systolic output stays
                                // resident in the Shared Buffer across the
                                // statistics and apply passes and the result
                                // feeds the next GEMM in place — no DRAM
                                // round trip to expose.
                                b.nonlinear += compute as f64;
                            } else {
                                // Case 2: channel exceeds the working set —
                                // chunked two-pass execution (statistics,
                                // then apply), each chunk a DMA round trip
                                // under double buffering.
                                let working = self.buffer.working_bytes().max(1);
                                let chunks =
                                    rows as u64 * (channel_bytes.div_ceil(working)) as u64;
                                let per_chunk = ((2 * compute) as f64 / chunks as f64).ceil() as u64;
                                let total = self.buffer.pipelined_cycles(
                                    chunks,
                                    working,
                                    per_chunk,
                                    &self.dma,
                                );
                                b.nonlinear += (2 * compute) as f64;
                                b.data_movement += total.saturating_sub(2 * compute) as f64;
                            }
                        }
                    }
                }
            }
        }
        b
    }

    /// End-to-end evaluation of a model at a sequence length.
    pub fn execute_model(&mut self, cfg: &ModelConfig, seq: usize) -> Breakdown {
        self.execute_trace(&picachu_llm::model_trace(cfg, seq))
    }

    /// Energy in nJ for an exposed breakdown at 1 GHz: systolic + SRAM power
    /// over GEMM time, CGRA + buffer power over nonlinear time, DMA/glue
    /// over data movement.
    pub fn energy_nj(&self, b: &Breakdown) -> f64 {
        let cgra = self.cost.cgra_cost(&self.spec, 0.7);
        let sys = self
            .cost
            .systolic_cost(self.config.systolic_rows, self.config.systolic_cols, 0.8);
        let sys_sram = Self::systolic_sram_kb(self.config.systolic_rows, self.config.systolic_cols);
        let sram = self.cost.sram_cost(sys_sram + self.config.buffer_kb as f64);
        let glue = self.cost.glue_cost();
        self.cost.energy_nj(sys.power_mw + sram.power_mw, b.gemm as u64)
            + self.cost.energy_nj(cgra.power_mw + sram.power_mw * 0.3, b.nonlinear as u64)
            + self.cost.energy_nj(glue.power_mw + sram.power_mw * 0.2, b.data_movement as u64)
    }

    /// Systolic-array SRAM capacity in KB: the input/weight/output SRAMs
    /// scale with the MAC grid, calibrated to Table 7's 225 KB at 32×32
    /// (225 + 40 KB Shared Buffer = the table's 265 KB total).
    pub fn systolic_sram_kb(rows: usize, cols: usize) -> f64 {
        225.0 * (rows * cols) as f64 / (32.0 * 32.0)
    }
}

impl fmt::Display for PicachuEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PICACHU engine: {}x{} CGRA + {}x{} systolic + {} KB buffer ({})",
            self.config.cgra_rows,
            self.config.cgra_cols,
            self.config.systolic_rows,
            self.config.systolic_cols,
            self.config.buffer_kb,
            self.config.format
        )
    }
}

/// Maps an operation to its kernel (public so the differential oracle can
/// interpret the same loop bodies the engine compiles).
pub fn kernel_for(op: NonlinearOp, terms: usize) -> klib::Kernel {
    match op {
        NonlinearOp::Softmax => klib::softmax_kernel(terms),
        NonlinearOp::Relu => klib::relu_kernel(),
        NonlinearOp::Gelu => klib::gelu_kernel(terms),
        NonlinearOp::Geglu => klib::geglu_kernel(terms),
        NonlinearOp::Silu => klib::silu_kernel(terms),
        NonlinearOp::Swiglu => klib::swiglu_kernel(terms),
        NonlinearOp::LayerNorm => klib::layernorm_kernel(),
        NonlinearOp::RmsNorm => klib::rmsnorm_kernel(),
        NonlinearOp::Rope => klib::rope_kernel(terms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> PicachuEngine {
        PicachuEngine::new(EngineConfig::default())
    }

    #[test]
    fn compile_caches() {
        let mut e = engine();
        let a = e.compile_op(NonlinearOp::Gelu).len();
        let b = e.compile_op(NonlinearOp::Gelu).len();
        assert_eq!(a, b);
        assert_eq!(a, 1);
        assert_eq!(e.compile_op(NonlinearOp::Softmax).len(), 3);
    }

    #[test]
    fn int16_vectorizes_elementwise_loops() {
        let mut e = PicachuEngine::new(EngineConfig {
            format: DataFormat::Int16,
            ..EngineConfig::default()
        });
        let loops = e.compile_op(NonlinearOp::Gelu);
        assert_eq!(loops[0].vf, 4);
        let softmax = e.compile_op(NonlinearOp::Softmax).to_vec();
        assert_eq!(softmax[0].vf, 4, "max reduction uses 4 lane partials");
        assert_eq!(softmax[2].vf, 4, "divide loop vectorizes");
    }

    #[test]
    fn end_to_end_faster_than_gemmini_on_llama() {
        let mut e = engine();
        let cfg = ModelConfig::llama2_13b();
        let ours = e.execute_model(&cfg, 256).total();
        let sys = SystolicArray::new(32, 32);
        let gem = picachu_baselines::common::evaluate_model(
            &picachu_baselines::GemminiModel::default(),
            &sys,
            &cfg,
            256,
        )
        .total();
        assert!(ours < gem, "PICACHU {ours} should beat Gemmini {gem} on LLaMA2");
    }

    #[test]
    fn nonlinear_share_drops_vs_gpu_profile() {
        // Fig. 9b: nonlinear latency share falls to ~20% on PICACHU.
        let mut e = engine();
        let b = e.execute_model(&ModelConfig::llama2_7b(), 256);
        let share = (b.nonlinear + b.data_movement) / b.total();
        assert!(share < 0.45, "share {share}");
        assert!(b.gemm > 0.0 && b.nonlinear > 0.0);
    }

    #[test]
    fn tall_skinny_softmax_does_not_underflow() {
        // Regression: the exposed softmax cycles were computed as
        // `compute - overlap`, and the per-row overlap term pays the
        // prologue once per row — for rows >> channel it exceeded the
        // whole-tensor compute and wrapped u64 to ~2^64 cycles.
        let mut e = engine();
        let trace = [
            TraceOp::Gemm { m: 8192, k: 4, n: 4, count: 1 },
            TraceOp::Nonlinear { op: NonlinearOp::Softmax, rows: 8192, channel: 4 },
        ];
        let b = e.execute_trace(&trace);
        assert!(b.nonlinear.is_finite());
        assert!(
            b.nonlinear < 1e12,
            "tall-skinny softmax wrapped: {} exposed cycles",
            b.nonlinear
        );
        // and the accounting is still per-loop sane: at least the non-first
        // loops' steady-state work is exposed
        let loops = e.compile_op(NonlinearOp::Softmax).to_vec();
        let rest: u64 = loops[1..].iter().map(|l| l.cycles(8192 * 4)).sum();
        assert!(b.nonlinear >= rest as f64, "{} < {}", b.nonlinear, rest);
    }

    #[test]
    fn energy_scales_with_systolic_geometry() {
        // Regression: energy_nj hardcoded 225 KB of systolic SRAM, so
        // non-32x32 DSE points were charged a 32x32 memory system.
        assert!((PicachuEngine::systolic_sram_kb(32, 32) - 225.0).abs() < 1e-12);
        let b = Breakdown { gemm: 1e6, nonlinear: 1e5, data_movement: 1e4 };
        let half = PicachuEngine::new(EngineConfig {
            systolic_rows: 16,
            systolic_cols: 16,
            ..EngineConfig::default()
        });
        let full = engine();
        assert!(
            half.energy_nj(&b) < full.energy_nj(&b),
            "16x16 systolic must be charged less SRAM than 32x32"
        );
    }

    #[test]
    fn energy_positive_and_monotone() {
        let e = engine();
        let small = Breakdown { gemm: 1e6, nonlinear: 1e5, data_movement: 0.0 };
        let big = Breakdown { gemm: 2e6, nonlinear: 2e5, data_movement: 1e4 };
        assert!(e.energy_nj(&small) > 0.0);
        assert!(e.energy_nj(&big) > e.energy_nj(&small));
    }

    #[test]
    fn decode_trace_executes() {
        let mut e = engine();
        let trace = picachu_llm::decode_trace(&ModelConfig::llama2_7b(), 512);
        let b = e.execute_trace(&trace);
        assert!(b.total() > 0.0);
        // decode is GEMV-bound on the systolic array; nonlinear stays small
        assert!(b.gemm > b.nonlinear, "{b}");
    }

    #[test]
    fn streaming_off_is_never_faster() {
        let total = |streaming: bool| {
            let mut e = PicachuEngine::new(EngineConfig { streaming, ..EngineConfig::default() });
            e.execute_model(&ModelConfig::gpt2(), 256).total()
        };
        assert!(total(true) <= total(false));
    }

    #[test]
    fn double_buffering_off_is_never_faster() {
        let total = |double_buffering: bool| {
            let mut e = PicachuEngine::new(EngineConfig {
                double_buffering,
                ..EngineConfig::default()
            });
            e.execute_model(&ModelConfig::llama2_7b(), 128).total()
        };
        assert!(total(true) <= total(false));
    }

    #[test]
    fn bigger_buffer_never_slower() {
        let mk = |kb: usize| {
            let mut e = PicachuEngine::new(EngineConfig { buffer_kb: kb, ..EngineConfig::default() });
            e.execute_model(&ModelConfig::llama2_7b(), 128).total()
        };
        let t10 = mk(10);
        let t40 = mk(40);
        let t80 = mk(80);
        assert!(t40 <= t10, "40KB {t40} vs 10KB {t10}");
        assert!(t80 <= t40 * 1.001, "80KB {t80} vs 40KB {t40} (plateau)");
    }
}
