//! Stage 1 — the compile service.
//!
//! Turns nonlinear operations into CGRA mappings: builds the kernel, then
//! per loop picks the unroll factor minimizing the per-element II (and the
//! INT16 vector factor when the format selects it). All compilation flows
//! through the process-wide [`compile_cache`], with an engine-local view on
//! top so the hot path never takes the cache lock twice for the same op.
//! Under faults the service walks the DESIGN §7 degradation ladder:
//! incremental repair → re-map → cached healthy mapping → universal-fabric
//! re-map → reject.
//!
//! Cold compilation is one **flat** parallel pass: the full
//! `(op × loop × unroll × II × attempt)` search space goes to
//! `try_parallel_find_first_grouped` as a single deterministic work queue
//! (DESIGN §10), never a pool-inside-a-pool.

use crate::compile_cache::{self, CompileKey};
use crate::engine::{EngineConfig, FabricKind};
use crate::error::PicachuError;
use picachu_compiler::arch::CgraSpec;
use picachu_compiler::mapper::{
    repair_mapping, MapError, Mapping, ResourceMask, SearchGrid,
};
use picachu_compiler::transform::{fuse_patterns, unroll, vectorize};
use picachu_faults::FaultPlan;
use picachu_ir::dfg::Dfg;
use picachu_ir::kernels as klib;
use picachu_nonlinear::{LoopKind, NonlinearOp};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// How far down the degradation ladder a faulted compile had to go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackLevel {
    /// The kernel incrementally repaired its cached healthy mapping: the II
    /// and every undisturbed placement were retained, only the sub-DFG the
    /// faults touched was re-placed. The cheapest genuine re-map.
    Incremental,
    /// The kernel re-mapped around the faults on the engine's own fabric.
    Remapped,
    /// Re-mapping failed (typically a deadline) but the fabric is intact, so
    /// the cached healthy mapping is served. Never used on a degraded
    /// fabric: a healthy mapping may place work on dead resources.
    Cached,
    /// The kernel only mapped on the all-universal fallback fabric (every PE
    /// supports every opcode — lower ResMII pressure around dead tiles).
    Universal,
}

impl fmt::Display for FallbackLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallbackLevel::Incremental => write!(f, "incrementally repaired"),
            FallbackLevel::Remapped => write!(f, "re-mapped"),
            FallbackLevel::Cached => write!(f, "cached fallback"),
            FallbackLevel::Universal => write!(f, "universal-fabric fallback"),
        }
    }
}

/// Result of compiling an op for a degraded fabric: the loops plus how
/// degraded the service is.
#[derive(Debug, Clone)]
pub struct DegradedCompile {
    /// The compiled loops (from the process cache when warm).
    pub loops: Arc<Vec<CompiledLoop>>,
    /// Which rung of the degradation ladder produced them.
    pub fallback: FallbackLevel,
    /// Σ degraded II / Σ healthy II across the op's loops — reported, not
    /// asserted (detours usually inflate II, but a smaller live portfolio
    /// can occasionally luck into a better placement). `1.0` when no
    /// healthy baseline exists to compare against.
    pub ii_inflation: f64,
    /// Alive PEs on the fabric the loops run on.
    pub alive_tiles: usize,
}

/// One compiled kernel loop: its mapping plus the unroll/vector factors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledLoop {
    /// Loop label (e.g. `"softmax(2)"`).
    pub label: String,
    /// Reduction or element-wise.
    pub kind: LoopKind,
    /// The chosen mapping.
    pub mapping: Mapping,
    /// Unroll factor.
    pub uf: usize,
    /// Vector factor (4 for INT16, else 1).
    pub vf: usize,
}

impl CompiledLoop {
    /// Elements produced per initiation interval.
    pub fn elements_per_ii(&self) -> usize {
        self.uf * self.vf
    }

    /// Cycles to process `elements` elements in steady state.
    pub fn cycles(&self, elements: u64) -> u64 {
        let iters = elements.div_ceil(self.elements_per_ii() as u64);
        self.mapping.cycles_for(iters)
    }
}

/// The compile stage: owns the fabric specification and the engine-local
/// view of the process-wide compile cache.
#[derive(Debug)]
pub struct CompileService {
    spec: CgraSpec,
    /// Engine-local view of the process-wide [`compile_cache`]: one lookup
    /// per op after the first, no lock traffic on the hot path. `pub(crate)`
    /// so the engine can shadow it with degraded mappings during a faulted
    /// dispatch (and tests can transplant warm views).
    pub(crate) cache: HashMap<NonlinearOp, Arc<Vec<CompiledLoop>>>,
}

impl CompileService {
    /// A service compiling onto `spec` (kernels compile lazily on first use).
    pub fn new(spec: CgraSpec) -> CompileService {
        CompileService { spec, cache: HashMap::new() }
    }

    /// The CGRA fabric specification in use.
    pub fn spec(&self) -> &CgraSpec {
        &self.spec
    }

    /// The locally-cached loops for `op`.
    ///
    /// # Panics
    /// Panics if `op` was never compiled through this service — callers go
    /// through [`CompileService::try_compile_op`] first.
    pub(crate) fn loops(&self, op: NonlinearOp) -> &[CompiledLoop] {
        &self.cache[&op]
    }

    /// Read-only cache probe: the locally-cached loops for `op`, falling
    /// back to the process-wide [`compile_cache`] entry under this config's
    /// key. `None` when the kernel has never been compiled anywhere in the
    /// process — the cold case the engine's capacity hint
    /// ([`Accelerator::estimate_trace`](picachu_backend::Accelerator))
    /// estimates analytically instead.
    pub(crate) fn peek(
        &self,
        config: &EngineConfig,
        op: NonlinearOp,
    ) -> Option<Arc<Vec<CompiledLoop>>> {
        if let Some(hit) = self.cache.get(&op) {
            return Some(hit.clone());
        }
        compile_cache::lookup(&self.compile_key(config, op))
    }

    /// The non-panicking compile path: compiles (or returns cached) loops,
    /// reporting failure as a typed error instead of aborting.
    ///
    /// # Errors
    /// [`PicachuError::Compile`] when some kernel loop fails to map at every
    /// candidate unroll factor.
    pub fn try_compile_op(
        &mut self,
        config: &EngineConfig,
        op: NonlinearOp,
    ) -> Result<Arc<Vec<CompiledLoop>>, PicachuError> {
        if let Some(hit) = self.cache.get(&op) {
            return Ok(hit.clone());
        }
        let key = self.compile_key(config, op);
        let compiled = match compile_cache::lookup(&key) {
            Some(hit) => hit,
            None => {
                let full = ResourceMask::full(&self.spec);
                let loops = self.compile_one(config, op, &self.spec, &full, None)?;
                compile_cache::publish(key, loops)
            }
        };
        self.cache.insert(op, compiled.clone());
        Ok(compiled)
    }

    /// Compiles every distinct operation in `ops`, submitting the **entire**
    /// `(op × loop × unroll × II × attempt)` search space of the true cache
    /// misses as one flat grouped pass on the [`picachu_runtime`] pool (see
    /// [`CompileService::compile_batch`]). Mapping is deterministic per
    /// `(config, op)`, so the cache ends bit-identical to a serial warm —
    /// only wall-clock changes. The `Accelerator` dispatch path calls this
    /// before its serial trace walk so a cold engine doesn't compile on the
    /// walk.
    ///
    /// # Errors
    /// [`PicachuError::Compile`] for the first (in `ops` order) operation
    /// whose kernel fails to map.
    pub fn warm(
        &mut self,
        config: &EngineConfig,
        ops: &[NonlinearOp],
    ) -> Result<(), PicachuError> {
        let mut misses: Vec<NonlinearOp> = Vec::new();
        for &op in ops {
            if self.cache.contains_key(&op) || misses.contains(&op) {
                continue;
            }
            // process-cache hits are cheap lookups; only real mapping work
            // goes to the pool
            if let Some(hit) = compile_cache::lookup(&self.compile_key(config, op)) {
                self.cache.insert(op, hit);
            } else {
                misses.push(op);
            }
        }
        if misses.is_empty() {
            return Ok(());
        }
        let full = ResourceMask::full(&self.spec);
        let compiled = self.compile_batch(config, &misses, &self.spec, &full, None)?;
        for (&op, loops) in misses.iter().zip(compiled) {
            let arc = compile_cache::publish(self.compile_key(config, op), loops?);
            self.cache.insert(op, arc);
        }
        Ok(())
    }

    /// Compiles `op` for a faulted fabric, walking the degradation ladder
    /// (DESIGN §7): **incremental repair** of the cached healthy mapping
    /// (retained II, only the disturbed sub-DFG re-placed — skipped when no
    /// healthy mapping is on hand) → **re-map** around the dead resources on
    /// the engine's own fabric → **cached** healthy mapping (only when the
    /// fabric is intact and the failure was a deadline, never on real
    /// topology faults) → **universal-fabric** re-map (every PE supports
    /// every opcode) → **reject** with the primary error. Each rung is
    /// deadline-bounded by
    /// [`EngineConfig::compile_deadline_ms`] and every successful compile is
    /// published to the process cache under its exact fault set, so repeated
    /// requests against the same degraded part hit the cache.
    ///
    /// # Errors
    /// [`PicachuError::Compile`] when every rung fails — the error carries
    /// the mapper's diagnosis from the first (re-map) rung, which is the
    /// informative one.
    pub fn compile_op_degraded(
        &mut self,
        config: &EngineConfig,
        op: NonlinearOp,
        plan: &FaultPlan,
    ) -> Result<DegradedCompile, PicachuError> {
        let deadline = config.compile_deadline_ms.map(Duration::from_millis);
        let mask = ResourceMask::degraded(
            &self.spec,
            plan.dead_tiles.iter().copied(),
            plan.dead_links.iter().copied(),
        );
        let alive = mask.alive_count();
        // intact fabric, no deadline pressure: the healthy compile *is* the
        // degraded compile, bit-identically
        if plan.fabric_intact() && deadline.is_none() {
            let loops = self.try_compile_op(config, op)?;
            return Ok(DegradedCompile {
                loops,
                fallback: FallbackLevel::Remapped,
                ii_inflation: 1.0,
                alive_tiles: alive,
            });
        }
        // healthy baseline for II-inflation reporting — cache-only, so the
        // deadline-bounded degraded path never grows an unbounded healthy
        // compile (inflation reads 1.0 until something compiled healthy)
        let healthy_ii: Option<u64> = self
            .cache
            .get(&op)
            .cloned()
            .or_else(|| compile_cache::lookup(&self.compile_key(config, op)))
            .map(|loops| loops.iter().map(|l| l.mapping.ii as u64).sum());
        // rung 1: incremental repair — retain the healthy II and every
        // placement the faults did not disturb, re-placing only the affected
        // sub-DFG. Needs a healthy mapping on hand (engine-local or process
        // cache; this rung never *computes* one), a genuinely degraded
        // fabric (on an intact fabric the healthy mapping needs no repair),
        // and the config's repair eligibility (`incremental_repair: false`
        // deployments keep no mapping resident, so every fault is a full
        // re-map — a DSE compiler-strategy knob).
        if config.incremental_repair && !plan.fabric_intact() {
            let ikey =
                CompileKey { incremental: true, ..self.degraded_key(config, op, plan, false) };
            let repaired = match compile_cache::lookup(&ikey) {
                Some(hit) => Some(hit),
                None => self
                    .cache
                    .get(&op)
                    .cloned()
                    .or_else(|| compile_cache::lookup(&self.compile_key(config, op)))
                    .and_then(|healthy| self.try_repair_loops(config, op, &mask, &healthy))
                    .map(|loops| compile_cache::publish(ikey, loops)),
            };
            if let Some(loops) = repaired {
                let ii_inflation = CompileService::ii_inflation(healthy_ii, &loops);
                return Ok(DegradedCompile {
                    loops,
                    fallback: FallbackLevel::Incremental,
                    ii_inflation,
                    alive_tiles: alive,
                });
            }
        }
        // rung 2: full re-map around the faults on the engine's own fabric
        let key = self.degraded_key(config, op, plan, false);
        let primary = match compile_cache::lookup(&key) {
            Some(hit) => Ok(hit),
            None => self
                .compile_one(config, op, &self.spec, &mask, deadline)
                .map(|loops| compile_cache::publish(key, loops)),
        };
        let primary_err = match primary {
            Ok(loops) => {
                let ii_inflation = CompileService::ii_inflation(healthy_ii, &loops);
                return Ok(DegradedCompile {
                    loops,
                    fallback: FallbackLevel::Remapped,
                    ii_inflation,
                    alive_tiles: alive,
                });
            }
            Err(e) => e,
        };
        // rung 3: last-known-good mapping — legal only while the fabric is
        // intact (a healthy mapping may use any tile or link). The engine's
        // local view survives process-cache clears, so a deadline miss on
        // re-validation still serves.
        if plan.fabric_intact() {
            if let Some(hit) = self
                .cache
                .get(&op)
                .cloned()
                .or_else(|| compile_cache::lookup(&self.compile_key(config, op)))
            {
                return Ok(DegradedCompile {
                    loops: hit,
                    fallback: FallbackLevel::Cached,
                    ii_inflation: 1.0,
                    alive_tiles: alive,
                });
            }
        }
        // rung 4: the all-universal fallback fabric, same fault set
        let uspec = CgraSpec::universal(config.cgra_rows, config.cgra_cols);
        let umask = ResourceMask::degraded(
            &uspec,
            plan.dead_tiles.iter().copied(),
            plan.dead_links.iter().copied(),
        );
        let ukey = self.degraded_key(config, op, plan, true);
        let fallback = match compile_cache::lookup(&ukey) {
            Some(hit) => Ok(hit),
            None => self
                .compile_one(config, op, &uspec, &umask, deadline)
                .map(|loops| compile_cache::publish(ukey, loops)),
        };
        match fallback {
            Ok(loops) => {
                let ii_inflation = CompileService::ii_inflation(healthy_ii, &loops);
                Ok(DegradedCompile {
                    loops,
                    fallback: FallbackLevel::Universal,
                    ii_inflation,
                    alive_tiles: umask.alive_count(),
                })
            }
            // rung 5: reject, with the informative (own-fabric) diagnosis
            Err(_) => Err(primary_err),
        }
    }

    fn ii_inflation(healthy_ii: Option<u64>, loops: &[CompiledLoop]) -> f64 {
        let degraded: u64 = loops.iter().map(|l| l.mapping.ii as u64).sum();
        match healthy_ii {
            Some(h) if h > 0 => degraded as f64 / h as f64,
            _ => 1.0,
        }
    }

    /// The process-wide cache key for this configuration's compilation of
    /// `op`: everything the compile kernel reads. `buffer_kb` and the
    /// ablation knobs are absent because mapping never sees them. The
    /// `universal` flag mirrors the config's fabric flavor — a 4×4
    /// universal-fabric engine must never alias a 4×4 heterogeneous one.
    fn compile_key(&self, config: &EngineConfig, op: NonlinearOp) -> CompileKey {
        CompileKey {
            op,
            cgra_rows: config.cgra_rows,
            cgra_cols: config.cgra_cols,
            format: config.format,
            taylor_terms: config.taylor_terms,
            unroll_candidates: config.unroll_candidates.clone(),
            seed: config.seed,
            dead_tiles: Vec::new(),
            dead_links: Vec::new(),
            universal: config.fabric == FabricKind::Universal,
            incremental: false,
        }
    }

    /// The cache key for a degraded compile: the healthy key plus the exact
    /// fault set and fallback-fabric flag. On a universal-base engine the
    /// healthy key already carries `universal: true`, and the rung-4
    /// fallback fabric coincides with the engine's own — either way the key
    /// names the fabric the mapping was actually placed on.
    fn degraded_key(
        &self,
        config: &EngineConfig,
        op: NonlinearOp,
        plan: &FaultPlan,
        universal: bool,
    ) -> CompileKey {
        let healthy = self.compile_key(config, op);
        CompileKey {
            dead_tiles: plan.dead_tiles.iter().copied().collect(),
            dead_links: plan.dead_links.iter().copied().collect(),
            universal: universal || healthy.universal,
            ..healthy
        }
    }

    /// The compile kernel shared by the healthy and degraded paths, batched:
    /// per kernel loop of every op, picks the unroll factor minimizing
    /// per-element II among the candidates that map on `spec` restricted to
    /// `mask` — exactly the serial per-op semantics, but with the **entire**
    /// `(op × loop × unroll × II × attempt)` portfolio submitted as one flat
    /// [`try_parallel_find_first_grouped`](picachu_runtime) pass. One group
    /// per `(op, loop, unroll)` candidate; each group independently keeps
    /// its lowest-index (= lowest-II, earliest-attempt) success and
    /// early-kills the rest of its cells, so the result is bit-identical to
    /// the serial scan at any thread count. Because the structure is flat —
    /// no `parallel_map` over ops wrapping a `find_first` over cells — the
    /// modulo-scheduling search parallelizes even on the cold path, which
    /// the old nested shape silently serialized.
    ///
    /// Returns one `Result` per op, in `ops` order: per-op failures (no
    /// unroll candidate mapped some loop) are values, so one unmappable op
    /// doesn't discard its siblings' work.
    ///
    /// # Errors
    /// The outer `Err` is reserved for a panicking search worker.
    fn compile_batch(
        &self,
        config: &EngineConfig,
        ops: &[NonlinearOp],
        spec: &CgraSpec,
        mask: &ResourceMask,
        deadline: Option<Duration>,
    ) -> Result<Vec<Result<Vec<CompiledLoop>, PicachuError>>, PicachuError> {
        /// One viable `(op, loop, unroll)` candidate: a lowering with its
        /// prepared portfolio grid, one group of the flat pass.
        struct Cand {
            op: NonlinearOp,
            label: String,
            dfg: Dfg,
            grid: SearchGrid,
        }
        /// Per-unroll outcome slot of one kernel loop, in candidate order.
        enum Slot {
            /// Index into the candidate (= group) vector.
            Viable(usize),
            /// Failed before the search started (no capable tile).
            Dead(MapError),
        }
        struct LoopSlots {
            label: String,
            kind: LoopKind,
            slots: Vec<(usize, Slot)>, // (uf, outcome)
        }

        let vf = config.format.vector_factor();
        let mut cands: Vec<Cand> = Vec::new();
        // per op, per loop: the uf-ordered outcome slots
        let mut plan: Vec<Vec<LoopSlots>> = Vec::with_capacity(ops.len());
        for &op in ops {
            let kernel = kernel_for(op, config.taylor_terms);
            let mut op_loops = Vec::with_capacity(kernel.loops.len());
            for (i, l) in kernel.loops.iter().enumerate() {
                let kind = match l.class {
                    klib::LoopClass::Reduction => LoopKind::Reduction,
                    klib::LoopClass::ElementWise => LoopKind::ElementWise,
                };
                // reductions vectorize with per-lane partial accumulators
                // (the vector φ holds four lane partials; the cross-lane
                // combine runs once per channel and is negligible), so every
                // loop gets the format's vector factor.
                let mut slots = Vec::with_capacity(config.unroll_candidates.len());
                for &uf in &config.unroll_candidates {
                    let dfg = self.lowered_dfg(config, op, i, uf, vf);
                    let seed = CompileService::loop_seed(config, i);
                    let slot = match SearchGrid::prepare(&dfg, spec, mask, seed, deadline) {
                        Ok(grid) => {
                            cands.push(Cand { op, label: l.label.clone(), dfg, grid });
                            Slot::Viable(cands.len() - 1)
                        }
                        Err(e) => Slot::Dead(e),
                    };
                    slots.push((uf, slot));
                }
                op_loops.push(LoopSlots { label: l.label.clone(), kind, slots });
            }
            plan.push(op_loops);
        }

        // the flat pass: group g = candidate g, cell i = grid cell i
        let group_sizes: Vec<usize> = cands.iter().map(|c| c.grid.grid_len()).collect();
        let mut found =
            picachu_runtime::try_parallel_find_first_grouped(&group_sizes, |g, i| {
                let c = &cands[g];
                c.grid.eval(&c.dfg, spec, mask, i)
            })
            .map_err(|wp| {
                // identify the candidate owning the panicking flat cell
                let mut rest = wp.index;
                let mut g = 0;
                for (k, &sz) in group_sizes.iter().enumerate() {
                    if rest < sz {
                        g = k;
                        break;
                    }
                    rest -= sz;
                }
                PicachuError::Compile {
                    op: cands[g].op,
                    label: cands[g].label.clone(),
                    source: MapError::Worker { index: wp.index, message: wp.message },
                }
            })?;

        // assemble per-op results, replicating the serial selection exactly:
        // uf-order iteration, strict `<` on per-element II (earlier uf wins
        // ties), last failing uf's error reported when nothing maps
        let mut out = Vec::with_capacity(ops.len());
        for (&op, op_loops) in ops.iter().zip(plan) {
            let mut compiled: Result<Vec<CompiledLoop>, PicachuError> = Ok(Vec::new());
            for lc in op_loops {
                let mut best: Option<CompiledLoop> = None;
                let mut last_err = MapError::EmptyDfg;
                for (uf, slot) in lc.slots {
                    let mapped = match slot {
                        Slot::Viable(ci) => {
                            let c = &cands[ci];
                            c.grid.resolve(&c.dfg, spec, mask, found[ci].take())
                        }
                        Slot::Dead(e) => Err(e),
                    };
                    match mapped {
                        Ok(mapping) => {
                            let per_elem = mapping.ii as f64 / (uf * vf) as f64;
                            let better = match &best {
                                None => true,
                                Some(b) => {
                                    per_elem
                                        < b.mapping.ii as f64 / b.elements_per_ii() as f64
                                }
                            };
                            if better {
                                best = Some(CompiledLoop {
                                    label: lc.label.clone(),
                                    kind: lc.kind,
                                    mapping,
                                    uf,
                                    vf,
                                });
                            }
                        }
                        Err(e) => last_err = e,
                    }
                }
                match best {
                    Some(b) => {
                        if let Ok(v) = &mut compiled {
                            v.push(b);
                        }
                    }
                    None => {
                        compiled =
                            Err(PicachuError::Compile { op, label: lc.label, source: last_err });
                        break;
                    }
                }
            }
            out.push(compiled);
        }
        Ok(out)
    }

    /// [`CompileService::compile_batch`] for a single op, flattening the
    /// outer (worker-panic) and per-op error layers.
    fn compile_one(
        &self,
        config: &EngineConfig,
        op: NonlinearOp,
        spec: &CgraSpec,
        mask: &ResourceMask,
        deadline: Option<Duration>,
    ) -> Result<Vec<CompiledLoop>, PicachuError> {
        let mut results =
            self.compile_batch(config, std::slice::from_ref(&op), spec, mask, deadline)?;
        match results.pop() {
            Some(r) => r,
            None => Err(PicachuError::Compile {
                op,
                label: String::new(),
                source: MapError::Internal("compile batch returned no result"),
            }),
        }
    }

    /// Attempts an incremental repair of every loop of `op`'s cached healthy
    /// compile against the degraded `mask`: each loop keeps its II and its
    /// undisturbed placements ([`repair_mapping`]). All-or-nothing per op —
    /// if any loop resists repair at its healthy II, the op falls through to
    /// the full re-map rung rather than mixing repaired and re-mapped loops.
    fn try_repair_loops(
        &self,
        config: &EngineConfig,
        op: NonlinearOp,
        mask: &ResourceMask,
        healthy: &[CompiledLoop],
    ) -> Option<Vec<CompiledLoop>> {
        let mut out = Vec::with_capacity(healthy.len());
        for (i, l) in healthy.iter().enumerate() {
            let dfg = self.lowered_dfg(config, op, i, l.uf, l.vf);
            let seed = CompileService::loop_seed(config, i);
            let mapping = repair_mapping(&dfg, &self.spec, seed, mask, &l.mapping)?;
            out.push(CompiledLoop { mapping, ..l.clone() });
        }
        Some(out)
    }

    /// Reconstructs the exact lowered DFG the mapper saw for loop
    /// `loop_idx` of `op`: the kernel loop body after unrolling, pattern
    /// fusion and (when `vf > 1`) lane vectorization. The differential
    /// oracle replays this DFG on the cycle-level simulator against the
    /// analytical accounting; the compile kernel goes through the same
    /// method, so the two paths cannot drift.
    pub fn lowered_dfg(
        &self,
        config: &EngineConfig,
        op: NonlinearOp,
        loop_idx: usize,
        uf: usize,
        vf: usize,
    ) -> picachu_ir::dfg::Dfg {
        let kernel = kernel_for(op, config.taylor_terms);
        let mut dfg = fuse_patterns(&unroll(&kernel.loops[loop_idx].dfg, uf));
        if vf > 1 {
            dfg = vectorize(&dfg, vf).dfg;
        }
        dfg
    }

    /// The mapper seed used for loop `loop_idx` (derived from the config
    /// seed so that sibling loops explore independent placements).
    pub fn loop_seed(config: &EngineConfig, loop_idx: usize) -> u64 {
        config.seed ^ (loop_idx as u64) << 8
    }
}

/// Maps an operation to its kernel (public so the differential oracle can
/// interpret the same loop bodies the engine compiles).
pub fn kernel_for(op: NonlinearOp, terms: usize) -> klib::Kernel {
    match op {
        NonlinearOp::Softmax => klib::softmax_kernel(terms),
        NonlinearOp::Relu => klib::relu_kernel(),
        NonlinearOp::Gelu => klib::gelu_kernel(terms),
        NonlinearOp::Geglu => klib::geglu_kernel(terms),
        NonlinearOp::Silu => klib::silu_kernel(terms),
        NonlinearOp::Swiglu => klib::swiglu_kernel(terms),
        NonlinearOp::LayerNorm => klib::layernorm_kernel(),
        NonlinearOp::RmsNorm => klib::rmsnorm_kernel(),
        NonlinearOp::Rope => klib::rope_kernel(terms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> (CompileService, EngineConfig) {
        let config = EngineConfig::default();
        (CompileService::new(CgraSpec::picachu(config.cgra_rows, config.cgra_cols)), config)
    }

    #[test]
    fn warm_is_idempotent_and_matches_serial_compile() {
        let (mut warm, config) = service();
        warm.warm(&config, &[NonlinearOp::Gelu, NonlinearOp::Gelu, NonlinearOp::Softmax])
            .expect("healthy warm");
        let (mut cold, _) = service();
        let serial = cold.try_compile_op(&config, NonlinearOp::Softmax).expect("compiles");
        let warmed = warm.loops(NonlinearOp::Softmax);
        assert_eq!(serial.len(), warmed.len());
        for (a, b) in serial.iter().zip(warmed) {
            assert_eq!(a.mapping.ii, b.mapping.ii, "{}: warm must equal serial", a.label);
            assert_eq!((a.uf, a.vf), (b.uf, b.vf));
        }
        // second warm is a no-op
        warm.warm(&config, &[NonlinearOp::Softmax]).expect("idempotent");
    }

    #[test]
    fn loop_seed_varies_by_loop_index() {
        let config = EngineConfig::default();
        assert_ne!(CompileService::loop_seed(&config, 0), CompileService::loop_seed(&config, 1));
    }

    #[test]
    fn degraded_compile_takes_the_incremental_rung() {
        // a seed unique to this test keeps the shared process cache hermetic
        // an 8×8 fabric: at paper-scale 4×4 the kernels map at their
        // resource-bound minimum II, so losing a tile usually makes the
        // retained II infeasible and the repair rung correctly passes; a
        // bigger fabric leaves the slack incremental repair exists for
        let config = EngineConfig {
            seed: 0x12C0_0001,
            cgra_rows: 8,
            cgra_cols: 8,
            ..EngineConfig::default()
        };
        let mut svc =
            CompileService::new(CgraSpec::picachu(config.cgra_rows, config.cgra_cols));
        let mut repaired_any = false;
        for op in [NonlinearOp::Relu, NonlinearOp::Silu, NonlinearOp::Softmax] {
            let healthy = svc.try_compile_op(&config, op).expect("healthy compile");
            // kill the tile hosting the first node of the first loop, so the
            // healthy mapping is genuinely disturbed
            let dead = healthy[0].mapping.placements[0].tile;
            let plan = picachu_faults::FaultPlan::dead_tile(dead);
            let dc = svc.compile_op_degraded(&config, op, &plan).expect("degraded compile");
            if dc.fallback != FallbackLevel::Incremental {
                continue; // repair legitimately gave up; the ladder moved on
            }
            repaired_any = true;
            for (h, d) in healthy.iter().zip(dc.loops.iter()) {
                assert_eq!(h.mapping.ii, d.mapping.ii, "{}: repair must retain the II", d.label);
                assert_eq!((h.uf, h.vf), (d.uf, d.vf));
            }
            for l in dc.loops.iter() {
                for p in &l.mapping.placements {
                    assert_ne!(p.tile, dead, "{}: node left on the dead tile", l.label);
                }
            }
            // the repaired entry is cached under its own (incremental) key:
            // a repeat request serves it without touching the healthy rungs
            let again = svc.compile_op_degraded(&config, op, &plan).expect("cached repeat");
            assert_eq!(again.fallback, FallbackLevel::Incremental);
            assert_eq!(again.loops.len(), dc.loops.len());
        }
        assert!(repaired_any, "no op took the incremental rung");
    }

    #[test]
    fn incremental_and_full_remap_entries_never_alias() {
        let config = EngineConfig { seed: 0x12C0_0002, ..EngineConfig::default() };
        let svc = CompileService::new(CgraSpec::picachu(config.cgra_rows, config.cgra_cols));
        let plan = picachu_faults::FaultPlan::dead_tile(3);
        let full = svc.degraded_key(&config, NonlinearOp::Relu, &plan, false);
        let inc = CompileKey { incremental: true, ..full.clone() };
        assert_ne!(full, inc);
    }
}
