//! Stage 1 — the compile service.
//!
//! Turns nonlinear operations into CGRA mappings: builds the kernel, then
//! per loop picks the unroll factor minimizing the per-element II (and the
//! INT16 vector factor when the format selects it). All compilation flows
//! through the process-wide [`compile_cache`], with an engine-local view on
//! top so the hot path never takes the cache lock twice for the same op.
//! Under faults the service walks the DESIGN §7 degradation ladder:
//! re-map → cached healthy mapping → universal-fabric re-map → reject.

use crate::compile_cache::{self, CompileKey};
use crate::engine::EngineConfig;
use crate::error::PicachuError;
use picachu_compiler::arch::CgraSpec;
use picachu_compiler::mapper::{map_dfg_with, MapError, Mapping, ResourceMask};
use picachu_compiler::transform::{fuse_patterns, unroll, vectorize};
use picachu_faults::FaultPlan;
use picachu_ir::kernels as klib;
use picachu_nonlinear::{LoopKind, NonlinearOp};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// How far down the degradation ladder a faulted compile had to go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackLevel {
    /// The kernel re-mapped around the faults on the engine's own fabric.
    Remapped,
    /// Re-mapping failed (typically a deadline) but the fabric is intact, so
    /// the cached healthy mapping is served. Never used on a degraded
    /// fabric: a healthy mapping may place work on dead resources.
    Cached,
    /// The kernel only mapped on the all-universal fallback fabric (every PE
    /// supports every opcode — lower ResMII pressure around dead tiles).
    Universal,
}

impl fmt::Display for FallbackLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallbackLevel::Remapped => write!(f, "re-mapped"),
            FallbackLevel::Cached => write!(f, "cached fallback"),
            FallbackLevel::Universal => write!(f, "universal-fabric fallback"),
        }
    }
}

/// Result of compiling an op for a degraded fabric: the loops plus how
/// degraded the service is.
#[derive(Debug, Clone)]
pub struct DegradedCompile {
    /// The compiled loops (from the process cache when warm).
    pub loops: Arc<Vec<CompiledLoop>>,
    /// Which rung of the degradation ladder produced them.
    pub fallback: FallbackLevel,
    /// Σ degraded II / Σ healthy II across the op's loops — reported, not
    /// asserted (detours usually inflate II, but a smaller live portfolio
    /// can occasionally luck into a better placement). `1.0` when no
    /// healthy baseline exists to compare against.
    pub ii_inflation: f64,
    /// Alive PEs on the fabric the loops run on.
    pub alive_tiles: usize,
}

/// One compiled kernel loop: its mapping plus the unroll/vector factors.
#[derive(Debug, Clone)]
pub struct CompiledLoop {
    /// Loop label (e.g. `"softmax(2)"`).
    pub label: String,
    /// Reduction or element-wise.
    pub kind: LoopKind,
    /// The chosen mapping.
    pub mapping: Mapping,
    /// Unroll factor.
    pub uf: usize,
    /// Vector factor (4 for INT16, else 1).
    pub vf: usize,
}

impl CompiledLoop {
    /// Elements produced per initiation interval.
    pub fn elements_per_ii(&self) -> usize {
        self.uf * self.vf
    }

    /// Cycles to process `elements` elements in steady state.
    pub fn cycles(&self, elements: u64) -> u64 {
        let iters = elements.div_ceil(self.elements_per_ii() as u64);
        self.mapping.cycles_for(iters)
    }
}

/// The compile stage: owns the fabric specification and the engine-local
/// view of the process-wide compile cache.
#[derive(Debug)]
pub struct CompileService {
    spec: CgraSpec,
    /// Engine-local view of the process-wide [`compile_cache`]: one lookup
    /// per op after the first, no lock traffic on the hot path. `pub(crate)`
    /// so the engine can shadow it with degraded mappings during a faulted
    /// dispatch (and tests can transplant warm views).
    pub(crate) cache: HashMap<NonlinearOp, Arc<Vec<CompiledLoop>>>,
}

impl CompileService {
    /// A service compiling onto `spec` (kernels compile lazily on first use).
    pub fn new(spec: CgraSpec) -> CompileService {
        CompileService { spec, cache: HashMap::new() }
    }

    /// The CGRA fabric specification in use.
    pub fn spec(&self) -> &CgraSpec {
        &self.spec
    }

    /// The locally-cached loops for `op`.
    ///
    /// # Panics
    /// Panics if `op` was never compiled through this service — callers go
    /// through [`CompileService::try_compile_op`] first.
    pub(crate) fn loops(&self, op: NonlinearOp) -> &[CompiledLoop] {
        &self.cache[&op]
    }

    /// Read-only cache probe: the locally-cached loops for `op`, falling
    /// back to the process-wide [`compile_cache`] entry under this config's
    /// key. `None` when the kernel has never been compiled anywhere in the
    /// process — the cold case the engine's capacity hint
    /// ([`Accelerator::estimate_trace`](picachu_backend::Accelerator))
    /// estimates analytically instead.
    pub(crate) fn peek(
        &self,
        config: &EngineConfig,
        op: NonlinearOp,
    ) -> Option<Arc<Vec<CompiledLoop>>> {
        if let Some(hit) = self.cache.get(&op) {
            return Some(hit.clone());
        }
        compile_cache::lookup(&self.compile_key(config, op))
    }

    /// The non-panicking compile path: compiles (or returns cached) loops,
    /// reporting failure as a typed error instead of aborting.
    ///
    /// # Errors
    /// [`PicachuError::Compile`] when some kernel loop fails to map at every
    /// candidate unroll factor.
    pub fn try_compile_op(
        &mut self,
        config: &EngineConfig,
        op: NonlinearOp,
    ) -> Result<Arc<Vec<CompiledLoop>>, PicachuError> {
        if let Some(hit) = self.cache.get(&op) {
            return Ok(hit.clone());
        }
        let key = self.compile_key(config, op);
        let compiled = match compile_cache::lookup(&key) {
            Some(hit) => hit,
            None => {
                let full = ResourceMask::full(&self.spec);
                let loops = self.try_compile_with(config, op, &self.spec, &full, None)?;
                compile_cache::publish(key, loops)
            }
        };
        self.cache.insert(op, compiled.clone());
        Ok(compiled)
    }

    /// Compiles every distinct operation in `ops`, mapping the true cache
    /// misses **in parallel** on the [`picachu_runtime`] pool. Mapping is
    /// deterministic per `(config, op)` and the misses are independent, so
    /// the cache ends bit-identical to a serial warm — only wall-clock
    /// changes. The `Accelerator` dispatch path calls this before its
    /// serial trace walk so a cold engine doesn't compile on the walk.
    ///
    /// # Errors
    /// [`PicachuError::Compile`] for the first (in `ops` order) operation
    /// whose kernel fails to map.
    pub fn warm(
        &mut self,
        config: &EngineConfig,
        ops: &[NonlinearOp],
    ) -> Result<(), PicachuError> {
        let mut misses: Vec<NonlinearOp> = Vec::new();
        for &op in ops {
            if self.cache.contains_key(&op) || misses.contains(&op) {
                continue;
            }
            // process-cache hits are cheap lookups; only real mapping work
            // goes to the pool
            if let Some(hit) = compile_cache::lookup(&self.compile_key(config, op)) {
                self.cache.insert(op, hit);
            } else {
                misses.push(op);
            }
        }
        if misses.is_empty() {
            return Ok(());
        }
        let full = ResourceMask::full(&self.spec);
        let compiled = picachu_runtime::try_parallel_map(&misses, |_, &op| {
            self.try_compile_with(config, op, &self.spec, &full, None)
        })
        .map_err(|wp| PicachuError::Compile {
            op: misses[wp.index.min(misses.len() - 1)],
            label: "warm".to_string(),
            source: MapError::EmptyDfg,
        })?;
        for (&op, loops) in misses.iter().zip(compiled) {
            let arc = compile_cache::publish(self.compile_key(config, op), loops?);
            self.cache.insert(op, arc);
        }
        Ok(())
    }

    /// Compiles `op` for a faulted fabric, walking the degradation ladder
    /// (DESIGN §7): **re-map** around the dead resources on the engine's own
    /// fabric → **cached** healthy mapping (only when the fabric is intact
    /// and the failure was a deadline, never on real topology faults) →
    /// **universal-fabric** re-map (every PE supports every opcode) →
    /// **reject** with the primary error. Each rung is deadline-bounded by
    /// [`EngineConfig::compile_deadline_ms`] and every successful compile is
    /// published to the process cache under its exact fault set, so repeated
    /// requests against the same degraded part hit the cache.
    ///
    /// # Errors
    /// [`PicachuError::Compile`] when every rung fails — the error carries
    /// the mapper's diagnosis from the first (re-map) rung, which is the
    /// informative one.
    pub fn compile_op_degraded(
        &mut self,
        config: &EngineConfig,
        op: NonlinearOp,
        plan: &FaultPlan,
    ) -> Result<DegradedCompile, PicachuError> {
        let deadline = config.compile_deadline_ms.map(Duration::from_millis);
        let mask = ResourceMask::degraded(
            &self.spec,
            plan.dead_tiles.iter().copied(),
            plan.dead_links.iter().copied(),
        );
        let alive = mask.alive_count();
        // intact fabric, no deadline pressure: the healthy compile *is* the
        // degraded compile, bit-identically
        if plan.fabric_intact() && deadline.is_none() {
            let loops = self.try_compile_op(config, op)?;
            return Ok(DegradedCompile {
                loops,
                fallback: FallbackLevel::Remapped,
                ii_inflation: 1.0,
                alive_tiles: alive,
            });
        }
        // healthy baseline for II-inflation reporting — cache-only, so the
        // deadline-bounded degraded path never grows an unbounded healthy
        // compile (inflation reads 1.0 until something compiled healthy)
        let healthy_ii: Option<u64> = self
            .cache
            .get(&op)
            .cloned()
            .or_else(|| compile_cache::lookup(&self.compile_key(config, op)))
            .map(|loops| loops.iter().map(|l| l.mapping.ii as u64).sum());
        // rung 1: re-map around the faults on the engine's own fabric
        let key = self.degraded_key(config, op, plan, false);
        let primary = match compile_cache::lookup(&key) {
            Some(hit) => Ok(hit),
            None => self
                .try_compile_with(config, op, &self.spec, &mask, deadline)
                .map(|loops| compile_cache::publish(key, loops)),
        };
        let primary_err = match primary {
            Ok(loops) => {
                let ii_inflation = CompileService::ii_inflation(healthy_ii, &loops);
                return Ok(DegradedCompile {
                    loops,
                    fallback: FallbackLevel::Remapped,
                    ii_inflation,
                    alive_tiles: alive,
                });
            }
            Err(e) => e,
        };
        // rung 2: last-known-good mapping — legal only while the fabric is
        // intact (a healthy mapping may use any tile or link). The engine's
        // local view survives process-cache clears, so a deadline miss on
        // re-validation still serves.
        if plan.fabric_intact() {
            if let Some(hit) = self
                .cache
                .get(&op)
                .cloned()
                .or_else(|| compile_cache::lookup(&self.compile_key(config, op)))
            {
                return Ok(DegradedCompile {
                    loops: hit,
                    fallback: FallbackLevel::Cached,
                    ii_inflation: 1.0,
                    alive_tiles: alive,
                });
            }
        }
        // rung 3: the all-universal fallback fabric, same fault set
        let uspec = CgraSpec::universal(config.cgra_rows, config.cgra_cols);
        let umask = ResourceMask::degraded(
            &uspec,
            plan.dead_tiles.iter().copied(),
            plan.dead_links.iter().copied(),
        );
        let ukey = self.degraded_key(config, op, plan, true);
        let fallback = match compile_cache::lookup(&ukey) {
            Some(hit) => Ok(hit),
            None => self
                .try_compile_with(config, op, &uspec, &umask, deadline)
                .map(|loops| compile_cache::publish(ukey, loops)),
        };
        match fallback {
            Ok(loops) => {
                let ii_inflation = CompileService::ii_inflation(healthy_ii, &loops);
                Ok(DegradedCompile {
                    loops,
                    fallback: FallbackLevel::Universal,
                    ii_inflation,
                    alive_tiles: umask.alive_count(),
                })
            }
            // rung 4: reject, with the informative (own-fabric) diagnosis
            Err(_) => Err(primary_err),
        }
    }

    fn ii_inflation(healthy_ii: Option<u64>, loops: &[CompiledLoop]) -> f64 {
        let degraded: u64 = loops.iter().map(|l| l.mapping.ii as u64).sum();
        match healthy_ii {
            Some(h) if h > 0 => degraded as f64 / h as f64,
            _ => 1.0,
        }
    }

    /// The process-wide cache key for this configuration's compilation of
    /// `op`: everything the compile kernel reads. `buffer_kb` and the
    /// ablation knobs are absent because mapping never sees them.
    fn compile_key(&self, config: &EngineConfig, op: NonlinearOp) -> CompileKey {
        CompileKey {
            op,
            cgra_rows: config.cgra_rows,
            cgra_cols: config.cgra_cols,
            format: config.format,
            taylor_terms: config.taylor_terms,
            unroll_candidates: config.unroll_candidates.clone(),
            seed: config.seed,
            dead_tiles: Vec::new(),
            dead_links: Vec::new(),
            universal: false,
        }
    }

    /// The cache key for a degraded compile: the healthy key plus the exact
    /// fault set and fallback-fabric flag.
    fn degraded_key(
        &self,
        config: &EngineConfig,
        op: NonlinearOp,
        plan: &FaultPlan,
        universal: bool,
    ) -> CompileKey {
        CompileKey {
            dead_tiles: plan.dead_tiles.iter().copied().collect(),
            dead_links: plan.dead_links.iter().copied().collect(),
            universal,
            ..self.compile_key(config, op)
        }
    }

    /// The compile kernel shared by the healthy and degraded paths: per
    /// kernel loop, picks the unroll factor minimizing per-element II among
    /// the candidates that map on `spec` restricted to `mask`. With a full
    /// mask, no deadline and the engine's own spec this is bit-identical to
    /// the historical healthy compile.
    fn try_compile_with(
        &self,
        config: &EngineConfig,
        op: NonlinearOp,
        spec: &CgraSpec,
        mask: &ResourceMask,
        deadline: Option<Duration>,
    ) -> Result<Vec<CompiledLoop>, PicachuError> {
        let kernel = kernel_for(op, config.taylor_terms);
        let vf_global = config.format.vector_factor();
        let mut out = Vec::new();
        for (i, l) in kernel.loops.iter().enumerate() {
            let kind = match l.class {
                klib::LoopClass::Reduction => LoopKind::Reduction,
                klib::LoopClass::ElementWise => LoopKind::ElementWise,
            };
            // reductions vectorize with per-lane partial accumulators (the
            // vector φ holds four lane partials; the cross-lane combine runs
            // once per channel and is negligible), so every loop gets the
            // format's vector factor.
            let vf = vf_global;
            let mut best: Option<CompiledLoop> = None;
            let mut last_err = MapError::EmptyDfg;
            for &uf in &config.unroll_candidates {
                let dfg = self.lowered_dfg(config, op, i, uf, vf);
                let mapping =
                    match map_dfg_with(&dfg, spec, CompileService::loop_seed(config, i), mask, deadline) {
                        Ok(m) => m,
                        Err(e) => {
                            last_err = e;
                            continue;
                        }
                    };
                let per_elem = mapping.ii as f64 / (uf * vf) as f64;
                let better = match &best {
                    None => true,
                    Some(b) => per_elem < b.mapping.ii as f64 / b.elements_per_ii() as f64,
                };
                if better {
                    best = Some(CompiledLoop { label: l.label.clone(), kind, mapping, uf, vf });
                }
            }
            match best {
                Some(b) => out.push(b),
                None => {
                    return Err(PicachuError::Compile {
                        op,
                        label: l.label.clone(),
                        source: last_err,
                    })
                }
            }
        }
        Ok(out)
    }

    /// Reconstructs the exact lowered DFG the mapper saw for loop
    /// `loop_idx` of `op`: the kernel loop body after unrolling, pattern
    /// fusion and (when `vf > 1`) lane vectorization. The differential
    /// oracle replays this DFG on the cycle-level simulator against the
    /// analytical accounting; the compile kernel goes through the same
    /// method, so the two paths cannot drift.
    pub fn lowered_dfg(
        &self,
        config: &EngineConfig,
        op: NonlinearOp,
        loop_idx: usize,
        uf: usize,
        vf: usize,
    ) -> picachu_ir::dfg::Dfg {
        let kernel = kernel_for(op, config.taylor_terms);
        let mut dfg = fuse_patterns(&unroll(&kernel.loops[loop_idx].dfg, uf));
        if vf > 1 {
            dfg = vectorize(&dfg, vf).dfg;
        }
        dfg
    }

    /// The mapper seed used for loop `loop_idx` (derived from the config
    /// seed so that sibling loops explore independent placements).
    pub fn loop_seed(config: &EngineConfig, loop_idx: usize) -> u64 {
        config.seed ^ (loop_idx as u64) << 8
    }
}

/// Maps an operation to its kernel (public so the differential oracle can
/// interpret the same loop bodies the engine compiles).
pub fn kernel_for(op: NonlinearOp, terms: usize) -> klib::Kernel {
    match op {
        NonlinearOp::Softmax => klib::softmax_kernel(terms),
        NonlinearOp::Relu => klib::relu_kernel(),
        NonlinearOp::Gelu => klib::gelu_kernel(terms),
        NonlinearOp::Geglu => klib::geglu_kernel(terms),
        NonlinearOp::Silu => klib::silu_kernel(terms),
        NonlinearOp::Swiglu => klib::swiglu_kernel(terms),
        NonlinearOp::LayerNorm => klib::layernorm_kernel(),
        NonlinearOp::RmsNorm => klib::rmsnorm_kernel(),
        NonlinearOp::Rope => klib::rope_kernel(terms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> (CompileService, EngineConfig) {
        let config = EngineConfig::default();
        (CompileService::new(CgraSpec::picachu(config.cgra_rows, config.cgra_cols)), config)
    }

    #[test]
    fn warm_is_idempotent_and_matches_serial_compile() {
        let (mut warm, config) = service();
        warm.warm(&config, &[NonlinearOp::Gelu, NonlinearOp::Gelu, NonlinearOp::Softmax])
            .expect("healthy warm");
        let (mut cold, _) = service();
        let serial = cold.try_compile_op(&config, NonlinearOp::Softmax).expect("compiles");
        let warmed = warm.loops(NonlinearOp::Softmax);
        assert_eq!(serial.len(), warmed.len());
        for (a, b) in serial.iter().zip(warmed) {
            assert_eq!(a.mapping.ii, b.mapping.ii, "{}: warm must equal serial", a.label);
            assert_eq!((a.uf, a.vf), (b.uf, b.vf));
        }
        // second warm is a no-op
        warm.warm(&config, &[NonlinearOp::Softmax]).expect("idempotent");
    }

    #[test]
    fn loop_seed_varies_by_loop_index() {
        let config = EngineConfig::default();
        assert_ne!(CompileService::loop_seed(&config, 0), CompileService::loop_seed(&config, 1));
    }
}
