//! Stage 3 — the accountant.
//!
//! Rolls a latency breakdown into energy (nJ) and prices the configured
//! silicon (mm²) under the Table 7 cost model. Pure functions of
//! `(config, spec, breakdown)` — the accountant holds no execution state,
//! so energy/area can be recomputed for any breakdown after the fact.

use crate::engine::EngineConfig;
use picachu_backend::Breakdown;
use picachu_cgra::cost::CostModel;
use picachu_compiler::arch::CgraSpec;

/// The accounting stage: the process cost model plus the phase-power
/// weighting the paper's energy numbers use.
#[derive(Debug, Default)]
pub struct Accountant {
    cost: CostModel,
}

impl Accountant {
    /// An accountant over the default 28 nm cost model.
    pub fn new() -> Accountant {
        Accountant::default()
    }

    /// Energy in nJ for an exposed breakdown at 1 GHz: systolic + SRAM power
    /// over GEMM time, CGRA + buffer power over nonlinear time, DMA/glue
    /// over data movement. Fault-service `overhead` cycles are DMA/SRAM
    /// traffic, so they are priced at the data-movement rate.
    ///
    /// The CGRA dynamic-power term uses the paper's nominal 0.7 activity
    /// factor; callers that know the real mapped utilization (the DSE
    /// derives it from the compiled placements) use
    /// [`Accountant::energy_nj_with_cgra_utilization`].
    pub fn energy_nj(&self, config: &EngineConfig, spec: &CgraSpec, b: &Breakdown) -> f64 {
        self.energy_nj_with_cgra_utilization(config, spec, b, 0.7)
    }

    /// [`Accountant::energy_nj`] with an explicit CGRA activity factor —
    /// the fraction of compute slots the compiled mappings actually occupy
    /// (`placements / (tiles × II)`), not a magic constant.
    pub fn energy_nj_with_cgra_utilization(
        &self,
        config: &EngineConfig,
        spec: &CgraSpec,
        b: &Breakdown,
        cgra_utilization: f64,
    ) -> f64 {
        let cgra = self.cost.cgra_cost(spec, cgra_utilization);
        let sys = self
            .cost
            .systolic_cost(config.systolic_rows, config.systolic_cols, 0.8);
        let sys_sram = Accountant::systolic_sram_kb(config.systolic_rows, config.systolic_cols);
        let sram = self.cost.sram_cost(sys_sram + config.buffer_kb as f64);
        let glue = self.cost.glue_cost();
        self.cost.energy_nj(sys.power_mw + sram.power_mw, b.gemm as u64)
            + self.cost.energy_nj(cgra.power_mw + sram.power_mw * 0.3, b.nonlinear as u64)
            + self.cost.energy_nj(
                glue.power_mw + sram.power_mw * 0.2,
                (b.data_movement + b.overhead) as u64,
            )
    }

    /// Total silicon area of the configured system in mm²: CGRA fabric +
    /// systolic array + the memory system (systolic SRAMs + Shared Buffer)
    /// + DMA/glue — the Table 7 area roll-up.
    pub fn area_mm2(&self, config: &EngineConfig, spec: &CgraSpec) -> f64 {
        // area is utilization-independent (activity only scales power), so
        // the factor here is irrelevant; 0.0 makes that explicit
        let cgra = self.cost.cgra_cost(spec, 0.0);
        let sys = self
            .cost
            .systolic_cost(config.systolic_rows, config.systolic_cols, 0.8);
        let sys_sram = Accountant::systolic_sram_kb(config.systolic_rows, config.systolic_cols);
        let sram = self.cost.sram_cost(sys_sram + config.buffer_kb as f64);
        let glue = self.cost.glue_cost();
        cgra.area_mm2 + sys.area_mm2 + sram.area_mm2 + glue.area_mm2
    }

    /// Systolic-array SRAM capacity in KB: the input/weight/output SRAMs
    /// scale with the MAC grid, calibrated to Table 7's 225 KB at 32×32
    /// (225 + 40 KB Shared Buffer = the table's 265 KB total).
    pub fn systolic_sram_kb(rows: usize, cols: usize) -> f64 {
        225.0 * (rows * cols) as f64 / (32.0 * 32.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_priced_at_the_data_movement_rate() {
        // moving fault cycles between data_movement and overhead must not
        // change the energy total (the pre-split engine folded them into
        // data_movement)
        let config = EngineConfig::default();
        let spec = CgraSpec::picachu(config.cgra_rows, config.cgra_cols);
        let a = Accountant::new();
        let folded = Breakdown { gemm: 1e6, nonlinear: 1e5, data_movement: 5e4, overhead: 0.0 };
        let split = Breakdown { gemm: 1e6, nonlinear: 1e5, data_movement: 3e4, overhead: 2e4 };
        assert_eq!(a.energy_nj(&config, &spec, &folded), a.energy_nj(&config, &spec, &split));
    }

    #[test]
    fn area_is_positive_and_grows_with_the_array() {
        let small = EngineConfig::default();
        let big = EngineConfig { systolic_rows: 64, systolic_cols: 64, ..EngineConfig::default() };
        let spec = CgraSpec::picachu(4, 4);
        let a = Accountant::new();
        assert!(a.area_mm2(&small, &spec) > 0.0);
        assert!(a.area_mm2(&big, &spec) > a.area_mm2(&small, &spec));
    }
}
