//! Stage 2 — the dispatcher.
//!
//! Walks an operator trace and applies the §4.2.4 dataflow cases:
//! element-wise ops stream against the producing GEMM (Case 1), reductions
//! round-trip DRAM channel-by-channel under double buffering (Case 2) or
//! stay buffer-resident when they fit (Case 3). Compilation is injected as
//! a closure, so the same walk serves the healthy cache and a
//! fault-degraded shadow cache unchanged.
//!
//! Accounting is exact: cycles accumulate in the integer [`PhaseTotals`]
//! (saturating, like every cycle computation upstream) and convert to the
//! floating-point `Breakdown` exactly once at the stage boundary — the
//! monolithic engine accumulated `u64` cycle counts directly into `f64`
//! fields, which silently rounds past 2⁵³ and made the unit mismatch easy
//! to reintroduce.

use crate::engine::EngineConfig;
use crate::error::PicachuError;
use crate::stages::compile::CompiledLoop;
use picachu_backend::Breakdown;
use picachu_faults::FaultPlan;
use picachu_llm::trace::TraceOp;
use picachu_nonlinear::{NonlinearOp, OpCategory};
use picachu_systolic::{DmaModel, SharedBuffer, SystolicArray};
use std::sync::Arc;

/// Most detected-uncorrectable ECC words the engine re-fetches from DRAM per
/// request before declaring the SRAM unserviceable
/// ([`PicachuError::EccStorm`]). Eight uncorrectable words in one working
/// set is far past any transient-upset rate — at that point the macro is
/// failing, and re-fetching forever would hide it.
pub const ECC_MAX_DETECTED: u64 = 8;

/// Exact per-phase cycle totals, the dispatcher → accountant hand-off.
///
/// All four phases are integer cycle counts at the 1 GHz device clock;
/// [`PhaseTotals::breakdown`] is the single `u64 → f64` conversion point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Systolic-array GEMM cycles.
    pub gemm: u64,
    /// Exposed CGRA nonlinear cycles (after streaming overlap).
    pub nonlinear: u64,
    /// Exposed DMA/buffer cycles of the Case-2 round trips.
    pub data_movement: u64,
    /// Fault-service cycles: ECC scrubs/re-fetches and DMA stall retries.
    /// Zero on every healthy dispatch.
    pub overhead: u64,
}

impl PhaseTotals {
    /// Converts to the reporting `Breakdown` (exact below 2⁵³ cycles/phase).
    pub fn breakdown(self) -> Breakdown {
        Breakdown {
            gemm: self.gemm as f64,
            nonlinear: self.nonlinear as f64,
            data_movement: self.data_movement as f64,
            overhead: self.overhead as f64,
        }
    }

    /// Total cycles across all phases (saturating).
    pub fn total(self) -> u64 {
        self.gemm
            .saturating_add(self.nonlinear)
            .saturating_add(self.data_movement)
            .saturating_add(self.overhead)
    }
}

/// The dispatch stage: owns the substrate models (systolic array, Shared
/// Buffer, DMA) and walks traces over them.
#[derive(Debug)]
pub struct Dispatcher {
    systolic: SystolicArray,
    buffer: SharedBuffer,
    dma: DmaModel,
}

impl Dispatcher {
    /// Builds the substrate models for a configuration.
    pub fn new(config: &EngineConfig) -> Dispatcher {
        Dispatcher {
            systolic: SystolicArray::new(config.systolic_rows, config.systolic_cols),
            buffer: SharedBuffer {
                double_buffered: config.double_buffering,
                ..SharedBuffer::new_kb(config.buffer_kb)
            },
            dma: DmaModel::default(),
        }
    }

    /// The systolic array model in use.
    pub fn systolic(&self) -> &SystolicArray {
        &self.systolic
    }

    /// Executes a trace with the §4.2.4 dataflow cases, returning exact
    /// per-phase cycle totals. `compile` supplies the loops for each
    /// nonlinear op (healthy cache, degraded shadow cache — the walk does
    /// not care).
    pub fn execute_trace(
        &self,
        config: &EngineConfig,
        trace: &[TraceOp],
        compile: &mut dyn FnMut(NonlinearOp) -> Arc<Vec<CompiledLoop>>,
    ) -> PhaseTotals {
        let mut t = PhaseTotals::default();
        let mut pending_gemm: u64 = 0; // cycles of the producing GEMM
        let elem_bytes = config.format.byte_width();
        for op in trace {
            match *op {
                TraceOp::Gemm { m, k, n, count } => {
                    let c = self.systolic.gemm_cycles(m, k, n) * count as u64;
                    t.gemm = t.gemm.saturating_add(c);
                    pending_gemm = c;
                }
                TraceOp::Nonlinear { op, rows, channel } => {
                    let loops = compile(op);
                    let elems = (rows * channel) as u64;
                    let compute: u64 = loops.iter().map(|l| l.cycles(elems)).sum();
                    match op.category() {
                        OpCategory::ElementWise => {
                            // Case 1: stream against the producing GEMM; only
                            // the excess over the producer is exposed.
                            let exposed = if config.streaming {
                                compute.saturating_sub(pending_gemm)
                            } else {
                                compute
                            };
                            t.nonlinear = t.nonlinear.saturating_add(exposed);
                            pending_gemm = 0;
                        }
                        OpCategory::ReductionElementWise => {
                            let channel_bytes = channel * elem_bytes;
                            if op == NonlinearOp::Softmax {
                                // The first (max-reduction) loop overlaps the
                                // scores GEMM and is accounted row-by-row;
                                // the remaining loops are summed per-loop
                                // over the whole tensor. Both terms are
                                // computed directly — never as a
                                // `compute - overlap` difference: per-row
                                // accounting pays the prologue once per row,
                                // so for tall-skinny shapes the overlap term
                                // exceeds the whole-tensor total and the
                                // subtraction would wrap `u64`.
                                let first: u64 =
                                    loops[0].cycles(channel as u64).saturating_mul(rows as u64);
                                let rest: u64 = loops[1..]
                                    .iter()
                                    .map(|l| l.cycles(elems))
                                    .fold(0u64, |acc, c| acc.saturating_add(c));
                                let exposed_first = if config.streaming {
                                    first.saturating_sub(pending_gemm)
                                } else {
                                    first
                                };
                                pending_gemm = 0;
                                if self.buffer.channel_fits(channel, elem_bytes) {
                                    // Case 3: resident until statistics done.
                                    t.nonlinear =
                                        t.nonlinear.saturating_add(exposed_first + rest);
                                } else {
                                    // Case 2 on the remaining loops.
                                    let total = self.buffer.pipelined_cycles(
                                        rows as u64,
                                        channel_bytes,
                                        ((rest as f64) / rows as f64).ceil() as u64,
                                        &self.dma,
                                    );
                                    t.nonlinear =
                                        t.nonlinear.saturating_add(exposed_first + rest);
                                    t.data_movement = t
                                        .data_movement
                                        .saturating_add(total.saturating_sub(rest));
                                }
                            } else if self.buffer.channel_fits(channel, elem_bytes) {
                                // Case 3 (DESIGN §5.5): the channel fits the
                                // working set, so the systolic output stays
                                // resident in the Shared Buffer across the
                                // statistics and apply passes and the result
                                // feeds the next GEMM in place — no DRAM
                                // round trip to expose.
                                t.nonlinear = t.nonlinear.saturating_add(compute);
                            } else {
                                // Case 2: channel exceeds the working set —
                                // chunked two-pass execution (statistics,
                                // then apply), each chunk a DMA round trip
                                // under double buffering.
                                let working = self.buffer.working_bytes().max(1);
                                let chunks =
                                    rows as u64 * (channel_bytes.div_ceil(working)) as u64;
                                let per_chunk =
                                    ((2 * compute) as f64 / chunks as f64).ceil() as u64;
                                let total = self.buffer.pipelined_cycles(
                                    chunks,
                                    working,
                                    per_chunk,
                                    &self.dma,
                                );
                                t.nonlinear = t.nonlinear.saturating_add(2 * compute);
                                t.data_movement = t
                                    .data_movement
                                    .saturating_add(total.saturating_sub(2 * compute));
                            }
                        }
                    }
                }
            }
        }
        t
    }

    /// The fault-service overhead of executing `trace` under `plan`: the
    /// plan's SRAM flips are evaluated as SEC-DED outcomes over the Shared
    /// Buffer (detected-uncorrectable words re-fetch a 64-byte line from
    /// DRAM, up to [`ECC_MAX_DETECTED`]), and transient DMA stalls on the
    /// bulk Case-2 traffic pay the bounded retry ladder. The healthy
    /// breakdown already prices the transfers themselves, so only the
    /// stall/backoff/re-fetch cycles are returned — they land in
    /// [`PhaseTotals::overhead`]. Deterministic in `(config, trace, plan)`.
    ///
    /// # Errors
    /// [`PicachuError::EccStorm`] past the re-fetch budget, or
    /// [`PicachuError::Dma`] when a transfer exhausts its retries.
    pub fn fault_overhead(
        &self,
        config: &EngineConfig,
        trace: &[TraceOp],
        plan: &FaultPlan,
    ) -> Result<u64, PicachuError> {
        // ECC over the Shared Buffer working set
        let words = (config.buffer_kb * 1024 / 8) as u64;
        let ecc = plan.ecc.classify_sram(&plan.sram_flips, words);
        if ecc.detected > ECC_MAX_DETECTED {
            return Err(PicachuError::EccStorm {
                detected: ecc.detected,
                limit: ECC_MAX_DETECTED,
            });
        }
        let mut overhead = ecc.overhead_cycles;
        let mut xfer: u64 = 0;
        for _ in 0..ecc.detected {
            // a detected-uncorrectable word re-fetches one 64-byte DRAM line,
            // itself subject to the transient-stall ladder
            let t = self.dma.transfer_cycles_faulted(64, xfer, &plan.dma)?;
            overhead += t.cycles;
            xfer += 1;
        }
        // transient stalls on the bulk Case-2 DMA traffic: these transfers
        // are already paid for in the healthy breakdown, so only the stall +
        // backoff overhead is added
        for (transfers, bytes) in self.case2_transfers(config, trace) {
            for _ in 0..transfers {
                let t = self.dma.transfer_cycles_faulted(bytes, xfer, &plan.dma)?;
                overhead += t.overhead_cycles;
                xfer += 1;
            }
        }
        Ok(overhead)
    }

    /// The Case-2 DMA transfer schedule of a trace: `(transfers, bytes)` per
    /// chunked reduction op, mirroring the chunk geometry `execute_trace`
    /// hands to [`SharedBuffer::pipelined_cycles`] (each chunk is one fill
    /// plus one drain). Pure geometry — compute never changes the transfer
    /// count.
    pub fn case2_transfers(&self, config: &EngineConfig, trace: &[TraceOp]) -> Vec<(u64, usize)> {
        let elem_bytes = config.format.byte_width();
        let mut out = Vec::new();
        for t in trace {
            let TraceOp::Nonlinear { op, rows, channel } = *t else {
                continue;
            };
            if op.category() != OpCategory::ReductionElementWise
                || self.buffer.channel_fits(channel, elem_bytes)
            {
                continue;
            }
            let channel_bytes = channel * elem_bytes;
            if op == NonlinearOp::Softmax {
                out.push((2 * rows as u64, channel_bytes));
            } else {
                let working = self.buffer.working_bytes().max(1);
                let chunks = rows as u64 * (channel_bytes.div_ceil(working)) as u64;
                out.push((2 * chunks, working));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_totals_convert_exactly_and_saturate() {
        let t = PhaseTotals { gemm: 3, nonlinear: 5, data_movement: 7, overhead: 2 };
        let b = t.breakdown();
        assert_eq!((b.gemm, b.nonlinear, b.data_movement, b.overhead), (3.0, 5.0, 7.0, 2.0));
        assert_eq!(t.total(), 17);
        let max = PhaseTotals { gemm: u64::MAX, nonlinear: 1, ..PhaseTotals::default() };
        assert_eq!(max.total(), u64::MAX, "total must saturate, not wrap");
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let config = EngineConfig::default();
        let d = Dispatcher::new(&config);
        let t = d.execute_trace(&config, &[], &mut |_| unreachable!("no nonlinear ops"));
        assert_eq!(t, PhaseTotals::default());
        assert!(d.case2_transfers(&config, &[]).is_empty());
    }
}
