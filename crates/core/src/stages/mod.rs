//! The staged execution pipeline behind [`crate::engine::PicachuEngine`].
//!
//! The engine used to be one monolith; it is now three stages with explicit
//! hand-offs, each independently testable:
//!
//! 1. [`compile`] — [`CompileService`]: kernel → CGRA mappings, through the
//!    process-wide compile cache and (under faults) the DESIGN §7
//!    degradation ladder. Output: [`CompiledLoop`]s per operation.
//! 2. [`dispatch`] — [`Dispatcher`]: walks an operator trace, applies the
//!    §4.2.4 dataflow cases (streaming overlap, channel-wise double
//!    buffering, buffer residency) and the fault-overhead accounting.
//!    Output: exact integer [`PhaseTotals`] per phase.
//! 3. [`account`] — [`Accountant`]: rolls phase totals into energy (nJ) and
//!    silicon area (mm²) under the Table 7 cost model.
//!
//! The phase-sum invariant (DESIGN §8): the [`PhaseTotals`] the dispatcher
//! hands the accountant convert to exactly the `Breakdown` the monolithic
//! engine produced — the split is observable only through cleaner seams.

pub mod account;
pub mod compile;
pub mod dispatch;

pub use account::Accountant;
pub use compile::{kernel_for, CompileService, CompiledLoop, DegradedCompile, FallbackLevel};
pub use dispatch::{Dispatcher, PhaseTotals, ECC_MAX_DETECTED};
