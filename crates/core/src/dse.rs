//! Multi-objective HW/SW co-design search (the §2.2 CGRA-DSE tradition:
//! OpenCGRA, Aurora, APEX — here applied to the PICACHU configuration
//! knobs, §5.3.5's closing suggestion grown into a real search engine).
//!
//! The search is *joint* over hardware and compiler knobs: fabric geometry
//! and flavor (the heterogeneous PICACHU layout vs. the all-universal
//! routing-free fabric — the NoC/heterogeneity axis [`CgraSpec`] exposes),
//! Shared-Buffer capacity, kernel data format, the compiler's unroll
//! portfolio, and whether the degradation ladder may use incremental repair.
//! Each candidate is scored on four objectives:
//!
//! 1. **latency** — end-to-end cycles for the target model,
//! 2. **energy** — nJ under the Table 7 model, with the CGRA activity
//!    factor derived from the *compiled mappings* (`placements/(tiles×II)`),
//!    not the paper's nominal 0.7,
//! 3. **area** — mm² of the configured silicon,
//! 4. **resilience** — degraded-capacity retention under a fixed set of
//!    [`FaultPlan`]s, scored through the real degradation ladder exactly
//!    like `picachu-serve` prices a faulted shard (`1/ii_inflation`, 0 for
//!    a rejected fabric).
//!
//! Rather than exhausting the (combinatorial) knob grid, [`search`] runs a
//! small seeded generational loop: a population containing the deployed
//! default plus random samples, then mutations of the current Pareto
//! frontier. Every generation evaluates in parallel on the
//! [`picachu_runtime`] pool, and every engine consults the process-wide
//! [`crate::compile_cache`], so candidates sharing a fabric/format share
//! kernel compilations. The result is deterministic in
//! ([`SearchConfig::seed`], model) and independent of the thread count.
//!
//! Frontier extraction is *n*-dimensional Pareto dominance under
//! [`f64::total_cmp`] — a total order, so NaNs, ties and duplicates cannot
//! corrupt the sort or make the frontier thread-dependent; exact objective
//! ties are deduplicated (the frontier is a set of distinct trade-offs).

use crate::engine::{EngineConfig, FabricKind, PicachuEngine};
use picachu_backend::Accelerator;
use picachu_faults::FaultPlan;
use picachu_llm::ModelConfig;
use picachu_nonlinear::NonlinearOp;
use picachu_num::DataFormat;
use picachu_testkit::TestRng;
use std::cmp::Ordering;
use std::collections::HashSet;
use std::fmt;

/// Number of scored objectives (latency, energy, area, resilience).
pub const OBJECTIVES: usize = 4;

/// The configuration knobs of one candidate — everything needed to
/// reconstruct its [`EngineConfig`]. `Eq + Hash` so the search can
/// deduplicate candidates it has already evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignKnobs {
    /// CGRA rows.
    pub cgra_rows: usize,
    /// CGRA cols.
    pub cgra_cols: usize,
    /// Heterogeneous PICACHU fabric or the all-universal flavor.
    pub fabric: FabricKind,
    /// Shared Buffer KB.
    pub buffer_kb: usize,
    /// Kernel data format.
    pub format: DataFormat,
    /// `true` → the compiler tries only the lean `[1, 4]` unroll portfolio
    /// (cheaper compiles, possibly worse II); `false` → the full
    /// `[1, 2, 4, 8]` search.
    pub lean_unroll: bool,
    /// Whether the degradation ladder may repair the healthy mapping
    /// incrementally (`true`, the deployed default) or must always re-map
    /// from scratch on a faulted fabric (`false`).
    pub incremental_repair: bool,
}

impl DesignKnobs {
    /// The knobs of [`EngineConfig::default`] — the baseline every searched
    /// point is measured against. Seeding the population with it guarantees
    /// the frontier only ever *improves on* (or ties) the deployed config.
    pub fn baseline() -> DesignKnobs {
        let d = EngineConfig::default();
        DesignKnobs {
            cgra_rows: d.cgra_rows,
            cgra_cols: d.cgra_cols,
            fabric: d.fabric,
            buffer_kb: d.buffer_kb,
            format: d.format,
            lean_unroll: d.unroll_candidates == LEAN_UNROLL,
            incremental_repair: d.incremental_repair,
        }
    }

    /// The full engine configuration these knobs denote (all non-searched
    /// knobs at their defaults).
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            cgra_rows: self.cgra_rows,
            cgra_cols: self.cgra_cols,
            fabric: self.fabric,
            buffer_kb: self.buffer_kb,
            format: self.format,
            unroll_candidates: if self.lean_unroll {
                LEAN_UNROLL.to_vec()
            } else {
                FULL_UNROLL.to_vec()
            },
            incremental_repair: self.incremental_repair,
            ..EngineConfig::default()
        }
    }
}

impl fmt::Display for DesignKnobs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} {} CGRA, {} KB, {}, {} unroll, repair {}",
            self.cgra_rows,
            self.cgra_cols,
            self.fabric,
            self.buffer_kb,
            self.format,
            if self.lean_unroll { "lean" } else { "full" },
            if self.incremental_repair { "incremental" } else { "full-remap" },
        )
    }
}

/// The full `[1, 2, 4, 8]` unroll portfolio ([`EngineConfig::default`]).
pub const FULL_UNROLL: [usize; 4] = [1, 2, 4, 8];
/// The lean `[1, 4]` portfolio the `lean_unroll` knob selects.
pub const LEAN_UNROLL: [usize; 2] = [1, 4];

/// One evaluated design point: the knobs plus the four scored objectives.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The candidate's configuration knobs.
    pub knobs: DesignKnobs,
    /// End-to-end latency in cycles for the target workload.
    pub latency: f64,
    /// Energy in nJ for that run, CGRA activity from the compiled mappings.
    pub energy_nj: f64,
    /// Total silicon area in mm² (CGRA + systolic + SRAM + glue).
    pub area_mm2: f64,
    /// Mean degraded-capacity retention in `[0, 1]` across the scored fault
    /// plans: `1/max(1, ii_inflation)` per plan, 0 when the ladder rejects.
    pub resilience: f64,
    /// Mean mapped CGRA utilization (`placements/(tiles×II)`) — the
    /// activity factor the energy objective was priced at.
    pub utilization: f64,
}

impl DesignPoint {
    /// The objective vector, oriented so *smaller is better on every axis*
    /// (resilience is negated). All dominance and sorting logic runs on
    /// this vector under [`f64::total_cmp`].
    pub fn objectives(&self) -> [f64; OBJECTIVES] {
        [self.latency, self.energy_nj, self.area_mm2, -self.resilience]
    }

    /// Instantiates the point as a configured engine — a first-class
    /// [`Accelerator`] `picachu-serve` can deploy directly (see
    /// `ShardSpec::from_design`).
    pub fn instantiate(&self) -> PicachuEngine {
        PicachuEngine::new(self.knobs.engine_config())
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3e} cycles, {:.3e} nJ, {:.2} mm2, resilience {:.2}",
            self.knobs, self.latency, self.energy_nj, self.area_mm2, self.resilience
        )
    }
}

/// `true` when objective vector `a` Pareto-dominates `b`: no worse on every
/// axis and strictly better on at least one, under the [`f64::total_cmp`]
/// total order (so NaN sorts as an extreme value instead of poisoning the
/// comparison, and the relation stays antisymmetric for any inputs).
pub fn dominates(a: &[f64; OBJECTIVES], b: &[f64; OBJECTIVES]) -> bool {
    let mut strictly_better = false;
    for i in 0..OBJECTIVES {
        match a[i].total_cmp(&b[i]) {
            Ordering::Greater => return false,
            Ordering::Less => strictly_better = true,
            Ordering::Equal => {}
        }
    }
    strictly_better
}

/// Lexicographic total order on objective vectors (`total_cmp` per axis) —
/// the deterministic sort key for evaluated points and the frontier.
pub fn cmp_objectives(a: &[f64; OBJECTIVES], b: &[f64; OBJECTIVES]) -> Ordering {
    for i in 0..OBJECTIVES {
        match a[i].total_cmp(&b[i]) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// Filters a point set to its multi-dimensional Pareto frontier: no other
/// point dominates a member, and exact objective ties are deduplicated (the
/// frontier is a *set* of distinct trade-offs — a swept grid often lands
/// several knob combinations on identical objective vectors, e.g. buffer
/// sizes that differ only on an axis a model never stresses). Sorted by
/// [`cmp_objectives`], so the output is independent of input order up to
/// which representative of an exact tie survives (the first, in input
/// order — and [`search`] evaluates in a deterministic order).
pub fn pareto_frontier(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut frontier: Vec<DesignPoint> = Vec::new();
    for p in points {
        let obj = p.objectives();
        if points.iter().any(|q| dominates(&q.objectives(), &obj)) {
            continue;
        }
        if frontier.iter().any(|f| cmp_objectives(&f.objectives(), &obj) == Ordering::Equal) {
            continue;
        }
        frontier.push(p.clone());
    }
    frontier.sort_by(|a, b| cmp_objectives(&a.objectives(), &b.objectives()));
    frontier
}

/// The search configuration: seed, budget, and the knob domains.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Seed for the generational sampler (population + mutations).
    pub seed: u64,
    /// Number of generations (the first is baseline + random samples).
    pub generations: usize,
    /// Candidates per generation (already-evaluated knobs are skipped).
    pub population: usize,
    /// Evaluation sequence length.
    pub seq: usize,
    /// Fabric geometries the search may pick.
    pub geometries: Vec<(usize, usize)>,
    /// Shared Buffer capacities (KB) the search may pick.
    pub buffers_kb: Vec<usize>,
    /// Fault plans the resilience objective scores under. Tile/link indices
    /// must be valid on the *smallest* geometry in `geometries` so every
    /// candidate faces the same faults.
    pub fault_plans: Vec<FaultPlan>,
}

impl Default for SearchConfig {
    /// The full search space: eight geometries × four buffer sizes × both
    /// formats × both fabrics × both unroll portfolios × both repair
    /// policies (1024 knob combinations), sampled by a 4-generation loop.
    /// The 12×12 and 16×16 entries are served by the annealed
    /// Place→Route→Fold pipeline (`picachu-compiler`'s mapper switches
    /// engines above 64 tiles), so the search can weigh scale-up fabrics
    /// with realistic routing instead of extrapolating from 6×6. The fault
    /// plans (a mid-fabric dead PE; a dead link plus a corner PE) are valid
    /// on every geometry down to 3×3.
    fn default() -> SearchConfig {
        SearchConfig {
            seed: 0xC0DE_5EED,
            generations: 4,
            population: 10,
            seq: 256,
            geometries: vec![
                (3, 3),
                (4, 3),
                (4, 4),
                (5, 4),
                (5, 5),
                (6, 6),
                (12, 12),
                (16, 16),
            ],
            buffers_kb: vec![20, 40, 80, 160],
            fault_plans: vec![
                FaultPlan::dead_tile(5),
                FaultPlan::dead_link(0, 1).with_dead_tile(8),
            ],
        }
    }
}

impl SearchConfig {
    /// A tiny deterministic search for smoke tests and CI: two small
    /// geometries, two buffer sizes, one fault plan, two generations.
    pub fn smoke(seed: u64) -> SearchConfig {
        SearchConfig {
            seed,
            generations: 2,
            population: 6,
            seq: 64,
            geometries: vec![(3, 3), (4, 4)],
            buffers_kb: vec![20, 40],
            fault_plans: vec![FaultPlan::dead_tile(5)],
        }
    }
}

/// What [`search`] returns: the evaluated archive and its Pareto frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Every distinct candidate evaluated, sorted by [`cmp_objectives`].
    pub evaluated: Vec<DesignPoint>,
    /// The multi-dimensional Pareto frontier of `evaluated`.
    pub frontier: Vec<DesignPoint>,
}

/// Runs the seeded generational co-design search for a model.
///
/// Generation 0 is [`DesignKnobs::baseline`] plus seeded random samples;
/// each later generation mutates the current frontier's members (one knob
/// per mutation) and tops up with fresh random samples. Candidates are
/// deduplicated across the whole run, evaluated in parallel on the
/// [`picachu_runtime`] pool (thread count from `PICACHU_THREADS` or the
/// hardware), and share kernel compilations through the process-wide
/// [`crate::compile_cache`]. Deterministic in `(model, cfg)`: the sampler
/// is a seeded [`TestRng`], the pool returns results in submission order,
/// and every comparison runs under [`f64::total_cmp`].
///
/// Candidates whose kernels fail to map (a degenerate geometry) are dropped
/// from the archive rather than scored.
pub fn search(model: &ModelConfig, cfg: &SearchConfig) -> SearchResult {
    let mut rng = TestRng::seed_from_u64(cfg.seed);
    let mut seen: HashSet<DesignKnobs> = HashSet::new();
    let mut evaluated: Vec<DesignPoint> = Vec::new();

    let mut generation: Vec<DesignKnobs> = vec![DesignKnobs::baseline()];
    while generation.len() < cfg.population.max(1) {
        generation.push(random_knobs(&mut rng, cfg));
    }
    for g in 0..cfg.generations.max(1) {
        generation.retain(|k| seen.insert(*k));
        if !generation.is_empty() {
            let scored =
                picachu_runtime::parallel_map(&generation, |_, k| evaluate(model, cfg, *k));
            evaluated.extend(scored.into_iter().flatten());
        }
        if g + 1 == cfg.generations.max(1) {
            break;
        }
        // breed the next generation from the frontier so far: two mutation
        // passes over its members, then fresh random exploration
        let frontier = pareto_frontier(&evaluated);
        let mut next = Vec::new();
        let mut parent = 0usize;
        while next.len() < cfg.population.max(1) {
            if !frontier.is_empty() && parent < frontier.len() * 2 {
                next.push(mutate(frontier[parent % frontier.len()].knobs, &mut rng, cfg));
                parent += 1;
            } else {
                next.push(random_knobs(&mut rng, cfg));
            }
        }
        generation = next;
    }

    evaluated.sort_by(|a, b| cmp_objectives(&a.objectives(), &b.objectives()));
    let frontier = pareto_frontier(&evaluated);
    SearchResult { evaluated, frontier }
}

/// Draws uniform random knobs from the configured domains.
fn random_knobs(rng: &mut TestRng, cfg: &SearchConfig) -> DesignKnobs {
    let (cgra_rows, cgra_cols) = cfg.geometries[rng.gen_range(0..cfg.geometries.len())];
    DesignKnobs {
        cgra_rows,
        cgra_cols,
        fabric: if rng.gen_range(0..2usize) == 0 {
            FabricKind::Heterogeneous
        } else {
            FabricKind::Universal
        },
        buffer_kb: cfg.buffers_kb[rng.gen_range(0..cfg.buffers_kb.len())],
        format: if rng.gen_range(0..2usize) == 0 { DataFormat::Fp16 } else { DataFormat::Int16 },
        lean_unroll: rng.gen_range(0..2usize) == 1,
        incremental_repair: rng.gen_range(0..2usize) == 0,
    }
}

/// Mutates exactly one knob: geometry/buffer step to a random *other* value
/// of their domain, the binary knobs flip.
fn mutate(mut k: DesignKnobs, rng: &mut TestRng, cfg: &SearchConfig) -> DesignKnobs {
    match rng.gen_range(0..5usize) {
        0 if cfg.geometries.len() > 1 => {
            let cur = cfg
                .geometries
                .iter()
                .position(|&g| g == (k.cgra_rows, k.cgra_cols))
                .unwrap_or(0);
            let step = 1 + rng.gen_range(0..cfg.geometries.len() - 1);
            let (r, c) = cfg.geometries[(cur + step) % cfg.geometries.len()];
            k.cgra_rows = r;
            k.cgra_cols = c;
        }
        1 if cfg.buffers_kb.len() > 1 => {
            let cur = cfg.buffers_kb.iter().position(|&b| b == k.buffer_kb).unwrap_or(0);
            let step = 1 + rng.gen_range(0..cfg.buffers_kb.len() - 1);
            k.buffer_kb = cfg.buffers_kb[(cur + step) % cfg.buffers_kb.len()];
        }
        2 => {
            k.fabric = match k.fabric {
                FabricKind::Heterogeneous => FabricKind::Universal,
                FabricKind::Universal => FabricKind::Heterogeneous,
            };
        }
        3 => {
            k.format =
                if k.format == DataFormat::Fp16 { DataFormat::Int16 } else { DataFormat::Fp16 };
        }
        _ => {
            // couple the two compiler-strategy bits half the time each
            if rng.gen_range(0..2usize) == 0 {
                k.lean_unroll = !k.lean_unroll;
            } else {
                k.incremental_repair = !k.incremental_repair;
            }
        }
    }
    k
}

/// Scores one candidate on all four objectives, or `None` when its kernels
/// fail to map.
fn evaluate(model: &ModelConfig, cfg: &SearchConfig, knobs: DesignKnobs) -> Option<DesignPoint> {
    let mut engine = PicachuEngine::new(knobs.engine_config());
    let ops = model.nonlinear_ops();
    // grouped flat compile batch (parallel when threads are free; inside a
    // pool worker it degrades to serial, still deterministic)
    engine.prewarm(&ops).ok()?;
    let b = engine.execute_model(model, cfg.seq);
    let latency = b.total();
    let utilization = engine.cgra_utilization(&ops).ok().flatten().unwrap_or(0.7);
    let energy_nj = engine.energy_nj_at_utilization(&b, utilization);
    let area_mm2 = engine.area_mm2();
    let resilience = resilience_score(&mut engine, &ops, &cfg.fault_plans);
    Some(DesignPoint { knobs, latency, energy_nj, area_mm2, resilience, utilization })
}

/// Mean degraded-capacity retention across the fault plans — the same
/// `1/max(1, worst ii_inflation)` capacity factor `picachu-serve` applies
/// to a faulted shard, 0 when the ladder rejects the fabric entirely.
fn resilience_score(engine: &mut PicachuEngine, ops: &[NonlinearOp], plans: &[FaultPlan]) -> f64 {
    if plans.is_empty() {
        return 1.0;
    }
    let mut sum = 0.0;
    for plan in plans {
        let mut worst = 1.0f64;
        let mut rejected = false;
        for &op in ops {
            match engine.compile_op_degraded(op, plan) {
                Ok(d) => worst = worst.max(d.ii_inflation),
                Err(_) => {
                    rejected = true;
                    break;
                }
            }
        }
        if !rejected {
            sum += 1.0 / worst.max(1.0);
        }
    }
    sum / plans.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke(seed: u64) -> SearchConfig {
        SearchConfig::smoke(seed)
    }

    #[test]
    fn search_is_deterministic_and_nonempty() {
        let cfg = smoke(7);
        let a = search(&ModelConfig::gpt2(), &cfg);
        let b = search(&ModelConfig::gpt2(), &cfg);
        assert!(!a.evaluated.is_empty() && !a.frontier.is_empty());
        assert_eq!(a, b, "search must be deterministic in (model, config)");
    }

    #[test]
    fn baseline_knobs_are_always_evaluated() {
        let r = search(&ModelConfig::gpt2(), &smoke(11));
        assert!(
            r.evaluated.iter().any(|p| p.knobs == DesignKnobs::baseline()),
            "generation 0 must contain the deployed default"
        );
    }

    #[test]
    fn frontier_is_subset_nondominated_and_deduped() {
        let r = search(&ModelConfig::gpt2(), &smoke(13));
        assert!(!r.frontier.is_empty() && r.frontier.len() <= r.evaluated.len());
        for (i, a) in r.frontier.iter().enumerate() {
            for (j, b) in r.frontier.iter().enumerate() {
                if i != j {
                    assert!(
                        !dominates(&b.objectives(), &a.objectives()),
                        "{b} dominates {a}"
                    );
                    assert_ne!(
                        cmp_objectives(&a.objectives(), &b.objectives()),
                        Ordering::Equal,
                        "frontier must dedupe exact objective ties"
                    );
                }
            }
        }
    }

    #[test]
    fn objectives_are_finite_and_resilience_in_unit_interval() {
        let r = search(&ModelConfig::gpt2(), &smoke(17));
        for p in &r.evaluated {
            assert!(p.latency.is_finite() && p.latency > 0.0, "{p}");
            assert!(p.energy_nj.is_finite() && p.energy_nj > 0.0, "{p}");
            assert!(p.area_mm2.is_finite() && p.area_mm2 > 0.0, "{p}");
            assert!((0.0..=1.0).contains(&p.resilience), "{p}");
            assert!((0.0..=1.0).contains(&p.utilization), "{p}");
        }
    }

    #[test]
    fn evaluated_is_sorted_and_distinct() {
        let r = search(&ModelConfig::gpt2(), &smoke(19));
        for w in r.evaluated.windows(2) {
            assert_ne!(
                cmp_objectives(&w[0].objectives(), &w[1].objectives()),
                Ordering::Greater
            );
        }
        let mut knobs: Vec<DesignKnobs> = r.evaluated.iter().map(|p| p.knobs).collect();
        let n = knobs.len();
        knobs.dedup();
        assert_eq!(n, knobs.len(), "no knob combination is evaluated twice");
    }

    #[test]
    fn frontier_point_instantiates_and_round_trips_config() {
        let r = search(&ModelConfig::gpt2(), &smoke(23));
        let p = &r.frontier[0];
        let config = p.knobs.engine_config();
        assert_eq!(config.cgra_rows, p.knobs.cgra_rows);
        assert_eq!(config.fabric, p.knobs.fabric);
        let mut engine = p.instantiate();
        let b = engine.execute_model(&ModelConfig::gpt2(), 64);
        assert!(b.total() > 0.0);
        assert!((engine.area_mm2() - p.area_mm2).abs() < 1e-9, "area must reproduce");
    }

    #[test]
    fn dominance_is_irreflexive_and_handles_nan() {
        let v = [1.0, 2.0, 3.0, -0.5];
        assert!(!dominates(&v, &v));
        let nan = [f64::NAN, 2.0, 3.0, -0.5];
        // under total_cmp, +NaN is worse (greater) than any finite latency
        assert!(dominates(&v, &nan));
        assert!(!dominates(&nan, &v));
        assert!(!dominates(&nan, &nan));
    }
}
