//! Design-space exploration (the §2.2 CGRA-DSE tradition: OpenCGRA, Aurora,
//! APEX — here applied to the PICACHU configuration knobs).
//!
//! Sweeps fabric geometry × Shared Buffer size × data format for a target
//! model, evaluating end-to-end latency with the engine and silicon cost
//! with the calibrated model, and returns the Pareto frontier of
//! (latency, area) points — the tool a deployment team would use to pick a
//! model-specific PICACHU instance (§5.3.5's closing suggestion).

use crate::engine::{EngineConfig, PicachuEngine};
use picachu_cgra::cost::CostModel;
use picachu_compiler::arch::CgraSpec;
use picachu_llm::ModelConfig;
use picachu_num::DataFormat;
use std::fmt;

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// CGRA rows.
    pub cgra_rows: usize,
    /// CGRA cols.
    pub cgra_cols: usize,
    /// Shared Buffer KB.
    pub buffer_kb: usize,
    /// Data format.
    pub format: DataFormat,
    /// End-to-end latency in cycles for the target workload.
    pub latency: f64,
    /// CGRA + buffer area in mm² (the systolic array is fixed).
    pub area_mm2: f64,
}

impl DesignPoint {
    /// Latency × area — the single-number figure of merit.
    pub fn latency_area_product(&self) -> f64 {
        self.latency * self.area_mm2
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} CGRA, {} KB, {}: {:.3e} cycles, {:.2} mm2",
            self.cgra_rows, self.cgra_cols, self.buffer_kb, self.format, self.latency, self.area_mm2
        )
    }
}

/// The sweep configuration.
#[derive(Debug, Clone)]
pub struct DseSweep {
    /// Fabric geometries to try.
    pub fabrics: Vec<(usize, usize)>,
    /// Buffer sizes (KB) to try.
    pub buffers: Vec<usize>,
    /// Formats to try.
    pub formats: Vec<DataFormat>,
    /// Evaluation sequence length.
    pub seq: usize,
}

impl Default for DseSweep {
    fn default() -> DseSweep {
        DseSweep {
            fabrics: vec![(3, 3), (4, 4), (5, 5)],
            buffers: vec![20, 40, 80],
            formats: vec![DataFormat::Fp16, DataFormat::Int16],
            seq: 512,
        }
    }
}

/// Runs the sweep for a model, returning every evaluated point sorted by
/// latency-area product (best first).
///
/// Design points are evaluated in parallel on the [`picachu_runtime`] pool
/// (thread count from `PICACHU_THREADS` or the hardware), and every engine
/// consults the process-wide [`crate::compile_cache`], so points differing
/// only in `buffer_kb` share kernel compilations. Results are independent of
/// the thread count: each point's engine is deterministic in its config, and
/// the pool returns results in grid order (the final sort is stable).
pub fn explore(model: &ModelConfig, sweep: &DseSweep) -> Vec<DesignPoint> {
    let cost = CostModel::default();
    let mut grid = Vec::new();
    for &(r, c) in &sweep.fabrics {
        for &kb in &sweep.buffers {
            for &fmt in &sweep.formats {
                grid.push((r, c, kb, fmt));
            }
        }
    }
    let mut points = picachu_runtime::parallel_map(&grid, |_, &(r, c, kb, fmt)| {
        let mut engine = PicachuEngine::new(EngineConfig {
            cgra_rows: r,
            cgra_cols: c,
            buffer_kb: kb,
            format: fmt,
            ..EngineConfig::default()
        });
        let latency = engine.execute_model(model, sweep.seq).total();
        let area = cost.cgra_cost(&CgraSpec::picachu(r, c), 0.7).area_mm2
            + cost.sram_cost(kb as f64).area_mm2;
        DesignPoint { cgra_rows: r, cgra_cols: c, buffer_kb: kb, format: fmt, latency, area_mm2: area }
    });
    points.sort_by(|a, b| {
        a.latency_area_product()
            .partial_cmp(&b.latency_area_product())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    points
}

/// Filters a point set to its Pareto frontier (no other point is both faster
/// and smaller), sorted by latency.
pub fn pareto_frontier(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut frontier: Vec<DesignPoint> = Vec::new();
    for p in points {
        let dominated = points.iter().any(|q| {
            (q.latency < p.latency && q.area_mm2 <= p.area_mm2)
                || (q.latency <= p.latency && q.area_mm2 < p.area_mm2)
        });
        if !dominated {
            frontier.push(p.clone());
        }
    }
    frontier.sort_by(|a, b| a.latency.partial_cmp(&b.latency).unwrap_or(std::cmp::Ordering::Equal));
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep() -> DseSweep {
        DseSweep {
            fabrics: vec![(3, 3), (4, 4)],
            buffers: vec![20, 40],
            formats: vec![DataFormat::Fp16, DataFormat::Int16],
            seq: 128,
        }
    }

    #[test]
    fn sweep_covers_grid() {
        let pts = explore(&ModelConfig::gpt2(), &small_sweep());
        assert_eq!(pts.len(), 2 * 2 * 2);
    }

    #[test]
    fn pareto_frontier_is_subset_and_nondominated() {
        let pts = explore(&ModelConfig::gpt2(), &small_sweep());
        let front = pareto_frontier(&pts);
        assert!(!front.is_empty() && front.len() <= pts.len());
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    assert!(
                        !(b.latency < a.latency && b.area_mm2 < a.area_mm2),
                        "{b} dominates {a}"
                    );
                }
            }
        }
    }

    #[test]
    fn int16_dominates_fp16_at_same_geometry() {
        // same silicon, faster execution: FP16 points of identical geometry
        // can never appear on the frontier ahead of INT16.
        let pts = explore(&ModelConfig::llama2_7b(), &small_sweep());
        for p in &pts {
            if p.format == DataFormat::Int16 {
                let twin = pts.iter().find(|q| {
                    q.format == DataFormat::Fp16
                        && q.cgra_rows == p.cgra_rows
                        && q.cgra_cols == p.cgra_cols
                        && q.buffer_kb == p.buffer_kb
                });
                let twin = twin.expect("paired point");
                assert!(p.latency <= twin.latency, "{p} vs {twin}");
            }
        }
    }

    #[test]
    fn best_point_sorted_first() {
        let pts = explore(&ModelConfig::gpt2(), &small_sweep());
        for w in pts.windows(2) {
            assert!(w[0].latency_area_product() <= w[1].latency_area_product());
        }
    }
}
