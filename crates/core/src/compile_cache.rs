//! Process-wide compiled-mapping cache.
//!
//! Modulo-scheduling a kernel loop is by far the most expensive step of the
//! toolchain (randomized placement restarts across a window of candidate
//! IIs), and the compilation of a kernel is a pure function of the knobs in
//! [`CompileKey`]. Historically every [`PicachuEngine`](crate::PicachuEngine)
//! owned a private cache, so a DSE sweep or a figure harness that builds one
//! engine per design point re-mapped identical `(op, fabric, format)` kernels
//! from scratch at every point. This module hoists the cache to the process:
//! a `RwLock<HashMap>` shared by every engine (and every worker thread of the
//! parallel runtime), with hit/miss counters for the benches.
//!
//! The cache is semantically invisible: compilation is deterministic in the
//! key, so a hit returns bit-identical loops to a fresh compile. Entries are
//! `Arc`ed, so a hit is one map lookup plus a refcount bump.

use crate::engine::CompiledLoop;
use picachu_nonlinear::NonlinearOp;
use picachu_num::DataFormat;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Everything the compiled loops of one nonlinear op depend on. The Shared
/// Buffer size is deliberately absent: mapping happens on the CGRA fabric
/// and never sees the buffer, which is what lets DSE points that differ only
/// in `buffer_kb` share compilations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompileKey {
    /// The nonlinear operation.
    pub op: NonlinearOp,
    /// CGRA fabric rows (geometry plus the `universal` flag fully
    /// determine the fabric the engine builds).
    pub cgra_rows: usize,
    /// CGRA fabric columns.
    pub cgra_cols: usize,
    /// Kernel data format (drives the vector factor).
    pub format: DataFormat,
    /// Taylor terms of the exp/sin kernels.
    pub taylor_terms: usize,
    /// The unroll factors the compiler tries.
    pub unroll_candidates: Vec<usize>,
    /// Mapper seed.
    pub seed: u64,
    /// Dead PEs the mapping routes around (empty for a healthy fabric). The
    /// exact fault set is part of the key: a mapping compiled around tile 3
    /// is not valid — and not bit-identical — for any other fault set.
    pub dead_tiles: Vec<usize>,
    /// Dead NoC links the mapping routes around (normalized `(min, max)`
    /// pairs, empty for a healthy fabric).
    pub dead_links: Vec<(usize, usize)>,
    /// `true` when compiled for the all-universal fabric — either the
    /// degradation ladder's fallback rung, or an engine whose
    /// `FabricKind::Universal` config builds that fabric outright. A
    /// universal mapping must never alias a heterogeneous one at the same
    /// geometry.
    pub universal: bool,
    /// `true` when the mapping was produced by incremental repair of the
    /// healthy mapping (retained II, re-placed sub-DFG) rather than a full
    /// re-map. Part of the key so the two never alias: which one a process
    /// computes depends on its history (repair needs a healthy mapping on
    /// hand), and the cache — and the on-disk store shared across processes
    /// — must stay a pure function of the key.
    pub incremental: bool,
}

type Cache = RwLock<HashMap<CompileKey, Arc<Vec<CompiledLoop>>>>;

fn cache() -> &'static Cache {
    static CACHE: OnceLock<Cache> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Recovers the map from a poisoned lock. A panic while holding the cache
/// lock can only happen between pure reads/inserts of immutable `Arc`ed
/// entries — the map itself is never left half-mutated — so the cache stays
/// valid and the whole process must not lose compilation because one worker
/// died (the panic is reported through the runtime's typed path).
fn read_cache() -> std::sync::RwLockReadGuard<'static, HashMap<CompileKey, Arc<Vec<CompiledLoop>>>> {
    cache().read().unwrap_or_else(|p| p.into_inner())
}

fn write_cache() -> std::sync::RwLockWriteGuard<'static, HashMap<CompileKey, Arc<Vec<CompiledLoop>>>> {
    cache().write().unwrap_or_else(|p| p.into_inner())
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
/// Whether the on-disk mapping store has been folded into the in-memory
/// cache this "generation" (reset by [`clear`], so benches measuring cold
/// compiles stay cold as long as the store is disabled).
static STORE_LOADED: AtomicBool = AtomicBool::new(false);

/// Looks up a compiled kernel, counting a hit or miss.
///
/// On the first miss with the [`mapstore`](crate::mapstore) enabled, the
/// on-disk store is bulk-loaded into the cache and the lookup retried — a
/// repeat process (or a serving-fleet node sharing a store directory) warms
/// from disk instead of re-running the mapper. Store entries count as hits.
pub fn lookup(key: &CompileKey) -> Option<Arc<Vec<CompiledLoop>>> {
    if let Some(hit) = read_cache().get(key).cloned() {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Some(hit);
    }
    if crate::mapstore::is_enabled() && !STORE_LOADED.swap(true, Ordering::SeqCst) {
        let entries = crate::mapstore::load_all();
        let mut map = write_cache();
        for (k, loops) in entries {
            map.entry(k).or_insert_with(|| Arc::new(loops));
        }
        drop(map);
        if let Some(hit) = read_cache().get(key).cloned() {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Some(hit);
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    None
}

/// Publishes a compiled kernel. Returns the canonical entry: if another
/// thread published the same key first, its (bit-identical, by determinism)
/// value wins and the duplicate work is dropped. A genuinely fresh entry is
/// also appended to the on-disk [`mapstore`](crate::mapstore) when one is
/// configured (entries loaded *from* the store re-publish as occupied, so
/// they are never echoed back to disk).
pub fn publish(key: CompileKey, loops: Vec<CompiledLoop>) -> Arc<Vec<CompiledLoop>> {
    let mut map = write_cache();
    let mut fresh = false;
    let arc = map
        .entry(key.clone())
        .or_insert_with(|| {
            fresh = true;
            Arc::new(loops)
        })
        .clone();
    drop(map);
    if fresh && crate::mapstore::is_enabled() {
        crate::mapstore::append(&key, &arc);
    }
    arc
}

/// Number of cached kernels.
pub fn len() -> usize {
    read_cache().len()
}

/// Drops every entry and zeroes the counters (benches use this to measure
/// cold compiles; engines re-populate lazily). Also re-arms the mapstore
/// load, so the next miss re-reads the on-disk store when one is enabled —
/// cold benches therefore run with the store disabled (the default).
pub fn clear() {
    write_cache().clear();
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    STORE_LOADED.store(false, Ordering::SeqCst);
}

/// `(hits, misses)` since the last [`clear`].
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, PicachuEngine};
    use std::sync::Mutex;

    /// The cache is process-global and these tests clear it; serialize them
    /// so they cannot wipe each other's entries mid-assertion.
    fn clear_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn engines_share_compilations() {
        let _g = clear_lock();
        clear();
        let cfg = EngineConfig::default();
        let mut a = PicachuEngine::new(cfg.clone());
        a.compile_op(NonlinearOp::Silu);
        let after_first = stats();
        assert!(after_first.1 >= 1, "first compile must miss");
        // a brand-new engine with the same knobs hits the shared cache
        let mut b = PicachuEngine::new(cfg);
        let loops = b.compile_op(NonlinearOp::Silu).to_vec();
        let (hits, _) = stats();
        assert!(hits >= 1, "second engine should hit the process cache");
        assert_eq!(loops.len(), a.compile_op(NonlinearOp::Silu).len());
    }

    /// A synthetic key no real engine configuration produces (2×3 fabric),
    /// so concurrently-running engine tests can never collide with the
    /// doctored store entries below.
    fn synthetic_key(seed: u64) -> CompileKey {
        CompileKey {
            op: NonlinearOp::Relu,
            cgra_rows: 2,
            cgra_cols: 3,
            format: picachu_num::DataFormat::Fp32,
            taylor_terms: 6,
            unroll_candidates: vec![1],
            seed,
            dead_tiles: Vec::new(),
            dead_links: Vec::new(),
            universal: false,
            incremental: false,
        }
    }

    fn synthetic_loops(ii: u32) -> Vec<CompiledLoop> {
        vec![CompiledLoop {
            label: "synthetic".to_string(),
            kind: picachu_nonlinear::LoopKind::ElementWise,
            uf: 1,
            vf: 1,
            mapping: picachu_compiler::mapper::Mapping {
                ii,
                placements: Vec::new(),
                schedule_len: 7,
            },
        }]
    }

    fn temp_store(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("picachu-mapstore-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lookup_falls_back_to_the_mapstore() {
        let _g = clear_lock();
        clear();
        let dir = temp_store("lookup");
        crate::mapstore::set_mapstore_dir(Some(dir.clone()));
        // a doctored entry (ii=42 with no placements) can only come back
        // from disk — the mapper would never produce it
        let key = synthetic_key(0xFEED_0001);
        crate::mapstore::append(&key, &synthetic_loops(42));
        clear(); // re-arm the store load
        let got = lookup(&key).expect("store-backed hit");
        assert_eq!(got[0].mapping.ii, 42, "entry must come from the on-disk store");
        crate::mapstore::set_mapstore_dir(None);
        clear();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn publish_appends_fresh_entries_once() {
        let _g = clear_lock();
        clear();
        let dir = temp_store("publish");
        crate::mapstore::set_mapstore_dir(Some(dir.clone()));
        let key = synthetic_key(0xFEED_0002);
        publish(key.clone(), synthetic_loops(9));
        // republishing the occupied key must not echo a second line
        publish(key.clone(), synthetic_loops(9));
        let entries = crate::mapstore::load_all();
        let mine: Vec<_> = entries.iter().filter(|(k, _)| *k == key).collect();
        assert_eq!(mine.len(), 1, "exactly one store entry for the key");
        assert_eq!(mine[0].1[0].mapping.ii, 9);
        let raw = std::fs::read_to_string(dir.join("mappings.jsonl")).expect("store file");
        let lines_with_mine =
            raw.lines().filter(|l| l.contains(&format!("\"seed\":{}", key.seed))).count();
        assert_eq!(lines_with_mine, 1, "publish must append the fresh entry exactly once");
        crate::mapstore::set_mapstore_dir(None);
        clear();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_geometry_is_a_different_key() {
        let _g = clear_lock();
        clear();
        let mut a = PicachuEngine::new(EngineConfig::default());
        a.compile_op(NonlinearOp::Relu);
        let n1 = len();
        let mut b = PicachuEngine::new(EngineConfig {
            cgra_rows: 5,
            cgra_cols: 5,
            ..EngineConfig::default()
        });
        b.compile_op(NonlinearOp::Relu);
        assert!(len() > n1, "5x5 fabric must not reuse the 4x4 entry");
    }
}
