//! Process-wide compiled-mapping cache.
//!
//! Modulo-scheduling a kernel loop is by far the most expensive step of the
//! toolchain (randomized placement restarts across a window of candidate
//! IIs), and the compilation of a kernel is a pure function of the knobs in
//! [`CompileKey`]. Historically every [`PicachuEngine`](crate::PicachuEngine)
//! owned a private cache, so a DSE sweep or a figure harness that builds one
//! engine per design point re-mapped identical `(op, fabric, format)` kernels
//! from scratch at every point. This module hoists the cache to the process:
//! a `RwLock<HashMap>` shared by every engine (and every worker thread of the
//! parallel runtime), with hit/miss counters for the benches.
//!
//! The cache is semantically invisible: compilation is deterministic in the
//! key, so a hit returns bit-identical loops to a fresh compile. Entries are
//! `Arc`ed, so a hit is one map lookup plus a refcount bump.

use crate::engine::CompiledLoop;
use picachu_nonlinear::NonlinearOp;
use picachu_num::DataFormat;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Everything the compiled loops of one nonlinear op depend on. The Shared
/// Buffer size is deliberately absent: mapping happens on the CGRA fabric
/// and never sees the buffer, which is what lets DSE points that differ only
/// in `buffer_kb` share compilations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompileKey {
    /// The nonlinear operation.
    pub op: NonlinearOp,
    /// CGRA fabric rows (the engine always builds `CgraSpec::picachu`, so
    /// geometry fully determines the fabric).
    pub cgra_rows: usize,
    /// CGRA fabric columns.
    pub cgra_cols: usize,
    /// Kernel data format (drives the vector factor).
    pub format: DataFormat,
    /// Taylor terms of the exp/sin kernels.
    pub taylor_terms: usize,
    /// The unroll factors the compiler tries.
    pub unroll_candidates: Vec<usize>,
    /// Mapper seed.
    pub seed: u64,
    /// Dead PEs the mapping routes around (empty for a healthy fabric). The
    /// exact fault set is part of the key: a mapping compiled around tile 3
    /// is not valid — and not bit-identical — for any other fault set.
    pub dead_tiles: Vec<usize>,
    /// Dead NoC links the mapping routes around (normalized `(min, max)`
    /// pairs, empty for a healthy fabric).
    pub dead_links: Vec<(usize, usize)>,
    /// `true` when compiled for the all-universal fallback fabric instead of
    /// the engine's heterogeneous one.
    pub universal: bool,
}

type Cache = RwLock<HashMap<CompileKey, Arc<Vec<CompiledLoop>>>>;

fn cache() -> &'static Cache {
    static CACHE: OnceLock<Cache> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Recovers the map from a poisoned lock. A panic while holding the cache
/// lock can only happen between pure reads/inserts of immutable `Arc`ed
/// entries — the map itself is never left half-mutated — so the cache stays
/// valid and the whole process must not lose compilation because one worker
/// died (the panic is reported through the runtime's typed path).
fn read_cache() -> std::sync::RwLockReadGuard<'static, HashMap<CompileKey, Arc<Vec<CompiledLoop>>>> {
    cache().read().unwrap_or_else(|p| p.into_inner())
}

fn write_cache() -> std::sync::RwLockWriteGuard<'static, HashMap<CompileKey, Arc<Vec<CompiledLoop>>>> {
    cache().write().unwrap_or_else(|p| p.into_inner())
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Looks up a compiled kernel, counting a hit or miss.
pub fn lookup(key: &CompileKey) -> Option<Arc<Vec<CompiledLoop>>> {
    let got = read_cache().get(key).cloned();
    if got.is_some() {
        HITS.fetch_add(1, Ordering::Relaxed);
    } else {
        MISSES.fetch_add(1, Ordering::Relaxed);
    }
    got
}

/// Publishes a compiled kernel. Returns the canonical entry: if another
/// thread published the same key first, its (bit-identical, by determinism)
/// value wins and the duplicate work is dropped.
pub fn publish(key: CompileKey, loops: Vec<CompiledLoop>) -> Arc<Vec<CompiledLoop>> {
    let mut map = write_cache();
    map.entry(key).or_insert_with(|| Arc::new(loops)).clone()
}

/// Number of cached kernels.
pub fn len() -> usize {
    read_cache().len()
}

/// Drops every entry and zeroes the counters (benches use this to measure
/// cold compiles; engines re-populate lazily).
pub fn clear() {
    write_cache().clear();
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// `(hits, misses)` since the last [`clear`].
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, PicachuEngine};
    use std::sync::Mutex;

    /// The cache is process-global and these tests clear it; serialize them
    /// so they cannot wipe each other's entries mid-assertion.
    fn clear_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn engines_share_compilations() {
        let _g = clear_lock();
        clear();
        let cfg = EngineConfig::default();
        let mut a = PicachuEngine::new(cfg.clone());
        a.compile_op(NonlinearOp::Silu);
        let after_first = stats();
        assert!(after_first.1 >= 1, "first compile must miss");
        // a brand-new engine with the same knobs hits the shared cache
        let mut b = PicachuEngine::new(cfg);
        let loops = b.compile_op(NonlinearOp::Silu).to_vec();
        let (hits, _) = stats();
        assert!(hits >= 1, "second engine should hit the process cache");
        assert_eq!(loops.len(), a.compile_op(NonlinearOp::Silu).len());
    }

    #[test]
    fn different_geometry_is_a_different_key() {
        let _g = clear_lock();
        clear();
        let mut a = PicachuEngine::new(EngineConfig::default());
        a.compile_op(NonlinearOp::Relu);
        let n1 = len();
        let mut b = PicachuEngine::new(EngineConfig {
            cgra_rows: 5,
            cgra_cols: 5,
            ..EngineConfig::default()
        });
        b.compile_op(NonlinearOp::Relu);
        assert!(len() > n1, "5x5 fabric must not reuse the 4x4 entry");
    }
}
