//! # picachu — a from-scratch reproduction of PICACHU (ASPLOS '25)
//!
//! *PICACHU: Plug-In CGRA Handling Upcoming Nonlinear Operations in LLMs.*
//!
//! PICACHU accelerates the nonlinear operations of LLM inference (softmax,
//! GeLU/SiLU and their gated forms, Layer/RMS normalization, RoPE) on a
//! heterogeneous coarse-grained reconfigurable array plugged into a
//! systolic-array accelerator through a shared buffer. This crate is the
//! façade over the full system:
//!
//! | layer | crate |
//! |---|---|
//! | numeric formats (FP16, FP2FX, LUT, dyadic quantization) | [`picachu_num`] |
//! | nonlinear algorithms (Table 3/Table 1 kernels, accuracy) | [`picachu_nonlinear`] |
//! | kernel IR + DFGs | [`picachu_ir`] |
//! | compiler (fusion, unroll, vectorize, modulo mapper) | [`picachu_compiler`] |
//! | CGRA config/simulator/cost | [`picachu_cgra`] |
//! | systolic array + shared buffer + DMA | [`picachu_systolic`] |
//! | LLM workloads + accuracy-proxy LM | [`picachu_llm`] |
//! | unified `Accelerator` backend contract | [`picachu_backend`] |
//! | comparison accelerators | [`picachu_baselines`] |
//! | compile → dispatch → account pipeline stages | [`stages`] |
//! | end-to-end engine | [`engine`] |
//! | design-space exploration | [`dse`] |
//!
//! ## Quickstart
//!
//! ```
//! use picachu::engine::{EngineConfig, PicachuEngine};
//! use picachu_llm::ModelConfig;
//!
//! let mut engine = PicachuEngine::new(EngineConfig::default());
//! let breakdown = engine.execute_model(&ModelConfig::gpt2(), 128);
//! assert!(breakdown.total() > 0.0);
//! println!("GPT-2 @128: {breakdown}");
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod compile_cache;
pub mod dse;
pub mod engine;
pub mod error;
pub mod mapstore;
pub mod stages;

pub use compile_cache::CompileKey;
pub use mapstore::set_mapstore_dir;
pub use dse::{pareto_frontier, search, DesignKnobs, DesignPoint, SearchConfig, SearchResult};
pub use engine::{
    CompiledLoop, DegradedCompile, EngineConfig, FabricKind, FallbackLevel, PicachuEngine,
    ECC_MAX_DETECTED,
};
pub use error::PicachuError;
pub use stages::{Accountant, CompileService, Dispatcher, PhaseTotals};
pub use picachu_backend::{Accelerator, Breakdown, CompileHint, ExecutionReport};
pub use picachu_backend as backend;
pub use picachu_faults as faults;
pub use picachu_runtime as runtime;
pub use picachu_baselines as baselines;
pub use picachu_cgra as cgra;
pub use picachu_compiler as compiler;
pub use picachu_ir as ir;
pub use picachu_llm as llm;
pub use picachu_nonlinear as nonlinear;
pub use picachu_num as num;
pub use picachu_systolic as systolic;
