//! The typed error taxonomy of the serve path.
//!
//! Every way the engine can fail to serve a request maps to one
//! [`PicachuError`] variant, so callers (the oracle sweeps, a deployment
//! shim, the DSE harness) can distinguish *reject this request* from *this
//! part is broken* without parsing panic strings. The compile path
//! ([`PicachuEngine::try_compile_op`](crate::PicachuEngine::try_compile_op),
//! [`PicachuEngine::compile_op_degraded`](crate::PicachuEngine::compile_op_degraded))
//! and the faulted execute path
//! ([`PicachuEngine::try_execute_trace_faulted`](crate::PicachuEngine::try_execute_trace_faulted))
//! return these; the legacy panicking entry points delegate to the `try_`
//! forms and panic on `Err`, preserving their documented behaviour.

use picachu_cgra::SimFault;
use picachu_compiler::MapError;
use picachu_nonlinear::NonlinearOp;
use picachu_systolic::DmaExhausted;
use std::fmt;

/// Everything that can go wrong between a request and a breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PicachuError {
    /// A kernel loop failed to map at every candidate unroll factor — the
    /// mapper's last error explains why (dead resources, timeout, a worker
    /// panic). After the full degradation ladder this means the request must
    /// be rejected.
    Compile {
        /// The nonlinear operation being compiled.
        op: NonlinearOp,
        /// The kernel loop that failed (e.g. `"softmax(2)"`).
        label: String,
        /// The mapper's error for the last unroll candidate tried.
        source: MapError,
    },
    /// More detected-uncorrectable ECC words than the engine will re-fetch:
    /// the SRAM is degrading faster than scrubbing can hide and the part
    /// should be pulled, not served.
    EccStorm {
        /// Detected-uncorrectable words in this request's working set.
        detected: u64,
        /// The engine's re-fetch budget ([`crate::engine::ECC_MAX_DETECTED`]).
        limit: u64,
    },
    /// A DMA transfer stalled through its whole retry ladder.
    Dma(DmaExhausted),
    /// The cycle-level simulator rejected a configuration (oracle paths).
    Sim(SimFault),
}

impl fmt::Display for PicachuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PicachuError::Compile { op, label, source } => {
                write!(f, "kernel loop '{label}' of {op:?} failed to map: {source}")
            }
            PicachuError::EccStorm { detected, limit } => write!(
                f,
                "{detected} detected-uncorrectable ECC words exceed the re-fetch budget of {limit}"
            ),
            PicachuError::Dma(e) => write!(f, "{e}"),
            PicachuError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PicachuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PicachuError::Compile { source, .. } => Some(source),
            PicachuError::Dma(e) => Some(e),
            PicachuError::Sim(e) => Some(e),
            PicachuError::EccStorm { .. } => None,
        }
    }
}

impl From<DmaExhausted> for PicachuError {
    fn from(e: DmaExhausted) -> PicachuError {
        PicachuError::Dma(e)
    }
}

impl From<SimFault> for PicachuError {
    fn from(e: SimFault) -> PicachuError {
        PicachuError::Sim(e)
    }
}
