//! Versioned bitstream-like export of placement + routes (ESL-CSV
//! interchange).
//!
//! The [`mapstore`](crate::mapstore) JSON-lines store persists *mappings* —
//! placements only, because the cycle-level simulator derives everything
//! else. A hardware flow needs more: the configuration stream of a real
//! CGRA encodes, per tile and per II slot, both the compute opcode and the
//! switchbox routes, which the staged Place→Route→Fold pipeline now
//! computes explicitly. This module exports that full picture as a
//! versioned CSV text — the ESL-style interchange format downstream RTL
//! tooling can consume — and imports it back into the process-wide
//! [`compile_cache`](crate::compile_cache) so a fresh process can serve a
//! fabric configuration without ever invoking the mapper.
//!
//! The text is a pure function of `(CompileKey, loops)`: routes come from
//! the deterministic Route pass replay, so exporting on one machine and
//! importing on another reproduces bit-identical execution.
//!
//! Format (one record per line, comma-separated):
//!
//! ```text
//! picachu-bitstream,1
//! key,<op>,<rows>,<cols>,<format>,<taylor>,<seed>,<universal>,<incremental>,<uf0|uf1|..>,<dead_tiles a|b>,<dead_links a-b|c-d>
//! loop,<label>,<kind>,<uf>,<vf>,<ii>,<schedule_len>
//! place,<node>,<tile>,<time>
//! route,<from>,<to>,<depart>,<tile0|tile1|..>,<fold flags as 0/1>
//! pnr,<achieved_ii>,<critical_path>,<area>,<chan_util>,<routed_hops>,<folded_hops>,<congestion_free>
//! ```
//!
//! `place`/`route` rows belong to the most recent `loop` row; every loop
//! block ends with its `pnr` summary row. Import reconstructs the kernel
//! DFG from the key (kernel → unroll → fuse → vectorize, exactly the
//! compile pipeline), validates the placements by re-running the Route
//! pass, and publishes into the compile cache; `route`/`pnr` rows are
//! derived data and are re-checked, not trusted.

use crate::compile_cache::{self, CompileKey};
use crate::engine::CompiledLoop;
use crate::stages::compile::kernel_for;
use picachu_compiler::arch::CgraSpec;
use picachu_compiler::mapper::{pnr_report, route_mapping, Mapping, Placement, ResourceMask};
use picachu_compiler::transform::{fuse_patterns, unroll, vectorize};
use picachu_ir::dfg::{Dfg, NodeId};
use picachu_nonlinear::{LoopKind, NonlinearOp};
use picachu_num::DataFormat;
use std::fmt::Write as _;

/// Bitstream format version this build reads and writes.
pub const BITSTREAM_VERSION: u64 = 1;

fn format_name(f: DataFormat) -> &'static str {
    match f {
        DataFormat::Fp32 => "fp32",
        DataFormat::Fp16 => "fp16",
        DataFormat::Int32 => "int32",
        DataFormat::Int16 => "int16",
    }
}

fn parse_format(s: &str) -> Option<DataFormat> {
    match s {
        "fp32" => Some(DataFormat::Fp32),
        "fp16" => Some(DataFormat::Fp16),
        "int32" => Some(DataFormat::Int32),
        "int16" => Some(DataFormat::Int16),
        _ => None,
    }
}

/// The fabric a key's mappings target.
fn spec_of(key: &CompileKey) -> CgraSpec {
    if key.universal {
        CgraSpec::universal(key.cgra_rows, key.cgra_cols)
    } else {
        CgraSpec::picachu(key.cgra_rows, key.cgra_cols)
    }
}

/// The resource mask a key's mappings were compiled under.
fn mask_of(key: &CompileKey, spec: &CgraSpec) -> ResourceMask {
    if key.dead_tiles.is_empty() && key.dead_links.is_empty() {
        ResourceMask::full(spec)
    } else {
        ResourceMask::degraded(
            spec,
            key.dead_tiles.iter().copied(),
            key.dead_links.iter().copied(),
        )
    }
}

/// Reconstructs the lowered DFG the mapper saw for loop `loop_idx` of the
/// key's kernel (kernel → unroll → fuse → vectorize).
fn dfg_of(key: &CompileKey, loop_idx: usize, uf: usize, vf: usize) -> Option<Dfg> {
    let kernel = kernel_for(key.op, key.taylor_terms);
    let body = &kernel.loops.get(loop_idx)?.dfg;
    let mut dfg = fuse_patterns(&unroll(body, uf));
    if vf > 1 {
        dfg = vectorize(&dfg, vf).dfg;
    }
    Some(dfg)
}

/// Exports one compile-cache entry as bitstream text: the key, every loop's
/// placements, the Route+Fold pass routes, and the per-loop P&R report.
///
/// # Errors
/// A message when the loops do not belong to this key (a loop index out of
/// range, a placement set that does not route under the key's mask) or when
/// a label contains a delimiter character.
pub fn export_bitstream(key: &CompileKey, loops: &[CompiledLoop]) -> Result<String, String> {
    let spec = spec_of(key);
    let mask = mask_of(key, &spec);
    let mut out = String::new();
    let _ = writeln!(out, "picachu-bitstream,{BITSTREAM_VERSION}");
    let unroll_s =
        key.unroll_candidates.iter().map(|u| u.to_string()).collect::<Vec<_>>().join("|");
    let tiles_s = key.dead_tiles.iter().map(|t| t.to_string()).collect::<Vec<_>>().join("|");
    let links_s = key
        .dead_links
        .iter()
        .map(|(a, b)| format!("{a}-{b}"))
        .collect::<Vec<_>>()
        .join("|");
    let _ = writeln!(
        out,
        "key,{},{},{},{},{},{},{},{},{unroll_s},{tiles_s},{links_s}",
        key.op.name(),
        key.cgra_rows,
        key.cgra_cols,
        format_name(key.format),
        key.taylor_terms,
        key.seed,
        key.universal,
        key.incremental
    );
    for (idx, l) in loops.iter().enumerate() {
        if l.label.contains([',', '|', '\n']) {
            return Err(format!("loop label {:?} contains a delimiter", l.label));
        }
        let kind = match l.kind {
            LoopKind::Reduction => "reduction",
            LoopKind::ElementWise => "elementwise",
        };
        let _ = writeln!(
            out,
            "loop,{},{kind},{},{},{},{}",
            l.label, l.uf, l.vf, l.mapping.ii, l.mapping.schedule_len
        );
        for p in &l.mapping.placements {
            let _ = writeln!(out, "place,{},{},{}", p.node.0, p.tile, p.time);
        }
        let dfg = dfg_of(key, idx, l.uf, l.vf)
            .ok_or_else(|| format!("loop {idx} out of range for {}", key.op.name()))?;
        let routes = route_mapping(&dfg, &spec, &mask, l.mapping.ii, &l.mapping.placements)
            .ok_or_else(|| format!("{}: placements do not route under the mask", l.label))?;
        for e in &routes.edges {
            let tiles =
                e.tiles.iter().map(|t| t.to_string()).collect::<Vec<_>>().join("|");
            let folded: String =
                e.folded.iter().map(|&f| if f { '1' } else { '0' }).collect();
            let _ = writeln!(out, "route,{},{},{},{tiles},{folded}", e.from.0, e.to.0, e.depart);
        }
        let report = pnr_report(&dfg, &spec, &mask, &l.mapping)
            .ok_or_else(|| format!("{}: no P&R report", l.label))?;
        let _ = writeln!(
            out,
            "pnr,{},{},{:.6},{:.6},{},{},{}",
            report.achieved_ii,
            report.critical_path,
            report.area_used,
            report.channel_utilization,
            report.routed_hops,
            report.folded_hops,
            report.congestion_free
        );
    }
    Ok(out)
}

fn split_list(s: &str) -> Vec<&str> {
    if s.is_empty() {
        Vec::new()
    } else {
        s.split('|').collect()
    }
}

/// Parses bitstream text back into a compile-cache entry, re-validating
/// every loop: the placements must route under the key's reconstructed
/// fabric and mask, and each loop block must carry exactly the route rows
/// the Route pass derives (the routes are derived data — a mismatch means
/// the text was edited or produced by an incompatible build).
///
/// # Errors
/// A message naming the offending line or loop.
pub fn import_bitstream(text: &str) -> Result<(CompileKey, Vec<CompiledLoop>), String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty bitstream")?;
    let version = header
        .strip_prefix("picachu-bitstream,")
        .and_then(|v| v.parse::<u64>().ok())
        .ok_or_else(|| format!("bad header {header:?}"))?;
    if version != BITSTREAM_VERSION {
        return Err(format!("unsupported bitstream version {version}"));
    }
    let (_, key_line) = lines.next().ok_or("missing key row")?;
    let kf: Vec<&str> = key_line.split(',').collect();
    if kf.len() != 12 || kf[0] != "key" {
        return Err(format!("bad key row {key_line:?}"));
    }
    let op = *NonlinearOp::ALL
        .iter()
        .find(|o| o.name() == kf[1])
        .ok_or_else(|| format!("unknown op {:?}", kf[1]))?;
    let parse_usize =
        |s: &str| s.parse::<usize>().map_err(|_| format!("bad number {s:?}"));
    let key = CompileKey {
        op,
        cgra_rows: parse_usize(kf[2])?,
        cgra_cols: parse_usize(kf[3])?,
        format: parse_format(kf[4]).ok_or_else(|| format!("bad format {:?}", kf[4]))?,
        taylor_terms: parse_usize(kf[5])?,
        seed: kf[6].parse::<u64>().map_err(|_| format!("bad seed {:?}", kf[6]))?,
        universal: kf[7].parse::<bool>().map_err(|_| format!("bad flag {:?}", kf[7]))?,
        incremental: kf[8].parse::<bool>().map_err(|_| format!("bad flag {:?}", kf[8]))?,
        unroll_candidates: split_list(kf[9])
            .iter()
            .map(|s| parse_usize(s))
            .collect::<Result<_, _>>()?,
        dead_tiles: split_list(kf[10])
            .iter()
            .map(|s| parse_usize(s))
            .collect::<Result<_, _>>()?,
        dead_links: split_list(kf[11])
            .iter()
            .map(|s| {
                let (a, b) = s.split_once('-').ok_or_else(|| format!("bad link {s:?}"))?;
                Ok::<_, String>((parse_usize(a)?, parse_usize(b)?))
            })
            .collect::<Result<_, _>>()?,
    };

    struct LoopBlock {
        l: CompiledLoop,
        route_rows: usize,
        has_pnr: bool,
    }
    let mut blocks: Vec<LoopBlock> = Vec::new();
    for (ln, line) in lines {
        let f: Vec<&str> = line.split(',').collect();
        match f.first().copied() {
            Some("loop") if f.len() == 7 => {
                let kind = match f[2] {
                    "reduction" => LoopKind::Reduction,
                    "elementwise" => LoopKind::ElementWise,
                    k => return Err(format!("line {}: bad loop kind {k:?}", ln + 1)),
                };
                blocks.push(LoopBlock {
                    l: CompiledLoop {
                        label: f[1].to_string(),
                        kind,
                        uf: parse_usize(f[3])?,
                        vf: parse_usize(f[4])?,
                        mapping: Mapping {
                            ii: parse_usize(f[5])? as u32,
                            placements: Vec::new(),
                            schedule_len: parse_usize(f[6])? as u32,
                        },
                    },
                    route_rows: 0,
                    has_pnr: false,
                });
            }
            Some("place") if f.len() == 4 => {
                let b = blocks
                    .last_mut()
                    .ok_or_else(|| format!("line {}: place before loop", ln + 1))?;
                b.l.mapping.placements.push(Placement {
                    node: NodeId(parse_usize(f[1])?),
                    tile: parse_usize(f[2])?,
                    time: parse_usize(f[3])? as u32,
                });
            }
            Some("route") if f.len() == 6 => {
                blocks
                    .last_mut()
                    .ok_or_else(|| format!("line {}: route before loop", ln + 1))?
                    .route_rows += 1;
            }
            Some("pnr") if f.len() == 8 => {
                blocks
                    .last_mut()
                    .ok_or_else(|| format!("line {}: pnr before loop", ln + 1))?
                    .has_pnr = true;
            }
            Some("") | None if line.is_empty() => {}
            _ => return Err(format!("line {}: unrecognized row {line:?}", ln + 1)),
        }
    }

    // validate: reconstruct each loop's DFG and prove the placements route
    let spec = spec_of(&key);
    let mask = mask_of(&key, &spec);
    let mut loops = Vec::with_capacity(blocks.len());
    for (idx, b) in blocks.into_iter().enumerate() {
        if !b.has_pnr {
            return Err(format!("{}: loop block missing its pnr row", b.l.label));
        }
        let dfg = dfg_of(&key, idx, b.l.uf, b.l.vf)
            .ok_or_else(|| format!("loop {idx} out of range for {}", key.op.name()))?;
        if b.l.mapping.placements.len() != dfg.len() {
            return Err(format!(
                "{}: {} placements for a {}-node DFG",
                b.l.label,
                b.l.mapping.placements.len(),
                dfg.len()
            ));
        }
        let routes = route_mapping(&dfg, &spec, &mask, b.l.mapping.ii, &b.l.mapping.placements)
            .ok_or_else(|| format!("{}: placements do not route", b.l.label))?;
        if routes.edges.len() != b.route_rows {
            return Err(format!(
                "{}: {} route rows, Route pass derives {}",
                b.l.label,
                b.route_rows,
                routes.edges.len()
            ));
        }
        loops.push(b.l);
    }
    Ok((key, loops))
}

/// [`import_bitstream`] + publish into the process-wide compile cache: a
/// fresh process that installs a bitstream serves the fabric configuration
/// with zero mapper invocations.
///
/// # Errors
/// Everything [`import_bitstream`] rejects.
pub fn install_bitstream(text: &str) -> Result<CompileKey, String> {
    let (key, loops) = import_bitstream(text)?;
    compile_cache::publish(key.clone(), loops);
    Ok(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_compiler::mapper::map_dfg_with;

    fn entry_for(op: NonlinearOp) -> (CompileKey, Vec<CompiledLoop>) {
        let key = CompileKey {
            op,
            cgra_rows: 4,
            cgra_cols: 4,
            format: DataFormat::Fp16,
            taylor_terms: 4,
            unroll_candidates: vec![1, 2],
            seed: 0x71CA,
            dead_tiles: vec![],
            dead_links: vec![],
            universal: false,
            incremental: false,
        };
        let spec = spec_of(&key);
        let mask = mask_of(&key, &spec);
        let kernel = kernel_for(op, key.taylor_terms);
        let loops = kernel
            .loops
            .iter()
            .enumerate()
            .map(|(idx, l)| {
                let dfg = dfg_of(&key, idx, 1, 1).unwrap();
                let mapping = map_dfg_with(&dfg, &spec, key.seed, &mask, None).unwrap();
                let kind = match l.class {
                    picachu_ir::kernels::LoopClass::Reduction => LoopKind::Reduction,
                    picachu_ir::kernels::LoopClass::ElementWise => LoopKind::ElementWise,
                };
                CompiledLoop { label: l.label.clone(), kind, mapping, uf: 1, vf: 1 }
            })
            .collect();
        (key, loops)
    }

    #[test]
    fn bitstream_round_trips_exactly() {
        let (key, loops) = entry_for(NonlinearOp::Softmax);
        let text = export_bitstream(&key, &loops).unwrap();
        assert!(text.starts_with("picachu-bitstream,1\nkey,softmax,4,4,fp16,"));
        assert!(text.contains("\nloop,"));
        assert!(text.contains("\nplace,"));
        assert!(text.contains("\nroute,"));
        assert!(text.contains("\npnr,"));
        let (key2, loops2) = import_bitstream(&text).unwrap();
        assert_eq!(key, key2);
        assert_eq!(loops, loops2);
        // the text itself is deterministic
        assert_eq!(text, export_bitstream(&key2, &loops2).unwrap());
    }

    #[test]
    fn import_rejects_tampering() {
        let (key, loops) = entry_for(NonlinearOp::Relu);
        let text = export_bitstream(&key, &loops).unwrap();
        assert!(import_bitstream("").is_err(), "empty");
        assert!(import_bitstream("picachu-bitstream,999\n").is_err(), "bad version");
        let dropped: String = text
            .lines()
            .filter(|l| !l.starts_with("route,"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(import_bitstream(&dropped).is_err(), "route rows must match the Route pass");
        // moving a placement onto a different tile breaks routability or
        // the route-row count — either way import must reject it
        let tampered = text.replacen("place,0,", "place,0,0,99\n#", 1);
        assert!(import_bitstream(&tampered).is_err(), "tampered placement");
    }
}
