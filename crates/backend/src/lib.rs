//! # picachu-backend — the unified accelerator contract
//!
//! The paper's headline claims (Figs. 7–9, Table 7) are *comparative*:
//! PICACHU against a CPU configuration, an A100-class GPU, a Gemmini-class
//! accelerator, a Tandem-class vector processor and a conventional
//! homogeneous CGRA. Apples-to-apples comparison lives or dies on a shared
//! harness contract, so this crate defines the one interface every
//! comparison target implements:
//!
//! * [`Accelerator`] — the backend trait: execute an operator trace, report
//!   energy and silicon area;
//! * [`Breakdown`] — the canonical per-phase latency decomposition (matmul,
//!   nonlinear, data movement, DMA/ECC fault overhead), the *only* such type
//!   in the workspace;
//! * [`ExecutionReport`] — a breakdown plus its energy, stamped with the
//!   backend's name: the row type the shared bench harness consumes.
//!
//! The crate sits between the device models (`picachu`'s engine, the
//! `picachu-baselines` cost models) and the experiment harness
//! (`picachu-bench`): adding a seventh backend or a batched serving
//! front-end is a one-crate change against this contract.
//!
//! ## Units
//!
//! Backends clocked at the paper's 1 GHz report **cycles**, which at 1 GHz
//! are numerically nanoseconds; wall-clock models (the A100 roofline)
//! report **nanoseconds** directly. Totals from different backends are
//! therefore directly comparable, which is what lets one harness drive
//! every figure.

use picachu_llm::trace::TraceOp;
use picachu_llm::ModelConfig;
use std::fmt;

/// End-to-end latency decomposition (the quantity behind Figs. 1, 8, 9b).
///
/// This is the canonical breakdown shared by every [`Accelerator`]: the
/// engine's analytical accounting, the baseline cost models and the bench
/// harness all speak this type. Components are `f64` because wall-clock
/// backends produce fractional nanoseconds; cycle-accurate backends
/// accumulate in `u64` internally (see `picachu`'s `PhaseTotals`) and
/// convert once at the boundary, so integer cycle counts below 2⁵³ survive
/// the conversion exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Breakdown {
    /// Cycles (or ns) spent in GEMMs on the matmul substrate.
    pub gemm: f64,
    /// Cycles spent in nonlinear operations.
    pub nonlinear: f64,
    /// Exposed (un-overlapped) data-movement cycles.
    pub data_movement: f64,
    /// Fault-handling overhead: ECC scrubs/re-fetches and DMA stall
    /// retries. Zero on a healthy device — kept out of `data_movement` so
    /// the healthy-accounting identities (differential oracle, DESIGN §6)
    /// hold bit-identically whether or not a fault plan is active.
    pub overhead: f64,
}

impl Breakdown {
    /// Total latency across all four phases.
    pub fn total(&self) -> f64 {
        self.gemm + self.nonlinear + self.data_movement + self.overhead
    }

    /// Fraction of total time in nonlinear operations.
    pub fn nonlinear_share(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.nonlinear / self.total()
        }
    }

    /// Component-wise sum.
    pub fn add(&self, other: Breakdown) -> Breakdown {
        Breakdown {
            gemm: self.gemm + other.gemm,
            nonlinear: self.nonlinear + other.nonlinear,
            data_movement: self.data_movement + other.data_movement,
            overhead: self.overhead + other.overhead,
        }
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.3e} (gemm {:.1}%, nonlinear {:.1}%, data {:.1}%, fault {:.1}%)",
            self.total(),
            100.0 * self.gemm / self.total().max(1e-12),
            100.0 * self.nonlinear / self.total().max(1e-12),
            100.0 * self.data_movement / self.total().max(1e-12),
            100.0 * self.overhead / self.total().max(1e-12),
        )
    }
}

/// What a backend's compile stage looks like — the harness uses this to
/// decide whether warming caches before measurement is meaningful, and the
/// tables report it so readers know which targets pay a toolchain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileHint {
    /// The backend compiles kernels per operation and caches the result
    /// (PICACHU's modulo-scheduled mappings, the homogeneous CGRA's UF-1
    /// mappings). Pure analytical models report `false`.
    pub cached_kernel_compilation: bool,
    /// The backend exploits 4-lane INT16 vectorization when the workload's
    /// data format allows it.
    pub vectorizes_int16: bool,
}

impl CompileHint {
    /// Hint for a pure analytical cost model: nothing to compile.
    pub fn analytical() -> CompileHint {
        CompileHint::default()
    }
}

/// The result of executing one trace on one backend: the canonical
/// breakdown plus its energy, stamped with the backend's name. One report
/// is one row of the shared comparison harness.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// The backend that produced the report ([`Accelerator::name`]).
    pub backend: String,
    /// Per-phase latency.
    pub breakdown: Breakdown,
    /// Energy for the breakdown in nanojoules.
    pub energy_nj: f64,
}

impl ExecutionReport {
    /// Total latency (cycles or ns — see the crate-level unit note).
    pub fn total(&self) -> f64 {
        self.breakdown.total()
    }

    /// Whether every component is finite and non-negative — the first
    /// thing the backend-parity suite asserts about every backend.
    pub fn is_sane(&self) -> bool {
        let b = &self.breakdown;
        [b.gemm, b.nonlinear, b.data_movement, b.overhead, self.energy_nj]
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0)
    }
}

impl fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} | {:.3e} nJ", self.backend, self.breakdown, self.energy_nj)
    }
}

/// Relative tolerance within which the backend-parity suite holds a *warm*
/// [`Accelerator::estimate_trace`] to the measured
/// `execute_trace(..).total()` of the same trace. Estimates are pure
/// re-evaluations of the same cost models, so agreement is essentially
/// exact; the epsilon only absorbs f64 summation-order noise.
pub const HINT_WARM_TOLERANCE: f64 = 1e-9;

/// A device that can execute full operator traces — the unified contract
/// between the compilation/modeling layers and the experiment harness.
///
/// Implementors: `PicachuEngine` (the plug-in CGRA system), the four
/// `picachu-baselines` cost models hosted on the shared systolic array
/// (CPU, Gemmini, Tandem, homogeneous CGRA), and the A100 roofline model.
///
/// `execute_trace` takes `&mut self` because compiled backends populate
/// kernel caches while executing; analytical models simply ignore the
/// mutability.
pub trait Accelerator {
    /// Backend name for tables, figures and JSON rows.
    fn name(&self) -> &str;

    /// What this backend's compile stage looks like.
    fn compile_hint(&self) -> CompileHint {
        CompileHint::analytical()
    }

    /// Executes a full operator trace, returning the per-phase report.
    fn execute_trace(&mut self, trace: &[TraceOp]) -> ExecutionReport;

    /// Cheap, read-only estimate of `execute_trace(trace).total()` in the
    /// backend's reporting unit (cycles at 1 GHz ≡ ns, wall-ns for the
    /// GPU). This is the capacity/cost hint the serving layer's placer
    /// uses to compare shards without mutating backend state.
    ///
    /// Contract (enforced for all six devices by `tests/backends.rs`):
    /// once the backend's kernel caches are warm — after one
    /// `execute_trace` over the same operations — the estimate agrees
    /// with the measured total to within [`HINT_WARM_TOLERANCE`] relative
    /// error. A cold estimate may be cruder (PICACHU has not mapped its
    /// kernels yet) but must stay within a documented constant factor.
    fn estimate_trace(&self, trace: &[TraceOp]) -> f64 {
        // Ideal-machine floor: one MAC and one nonlinear element per
        // cycle. Real backends override this with their cost model.
        trace.iter().map(|o| (o.macs() + o.elements()) as f64).sum()
    }

    /// Energy in nanojoules for a breakdown this backend produced.
    fn energy_nj(&self, b: &Breakdown) -> f64;

    /// Silicon area of the backend in mm² (die area for the GPU).
    fn area_mm2(&self) -> f64;

    /// Convenience: evaluate a model end to end at a sequence length
    /// (prefill trace).
    fn execute_model(&mut self, cfg: &ModelConfig, seq: usize) -> ExecutionReport {
        self.execute_trace(&picachu_llm::model_trace(cfg, seq))
    }

    /// Stamps a breakdown into a report under this backend's name, pricing
    /// its energy. Implementors' `execute_trace` typically ends here.
    fn report(&self, breakdown: Breakdown) -> ExecutionReport {
        ExecutionReport {
            backend: self.name().to_string(),
            energy_nj: self.energy_nj(&breakdown),
            breakdown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accounting() {
        let b = Breakdown { gemm: 60.0, nonlinear: 30.0, data_movement: 8.0, overhead: 2.0 };
        assert_eq!(b.total(), 100.0);
        assert!((b.nonlinear_share() - 0.3).abs() < 1e-12);
        let s = b.add(b);
        assert_eq!(s.total(), 200.0);
        assert_eq!(s.overhead, 4.0);
    }

    #[test]
    fn empty_breakdown_safe() {
        let b = Breakdown::default();
        assert_eq!(b.total(), 0.0);
        assert_eq!(b.nonlinear_share(), 0.0);
    }

    struct Fixed;
    impl Accelerator for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn execute_trace(&mut self, trace: &[TraceOp]) -> ExecutionReport {
            self.report(Breakdown { gemm: trace.len() as f64, ..Breakdown::default() })
        }
        fn energy_nj(&self, b: &Breakdown) -> f64 {
            2.0 * b.total()
        }
        fn area_mm2(&self) -> f64 {
            1.5
        }
    }

    #[test]
    fn trait_report_prices_energy_and_stamps_name() {
        let mut d = Fixed;
        let r = d.execute_trace(&[TraceOp::Gemm { m: 1, k: 1, n: 1, count: 1 }]);
        assert_eq!(r.backend, "fixed");
        assert_eq!(r.total(), 1.0);
        assert_eq!(r.energy_nj, 2.0);
        assert!(r.is_sane());
        assert_eq!(d.compile_hint(), CompileHint::analytical());
    }

    #[test]
    fn insane_reports_detected() {
        let r = ExecutionReport {
            backend: "x".into(),
            breakdown: Breakdown { gemm: f64::NAN, ..Breakdown::default() },
            energy_nj: 0.0,
        };
        assert!(!r.is_sane());
        let r2 = ExecutionReport {
            backend: "x".into(),
            breakdown: Breakdown { nonlinear: -1.0, ..Breakdown::default() },
            energy_nj: 0.0,
        };
        assert!(!r2.is_sane());
    }
}
