//! Instruction vocabulary: LLVM-like primitive operations, the special
//! operations backed by PICACHU's dedicated functional units, and the fused
//! opcodes of Table 4.

use std::fmt;

/// A DFG node operation.
///
/// The primitive set mirrors the LLVM IR instructions the paper's DFGs are
/// built from; `Fp2Fx`, `Pow2i` and `LutRead` are the special operations of
/// §4.2.1; the `Fused*` opcodes are the Table 4 patterns collapsed into a
/// single-cycle node by DFG tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    // --- primitives (LLVM IR) ---
    /// SSA φ-node: loop-carried value selection.
    Phi,
    /// Addition (int or FP depending on kernel format).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Pipelined division (executed by the CoT divider, not vectorized).
    Div,
    /// Comparison producing a predicate.
    Cmp,
    /// Predicated selection (`select` after partial predication).
    Select,
    /// Loop back-branch (becomes a predicate chain under partial predication).
    Br,
    /// Memory read through a Shared Buffer port.
    Load,
    /// Memory write through a Shared Buffer port.
    Store,
    /// Arithmetic/logical shift (used by the integer kernels).
    Shift,
    /// Immediate/constant materialization.
    Const,
    /// Loop-invariant parameter read (a register holding a per-channel
    /// runtime value such as the softmax max or the normalization 1/σ).
    Param,
    // --- special functional units (§4.2.1) ---
    /// FP2FX split: FP value → integer + fraction components.
    Fp2Fx,
    /// Exponent construction `2^i` (companion of FP2FX in the exp kernel).
    Pow2i,
    /// Lookup-table read (e.g. `Φ(·)` for GeLU).
    LutRead,
    // --- fused operations (Table 4) ---
    /// `phi+add+add` — induction variable + address computation in one cycle.
    FusedPhiAddAdd,
    /// `phi+add` — accumulator update.
    FusedPhiAdd,
    /// `add+add` — address/offset chain.
    FusedAddAdd,
    /// `cmp+select` — max/min in one cycle.
    FusedCmpSelect,
    /// `mul+add+add` — polynomial-term chain.
    FusedMulAddAdd,
    /// `mul+add` — Horner step (fused multiply-add).
    FusedMulAdd,
    /// `cmp+br` — loop-exit test in one cycle.
    FusedCmpBr,
}

impl Opcode {
    /// `true` for nodes that access the Shared Buffer.
    pub fn is_memory(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// `true` for control-flow nodes (converted to dataflow by partial
    /// predication but still constrained to branch-capable tiles).
    pub fn is_control(self) -> bool {
        matches!(self, Opcode::Br | Opcode::FusedCmpBr)
    }

    /// `true` for computation nodes (everything except memory accesses;
    /// this is the numerator of the §3.1 computational-intensity metric).
    pub fn is_compute(self) -> bool {
        !self.is_memory()
    }

    /// `true` for the Table 4 fused opcodes.
    pub fn is_fused(self) -> bool {
        self.fused_width() > 1
    }

    /// Number of primitive operations a node represents (1 for primitives).
    pub fn fused_width(self) -> usize {
        match self {
            Opcode::FusedPhiAddAdd | Opcode::FusedMulAddAdd => 3,
            Opcode::FusedPhiAdd
            | Opcode::FusedAddAdd
            | Opcode::FusedCmpSelect
            | Opcode::FusedMulAdd
            | Opcode::FusedCmpBr => 2,
            _ => 1,
        }
    }

    /// `true` if the opcode needs a multiplier lane (CoT-class resource).
    pub fn needs_multiplier(self) -> bool {
        matches!(
            self,
            Opcode::Mul | Opcode::Div | Opcode::FusedMulAdd | Opcode::FusedMulAddAdd
        )
    }

    /// `true` if the opcode needs a special functional unit (CoT only).
    pub fn needs_special_unit(self) -> bool {
        matches!(self, Opcode::Fp2Fx | Opcode::Pow2i | Opcode::LutRead | Opcode::Div)
    }

    /// `true` if the opcode can be replicated across the four 16-bit lanes
    /// in INT16 mode (§5.3.3: `phi` and division are not vectorizable —
    /// division is split into multiple nodes instead).
    pub fn is_vectorizable(self) -> bool {
        !matches!(
            self,
            Opcode::Phi
                | Opcode::Div
                | Opcode::Br
                | Opcode::FusedPhiAdd
                | Opcode::FusedPhiAddAdd
                | Opcode::FusedCmpBr
        )
    }

    /// Execution latency in cycles. Fused nodes still take a single cycle
    /// (that is the point of the specialized FUs); division is pipelined with
    /// multi-cycle latency but single-cycle initiation.
    pub fn latency(self) -> u32 {
        match self {
            Opcode::Div => 4,
            _ => 1,
        }
    }

    /// Short mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Phi => "phi",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::Div => "div",
            Opcode::Cmp => "cmp",
            Opcode::Select => "select",
            Opcode::Br => "br",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::Shift => "shift",
            Opcode::Const => "const",
            Opcode::Param => "param",
            Opcode::Fp2Fx => "fp2fx",
            Opcode::Pow2i => "pow2i",
            Opcode::LutRead => "lut",
            Opcode::FusedPhiAddAdd => "phi+add+add",
            Opcode::FusedPhiAdd => "phi+add",
            Opcode::FusedAddAdd => "add+add",
            Opcode::FusedCmpSelect => "cmp+select",
            Opcode::FusedMulAddAdd => "mul+add+add",
            Opcode::FusedMulAdd => "mul+add",
            Opcode::FusedCmpBr => "cmp+br",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The recurring DFG patterns of Table 4, used by the fusion pass and
/// reported by the `table4_patterns` experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusedPattern {
    /// `phi → add → add` chain (and its `phi+add` / bare-`phi` prefixes).
    PhiAddAdd,
    /// `add → add` chain.
    AddAdd,
    /// `cmp → select`.
    CmpSelect,
    /// `mul → add → add` chain (and `mul+add` / bare-`mul`).
    MulAddAdd,
    /// `cmp → br`.
    CmpBr,
}

impl FusedPattern {
    /// All Table 4 patterns, in table column order.
    pub const ALL: [FusedPattern; 5] = [
        FusedPattern::PhiAddAdd,
        FusedPattern::AddAdd,
        FusedPattern::CmpSelect,
        FusedPattern::MulAddAdd,
        FusedPattern::CmpBr,
    ];

    /// Table-header name.
    pub fn name(self) -> &'static str {
        match self {
            FusedPattern::PhiAddAdd => "phi+add(+add)",
            FusedPattern::AddAdd => "add+add",
            FusedPattern::CmpSelect => "cmp+select",
            FusedPattern::MulAddAdd => "mul+add(+add)",
            FusedPattern::CmpBr => "cmp+br",
        }
    }
}

impl fmt::Display for FusedPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_compute_partition() {
        assert!(Opcode::Load.is_memory());
        assert!(Opcode::Store.is_memory());
        assert!(!Opcode::Load.is_compute());
        assert!(Opcode::Add.is_compute());
        assert!(Opcode::FusedMulAdd.is_compute());
    }

    #[test]
    fn fused_widths() {
        assert_eq!(Opcode::FusedPhiAddAdd.fused_width(), 3);
        assert_eq!(Opcode::FusedMulAdd.fused_width(), 2);
        assert_eq!(Opcode::Add.fused_width(), 1);
        assert!(Opcode::FusedCmpBr.is_fused());
        assert!(!Opcode::Cmp.is_fused());
    }

    #[test]
    fn special_units_are_cot_only() {
        for op in [Opcode::Fp2Fx, Opcode::Pow2i, Opcode::LutRead, Opcode::Div] {
            assert!(op.needs_special_unit(), "{op}");
        }
        assert!(!Opcode::Add.needs_special_unit());
    }

    #[test]
    fn vectorization_exclusions_match_paper() {
        // §5.3.3: phi is not vectorizable; division is split instead.
        assert!(!Opcode::Phi.is_vectorizable());
        assert!(!Opcode::Div.is_vectorizable());
        assert!(Opcode::Mul.is_vectorizable());
        assert!(Opcode::FusedMulAdd.is_vectorizable());
    }

    #[test]
    fn div_is_pipelined_multicycle() {
        assert!(Opcode::Div.latency() > 1);
        assert_eq!(Opcode::FusedMulAddAdd.latency(), 1);
    }

    #[test]
    fn mnemonics_unique() {
        let all = [
            Opcode::Phi, Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Div,
            Opcode::Cmp, Opcode::Select, Opcode::Br, Opcode::Load, Opcode::Store,
            Opcode::Shift, Opcode::Const, Opcode::Param, Opcode::Fp2Fx, Opcode::Pow2i,
            Opcode::LutRead,
            Opcode::FusedPhiAddAdd, Opcode::FusedPhiAdd, Opcode::FusedAddAdd,
            Opcode::FusedCmpSelect, Opcode::FusedMulAddAdd, Opcode::FusedMulAdd,
            Opcode::FusedCmpBr,
        ];
        let mut names: Vec<_> = all.iter().map(|o| o.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
