//! The predefined kernel library (§4.3 "Lowering to LLVM IR"): every Table 1
//! nonlinear operation expressed as a [`Kernel`] of single-level loop DFGs,
//! exactly the decomposition of §3.1 — EO ops are one loop, Softmax is three,
//! normalizations are two.
//!
//! The DFGs here are **unfused** (primitive opcodes only) and **functionally
//! executable**: nodes carry the folded constants (Taylor coefficients,
//! `log2 e`, …) and loop-invariant values enter through `Param` reads, so
//! [`crate::interp`] can run a kernel on real data and match the reference
//! mathematics. The compiler's DFG tuning pass performs the Table 4 fusion.

use crate::builder::DfgBuilder;
use crate::dfg::Dfg;
use crate::opcode::Opcode;
use std::fmt;

/// Loop classification used by the engine's dataflow cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopClass {
    /// Produces a scalar statistic; cannot stream its consumers.
    Reduction,
    /// One output per element; streams against the systolic array (Case 1).
    ElementWise,
}

/// One single-level loop of a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelLoop {
    /// Label, e.g. `"softmax(2)"` as in Fig. 7a.
    pub label: String,
    /// Reduction or element-wise.
    pub class: LoopClass,
    /// The loop-body DFG (one iteration, steady state).
    pub dfg: Dfg,
}

/// A nonlinear operation as the compiler sees it: a name plus its loops.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Operation name matching `picachu_nonlinear::NonlinearOp::name()`.
    pub name: &'static str,
    /// The single-level loops, in execution order.
    pub loops: Vec<KernelLoop>,
}

impl Kernel {
    /// Total node count across loops.
    pub fn total_nodes(&self) -> usize {
        self.loops.iter().map(|l| l.dfg.len()).sum()
    }

    /// Whole-operation computational intensity (§3.1): compute nodes over
    /// memory nodes, summed across loops.
    pub fn computational_intensity(&self) -> f64 {
        let mem: usize = self.loops.iter().map(|l| l.dfg.memory_nodes()).sum();
        let comp: usize = self.loops.iter().map(|l| l.dfg.compute_nodes()).sum();
        if mem == 0 {
            f64::INFINITY
        } else {
            comp as f64 / mem as f64
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel '{}' ({} loops, {} nodes)",
            self.name,
            self.loops.len(),
            self.total_nodes()
        )
    }
}

fn el(label: &str, dfg: Dfg) -> KernelLoop {
    KernelLoop { label: label.to_string(), class: LoopClass::ElementWise, dfg }
}

fn red(label: &str, dfg: Dfg) -> KernelLoop {
    KernelLoop { label: label.to_string(), class: LoopClass::Reduction, dfg }
}

/// Softmax: max-reduction, exp+sum reduction (`param 0` = running max),
/// element-wise divide (`param 0` = the sum).
pub fn softmax_kernel(terms: usize) -> Kernel {
    // Loop 1: running max.
    let mut b = DfgBuilder::new("softmax(1)");
    let i = b.loop_control();
    let x = b.load_elem(i);
    b.reduce_max(x);
    let l1 = b.finish();

    // Loop 2: exp(x - u) stored, sum accumulated.
    let mut b = DfgBuilder::new("softmax(2)");
    let i = b.loop_control();
    let x = b.load_elem(i);
    let u = b.param(0);
    let d = b.op(Opcode::Sub, &[x, u]);
    let e = b.exp_chain(d, terms, 1.0);
    b.accumulate(e);
    b.store_elem(i, e);
    let l2 = b.finish();

    // Loop 3: divide by the sum.
    let mut b = DfgBuilder::new("softmax(3)");
    let i = b.loop_control();
    let e = b.load_elem(i);
    let s = b.param(0);
    let q = b.op(Opcode::Div, &[e, s]);
    b.store_elem(i, q);
    let l3 = b.finish();

    Kernel {
        name: "softmax",
        loops: vec![red("softmax(1)", l1), red("softmax(2)", l2), el("softmax(3)", l3)],
    }
}

/// ReLU: one compare-select per element.
pub fn relu_kernel() -> Kernel {
    let mut b = DfgBuilder::new("relu");
    let i = b.loop_control();
    let x = b.load_elem(i);
    let c = b.op_imm(Opcode::Cmp, &[x], 0.0); // x > 0
    let y = b.op_imm(Opcode::Select, &[c, x], 0.0); // c ? x : 0
    b.store_elem(i, y);
    Kernel { name: "relu", loops: vec![el("relu", b.finish())] }
}

/// Emits the GeLU tanh-form arithmetic on `x`, returning the result node.
fn gelu_body(b: &mut DfgBuilder, x: crate::dfg::NodeId, terms: usize) -> crate::dfg::NodeId {
    let c = (2.0f32 / std::f32::consts::PI).sqrt();
    let x2 = b.op(Opcode::Mul, &[x, x]);
    let x3 = b.op(Opcode::Mul, &[x2, x]);
    let m = b.op_imm(Opcode::Mul, &[x3], 0.044715);
    let a = b.op(Opcode::Add, &[x, m]);
    // tanh(v) = (e^{2v} - 1) / (e^{2v} + 1): fold the 2 into the scale
    let t = b.op_imm(Opcode::Mul, &[a], 2.0 * c);
    let e = b.exp_chain(t, terms, 1.0);
    let num = b.op_imm(Opcode::Sub, &[e], 1.0); // e - 1
    let den = b.op_imm(Opcode::Add, &[e], 1.0); // e + 1
    let th = b.op(Opcode::Div, &[num, den]);
    let one_plus = b.op_imm(Opcode::Add, &[th], 1.0);
    let half_x = b.op_imm(Opcode::Mul, &[x], 0.5);
    b.op(Opcode::Mul, &[half_x, one_plus])
}

/// GeLU via the tanh form: cubic, exp chain, rational combine.
pub fn gelu_kernel(terms: usize) -> Kernel {
    let mut b = DfgBuilder::new("gelu");
    let i = b.loop_control();
    let x = b.load_elem(i);
    let y = gelu_body(&mut b, x, terms);
    b.store_elem(i, y);
    Kernel { name: "gelu", loops: vec![el("gelu", b.finish())] }
}

/// GeLU via the Compute-Tile Φ LUT: table read + multiply.
pub fn gelu_lut_kernel() -> Kernel {
    let mut b = DfgBuilder::new("gelu-lut");
    let i = b.loop_control();
    let x = b.load_elem(i);
    let phi = b.op(Opcode::LutRead, &[x]);
    let y = b.op(Opcode::Mul, &[x, phi]);
    b.store_elem(i, y);
    Kernel { name: "gelu-lut", loops: vec![el("gelu-lut", b.finish())] }
}

/// Emits the SiLU arithmetic `x·σ(x)` on `x`.
fn silu_body(b: &mut DfgBuilder, x: crate::dfg::NodeId, terms: usize) -> crate::dfg::NodeId {
    let e = b.exp_chain(x, terms, -1.0); // e^{-x}
    let den = b.op_imm(Opcode::Add, &[e], 1.0); // 1 + e^{-x}
    let sig = b.op_imm(Opcode::Div, &[den], 1.0); // 1 / den
    b.op(Opcode::Mul, &[x, sig])
}

/// SiLU: sigmoid from the exp chain, then gate multiply.
pub fn silu_kernel(terms: usize) -> Kernel {
    let mut b = DfgBuilder::new("silu");
    let i = b.loop_control();
    let x = b.load_elem(i);
    let y = silu_body(&mut b, x, terms);
    b.store_elem(i, y);
    Kernel { name: "silu", loops: vec![el("silu", b.finish())] }
}

/// SwiGLU: SiLU on the first gate, multiply by the second.
pub fn swiglu_kernel(terms: usize) -> Kernel {
    let mut b = DfgBuilder::new("swiglu");
    let i = b.loop_control();
    let u = b.load_elem(i);
    let v = b.load_elem(i);
    let s = silu_body(&mut b, u, terms);
    let y = b.op(Opcode::Mul, &[s, v]);
    b.store_elem(i, y);
    Kernel { name: "swiglu", loops: vec![el("swiglu", b.finish())] }
}

/// GeGLU: GeLU on the first gate, multiply by the second.
pub fn geglu_kernel(terms: usize) -> Kernel {
    let mut b = DfgBuilder::new("geglu");
    let i = b.loop_control();
    let u = b.load_elem(i);
    let v = b.load_elem(i);
    let g = gelu_body(&mut b, u, terms);
    let y = b.op(Opcode::Mul, &[g, v]);
    b.store_elem(i, y);
    Kernel { name: "geglu", loops: vec![el("geglu", b.finish())] }
}

/// LayerNorm: one fused reduction loop (Σx and Σx²), one element-wise loop
/// (`param 0` = μ, `param 1` = γ/σ).
pub fn layernorm_kernel() -> Kernel {
    let mut b = DfgBuilder::new("layernorm(1)");
    let i = b.loop_control();
    let x = b.load_elem(i);
    b.accumulate(x); // Σx
    let sq = b.op(Opcode::Mul, &[x, x]);
    b.accumulate(sq); // Σx²
    let l1 = b.finish();

    let mut b = DfgBuilder::new("layernorm(2)");
    let i = b.loop_control();
    let x = b.load_elem(i);
    let mu = b.param(0);
    let c = b.op(Opcode::Sub, &[x, mu]);
    let inv = b.param(1);
    let s = b.op(Opcode::Mul, &[c, inv]); // · γ/σ
    let y = b.op_imm(Opcode::Add, &[s], 0.0); // + β (folded)
    b.store_elem(i, y);
    let l2 = b.finish();

    Kernel {
        name: "layernorm",
        loops: vec![red("layernorm(1)", l1), el("layernorm(2)", l2)],
    }
}

/// RMSNorm: sum-of-squares reduction, element-wise rescale
/// (`param 0` = 1/σ; the per-channel gain comes from memory).
pub fn rmsnorm_kernel() -> Kernel {
    let mut b = DfgBuilder::new("rmsnorm(1)");
    let i = b.loop_control();
    let x = b.load_elem(i);
    let sq = b.op(Opcode::Mul, &[x, x]);
    b.accumulate(sq);
    let l1 = b.finish();

    let mut b = DfgBuilder::new("rmsnorm(2)");
    let i = b.loop_control();
    let x = b.load_elem(i);
    let g = b.load_elem(i); // per-channel gain weight
    let inv = b.param(0);
    let s = b.op(Opcode::Mul, &[x, inv]);
    let y = b.op(Opcode::Mul, &[s, g]);
    b.store_elem(i, y);
    let l2 = b.finish();

    Kernel {
        name: "rmsnorm",
        loops: vec![red("rmsnorm(1)", l1), el("rmsnorm(2)", l2)],
    }
}

/// RoPE: per pair, the precomputed `θ_i` is loaded from memory, the angle is
/// `m·θ_i` (`param 0` = position `m`), and two sine/cosine chains feed a
/// 2×2 rotation.
pub fn rope_kernel(terms: usize) -> Kernel {
    let mut b = DfgBuilder::new("rope");
    let i = b.loop_control();
    let x0 = b.load_elem(i);
    let x1 = b.load_elem(i);
    let theta = b.load_elem(i);
    let m = b.param(0);
    let angle = b.op(Opcode::Mul, &[theta, m]);
    let s = b.sin_chain(angle, terms, false);
    let c = b.sin_chain(angle, terms, true);
    let a = b.op(Opcode::Mul, &[x0, c]);
    let bb = b.op(Opcode::Mul, &[x1, s]);
    let y0 = b.op(Opcode::Sub, &[a, bb]);
    let d = b.op(Opcode::Mul, &[x0, s]);
    let e = b.op(Opcode::Mul, &[x1, c]);
    let y1 = b.op(Opcode::Add, &[d, e]);
    b.store_elem(i, y0);
    b.store_elem(i, y1);
    Kernel { name: "rope", loops: vec![el("rope", b.finish())] }
}

/// The full kernel library with `terms` Taylor terms for the exp/sin chains.
/// Order follows Table 1.
pub fn kernel_library(terms: usize) -> Vec<Kernel> {
    vec![
        softmax_kernel(terms),
        relu_kernel(),
        gelu_kernel(terms),
        geglu_kernel(terms),
        silu_kernel(terms),
        swiglu_kernel(terms),
        layernorm_kernel(),
        rmsnorm_kernel(),
        rope_kernel(terms),
    ]
}

/// Looks a kernel up by name in a library slice.
pub fn find_kernel<'a>(lib: &'a [Kernel], name: &str) -> Option<&'a Kernel> {
    lib.iter().find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_covers_table1() {
        let lib = kernel_library(4);
        assert_eq!(lib.len(), 9);
        for k in &lib {
            for l in &k.loops {
                assert!(l.dfg.validate().is_ok(), "{}: {:?}", k.name, l.dfg.validate());
                assert!(l.dfg.len() >= 8, "{} suspiciously small", l.label);
            }
        }
    }

    #[test]
    fn loop_structure_matches_section_3_1() {
        let lib = kernel_library(4);
        let softmax = find_kernel(&lib, "softmax").unwrap();
        assert_eq!(softmax.loops.len(), 3);
        assert_eq!(softmax.loops[0].class, LoopClass::Reduction);
        assert_eq!(softmax.loops[1].class, LoopClass::Reduction);
        assert_eq!(softmax.loops[2].class, LoopClass::ElementWise);
        let ln = find_kernel(&lib, "layernorm").unwrap();
        assert_eq!(ln.loops.len(), 2);
        assert_eq!(ln.loops[0].class, LoopClass::Reduction);
        for name in ["relu", "gelu", "silu", "swiglu", "geglu", "rope"] {
            assert_eq!(find_kernel(&lib, name).unwrap().loops.len(), 1, "{name}");
        }
    }

    #[test]
    fn intensity_shape_matches_motivation() {
        // §3.1: all operations except ReLU exceed ~5, max ~14.5.
        let lib = kernel_library(6);
        let relu = find_kernel(&lib, "relu").unwrap().computational_intensity();
        let mut max_int: f64 = 0.0;
        for k in &lib {
            let ci = k.computational_intensity();
            assert!(ci.is_finite(), "{}", k.name);
            max_int = max_int.max(ci);
            if k.name != "relu" && k.name != "gelu-lut" && k.name != "rmsnorm" {
                assert!(ci > relu, "{} ({ci}) should exceed relu ({relu})", k.name);
            }
        }
        assert!(relu < 5.3, "relu intensity {relu}");
        assert!(max_int > 10.0 && max_int < 25.0, "max intensity {max_int}");
    }

    #[test]
    fn exp_terms_grow_kernels() {
        let small = softmax_kernel(3).total_nodes();
        let large = softmax_kernel(8).total_nodes();
        assert!(large > small);
        assert_eq!(large - small, 2 * 5); // 2 nodes per extra term in loop 2
    }

    #[test]
    fn every_elementwise_loop_stores() {
        for k in kernel_library(4) {
            for l in &k.loops {
                if l.class == LoopClass::ElementWise {
                    let stores = l.dfg.nodes().iter().filter(|n| n.op == Opcode::Store).count();
                    assert!(stores >= 1, "{} has no store", l.label);
                }
            }
        }
    }

    #[test]
    fn reductions_have_recurrences() {
        for k in kernel_library(4) {
            for l in &k.loops {
                if l.class == LoopClass::Reduction {
                    assert!(l.dfg.rec_mii() >= 2, "{} unfused RecMII", l.label);
                }
            }
        }
    }

    #[test]
    fn gelu_lut_is_tiny_vs_taylor_gelu() {
        let lut = gelu_lut_kernel().total_nodes();
        let taylor = gelu_kernel(6).total_nodes();
        assert!(lut * 2 < taylor, "LUT kernel {lut} vs Taylor {taylor}");
    }

    #[test]
    fn softmax2_node_count_formula() {
        // control 4 + load 3 + param 1 + sub 1 + exp (2T+4) + accum 2 + store 3
        for t in [3usize, 4, 6, 8] {
            assert_eq!(softmax_kernel(t).loops[1].dfg.len(), 2 * t + 18);
        }
    }

    #[test]
    fn kernels_carry_real_constants() {
        // the exp chain's first multiply folds log2(e)
        let k = softmax_kernel(4);
        let has_log2e = k.loops[1]
            .dfg
            .nodes()
            .iter()
            .any(|n| n.imms.first().is_some_and(|&v| (v - std::f32::consts::LOG2_E).abs() < 1e-6));
        assert!(has_log2e, "exp chain must fold log2(e)");
        // reduce_max φ starts at -inf
        let max_phi = k.loops[0]
            .dfg
            .nodes()
            .iter()
            .any(|n| n.op == Opcode::Phi && n.imms.first() == Some(&f32::NEG_INFINITY));
        assert!(max_phi, "max reduction φ must start at -inf");
    }

    #[test]
    fn params_mark_loop_invariants() {
        let lib = kernel_library(4);
        for (name, loop_idx, params) in
            [("softmax", 1usize, 1usize), ("softmax", 2, 1), ("layernorm", 1, 2), ("rmsnorm", 1, 1), ("rope", 0, 1)]
        {
            let k = find_kernel(&lib, name).unwrap();
            let count = k.loops[loop_idx]
                .dfg
                .nodes()
                .iter()
                .filter(|n| n.op == Opcode::Param)
                .count();
            assert_eq!(count, params, "{name}({loop_idx})");
        }
    }
}
