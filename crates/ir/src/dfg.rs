//! Data-flow graphs with loop-carried edges.
//!
//! A [`Dfg`] represents the body of one single-level loop in steady state:
//! each node is one instruction, intra-iteration dependences are edges with
//! distance 0, and loop-carried dependences (φ back-edges) carry distance ≥ 1.
//! The two analyses the compiler and the motivation study need live here:
//! the recurrence-constrained minimum II (`RecMII`) and the §3.1
//! computational-intensity metric.

use crate::opcode::Opcode;
use std::collections::VecDeque;
use std::fmt;

/// Index of a node within its [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A dependence edge: `from` produces a value consumed by the owning node,
/// `distance` iterations later (0 = same iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Producer node.
    pub from: NodeId,
    /// Loop-carried dependence distance in iterations.
    pub distance: u32,
}

/// One instruction of the loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// This node's id (equal to its index in [`Dfg::nodes`]).
    pub id: NodeId,
    /// Operation.
    pub op: Opcode,
    /// Input dependences.
    pub inputs: Vec<Edge>,
    /// Immediate operands (folded constants). Primitive nodes use at most
    /// one; fused nodes carry their members' immediates in chain order.
    /// Semantics per opcode are defined by [`crate::interp`].
    pub imms: Vec<f32>,
    /// For fused nodes: how many external inputs each member contributed,
    /// in chain order (the operand routing inside the fused FU). Empty for
    /// primitive nodes.
    pub member_inputs: Vec<u8>,
}

/// The data-flow graph of one loop body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dfg {
    /// Kernel-loop label, e.g. `"softmax(2)"`.
    pub name: String,
    nodes: Vec<Node>,
}

impl Dfg {
    /// Creates an empty DFG with the given label.
    pub fn new(name: impl Into<String>) -> Dfg {
        Dfg {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// Appends a node and returns its id. Structural invariants (edge
    /// targets in range, topological ordering of same-iteration edges) are
    /// checked by [`Dfg::validate`], which the builder runs on `finish`.
    pub fn push(&mut self, op: Opcode, inputs: Vec<Edge>) -> NodeId {
        self.push_imm(op, inputs, Vec::new())
    }

    /// [`Dfg::push`] with immediate operands.
    pub fn push_imm(&mut self, op: Opcode, inputs: Vec<Edge>, imms: Vec<f32>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { id, op, inputs, imms, member_inputs: Vec::new() });
        id
    }

    /// Appends a fully-specified node (used by the fusion pass, which also
    /// sets the per-member operand routing). The node's `id` is assigned
    /// here.
    pub fn push_node(&mut self, mut node: Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        node.id = id;
        self.nodes.push(node);
        id
    }

    /// All nodes in insertion order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node lookup.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a loop-carried dependence edge after both endpoints exist
    /// (recurrences cannot be expressed at `push` time because the producer
    /// is created after the φ that consumes it).
    ///
    /// # Panics
    /// Panics if either node is missing or `distance == 0`.
    pub fn add_loop_edge(&mut self, target: NodeId, from: NodeId, distance: u32) {
        assert!(distance > 0, "loop edges need distance >= 1");
        assert!(target.0 < self.nodes.len() && from.0 < self.nodes.len());
        self.nodes[target.0].inputs.push(Edge { from, distance });
    }

    /// Replaces the node list wholesale (used by the fusion/vectorization
    /// transforms, which rebuild graphs).
    pub fn replace_nodes(&mut self, nodes: Vec<Node>) {
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.id.0, i, "node ids must equal indices after rebuild");
        }
        self.nodes = nodes;
    }

    /// Successor lists (same-iteration and loop-carried).
    pub fn successors(&self) -> Vec<Vec<NodeId>> {
        let mut succ = vec![Vec::new(); self.nodes.len()];
        for n in &self.nodes {
            for e in &n.inputs {
                succ[e.from.0].push(n.id);
            }
        }
        succ
    }

    /// Count of memory-access nodes (loads + stores).
    pub fn memory_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.op.is_memory()).count()
    }

    /// Count of computation nodes.
    pub fn compute_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.op.is_compute()).count()
    }

    /// §3.1 computational intensity: compute nodes / memory nodes.
    ///
    /// Returns `f64::INFINITY` for graphs without memory accesses.
    pub fn computational_intensity(&self) -> f64 {
        let mem = self.memory_nodes();
        if mem == 0 {
            f64::INFINITY
        } else {
            self.compute_nodes() as f64 / mem as f64
        }
    }

    /// The recurrence-constrained minimum initiation interval:
    /// `RecMII = max over cycles ⌈Σ latency / Σ distance⌉`.
    ///
    /// Computed by the standard iterative algorithm: binary search over II is
    /// unnecessary at these graph sizes, so we use Floyd–Warshall on the
    /// constraint graph (longest path with latency weights minus `II·distance`
    /// must admit no positive cycle). Returns 1 for acyclic graphs.
    pub fn rec_mii(&self) -> u32 {
        let n = self.nodes.len();
        if n == 0 {
            return 1;
        }
        // Try increasing II until no positive-weight cycle exists.
        'outer: for ii in 1..=(n as u32 * 4 + 4) {
            // dist[i][j] = max over paths of (sum latency - ii*sum distance)
            const NEG: i64 = i64::MIN / 4;
            let mut d = vec![vec![NEG; n]; n];
            for node in &self.nodes {
                for e in &node.inputs {
                    let w = self.nodes[e.from.0].op.latency() as i64
                        - (ii as i64) * e.distance as i64;
                    let cell = &mut d[e.from.0][node.id.0];
                    *cell = (*cell).max(w);
                }
            }
            for k in 0..n {
                for i in 0..n {
                    if d[i][k] == NEG {
                        continue;
                    }
                    for j in 0..n {
                        if d[k][j] == NEG {
                            continue;
                        }
                        let via = d[i][k] + d[k][j];
                        if via > d[i][j] {
                            d[i][j] = via;
                        }
                    }
                }
            }
            if (0..n).any(|i| d[i][i] > 0) {
                continue 'outer;
            }
            return ii;
        }
        n as u32 * 4 + 4
    }

    /// ASAP (as-soon-as-possible) schedule levels ignoring loop-carried
    /// edges; the critical path length is `max(level) + latency`.
    pub fn asap_levels(&self) -> Vec<u32> {
        let n = self.nodes.len();
        let mut level = vec![0u32; n];
        let mut indeg = vec![0usize; n];
        for node in &self.nodes {
            indeg[node.id.0] = node.inputs.iter().filter(|e| e.distance == 0).count();
        }
        let mut queue: VecDeque<usize> =
            (0..n).filter(|&i| indeg[i] == 0).collect();
        let succ = self.successors();
        let mut seen = 0usize;
        while let Some(i) = queue.pop_front() {
            seen += 1;
            for &s in &succ[i] {
                // only same-iteration edges advance the schedule
                let node = &self.nodes[s.0];
                let carried = node
                    .inputs
                    .iter()
                    .any(|e| e.from.0 == i && e.distance == 0);
                if !carried {
                    continue;
                }
                let cand = level[i] + self.nodes[i].op.latency();
                if cand > level[s.0] {
                    level[s.0] = cand;
                }
                indeg[s.0] -= 1;
                if indeg[s.0] == 0 {
                    queue.push_back(s.0);
                }
            }
        }
        assert_eq!(seen, n, "same-iteration subgraph of '{}' has a cycle", self.name);
        level
    }

    /// Critical-path length over same-iteration edges.
    pub fn critical_path(&self) -> u32 {
        self.nodes
            .iter()
            .map(|n| self.asap_levels()[n.id.0] + n.op.latency())
            .max()
            .unwrap_or(0)
    }

    /// Validates structural invariants: edge targets in range, same-iteration
    /// edges only point backwards in insertion order (so the steady-state
    /// subgraph is a DAG), and only φ-class nodes carry loop distance.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for node in &self.nodes {
            for e in &node.inputs {
                if e.from.0 >= self.nodes.len() {
                    return Err(format!("{}: edge from missing node {}", self.name, e.from));
                }
                if e.distance == 0 && e.from.0 >= node.id.0 {
                    return Err(format!(
                        "{}: same-iteration edge {} -> {} not topologically ordered",
                        self.name, e.from, node.id
                    ));
                }
                if e.distance > 0
                    && !matches!(
                        node.op,
                        Opcode::Phi | Opcode::FusedPhiAdd | Opcode::FusedPhiAddAdd | Opcode::FusedCmpSelect
                    )
                {
                    return Err(format!(
                        "{}: loop-carried edge into non-phi node {} ({})",
                        self.name, node.id, node.op
                    ));
                }
            }
        }
        Ok(())
    }

    /// Sum of primitive operations represented (fused nodes count their
    /// width) — lets tests check fusion conserves work.
    pub fn primitive_op_count(&self) -> usize {
        self.nodes.iter().map(|n| n.op.fused_width()).sum()
    }
}

impl fmt::Display for Dfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dfg '{}' ({} nodes):", self.name, self.nodes.len())?;
        for n in &self.nodes {
            let ins: Vec<String> = n
                .inputs
                .iter()
                .map(|e| {
                    if e.distance > 0 {
                        format!("{}@{}", e.from, e.distance)
                    } else {
                        e.from.to_string()
                    }
                })
                .collect();
            writeln!(f, "  {} = {} [{}]", n.id, n.op, ins.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(from: NodeId) -> Edge {
        Edge { from, distance: 0 }
    }

    fn carried(from: NodeId) -> Edge {
        Edge { from, distance: 1 }
    }

    /// A minimal accumulation loop: phi <- phi + load.
    fn accum_dfg() -> Dfg {
        let mut g = Dfg::new("accum");
        let ld = g.push(Opcode::Load, vec![]);
        let phi = g.push(Opcode::Phi, vec![]);
        let add = g.push(Opcode::Add, vec![edge(phi), edge(ld)]);
        // close the recurrence: phi takes add from previous iteration
        let nodes = {
            let mut ns = g.nodes().to_vec();
            ns[phi.0].inputs.push(carried(add));
            ns
        };
        g.replace_nodes(nodes);
        g
    }

    #[test]
    fn push_and_lookup() {
        let g = accum_dfg();
        assert_eq!(g.len(), 3);
        assert_eq!(g.node(NodeId(2)).op, Opcode::Add);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn recurrence_ii_of_accumulator() {
        // phi(1) -> add(1) cycle with distance 1 => RecMII = 2.
        assert_eq!(accum_dfg().rec_mii(), 2);
    }

    #[test]
    fn fused_accumulator_halves_recmii() {
        // phi+add fused: self-loop latency 1, distance 1 => RecMII 1.
        let mut g = Dfg::new("fused-accum");
        let ld = g.push(Opcode::Load, vec![]);
        let acc = g.push(Opcode::FusedPhiAdd, vec![edge(ld)]);
        let mut ns = g.nodes().to_vec();
        ns[acc.0].inputs.push(carried(acc));
        g.replace_nodes(ns);
        assert_eq!(g.rec_mii(), 1);
    }

    #[test]
    fn acyclic_graph_recmii_one() {
        let mut g = Dfg::new("straight");
        let a = g.push(Opcode::Load, vec![]);
        let b = g.push(Opcode::Mul, vec![edge(a)]);
        g.push(Opcode::Store, vec![edge(b)]);
        assert_eq!(g.rec_mii(), 1);
    }

    #[test]
    fn intensity_counts() {
        let g = accum_dfg();
        assert_eq!(g.memory_nodes(), 1);
        assert_eq!(g.compute_nodes(), 2);
        assert!((g.computational_intensity() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn intensity_infinite_without_memory() {
        let mut g = Dfg::new("pure");
        g.push(Opcode::Const, vec![]);
        assert_eq!(g.computational_intensity(), f64::INFINITY);
    }

    #[test]
    fn critical_path_chain() {
        let mut g = Dfg::new("chain");
        let a = g.push(Opcode::Load, vec![]);
        let b = g.push(Opcode::Mul, vec![edge(a)]);
        let c = g.push(Opcode::Add, vec![edge(b)]);
        g.push(Opcode::Store, vec![edge(c)]);
        assert_eq!(g.critical_path(), 4);
    }

    #[test]
    fn div_latency_lengthens_path() {
        let mut g = Dfg::new("divchain");
        let a = g.push(Opcode::Load, vec![]);
        let b = g.push(Opcode::Div, vec![edge(a)]);
        g.push(Opcode::Store, vec![edge(b)]);
        assert_eq!(g.critical_path(), 1 + 4 + 1);
    }

    #[test]
    fn validate_rejects_forward_edge() {
        let mut g = Dfg::new("bad");
        g.push(Opcode::Add, vec![Edge { from: NodeId(1), distance: 0 }]);
        g.push(Opcode::Add, vec![]);
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_carried_into_non_phi() {
        let mut g = Dfg::new("bad2");
        let a = g.push(Opcode::Add, vec![]);
        let b = g.push(Opcode::Mul, vec![]);
        let mut ns = g.nodes().to_vec();
        ns[a.0].inputs.push(carried(b));
        g.replace_nodes(ns);
        assert!(g.validate().is_err());
    }

    #[test]
    fn primitive_conservation() {
        let mut g = Dfg::new("fused");
        g.push(Opcode::FusedMulAddAdd, vec![]);
        g.push(Opcode::Add, vec![]);
        assert_eq!(g.primitive_op_count(), 4);
    }
}
