//! # picachu-ir — kernel IR and data-flow graphs for the PICACHU compiler
//!
//! The paper's toolchain lowers nonlinear operations to LLVM IR, converts each
//! instruction into a DFG node (control flow becomes data flow through partial
//! predication), and maps the DFG onto the CGRA (§4.3). This crate provides:
//!
//! * [`opcode`] — the instruction vocabulary (LLVM-like basic ops, the
//!   special `fp2fx`/`lut`/`pow2i` operations backed by the Compute Tiles'
//!   special functional units, and the fused opcodes of Table 4);
//! * [`dfg`] — the data-flow graph with loop-carried edges, recurrence (II
//!   lower bound) analysis and the §3.1 computational-intensity metric;
//! * [`builder`] — an SSA-style builder for loop bodies;
//! * [`kernels`] — the predefined kernel library: every Table 1 operation
//!   expressed as one [`kernels::Kernel`] of single-level loops, exactly the
//!   "predefined kernel codes written in C++, parameterizable in tensor
//!   shapes" of §4.3.
//!
//! ```
//! use picachu_ir::kernels::kernel_library;
//!
//! let lib = kernel_library(4); // 4 Taylor terms in hardware loops
//! let softmax = lib.iter().find(|k| k.name == "softmax").unwrap();
//! assert_eq!(softmax.loops.len(), 3);
//! ```

pub mod builder;
pub mod dfg;
pub mod interp;
pub mod kernels;
pub mod opcode;

pub use builder::DfgBuilder;
pub use dfg::{Dfg, Edge, Node, NodeId};
pub use interp::{interpret, InterpResult};
pub use opcode::{FusedPattern, Opcode};
