//! SSA-style builder for loop-body DFGs, with helpers for the structures
//! every nonlinear kernel shares: loop control, element loads/stores, and the
//! Table 3 operator chains.
//!
//! Nodes carry **immediate operands** (the constants the compiler folds into
//! instructions: Taylor coefficients, `log2(e)`, `1/π`, …), so the kernel
//! library is *functionally executable* by [`crate::interp`], not just a
//! structural sketch — the Table 3 chains compute the real mathematics.

use crate::dfg::{Dfg, Edge, NodeId};
use crate::opcode::Opcode;

/// Builds a [`Dfg`] incrementally.
///
/// ```
/// use picachu_ir::{DfgBuilder, Opcode};
///
/// let mut b = DfgBuilder::new("demo");
/// let x = b.op(Opcode::Load, &[]);
/// let y = b.op_imm(Opcode::Mul, &[x], 2.0); // y = 2x
/// b.op(Opcode::Store, &[y]);
/// let dfg = b.finish();
/// assert_eq!(dfg.len(), 3);
/// ```
#[derive(Debug)]
pub struct DfgBuilder {
    dfg: Dfg,
}

impl DfgBuilder {
    /// Starts an empty graph with the given kernel-loop label.
    pub fn new(name: impl Into<String>) -> DfgBuilder {
        DfgBuilder { dfg: Dfg::new(name) }
    }

    /// Appends a node with same-iteration inputs.
    pub fn op(&mut self, op: Opcode, inputs: &[NodeId]) -> NodeId {
        let edges = inputs
            .iter()
            .map(|&from| Edge { from, distance: 0 })
            .collect();
        self.dfg.push(op, edges)
    }

    /// Appends a node with same-iteration inputs and one immediate.
    pub fn op_imm(&mut self, op: Opcode, inputs: &[NodeId], imm: f32) -> NodeId {
        let edges = inputs
            .iter()
            .map(|&from| Edge { from, distance: 0 })
            .collect();
        self.dfg.push_imm(op, edges, vec![imm])
    }

    /// Appends a constant node.
    pub fn constant(&mut self, value: f32) -> NodeId {
        self.op_imm(Opcode::Const, &[], value)
    }

    /// Appends a loop-invariant parameter read (`params[idx]` at run time).
    pub fn param(&mut self, idx: usize) -> NodeId {
        self.op_imm(Opcode::Param, &[], idx as f32)
    }

    /// Appends a φ node with initial value `init` (its recurrence is closed
    /// later with [`DfgBuilder::close_recurrence`]).
    pub fn phi_init(&mut self, init: f32) -> NodeId {
        self.dfg.push_imm(Opcode::Phi, vec![], vec![init])
    }

    /// Appends a φ node with initial value 0.
    pub fn phi(&mut self) -> NodeId {
        self.phi_init(0.0)
    }

    /// Closes a recurrence: `target` receives `from`'s value from `distance`
    /// iterations earlier.
    ///
    /// # Panics
    /// Panics if `distance == 0` or either node is missing.
    pub fn close_recurrence(&mut self, target: NodeId, from: NodeId, distance: u32) {
        self.dfg.add_loop_edge(target, from, distance);
    }

    /// Finishes and validates the graph.
    ///
    /// # Panics
    /// Panics if the graph violates DFG invariants — builder misuse is a bug
    /// in the kernel library, not a runtime condition.
    pub fn finish(self) -> Dfg {
        if let Err(e) = self.dfg.validate() {
            panic!("invalid DFG from builder: {e}");
        }
        self.dfg
    }

    // ---- kernel-construction helpers ----

    /// Emits the loop-control prologue every single-level loop carries:
    /// induction φ, increment, exit compare and back-branch. Returns the
    /// induction variable.
    pub fn loop_control(&mut self) -> NodeId {
        let i = self.phi();
        let inc = self.op_imm(Opcode::Add, &[i], 1.0);
        self.close_recurrence(i, inc, 1);
        let cmp = self.op(Opcode::Cmp, &[inc]);
        self.op(Opcode::Br, &[cmp]);
        i
    }

    /// Emits an element load `x[base + i]`: the GEP-style two-add address
    /// chain (base + scaled index, + field offset) followed by the load.
    pub fn load_elem(&mut self, i: NodeId) -> NodeId {
        let addr = self.op(Opcode::Add, &[i]);
        let addr = self.op(Opcode::Add, &[addr]);
        self.op(Opcode::Load, &[addr])
    }

    /// Emits an element store `y[base + i] = v` with the same address chain.
    pub fn store_elem(&mut self, i: NodeId, v: NodeId) {
        let addr = self.op(Opcode::Add, &[i]);
        let addr = self.op(Opcode::Add, &[addr]);
        self.op(Opcode::Store, &[addr, v]);
    }

    /// Emits a running-sum reduction `acc += v`; returns the add node.
    pub fn accumulate(&mut self, v: NodeId) -> NodeId {
        let acc = self.phi_init(0.0);
        let add = self.op(Opcode::Add, &[acc, v]);
        self.close_recurrence(acc, add, 1);
        add
    }

    /// Emits a running-max reduction via `cmp`+`select`; returns the select.
    pub fn reduce_max(&mut self, v: NodeId) -> NodeId {
        let m = self.phi_init(f32::NEG_INFINITY);
        let cmp = self.op(Opcode::Cmp, &[m, v]);
        let sel = self.op(Opcode::Select, &[cmp, m, v]);
        self.close_recurrence(m, sel, 1);
        sel
    }

    /// Emits the Table 3 exponential chain computing `exp(sign·x)` with
    /// `terms` Taylor terms: `t = sign·log2(e)·x` (mul), FP2FX split into
    /// integer/fraction, `2^i` by exponent construction, `z = ln2·f`, a
    /// Horner evaluation of `e^z` over `[0, ln2)` with folded coefficients,
    /// and the recombining multiply. Returns the result node.
    pub fn exp_chain(&mut self, x: NodeId, terms: usize, sign: f32) -> NodeId {
        let t = self.op_imm(Opcode::Mul, &[x], sign * std::f32::consts::LOG2_E);
        let frac = self.op(Opcode::Fp2Fx, &[t]); // f = t - floor(t)
        let p2i = self.op(Opcode::Pow2i, &[t, frac]); // 2^(t - f)
        let z = self.op_imm(Opcode::Mul, &[frac], std::f32::consts::LN_2);
        // Horner for e^z = sum z^k / k!: acc = c_{T-1}; acc = acc*z + c_k
        let coeff = |k: usize| 1.0f32 / (1..=k).product::<usize>() as f32;
        let mut acc = self.constant(coeff(terms - 1));
        for k in (0..terms - 1).rev() {
            let m = self.op(Opcode::Mul, &[acc, z]);
            acc = self.op_imm(Opcode::Add, &[m], coeff(k));
        }
        self.op(Opcode::Mul, &[acc, p2i])
    }

    /// Emits the Table 3 sine (or cosine) chain with `terms` Taylor terms:
    /// range reduction `r = π·frac(x/π)` via the FP2FX unit, then the
    /// odd (sine) or even (cosine) Horner series in `r²`.
    ///
    /// Functional domain note: the folded reduction is exact for
    /// `x ∈ [0, π)`; outside it the structural cost is identical but the
    /// interpreter's value carries the quadrant sign ambiguity (the hardware
    /// FP2FX tracks the parity bit the scalar immediate cannot express).
    pub fn sin_chain(&mut self, x: NodeId, terms: usize, cosine: bool) -> NodeId {
        let k = self.op_imm(Opcode::Mul, &[x], std::f32::consts::FRAC_1_PI);
        let frac = self.op(Opcode::Fp2Fx, &[k]);
        let r = self.op_imm(Opcode::Mul, &[frac], std::f32::consts::PI);
        let t2 = self.op(Opcode::Mul, &[r, r]);
        // sin(r) = r * sum (-1)^k r^{2k} / (2k+1)!
        // cos(r) =     sum (-1)^k r^{2k} / (2k)!
        let coeff = |k: usize| {
            let fact: usize = (1..=(2 * k + usize::from(!cosine))).product::<usize>().max(1);
            (if k.is_multiple_of(2) { 1.0 } else { -1.0 }) / fact as f32
        };
        let mut acc = self.constant(coeff(terms - 1));
        for k in (0..terms - 1).rev() {
            let m = self.op(Opcode::Mul, &[acc, t2]);
            acc = self.op_imm(Opcode::Add, &[m], coeff(k));
        }
        if cosine {
            acc
        } else {
            self.op(Opcode::Mul, &[acc, r])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_control_shape() {
        let mut b = DfgBuilder::new("lc");
        b.loop_control();
        let g = b.finish();
        assert_eq!(g.len(), 4);
        // induction recurrence: phi <- add at distance 1 => RecMII 2 unfused
        assert_eq!(g.rec_mii(), 2);
    }

    #[test]
    fn accumulate_recurrence() {
        let mut b = DfgBuilder::new("acc");
        let i = b.loop_control();
        let x = b.load_elem(i);
        b.accumulate(x);
        let g = b.finish();
        assert_eq!(g.rec_mii(), 2);
        assert_eq!(g.memory_nodes(), 1);
    }

    #[test]
    fn reduce_max_has_cmp_select() {
        let mut b = DfgBuilder::new("max");
        let i = b.loop_control();
        let x = b.load_elem(i);
        b.reduce_max(x);
        let g = b.finish();
        let has_sel = g.nodes().iter().any(|n| n.op == Opcode::Select);
        assert!(has_sel);
        // phi -> cmp -> select -> phi: 3-cycle latency 3 over distance 1 => 3
        assert_eq!(g.rec_mii(), 3);
    }

    #[test]
    fn exp_chain_node_count() {
        let mut b = DfgBuilder::new("exp");
        let x = b.op(Opcode::Load, &[]);
        b.exp_chain(x, 4, 1.0);
        let g = b.finish();
        // load + (mul,fp2fx,pow2i,mul) + const + 3*(mul,add) + final mul
        assert_eq!(g.len(), 1 + 4 + 1 + 6 + 1);
    }

    #[test]
    fn phi_carries_init_imm() {
        let mut b = DfgBuilder::new("init");
        let m = b.phi_init(f32::NEG_INFINITY);
        let g = {
            let s = b.op(Opcode::Select, &[m]);
            b.close_recurrence(m, s, 1);
            b.finish()
        };
        assert_eq!(g.nodes()[0].imms, vec![f32::NEG_INFINITY]);
    }

    #[test]
    fn builder_panics_on_zero_distance_recurrence() {
        let mut b = DfgBuilder::new("bad");
        let p = b.phi();
        let a = b.op(Opcode::Add, &[p]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.close_recurrence(p, a, 0)
        }));
        assert!(result.is_err());
    }
}
