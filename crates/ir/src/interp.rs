//! Functional interpreter for kernel DFGs.
//!
//! Executes a loop-body DFG on real data, iteration by iteration, in
//! dataflow order — the functional twin of the cycle-level timing simulator.
//! It serves two purposes a hardware project needs:
//!
//! 1. **algorithm ↔ hardware agreement** — a mapped kernel's DFG computes the
//!    same values the software implementation in `picachu-nonlinear` does;
//! 2. **transform correctness** — fusion and unrolling are semantics-
//!    preserving, checked by interpreting before/after graphs on the same
//!    inputs.
//!
//! Memory is modelled as positional streams: the *k*-th `load` node of the
//! graph reads stream *k* (element `iter` for unrolled copy 0, offset for
//! later copies), the *k*-th `store` writes stream *k*. Address arithmetic
//! remains in the graph (the mapper and cost models see it) but the
//! interpreter binds accesses positionally. Loop-invariant runtime values
//! (the softmax max, a normalization 1/σ, the RoPE position) enter through
//! `Param` nodes.

use crate::dfg::{Dfg, Node};
use crate::opcode::Opcode;
use std::collections::HashMap;

/// Result of interpreting a loop.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpResult {
    /// One output vector per `store` node, in node order.
    pub outputs: Vec<Vec<f32>>,
    /// Final values of loop-carried state (φ-class nodes), keyed by the
    /// *carried producer's* final value — i.e. the reduction results.
    pub reductions: Vec<f32>,
}

/// Interpretation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// A load stream was missing or too short.
    MissingInput {
        /// Stream index.
        stream: usize,
    },
    /// A `Param` index was out of range.
    MissingParam {
        /// Parameter index.
        index: usize,
    },
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::MissingInput { stream } => write!(f, "input stream {stream} missing/short"),
            InterpError::MissingParam { index } => write!(f, "param {index} not provided"),
        }
    }
}

impl std::error::Error for InterpError {}

fn imm(n: &Node, idx: usize, default: f32) -> f32 {
    n.imms.get(idx).copied().unwrap_or(default)
}

/// Interprets `iterations` steady-state iterations of a loop-body DFG.
///
/// `inputs[k]` feeds the k-th `load` node; each load consumes one element
/// per iteration, so every stream needs at least `iterations` elements
/// (unrolled graphs consume `copies` elements per iteration per original
/// stream — supply streams sized accordingly and lay copies out in the
/// natural interleaved order: the unroller emits copy-major loads, so the
/// k-th load of copy `c` reads element `iter·copies + c'`, handled here by
/// giving each load node its own cursor advanced once per iteration and
/// interleaving at binding time).
///
/// # Errors
/// Returns [`InterpError`] if an input stream or parameter is missing.
pub fn interpret(
    dfg: &Dfg,
    iterations: usize,
    inputs: &[&[f32]],
    params: &[f32],
) -> Result<InterpResult, InterpError> {
    let nodes = dfg.nodes();
    // load/store node orderings
    let loads: Vec<usize> = nodes.iter().filter(|n| n.op == Opcode::Load).map(|n| n.id.0).collect();
    let stores: Vec<usize> = nodes.iter().filter(|n| n.op == Opcode::Store).map(|n| n.id.0).collect();
    let load_slot: HashMap<usize, usize> =
        loads.iter().enumerate().map(|(k, &id)| (id, k)).collect();
    let store_slot: HashMap<usize, usize> =
        stores.iter().enumerate().map(|(k, &id)| (id, k)).collect();

    let mut outputs: Vec<Vec<f32>> = vec![Vec::with_capacity(iterations); stores.len()];
    let mut values = vec![0.0f32; nodes.len()];
    let mut prev = vec![0.0f32; nodes.len()];

    for iter in 0..iterations {
        for n in nodes {
            let inv = |k: usize| -> f32 {
                n.inputs
                    .iter()
                    .filter(|e| e.distance == 0)
                    .nth(k)
                    .map(|e| values[e.from.0])
                    .unwrap_or(f32::NAN)
            };
            let same_iter_inputs: Vec<f32> = n
                .inputs
                .iter()
                .filter(|e| e.distance == 0)
                .map(|e| values[e.from.0])
                .collect();
            let carried: Option<f32> = n
                .inputs
                .iter()
                .find(|e| e.distance > 0)
                .map(|e| prev[e.from.0]);

            let v = match n.op {
                Opcode::Phi => {
                    if iter == 0 {
                        imm(n, 0, 0.0)
                    } else {
                        carried.unwrap_or(imm(n, 0, 0.0))
                    }
                }
                Opcode::Add => same_iter_inputs.iter().sum::<f32>() + imm(n, 0, 0.0),
                Opcode::Sub => {
                    let a = inv(0);
                    let b = if same_iter_inputs.len() > 1 { inv(1) } else { 0.0 };
                    a - b - imm(n, 0, 0.0)
                }
                Opcode::Mul => same_iter_inputs.iter().product::<f32>() * imm(n, 0, 1.0),
                Opcode::Div => {
                    if same_iter_inputs.len() >= 2 {
                        inv(0) / inv(1)
                    } else {
                        imm(n, 0, 1.0) / inv(0)
                    }
                }
                Opcode::Cmp => {
                    let rhs = if same_iter_inputs.len() > 1 { inv(1) } else { imm(n, 0, 0.0) };
                    if inv(0) > rhs {
                        1.0
                    } else {
                        0.0
                    }
                }
                Opcode::Select => {
                    let c = inv(0) > 0.5;
                    let a = inv(1);
                    let b = if same_iter_inputs.len() > 2 { inv(2) } else { imm(n, 0, 0.0) };
                    if c {
                        a
                    } else {
                        b
                    }
                }
                Opcode::Br | Opcode::Shift => 0.0,
                Opcode::Const => imm(n, 0, 0.0),
                Opcode::Param => {
                    let idx = imm(n, 0, 0.0) as usize;
                    *params.get(idx).ok_or(InterpError::MissingParam { index: idx })?
                }
                Opcode::Load => {
                    let slot = load_slot[&n.id.0];
                    let stream = inputs.get(slot).ok_or(InterpError::MissingInput { stream: slot })?;
                    *stream.get(iter).ok_or(InterpError::MissingInput { stream: slot })?
                }
                Opcode::Store => {
                    let v = *same_iter_inputs.last().unwrap_or(&f32::NAN);
                    outputs[store_slot[&n.id.0]].push(v);
                    v
                }
                Opcode::Fp2Fx => {
                    let t = inv(0);
                    t - t.floor()
                }
                Opcode::Pow2i => {
                    // 2^(t - f): exponent construction from the FP2FX pair
                    let t = inv(0);
                    let f = inv(1);
                    (t - f).exp2()
                }
                Opcode::LutRead => gaussian_cdf(inv(0)),
                // fused nodes: member immediates in chain order
                Opcode::FusedPhiAdd | Opcode::FusedPhiAddAdd => {
                    let state = if iter == 0 {
                        imm(n, 0, 0.0)
                    } else {
                        carried.unwrap_or(imm(n, 0, 0.0))
                    };
                    let extra: f32 = (1..n.op.fused_width()).map(|k| imm(n, k, 0.0)).sum();
                    state + same_iter_inputs.iter().sum::<f32>() + extra
                }
                Opcode::FusedAddAdd => {
                    same_iter_inputs.iter().sum::<f32>() + imm(n, 0, 0.0) + imm(n, 1, 0.0)
                }
                Opcode::FusedMulAdd | Opcode::FusedMulAddAdd => {
                    // member 0 (the multiply) contributed the first
                    // `member_inputs[0]` operands; the rest are addends
                    let mul_arity = n
                        .member_inputs
                        .first()
                        .map(|&a| a as usize)
                        .unwrap_or(same_iter_inputs.len());
                    let prod: f32 =
                        same_iter_inputs[..mul_arity.min(same_iter_inputs.len())]
                            .iter()
                            .product::<f32>()
                            * imm(n, 0, 1.0);
                    let addends: f32 = same_iter_inputs
                        [mul_arity.min(same_iter_inputs.len())..]
                        .iter()
                        .sum();
                    let imm_adds: f32 = (1..n.op.fused_width()).map(|k| imm(n, k, 0.0)).sum();
                    prod + addends + imm_adds
                }
                Opcode::FusedCmpSelect => {
                    // max semantics; a non-NaN select immediate is the relu
                    // fallback operand
                    let mut m = f32::NEG_INFINITY;
                    for (k, e) in n.inputs.iter().enumerate() {
                        let v = if e.distance > 0 {
                            if iter == 0 {
                                continue;
                            }
                            prev[e.from.0]
                        } else {
                            same_iter_inputs[n
                                .inputs
                                .iter()
                                .take(k)
                                .filter(|x| x.distance == 0)
                                .count()]
                        };
                        m = m.max(v);
                    }
                    let fallback = imm(n, 1, f32::NAN);
                    if !fallback.is_nan() {
                        m = m.max(fallback);
                    }
                    m
                }
                Opcode::FusedCmpBr => 0.0,
            };
            values[n.id.0] = v;
        }
        prev.copy_from_slice(&values);
    }

    // reduction results: carried producers of φ-class nodes, final values
    let mut reductions = Vec::new();
    for n in nodes {
        if matches!(n.op, Opcode::Phi) {
            if let Some(e) = n.inputs.iter().find(|e| e.distance > 0) {
                reductions.push(values[e.from.0]);
            }
        } else if matches!(n.op, Opcode::FusedPhiAdd | Opcode::FusedPhiAddAdd | Opcode::FusedCmpSelect)
            && n.inputs.iter().any(|e| e.distance > 0 && e.from == n.id)
        {
            reductions.push(values[n.id.0]);
        }
    }
    Ok(InterpResult { outputs, reductions })
}

/// Gaussian CDF for the LUT semantics (Abramowitz–Stegun erf).
fn gaussian_cdf(x: f32) -> f32 {
    let x = x as f64 / std::f64::consts::SQRT_2;
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let ax = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * ax);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = sign * (1.0 - poly * (-ax * ax).exp());
    (0.5 * (1.0 + erf)) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::*;

    fn ramp(n: usize, scale: f32, offset: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.37).sin() * scale + offset).collect()
    }

    #[test]
    fn relu_kernel_is_exact() {
        let k = relu_kernel();
        let x = ramp(64, 3.0, 0.0);
        let r = interpret(&k.loops[0].dfg, 64, &[&x], &[]).unwrap();
        for (i, (&xi, &yi)) in x.iter().zip(&r.outputs[0]).enumerate() {
            assert_eq!(yi, xi.max(0.0), "elem {i}");
        }
    }

    #[test]
    fn softmax_kernel_matches_reference() {
        let k = softmax_kernel(8);
        let x = ramp(128, 6.0, -1.0);
        // loop 1: running max
        let r1 = interpret(&k.loops[0].dfg, 128, &[&x], &[]).unwrap();
        let max = r1.reductions[1]; // induction φ is reduction 0
        let expect_max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(max, expect_max);
        // loop 2: exp + sum
        let r2 = interpret(&k.loops[1].dfg, 128, &[&x], &[max]).unwrap();
        let exps = &r2.outputs[0];
        let sum = r2.reductions[1];
        for (i, (&xi, &ei)) in x.iter().zip(exps).enumerate() {
            let expect = (xi - max).exp();
            assert!((ei - expect).abs() < 2e-6 * (1.0 + expect), "elem {i}: {ei} vs {expect}");
        }
        assert!((sum - exps.iter().sum::<f32>()).abs() < 1e-3);
        // loop 3: divide
        let r3 = interpret(&k.loops[2].dfg, 128, &[exps], &[sum]).unwrap();
        let total: f32 = r3.outputs[0].iter().sum();
        assert!((total - 1.0).abs() < 1e-5, "softmax sums to {total}");
    }

    #[test]
    fn gelu_kernel_matches_reference() {
        let k = gelu_kernel(8);
        let x = ramp(256, 3.0, 0.0);
        let r = interpret(&k.loops[0].dfg, 256, &[&x], &[]).unwrap();
        for (i, (&xi, &yi)) in x.iter().zip(&r.outputs[0]).enumerate() {
            let c = (2.0f64 / std::f64::consts::PI).sqrt();
            let xd = xi as f64;
            let expect = 0.5 * xd * (1.0 + (c * (xd + 0.044715 * xd * xd * xd)).tanh());
            assert!((yi as f64 - expect).abs() < 1e-4, "elem {i}: {yi} vs {expect}");
        }
    }

    #[test]
    fn silu_and_swiglu_kernels_match_reference() {
        let k = silu_kernel(8);
        let x = ramp(256, 4.0, 0.0);
        let r = interpret(&k.loops[0].dfg, 256, &[&x], &[]).unwrap();
        for (&xi, &yi) in x.iter().zip(&r.outputs[0]) {
            let expect = xi as f64 / (1.0 + (-(xi as f64)).exp());
            assert!((yi as f64 - expect).abs() < 1e-4, "{yi} vs {expect}");
        }
        let k = swiglu_kernel(8);
        let u = ramp(64, 2.0, 0.5);
        let v = ramp(64, 1.0, -0.2);
        let r = interpret(&k.loops[0].dfg, 64, &[&u, &v], &[]).unwrap();
        for i in 0..64 {
            let expect = (u[i] as f64 / (1.0 + (-(u[i] as f64)).exp())) * v[i] as f64;
            assert!((r.outputs[0][i] as f64 - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn layernorm_kernel_matches_reference() {
        let k = layernorm_kernel();
        let x = ramp(512, 2.0, 0.7);
        let n = x.len() as f32;
        let r1 = interpret(&k.loops[0].dfg, 512, &[&x], &[]).unwrap();
        // reductions: induction φ, Σx, Σx²
        let (s, s2) = (r1.reductions[1], r1.reductions[2]);
        let mu = s / n;
        let var = (s2 / n - mu * mu).max(0.0);
        let inv = 1.0 / (var + 1e-5).sqrt();
        let r2 = interpret(&k.loops[1].dfg, 512, &[&x], &[mu, inv]).unwrap();
        let y = &r2.outputs[0];
        let mean_out: f32 = y.iter().sum::<f32>() / n;
        let var_out: f32 = y.iter().map(|v| (v - mean_out).powi(2)).sum::<f32>() / n;
        assert!(mean_out.abs() < 1e-4, "mean {mean_out}");
        assert!((var_out - 1.0).abs() < 1e-2, "var {var_out}");
    }

    #[test]
    fn rmsnorm_kernel_matches_reference() {
        let k = rmsnorm_kernel();
        let x = ramp(256, 3.0, 0.0);
        let gain = vec![1.0f32; 256];
        let n = x.len() as f32;
        let r1 = interpret(&k.loops[0].dfg, 256, &[&x], &[]).unwrap();
        let inv = 1.0 / (r1.reductions[1] / n + 1e-5).sqrt();
        let r2 = interpret(&k.loops[1].dfg, 256, &[&x, &gain], &[inv]).unwrap();
        let ms: f32 = r2.outputs[0].iter().map(|v| v * v).sum::<f32>() / n;
        assert!((ms - 1.0).abs() < 1e-2, "rms {ms}");
    }

    #[test]
    fn rope_kernel_matches_reference_on_first_quadrant() {
        // folded range reduction is exact for angles in [0, π)
        let k = rope_kernel(8);
        let d = 32usize;
        let x0 = ramp(d, 1.0, 0.3);
        let x1 = ramp(d, 1.0, -0.4);
        let theta: Vec<f32> = (0..d).map(|i| 0.003 * (i as f32 + 1.0)).collect();
        let m = 20.0f32; // angles up to 20*0.096 ≈ 1.9 < π
        let r = interpret(&k.loops[0].dfg, d, &[&x0, &x1, &theta], &[m]).unwrap();
        for i in 0..d {
            let a = (m * theta[i]) as f64;
            let (s, c) = a.sin_cos();
            let e0 = x0[i] as f64 * c - x1[i] as f64 * s;
            let e1 = x0[i] as f64 * s + x1[i] as f64 * c;
            assert!((r.outputs[0][i] as f64 - e0).abs() < 1e-3, "y0[{i}]");
            assert!((r.outputs[1][i] as f64 - e1).abs() < 1e-3, "y1[{i}]");
        }
    }

    #[test]
    fn gelu_lut_kernel_uses_phi_table() {
        let k = gelu_lut_kernel();
        let x = ramp(64, 2.0, 0.0);
        let r = interpret(&k.loops[0].dfg, 64, &[&x], &[]).unwrap();
        for (&xi, &yi) in x.iter().zip(&r.outputs[0]) {
            let expect = xi * gaussian_cdf(xi);
            assert!((yi - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn missing_param_is_an_error() {
        let k = softmax_kernel(4);
        let x = ramp(8, 1.0, 0.0);
        let err = interpret(&k.loops[1].dfg, 8, &[&x], &[]).unwrap_err();
        assert_eq!(err, InterpError::MissingParam { index: 0 });
    }

    #[test]
    fn short_stream_is_an_error() {
        let k = relu_kernel();
        let x = ramp(4, 1.0, 0.0);
        let err = interpret(&k.loops[0].dfg, 8, &[&x], &[]).unwrap_err();
        assert_eq!(err, InterpError::MissingInput { stream: 0 });
    }
}
