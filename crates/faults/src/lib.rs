//! # picachu-faults
//!
//! Seeded, deterministic fault injection for the PICACHU stack.
//!
//! A production accelerator serving heavy traffic must *degrade*, not die,
//! when silicon misbehaves: a broken PE, a dead mesh link, a flipped SRAM
//! bit, or a DMA channel that transiently stalls. This crate defines the
//! fault vocabulary every other layer consumes:
//!
//! * [`FaultPlan`] — a complete, replayable description of what is broken:
//!   hard PE failures (`dead_tiles`), dead NoC links (`dead_links`), SRAM
//!   bit flips ([`SramFlip`]) evaluated under a SEC-DED [`EccModel`], and a
//!   transient-stall [`DmaFaultModel`] for the DRAM channel.
//! * [`EccModel`] — the single-error-correct / double-error-detect code
//!   protecting on-chip SRAM: 1 flipped bit per word is corrected (at a
//!   scrub-cycle cost), 2 are detected but uncorrectable, ≥3 escape
//!   silently. [`EccModel::classify_all`] folds a flip list into an
//!   [`EccReport`].
//! * [`DmaFaultModel`] — per-transfer transient stalls drawn from a seeded
//!   hash, so a given `(seed, transfer, attempt)` always stalls or always
//!   succeeds: the retry/backoff loop in the engine is exactly replayable.
//!
//! Everything is deterministic in the seed — a fault scenario found by a
//! sweep is reproduced bit-for-bit from its `FaultPlan` (see
//! `PICACHU_FAULT_REPLAY` in `picachu-oracle`). The consumers are the
//! mapper's resource mask (`picachu-compiler`), the cycle-level simulator
//! (`picachu-cgra`), the DMA/buffer models (`picachu-systolic`) and the
//! engine's degradation policy (`picachu`); the policy itself is documented
//! in DESIGN.md §7.

// Serve-path crate: a panic here kills a compile request, so unwrap/expect
// are banned outside test code (DESIGN.md §7).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ecc;
pub mod plan;
pub mod retry;

pub use ecc::{EccModel, EccOutcome, EccReport};
pub use plan::{DmaFaultModel, FaultPlan, SramFlip};
pub use retry::RetryPolicy;
