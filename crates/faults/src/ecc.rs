//! SEC-DED ECC model for on-chip SRAM.
//!
//! The Shared Buffer and the per-tile configuration memories are protected
//! by a (72, 64) Hsiao-style single-error-correct / double-error-detect
//! code, the industry default for accelerator SRAM macros. The model is
//! purely combinational on the *number of flipped bits per word*:
//!
//! | flipped bits | outcome | consumer behaviour |
//! |--------------|---------|--------------------|
//! | 0 | [`EccOutcome::Clean`] | nothing |
//! | 1 | [`EccOutcome::Corrected`] | pay `scrub_cycles`, continue |
//! | 2 | [`EccOutcome::DetectedUncorrectable`] | re-fetch from DRAM (engine) or reject the config image (simulator) |
//! | ≥3 | [`EccOutcome::SilentCorruption`] | undetected — modelled so sweeps can count exposure, never "handled" |
//!
//! Silent corruptions are deliberately *not* recoverable anywhere in the
//! stack: pretending a 3-bit upset is caught would overstate resilience.

use crate::plan::SramFlip;

/// Outcome of reading one SRAM word through the ECC decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EccOutcome {
    /// No bits flipped.
    Clean,
    /// Single-bit upset: corrected inline, scrubbed back.
    Corrected,
    /// Double-bit upset: detected, word is unusable as-read.
    DetectedUncorrectable,
    /// Triple-or-more upset: aliases to a valid codeword, escapes detection.
    SilentCorruption,
}

/// The SEC-DED code parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccModel {
    /// Cycles to correct-and-scrub one single-bit upset (read-modify-write
    /// of the word plus pipeline bubble).
    pub scrub_cycles: u64,
    /// Cycles a detected-uncorrectable word costs before the consumer's
    /// recovery (re-fetch, reject) even begins: the decoder flags the word
    /// and raises the fault after this latency.
    pub detect_cycles: u64,
}

impl Default for EccModel {
    fn default() -> EccModel {
        // One extra read-modify-write through a 2-cycle SRAM pipeline for a
        // scrub; detection is flagged the cycle after the read completes.
        EccModel { scrub_cycles: 4, detect_cycles: 1 }
    }
}

impl EccModel {
    /// Classifies one word by its flipped-bit count.
    pub fn classify(&self, bits: u32) -> EccOutcome {
        match bits {
            0 => EccOutcome::Clean,
            1 => EccOutcome::Corrected,
            2 => EccOutcome::DetectedUncorrectable,
            _ => EccOutcome::SilentCorruption,
        }
    }

    /// [`EccModel::classify_all`] for a physical SRAM of `words` 64-bit
    /// words: flip records land on word `flip.word % words`, and multiple
    /// records hitting the same physical word accumulate their flipped bits
    /// (two independent single-bit upsets in one word *are* a double-bit
    /// upset — folding before classifying keeps that physical). `words == 0`
    /// (no SRAM) reports nothing.
    pub fn classify_sram(&self, flips: &[SramFlip], words: u64) -> EccReport {
        if words == 0 {
            return EccReport::default();
        }
        let mut per_word: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
        for flip in flips {
            *per_word.entry(flip.word % words).or_insert(0) += flip.bits;
        }
        let folded: Vec<SramFlip> = per_word
            .into_iter()
            .map(|(word, bits)| SramFlip { word, bits })
            .collect();
        self.classify_all(&folded)
    }

    /// Folds a flip list into aggregate counts and the total cycle overhead
    /// of the *handled* outcomes (scrubs and detect latency; silent
    /// corruptions cost nothing — that is what makes them silent).
    pub fn classify_all(&self, flips: &[SramFlip]) -> EccReport {
        let mut report = EccReport::default();
        for flip in flips {
            match self.classify(flip.bits) {
                EccOutcome::Clean => {}
                EccOutcome::Corrected => {
                    report.corrected += 1;
                    report.overhead_cycles += self.scrub_cycles;
                }
                EccOutcome::DetectedUncorrectable => {
                    report.detected += 1;
                    report.overhead_cycles += self.detect_cycles;
                }
                EccOutcome::SilentCorruption => report.silent += 1,
            }
        }
        report
    }
}

/// Aggregate ECC activity over a set of SRAM flips.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EccReport {
    /// Single-bit upsets corrected inline.
    pub corrected: u64,
    /// Double-bit upsets detected but not correctable.
    pub detected: u64,
    /// ≥3-bit upsets that escaped detection.
    pub silent: u64,
    /// Cycles spent scrubbing corrections and flagging detections.
    pub overhead_cycles: u64,
}

impl EccReport {
    /// `true` when at least one word must be recovered by the consumer
    /// (re-fetched or its image rejected).
    pub fn needs_recovery(&self) -> bool {
        self.detected > 0
    }

    /// `true` when data integrity cannot be guaranteed.
    pub fn compromised(&self) -> bool {
        self.silent > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_bands() {
        let ecc = EccModel::default();
        assert_eq!(ecc.classify(0), EccOutcome::Clean);
        assert_eq!(ecc.classify(1), EccOutcome::Corrected);
        assert_eq!(ecc.classify(2), EccOutcome::DetectedUncorrectable);
        assert_eq!(ecc.classify(3), EccOutcome::SilentCorruption);
        assert_eq!(ecc.classify(64), EccOutcome::SilentCorruption);
    }

    #[test]
    fn report_aggregates_and_costs() {
        let ecc = EccModel { scrub_cycles: 4, detect_cycles: 1 };
        let flips = [
            SramFlip { word: 0, bits: 1 },
            SramFlip { word: 1, bits: 1 },
            SramFlip { word: 2, bits: 2 },
            SramFlip { word: 3, bits: 5 },
            SramFlip { word: 4, bits: 0 },
        ];
        let r = ecc.classify_all(&flips);
        assert_eq!(r.corrected, 2);
        assert_eq!(r.detected, 1);
        assert_eq!(r.silent, 1);
        assert_eq!(r.overhead_cycles, 2 * 4 + 1);
        assert!(r.needs_recovery());
        assert!(r.compromised());
    }

    #[test]
    fn sram_folding_accumulates_colliding_words() {
        let ecc = EccModel::default();
        // two single-bit flips alias to word 2 of an 8-word SRAM: a real
        // double-bit upset, detected not corrected
        let flips = [SramFlip { word: 2, bits: 1 }, SramFlip { word: 10, bits: 1 }];
        let r = ecc.classify_sram(&flips, 8);
        assert_eq!(r.corrected, 0);
        assert_eq!(r.detected, 1);
        // distinct words stay independent corrections
        let r2 = ecc.classify_sram(&flips, 16);
        assert_eq!(r2.corrected, 2);
        assert_eq!(r2.detected, 0);
        // no SRAM, no outcomes
        assert_eq!(ecc.classify_sram(&flips, 0), EccReport::default());
    }

    #[test]
    fn empty_report_is_benign() {
        let r = EccModel::default().classify_all(&[]);
        assert_eq!(r, EccReport::default());
        assert!(!r.needs_recovery());
        assert!(!r.compromised());
    }
}
