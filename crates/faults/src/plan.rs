//! The fault plan: a complete, seeded description of what is broken.

use crate::ecc::EccModel;
use picachu_testkit::{splitmix64, TestRng};
use std::collections::BTreeSet;
use std::fmt;

/// One SRAM word with flipped bits. Which physical SRAM the word lives in is
/// decided by the consumer (the simulator maps words onto configuration
/// memory, the engine onto the Shared Buffer); the plan only states *how
/// broken* the word is, which is all the ECC model needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramFlip {
    /// Word index (consumers reduce it modulo their SRAM size).
    pub word: u64,
    /// Number of bits flipped within the word (1 = correctable under
    /// SEC-DED, 2 = detectable, ≥3 = silent).
    pub bits: u32,
}

/// Transient DMA stalls, drawn deterministically per (transfer, attempt).
///
/// A stalled attempt costs [`DmaFaultModel::stall_cycles`] plus the caller's
/// backoff; the retry either clears (the transient went away) or stalls
/// again, according to the same seeded hash — so a whole retry ladder is a
/// pure function of `(seed, transfer index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaFaultModel {
    /// Stall probability in parts-per-million per attempt (0 = fault-free).
    pub stall_ppm: u32,
    /// Cycles lost when an attempt stalls (descriptor timeout + reissue).
    pub stall_cycles: u64,
    /// Seed of the stall stream (independent of the plan seed so DMA fault
    /// density can be varied without re-rolling the topology faults).
    pub seed: u64,
}

impl DmaFaultModel {
    /// A fault-free channel.
    pub fn none() -> DmaFaultModel {
        DmaFaultModel { stall_ppm: 0, stall_cycles: 0, seed: 0 }
    }

    /// Whether attempt `attempt` of transfer `transfer` stalls. Deterministic
    /// in `(seed, transfer, attempt)`.
    pub fn stalls(&self, transfer: u64, attempt: u32) -> bool {
        if self.stall_ppm == 0 {
            return false;
        }
        let h = splitmix64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(transfer)
                .wrapping_add((attempt as u64) << 48),
        );
        h % 1_000_000 < self.stall_ppm as u64
    }

    /// `true` when no transfer can ever stall.
    pub fn is_none(&self) -> bool {
        self.stall_ppm == 0
    }
}

/// A complete fault scenario: everything broken in one deployment instant.
///
/// Construction is either explicit (the builder methods, for directed tests)
/// or seeded ([`FaultPlan::seeded`], for sweeps); both are deterministic and
/// the plan is plain data, so any scenario serializes to its constructor
/// call and replays bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// Hard-failed PEs (row-major tile indices): no compute, no routing.
    pub dead_tiles: BTreeSet<usize>,
    /// Dead mesh links as normalized `(min, max)` adjacent tile pairs;
    /// operands may not traverse them in either direction.
    pub dead_links: BTreeSet<(usize, usize)>,
    /// SRAM bit flips, evaluated under [`FaultPlan::ecc`].
    pub sram_flips: Vec<SramFlip>,
    /// The ECC code protecting on-chip SRAM.
    pub ecc: EccModel,
    /// Transient DMA stalls on the DRAM channel.
    pub dma: DmaFaultModel,
}

impl FaultPlan {
    /// A fault-free plan (the identity element of the fault model).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            dead_tiles: BTreeSet::new(),
            dead_links: BTreeSet::new(),
            sram_flips: Vec::new(),
            ecc: EccModel::default(),
            dma: DmaFaultModel::none(),
        }
    }

    /// A plan with exactly one dead PE.
    pub fn dead_tile(tile: usize) -> FaultPlan {
        FaultPlan::none().with_dead_tile(tile)
    }

    /// A plan with exactly one dead NoC link.
    pub fn dead_link(a: usize, b: usize) -> FaultPlan {
        FaultPlan::none().with_dead_link(a, b)
    }

    /// Adds a dead PE.
    pub fn with_dead_tile(mut self, tile: usize) -> FaultPlan {
        self.dead_tiles.insert(tile);
        self
    }

    /// Adds a dead link (stored normalized; direction does not matter on a
    /// bidirectional mesh channel).
    pub fn with_dead_link(mut self, a: usize, b: usize) -> FaultPlan {
        self.dead_links.insert(link_key(a, b));
        self
    }

    /// Adds an SRAM flip.
    pub fn with_sram_flip(mut self, word: u64, bits: u32) -> FaultPlan {
        self.sram_flips.push(SramFlip { word, bits });
        self
    }

    /// Replaces the DMA fault model.
    pub fn with_dma(mut self, dma: DmaFaultModel) -> FaultPlan {
        self.dma = dma;
        self
    }

    /// A seeded random scenario for a `rows × cols` mesh, the sweep
    /// workhorse. Densities model a degraded-but-serving part:
    ///
    /// * each tile dead with probability ~1/16 — but never *all* tiles: if
    ///   the roll kills the whole fabric, the tile named by the seed is
    ///   revived (a fabric with zero PEs is a rejection, not a degradation,
    ///   and the sweep wants degradations);
    /// * each mesh link dead with probability ~1/24;
    /// * 0–3 SRAM flips, single-bit-biased (correctable faults dominate in
    ///   the field; multi-bit upsets are the rare tail);
    /// * a DMA stall density of 0–2 % with a 100–900-cycle stall.
    ///
    /// Identical `(seed, rows, cols)` always yields an identical plan.
    pub fn seeded(seed: u64, rows: usize, cols: usize) -> FaultPlan {
        let n = rows * cols;
        let mut rng = TestRng::seed_from_u64(splitmix64(seed ^ 0xFA0175EED));
        let mut plan = FaultPlan::none();
        plan.seed = seed;
        for t in 0..n {
            if rng.gen_bool(1.0 / 16.0) {
                plan.dead_tiles.insert(t);
            }
        }
        if plan.dead_tiles.len() == n && n > 0 {
            plan.dead_tiles.remove(&(seed as usize % n));
        }
        for r in 0..rows {
            for c in 0..cols {
                let t = r * cols + c;
                if c + 1 < cols && rng.gen_bool(1.0 / 24.0) {
                    plan.dead_links.insert(link_key(t, t + 1));
                }
                if r + 1 < rows && rng.gen_bool(1.0 / 24.0) {
                    plan.dead_links.insert(link_key(t, t + cols));
                }
            }
        }
        let flips = rng.gen_range(0u32..4);
        for _ in 0..flips {
            let word = rng.next_u64() >> 32;
            // 1 bit 80 % of the time, 2 bits 15 %, 3 bits 5 %
            let roll = rng.gen_range(0u32..100);
            let bits = if roll < 80 {
                1
            } else if roll < 95 {
                2
            } else {
                3
            };
            plan.sram_flips.push(SramFlip { word, bits });
        }
        if rng.gen_bool(0.5) {
            plan.dma = DmaFaultModel {
                stall_ppm: rng.gen_range(1_000u32..20_000),
                stall_cycles: rng.gen_range(100u64..900),
                seed: splitmix64(seed ^ 0xD1A57A11),
            };
        }
        plan
    }

    /// `true` when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.dead_tiles.is_empty()
            && self.dead_links.is_empty()
            && self.sram_flips.is_empty()
            && self.dma.is_none()
    }

    /// `true` when the plan leaves the fabric topology intact (it may still
    /// flip SRAM bits or stall DMA).
    pub fn fabric_intact(&self) -> bool {
        self.dead_tiles.is_empty() && self.dead_links.is_empty()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults[seed={:#x}]: {} dead PEs, {} dead links, {} SRAM flips, dma {} ppm",
            self.seed,
            self.dead_tiles.len(),
            self.dead_links.len(),
            self.sram_flips.len(),
            self.dma.stall_ppm
        )
    }
}

/// Normalizes a link's endpoint pair to `(min, max)`.
pub fn link_key(a: usize, b: usize) -> (usize, usize) {
    (a.min(b), a.max(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::none().fabric_intact());
    }

    #[test]
    fn builders_compose() {
        let p = FaultPlan::dead_tile(3)
            .with_dead_link(5, 1)
            .with_sram_flip(42, 1)
            .with_dma(DmaFaultModel { stall_ppm: 100, stall_cycles: 50, seed: 7 });
        assert!(p.dead_tiles.contains(&3));
        assert!(p.dead_links.contains(&(1, 5)), "links normalize to (min,max)");
        assert!(!p.is_empty());
        assert!(!p.fabric_intact());
    }

    #[test]
    fn seeded_is_deterministic() {
        let a = FaultPlan::seeded(0xBEEF, 4, 4);
        let b = FaultPlan::seeded(0xBEEF, 4, 4);
        assert_eq!(a, b);
        // different seeds produce different plans somewhere in a short scan
        let mut distinct = false;
        for s in 0..16u64 {
            if FaultPlan::seeded(s, 4, 4) != a {
                distinct = true;
                break;
            }
        }
        assert!(distinct);
    }

    #[test]
    fn seeded_never_kills_every_tile() {
        for seed in 0..256u64 {
            let p = FaultPlan::seeded(seed, 2, 2);
            assert!(p.dead_tiles.len() < 4, "seed {seed} killed the whole fabric");
        }
    }

    #[test]
    fn seeded_links_are_adjacent_pairs() {
        for seed in 0..64u64 {
            let p = FaultPlan::seeded(seed, 4, 4);
            for &(a, b) in &p.dead_links {
                assert!(a < b);
                let (ar, ac) = (a / 4, a % 4);
                let (br, bc) = (b / 4, b % 4);
                assert_eq!(ar.abs_diff(br) + ac.abs_diff(bc), 1, "non-mesh link {a}-{b}");
            }
        }
    }

    #[test]
    fn dma_stalls_deterministic_and_rate_plausible() {
        let d = DmaFaultModel { stall_ppm: 100_000, stall_cycles: 10, seed: 99 };
        let count = (0..100_000u64).filter(|&x| d.stalls(x, 0)).count();
        // 10 % ± 1 % over 100k draws
        assert!((9_000..=11_000).contains(&count), "{count}");
        for x in 0..100 {
            assert_eq!(d.stalls(x, 0), d.stalls(x, 0));
            // attempt index decorrelates retries from first attempts
        }
        assert!(!DmaFaultModel::none().stalls(0, 0));
    }
}
