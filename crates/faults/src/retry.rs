//! One audited retry/backoff policy, shared by every layer that retries.
//!
//! Two stacks retry transient failures: the DMA channel retries stalled
//! transfers (cycles), and the serving scheduler retries requests whose
//! shard crashed mid-batch (nanoseconds). Both want the same shape —
//! a bounded attempt budget and doubling backoff — and an accounting bug
//! in either (off-by-one attempt counts, overflowing shifts) corrupts a
//! determinism contract. So the arithmetic lives here exactly once; the
//! unit of `backoff_base` is the caller's (cycles for DMA, ns for
//! serving), which the policy never interprets.

/// A bounded exponential-backoff retry policy: at most `max_attempts`
/// attempts per unit of work, attempt `a` preceded (after the first) by a
/// backoff of `backoff_base << a`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Most attempts issued for one unit of work before giving up. The
    /// consumer decides whether this counts the first try (DMA: yes) or
    /// only re-dispatches (serving: yes, retries only); the policy just
    /// bounds the count.
    pub max_attempts: u32,
    /// Backoff before the first retry, in the caller's time unit; doubles
    /// on every further retry.
    pub backoff_base: u64,
}

impl RetryPolicy {
    /// A policy with the given budget and base backoff.
    pub const fn new(max_attempts: u32, backoff_base: u64) -> RetryPolicy {
        RetryPolicy { max_attempts, backoff_base }
    }

    /// Backoff charged before reissuing after failed attempt `attempt`
    /// (0-based): `backoff_base << attempt`, saturating at `u64::MAX`
    /// instead of silently wrapping to zero on absurd attempt indices.
    pub fn backoff(&self, attempt: u32) -> u64 {
        if self.backoff_base == 0 {
            return 0;
        }
        match 1u64.checked_shl(attempt) {
            Some(m) => self.backoff_base.saturating_mul(m),
            None => u64::MAX,
        }
    }

    /// Whether `attempts` already-issued attempts exhaust the budget.
    pub fn exhausted(&self, attempts: u32) -> bool {
        attempts >= self.max_attempts
    }

    /// Total backoff paid across `attempts` failed attempts (saturating).
    pub fn total_backoff(&self, attempts: u32) -> u64 {
        (0..attempts).fold(0u64, |acc, a| acc.saturating_add(self.backoff(a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_from_base() {
        let p = RetryPolicy::new(4, 32);
        assert_eq!(p.backoff(0), 32);
        assert_eq!(p.backoff(1), 64);
        assert_eq!(p.backoff(2), 128);
        assert_eq!(p.backoff(3), 256);
        assert_eq!(p.total_backoff(4), 32 + 64 + 128 + 256);
    }

    #[test]
    fn backoff_saturates_instead_of_wrapping() {
        let p = RetryPolicy::new(4, u64::MAX / 2);
        assert_eq!(p.backoff(0), u64::MAX / 2);
        assert_eq!(p.backoff(1), u64::MAX - 1, "2·(2^63 − 1) still fits");
        assert_eq!(p.backoff(2), u64::MAX, "one more doubling saturates");
        assert_eq!(p.backoff(200), u64::MAX, "shift past 63 bits must saturate");
        assert_eq!(p.total_backoff(200), u64::MAX);
        let zero = RetryPolicy::new(4, 0);
        assert_eq!(zero.backoff(200), 0, "zero base backs off nothing at any attempt");
    }

    #[test]
    fn exhaustion_is_inclusive_of_the_budget() {
        let p = RetryPolicy::new(3, 1);
        assert!(!p.exhausted(0));
        assert!(!p.exhausted(2));
        assert!(p.exhausted(3));
        assert!(p.exhausted(4));
        assert!(RetryPolicy::new(0, 1).exhausted(0), "zero budget gives up immediately");
    }
}
