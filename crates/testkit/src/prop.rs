//! Minimal deterministic property-testing harness (the in-tree `proptest`
//! replacement).
//!
//! A property is a closure `|g: &mut Gen| -> PropResult` that draws inputs
//! from `g` and checks a predicate with [`prop_assert!`] /
//! [`prop_assert_eq!`] (and may skip uninteresting inputs with
//! [`prop_assume!`]). The [`prop_check!`] macro runs it for a fixed number of
//! cases from a fixed base seed, so a suite run is bit-for-bit reproducible.
//!
//! On failure the harness:
//! 1. greedily **shrinks** the recorded draws (toward zero / range minimum /
//!    halving) while the property keeps failing, and
//! 2. panics with the **failing case seed** — replaying that seed through
//!    [`replay`] re-executes the identical un-shrunk case, which is what the
//!    regression test in `tests/mapper_fuzz.rs` relies on.
//!
//! Draws are recorded as a flat value stream. During shrinking the property
//! is re-run with the same case seed while selected stream positions are
//! overridden (each override is clamped into the range requested at that
//! draw site), so structured inputs — a `vec` is one length draw plus element
//! draws — shrink without any per-type shrinker machinery.

use crate::rng::{splitmix64, SampleRange, SampleUniform, TestRng};

/// Why a single property case did not pass.
#[derive(Debug, Clone, PartialEq)]
pub enum PropError {
    /// An assertion failed; the payload is the formatted message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is discarded, not failed.
    Discard,
}

/// Result of one property-case execution.
pub type PropResult = Result<(), PropError>;

/// A failing property run, as returned by [`check_result`].
#[derive(Debug, Clone)]
pub struct Failure {
    /// Index of the failing case (0-based).
    pub case: usize,
    /// Seed that reproduces the failing case via [`replay`].
    pub case_seed: u64,
    /// Assertion message from the original (un-shrunk) failure.
    pub message: String,
    /// Assertion message after shrinking (may differ from `message` when a
    /// simpler input trips an earlier assertion).
    pub shrunk_message: String,
    /// The shrunk draw stream, rendered for the panic message.
    pub shrunk_values: Vec<String>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "property failed at case {} (replay seed {:#x}): {}\n  shrunk: [{}]\n  shrunk failure: {}",
            self.case,
            self.case_seed,
            self.message,
            self.shrunk_values.join(", "),
            self.shrunk_message
        )
    }
}

/// One recorded draw: the value (widened to `f64`, exact for every type we
/// sample) plus the bounds it must stay inside when overridden.
#[derive(Debug, Clone, Copy)]
struct Draw {
    value: f64,
    lo: f64,
    hi: f64,
    inclusive: bool,
    is_int: bool,
}

/// Input source handed to a property closure.
///
/// Every `draw` both samples the underlying [`TestRng`] (keeping the stream
/// aligned across replays) and records the produced value so the harness can
/// shrink it.
pub struct Gen {
    rng: TestRng,
    draws: Vec<Draw>,
    overrides: Vec<Option<f64>>,
    cursor: usize,
}

impl Gen {
    /// A generator for one case seed with no overrides (normal execution).
    pub fn from_seed(seed: u64) -> Gen {
        Gen {
            rng: TestRng::seed_from_u64(seed),
            draws: Vec::new(),
            overrides: Vec::new(),
            cursor: 0,
        }
    }

    fn with_overrides(seed: u64, overrides: Vec<Option<f64>>) -> Gen {
        Gen { overrides, ..Gen::from_seed(seed) }
    }

    /// Draws one value uniformly from `range` (`lo..hi` or `lo..=hi`).
    pub fn draw<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform + PropScalar,
        R: SampleRange<T> + Clone,
    {
        let (lo, hi, inclusive) = range.bounds();
        // Always consume the rng so later draw sites see the same underlying
        // stream whether or not this site is overridden.
        let sampled = self.rng.gen_range(range);
        let idx = self.cursor;
        self.cursor += 1;
        let value = match self.overrides.get(idx).copied().flatten() {
            Some(forced) => T::clamp_from_f64(forced, lo, hi, inclusive),
            None => sampled,
        };
        self.draws.push(Draw {
            value: value.to_f64(),
            lo: lo.to_f64(),
            hi: hi.to_f64(),
            inclusive,
            is_int: T::IS_INT,
        });
        value
    }

    /// Draws a `Vec` whose length comes from `len` and whose elements come
    /// from `elem`. The length is itself a recorded draw, so shrinking
    /// naturally tries shorter vectors first.
    pub fn vec<T, R>(&mut self, elem: R, len: std::ops::Range<usize>) -> Vec<T>
    where
        T: SampleUniform + PropScalar,
        R: SampleRange<T> + Clone,
    {
        let n: usize = self.draw(len);
        (0..n).map(|_| self.draw(elem.clone())).collect()
    }

    /// Convenience typed draws (keep ported property bodies readable).
    pub fn f32(&mut self, range: std::ops::Range<f32>) -> f32 {
        self.draw(range)
    }
    /// Draws an `f64` from a half-open range.
    pub fn f64(&mut self, range: std::ops::Range<f64>) -> f64 {
        self.draw(range)
    }
    /// Draws an `i32` from a half-open range.
    pub fn i32(&mut self, range: std::ops::Range<i32>) -> i32 {
        self.draw(range)
    }
    /// Draws a `u32` from a half-open range.
    pub fn u32(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.draw(range)
    }
    /// Draws a `usize` from a half-open range.
    pub fn usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.draw(range)
    }
}

/// Scalar types the harness can record and shrink. Implemented for the
/// primitive ints and floats; all values round-trip exactly through `f64`
/// for the ranges used in tests.
pub trait PropScalar: Copy {
    /// Whether the type shrinks on the integer lattice.
    const IS_INT: bool;
    /// Widen to the recorded representation.
    fn to_f64(self) -> f64;
    /// Narrow an override back, clamped into the draw site's range.
    fn clamp_from_f64(v: f64, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_prop_int {
    ($($t:ty),* $(,)?) => {$(
        impl PropScalar for $t {
            const IS_INT: bool = true;
            fn to_f64(self) -> f64 { self as f64 }
            fn clamp_from_f64(v: f64, lo: Self, hi: Self, inclusive: bool) -> Self {
                let top = if inclusive { hi as f64 } else { hi as f64 - 1.0 };
                let c = v.round().clamp(lo as f64, top);
                c as $t
            }
        }
    )*};
}
impl_prop_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_prop_float {
    ($($t:ty),* $(,)?) => {$(
        impl PropScalar for $t {
            const IS_INT: bool = false;
            fn to_f64(self) -> f64 { self as f64 }
            fn clamp_from_f64(v: f64, lo: Self, hi: Self, inclusive: bool) -> Self {
                let mut c = (v as $t).clamp(lo, hi);
                if !inclusive && c >= hi {
                    // stay inside the half-open range
                    c = if lo < hi { <$t>::from_bits(hi.to_bits().wrapping_sub(1)).max(lo) } else { lo };
                }
                c
            }
        }
    )*};
}
impl_prop_float!(f32, f64);

/// Runs `cases` property cases from `base_seed`, returning the first failure
/// (after shrinking) or `Ok(())`. Discarded cases (`prop_assume!`) are
/// retried with fresh seeds, up to `10 × cases` total attempts.
pub fn check_result<F>(cases: usize, base_seed: u64, mut prop: F) -> Result<(), Failure>
where
    F: FnMut(&mut Gen) -> PropResult,
{
    let mut executed = 0usize;
    let mut attempt = 0usize;
    let max_attempts = cases.saturating_mul(10).max(cases + 16);
    while executed < cases && attempt < max_attempts {
        let case_seed = splitmix64(base_seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempt += 1;
        let mut g = Gen::from_seed(case_seed);
        match prop(&mut g) {
            Ok(()) => executed += 1,
            Err(PropError::Discard) => {}
            Err(PropError::Fail(message)) => {
                let (shrunk_message, shrunk) = shrink(case_seed, g.draws, &mut prop);
                return Err(Failure {
                    case: executed,
                    case_seed,
                    message,
                    shrunk_message,
                    shrunk_values: shrunk
                        .iter()
                        .map(|d| {
                            if d.is_int {
                                format!("{}", d.value as i64)
                            } else {
                                format!("{}", d.value)
                            }
                        })
                        .collect(),
                });
            }
        }
    }
    Ok(())
}

/// Runs `cases` cases and panics with a reproducible report on failure.
/// Prefer the [`prop_check!`] macro, which forwards here.
pub fn check<F>(cases: usize, base_seed: u64, prop: F)
where
    F: FnMut(&mut Gen) -> PropResult,
{
    if let Err(failure) = check_result(cases, base_seed, prop) {
        panic!("{failure}");
    }
}

/// Re-executes exactly one case from its reported seed (no shrinking).
/// A seed printed by a [`prop_check!`] failure reproduces the same draws and
/// therefore the same failure.
pub fn replay<F>(case_seed: u64, mut prop: F) -> PropResult
where
    F: FnMut(&mut Gen) -> PropResult,
{
    prop(&mut Gen::from_seed(case_seed))
}

/// Greedy shrink: repeatedly try simpler values for each recorded draw,
/// keeping any override under which the property still fails. Bounded by a
/// fixed re-execution budget so pathological properties terminate.
fn shrink<F>(case_seed: u64, original: Vec<Draw>, prop: &mut F) -> (String, Vec<Draw>)
where
    F: FnMut(&mut Gen) -> PropResult,
{
    const BUDGET: usize = 400;
    let mut best: Vec<Option<f64>> = vec![None; original.len()];
    let mut best_draws = original.clone();
    let mut best_message = String::new();
    let mut runs = 0usize;

    // Re-run with a candidate override set; Some(msg) if it still fails.
    let mut still_fails = |overrides: &[Option<f64>], runs: &mut usize| -> Option<(String, Vec<Draw>)> {
        *runs += 1;
        let mut g = Gen::with_overrides(case_seed, overrides.to_vec());
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(&mut g))) {
            Ok(Err(PropError::Fail(m))) => Some((m, g.draws)),
            // A panic inside the property body under a shrunk input still
            // demonstrates failure; keep the shrink.
            Err(payload) => {
                let m = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "panic during shrinking".to_string());
                Some((m, Vec::new()))
            }
            _ => None,
        }
    };

    let mut improved = true;
    while improved && runs < BUDGET {
        improved = false;
        for i in 0..original.len() {
            let current = best[i].unwrap_or(original[i].value);
            for candidate in shrink_candidates(&original[i], current) {
                if candidate == current || runs >= BUDGET {
                    continue;
                }
                let mut trial = best.clone();
                trial[i] = Some(candidate);
                if let Some((msg, draws)) = still_fails(&trial, &mut runs) {
                    best = trial;
                    best_message = msg;
                    if !draws.is_empty() {
                        best_draws = draws;
                    }
                    improved = true;
                    break; // take the simplest winning candidate for this draw
                }
            }
        }
    }

    if best_message.is_empty() {
        // nothing shrank; re-derive the message from the original values
        best_message = "(original failure — no shrink found)".to_string();
    }
    (best_message, best_draws)
}

/// Simpler-first candidate values for one draw: zero (clamped into range),
/// the range minimum, then successive halvings toward zero.
fn shrink_candidates(d: &Draw, current: f64) -> Vec<f64> {
    let mut c = Vec::with_capacity(6);
    let top = if d.inclusive || !d.is_int { d.hi } else { d.hi - 1.0 };
    let clamp = |v: f64| v.clamp(d.lo, top);
    c.push(clamp(0.0));
    c.push(d.lo);
    let mut v = current;
    for _ in 0..3 {
        v = if d.is_int { (v / 2.0).trunc() } else { v / 2.0 };
        c.push(clamp(v));
    }
    if d.is_int && current > d.lo {
        c.push(clamp(current - 1.0));
    }
    c.dedup();
    c
}

/// Asserts a condition inside a property closure; on failure returns
/// `Err(PropError::Fail(..))` with the formatted message and source location.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::prop::PropError::Fail(format!(
                "[{}:{}] {}",
                file!(),
                line!(),
                format!($($fmt)*)
            )));
        }
    };
}

/// Asserts equality inside a property closure (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Discards the current case when its inputs are uninteresting; the harness
/// draws a fresh case instead of counting a failure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::prop::PropError::Discard);
        }
    };
}

/// Runs a property for `cases` cases from `seed`, panicking with a
/// reproducible, shrunk report on failure:
///
/// ```
/// use picachu_testkit::{prop_check, prop_assert};
/// prop_check!(64, 0xBEEF, |g| {
///     let x = g.f32(-100.0..100.0);
///     prop_assert!(x.abs() <= 100.0);
///     Ok(())
/// });
/// ```
#[macro_export]
macro_rules! prop_check {
    ($cases:expr, $seed:expr, $prop:expr) => {
        $crate::prop::check($cases, $seed, $prop)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        check(128, 1, |g| {
            let x = g.f64(0.0..10.0);
            prop_assert!((0.0..10.0).contains(&x));
            Ok(())
        });
    }

    #[test]
    fn failure_reports_replayable_seed() {
        let failure = check_result(256, 7, |g| {
            let x = g.i32(0..1000);
            prop_assert!(x < 900, "x = {x} too big");
            Ok(())
        })
        .expect_err("property must fail within 256 cases");
        // replaying the reported seed reproduces the same failure
        let replayed = replay(failure.case_seed, |g| {
            let x = g.i32(0..1000);
            prop_assert!(x < 900, "x = {x} too big");
            Ok(())
        });
        match replayed {
            Err(PropError::Fail(msg)) => assert!(msg.contains("too big"), "{msg}"),
            other => panic!("replay did not reproduce the failure: {other:?}"),
        }
    }

    #[test]
    fn shrinker_converges_to_boundary() {
        // fails iff x >= 100: the shrinker should walk x down to the
        // smallest failing value region (well below the typical sample).
        let failure = check_result(200, 42, |g| {
            let x = g.i32(0..1_000_000);
            prop_assert!(x < 100, "x = {x}");
            Ok(())
        })
        .expect_err("must fail");
        let shrunk: i64 = failure.shrunk_values[0].parse().unwrap();
        assert!(
            (100..2000).contains(&shrunk),
            "greedy shrink should land near the boundary, got {shrunk} ({failure})"
        );
    }

    #[test]
    fn shrinker_shortens_vectors() {
        let failure = check_result(100, 3, |g| {
            let v: Vec<f32> = g.vec(-10.0f32..10.0, 5..50);
            prop_assert!(v.len() < 5, "vec of len {}", v.len());
            Ok(())
        })
        .expect_err("must fail");
        // first draw is the length; greedy shrinking clamps it to the minimum
        let len: i64 = failure.shrunk_values[0].parse().unwrap();
        assert_eq!(len, 5, "length should shrink to the range minimum");
    }

    #[test]
    fn assume_discards_but_completes() {
        let mut ran = 0;
        check(64, 9, |g| {
            let x = g.i32(0..100);
            prop_assume!(x % 2 == 0);
            ran += 1;
            prop_assert!(x % 2 == 0);
            Ok(())
        });
        assert!(ran >= 32, "enough even cases should run, got {ran}");
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let mut vals = Vec::new();
            check(16, 1234, |g| {
                vals.push(g.f64(0.0..1.0));
                Ok(())
            });
            vals
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn overridden_draws_stay_in_range() {
        // force absurd overrides; clamping must keep draws in range
        let mut g = Gen::with_overrides(5, vec![Some(1e18), Some(-1e18)]);
        let a: i32 = g.draw(0..10);
        let b: f32 = g.draw(-2.0f32..2.0);
        assert!((0..10).contains(&a));
        assert!((-2.0..2.0).contains(&b));
    }
}
