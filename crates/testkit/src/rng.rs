//! Deterministic, dependency-free pseudo-random number generation.
//!
//! The workspace must build and test fully offline, so this module replaces
//! the `rand` crate everywhere a seeded stream is needed (the simulated-
//! annealing mapper, the tiny-LM weight initialisation, the activation
//! distribution samplers, the fuzz tests). The generator is Xoshiro256++
//! seeded through SplitMix64 — the standard construction recommended by the
//! Xoshiro authors: SplitMix64 decorrelates arbitrary user seeds (including
//! 0, 1, 2, ...) before they become generator state.
//!
//! Everything here is deterministic across platforms and Rust versions: the
//! same seed always yields the same stream, which the replay machinery in
//! [`crate::prop`] and the mapper's seeded restarts both rely on.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny 64-bit PRNG used for seed expansion.
///
/// Passes BigCrush on its own; here it only stretches one `u64` seed into
/// the 256-bit Xoshiro state (and derives per-case seeds in the property
/// harness).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the stream for `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One step of SplitMix64 as a pure function: mixes `x` into a
/// well-distributed 64-bit value. Used to derive independent sub-seeds
/// (e.g. per-case seeds in `prop_check!`) without constructing a generator.
pub fn splitmix64(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// Xoshiro256++ — the workspace's deterministic test RNG.
///
/// 256 bits of state, period 2^256 − 1, passes all known statistical test
/// batteries. Construct with [`TestRng::seed_from_u64`]; identical seeds give
/// identical streams forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator whose 256-bit state is expanded from `seed` via
    /// SplitMix64 (the construction the Xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut sm = SplitMix64::new(seed);
        TestRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next raw 64-bit output (the Xoshiro256++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform sample from `range` (half-open `lo..hi` or inclusive
    /// `lo..=hi`), for all primitive integer and float types.
    ///
    /// # Panics
    /// Panics on an empty range.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        self.next_f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Standard-normal sample (mean 0, variance 1) via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        // u1 in (0, 1]: avoids ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, bound)` using the widening-multiply method
    /// (bias below 2^-64 for every bound we use — negligible for tests).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Types that can be sampled uniformly from a range by [`TestRng`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_between(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                if inclusive {
                    assert!(lo <= hi, "empty range {lo}..={hi}");
                } else {
                    assert!(lo < hi, "empty range {lo}..{hi}");
                }
                // Width as an unsigned 64-bit span; `inclusive` widens by 1
                // (a full-domain inclusive range wraps to 0 = "all 2^64").
                let span = (hi as $wide as u64)
                    .wrapping_sub(lo as $wide as u64)
                    .wrapping_add(inclusive as u64);
                let off = if span == 0 { rng.next_u64() } else { rng.bounded_u64(span) };
                ((lo as $wide as u64).wrapping_add(off)) as $wide as $t
            }
        }
    )*};
}

impl_sample_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_sample_float {
    ($($t:ty, $unit:ident);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_between(rng: &mut TestRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo < hi, "empty range {lo}..{hi}");
                assert!(lo.is_finite() && hi.is_finite(), "non-finite range bounds");
                let v = lo + (hi - lo) * rng.$unit();
                // guard against FP rounding pushing us onto hi
                if v >= hi { lo } else { v }
            }
        }
    )*};
}

impl_sample_float!(f32, next_f32; f64, next_f64);

/// Range forms accepted by [`TestRng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample(self, rng: &mut TestRng) -> T;
    /// The range bounds as `(lo, hi, inclusive)`.
    fn bounds(&self) -> (T, T, bool);
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut TestRng) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
    fn bounds(&self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut TestRng) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
    fn bounds(&self) -> (T, T, bool) {
        (*self.start(), *self.end(), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::seed_from_u64(42);
        let mut b = TestRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TestRng::seed_from_u64(1);
        let mut b = TestRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn stream_is_pinned() {
        // Golden values: any change to the generator alters every seeded
        // test in the workspace, so the exact stream is pinned here.
        let mut r = TestRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut r = TestRng::seed_from_u64(7);
        for _ in 0..5000 {
            let v: i32 = r.gen_range(-17..23);
            assert!((-17..23).contains(&v));
            let w: usize = r.gen_range(0..3);
            assert!(w < 3);
            let x: u16 = r.gen_range(0..=u16::MAX);
            let _ = x; // full domain: any value is valid
            let y: i64 = r.gen_range(5..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn gen_range_int_covers_endpoints() {
        let mut r = TestRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..4 should appear: {seen:?}");
        let mut hit_max = false;
        for _ in 0..1000 {
            if r.gen_range(0u32..=3) == 3 {
                hit_max = true;
            }
        }
        assert!(hit_max, "inclusive upper bound must be reachable");
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut r = TestRng::seed_from_u64(11);
        for _ in 0..5000 {
            let v: f32 = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&v));
            let w: f64 = r.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&w));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        TestRng::seed_from_u64(0).gen_range(5..5);
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = TestRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        TestRng::seed_from_u64(99).shuffle(&mut a);
        TestRng::seed_from_u64(99).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn normal_moments() {
        let mut r = TestRng::seed_from_u64(2024);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
        assert!(samples.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn splitmix_pure_mix_differs_per_input() {
        assert_ne!(splitmix64(0), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
