//! Tiny wall-clock microbenchmark harness (the in-tree `criterion`
//! replacement for `crates/bench`).
//!
//! Design goals, in order: **zero dependencies**, **machine-readable
//! output**, **fast smoke mode**. Each benchmark is warmed up, then timed
//! over `sample_size` samples of `iters_per_sample` calls each; the
//! per-call median and p95 are emitted as one JSON line on stdout so
//! `BENCH_*.json` trajectories can be accumulated with a plain
//! `cargo bench -p picachu-bench > file`:
//!
//! ```json
//! {"group":"compiler","bench":"fuse_softmax2","median_ns":1234.5,"p95_ns":1401.2,"samples":31,"iters_per_sample":64}
//! ```
//!
//! `--smoke` (as in `cargo bench -p picachu-bench -- --smoke`) runs every
//! benchmark exactly once with no warmup — a CI-friendly "does every bench
//! still execute" gate. Any other non-flag argument is a substring filter on
//! `group/bench` names. The `--bench` flag cargo appends is ignored.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] so benches need no direct `std::hint`
/// import (mirrors `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness; parses CLI arguments once and owns global options.
pub struct Bench {
    smoke: bool,
    filter: Option<String>,
}

impl Bench {
    /// Builds the harness from `std::env::args`.
    ///
    /// Recognised arguments: `--smoke` (single-iteration mode), `--bench`
    /// (ignored; cargo appends it), and a free-form substring filter.
    pub fn from_args() -> Bench {
        let mut smoke = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--smoke" => smoke = true,
                "--bench" | "--test" => {}
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Bench { smoke, filter }
    }

    /// Explicit constructor for tests and scripted use.
    pub fn new(smoke: bool, filter: Option<String>) -> Bench {
        Bench { smoke, filter }
    }

    /// Whether `--smoke` was requested.
    pub fn is_smoke(&self) -> bool {
        self.smoke
    }

    /// Opens a named benchmark group (mirrors criterion's `benchmark_group`).
    pub fn group(&self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            sample_size: 31,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct Group<'a> {
    harness: &'a Bench,
    name: String,
    sample_size: usize,
}

/// One benchmark's summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Median per-call wall-clock nanoseconds.
    pub median_ns: f64,
    /// 95th-percentile per-call wall-clock nanoseconds.
    pub p95_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Calls per timed sample.
    pub iters_per_sample: u64,
}

impl<'a> Group<'a> {
    /// Sets the number of timed samples for subsequent benches in this group
    /// (mirrors criterion's `sample_size`; smoke mode overrides it to 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its JSON line. Returns the stats (also
    /// used by the self-tests); skipped benches return `None`.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) -> Option<Stats> {
        let full = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.harness.filter {
            if !full.contains(filter.as_str()) {
                return None;
            }
        }
        let stats = if self.harness.smoke {
            // one call, no warmup: proves the bench still runs
            let t0 = Instant::now();
            f();
            let ns = t0.elapsed().as_nanos() as f64;
            Stats { median_ns: ns, p95_ns: ns, samples: 1, iters_per_sample: 1 }
        } else {
            run_measured(&mut f, self.sample_size)
        };
        println!(
            "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{:.1},\"p95_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
            json_escape(&self.name),
            json_escape(name),
            stats.median_ns,
            stats.p95_ns,
            stats.samples,
            stats.iters_per_sample
        );
        Some(stats)
    }

    /// Criterion-compat shim: `bench_with_input(id, input, f)` where the id
    /// is already rendered into the bench name by the caller.
    pub fn finish(&mut self) {}
}

/// Warmup + calibration + timed samples.
fn run_measured<F: FnMut()>(f: &mut F, sample_size: usize) -> Stats {
    // Warmup & calibration: run until ~20ms total or 10k calls, tracking the
    // mean so we can size each timed sample at ~1ms (min 1 call).
    let warm_budget = Duration::from_millis(20);
    let warm_start = Instant::now();
    let mut calls = 0u64;
    while warm_start.elapsed() < warm_budget && calls < 10_000 {
        f();
        calls += 1;
    }
    let mean_ns = warm_start.elapsed().as_nanos() as f64 / calls as f64;
    let iters_per_sample = ((1_000_000.0 / mean_ns.max(1.0)).ceil() as u64).clamp(1, 100_000);

    let mut per_call: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let t0 = Instant::now();
        for _ in 0..iters_per_sample {
            f();
        }
        per_call.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
    }
    per_call.sort_by(f64::total_cmp);
    Stats {
        median_ns: percentile(&per_call, 50.0),
        p95_ns: percentile(&per_call, 95.0),
        samples: sample_size,
        iters_per_sample,
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_exactly_once() {
        let h = Bench::new(true, None);
        let mut g = h.group("test");
        let mut count = 0u32;
        let stats = g.bench("counter", || count += 1).expect("not filtered");
        assert_eq!(count, 1);
        assert_eq!(stats.samples, 1);
        assert_eq!(stats.iters_per_sample, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let h = Bench::new(true, Some("wanted".into()));
        let mut g = h.group("grp");
        let mut ran = false;
        assert!(g.bench("other", || ran = true).is_none());
        assert!(!ran);
        assert!(g.bench("wanted_bench", || ran = true).is_some());
        assert!(ran);
    }

    #[test]
    fn measured_stats_are_sane() {
        let h = Bench::new(false, None);
        let mut g = h.group("test");
        g.sample_size(5);
        let stats = g
            .bench("spin", || {
                black_box((0..100u64).sum::<u64>());
            })
            .expect("not filtered");
        assert!(stats.median_ns > 0.0);
        assert!(stats.p95_ns >= stats.median_ns);
        assert_eq!(stats.samples, 5);
        assert!(stats.iters_per_sample >= 1);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 95.0), 5.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
    }
}
