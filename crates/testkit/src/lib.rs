//! # picachu-testkit
//!
//! Hermetic, dependency-free testing and benchmarking toolkit for the
//! PICACHU workspace. The sandboxed build environment cannot reach
//! crates.io, so this crate replaces the three external dev-dependencies the
//! seed repo relied on:
//!
//! | external crate | in-tree replacement | module |
//! |----------------|--------------------|--------|
//! | `rand`         | SplitMix64-seeded Xoshiro256++ ([`TestRng`]) | [`rng`] |
//! | `proptest`     | [`prop_check!`] + greedy stream shrinking     | [`prop`] |
//! | `criterion`    | wall-clock harness, JSON lines, `--smoke`     | [`bench`] |
//!
//! Everything is deterministic: a seed fully determines an RNG stream, a
//! `(cases, seed)` pair fully determines a property run, and a failing
//! property reports a **case seed** that [`prop::replay`] re-executes
//! verbatim. See `README.md` §"Building & testing (offline)".

pub mod bench;
pub mod prop;
pub mod rng;

pub use bench::{black_box, Bench};
pub use prop::{Gen, PropError, PropResult};
pub use rng::{splitmix64, SplitMix64, TestRng};
