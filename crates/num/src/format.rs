//! Data formats supported by the PICACHU CGRA (§4.2.1, §4.2.2).
//!
//! Each CGRA tile contains four 16-bit integer lanes. The lanes compose:
//! INT16 keeps all four lanes independent (vector factor 4); INT32 fuses two
//! lanes for addition and all four for multiplication, and — to keep addition
//! and multiplication aligned — only one 32-bit result is produced per cycle
//! (vector factor 1). Floating-point inputs are converted to FP32 for
//! intermediate computation, so FP16 and FP32 both run at vector factor 1 on
//! the dedicated FP pipeline.

use std::fmt;

/// Input/output data format of an offloaded kernel.
///
/// ```
/// use picachu_num::DataFormat;
/// assert!(DataFormat::Fp32.is_float());
/// assert_eq!(DataFormat::Int32.bit_width(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum DataFormat {
    /// IEEE-754 binary32.
    #[default]
    Fp32,
    /// IEEE-754 binary16 (converted to FP32 for intermediate computation).
    Fp16,
    /// 32-bit integer; two 16-bit lanes fuse for add, four for multiply.
    Int32,
    /// 16-bit integer; all four lanes operate independently.
    Int16,
}

impl DataFormat {
    /// All supported formats, in the order used by the evaluation tables.
    pub const ALL: [DataFormat; 4] = [
        DataFormat::Fp32,
        DataFormat::Fp16,
        DataFormat::Int32,
        DataFormat::Int16,
    ];

    /// Returns `true` for the floating-point formats.
    pub fn is_float(self) -> bool {
        matches!(self, DataFormat::Fp32 | DataFormat::Fp16)
    }

    /// Returns `true` for the integer formats.
    pub fn is_int(self) -> bool {
        !self.is_float()
    }

    /// Storage width of one element in bits.
    pub fn bit_width(self) -> u32 {
        match self {
            DataFormat::Fp32 | DataFormat::Int32 => 32,
            DataFormat::Fp16 | DataFormat::Int16 => 16,
        }
    }

    /// Storage width of one element in bytes.
    pub fn byte_width(self) -> usize {
        self.bit_width() as usize / 8
    }

    /// Elements processed per tile per cycle (§4.2.2 precision-awareness).
    ///
    /// INT16 composes the four 16-bit lanes into a 4-wide vector; every other
    /// format produces one result per cycle.
    pub fn vector_factor(self) -> usize {
        match self {
            DataFormat::Int16 => 4,
            _ => 1,
        }
    }

    /// Number of 16-bit lanes a single operation of this format occupies.
    ///
    /// In INT32 mode the tile could perform two 32-bit additions with its four
    /// lanes, but the paper enables only half of them so that addition and
    /// multiplication (which needs all four lanes) stay aligned.
    pub fn lanes_per_op(self) -> usize {
        match self {
            DataFormat::Int16 => 1,
            DataFormat::Int32 => 4,
            // FP ops run on the dedicated FP pipeline, not the integer lanes.
            DataFormat::Fp32 | DataFormat::Fp16 => 0,
        }
    }
}

impl fmt::Display for DataFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataFormat::Fp32 => "FP32",
            DataFormat::Fp16 => "FP16",
            DataFormat::Int32 => "INT32",
            DataFormat::Int16 => "INT16",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_factors() {
        assert_eq!(DataFormat::Fp32.bit_width(), 32);
        assert_eq!(DataFormat::Fp16.bit_width(), 16);
        assert_eq!(DataFormat::Int16.vector_factor(), 4);
        assert_eq!(DataFormat::Int32.vector_factor(), 1);
        assert_eq!(DataFormat::Fp32.vector_factor(), 1);
        assert_eq!(DataFormat::Int32.byte_width(), 4);
    }

    #[test]
    fn float_int_partition() {
        for f in DataFormat::ALL {
            assert_ne!(f.is_float(), f.is_int());
        }
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(DataFormat::Fp16.to_string(), "FP16");
        assert_eq!(DataFormat::Int16.to_string(), "INT16");
    }

    #[test]
    fn int32_occupies_all_lanes_for_alignment() {
        assert_eq!(DataFormat::Int32.lanes_per_op(), 4);
        assert_eq!(DataFormat::Int16.lanes_per_op(), 1);
    }
}
