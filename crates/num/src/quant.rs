//! Symmetric quantization and dyadic requantization.
//!
//! PICACHU's integer path (§4.1) represents tensors as `x ≈ q · s` with an
//! integer `q` and a real scale `s`. Polynomial evaluation on quantized inputs
//! uses I-BERT's completing-the-square technique, and intermediate rescaling
//! uses **dyadic** scales `m / 2^k` so the hardware needs only an integer
//! multiplier and a shifter — the same mechanism gemmlowp uses.

use std::fmt;

/// Quantization parameters for a symmetric, zero-point-free scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Real scale: `x ≈ q * scale`.
    pub scale: f64,
    /// Quantized storage width in bits (values clamp to `±(2^(bits-1)-1)`).
    pub bits: u32,
}

impl QuantParams {
    /// Chooses the scale so that `max_abs` maps to the largest representable
    /// magnitude.
    ///
    /// # Panics
    /// Panics if `max_abs` is not positive/finite or `bits` is not in `2..=32`.
    pub fn from_max_abs(max_abs: f64, bits: u32) -> QuantParams {
        assert!(
            max_abs.is_finite() && max_abs > 0.0,
            "max_abs must be positive finite, got {max_abs}"
        );
        assert!((2..=32).contains(&bits), "bits must be in 2..=32, got {bits}");
        let qmax = ((1i64 << (bits - 1)) - 1) as f64;
        QuantParams {
            scale: max_abs / qmax,
            bits,
        }
    }

    /// Calibrates from data: scale chosen from the maximum magnitude seen.
    /// Falls back to scale 1.0 for all-zero input.
    pub fn calibrate(data: &[f32], bits: u32) -> QuantParams {
        let max_abs = data.iter().fold(0.0f64, |m, &x| m.max((x as f64).abs()));
        if max_abs == 0.0 {
            QuantParams { scale: 1.0, bits }
        } else {
            QuantParams::from_max_abs(max_abs, bits)
        }
    }

    /// Largest representable quantized magnitude.
    pub fn qmax(&self) -> i64 {
        (1i64 << (self.bits - 1)) - 1
    }

    /// Quantizes a single value with rounding and saturation.
    pub fn quantize(&self, x: f64) -> i32 {
        let q = (x / self.scale).round();
        q.clamp(-(self.qmax() as f64), self.qmax() as f64) as i32
    }

    /// Dequantizes a single value.
    pub fn dequantize(&self, q: i32) -> f64 {
        q as f64 * self.scale
    }
}

impl fmt::Display for QuantParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "int{}(scale={:.3e})", self.bits, self.scale)
    }
}

/// A quantized tensor: integer payload plus its [`QuantParams`].
#[derive(Debug, Clone, PartialEq)]
pub struct Quantized {
    /// Integer values (stored widened to i32 regardless of `params.bits`).
    pub values: Vec<i32>,
    /// Scale/bit-width metadata.
    pub params: QuantParams,
}

impl Quantized {
    /// Quantizes a float slice with calibration from its own max-abs.
    pub fn quantize(data: &[f32], bits: u32) -> Quantized {
        let params = QuantParams::calibrate(data, bits);
        Quantized {
            values: data.iter().map(|&x| params.quantize(x as f64)).collect(),
            params,
        }
    }

    /// Quantizes with explicit parameters.
    pub fn quantize_with(data: &[f32], params: QuantParams) -> Quantized {
        Quantized {
            values: data.iter().map(|&x| params.quantize(x as f64)).collect(),
            params,
        }
    }

    /// Dequantizes back to floats.
    pub fn dequantize(&self) -> Vec<f32> {
        self.values
            .iter()
            .map(|&q| self.params.dequantize(q) as f32)
            .collect()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A dyadic multiplier `m / 2^shift` with `m` a positive i32, used for
/// hardware requantization (integer multiply + arithmetic shift).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DyadicScale {
    /// Integer multiplier, normalized into `[2^30, 2^31)` when possible.
    pub multiplier: i32,
    /// Right-shift amount applied after the widening multiply.
    pub shift: u32,
}

impl DyadicScale {
    /// Approximates a positive real `scale` as `multiplier / 2^shift`.
    ///
    /// The multiplier is normalized into `[2^30, 2^31)` so the representation
    /// keeps 31 bits of precision, matching gemmlowp's
    /// `QuantizeMultiplier`.
    ///
    /// # Panics
    /// Panics if `scale` is not in `(0, 1e30)`.
    pub fn from_real(scale: f64) -> DyadicScale {
        assert!(
            scale > 0.0 && scale < 1e30,
            "dyadic scale requires positive real input, got {scale}"
        );
        // scale = frac * 2^exp with frac in [0.5, 1)
        let exp = scale.log2().floor() as i32 + 1;
        let frac = scale / 2f64.powi(exp); // in [0.5, 1)
        let mut multiplier = (frac * (1i64 << 31) as f64).round() as i64;
        let mut exp = exp;
        if multiplier == (1i64 << 31) {
            multiplier /= 2;
            exp += 1;
        }
        // value = multiplier * 2^(exp-31)  =>  shift = 31 - exp
        let shift = (31 - exp).max(0) as u32;
        DyadicScale {
            multiplier: multiplier as i32,
            shift,
        }
    }

    /// The real value this dyadic scale represents.
    pub fn to_real(self) -> f64 {
        self.multiplier as f64 / 2f64.powi(self.shift as i32)
    }

    /// Applies the scale to an integer: `round(x * multiplier / 2^shift)`,
    /// computed with a widening multiply exactly as the hardware would.
    pub fn apply(self, x: i32) -> i32 {
        let wide = x as i64 * self.multiplier as i64;
        crate::fixed::round_shift_right(wide, self.shift)
            .clamp(i32::MIN as i64, i32::MAX as i64) as i32
    }
}

impl fmt::Display for DyadicScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/2^{}", self.multiplier, self.shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_testkit::{prop_assert, prop_check};

    #[test]
    fn quantize_round_trip() {
        let data = vec![0.0f32, 1.0, -1.0, 0.5, 127.0, -127.0];
        let q = Quantized::quantize(&data, 8);
        let back = q.dequantize();
        for (a, b) in data.iter().zip(back.iter()) {
            assert!((a - b).abs() <= q.params.scale as f32 / 2.0 + 1e-6);
        }
    }

    #[test]
    fn saturation_at_qmax() {
        let p = QuantParams::from_max_abs(1.0, 8);
        assert_eq!(p.qmax(), 127);
        assert_eq!(p.quantize(100.0), 127);
        assert_eq!(p.quantize(-100.0), -127);
    }

    #[test]
    fn calibrate_all_zero() {
        let p = QuantParams::calibrate(&[0.0; 8], 16);
        assert_eq!(p.scale, 1.0);
    }

    #[test]
    fn int16_resolution() {
        let p = QuantParams::from_max_abs(8.0, 16);
        // resolution ~ 8/32767 ≈ 2.4e-4
        assert!((p.dequantize(p.quantize(1.23456)) - 1.23456).abs() < 3e-4);
    }

    #[test]
    fn dyadic_round_trip() {
        for scale in [0.5f64, 0.1, 0.9999, 1.0 / 3.0, 1e-5, 3.7, 123.456] {
            let d = DyadicScale::from_real(scale);
            assert!(
                (d.to_real() - scale).abs() / scale < 1e-8,
                "scale {scale} -> {d}"
            );
        }
    }

    #[test]
    fn dyadic_apply_matches_real() {
        let d = DyadicScale::from_real(0.0042);
        for x in [-100_000i32, -17, 0, 5, 12_345, 1_000_000] {
            let expect = (x as f64 * 0.0042).round();
            assert!((d.apply(x) as f64 - expect).abs() <= 1.0, "x={x}");
        }
    }

    #[test]
    fn dyadic_multiplier_normalized() {
        let d = DyadicScale::from_real(0.25);
        assert!(d.multiplier >= (1 << 30), "multiplier {} not normalized", d.multiplier);
    }

    #[test]
    fn quantization_error_bound() {
        prop_check!(256, 0x90A01, |g| {
            let data: Vec<f32> = g.vec(-50.0f32..50.0, 1..100);
            let bits = g.u32(8..17);
            let q = Quantized::quantize(&data, bits);
            let back = q.dequantize();
            let half_step = (q.params.scale / 2.0) as f32;
            for (a, b) in data.iter().zip(back.iter()) {
                // allow for the f32 representation error of the dequantized value
                let slack = half_step + a.abs() * 4.0 * f32::EPSILON + 1e-6;
                prop_assert!((a - b).abs() <= slack);
            }
            Ok(())
        });
    }

    #[test]
    fn dyadic_relative_error() {
        prop_check!(256, 0x90A02, |g| {
            let scale = g.f64(1e-8..1e8);
            let d = DyadicScale::from_real(scale);
            prop_assert!((d.to_real() - scale).abs() / scale < 1e-8);
            Ok(())
        });
    }

    #[test]
    fn dyadic_apply_error_bounded() {
        prop_check!(256, 0x90A03, |g| {
            let scale = g.f64(1e-4..10.0);
            let x = g.i32(-1_000_000..1_000_000);
            let d = DyadicScale::from_real(scale);
            let expect = x as f64 * scale;
            if expect.abs() < 2e9 {
                prop_assert!((d.apply(x) as f64 - expect).abs() <= expect.abs() * 1e-6 + 1.0);
            }
            Ok(())
        });
    }
}
