//! Software IEEE-754 binary16 ("half precision").
//!
//! LLM inference baselines in the paper run in FP16 on an A100; the PICACHU
//! CGRA accepts FP16 inputs and converts them to FP32 for intermediate
//! computation (§4.2.1). This module implements bit-exact conversion with
//! round-to-nearest-even, including subnormals, infinities and NaN, so the
//! accuracy experiments can quantize activations exactly the way the hardware
//! would.

use std::cmp::Ordering;
use std::fmt;

/// An IEEE-754 binary16 value stored as its raw bit pattern.
///
/// ```
/// use picachu_num::Fp16;
/// let x = Fp16::from_f32(0.1);
/// assert!((x.to_f32() - 0.1).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp16(u16);

impl Fp16 {
    /// Positive zero.
    pub const ZERO: Fp16 = Fp16(0);
    /// One.
    pub const ONE: Fp16 = Fp16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: Fp16 = Fp16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: Fp16 = Fp16(0xFC00);
    /// Largest finite value (65504).
    pub const MAX: Fp16 = Fp16(0x7BFF);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: Fp16 = Fp16(0x0400);

    /// Constructs a value from its raw bit pattern.
    pub fn from_bits(bits: u16) -> Fp16 {
        Fp16(bits)
    }

    /// Returns the raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even, handling overflow to
    /// infinity and underflow to subnormals/zero.
    pub fn from_f32(value: f32) -> Fp16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN. Preserve NaN-ness with a quiet payload bit.
            let payload = if mant != 0 { 0x0200 } else { 0 };
            return Fp16(sign | 0x7C00 | payload | ((mant >> 13) as u16 & 0x03FF));
        }

        // Unbiased exponent.
        let e = exp - 127;
        if e > 15 {
            // Overflow to infinity.
            return Fp16(sign | 0x7C00);
        }
        if e >= -14 {
            // Normal range: round 23-bit mantissa to 10 bits (RNE).
            let half_exp = ((e + 15) as u16) << 10;
            let shifted = mant >> 13;
            let round_bit = (mant >> 12) & 1;
            let sticky = mant & 0x0FFF;
            let mut out = sign | half_exp | shifted as u16;
            if round_bit == 1 && (sticky != 0 || (shifted & 1) == 1) {
                out = out.wrapping_add(1); // may carry into exponent: correct
            }
            return Fp16(out);
        }
        if e >= -25 {
            // Subnormal: implicit leading one becomes explicit.
            let full = mant | 0x0080_0000;
            let shift = (-14 - e) as u32 + 13;
            let shifted = full >> shift;
            let rem_mask = (1u32 << shift) - 1;
            let rem = full & rem_mask;
            let halfway = 1u32 << (shift - 1);
            let mut out = sign | shifted as u16;
            if rem > halfway || (rem == halfway && (shifted & 1) == 1) {
                out = out.wrapping_add(1);
            }
            return Fp16(out);
        }
        // Underflow to signed zero.
        Fp16(sign)
    }

    /// Converts to `f32` exactly (every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mant = (self.0 & 0x03FF) as u32;

        let bits = if exp == 0 {
            if mant == 0 {
                sign
            } else {
                // Subnormal: normalize. `lz` counts zeros within the 10-bit field.
                let lz = mant.leading_zeros() - 22;
                let mant_norm = (mant << (lz + 1)) & 0x03FF;
                let exp_f32 = 127 - 15 - lz;
                sign | (exp_f32 << 23) | (mant_norm << 13)
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (mant << 13)
        } else {
            sign | ((exp + 127 - 15) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }

    /// Converts from `f64` via `f32` (double rounding is acceptable here; the
    /// hardware path is f32-intermediate anyway).
    pub fn from_f64(value: f64) -> Fp16 {
        Fp16::from_f32(value as f32)
    }

    /// Converts to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// Returns `true` if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Returns `true` if the value is positive or negative infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Returns `true` for finite values.
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// Rounds an `f32` to the nearest representable FP16 and back, emulating a
    /// half-precision storage round trip.
    pub fn round_trip(value: f32) -> f32 {
        Fp16::from_f32(value).to_f32()
    }

    /// Applies [`Fp16::round_trip`] to every element of a slice in place.
    pub fn round_trip_slice(values: &mut [f32]) {
        for v in values.iter_mut() {
            *v = Fp16::round_trip(*v);
        }
    }
}

impl From<f32> for Fp16 {
    fn from(v: f32) -> Fp16 {
        Fp16::from_f32(v)
    }
}

impl From<Fp16> for f32 {
    fn from(v: Fp16) -> f32 {
        v.to_f32()
    }
}

impl PartialOrd for Fp16 {
    fn partial_cmp(&self, other: &Fp16) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Display for Fp16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_testkit::{prop_assert, prop_check};

    #[test]
    fn exact_small_integers() {
        for i in -2048..=2048i32 {
            let x = i as f32;
            assert_eq!(Fp16::round_trip(x), x, "integer {i} must be exact");
        }
    }

    #[test]
    fn constants() {
        assert_eq!(Fp16::ONE.to_f32(), 1.0);
        assert_eq!(Fp16::MAX.to_f32(), 65504.0);
        assert_eq!(Fp16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert!(Fp16::INFINITY.is_infinite());
        assert!(Fp16::NEG_INFINITY.is_infinite());
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(Fp16::from_f32(1e6).is_infinite());
        assert!(Fp16::from_f32(-1e6).is_infinite());
        assert_eq!(Fp16::from_f32(65504.0).to_f32(), 65504.0);
        // 65520 rounds up to infinity (beyond MAX + ulp/2).
        assert!(Fp16::from_f32(65520.0).is_infinite());
    }

    #[test]
    fn subnormals() {
        let tiny = 2.0f32.powi(-24); // smallest positive subnormal
        assert_eq!(Fp16::round_trip(tiny), tiny);
        let sub = 3.0 * 2.0f32.powi(-24);
        assert_eq!(Fp16::round_trip(sub), sub);
        // Below half the smallest subnormal flushes to zero.
        assert_eq!(Fp16::round_trip(2.0f32.powi(-26)), 0.0);
    }

    #[test]
    fn nan_preserved() {
        assert!(Fp16::from_f32(f32::NAN).is_nan());
        assert!(Fp16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn signed_zero() {
        assert_eq!(Fp16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(Fp16::from_f32(0.0).to_bits(), 0x0000);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and 1.0+2^-10: ties to even -> 1.0
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(Fp16::round_trip(halfway), 1.0);
        // slightly above halfway rounds up
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(Fp16::round_trip(above), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn round_trip_is_idempotent() {
        prop_check!(256, 0xF1601, |g| {
            let x = g.f32(-70000.0..70000.0);
            let once = Fp16::round_trip(x);
            let twice = Fp16::round_trip(once);
            prop_assert!(once == twice || (once.is_nan() && twice.is_nan()));
            Ok(())
        });
    }

    #[test]
    fn round_trip_error_bounded() {
        prop_check!(256, 0xF1602, |g| {
            let x = g.f32(-1000.0..1000.0);
            let rt = Fp16::round_trip(x);
            // Relative error bounded by 2^-11 in the normal range.
            if x.abs() > 2.0f32.powi(-14) {
                prop_assert!((rt - x).abs() <= x.abs() * 2.0f32.powi(-11) + 1e-12);
            }
            Ok(())
        });
    }

    #[test]
    fn all_bit_patterns_convert() {
        // exhaustive instead of sampled: the domain is only 2^16 wide
        for bits in 0u16..=u16::MAX {
            let h = Fp16::from_bits(bits);
            let f = h.to_f32();
            if h.is_finite() {
                // round-tripping the exact f32 must give back the same bits
                // (modulo -0.0 == 0.0 which still preserves bits here)
                assert_eq!(Fp16::from_f32(f).to_bits(), bits);
            } else if h.is_nan() {
                assert!(f.is_nan());
            } else {
                assert!(f.is_infinite());
            }
        }
    }

    #[test]
    fn ordering_matches_f32() {
        prop_check!(256, 0xF1604, |g| {
            let a = g.f32(-60000.0..60000.0);
            let b = g.f32(-60000.0..60000.0);
            let (ha, hb) = (Fp16::from_f32(a), Fp16::from_f32(b));
            if ha.to_f32() < hb.to_f32() {
                prop_assert!(ha < hb);
            }
            Ok(())
        });
    }
}
