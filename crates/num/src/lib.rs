//! # picachu-num — numeric-format substrate for the PICACHU reproduction
//!
//! PICACHU (ASPLOS '25) supports FP32/FP16 and INT32/INT16 inputs and outputs
//! (§4.2.1 "Data Format") and relies on two special numeric mechanisms:
//!
//! * the **FP2FX** conversion module, which splits a floating-point value into
//!   integer and fractional components (used by the range-reduced exponential
//!   of Table 3), and
//! * **LUT** storage of hard-to-compute functions such as the Gaussian CDF
//!   `Φ(·)` used by GeLU.
//!
//! This crate provides those building blocks plus software FP16, fixed-point
//! arithmetic, dyadic (integer multiplier + shift) requantization as used by
//! I-BERT/gemmlowp-style integer pipelines, and error metrics used across the
//! accuracy experiments.
//!
//! ```
//! use picachu_num::{Fp16, DataFormat};
//!
//! let x = Fp16::from_f32(1.5);
//! assert_eq!(x.to_f32(), 1.5);
//! assert_eq!(DataFormat::Int16.vector_factor(), 4);
//! ```

pub mod error;
pub mod fixed;
pub mod format;
pub mod fp16;
pub mod fp2fx;
pub mod lut;
pub mod quant;

pub use error::ErrorStats;
pub use fixed::Fixed32;
pub use format::DataFormat;
pub use fp16::Fp16;
pub use fp2fx::{Fp2Fx, FpParts};
pub use lut::Lut;
pub use quant::{DyadicScale, QuantParams, Quantized};
