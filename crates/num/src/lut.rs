//! Look-up tables for hard-to-compute functions (§4.2.1 "Special function
//! support").
//!
//! PICACHU's Compute Tiles carry small LUTs storing pre-computed values of
//! functions that are expensive to express with basic arithmetic — the paper's
//! example is the Gaussian CDF `Φ(·)` used by GeLU. A LUT lookup costs one
//! cycle. We model uniformly-sampled tables with either nearest-entry or
//! linear-interpolated reads and clamped out-of-range behaviour; the hardware
//! cost model charges area for the number of entries.

use std::fmt;

/// Read mode of a [`Lut`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LutMode {
    /// Return the nearest stored entry (pure table read).
    Nearest,
    /// Linearly interpolate between the two surrounding entries (table read
    /// plus one fused multiply-add, still a single tile operation).
    #[default]
    Linear,
}

/// A uniformly-sampled lookup table over `[lo, hi]`.
///
/// ```
/// use picachu_num::Lut;
/// let lut = Lut::tabulate("square", -2.0, 2.0, 257, |x| x * x);
/// assert!((lut.eval(1.5) - 2.25).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Lut {
    name: String,
    lo: f32,
    hi: f32,
    entries: Vec<f32>,
    mode: LutMode,
}

impl Lut {
    /// Builds a table by sampling `f` at `n` uniformly spaced points.
    ///
    /// # Panics
    /// Panics if `n < 2` or `lo >= hi`.
    pub fn tabulate(
        name: impl Into<String>,
        lo: f32,
        hi: f32,
        n: usize,
        f: impl Fn(f64) -> f64,
    ) -> Lut {
        assert!(n >= 2, "LUT needs at least 2 entries, got {n}");
        assert!(lo < hi, "LUT range must be non-empty: [{lo}, {hi}]");
        let step = (hi as f64 - lo as f64) / (n - 1) as f64;
        let entries = (0..n)
            .map(|i| f(lo as f64 + step * i as f64) as f32)
            .collect();
        Lut {
            name: name.into(),
            lo,
            hi,
            entries,
            mode: LutMode::Linear,
        }
    }

    /// Returns a copy using the given read mode.
    pub fn with_mode(mut self, mode: LutMode) -> Lut {
        self.mode = mode;
        self
    }

    /// The table's name (used by the cost model and kernel metadata).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table has no entries (never constructible via
    /// [`Lut::tabulate`], provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sampled domain `[lo, hi]`.
    pub fn domain(&self) -> (f32, f32) {
        (self.lo, self.hi)
    }

    /// Storage footprint in bytes (one FP32 word per entry).
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * 4
    }

    /// Reads the table at `x`, clamping out-of-range inputs to the endpoints.
    pub fn eval(&self, x: f32) -> f32 {
        let n = self.entries.len();
        if x.is_nan() {
            return f32::NAN;
        }
        let t = (x - self.lo) / (self.hi - self.lo) * (n - 1) as f32;
        if t <= 0.0 {
            return self.entries[0];
        }
        if t >= (n - 1) as f32 {
            return self.entries[n - 1];
        }
        match self.mode {
            LutMode::Nearest => self.entries[(t + 0.5) as usize],
            LutMode::Linear => {
                let i = t as usize;
                let frac = t - i as f32;
                self.entries[i] + (self.entries[i + 1] - self.entries[i]) * frac
            }
        }
    }

    /// Maximum absolute error against `f` over `samples` uniformly spaced
    /// probe points (used to size tables for an accuracy target).
    pub fn max_abs_error(&self, f: impl Fn(f64) -> f64, samples: usize) -> f64 {
        let step = (self.hi as f64 - self.lo as f64) / (samples - 1) as f64;
        (0..samples)
            .map(|i| {
                let x = self.lo as f64 + step * i as f64;
                (self.eval(x as f32) as f64 - f(x)).abs()
            })
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Lut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT '{}' [{}, {}] x{} ({:?})",
            self.name,
            self.lo,
            self.hi,
            self.entries.len(),
            self.mode
        )
    }
}

/// The Gaussian CDF `Φ(x)`, computed from `erf` via Abramowitz–Stegun 7.1.26
/// (max abs error ≈ 1.5e-7, well beyond FP16 resolution). This is the
/// reference generator for the GeLU LUT the paper stores in Compute Tiles.
pub fn gaussian_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function via the Abramowitz–Stegun rational approximation.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_testkit::{prop_assert, prop_check};

    #[test]
    fn linear_interpolation_exact_on_linear_fn() {
        let lut = Lut::tabulate("id", 0.0, 10.0, 11, |x| 3.0 * x + 1.0);
        for x in [0.0f32, 0.5, 3.3, 9.99, 10.0] {
            assert!((lut.eval(x) - (3.0 * x + 1.0)).abs() < 1e-5, "x={x}");
        }
    }

    #[test]
    fn clamping_out_of_range() {
        let lut = Lut::tabulate("sq", -1.0, 1.0, 65, |x| x * x);
        assert_eq!(lut.eval(-100.0), lut.eval(-1.0));
        assert_eq!(lut.eval(100.0), lut.eval(1.0));
    }

    #[test]
    fn nearest_mode() {
        let lut = Lut::tabulate("step", 0.0, 4.0, 5, |x| x).with_mode(LutMode::Nearest);
        assert_eq!(lut.eval(1.2), 1.0);
        assert_eq!(lut.eval(1.6), 2.0);
    }

    #[test]
    fn nan_propagates() {
        let lut = Lut::tabulate("id", 0.0, 1.0, 2, |x| x);
        assert!(lut.eval(f32::NAN).is_nan());
    }

    #[test]
    fn gaussian_cdf_values() {
        assert!((gaussian_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((gaussian_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!(gaussian_cdf(-8.0) < 1e-10);
        assert!(gaussian_cdf(8.0) > 1.0 - 1e-10);
    }

    #[test]
    fn erf_odd_symmetry() {
        for x in [0.1f64, 0.7, 1.5, 3.0] {
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
    }

    #[test]
    fn phi_lut_accuracy_512_entries() {
        // The accuracy the hardware LUT actually needs for GeLU in FP16.
        let lut = Lut::tabulate("phi", -6.0, 6.0, 512, gaussian_cdf);
        assert!(lut.max_abs_error(gaussian_cdf, 10_000) < 2e-4);
    }

    #[test]
    fn size_accounting() {
        let lut = Lut::tabulate("phi", -6.0, 6.0, 512, gaussian_cdf);
        assert_eq!(lut.size_bytes(), 2048);
        assert_eq!(lut.len(), 512);
        assert!(!lut.is_empty());
    }

    #[test]
    fn monotone_fn_gives_monotone_lut() {
        prop_check!(256, 0x11711, |g| {
            let a = g.f32(-5.0..0.0);
            let b = g.f32(0.1..5.0);
            let lut = Lut::tabulate("cdf", a, a + b, 128, gaussian_cdf);
            let mut prev = f32::NEG_INFINITY;
            for i in 0..200 {
                let x = a + b * (i as f32 / 199.0);
                let y = lut.eval(x);
                prop_assert!(y >= prev - 1e-6);
                prev = y;
            }
            Ok(())
        });
    }

    #[test]
    fn interpolation_within_entry_bounds() {
        prop_check!(256, 0x11712, |g| {
            let x = g.f32(-2.0..2.0);
            let lut = Lut::tabulate("sq", -2.0, 2.0, 33, |v| v * v);
            let y = lut.eval(x);
            // result bounded by [min, max] of table since interpolation is convex
            prop_assert!((-1e-6..=4.0 + 1e-6).contains(&y));
            Ok(())
        });
    }
}
