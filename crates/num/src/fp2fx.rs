//! The FP2FX (floating-point → fixed-point) conversion module (§4.2.1).
//!
//! PICACHU's Compute Tiles contain a special functional unit that, in one
//! cycle, splits a floating-point value into the components needed by the
//! range-reduced operator algorithms of Table 3:
//!
//! * for `exp`: `t = log2(e)·x` is split into an integer part `i` and a
//!   fractional part `f ∈ [0, 1)`, so that `2^t = 2^i · 2^f` where `2^i` is a
//!   pure exponent manipulation and `2^f` is a short Taylor series;
//! * for `log`: the IEEE-754 exponent `e` and mantissa `m ∈ [0, 1)` are
//!   extracted so that `log(x) = ln2·(e + log2(1+m))`.
//!
//! This module models that unit bit-exactly on `f32`.

/// Result of splitting a floating-point value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpParts {
    /// Integer component (floor for the int/frac split; unbiased exponent for
    /// the exponent/mantissa split).
    pub int_part: i32,
    /// Fractional component, always in `[0, 1)` for finite normal inputs.
    pub frac_part: f32,
}

/// Model of the FP2FX hardware unit.
///
/// ```
/// use picachu_num::Fp2Fx;
/// let parts = Fp2Fx::split_int_frac(3.75);
/// assert_eq!(parts.int_part, 3);
/// assert_eq!(parts.frac_part, 0.75);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Fp2Fx;

impl Fp2Fx {
    /// Splits `x` into integer and fractional parts with `frac ∈ [0, 1)`.
    ///
    /// Uses floor semantics so that negative inputs still produce a
    /// non-negative fraction, which keeps the Taylor series for `2^f`
    /// evaluated on its accurate domain (exp Step 2 of Table 3).
    pub fn split_int_frac(x: f32) -> FpParts {
        let i = x.floor();
        FpParts {
            int_part: i as i32,
            frac_part: x - i,
        }
    }

    /// Extracts the unbiased exponent and the mantissa fraction `m ∈ [0, 1)`
    /// such that `x = 2^e · (1 + m)` for normal positive inputs
    /// (log Step 1 of Table 3).
    ///
    /// Subnormals are normalized first; this costs extra shifts in hardware
    /// but keeps the downstream Taylor series on `[0, 1)`.
    ///
    /// # Panics
    /// Panics if `x` is not a positive finite value (the hardware raises an
    /// exception flag; logs of non-positive values never occur in the Table 1
    /// operations because they are guarded upstream).
    pub fn split_exp_mantissa(x: f32) -> FpParts {
        assert!(
            x.is_finite() && x > 0.0,
            "split_exp_mantissa requires positive finite input, got {x}"
        );
        let bits = x.to_bits();
        let raw_exp = ((bits >> 23) & 0xFF) as i32;
        let raw_mant = bits & 0x007F_FFFF;
        if raw_exp == 0 {
            // Subnormal: x = mant * 2^-149. Normalize.
            let lz = raw_mant.leading_zeros() - 9; // leading zeros within 23-bit field
            let exp = -127 - lz as i32;
            let mant_norm = (raw_mant << (lz + 1)) & 0x007F_FFFF;
            FpParts {
                int_part: exp,
                frac_part: mant_norm as f32 / (1u32 << 23) as f32,
            }
        } else {
            FpParts {
                int_part: raw_exp - 127,
                frac_part: raw_mant as f32 / (1u32 << 23) as f32,
            }
        }
    }

    /// Computes `2^i` by direct exponent construction (exp Step 3 of Table 3).
    ///
    /// Saturates to `f32::INFINITY` / `0.0` outside the representable range,
    /// mirroring the hardware's saturating behaviour.
    pub fn pow2_int(i: i32) -> f32 {
        if i > 127 {
            f32::INFINITY
        } else if i >= -126 {
            f32::from_bits(((i + 127) as u32) << 23)
        } else if i >= -149 {
            // Subnormal powers of two.
            f32::from_bits(1u32 << (i + 149) as u32)
        } else {
            0.0
        }
    }

    /// Reassembles `2^e · (1 + m)` — the inverse of
    /// [`Fp2Fx::split_exp_mantissa`] for normal values.
    pub fn combine_exp_mantissa(parts: FpParts) -> f32 {
        Fp2Fx::pow2_int(parts.int_part) * (1.0 + parts.frac_part)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_testkit::{prop_assert, prop_assert_eq, prop_check};

    #[test]
    fn int_frac_positive() {
        let p = Fp2Fx::split_int_frac(5.25);
        assert_eq!(p.int_part, 5);
        assert_eq!(p.frac_part, 0.25);
    }

    #[test]
    fn int_frac_negative_keeps_frac_nonnegative() {
        let p = Fp2Fx::split_int_frac(-2.25);
        assert_eq!(p.int_part, -3);
        assert_eq!(p.frac_part, 0.75);
    }

    #[test]
    fn int_frac_exact_integer() {
        let p = Fp2Fx::split_int_frac(-7.0);
        assert_eq!(p.int_part, -7);
        assert_eq!(p.frac_part, 0.0);
    }

    #[test]
    fn exp_mantissa_powers_of_two() {
        for e in -10..10 {
            let x = 2.0f32.powi(e);
            let p = Fp2Fx::split_exp_mantissa(x);
            assert_eq!(p.int_part, e);
            assert_eq!(p.frac_part, 0.0);
        }
    }

    #[test]
    fn exp_mantissa_general() {
        let p = Fp2Fx::split_exp_mantissa(6.0); // 6 = 2^2 * 1.5
        assert_eq!(p.int_part, 2);
        assert_eq!(p.frac_part, 0.5);
    }

    #[test]
    fn exp_mantissa_subnormal() {
        let x = f32::from_bits(1); // smallest subnormal = 2^-149
        let p = Fp2Fx::split_exp_mantissa(x);
        assert_eq!(p.int_part, -149);
        assert_eq!(p.frac_part, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn exp_mantissa_rejects_negative() {
        Fp2Fx::split_exp_mantissa(-1.0);
    }

    #[test]
    fn pow2_saturation() {
        assert_eq!(Fp2Fx::pow2_int(0), 1.0);
        assert_eq!(Fp2Fx::pow2_int(10), 1024.0);
        assert_eq!(Fp2Fx::pow2_int(-1), 0.5);
        assert_eq!(Fp2Fx::pow2_int(128), f32::INFINITY);
        assert_eq!(Fp2Fx::pow2_int(-150), 0.0);
        assert_eq!(Fp2Fx::pow2_int(-149), f32::from_bits(1));
        assert_eq!(Fp2Fx::pow2_int(-127), 2.0f32.powi(-127));
    }

    #[test]
    fn split_int_frac_invariants() {
        prop_check!(256, 0xF2F01, |g| {
            let x = g.f32(-1e6..1e6);
            let p = Fp2Fx::split_int_frac(x);
            prop_assert!((0.0..1.0).contains(&p.frac_part));
            prop_assert!((p.int_part as f32 + p.frac_part - x).abs() <= x.abs() * 1e-6 + 1e-6);
            Ok(())
        });
    }

    #[test]
    fn split_combine_round_trip() {
        prop_check!(256, 0xF2F02, |g| {
            let x = g.f32(1e-30..1e30);
            let p = Fp2Fx::split_exp_mantissa(x);
            prop_assert!((0.0..1.0).contains(&p.frac_part));
            let back = Fp2Fx::combine_exp_mantissa(p);
            prop_assert!((back - x).abs() <= x * 1e-6);
            Ok(())
        });
    }

    #[test]
    fn pow2_matches_std() {
        prop_check!(256, 0xF2F03, |g| {
            let i = g.i32(-126..127);
            prop_assert_eq!(Fp2Fx::pow2_int(i), 2.0f32.powi(i));
            Ok(())
        });
    }
}
