//! Error metrics used by the accuracy experiments (Tables 2, 5, 6).
//!
//! Every approximation scheme in the repo is scored against an `f64` reference
//! with the same statistics: max/mean absolute error, max/mean relative error
//! and RMSE. The experiments then report these alongside the toy-LM
//! perplexity proxy.

use std::fmt;

/// Aggregate error statistics between an approximation and a reference.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorStats {
    /// Maximum absolute error.
    pub max_abs: f64,
    /// Mean absolute error.
    pub mean_abs: f64,
    /// Maximum relative error (elements with |ref| < `REL_FLOOR` are skipped).
    pub max_rel: f64,
    /// Mean relative error over the elements counted for `max_rel`.
    pub mean_rel: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Number of elements compared.
    pub count: usize,
}

/// References smaller than this are excluded from relative-error statistics.
pub const REL_FLOOR: f64 = 1e-30;

impl ErrorStats {
    /// Compares `approx` against `reference` element-wise.
    ///
    /// # Panics
    /// Panics if the slices have different lengths or are empty.
    pub fn compare(approx: &[f64], reference: &[f64]) -> ErrorStats {
        assert_eq!(
            approx.len(),
            reference.len(),
            "error comparison needs equal-length slices"
        );
        assert!(!approx.is_empty(), "error comparison needs data");
        let mut s = ErrorStats {
            count: approx.len(),
            ..ErrorStats::default()
        };
        let mut sum_abs = 0.0;
        let mut sum_sq = 0.0;
        let mut sum_rel = 0.0;
        let mut rel_count = 0usize;
        for (&a, &r) in approx.iter().zip(reference.iter()) {
            let abs = (a - r).abs();
            s.max_abs = s.max_abs.max(abs);
            sum_abs += abs;
            sum_sq += abs * abs;
            if r.abs() > REL_FLOOR {
                let rel = abs / r.abs();
                s.max_rel = s.max_rel.max(rel);
                sum_rel += rel;
                rel_count += 1;
            }
        }
        s.mean_abs = sum_abs / approx.len() as f64;
        s.rmse = (sum_sq / approx.len() as f64).sqrt();
        if rel_count > 0 {
            s.mean_rel = sum_rel / rel_count as f64;
        }
        s
    }

    /// Compares f32 slices (promoted to f64).
    ///
    /// # Panics
    /// Panics under the same conditions as [`ErrorStats::compare`].
    pub fn compare_f32(approx: &[f32], reference: &[f32]) -> ErrorStats {
        let a: Vec<f64> = approx.iter().map(|&x| x as f64).collect();
        let r: Vec<f64> = reference.iter().map(|&x| x as f64).collect();
        ErrorStats::compare(&a, &r)
    }

    /// Scores a scalar function over uniformly spaced samples of `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `samples < 2` or `lo >= hi`.
    pub fn sweep(
        lo: f64,
        hi: f64,
        samples: usize,
        approx: impl Fn(f64) -> f64,
        reference: impl Fn(f64) -> f64,
    ) -> ErrorStats {
        assert!(samples >= 2, "sweep needs at least 2 samples");
        assert!(lo < hi, "sweep range must be non-empty");
        let step = (hi - lo) / (samples - 1) as f64;
        let xs: Vec<f64> = (0..samples).map(|i| lo + step * i as f64).collect();
        let a: Vec<f64> = xs.iter().map(|&x| approx(x)).collect();
        let r: Vec<f64> = xs.iter().map(|&x| reference(x)).collect();
        ErrorStats::compare(&a, &r)
    }
}

impl fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "max_abs={:.3e} mean_abs={:.3e} max_rel={:.3e} rmse={:.3e} (n={})",
            self.max_abs, self.mean_abs, self.max_rel, self.rmse, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_slices_zero_error() {
        let x = vec![1.0, -2.0, 3.5];
        let s = ErrorStats::compare(&x, &x);
        assert_eq!(s.max_abs, 0.0);
        assert_eq!(s.rmse, 0.0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn known_errors() {
        let approx = vec![1.1, 2.0];
        let reference = vec![1.0, 2.0];
        let s = ErrorStats::compare(&approx, &reference);
        assert!((s.max_abs - 0.1).abs() < 1e-12);
        assert!((s.mean_abs - 0.05).abs() < 1e-12);
        assert!((s.max_rel - 0.1).abs() < 1e-10);
    }

    #[test]
    fn relative_skips_zero_reference() {
        let s = ErrorStats::compare(&[0.5, 2.0], &[0.0, 2.0]);
        assert_eq!(s.max_rel, 0.0); // only the zero-ref element had error
        assert_eq!(s.max_abs, 0.5);
    }

    #[test]
    fn sweep_quadratic_vs_linear() {
        // approx(x) = x, ref(x) = x^2 on [0,1]: max err at... |x - x^2| max 0.25
        let s = ErrorStats::sweep(0.0, 1.0, 1001, |x| x, |x| x * x);
        assert!((s.max_abs - 0.25).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        ErrorStats::compare(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn f32_promotion() {
        let s = ErrorStats::compare_f32(&[1.0f32, 2.5], &[1.0, 2.0]);
        assert!((s.max_abs - 0.5).abs() < 1e-6);
    }
}
