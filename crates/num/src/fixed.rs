//! Fixed-point arithmetic in Q-format.
//!
//! The gemmlowp-style baselines (Table 2) and parts of the integer kernels
//! compute on 32-bit fixed-point values with a compile-time number of
//! fractional bits. `Fixed32` keeps the fractional-bit count as a runtime
//! field so kernels can re-scale between stages, exactly as the fixed-point
//! `exp` in gemmlowp does.

use std::fmt;

/// A 32-bit signed fixed-point value with `frac_bits` fractional bits.
///
/// ```
/// use picachu_num::Fixed32;
/// let a = Fixed32::from_f64(1.5, 16);
/// let b = Fixed32::from_f64(2.0, 16);
/// assert_eq!(a.mul(b).to_f64(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fixed32 {
    raw: i32,
    frac_bits: u32,
}

impl Fixed32 {
    /// Creates a value from a raw integer representation.
    ///
    /// # Panics
    /// Panics if `frac_bits > 31`.
    pub fn from_raw(raw: i32, frac_bits: u32) -> Fixed32 {
        assert!(frac_bits <= 31, "frac_bits must be <= 31, got {frac_bits}");
        Fixed32 { raw, frac_bits }
    }

    /// Quantizes an `f64` with saturation.
    ///
    /// # Panics
    /// Panics if `frac_bits > 31`.
    pub fn from_f64(value: f64, frac_bits: u32) -> Fixed32 {
        assert!(frac_bits <= 31, "frac_bits must be <= 31, got {frac_bits}");
        let scaled = (value * (1i64 << frac_bits) as f64).round();
        let clamped = scaled.clamp(i32::MIN as f64, i32::MAX as f64);
        Fixed32 {
            raw: clamped as i32,
            frac_bits,
        }
    }

    /// The raw integer representation.
    pub fn raw(self) -> i32 {
        self.raw
    }

    /// Number of fractional bits.
    pub fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// Dequantizes to `f64`.
    pub fn to_f64(self) -> f64 {
        self.raw as f64 / (1i64 << self.frac_bits) as f64
    }

    /// One in this Q-format.
    pub fn one(frac_bits: u32) -> Fixed32 {
        Fixed32::from_raw(1i32 << frac_bits, frac_bits)
    }

    /// Saturating addition. Named methods rather than `std::ops` impls
    /// because the format-matching contract panics — operator sugar would
    /// hide that.
    ///
    /// # Panics
    /// Panics if the operands have different `frac_bits`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Fixed32) -> Fixed32 {
        assert_eq!(
            self.frac_bits, other.frac_bits,
            "fixed-point add requires matching formats"
        );
        Fixed32 {
            raw: self.raw.saturating_add(other.raw),
            frac_bits: self.frac_bits,
        }
    }

    /// Saturating subtraction.
    ///
    /// # Panics
    /// Panics if the operands have different `frac_bits`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Fixed32) -> Fixed32 {
        assert_eq!(
            self.frac_bits, other.frac_bits,
            "fixed-point sub requires matching formats"
        );
        Fixed32 {
            raw: self.raw.saturating_sub(other.raw),
            frac_bits: self.frac_bits,
        }
    }

    /// Fixed-point multiplication producing a result in `self`'s format, with
    /// rounding-half-away-from-zero of the discarded bits (the gemmlowp
    /// "saturating rounding doubling high mul" family behaves equivalently for
    /// in-range values).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Fixed32) -> Fixed32 {
        let wide = self.raw as i64 * other.raw as i64;
        let shift = other.frac_bits;
        let rounded = round_shift_right(wide, shift);
        Fixed32 {
            raw: saturate_i64(rounded),
            frac_bits: self.frac_bits,
        }
    }

    /// Re-scales to a different number of fractional bits with rounding.
    ///
    /// # Panics
    /// Panics if `frac_bits > 31`.
    pub fn rescale(self, frac_bits: u32) -> Fixed32 {
        assert!(frac_bits <= 31, "frac_bits must be <= 31, got {frac_bits}");
        if frac_bits == self.frac_bits {
            return self;
        }
        let raw = if frac_bits > self.frac_bits {
            let shift = frac_bits - self.frac_bits;
            saturate_i64((self.raw as i64) << shift)
        } else {
            let shift = self.frac_bits - frac_bits;
            saturate_i64(round_shift_right(self.raw as i64, shift))
        };
        Fixed32 { raw, frac_bits }
    }
}

impl fmt::Display for Fixed32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}q{}", self.to_f64(), self.frac_bits)
    }
}

/// Arithmetic right shift with round-half-away-from-zero, as used by
/// gemmlowp's `RoundingDivideByPOT`.
pub fn round_shift_right(value: i64, shift: u32) -> i64 {
    if shift == 0 {
        return value;
    }
    let half = 1i64 << (shift - 1);
    if value >= 0 {
        (value + half) >> shift
    } else {
        -((-value + half) >> shift)
    }
}

fn saturate_i64(v: i64) -> i32 {
    v.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_testkit::{prop_assert, prop_assert_eq, prop_check};

    #[test]
    fn round_trip_basics() {
        let x = Fixed32::from_f64(3.25, 8);
        assert_eq!(x.to_f64(), 3.25);
        assert_eq!(Fixed32::one(20).to_f64(), 1.0);
    }

    #[test]
    fn add_sub_mul() {
        let a = Fixed32::from_f64(1.5, 16);
        let b = Fixed32::from_f64(0.25, 16);
        assert_eq!(a.add(b).to_f64(), 1.75);
        assert_eq!(a.sub(b).to_f64(), 1.25);
        assert_eq!(a.mul(b).to_f64(), 0.375);
    }

    #[test]
    fn mul_mixed_formats() {
        // a in Q8, b in Q24: result keeps a's format.
        let a = Fixed32::from_f64(2.0, 8);
        let b = Fixed32::from_f64(0.5, 24);
        assert_eq!(a.mul(b).to_f64(), 1.0);
        assert_eq!(a.mul(b).frac_bits(), 8);
    }

    #[test]
    fn saturation() {
        let big = Fixed32::from_raw(i32::MAX, 0);
        assert_eq!(big.add(Fixed32::from_raw(1, 0)).raw(), i32::MAX);
        assert_eq!(Fixed32::from_f64(1e20, 16).raw(), i32::MAX);
        assert_eq!(Fixed32::from_f64(-1e20, 16).raw(), i32::MIN);
    }

    #[test]
    fn rescale_rounding() {
        let x = Fixed32::from_raw(3, 2); // 0.75 in Q2
        let y = x.rescale(1); // 0.75 -> raw 1.5 rounds away from zero to 2 -> 1.0
        assert_eq!(y.raw(), 2);
        assert_eq!(y.to_f64(), 1.0);
        let up = x.rescale(4);
        assert_eq!(up.raw(), 12);
    }

    #[test]
    fn round_shift_negative() {
        assert_eq!(round_shift_right(-3, 1), -2); // -1.5 rounds away from zero
        assert_eq!(round_shift_right(-5, 1), -3);
        assert_eq!(round_shift_right(5, 1), 3);
        assert_eq!(round_shift_right(7, 0), 7);
    }

    #[test]
    fn quantization_error_bounded() {
        prop_check!(256, 0xF1D01, |g| {
            let x = g.f64(-100.0..100.0);
            let bits = g.u32(8..24);
            // keep x * 2^bits within i32 so saturation doesn't kick in
            let q = Fixed32::from_f64(x, bits);
            let step = 1.0 / (1i64 << bits) as f64;
            prop_assert!((q.to_f64() - x).abs() <= step / 2.0 + 1e-15);
            Ok(())
        });
    }

    #[test]
    fn mul_matches_float() {
        prop_check!(256, 0xF1D02, |g| {
            let a = g.f64(-100.0..100.0);
            let b = g.f64(-100.0..100.0);
            let fa = Fixed32::from_f64(a, 16);
            let fb = Fixed32::from_f64(b, 16);
            if (a * b).abs() < 30000.0 {
                let err = (fa.mul(fb).to_f64() - a * b).abs();
                // error from two quantizations + product rounding
                prop_assert!(err < (a.abs() + b.abs() + 1.0) * 2.0 / 65536.0);
            }
            Ok(())
        });
    }

    #[test]
    fn rescale_round_trip_widening() {
        prop_check!(256, 0xF1D03, |g| {
            let raw = g.i32(-100000..100000);
            let bits = g.u32(4..16);
            let x = Fixed32::from_raw(raw, bits);
            // widening then narrowing returns the original value exactly
            prop_assert_eq!(x.rescale(bits + 8).rescale(bits).raw(), raw);
            Ok(())
        });
    }
}
