//! The Shared Buffer: streaming and double-buffering (§4.2.3) and the three
//! dataflow cases of §4.2.4.
//!
//! The Shared Buffer is the systolic array's output SRAM, multiplexed as the
//! CGRA's input/intermediate/output memory. Two techniques hide data
//! movement:
//!
//! * **streaming** — CGRA execution overlaps tile-by-tile with producer
//!   output (the systolic array) or DMA input;
//! * **double-buffering** — two input + two output buffers let DMA fill one
//!   half while the CGRA processes the other.
//!
//! [`SharedBuffer::pipelined_cycles`] implements the resulting overlap
//! arithmetic: per chunk, the exposed cost is `max(compute, transfer)`, plus
//! the un-overlappable first fill and last drain; without double buffering
//! the costs serialize.

use crate::dma::DmaModel;
use std::fmt;

/// The dataflow strategy an operation uses (§4.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataflowCase {
    /// Case 1 — element-wise op streaming directly against systolic-array
    /// output; no DRAM round trip, no intermediate statistics.
    StreamFromSystolic,
    /// Case 2 — reduction op whose tensor exceeds the buffer: channel-by-
    /// channel DRAM round trips with double buffering.
    ChannelFromDram,
    /// Case 3 — reduction op whose working set fits the buffer
    /// (FlashAttention-style): inputs stay resident until statistics are
    /// ready, then the final loop streams as in Case 1.
    ResidentInBuffer,
}

impl fmt::Display for DataflowCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataflowCase::StreamFromSystolic => "case1-stream",
            DataflowCase::ChannelFromDram => "case2-dram-channel",
            DataflowCase::ResidentInBuffer => "case3-resident",
        };
        f.write_str(s)
    }
}

/// The Shared Buffer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedBuffer {
    /// Total capacity in bytes (the paper's sweep: 10–80 KB).
    pub capacity_bytes: usize,
    /// Whether double buffering is enabled (half the capacity per ping-pong
    /// side when on).
    pub double_buffered: bool,
}

impl SharedBuffer {
    /// A buffer of `kb` kilobytes with double buffering on.
    pub fn new_kb(kb: usize) -> SharedBuffer {
        SharedBuffer { capacity_bytes: kb * 1024, double_buffered: true }
    }

    /// Usable bytes per ping-pong side: half the capacity when double
    /// buffering (split again across the input and output pair).
    pub fn working_bytes(&self) -> usize {
        if self.double_buffered {
            self.capacity_bytes / 4
        } else {
            self.capacity_bytes / 2
        }
    }

    /// Whether one channel of `dim` elements of `elem_bytes` fits the
    /// working set — the predicate that picks Case 2 vs Case 3 and drives
    /// the Fig. 7c knee.
    pub fn channel_fits(&self, dim: usize, elem_bytes: usize) -> bool {
        dim * elem_bytes <= self.working_bytes()
    }

    /// Total cycles to process `chunks` of `chunk_bytes` each, when each
    /// chunk needs `compute_cycles` of CGRA time and a DMA round trip
    /// (read before, write after).
    ///
    /// With double buffering, transfer `i+1` overlaps compute `i`:
    /// `first_fill + Σ max(compute, fill) + last_drain`. Without it,
    /// everything serializes.
    pub fn pipelined_cycles(
        &self,
        chunks: u64,
        chunk_bytes: usize,
        compute_cycles: u64,
        dma: &DmaModel,
    ) -> u64 {
        if chunks == 0 {
            return 0;
        }
        let fill = dma.transfer_cycles(chunk_bytes);
        let drain = dma.transfer_cycles(chunk_bytes);
        if self.double_buffered {
            // steady state: each chunk exposes max(compute, fill + drain of
            // the neighbour transfers sharing the channel)
            let steady = compute_cycles.max(fill + drain);
            fill + steady * (chunks - 1) + compute_cycles + drain
        } else {
            chunks * (fill + compute_cycles + drain)
        }
    }

    /// Cycles for a Case 1 stream: compute fully overlaps the producer; the
    /// exposed cost is the larger of the two plus one chunk of skew.
    pub fn streamed_cycles(producer_cycles: u64, compute_cycles: u64, chunk_skew: u64) -> u64 {
        producer_cycles.max(compute_cycles) + chunk_skew
    }
}

impl fmt::Display for SharedBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KB shared buffer ({})",
            self.capacity_bytes / 1024,
            if self.double_buffered { "double-buffered" } else { "single" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_set_split() {
        let b = SharedBuffer::new_kb(40);
        assert_eq!(b.working_bytes(), 10 * 1024);
        let single = SharedBuffer { capacity_bytes: 40 * 1024, double_buffered: false };
        assert_eq!(single.working_bytes(), 20 * 1024);
    }

    #[test]
    fn channel_fit_matches_section_5_3_5() {
        // LLaMA2-7B: 4096-dim FP16 channel = 8 KB -> fits a 40 KB buffer,
        // not a 20 KB one. GPT2-XL: 1600-dim = 3.2 KB -> fits 20 KB.
        assert!(SharedBuffer::new_kb(40).channel_fits(4096, 2));
        assert!(!SharedBuffer::new_kb(20).channel_fits(4096, 2));
        assert!(SharedBuffer::new_kb(20).channel_fits(1600, 2));
        assert!(!SharedBuffer::new_kb(10).channel_fits(1600, 2));
    }

    #[test]
    fn double_buffering_hides_transfers_when_compute_bound() {
        let dma = DmaModel::default();
        let b = SharedBuffer::new_kb(40);
        let chunk = 8 * 1024;
        let fill = dma.transfer_cycles(chunk);
        let compute = 4 * fill; // compute-bound
        let db = b.pipelined_cycles(100, chunk, compute, &dma);
        let serial =
            SharedBuffer { double_buffered: false, ..b }.pipelined_cycles(100, chunk, compute, &dma);
        assert!(db < serial);
        // overlapped total ≈ chunks * compute + edges
        assert!(db < 100 * compute + 3 * fill);
    }

    #[test]
    fn transfer_bound_case_exposes_dma() {
        let dma = DmaModel::default();
        let b = SharedBuffer::new_kb(40);
        let chunk = 8 * 1024;
        let fill = dma.transfer_cycles(chunk);
        let compute = 1; // transfer-bound
        let total = b.pipelined_cycles(10, chunk, compute, &dma);
        assert!(total >= 10 * 2 * fill, "DMA cost cannot be hidden");
    }

    #[test]
    fn zero_chunks() {
        let b = SharedBuffer::new_kb(40);
        assert_eq!(b.pipelined_cycles(0, 1024, 100, &DmaModel::default()), 0);
    }

    #[test]
    fn stream_overlap() {
        assert_eq!(SharedBuffer::streamed_cycles(1000, 400, 16), 1016);
        assert_eq!(SharedBuffer::streamed_cycles(400, 1000, 16), 1016);
    }

    #[test]
    fn bigger_buffer_no_benefit_once_channel_fits() {
        // the Fig. 7c plateau: once the channel fits, cycles stop improving
        let dma = DmaModel::default();
        let chunk = 4096 * 2;
        let t40 = SharedBuffer::new_kb(40).pipelined_cycles(512, chunk, 1024, &dma);
        let t80 = SharedBuffer::new_kb(80).pipelined_cycles(512, chunk, 1024, &dma);
        assert_eq!(t40, t80);
    }
}
