//! On-chip SRAM accounting.
//!
//! The systolic array owns input, weight and output SRAMs; PICACHU
//! multiplexes the output SRAM as the CGRA's Shared Buffer (§4.2.4). This
//! module tracks capacity and occupancy (whether a tensor/channel fits —
//! the predicate behind the §4.2.4 dataflow-case selection) and access
//! counts for the energy model.

use std::fmt;

/// A single SRAM with byte-granular occupancy tracking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sram {
    name: String,
    capacity: usize,
    used: usize,
    reads: u64,
    writes: u64,
}

impl Sram {
    /// Creates an SRAM of `capacity` bytes.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(name: impl Into<String>, capacity: usize) -> Sram {
        assert!(capacity > 0, "SRAM needs nonzero capacity");
        Sram { name: name.into(), capacity, used: 0, reads: 0, writes: 0 }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> usize {
        self.capacity - self.used
    }

    /// Whether `bytes` more would fit.
    pub fn fits(&self, bytes: usize) -> bool {
        bytes <= self.free()
    }

    /// Allocates `bytes`.
    ///
    /// # Errors
    /// Returns the shortfall if the allocation does not fit.
    pub fn alloc(&mut self, bytes: usize) -> Result<(), usize> {
        if self.fits(bytes) {
            self.used += bytes;
            Ok(())
        } else {
            Err(bytes - self.free())
        }
    }

    /// Releases `bytes` (saturating).
    pub fn release(&mut self, bytes: usize) {
        self.used = self.used.saturating_sub(bytes);
    }

    /// Records `n` read accesses.
    pub fn record_reads(&mut self, n: u64) {
        self.reads += n;
    }

    /// Records `n` write accesses.
    pub fn record_writes(&mut self, n: u64) {
        self.writes += n;
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

impl fmt::Display for Sram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SRAM '{}': {}/{} B used, {} reads, {} writes",
            self.name, self.used, self.capacity, self.reads, self.writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_release() {
        let mut s = Sram::new("out", 40 * 1024);
        assert!(s.alloc(16 * 1024).is_ok());
        assert_eq!(s.free(), 24 * 1024);
        assert!(s.alloc(32 * 1024).is_err());
        s.release(16 * 1024);
        assert_eq!(s.used(), 0);
    }

    #[test]
    fn shortfall_reported() {
        let mut s = Sram::new("buf", 1000);
        assert_eq!(s.alloc(1500), Err(500));
    }

    #[test]
    fn fits_predicate_matches_paper_sizing() {
        // §5.3.5: a 40 KB buffer holds one 4096-wide FP16 channel twice over
        // (double buffering needs 2 x 8 KB in + 2 x 8 KB out).
        let s = Sram::new("shared", 40 * 1024);
        let channel = 4096 * 2; // FP16 bytes
        assert!(s.fits(4 * channel));
        // a 20 KB buffer does not
        let small = Sram::new("shared", 20 * 1024);
        assert!(!small.fits(4 * channel));
        // ...but it does hold GPT2-XL's 1600-wide channel
        assert!(small.fits(4 * 1600 * 2));
    }

    #[test]
    fn access_counters() {
        let mut s = Sram::new("x", 64);
        s.record_reads(10);
        s.record_writes(5);
        assert_eq!(s.accesses(), 15);
    }

    #[test]
    fn release_saturates() {
        let mut s = Sram::new("x", 64);
        s.release(100);
        assert_eq!(s.used(), 0);
    }
}
