//! Output-stationary systolic array (§2.3, §4.2.4).
//!
//! The timing model follows the classic output-stationary discipline the
//! paper's offload pass assumes (§4.3: "tiled, output-stationary, with the
//! same tiling factor as the nonlinear operations"): the `R×C` grid computes
//! an `R×C` output tile by streaming `K` partial products through the grid,
//! costing `K + R + C − 2` cycles per tile including skew fill/drain.

use std::fmt;

/// A weight/input/output systolic array of `rows × cols` MACs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystolicArray {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
}

impl SystolicArray {
    /// Creates an array.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> SystolicArray {
        assert!(rows > 0 && cols > 0, "array must be non-empty");
        SystolicArray { rows, cols }
    }

    /// Cycles to execute an `m×k · k×n` GEMM, output-stationary.
    pub fn gemm_cycles(&self, m: usize, k: usize, n: usize) -> u64 {
        if m == 0 || k == 0 || n == 0 {
            return 0;
        }
        let tiles_m = m.div_ceil(self.rows) as u64;
        let tiles_n = n.div_ceil(self.cols) as u64;
        let per_tile = k as u64 + self.rows as u64 + self.cols as u64 - 2;
        tiles_m * tiles_n * per_tile
    }

    /// MAC operations an `m×k · k×n` GEMM performs.
    pub fn gemm_macs(&self, m: usize, k: usize, n: usize) -> u64 {
        m as u64 * k as u64 * n as u64
    }

    /// Average MAC utilization for the GEMM: useful work over
    /// `cycles × rows × cols`.
    pub fn utilization(&self, m: usize, k: usize, n: usize) -> f64 {
        let cycles = self.gemm_cycles(m, k, n);
        if cycles == 0 {
            return 0.0;
        }
        self.gemm_macs(m, k, n) as f64 / (cycles as f64 * (self.rows * self.cols) as f64)
    }

    /// Functional GEMM: `out[m][n] = Σ_k a[m][k]·b[k][n]` on row-major
    /// slices. Used by the examples and cross-checks, not the timing model.
    ///
    /// # Panics
    /// Panics if slice lengths do not match the shapes.
    pub fn gemm_f32(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        assert_eq!(a.len(), m * k, "lhs shape mismatch");
        assert_eq!(b.len(), k * n, "rhs shape mismatch");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[i * n + j] += av * b[kk * n + j];
                }
            }
        }
        out
    }
}

impl fmt::Display for SystolicArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} systolic array", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_testkit::{prop_assert, prop_check};

    #[test]
    fn single_tile_cycles() {
        let a = SystolicArray::new(32, 32);
        // one 32x32 output tile over k=128: 128 + 62 cycles
        assert_eq!(a.gemm_cycles(32, 128, 32), 190);
    }

    #[test]
    fn tiling_rounds_up() {
        let a = SystolicArray::new(32, 32);
        let exact = a.gemm_cycles(32, 64, 32);
        assert_eq!(a.gemm_cycles(33, 64, 32), 2 * exact);
        assert_eq!(a.gemm_cycles(33, 64, 33), 4 * exact);
    }

    #[test]
    fn zero_dims() {
        let a = SystolicArray::new(8, 8);
        assert_eq!(a.gemm_cycles(0, 10, 10), 0);
        assert_eq!(a.gemm_cycles(10, 0, 10), 0);
    }

    #[test]
    fn utilization_improves_with_k() {
        let a = SystolicArray::new(32, 32);
        assert!(a.utilization(32, 1024, 32) > a.utilization(32, 32, 32));
        assert!(a.utilization(32, 4096, 32) > 0.95);
    }

    #[test]
    fn functional_gemm_identity() {
        let n = 4;
        let mut eye = vec![0.0f32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let b: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
        assert_eq!(SystolicArray::gemm_f32(&eye, &b, n, n, n), b);
    }

    #[test]
    fn functional_gemm_known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        assert_eq!(
            SystolicArray::gemm_f32(&a, &b, 2, 2, 2),
            vec![19.0, 22.0, 43.0, 50.0]
        );
    }

    #[test]
    fn cycles_monotone_in_shape() {
        prop_check!(256, 0x6E301, |g| {
            let m = g.usize(1..256);
            let k = g.usize(1..256);
            let n = g.usize(1..256);
            let a = SystolicArray::new(32, 32);
            prop_assert!(a.gemm_cycles(m + 32, k, n) >= a.gemm_cycles(m, k, n));
            prop_assert!(a.gemm_cycles(m, k + 1, n) >= a.gemm_cycles(m, k, n));
            Ok(())
        });
    }

    #[test]
    fn utilization_bounded() {
        prop_check!(256, 0x6E302, |g| {
            let m = g.usize(1..300);
            let k = g.usize(1..300);
            let n = g.usize(1..300);
            let a = SystolicArray::new(16, 16);
            let u = a.utilization(m, k, n);
            prop_assert!(u > 0.0 && u <= 1.0);
            Ok(())
        });
    }

    #[test]
    fn gemm_matches_naive() {
        prop_check!(128, 0x6E303, |g| {
            let m = g.usize(1..8);
            let k = g.usize(1..8);
            let n = g.usize(1..8);
            let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
            let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 - 2.0).collect();
            let got = SystolicArray::gemm_f32(&a, &b, m, k, n);
            for i in 0..m {
                for j in 0..n {
                    let expect: f32 = (0..k).map(|kk| a[i * k + kk] * b[kk * n + j]).sum();
                    prop_assert!((got[i * n + j] - expect).abs() < 1e-4);
                }
            }
            Ok(())
        });
    }
}
