//! # picachu-systolic — systolic array, SRAM and Shared Buffer substrate
//!
//! PICACHU plugs its CGRA into a systolic-array DNN accelerator (§4.2.4),
//! multiplexing the array's output SRAM as the CGRA's **Shared Buffer** and
//! reaching DRAM through DMA with streaming + double-buffering (§4.2.3).
//! This crate models that substrate:
//!
//! * [`gemm`] — an output-stationary systolic-array timing model plus a
//!   functional GEMM used by the examples and integration tests;
//! * [`sram`] — on-chip SRAM capacity/occupancy accounting;
//! * [`dma`] — the DRAM DMA channel (setup latency + bandwidth), standing in
//!   for the paper's Alveo U280 measurement;
//! * [`buffer`] — the Shared Buffer with the streaming / double-buffering
//!   overlap arithmetic behind Fig. 7c.

pub mod buffer;
pub mod dma;
pub mod gemm;
pub mod sram;

pub use buffer::SharedBuffer;
pub use dma::{DmaExhausted, DmaModel, FaultedTransfer, DMA_BACKOFF_BASE_CYCLES, DMA_MAX_ATTEMPTS, DMA_RETRY};
pub use gemm::SystolicArray;
pub use sram::Sram;
