//! DMA channel between off-chip DRAM and the Shared Buffer.
//!
//! The paper measures DMA latency on a Xilinx Alveo U280 (§5.4); we model
//! the two parameters that matter for the streaming results: a fixed
//! per-transfer setup latency and a sustained bandwidth. Defaults correspond
//! to ~16 GB/s at 1 GHz with a ~200-cycle descriptor setup, typical of a
//! measured PCIe-attached HBM path.

use picachu_faults::{DmaFaultModel, RetryPolicy};
use std::fmt;

/// The channel's retry ladder: 4 attempts total (three retries on top of the
/// first), backoff 32 cycles doubling each retry. With the worst shipped
/// fault density (~2 % per attempt) four independent stalls in a row happen
/// at ~1.6e-7 per transfer — the ladder clears every realistic transient
/// while still bounding the worst case — and the backoff is short enough to
/// be invisible against a 200-cycle setup yet long enough to ride out a
/// descriptor-timeout turnaround. The same [`RetryPolicy`] type (from
/// `picachu-faults`) drives the serving scheduler's crash-retry path, so
/// hardware- and serving-level backoff share one audited implementation.
pub const DMA_RETRY: RetryPolicy = RetryPolicy::new(4, 32);

/// Most attempts the retry ladder issues for one transfer before giving up
/// (see [`DMA_RETRY`]).
pub const DMA_MAX_ATTEMPTS: u32 = DMA_RETRY.max_attempts;

/// Backoff before the first retry; doubles each further retry (see
/// [`DMA_RETRY`]).
pub const DMA_BACKOFF_BASE_CYCLES: u64 = DMA_RETRY.backoff_base;

/// Outcome of a transfer pushed through the retry ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultedTransfer {
    /// Total cycles including stalled attempts and backoff.
    pub cycles: u64,
    /// Attempts issued (1 = clean first try).
    pub attempts: u32,
    /// Cycles lost to stalls and backoff (0 for a clean transfer; the
    /// fault-free cost is always `cycles - overhead_cycles`).
    pub overhead_cycles: u64,
}

/// All [`DMA_MAX_ATTEMPTS`] attempts of a transfer stalled: the channel is
/// treated as hard-failed for this transfer and the caller must degrade
/// (reject the request, not hang retrying forever).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaExhausted {
    /// Index of the transfer that exhausted its attempts.
    pub transfer: u64,
    /// Attempts issued (always [`DMA_MAX_ATTEMPTS`]).
    pub attempts: u32,
    /// Cycles burned before giving up.
    pub wasted_cycles: u64,
}

impl fmt::Display for DmaExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DMA transfer {} stalled {} times ({} cycles wasted), giving up",
            self.transfer, self.attempts, self.wasted_cycles
        )
    }
}

impl std::error::Error for DmaExhausted {}

/// A DMA channel model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaModel {
    /// Fixed per-transfer setup cycles (descriptor + handshake).
    pub setup_cycles: u64,
    /// Payload bytes moved per cycle once streaming.
    pub bytes_per_cycle: f64,
}

impl Default for DmaModel {
    fn default() -> DmaModel {
        DmaModel { setup_cycles: 200, bytes_per_cycle: 16.0 }
    }
}

impl DmaModel {
    /// Cycles to move `bytes` in one transfer.
    ///
    /// Integral bandwidths (every shipped configuration) use exact integer
    /// `div_ceil`: the old `(bytes as f64 / bpc).ceil()` loses integer
    /// precision above 2⁵³ bytes, where `bytes as f64` rounds and the
    /// division can come out a cycle short. Fractional bandwidths keep the
    /// float path (their quotients are not representable exactly anyway).
    pub fn transfer_cycles(&self, bytes: usize) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let streaming = if self.bytes_per_cycle >= 1.0 && self.bytes_per_cycle.fract() == 0.0 {
            (bytes as u64).div_ceil(self.bytes_per_cycle as u64)
        } else {
            (bytes as f64 / self.bytes_per_cycle).ceil() as u64
        };
        self.setup_cycles + streaming
    }

    /// [`DmaModel::transfer_cycles`] under a transient-fault model, with the
    /// bounded retry ladder: attempt `a` of transfer `transfer` stalls iff
    /// `faults.stalls(transfer, a)`; a stalled attempt costs
    /// `faults.stall_cycles` plus a deterministic doubling backoff
    /// ([`DMA_BACKOFF_BASE_CYCLES`] · 2^a) before the reissue. The whole
    /// ladder is a pure function of `(self, bytes, transfer, faults)` —
    /// replays are bit-identical.
    ///
    /// # Errors
    /// [`DmaExhausted`] when all [`DMA_MAX_ATTEMPTS`] attempts stall.
    pub fn transfer_cycles_faulted(
        &self,
        bytes: usize,
        transfer: u64,
        faults: &DmaFaultModel,
    ) -> Result<FaultedTransfer, DmaExhausted> {
        let clean = self.transfer_cycles(bytes);
        let mut overhead: u64 = 0;
        for attempt in 0..DMA_RETRY.max_attempts {
            if !faults.stalls(transfer, attempt) {
                return Ok(FaultedTransfer {
                    cycles: clean + overhead,
                    attempts: attempt + 1,
                    overhead_cycles: overhead,
                });
            }
            overhead += faults.stall_cycles + DMA_RETRY.backoff(attempt);
        }
        Err(DmaExhausted {
            transfer,
            attempts: DMA_RETRY.max_attempts,
            wasted_cycles: overhead,
        })
    }

    /// Effective bandwidth for a transfer of `bytes`, in bytes/cycle —
    /// exposes the setup-amortization effect that makes channel-by-channel
    /// streaming sensitive to chunk size.
    pub fn effective_bandwidth(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.transfer_cycles(bytes) as f64
    }
}

impl fmt::Display for DmaModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DMA: {} setup cycles, {:.0} B/cycle",
            self.setup_cycles, self.bytes_per_cycle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_arithmetic() {
        let d = DmaModel::default();
        assert_eq!(d.transfer_cycles(0), 0);
        assert_eq!(d.transfer_cycles(16), 201);
        assert_eq!(d.transfer_cycles(16 * 1000), 1200);
    }

    #[test]
    fn big_transfers_amortize_setup() {
        let d = DmaModel::default();
        assert!(d.effective_bandwidth(1 << 20) > d.effective_bandwidth(1 << 10));
        assert!(d.effective_bandwidth(1 << 22) > 15.0);
    }

    #[test]
    fn rounding_up() {
        let d = DmaModel { setup_cycles: 0, bytes_per_cycle: 16.0 };
        assert_eq!(d.transfer_cycles(17), 2);
    }

    /// Exactness beyond f64's 53-bit integer range: `(2^53 + 1) as f64`
    /// rounds down to 2^53, so the old float path reported 2^49 cycles for
    /// a payload that genuinely needs 2^49 + 1. Multi-GiB sizes in the same
    /// family (odd remainders over an integral bandwidth) must round up.
    #[test]
    fn huge_transfers_use_exact_integer_math() {
        let d = DmaModel { setup_cycles: 0, bytes_per_cycle: 16.0 };
        assert_eq!(d.transfer_cycles((1usize << 53) + 1), (1u64 << 49) + 1);
        // 4 GiB + 1 byte: one straggler cycle for the trailing byte.
        assert_eq!(d.transfer_cycles((4usize << 30) + 1), (4u64 << 26) + 1);
        // Fractional bandwidths still take the float path.
        let f = DmaModel { setup_cycles: 0, bytes_per_cycle: 2.5 };
        assert_eq!(f.transfer_cycles(5), 2);
        assert_eq!(f.transfer_cycles(6), 3);
    }

    #[test]
    fn faulted_transfer_clean_path_is_free() {
        let d = DmaModel::default();
        let t = d
            .transfer_cycles_faulted(16 * 1000, 0, &DmaFaultModel::none())
            .unwrap();
        assert_eq!(t.cycles, d.transfer_cycles(16 * 1000));
        assert_eq!(t.attempts, 1);
        assert_eq!(t.overhead_cycles, 0);
    }

    #[test]
    fn faulted_transfer_retries_with_doubling_backoff() {
        let d = DmaModel::default();
        // stall every attempt: the ladder burns all attempts and gives up
        let always = DmaFaultModel { stall_ppm: 1_000_000, stall_cycles: 100, seed: 1 };
        let err = d.transfer_cycles_faulted(64, 7, &always).unwrap_err();
        assert_eq!(err.transfer, 7);
        assert_eq!(err.attempts, DMA_MAX_ATTEMPTS);
        // 4 stalls + backoffs 32+64+128+256
        assert_eq!(err.wasted_cycles, 4 * 100 + 32 + 64 + 128 + 256);
    }

    #[test]
    fn faulted_transfer_ladder_is_deterministic() {
        let d = DmaModel::default();
        let f = DmaFaultModel { stall_ppm: 300_000, stall_cycles: 50, seed: 42 };
        let mut retried = 0u32;
        for x in 0..2_000u64 {
            let a = d.transfer_cycles_faulted(128, x, &f);
            let b = d.transfer_cycles_faulted(128, x, &f);
            assert_eq!(a, b, "transfer {x} not replayable");
            if let Ok(t) = a {
                if t.attempts > 1 {
                    retried += 1;
                    // overhead accounts every stalled attempt exactly
                    let stalls = t.attempts as u64 - 1;
                    let backoff: u64 =
                        (0..stalls).map(|k| DMA_BACKOFF_BASE_CYCLES << k).sum();
                    assert_eq!(t.overhead_cycles, stalls * 50 + backoff);
                }
            }
        }
        // at 30 % per-attempt density a healthy share of transfers retries
        assert!(retried > 300, "only {retried} retries in 2000 transfers");
    }
}
