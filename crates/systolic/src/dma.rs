//! DMA channel between off-chip DRAM and the Shared Buffer.
//!
//! The paper measures DMA latency on a Xilinx Alveo U280 (§5.4); we model
//! the two parameters that matter for the streaming results: a fixed
//! per-transfer setup latency and a sustained bandwidth. Defaults correspond
//! to ~16 GB/s at 1 GHz with a ~200-cycle descriptor setup, typical of a
//! measured PCIe-attached HBM path.

use std::fmt;

/// A DMA channel model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaModel {
    /// Fixed per-transfer setup cycles (descriptor + handshake).
    pub setup_cycles: u64,
    /// Payload bytes moved per cycle once streaming.
    pub bytes_per_cycle: f64,
}

impl Default for DmaModel {
    fn default() -> DmaModel {
        DmaModel { setup_cycles: 200, bytes_per_cycle: 16.0 }
    }
}

impl DmaModel {
    /// Cycles to move `bytes` in one transfer.
    pub fn transfer_cycles(&self, bytes: usize) -> u64 {
        if bytes == 0 {
            return 0;
        }
        self.setup_cycles + (bytes as f64 / self.bytes_per_cycle).ceil() as u64
    }

    /// Effective bandwidth for a transfer of `bytes`, in bytes/cycle —
    /// exposes the setup-amortization effect that makes channel-by-channel
    /// streaming sensitive to chunk size.
    pub fn effective_bandwidth(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.transfer_cycles(bytes) as f64
    }
}

impl fmt::Display for DmaModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DMA: {} setup cycles, {:.0} B/cycle",
            self.setup_cycles, self.bytes_per_cycle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_arithmetic() {
        let d = DmaModel::default();
        assert_eq!(d.transfer_cycles(0), 0);
        assert_eq!(d.transfer_cycles(16), 201);
        assert_eq!(d.transfer_cycles(16 * 1000), 1200);
    }

    #[test]
    fn big_transfers_amortize_setup() {
        let d = DmaModel::default();
        assert!(d.effective_bandwidth(1 << 20) > d.effective_bandwidth(1 << 10));
        assert!(d.effective_bandwidth(1 << 22) > 15.0);
    }

    #[test]
    fn rounding_up() {
        let d = DmaModel { setup_cycles: 0, bytes_per_cycle: 16.0 };
        assert_eq!(d.transfer_cycles(17), 2);
    }
}
