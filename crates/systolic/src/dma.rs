//! DMA channel between off-chip DRAM and the Shared Buffer.
//!
//! The paper measures DMA latency on a Xilinx Alveo U280 (§5.4); we model
//! the two parameters that matter for the streaming results: a fixed
//! per-transfer setup latency and a sustained bandwidth. Defaults correspond
//! to ~16 GB/s at 1 GHz with a ~200-cycle descriptor setup, typical of a
//! measured PCIe-attached HBM path.

use std::fmt;

/// A DMA channel model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaModel {
    /// Fixed per-transfer setup cycles (descriptor + handshake).
    pub setup_cycles: u64,
    /// Payload bytes moved per cycle once streaming.
    pub bytes_per_cycle: f64,
}

impl Default for DmaModel {
    fn default() -> DmaModel {
        DmaModel { setup_cycles: 200, bytes_per_cycle: 16.0 }
    }
}

impl DmaModel {
    /// Cycles to move `bytes` in one transfer.
    ///
    /// Integral bandwidths (every shipped configuration) use exact integer
    /// `div_ceil`: the old `(bytes as f64 / bpc).ceil()` loses integer
    /// precision above 2⁵³ bytes, where `bytes as f64` rounds and the
    /// division can come out a cycle short. Fractional bandwidths keep the
    /// float path (their quotients are not representable exactly anyway).
    pub fn transfer_cycles(&self, bytes: usize) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let streaming = if self.bytes_per_cycle >= 1.0 && self.bytes_per_cycle.fract() == 0.0 {
            (bytes as u64).div_ceil(self.bytes_per_cycle as u64)
        } else {
            (bytes as f64 / self.bytes_per_cycle).ceil() as u64
        };
        self.setup_cycles + streaming
    }

    /// Effective bandwidth for a transfer of `bytes`, in bytes/cycle —
    /// exposes the setup-amortization effect that makes channel-by-channel
    /// streaming sensitive to chunk size.
    pub fn effective_bandwidth(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.transfer_cycles(bytes) as f64
    }
}

impl fmt::Display for DmaModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DMA: {} setup cycles, {:.0} B/cycle",
            self.setup_cycles, self.bytes_per_cycle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_arithmetic() {
        let d = DmaModel::default();
        assert_eq!(d.transfer_cycles(0), 0);
        assert_eq!(d.transfer_cycles(16), 201);
        assert_eq!(d.transfer_cycles(16 * 1000), 1200);
    }

    #[test]
    fn big_transfers_amortize_setup() {
        let d = DmaModel::default();
        assert!(d.effective_bandwidth(1 << 20) > d.effective_bandwidth(1 << 10));
        assert!(d.effective_bandwidth(1 << 22) > 15.0);
    }

    #[test]
    fn rounding_up() {
        let d = DmaModel { setup_cycles: 0, bytes_per_cycle: 16.0 };
        assert_eq!(d.transfer_cycles(17), 2);
    }

    /// Exactness beyond f64's 53-bit integer range: `(2^53 + 1) as f64`
    /// rounds down to 2^53, so the old float path reported 2^49 cycles for
    /// a payload that genuinely needs 2^49 + 1. Multi-GiB sizes in the same
    /// family (odd remainders over an integral bandwidth) must round up.
    #[test]
    fn huge_transfers_use_exact_integer_math() {
        let d = DmaModel { setup_cycles: 0, bytes_per_cycle: 16.0 };
        assert_eq!(d.transfer_cycles((1usize << 53) + 1), (1u64 << 49) + 1);
        // 4 GiB + 1 byte: one straggler cycle for the trailing byte.
        assert_eq!(d.transfer_cycles((4usize << 30) + 1), (4u64 << 26) + 1);
        // Fractional bandwidths still take the float path.
        let f = DmaModel { setup_cycles: 0, bytes_per_cycle: 2.5 };
        assert_eq!(f.transfer_cycles(5), 2);
        assert_eq!(f.transfer_cycles(6), 3);
    }
}
