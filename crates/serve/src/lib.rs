//! # picachu-serve — deterministic multi-tenant serving simulator
//!
//! The ROADMAP's north star is serving heavy LLM traffic, and PR 5's
//! staged pipeline made steady-state execution dispatch-bound — so this
//! crate puts a serving layer on top of the unified [`Accelerator`]
//! contract: a discrete-event simulator with seeded arrival traces
//! (Poisson / bursty / diurnal), continuous batching of decode steps
//! across concurrent sequences, admission control, cost-model-driven
//! placement over heterogeneous shard pools (PICACHU, Gemmini-class, the
//! A100 roofline, …), fault-driven capacity degradation with live
//! rebalancing, and per-request SLO accounting.
//!
//! Four scheduler invariants are machine-checked on every run (see
//! [`Audit`]), not just benchmarked:
//!
//! 1. **Conservation** — every admitted request completes or is rejected
//!    with a typed reason, exactly once.
//! 2. **Work conservation** — no in-service shard idles while compatible
//!    work waits anywhere in the pool.
//! 3. **Batching legality** — a batch never mixes tenants, phases or
//!    shape buckets.
//! 4. **Bit-exact replay** — a run is a pure function of its
//!    [`ServeConfig`], seed included.
//!
//! See DESIGN.md §9 for the full serving model and `tests/serve.rs` for
//! the property suite that drives these invariants under random traces ×
//! pool configurations with shrinking, replayable counterexamples.
//!
//! [`Accelerator`]: picachu_backend::Accelerator

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arrivals;
pub mod metrics;
pub mod pool;
pub mod sched;

pub use arrivals::{arrival_trace, ArrivalPattern, Request, Tenant};
pub use metrics::{summarize, SloSummary};
pub use pool::{bucket_log2, CostKey, Shard, ShardReport, ShardSpec};
pub use sched::{
    run, Audit, BatchRecord, FaultEvent, Outcome, RejectReason, RequestRecord, ServeConfig,
    ServeReport,
};

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_llm::ModelConfig;

    fn tiny(name: &'static str, layers: usize) -> ModelConfig {
        ModelConfig { name, layers, d_model: 64, n_heads: 4, d_ff: 128, ..ModelConfig::gpt2() }
    }

    fn cfg() -> ServeConfig {
        ServeConfig::new(
            vec![Tenant {
                name: "t0",
                model: tiny("tiny-a", 2),
                weight: 1,
                prompt: 32,
                decode: (2, 6),
                slo_ns: u64::MAX,
            }],
            ArrivalPattern::Poisson { mean_gap_ns: 50_000.0 },
            vec![ShardSpec::Gemmini, ShardSpec::Gpu],
        )
    }

    #[test]
    fn smoke_run_is_clean_and_replayable() {
        let c = ServeConfig { n_requests: 60, log_batches: true, ..cfg() };
        let a = run(&c);
        a.audit.check().unwrap();
        assert_eq!(a.records.len(), 60);
        assert_eq!(a.audit.completed, 60);
        let b = run(&c);
        assert_eq!(a, b, "replay must be bit-exact");
        let s = summarize(&a);
        assert!(s.throughput_tokens_per_s > 0.0);
        assert!(s.p50_latency_ns > 0 && s.p99_latency_ns >= s.p50_latency_ns);
    }

    #[test]
    fn different_seeds_differ() {
        let c = ServeConfig { n_requests: 40, ..cfg() };
        let a = run(&c);
        let b = run(&ServeConfig { seed: c.seed + 1, ..c });
        assert_ne!(a.records, b.records);
    }
}
