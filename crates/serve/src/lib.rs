//! # picachu-serve — deterministic multi-tenant serving simulator
//!
//! The ROADMAP's north star is serving heavy LLM traffic, and PR 5's
//! staged pipeline made steady-state execution dispatch-bound — so this
//! crate puts a serving layer on top of the unified [`Accelerator`]
//! contract: a discrete-event simulator with seeded arrival traces
//! (Poisson / bursty / diurnal), continuous batching of decode steps
//! across concurrent sequences, admission control, cost-model-driven
//! placement over heterogeneous shard pools (PICACHU, Gemmini-class, the
//! A100 roofline, …), fault-driven capacity degradation with live
//! rebalancing, and per-request SLO accounting.
//!
//! Since the chaos PR the layer is also *fault-tolerant at runtime*: a
//! seeded [`chaos`] schedule crashes, degrades, recovers and
//! compile-blocks shards mid-run; crashed batches retry on survivors under
//! a bounded-backoff [`RetryPolicy`] budget (typed
//! [`Outcome::Abandoned`] when it runs out); per-tenant priority classes
//! drive decode-batch preemption for SLO-threatened prefills; and load
//! shedding (typed `Shed` rejection) protects the backlog under overload.
//!
//! Five scheduler invariants are machine-checked on every run (see
//! [`Audit`]), not just benchmarked:
//!
//! 1. **Conservation** — every admitted request completes, is rejected
//!    with a typed reason, or is abandoned, exactly once.
//! 2. **Work conservation** — no startable shard idles while compatible
//!    work waits anywhere in the pool.
//! 3. **Batching legality** — a batch never mixes tenants, phases or
//!    shape buckets.
//! 4. **Bit-exact replay** — a run is a pure function of its
//!    [`ServeConfig`], seed included — chaos included.
//! 5. **Conservation under failure** — tokens committed by completed
//!    batch steps equal tokens reported by terminal states: a killed
//!    batch commits nothing, a retried request never double-counts.
//!
//! See DESIGN.md §9 (serving model) and §12 (chaos model) and
//! `tests/serve.rs` for the property suite that drives these invariants
//! under random traces × pool configurations × chaos schedules with
//! shrinking, replayable counterexamples. The `serve_soak` bench bin runs
//! the million-event chaos soak behind `results/BENCH_soak.json`.
//!
//! [`Accelerator`]: picachu_backend::Accelerator

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arrivals;
pub mod chaos;
pub mod metrics;
pub mod pool;
pub mod sched;

pub use arrivals::{arrival_trace, ArrivalPattern, Request, Tenant};
pub use chaos::{chaos_schedule, default_plan_menu, ChaosAction, ChaosConfig, ChaosEvent};
pub use metrics::{summarize, SloSummary};
pub use picachu_faults::RetryPolicy;
pub use pool::{bucket_log2, CostKey, Shard, ShardReport, ShardSpec};
pub use sched::{
    run, Audit, BatchRecord, FaultEvent, Outcome, RejectReason, RequestRecord, ServeConfig,
    ServeReport, PREEMPT_TTFT_DIVISOR,
};

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_llm::ModelConfig;

    fn tiny(name: &'static str, layers: usize) -> ModelConfig {
        ModelConfig { name, layers, d_model: 64, n_heads: 4, d_ff: 128, ..ModelConfig::gpt2() }
    }

    fn cfg() -> ServeConfig {
        ServeConfig::new(
            vec![Tenant {
                name: "t0",
                model: tiny("tiny-a", 2),
                weight: 1,
                prompt: 32,
                decode: (2, 6),
                slo_ns: u64::MAX,
                priority: 0,
            }],
            ArrivalPattern::Poisson { mean_gap_ns: 50_000.0 },
            vec![ShardSpec::Gemmini, ShardSpec::Gpu],
        )
    }

    #[test]
    fn smoke_run_is_clean_and_replayable() {
        let c = ServeConfig { n_requests: 60, log_batches: true, ..cfg() };
        let a = run(&c);
        a.audit.check().unwrap();
        assert_eq!(a.records.len(), 60);
        assert_eq!(a.audit.completed, 60);
        let b = run(&c);
        assert_eq!(a, b, "replay must be bit-exact");
        let s = summarize(&a);
        assert!(s.throughput_tokens_per_s > 0.0);
        assert!(s.p50_latency_ns > 0 && s.p99_latency_ns >= s.p50_latency_ns);
    }

    #[test]
    fn crash_and_recover_mid_trace_keeps_a_clean_audit() {
        let c = ServeConfig {
            n_requests: 80,
            chaos: vec![
                ChaosEvent { at_ns: 300_000, shard: 0, action: ChaosAction::Crash },
                ChaosEvent { at_ns: 2_000_000, shard: 0, action: ChaosAction::Recover },
            ],
            ..cfg()
        };
        let a = run(&c);
        a.audit.check().unwrap();
        assert_eq!(a.records.len(), 80);
        // one healthy shard survives the whole time, so nothing is lost
        assert_eq!(a.audit.completed + a.audit.abandoned, a.audit.admitted);
        assert!(a.audit.completed > 0);
        let b = run(&c);
        assert_eq!(a, b, "chaos replay must be bit-exact");
    }

    #[test]
    fn different_seeds_differ() {
        let c = ServeConfig { n_requests: 40, ..cfg() };
        let a = run(&c);
        let b = run(&ServeConfig { seed: c.seed + 1, ..c });
        assert_ne!(a.records, b.records);
    }
}
