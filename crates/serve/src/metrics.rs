//! SLO accounting: percentiles, goodput and attainment over a
//! [`ServeReport`](crate::ServeReport)'s request records.

use crate::sched::{Outcome, ServeReport};

/// Nearest-rank percentile of a sorted slice (0 for an empty one): the
/// smallest value such that at least `q·n` of the samples are ≤ it, i.e.
/// rank `⌈q·n⌉` (1-based, clamped to `[1, n]`). The previous
/// `round((n−1)·q)` interpolation overshot on even-length inputs — p50 of
/// `1..=100` returned 51 instead of 50 — and a nearest-rank p99 must never
/// *under*-report a tail latency the way rounding down can.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The SLO summary of one serving run — one row of the throughput-vs-SLO
/// curves in `results/BENCH_serve.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSummary {
    /// Requests generated.
    pub generated: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected (at admission or after; includes shed).
    pub rejected: u64,
    /// Requests rejected by load shedding (subset of `rejected`).
    pub shed: u64,
    /// Requests abandoned after exhausting the crash-retry budget.
    pub abandoned: u64,
    /// Crash-retry re-dispatches survived by completed requests — divided
    /// by `completed` this is the retry amplification of the trace.
    pub retries_of_completed: u64,
    /// Median end-to-end latency of completed requests, ns.
    pub p50_latency_ns: u64,
    /// 99th-percentile end-to-end latency, ns.
    pub p99_latency_ns: u64,
    /// Median time-to-first-token, ns.
    pub p50_ttft_ns: u64,
    /// 99th-percentile time-to-first-token, ns.
    pub p99_ttft_ns: u64,
    /// Fraction of *generated* requests that completed within their SLO
    /// (rejections count against attainment).
    pub slo_attainment: f64,
    /// Tokens of all completed requests per simulated second.
    pub throughput_tokens_per_s: f64,
    /// Tokens of requests that completed *within SLO* per simulated second.
    pub goodput_tokens_per_s: f64,
}

/// Summarizes a run's records.
pub fn summarize(report: &ServeReport) -> SloSummary {
    let mut latencies = Vec::new();
    let mut ttfts = Vec::new();
    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut shed = 0u64;
    let mut abandoned = 0u64;
    let mut retries_of_completed = 0u64;
    let mut within_slo = 0u64;
    let mut tokens_total = 0u64;
    let mut tokens_good = 0u64;
    for r in &report.records {
        match &r.outcome {
            Outcome::Completed { ttft_ns, finish_ns, tokens, retries, .. } => {
                completed += 1;
                retries_of_completed += u64::from(*retries);
                let latency = finish_ns.saturating_sub(r.arrival_ns);
                latencies.push(latency);
                ttfts.push(*ttft_ns);
                tokens_total += *tokens as u64;
                if latency <= r.slo_ns {
                    within_slo += 1;
                    tokens_good += *tokens as u64;
                }
            }
            Outcome::Rejected { reason, .. } => {
                rejected += 1;
                if *reason == crate::sched::RejectReason::Shed {
                    shed += 1;
                }
            }
            Outcome::Abandoned { .. } => abandoned += 1,
        }
    }
    latencies.sort_unstable();
    ttfts.sort_unstable();
    // zero-duration run (empty or single-instant trace): no time passed,
    // so rates are 0, not NaN/inf
    let per_s = |tokens: u64| {
        if report.horizon_ns == 0 {
            0.0
        } else {
            tokens as f64 / (report.horizon_ns as f64 * 1e-9)
        }
    };
    SloSummary {
        generated: report.records.len() as u64,
        completed,
        rejected,
        shed,
        abandoned,
        retries_of_completed,
        p50_latency_ns: percentile(&latencies, 0.50),
        p99_latency_ns: percentile(&latencies, 0.99),
        p50_ttft_ns: percentile(&ttfts, 0.50),
        p99_ttft_ns: percentile(&ttfts, 0.99),
        slo_attainment: if report.records.is_empty() {
            1.0
        } else {
            within_slo as f64 / report.records.len() as f64
        },
        throughput_tokens_per_s: per_s(tokens_total),
        goodput_tokens_per_s: per_s(tokens_good),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Audit;

    #[test]
    fn empty_report_yields_finite_zero_rates() {
        let report = ServeReport {
            records: Vec::new(),
            shards: Vec::new(),
            audit: Audit::default(),
            horizon_ns: 0,
            events: 0,
            batch_log: Vec::new(),
        };
        let s = summarize(&report);
        assert_eq!(s.generated, 0);
        assert_eq!(s.completed, 0);
        assert_eq!(s.throughput_tokens_per_s, 0.0, "zero-duration run must not be NaN/inf");
        assert_eq!(s.goodput_tokens_per_s, 0.0);
        assert!(s.throughput_tokens_per_s.is_finite() && s.goodput_tokens_per_s.is_finite());
        assert_eq!(s.slo_attainment, 1.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50, "p50 of 1..=100 is rank ⌈50⌉ = 50");
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn percentile_small_n_nearest_rank() {
        // n = 2: p50 rank = ⌈0.5·2⌉ = 1 → first element, not the second
        assert_eq!(percentile(&[1, 2], 0.50), 1);
        assert_eq!(percentile(&[1, 2], 0.51), 2);
        // n = 3: p50 rank = ⌈1.5⌉ = 2 → the true median
        assert_eq!(percentile(&[1, 2, 3], 0.50), 2);
        // p99 of a small sample is its maximum (rank ⌈0.99·n⌉ = n)
        assert_eq!(percentile(&[1, 2], 0.99), 2);
        assert_eq!(percentile(&[1, 2, 3], 0.99), 3);
        assert_eq!(percentile(&[4, 8], 1.0), 8);
    }
}
