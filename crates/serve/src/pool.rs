//! The accelerator pool: heterogeneous shards behind the unified
//! [`Accelerator`] contract, with measured step-cost tables and
//! fault-driven capacity factors.
//!
//! A shard is one device instance (PICACHU engine, Gemmini-class,
//! A100 roofline, …). At construction every shard *measures* its healthy
//! step costs once — one `execute_trace` per tenant model to warm kernel
//! caches, then the [`Accelerator::estimate_trace`] capacity hint (exact
//! when warm, by the backend-parity contract) fills a table over bucketed
//! (tenant, context, batch) shapes. The table is a pure function of
//! `(spec, tenants, max_batch)`: it never changes when faults arrive, which
//! is what lets the degraded-capacity tests assert healthy shards'
//! measurements stay bit-identical to their fault-free runs.
//!
//! Faults scale, they don't re-measure: applying a [`FaultPlan`] derives a
//! *capacity factor* — for PICACHU shards from the real degradation ladder
//! (worst `ii_inflation` over the tenants' kernels; a ladder rejection
//! takes the shard out of service), for the analytical baselines from the
//! alive-tile fraction of a nominal 16-unit device. Effective step cost is
//! `healthy cost × factor`.

use crate::arrivals::Tenant;
use picachu::engine::{EngineConfig, PicachuEngine};
use picachu_backend::Accelerator;
use picachu_baselines::{CpuModel, GemminiModel, GpuModel, HomogeneousCgraModel, TandemModel};
use picachu_faults::FaultPlan;
use picachu_llm::trace::{batched_decode_trace, model_trace};
use picachu_nonlinear::NonlinearOp;
use std::collections::{BTreeSet, HashMap};

/// What device a shard is.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardSpec {
    /// A PICACHU engine with its own [`EngineConfig`].
    Picachu(EngineConfig),
    /// Gemmini-class accelerator (dedicated nonlinear units + scalar core).
    Gemmini,
    /// A100 roofline model.
    Gpu,
    /// Host-CPU offload baseline.
    Cpu,
    /// Tandem-class vector processor.
    Tandem,
    /// Conventional homogeneous CGRA.
    CgraBase,
}

impl ShardSpec {
    /// A default-config PICACHU shard.
    pub fn picachu() -> ShardSpec {
        ShardSpec::Picachu(EngineConfig::default())
    }

    /// A PICACHU shard configured from a searched design point — the
    /// deployment path of the co-design search: `picachu::dse::search`
    /// produces a Pareto frontier, and any member becomes a servable shard
    /// via its knobs.
    pub fn from_design(point: &picachu::dse::DesignPoint) -> ShardSpec {
        ShardSpec::Picachu(point.knobs.engine_config())
    }

    /// Instantiates the device behind the unified contract.
    pub fn build(&self) -> Box<dyn Accelerator> {
        match self {
            ShardSpec::Picachu(cfg) => Box::new(PicachuEngine::new(cfg.clone())),
            ShardSpec::Gemmini => Box::new(GemminiModel::hosted()),
            ShardSpec::Gpu => Box::new(GpuModel::default()),
            ShardSpec::Cpu => Box::new(CpuModel::hosted()),
            ShardSpec::Tandem => Box::new(TandemModel::hosted()),
            ShardSpec::CgraBase => Box::new(HomogeneousCgraModel::hosted()),
        }
    }

    /// Instantiates the device and, for PICACHU shards, pre-warms the union
    /// of the tenants' nonlinear kernels through one grouped compile batch
    /// before the first trace runs. Compilation is deterministic in the
    /// engine config, so warming changes *when* the mapper runs — a single
    /// flat parallel pass instead of op-by-op on the first trace of each
    /// tenant — never *what* it produces; cost tables are bit-identical
    /// either way.
    pub fn build_warmed(&self, tenants: &[Tenant]) -> Box<dyn Accelerator> {
        match self {
            ShardSpec::Picachu(cfg) => {
                let mut engine = PicachuEngine::new(cfg.clone());
                let mut ops: BTreeSet<NonlinearOp> = BTreeSet::new();
                for t in tenants {
                    ops.extend(t.model.nonlinear_ops());
                }
                let ops: Vec<NonlinearOp> = ops.into_iter().collect();
                if let Err(e) = engine.prewarm(&ops) {
                    // a healthy-fabric compile failure would surface as the
                    // same panic on the first execute_trace; warn and let
                    // the measuring pass report it
                    eprintln!("picachu-serve: shard prewarm failed: {e}");
                }
                Box::new(engine)
            }
            _ => self.build(),
        }
    }
}

/// log2 of the power-of-two bucket covering `x` (shape-compatibility
/// classes for batching and cost lookup).
pub fn bucket_log2(x: usize) -> u32 {
    x.max(1).next_power_of_two().trailing_zeros()
}

/// One entry of a shard's measured healthy cost table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CostKey {
    /// Tenant index.
    pub tenant: usize,
    /// `true` for a prefill step (bucket covers the prompt), `false` for a
    /// batched decode step (bucket covers the KV-cache context).
    pub prefill: bool,
    /// log2 of the shape bucket.
    pub bucket: u32,
    /// Batch size (always 1 for prefill).
    pub batch: u32,
}

/// Per-shard outcome of a serving run — the report the degraded-capacity
/// tests compare across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Shard id.
    pub shard: usize,
    /// Device name.
    pub backend: String,
    /// Batches executed.
    pub batches: u64,
    /// Sequence-steps executed (sum of batch sizes).
    pub steps: u64,
    /// Total busy time in ns.
    pub busy_ns: u64,
    /// The measured healthy step costs, sorted by key — a pure function of
    /// `(spec, tenants, max_batch)`, so bit-identical across runs whatever
    /// faults hit the rest of the pool.
    pub cost_table: Vec<(CostKey, u64)>,
    /// Capacity factor at end of run (1 = healthy, ∞ = out of service).
    pub final_capacity_factor: f64,
    /// In-flight batches killed by chaos crashes on this shard.
    pub killed_batches: u64,
    /// Decode batches preempted mid-step for a higher-priority prefill.
    pub preempted_batches: u64,
    /// Busy time charged to batches that never completed (killed or
    /// preempted) — the price of chaos, excluded from useful `busy_ns`.
    pub wasted_ns: u64,
}

/// One device of the pool, with its measured costs and live fault state.
pub struct Shard {
    /// Shard id (index into the pool).
    pub id: usize,
    /// The device spec this shard was built from.
    pub spec: ShardSpec,
    /// Device name (stable, from the backend).
    pub backend_name: String,
    /// The fault plan currently applied (empty = healthy).
    pub fault: FaultPlan,
    /// Step-cost multiplier: 1.0 healthy, >1 degraded, ∞ out of service.
    pub capacity_factor: f64,
    costs: HashMap<CostKey, u64>,
    max_batch_pow2: u32,
}

impl Shard {
    /// Builds the shard and eagerly measures its healthy cost table over
    /// every bucketed shape the tenants can present: prompt buckets for
    /// prefill, context buckets from prompt to prompt+max decode, batch
    /// sizes at powers of two up to `max_batch`.
    pub fn new(id: usize, spec: ShardSpec, tenants: &[Tenant], max_batch: usize) -> Shard {
        let mut backend = spec.build_warmed(tenants);
        let max_batch_pow2 = max_batch.max(1).next_power_of_two() as u32;
        let mut costs = HashMap::new();
        for (ti, t) in tenants.iter().enumerate() {
            // one real execution per tenant model warms kernel caches, so
            // every estimate below is exact by the parity contract
            backend.execute_trace(&batched_decode_trace(&t.model, t.prompt.max(1), 1));
            let pb = bucket_log2(t.prompt);
            let key = CostKey { tenant: ti, prefill: true, bucket: pb, batch: 1 };
            let est = backend.estimate_trace(&model_trace(&t.model, 1usize << pb));
            costs.insert(key, (est.ceil() as u64).max(1));
            let lo = bucket_log2(t.prompt);
            let hi = bucket_log2(t.prompt + t.decode.1);
            for bucket in lo..=hi {
                let mut batch = 1u32;
                while batch <= max_batch_pow2 {
                    let trace =
                        batched_decode_trace(&t.model, 1usize << bucket, batch as usize);
                    let est = backend.estimate_trace(&trace);
                    costs.insert(
                        CostKey { tenant: ti, prefill: false, bucket, batch },
                        (est.ceil() as u64).max(1),
                    );
                    batch *= 2;
                }
            }
        }
        Shard {
            id,
            backend_name: backend.name().to_string(),
            spec,
            fault: FaultPlan::none(),
            capacity_factor: 1.0,
            costs,
            max_batch_pow2,
        }
    }

    /// Whether the shard can accept work.
    pub fn in_service(&self) -> bool {
        self.capacity_factor.is_finite()
    }

    /// Takes the shard out of service immediately — the chaos `Crash`
    /// action. Unlike [`Shard::apply_fault`] with a total-outage plan this
    /// never consults the compiler (a crashed shard answers nothing); the
    /// fault plan is left untouched so a later `Recover` restores exactly
    /// the pre-crash degradation state via `apply_fault`.
    pub fn force_out_of_service(&mut self) {
        self.capacity_factor = f64::INFINITY;
    }

    /// Healthy (unscaled) cost of a batched decode step: `batch` sequences
    /// of `tenant`, each holding `context` cached tokens. Batch and context
    /// quantize up to their power-of-two buckets (conservative).
    pub fn healthy_decode_cost(&self, tenant: usize, context: usize, batch: usize) -> u64 {
        let key = CostKey {
            tenant,
            prefill: false,
            bucket: bucket_log2(context),
            batch: (batch.max(1).next_power_of_two() as u32).min(self.max_batch_pow2),
        };
        self.costs.get(&key).copied().unwrap_or_else(|| {
            // context outgrew the probed range (decode beyond the declared
            // max): charge the largest probed bucket of this tenant,
            // scaled by the bucket ratio — still deterministic
            let widest = self
                .costs
                .iter()
                .filter(|(k, _)| k.tenant == tenant && !k.prefill && k.batch == key.batch)
                .max_by_key(|(k, _)| k.bucket);
            match widest {
                Some((k, &c)) => c.saturating_mul(1 << (key.bucket.saturating_sub(k.bucket))),
                None => 1,
            }
        })
    }

    /// Healthy cost of a prefill step for `tenant`.
    pub fn healthy_prefill_cost(&self, tenant: usize, prompt: usize) -> u64 {
        let key =
            CostKey { tenant, prefill: true, bucket: bucket_log2(prompt), batch: 1 };
        self.costs.get(&key).copied().unwrap_or(1)
    }

    /// Effective (fault-scaled) step cost in ns.
    ///
    /// # Panics
    /// Panics if the shard is out of service — the scheduler never issues
    /// work to a shard whose capacity factor is infinite.
    pub fn scaled(&self, healthy: u64) -> u64 {
        assert!(self.in_service(), "scaled() on an out-of-service shard");
        ((healthy as f64) * self.capacity_factor).ceil() as u64
    }

    /// Applies `plan`, deriving the shard's new capacity factor.
    ///
    /// PICACHU shards walk the real degradation ladder: every nonlinear
    /// kernel the tenants' models use is recompiled under the plan, the
    /// worst `ii_inflation` becomes the factor, and a ladder rejection
    /// (no rung maps) takes the shard out of service. The analytical
    /// baselines have no compiler to consult, so the plan's dead tiles are
    /// read as dead compute units out of a nominal 16: factor =
    /// 16 / alive (∞ when none survive).
    pub fn apply_fault(&mut self, plan: &FaultPlan, tenants: &[Tenant]) {
        self.capacity_factor = if plan.is_empty() {
            1.0
        } else {
            match &self.spec {
                ShardSpec::Picachu(cfg) => {
                    let mut ops: BTreeSet<NonlinearOp> = BTreeSet::new();
                    for t in tenants {
                        ops.extend(t.model.nonlinear_ops());
                    }
                    let mut engine = PicachuEngine::new(cfg.clone());
                    let mut factor = 1.0f64;
                    for op in ops {
                        match engine.compile_op_degraded(op, plan) {
                            Ok(d) => factor = factor.max(d.ii_inflation.max(1.0)),
                            Err(_) => {
                                factor = f64::INFINITY;
                                break;
                            }
                        }
                    }
                    factor
                }
                _ => {
                    const NOMINAL_UNITS: usize = 16;
                    let dead =
                        plan.dead_tiles.iter().filter(|&&t| t < NOMINAL_UNITS).count();
                    if dead >= NOMINAL_UNITS {
                        f64::INFINITY
                    } else {
                        NOMINAL_UNITS as f64 / (NOMINAL_UNITS - dead) as f64
                    }
                }
            }
        };
        self.fault = plan.clone();
    }

    /// Snapshot of the measured healthy cost table, sorted by key.
    pub fn cost_table(&self) -> Vec<(CostKey, u64)> {
        let mut v: Vec<(CostKey, u64)> = self.costs.iter().map(|(k, &c)| (*k, c)).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_llm::ModelConfig;

    fn tiny_tenant() -> Tenant {
        Tenant {
            name: "tiny",
            model: ModelConfig {
                name: "tiny-2l",
                layers: 2,
                d_model: 64,
                n_heads: 4,
                d_ff: 128,
                ..ModelConfig::gpt2()
            },
            weight: 1,
            prompt: 32,
            decode: (4, 8),
            slo_ns: 1_000_000_000,
            priority: 0,
        }
    }

    #[test]
    fn forced_outage_preserves_fault_state_for_recovery() {
        let ts = vec![tiny_tenant()];
        let mut s = Shard::new(0, ShardSpec::Gemmini, &ts, 2);
        s.apply_fault(&FaultPlan::dead_tile(3), &ts);
        let degraded = s.capacity_factor;
        s.force_out_of_service();
        assert!(!s.in_service());
        assert_eq!(s.fault, FaultPlan::dead_tile(3), "crash must not erase the plan");
        // recovery re-applies the standing plan, landing back on the
        // degraded (not healthy, not dead) factor
        let plan = s.fault.clone();
        s.apply_fault(&plan, &ts);
        assert_eq!(s.capacity_factor, degraded);
    }

    #[test]
    fn cost_tables_deterministic_and_batch_monotone() {
        let ts = vec![tiny_tenant()];
        let a = Shard::new(0, ShardSpec::Gemmini, &ts, 8);
        let b = Shard::new(0, ShardSpec::Gemmini, &ts, 8);
        assert_eq!(a.cost_table(), b.cost_table());
        assert!(!a.cost_table().is_empty());
        // a bigger batch can only cost more in total...
        let c1 = a.healthy_decode_cost(0, 32, 1);
        let c8 = a.healthy_decode_cost(0, 32, 8);
        assert!(c8 >= c1, "{c8} vs {c1}");
        // ...but less per sequence (the point of batching) on the
        // launch-bound GPU
        let g = Shard::new(1, ShardSpec::Gpu, &ts, 8);
        let g1 = g.healthy_decode_cost(0, 32, 1);
        let g8 = g.healthy_decode_cost(0, 32, 8);
        assert!(g8 < 8 * g1, "batching must amortize launches: {g8} vs 8x{g1}");
    }

    #[test]
    fn fault_scales_picachu_capacity_via_the_ladder() {
        let ts = vec![tiny_tenant()];
        let mut s = Shard::new(0, ShardSpec::picachu(), &ts, 4);
        assert_eq!(s.capacity_factor, 1.0);
        s.apply_fault(&FaultPlan::dead_tile(5), &ts);
        assert!(s.in_service());
        assert!(s.capacity_factor >= 1.0);
        // killing the whole fabric rejects on every rung → out of service
        let mut all_dead = FaultPlan::none();
        for t in 0..16 {
            all_dead = all_dead.with_dead_tile(t);
        }
        s.apply_fault(&all_dead, &ts);
        assert!(!s.in_service());
        // healthy costs never moved
        let fresh = Shard::new(0, ShardSpec::picachu(), &ts, 4);
        assert_eq!(s.cost_table(), fresh.cost_table());
        // and recovery restores full capacity
        s.apply_fault(&FaultPlan::none(), &ts);
        assert_eq!(s.capacity_factor, 1.0);
    }

    #[test]
    fn analytical_shards_lose_alive_fraction() {
        let ts = vec![tiny_tenant()];
        let mut s = Shard::new(0, ShardSpec::Cpu, &ts, 2);
        s.apply_fault(&FaultPlan::dead_tile(0).with_dead_tile(1), &ts);
        assert!((s.capacity_factor - 16.0 / 14.0).abs() < 1e-12);
        let mut plan = FaultPlan::none();
        for t in 0..16 {
            plan = plan.with_dead_tile(t);
        }
        s.apply_fault(&plan, &ts);
        assert!(!s.in_service());
    }

    #[test]
    fn context_beyond_probed_range_stays_deterministic() {
        let ts = vec![tiny_tenant()];
        let s = Shard::new(0, ShardSpec::Tandem, &ts, 2);
        let far = s.healthy_decode_cost(0, 1 << 14, 1);
        assert!(far >= s.healthy_decode_cost(0, 64, 1));
        assert_eq!(far, s.healthy_decode_cost(0, 1 << 14, 1));
    }
}
