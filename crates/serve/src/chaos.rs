//! Seeded chaos schedules: timed mid-run failure for the serving pool.
//!
//! PR 6's `faults` field applies a [`FaultPlan`] as a capacity scaling with
//! drain semantics — the in-flight batch finishes, then the queue rebalances.
//! Real fleets are not that polite: a shard crashes *mid-batch*, comes back
//! minutes later, or spends a window refusing new work while its compile
//! service restarts. This module generates those events as data — a sorted
//! `Vec<ChaosEvent>` that is a pure function of a [`ChaosConfig`] — so a
//! chaos run is exactly as replayable as a clean one (the scheduler's
//! replay and thread-count-invariance contracts extend to chaos unchanged).
//!
//! Four actions cover the failure modes the retry/preemption machinery in
//! `sched` must survive (DESIGN.md §12):
//!
//! * [`ChaosAction::Crash`] — the shard drops out of service *now*; its
//!   in-flight batch is killed (no tokens commit) and every member enters
//!   the retry path.
//! * [`ChaosAction::Degrade`] — a [`FaultPlan`] lands at time t, priced
//!   through [`Shard::apply_fault`](crate::Shard::apply_fault) (the PICACHU
//!   degradation ladder for real shards).
//! * [`ChaosAction::Recover`] — the shard returns to full health.
//! * [`ChaosAction::CompileOutage`] — the shard finishes what it is running
//!   but starts nothing new for a window (a transient compile-service
//!   failure: placement still works from the warm cost table, dispatch
//!   does not).

use picachu_faults::FaultPlan;
use picachu_testkit::TestRng;

/// What a chaos event does to its shard.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosAction {
    /// Immediate out-of-service: the in-flight batch dies with no tokens
    /// committed and its members are retried on surviving shards.
    Crash,
    /// Apply a fault plan at event time (priced like a static fault, but
    /// landing mid-run; queued work re-places, in-flight work drains).
    Degrade(FaultPlan),
    /// Clear all faults and outages: back to full capacity.
    Recover,
    /// Transient compile failure: for `for_ns` the shard completes running
    /// work but cannot start a new batch.
    CompileOutage {
        /// Length of the no-new-work window in ns.
        for_ns: u64,
    },
}

impl ChaosAction {
    /// Short label for logs and bench rows.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosAction::Crash => "crash",
            ChaosAction::Degrade(_) => "degrade",
            ChaosAction::Recover => "recover",
            ChaosAction::CompileOutage { .. } => "compile_outage",
        }
    }
}

/// One timed chaos event against one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosEvent {
    /// When the event fires, in trace time.
    pub at_ns: u64,
    /// Target shard (index into the pool; out-of-range targets are ignored
    /// by the scheduler so a schedule survives pool-size changes).
    pub shard: usize,
    /// What happens.
    pub action: ChaosAction,
}

/// Generator knobs for [`chaos_schedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the event stream (independent of the arrival seed).
    pub seed: u64,
    /// Events are drawn uniformly over `[1, horizon_ns)` — use the expected
    /// span of the arrival trace.
    pub horizon_ns: u64,
    /// Crash/recover pairs to inject.
    pub crashes: usize,
    /// Degrade/recover pairs to inject.
    pub degradations: usize,
    /// Compile-outage windows to inject.
    pub compile_outages: usize,
    /// Mean outage/degradation duration; actual durations are drawn
    /// uniformly from `[mean/2, 2·mean]`.
    pub mean_outage_ns: u64,
    /// Fault plans degradations draw from. A small fixed menu keeps PICACHU
    /// shards on the warm degraded-compile cache instead of recompiling a
    /// novel plan per event; empty menu = no degradations.
    pub plan_menu: Vec<FaultPlan>,
}

impl ChaosConfig {
    /// A schedule of a couple of crashes, degradations and one compile
    /// outage over `horizon_ns`, with outages averaging an eighth of the
    /// horizon.
    pub fn new(seed: u64, horizon_ns: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            horizon_ns,
            crashes: 2,
            degradations: 2,
            compile_outages: 1,
            mean_outage_ns: (horizon_ns / 8).max(1),
            plan_menu: default_plan_menu(),
        }
    }
}

/// The standard degradation menu: one dead PE, one dead link, a two-PE
/// loss, and a seeded mixed plan. Fixed so every degraded PICACHU compile
/// after the first hits the process-wide fault-keyed cache.
pub fn default_plan_menu() -> Vec<FaultPlan> {
    vec![
        FaultPlan::dead_tile(5),
        FaultPlan::dead_link(5, 6),
        FaultPlan::dead_tile(0).with_dead_tile(9),
        FaultPlan::seeded(0xC4A0_5EED, 4, 4),
    ]
}

/// Generates the chaos schedule: a list of [`ChaosEvent`]s sorted by
/// `(at_ns, shard)`, a pure function of `(cfg, n_shards)`. Crashes and
/// degradations are paired with a `Recover` one drawn duration later;
/// overlapping events on one shard are legal and the scheduler must keep
/// its invariants through any interleaving (a recover may land while a
/// later-scheduled crash is still pending — that is the chaos).
pub fn chaos_schedule(cfg: &ChaosConfig, n_shards: usize) -> Vec<ChaosEvent> {
    if n_shards == 0 || cfg.horizon_ns < 2 {
        return Vec::new();
    }
    let mut rng = TestRng::seed_from_u64(cfg.seed ^ 0xC4A0_5C4A_05C4_A05C);
    let mean = cfg.mean_outage_ns.max(2);
    let mut out = Vec::new();
    let draw = |rng: &mut TestRng, out: &mut Vec<ChaosEvent>, action: ChaosAction| {
        let shard = rng.gen_range(0..n_shards);
        let at_ns = rng.gen_range(1..cfg.horizon_ns);
        let dur = rng.gen_range(mean / 2..=mean.saturating_mul(2)).max(1);
        match action {
            ChaosAction::CompileOutage { .. } => {
                out.push(ChaosEvent { at_ns, shard, action: ChaosAction::CompileOutage { for_ns: dur } });
            }
            other => {
                out.push(ChaosEvent { at_ns, shard, action: other });
                out.push(ChaosEvent {
                    at_ns: at_ns.saturating_add(dur),
                    shard,
                    action: ChaosAction::Recover,
                });
            }
        }
    };
    for _ in 0..cfg.crashes {
        draw(&mut rng, &mut out, ChaosAction::Crash);
    }
    if !cfg.plan_menu.is_empty() {
        for _ in 0..cfg.degradations {
            let plan = cfg.plan_menu[rng.gen_range(0..cfg.plan_menu.len())].clone();
            draw(&mut rng, &mut out, ChaosAction::Degrade(plan));
        }
    }
    for _ in 0..cfg.compile_outages {
        draw(&mut rng, &mut out, ChaosAction::CompileOutage { for_ns: 0 });
    }
    // stable sort: same-(t, shard) events keep generation order, so the
    // schedule is deterministic in the config alone
    out.sort_by_key(|e| (e.at_ns, e.shard));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_replay_and_respect_knobs() {
        let cfg = ChaosConfig::new(7, 1_000_000);
        let a = chaos_schedule(&cfg, 4);
        let b = chaos_schedule(&cfg, 4);
        assert_eq!(a, b);
        let c = chaos_schedule(&ChaosConfig { seed: 8, ..cfg.clone() }, 4);
        assert_ne!(a, c, "seed must move the schedule");
        let crashes = a.iter().filter(|e| e.action == ChaosAction::Crash).count();
        let recovers = a.iter().filter(|e| e.action == ChaosAction::Recover).count();
        let outages = a
            .iter()
            .filter(|e| matches!(e.action, ChaosAction::CompileOutage { .. }))
            .count();
        assert_eq!(crashes, cfg.crashes);
        assert_eq!(outages, cfg.compile_outages);
        assert_eq!(recovers, cfg.crashes + cfg.degradations);
        assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns), "sorted by time");
        assert!(a.iter().all(|e| e.shard < 4));
    }

    #[test]
    fn degenerate_configs_yield_empty_schedules() {
        assert!(chaos_schedule(&ChaosConfig::new(1, 1_000), 0).is_empty());
        assert!(chaos_schedule(&ChaosConfig::new(1, 0), 3).is_empty());
        let no_menu =
            ChaosConfig { plan_menu: Vec::new(), crashes: 0, compile_outages: 0, ..ChaosConfig::new(1, 1_000) };
        assert!(chaos_schedule(&no_menu, 3).is_empty());
    }

    #[test]
    fn outage_durations_bounded_by_mean() {
        let cfg = ChaosConfig {
            compile_outages: 32,
            crashes: 0,
            degradations: 0,
            mean_outage_ns: 1_000,
            ..ChaosConfig::new(3, 1_000_000)
        };
        for e in chaos_schedule(&cfg, 2) {
            if let ChaosAction::CompileOutage { for_ns } = e.action {
                assert!((500..=2_000).contains(&for_ns), "{for_ns}");
            }
        }
    }
}
