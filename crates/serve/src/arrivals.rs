//! Seeded arrival traces: who asks for tokens, and when.
//!
//! A serving trace is a pure function of `(pattern, tenants, n_requests,
//! seed)` — every draw comes from one [`TestRng`] stream, so the same
//! config replays the same workload bit for bit (the scheduler's replay
//! invariant starts here). Three load shapes cover the regimes a serving
//! stack must survive: memoryless steady state (Poisson), ON/OFF bursts
//! (the tail-latency stressor), and slow day/night modulation (diurnal).

use picachu_llm::ModelConfig;
use picachu_testkit::TestRng;

/// One tenant of the multi-tenant pool: a model plus its traffic shape and
/// latency contract. Tenants are identified by index into
/// [`ServeConfig::tenants`](crate::ServeConfig).
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// Tenant name for reports/JSON rows.
    pub name: &'static str,
    /// The model this tenant serves.
    pub model: ModelConfig,
    /// Relative share of arrivals (weights are normalized over tenants).
    pub weight: u32,
    /// Prompt length in tokens (prefill work per request).
    pub prompt: usize,
    /// Inclusive range of decode tokens generated after the first.
    pub decode: (usize, usize),
    /// Completion deadline relative to arrival, in ns.
    pub slo_ns: u64,
    /// Priority class: 0 is the most urgent, larger numbers yield first.
    /// Equal-priority tenants schedule FIFO exactly as before priorities
    /// existed; the class only matters to preemption and batch selection
    /// (DESIGN.md §12).
    pub priority: u8,
}

/// One serving request, stamped at generation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Stable id (generation order).
    pub id: u64,
    /// Index into the tenant list.
    pub tenant: usize,
    /// Arrival time in ns.
    pub arrival_ns: u64,
    /// Prompt tokens to prefill.
    pub prompt: usize,
    /// Tokens to decode after the first (0 = prefill-only).
    pub decode: usize,
    /// Completion deadline relative to arrival, in ns.
    pub slo_ns: u64,
}

/// The load shape of a serving trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Memoryless arrivals: exponential gaps with the given mean.
    Poisson {
        /// Mean inter-arrival gap in ns.
        mean_gap_ns: f64,
    },
    /// ON/OFF arrivals: geometric bursts of near back-to-back requests
    /// (gap = mean/8) separated by long idle gaps (4× mean), preserving
    /// the same long-run mean rate as `Poisson` with equal `mean_gap_ns`.
    Bursty {
        /// Long-run mean inter-arrival gap in ns.
        mean_gap_ns: f64,
        /// Mean burst length in requests (geometric, ≥ 1).
        mean_burst: usize,
    },
    /// Day/night load: a Poisson process whose rate swings sinusoidally
    /// between 25% and 175% of the mean over one period.
    Diurnal {
        /// Mean inter-arrival gap in ns (at the average rate).
        mean_gap_ns: f64,
        /// Modulation period in ns.
        period_ns: f64,
    },
}

impl ArrivalPattern {
    /// Short label for bench rows.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalPattern::Poisson { .. } => "poisson",
            ArrivalPattern::Bursty { .. } => "bursty",
            ArrivalPattern::Diurnal { .. } => "diurnal",
        }
    }
}

/// Exponential gap with mean `mean` (inverse-CDF of a uniform draw).
fn exp_gap(rng: &mut TestRng, mean: f64) -> f64 {
    // 1 - u in (0, 1]: avoids ln(0)
    -mean * (1.0 - rng.next_f64()).ln()
}

/// Generates `n` requests under `pattern`, drawing tenant, decode length
/// and inter-arrival gaps from one seeded stream. Arrival times are
/// non-decreasing; ids are assigned in arrival order.
///
/// # Panics
/// Panics when `tenants` is empty or every weight is zero — a serving
/// config without tenants is a harness bug, not a runtime condition.
pub fn arrival_trace(
    pattern: ArrivalPattern,
    tenants: &[Tenant],
    n: usize,
    seed: u64,
) -> Vec<Request> {
    assert!(!tenants.is_empty(), "arrival_trace: no tenants");
    let total_weight: u64 = tenants.iter().map(|t| u64::from(t.weight)).sum();
    assert!(total_weight > 0, "arrival_trace: all tenant weights zero");

    let mut rng = TestRng::seed_from_u64(seed ^ 0x5E2F_AA11_D00D_F00D);
    let mut t_ns = 0.0f64;
    let mut burst_left = 0usize;
    let mut out = Vec::with_capacity(n);
    for id in 0..n as u64 {
        let gap = match pattern {
            ArrivalPattern::Poisson { mean_gap_ns } => exp_gap(&mut rng, mean_gap_ns),
            ArrivalPattern::Bursty { mean_gap_ns, mean_burst } => {
                if burst_left == 0 {
                    // idle gap, then a fresh geometric burst
                    let burst = mean_burst.max(1);
                    burst_left = 1;
                    while burst_left < 64 * burst && !rng.gen_bool(1.0 / burst as f64) {
                        burst_left += 1;
                    }
                    exp_gap(&mut rng, 4.0 * mean_gap_ns)
                } else {
                    exp_gap(&mut rng, mean_gap_ns / 8.0)
                }
            }
            ArrivalPattern::Diurnal { mean_gap_ns, period_ns } => {
                let phase = (t_ns / period_ns.max(1.0)) * std::f64::consts::TAU;
                let rate_scale = 1.0 + 0.75 * phase.sin();
                exp_gap(&mut rng, mean_gap_ns / rate_scale)
            }
        };
        if let ArrivalPattern::Bursty { .. } = pattern {
            burst_left = burst_left.saturating_sub(1);
        }
        t_ns += gap;

        // weighted tenant draw
        let mut pick = rng.gen_range(0..total_weight);
        let mut tenant = 0usize;
        for (i, t) in tenants.iter().enumerate() {
            let w = u64::from(t.weight);
            if pick < w {
                tenant = i;
                break;
            }
            pick -= w;
        }
        let spec = &tenants[tenant];
        let decode = if spec.decode.1 > spec.decode.0 {
            rng.gen_range(spec.decode.0..=spec.decode.1)
        } else {
            spec.decode.0
        };
        out.push(Request {
            id,
            tenant,
            arrival_ns: t_ns as u64,
            prompt: spec.prompt,
            decode,
            slo_ns: spec.slo_ns,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenants() -> Vec<Tenant> {
        vec![
            Tenant {
                name: "chat",
                model: ModelConfig::gpt2(),
                weight: 3,
                prompt: 128,
                decode: (8, 32),
                slo_ns: 1_000_000_000,
                priority: 0,
            },
            Tenant {
                name: "code",
                model: ModelConfig::llama2_7b(),
                weight: 1,
                prompt: 256,
                decode: (16, 16),
                slo_ns: 2_000_000_000,
                priority: 1,
            },
        ]
    }

    #[test]
    fn traces_replay_bit_identically() {
        for pattern in [
            ArrivalPattern::Poisson { mean_gap_ns: 1e6 },
            ArrivalPattern::Bursty { mean_gap_ns: 1e6, mean_burst: 8 },
            ArrivalPattern::Diurnal { mean_gap_ns: 1e6, period_ns: 1e9 },
        ] {
            let a = arrival_trace(pattern, &tenants(), 500, 42);
            let b = arrival_trace(pattern, &tenants(), 500, 42);
            assert_eq!(a, b, "{}", pattern.label());
            let c = arrival_trace(pattern, &tenants(), 500, 43);
            assert_ne!(a, c, "different seed must move {}", pattern.label());
        }
    }

    #[test]
    fn arrivals_sorted_and_well_formed() {
        let ts = tenants();
        let reqs =
            arrival_trace(ArrivalPattern::Bursty { mean_gap_ns: 1e6, mean_burst: 4 }, &ts, 300, 7);
        assert_eq!(reqs.len(), 300);
        for w in reqs.windows(2) {
            assert!(w[0].arrival_ns <= w[1].arrival_ns);
            assert_eq!(w[1].id, w[0].id + 1);
        }
        for r in &reqs {
            let t = &ts[r.tenant];
            assert!(r.decode >= t.decode.0 && r.decode <= t.decode.1);
            assert_eq!(r.prompt, t.prompt);
        }
    }

    #[test]
    fn tenant_weights_respected() {
        let reqs =
            arrival_trace(ArrivalPattern::Poisson { mean_gap_ns: 1e6 }, &tenants(), 2000, 11);
        let heavy = reqs.iter().filter(|r| r.tenant == 0).count();
        // weight 3:1 → about 75%
        assert!((1300..1800).contains(&heavy), "{heavy}");
    }

    #[test]
    fn long_run_rates_roughly_agree_across_patterns() {
        // all three patterns share mean_gap_ns as the long-run mean
        let ts = tenants();
        let horizon = |p| {
            let r = arrival_trace(p, &ts, 4000, 3);
            r.last().map_or(0, |x| x.arrival_ns) as f64
        };
        let pois = horizon(ArrivalPattern::Poisson { mean_gap_ns: 1e6 });
        let burst = horizon(ArrivalPattern::Bursty { mean_gap_ns: 1e6, mean_burst: 16 });
        let diur = horizon(ArrivalPattern::Diurnal { mean_gap_ns: 1e6, period_ns: 5e8 });
        for (name, h) in [("bursty", burst), ("diurnal", diur)] {
            let ratio = h / pois;
            assert!((0.4..2.5).contains(&ratio), "{name}: ratio {ratio}");
        }
    }
}
