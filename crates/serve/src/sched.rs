//! The deterministic discrete-event serving scheduler.
//!
//! One event loop advances simulated time over three event classes —
//! fault injections, batch completions, request arrivals (processed in
//! that order at equal timestamps, then by a stable tie id) — and after
//! *every* event pumps the pool to a work-conserving fixpoint: each
//! in-service shard starts a batch from its own queue if idle, then idle
//! shards with empty queues steal the oldest waiting sequence from the
//! most-backlogged shard. The post-condition (no in-service shard idle
//! while any compatible work waits anywhere) is audited on every event,
//! not assumed.
//!
//! Scheduling policy, in one paragraph: admission control caps
//! admitted-but-incomplete requests at `max_in_flight` (typed
//! `QueueFull` rejection past it; `NoCapacity` when no shard is in
//! service). Placement charges each in-service shard its estimated
//! backlog plus the request's estimated remaining work — both priced from
//! the shard's *measured* cost table (the `estimate_trace` capacity hint)
//! times its fault capacity factor — and picks the minimum, lowest shard
//! id on ties. Batches form FIFO from a shard's queue: all members share
//! one compatibility key `(tenant, phase, shape bucket)`; prefill runs at
//! batch 1, decode packs up to `max_batch` sequences. Completions
//! re-enqueue unfinished sequences at the tail (continuous batching: the
//! next batch re-forms from whatever is queued *now*, new arrivals
//! included). A mid-trace fault re-prices the shard and re-places its
//! queued work; an out-of-service shard drains its in-flight batch, then
//! every surviving sequence is re-placed or — when the whole pool is
//! down — rejected with a typed reason.
//!
//! Everything is a pure function of the [`ServeConfig`] (including its
//! seed): no wall clock, no ambient randomness, no hash-order iteration
//! on any decision path. That is the bit-exact replay invariant, and the
//! thread-determinism regression holds because the only parallelism in
//! reach — kernel compilation inside a PICACHU shard — is itself
//! bit-deterministic in the thread count.

use crate::arrivals::{arrival_trace, ArrivalPattern, Request, Tenant};
use crate::pool::{bucket_log2, Shard, ShardReport, ShardSpec};
use picachu_faults::FaultPlan;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// A fault injection scheduled into the serving trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the plan lands, in ns.
    pub at_ns: u64,
    /// Which shard it hits.
    pub shard: usize,
    /// The plan (empty plan = repair to full health).
    pub plan: FaultPlan,
}

/// Full configuration of one serving run — the replay seed of everything.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Seed for the arrival trace.
    pub seed: u64,
    /// The tenants sharing the pool.
    pub tenants: Vec<Tenant>,
    /// Load shape.
    pub pattern: ArrivalPattern,
    /// Requests to generate.
    pub n_requests: usize,
    /// The accelerator pool.
    pub pool: Vec<ShardSpec>,
    /// Max sequences per decode batch.
    pub max_batch: usize,
    /// Admission cap: max admitted-but-incomplete requests.
    pub max_in_flight: usize,
    /// Mid-trace fault injections.
    pub faults: Vec<FaultEvent>,
    /// Record every batch in [`ServeReport::batch_log`] (tests; costs
    /// memory on long traces).
    pub log_batches: bool,
}

impl ServeConfig {
    /// A minimal config over `pool` with sane defaults (tests/smoke).
    pub fn new(tenants: Vec<Tenant>, pattern: ArrivalPattern, pool: Vec<ShardSpec>) -> ServeConfig {
        ServeConfig {
            seed: 0x5E2F,
            tenants,
            pattern,
            n_requests: 100,
            pool,
            max_batch: 8,
            max_in_flight: 1024,
            faults: Vec::new(),
            log_batches: false,
        }
    }
}

/// Why a request was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Admission control: the pool already holds `max_in_flight` admitted
    /// incomplete requests.
    QueueFull,
    /// No shard is in service (at arrival, or after losing the shard that
    /// held the sequence with no healthy shard to re-place onto).
    NoCapacity,
}

/// Terminal state of a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The request finished all its tokens.
    Completed {
        /// Time to first token: prefill completion, in ns since arrival.
        ttft_ns: u64,
        /// Completion time in absolute ns.
        finish_ns: u64,
        /// Tokens produced (1 prefill token + decode tokens).
        tokens: usize,
        /// Distinct shards that served it, in first-touch order.
        shards: Vec<usize>,
    },
    /// The request was rejected.
    Rejected {
        /// When, in absolute ns.
        at_ns: u64,
        /// Why.
        reason: RejectReason,
        /// Whether it had been admitted first (lost to a pool-wide outage).
        after_admission: bool,
    },
}

/// Per-request completion record — the unit of the determinism and
/// conservation contracts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// Request id (generation order).
    pub id: u64,
    /// Tenant index.
    pub tenant: usize,
    /// Arrival time in ns.
    pub arrival_ns: u64,
    /// Completion deadline relative to arrival.
    pub slo_ns: u64,
    /// How it ended.
    pub outcome: Outcome,
}

/// One executed batch (recorded when [`ServeConfig::log_batches`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRecord {
    /// Shard that ran it.
    pub shard: usize,
    /// Tenant of every member.
    pub tenant: usize,
    /// Prefill or decode.
    pub prefill: bool,
    /// log2 shape bucket of every member.
    pub bucket: u32,
    /// Member request ids.
    pub members: Vec<u64>,
    /// Issue time in ns.
    pub start_ns: u64,
    /// Step cost in ns (capacity-scaled).
    pub cost_ns: u64,
}

/// Machine-checked counters for the four scheduler invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Audit {
    /// Requests generated by the arrival trace.
    pub generated: u64,
    /// Requests admitted past admission control.
    pub admitted: u64,
    /// Admitted requests that completed.
    pub completed: u64,
    /// Requests rejected at admission.
    pub rejected_at_admission: u64,
    /// Admitted requests rejected later (pool-wide outage).
    pub rejected_after_admission: u64,
    /// Times an in-service shard sat idle while compatible work waited
    /// (work-conservation invariant; must stay 0).
    pub work_conservation_violations: u64,
    /// Batches whose members mixed tenants/phases/buckets (batching
    /// legality; must stay 0).
    pub batch_legality_violations: u64,
    /// Requests driven to a terminal state twice (conservation; must stay 0).
    pub double_terminal_violations: u64,
    /// Requests left non-terminal when the event queue drained (must stay 0).
    pub stranded: u64,
}

impl Audit {
    /// Checks the conservation arithmetic and the violation counters,
    /// returning the first broken invariant as text.
    ///
    /// # Errors
    /// A human-readable description of the violated invariant.
    pub fn check(&self) -> Result<(), String> {
        if self.generated != self.admitted + self.rejected_at_admission {
            return Err(format!(
                "conservation: generated {} != admitted {} + rejected-at-admission {}",
                self.generated, self.admitted, self.rejected_at_admission
            ));
        }
        if self.admitted != self.completed + self.rejected_after_admission {
            return Err(format!(
                "conservation: admitted {} != completed {} + rejected-after {}",
                self.admitted, self.completed, self.rejected_after_admission
            ));
        }
        if self.stranded != 0 {
            return Err(format!("{} requests stranded non-terminal", self.stranded));
        }
        if self.double_terminal_violations != 0 {
            return Err(format!(
                "{} requests reached a terminal state twice",
                self.double_terminal_violations
            ));
        }
        if self.work_conservation_violations != 0 {
            return Err(format!(
                "{} work-conservation violations (idle shard with waiting work)",
                self.work_conservation_violations
            ));
        }
        if self.batch_legality_violations != 0 {
            return Err(format!(
                "{} illegal batches (mixed tenant/phase/bucket)",
                self.batch_legality_violations
            ));
        }
        Ok(())
    }
}

/// Everything one serving run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Per-request records, indexed by request id.
    pub records: Vec<RequestRecord>,
    /// Per-shard reports.
    pub shards: Vec<ShardReport>,
    /// Invariant counters.
    pub audit: Audit,
    /// Time of the last event, in ns.
    pub horizon_ns: u64,
    /// Batch log (empty unless [`ServeConfig::log_batches`]).
    pub batch_log: Vec<BatchRecord>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeqPhase {
    Prefill,
    Decode,
}

/// Scheduler-side state of one admitted request.
struct SeqState {
    req: Request,
    phase: SeqPhase,
    /// KV-cache length (tokens) once decoding.
    context: usize,
    /// Decode tokens produced so far.
    produced: usize,
    /// Current shard assignment.
    shard: usize,
    /// Shards that ever ran a step of this request, first-touch order.
    shards_touched: Vec<usize>,
    /// Estimated remaining work charged to the current shard's backlog.
    charged_ns: u64,
    ttft_ns: Option<u64>,
    outcome: Option<Outcome>,
}

impl SeqState {
    fn bucket(&self) -> u32 {
        match self.phase {
            SeqPhase::Prefill => bucket_log2(self.req.prompt),
            SeqPhase::Decode => bucket_log2(self.context),
        }
    }
}

/// Event classes in processing order at equal timestamps.
const CLASS_FAULT: u8 = 0;
const CLASS_COMPLETION: u8 = 1;
const CLASS_ARRIVAL: u8 = 2;

/// A heap event: `(time, class, tie, payload)` — fully ordered, so the
/// pop sequence is a pure function of the pushes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Ev {
    t: u64,
    class: u8,
    tie: u64,
    payload: u64,
}

struct InFlight {
    members: Vec<usize>,
    cost_ns: u64,
}

struct ShardState {
    shard: Shard,
    queue: VecDeque<usize>,
    busy: Option<InFlight>,
    est_backlog_ns: u64,
    batches: u64,
    steps: u64,
    busy_ns: u64,
}

struct Sim<'a> {
    cfg: &'a ServeConfig,
    shards: Vec<ShardState>,
    seqs: Vec<SeqState>,
    events: BinaryHeap<Reverse<Ev>>,
    audit: Audit,
    batch_log: Vec<BatchRecord>,
    in_flight_requests: u64,
    horizon_ns: u64,
    rejected_at_arrival: Vec<Option<RequestRecord>>,
}

/// Runs one serving trace to completion. Pure in `cfg`.
pub fn run(cfg: &ServeConfig) -> ServeReport {
    let requests = arrival_trace(cfg.pattern, &cfg.tenants, cfg.n_requests, cfg.seed);
    let shards: Vec<ShardState> = cfg
        .pool
        .iter()
        .enumerate()
        .map(|(id, spec)| ShardState {
            shard: Shard::new(id, spec.clone(), &cfg.tenants, cfg.max_batch),
            queue: VecDeque::new(),
            busy: None,
            est_backlog_ns: 0,
            batches: 0,
            steps: 0,
            busy_ns: 0,
        })
        .collect();

    let mut sim = Sim {
        cfg,
        shards,
        seqs: Vec::new(),
        events: BinaryHeap::new(),
        audit: Audit { generated: requests.len() as u64, ..Audit::default() },
        batch_log: Vec::new(),
        in_flight_requests: 0,
        horizon_ns: 0,
        rejected_at_arrival: vec![None; requests.len()],
    };

    for (i, f) in cfg.faults.iter().enumerate() {
        sim.events.push(Reverse(Ev {
            t: f.at_ns,
            class: CLASS_FAULT,
            tie: i as u64,
            payload: i as u64,
        }));
    }
    let mut records: Vec<Option<RequestRecord>> = vec![None; requests.len()];
    for r in &requests {
        sim.events.push(Reverse(Ev {
            t: r.arrival_ns,
            class: CLASS_ARRIVAL,
            tie: r.id,
            payload: r.id,
        }));
    }

    while let Some(Reverse(ev)) = sim.events.pop() {
        sim.horizon_ns = sim.horizon_ns.max(ev.t);
        match ev.class {
            CLASS_FAULT => sim.on_fault(ev.t, ev.payload as usize),
            CLASS_COMPLETION => sim.on_completion(ev.t, ev.payload as usize),
            CLASS_ARRIVAL => sim.on_arrival(ev.t, &requests[ev.payload as usize]),
            _ => unreachable!("unknown event class"),
        }
        sim.pump(ev.t);
    }

    // conservation: everything admitted must have reached exactly one
    // terminal state by drain time
    for s in &sim.seqs {
        match &s.outcome {
            Some(o) => {
                records[s.req.id as usize] = Some(RequestRecord {
                    id: s.req.id,
                    tenant: s.req.tenant,
                    arrival_ns: s.req.arrival_ns,
                    slo_ns: s.req.slo_ns,
                    outcome: o.clone(),
                });
            }
            None => sim.audit.stranded += 1,
        }
    }
    // arrival-time rejections were recorded directly
    for (i, r) in sim.rejected_at_arrival.into_iter().enumerate() {
        if let Some(rec) = r {
            records[i] = Some(rec);
        }
    }
    let records: Vec<RequestRecord> = records.into_iter().flatten().collect();

    let shards = sim
        .shards
        .iter()
        .map(|s| ShardReport {
            shard: s.shard.id,
            backend: s.shard.backend_name.clone(),
            batches: s.batches,
            steps: s.steps,
            busy_ns: s.busy_ns,
            cost_table: s.shard.cost_table(),
            final_capacity_factor: s.shard.capacity_factor,
        })
        .collect();

    ServeReport {
        records,
        shards,
        audit: sim.audit,
        horizon_ns: sim.horizon_ns,
        batch_log: sim.batch_log,
    }
}

impl Sim<'_> {
    /// Estimated remaining work of `seq` on shard `sid`, capacity-scaled:
    /// pending prefill plus remaining tokens at the amortized max-batch
    /// decode rate.
    fn estimate_remaining(&self, seq: &SeqState, sid: usize) -> u64 {
        let sh = &self.shards[sid].shard;
        let t = seq.req.tenant;
        let mut ns = 0u64;
        if seq.phase == SeqPhase::Prefill {
            ns += sh.healthy_prefill_cost(t, seq.req.prompt);
        }
        let remaining = seq.req.decode.saturating_sub(seq.produced) as u64;
        if remaining > 0 {
            let ctx = if seq.phase == SeqPhase::Prefill { seq.req.prompt } else { seq.context };
            let b = self.cfg.max_batch.max(1);
            let step = sh.healthy_decode_cost(t, ctx, b);
            ns += (step / b as u64).max(1).saturating_mul(remaining);
        }
        sh.scaled(ns.max(1))
    }

    /// Picks the in-service shard minimizing estimated completion
    /// (backlog + this request's remaining work); ties go to the lowest
    /// shard id. `None` when the whole pool is out of service.
    fn place(&self, seq: &SeqState) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (sid, s) in self.shards.iter().enumerate() {
            if !s.shard.in_service() {
                continue;
            }
            let score = s.est_backlog_ns.saturating_add(self.estimate_remaining(seq, sid));
            if best.is_none_or(|(b, _)| score < b) {
                best = Some((score, sid));
            }
        }
        best.map(|(_, sid)| sid)
    }

    /// Assigns `seq_idx` to `sid`, charging the backlog estimate.
    fn assign(&mut self, seq_idx: usize, sid: usize) {
        let est = self.estimate_remaining(&self.seqs[seq_idx], sid);
        let seq = &mut self.seqs[seq_idx];
        seq.shard = sid;
        seq.charged_ns = est;
        let s = &mut self.shards[sid];
        s.est_backlog_ns = s.est_backlog_ns.saturating_add(est);
        s.queue.push_back(seq_idx);
    }

    /// Removes `seq_idx`'s backlog charge from its current shard.
    fn discharge(&mut self, seq_idx: usize) {
        let (sid, charged) = {
            let seq = &self.seqs[seq_idx];
            (seq.shard, seq.charged_ns)
        };
        let s = &mut self.shards[sid];
        s.est_backlog_ns = s.est_backlog_ns.saturating_sub(charged);
        self.seqs[seq_idx].charged_ns = 0;
    }

    fn terminal(&mut self, seq_idx: usize, outcome: Outcome) {
        let seq = &mut self.seqs[seq_idx];
        if seq.outcome.is_some() {
            self.audit.double_terminal_violations += 1;
            return;
        }
        match &outcome {
            Outcome::Completed { .. } => self.audit.completed += 1,
            Outcome::Rejected { .. } => self.audit.rejected_after_admission += 1,
        }
        seq.outcome = Some(outcome);
        self.in_flight_requests -= 1;
    }

    fn on_arrival(&mut self, now: u64, req: &Request) {
        if self.in_flight_requests >= self.cfg.max_in_flight as u64 {
            self.reject_at_arrival(now, req, RejectReason::QueueFull);
            return;
        }
        if !self.shards.iter().any(|s| s.shard.in_service()) {
            self.reject_at_arrival(now, req, RejectReason::NoCapacity);
            return;
        }
        self.audit.admitted += 1;
        self.in_flight_requests += 1;
        let seq_idx = self.seqs.len();
        self.seqs.push(SeqState {
            req: *req,
            phase: SeqPhase::Prefill,
            context: 0,
            produced: 0,
            shard: usize::MAX,
            shards_touched: Vec::new(),
            charged_ns: 0,
            ttft_ns: None,
            outcome: None,
        });
        // admission passed and some shard is in service, so place() holds
        if let Some(sid) = self.place(&self.seqs[seq_idx]) {
            self.assign(seq_idx, sid);
        }
    }

    fn on_completion(&mut self, now: u64, sid: usize) {
        let fl = match self.shards[sid].busy.take() {
            Some(fl) => fl,
            None => return, // stale completion (cannot happen; defensive)
        };
        {
            let s = &mut self.shards[sid];
            s.busy_ns += fl.cost_ns;
            s.batches += 1;
            s.steps += fl.members.len() as u64;
        }
        let in_service = self.shards[sid].shard.in_service();
        for &seq_idx in &fl.members {
            let done = {
                let seq = &mut self.seqs[seq_idx];
                if !seq.shards_touched.contains(&sid) {
                    seq.shards_touched.push(sid);
                }
                match seq.phase {
                    SeqPhase::Prefill => {
                        seq.phase = SeqPhase::Decode;
                        seq.context = seq.req.prompt;
                        seq.ttft_ns = Some(now.saturating_sub(seq.req.arrival_ns));
                        seq.req.decode == 0
                    }
                    SeqPhase::Decode => {
                        seq.produced += 1;
                        seq.context += 1;
                        seq.produced >= seq.req.decode
                    }
                }
            };
            if done {
                let seq = &self.seqs[seq_idx];
                let outcome = Outcome::Completed {
                    ttft_ns: seq.ttft_ns.unwrap_or(0),
                    finish_ns: now,
                    tokens: 1 + seq.req.decode,
                    shards: seq.shards_touched.clone(),
                };
                self.discharge(seq_idx);
                self.terminal(seq_idx, outcome);
            } else if in_service {
                // continuous batching: back to this shard's queue tail
                self.shards[sid].queue.push_back(seq_idx);
            } else {
                // the shard died under this batch: re-place or reject
                self.discharge(seq_idx);
                match self.place(&self.seqs[seq_idx]) {
                    Some(new_sid) => self.assign(seq_idx, new_sid),
                    None => self.terminal(
                        seq_idx,
                        Outcome::Rejected {
                            at_ns: now,
                            reason: RejectReason::NoCapacity,
                            after_admission: true,
                        },
                    ),
                }
            }
        }
    }

    fn on_fault(&mut self, now: u64, fault_idx: usize) {
        let f = &self.cfg.faults[fault_idx];
        if f.shard >= self.shards.len() {
            return;
        }
        let tenants = &self.cfg.tenants;
        self.shards[f.shard].shard.apply_fault(&f.plan, tenants);
        // re-place everything queued on the touched shard: degraded
        // capacity re-prices it, out-of-service forbids it
        let displaced: Vec<usize> = self.shards[f.shard].queue.drain(..).collect();
        for seq_idx in displaced {
            self.discharge(seq_idx);
            match self.place(&self.seqs[seq_idx]) {
                Some(sid) => self.assign(seq_idx, sid),
                None => self.terminal(
                    seq_idx,
                    Outcome::Rejected {
                        at_ns: now,
                        reason: RejectReason::NoCapacity,
                        after_admission: true,
                    },
                ),
            }
        }
    }

    /// Starts a batch on `sid` from its queue front's compatibility key.
    fn start_batch(&mut self, sid: usize, now: u64) {
        let (tenant, phase, bucket) = {
            let front = match self.shards[sid].queue.front() {
                Some(&i) => &self.seqs[i],
                None => return,
            };
            (front.req.tenant, front.phase, front.bucket())
        };
        let cap = if phase == SeqPhase::Prefill { 1 } else { self.cfg.max_batch.max(1) };
        let mut members = Vec::with_capacity(cap);
        let mut kept = VecDeque::new();
        while let Some(i) = self.shards[sid].queue.pop_front() {
            let s = &self.seqs[i];
            if members.len() < cap
                && s.req.tenant == tenant
                && s.phase == phase
                && s.bucket() == bucket
            {
                members.push(i);
            } else {
                kept.push_back(i);
            }
        }
        self.shards[sid].queue = kept;

        // batching legality audit: every member shares the key
        for &i in &members {
            let s = &self.seqs[i];
            if s.req.tenant != tenant || s.phase != phase || s.bucket() != bucket {
                self.audit.batch_legality_violations += 1;
            }
        }

        let healthy = match phase {
            SeqPhase::Prefill => {
                self.shards[sid].shard.healthy_prefill_cost(tenant, 1usize << bucket)
            }
            SeqPhase::Decode => self.shards[sid].shard.healthy_decode_cost(
                tenant,
                1usize << bucket,
                members.len(),
            ),
        };
        let cost = self.shards[sid].shard.scaled(healthy);
        let done_at = now.saturating_add(cost);
        if self.cfg.log_batches {
            self.batch_log.push(BatchRecord {
                shard: sid,
                tenant,
                prefill: phase == SeqPhase::Prefill,
                bucket,
                members: members.iter().map(|&i| self.seqs[i].req.id).collect(),
                start_ns: now,
                cost_ns: cost,
            });
        }
        self.shards[sid].busy = Some(InFlight { members, cost_ns: cost });
        self.events.push(Reverse(Ev {
            t: done_at,
            class: CLASS_COMPLETION,
            tie: sid as u64,
            payload: sid as u64,
        }));
    }

    /// Drives the pool to the work-conserving fixpoint, then audits it.
    fn pump(&mut self, now: u64) {
        // 1. every idle in-service shard starts from its own queue
        for sid in 0..self.shards.len() {
            if self.shards[sid].shard.in_service()
                && self.shards[sid].busy.is_none()
                && !self.shards[sid].queue.is_empty()
            {
                self.start_batch(sid, now);
            }
        }
        // 2. idle shards with empty queues steal the oldest waiting
        //    sequence from the most-backlogged queue, to fixpoint
        loop {
            let thief = (0..self.shards.len()).find(|&sid| {
                self.shards[sid].shard.in_service()
                    && self.shards[sid].busy.is_none()
                    && self.shards[sid].queue.is_empty()
            });
            let thief = match thief {
                Some(t) => t,
                None => break,
            };
            let donor = (0..self.shards.len())
                .filter(|&sid| sid != thief && !self.shards[sid].queue.is_empty())
                .max_by_key(|&sid| (self.shards[sid].queue.len(), Reverse(sid)));
            let donor = match donor {
                Some(d) => d,
                None => break,
            };
            let seq_idx = match self.shards[donor].queue.pop_front() {
                Some(i) => i,
                None => break,
            };
            self.discharge(seq_idx);
            let est = self.estimate_remaining(&self.seqs[seq_idx], thief);
            self.seqs[seq_idx].shard = thief;
            self.seqs[seq_idx].charged_ns = est;
            self.shards[thief].est_backlog_ns =
                self.shards[thief].est_backlog_ns.saturating_add(est);
            self.shards[thief].queue.push_back(seq_idx);
            self.start_batch(thief, now);
        }
        // 3. audit: no in-service shard may now be idle while work waits
        let waiting: usize = self.shards.iter().map(|s| s.queue.len()).sum();
        if waiting > 0 {
            for s in &self.shards {
                if s.shard.in_service() && s.busy.is_none() {
                    self.audit.work_conservation_violations += 1;
                }
            }
        }
    }

    fn reject_at_arrival(&mut self, now: u64, req: &Request, reason: RejectReason) {
        self.audit.rejected_at_admission += 1;
        self.rejected_at_arrival[req.id as usize] = Some(RequestRecord {
            id: req.id,
            tenant: req.tenant,
            arrival_ns: req.arrival_ns,
            slo_ns: req.slo_ns,
            outcome: Outcome::Rejected { at_ns: now, reason, after_admission: false },
        });
    }
}
