//! The deterministic discrete-event serving scheduler.
//!
//! One event loop advances simulated time over five event classes —
//! fault/chaos injections, compile-outage expiries, batch completions,
//! retry re-dispatches, request arrivals (processed in that order at equal
//! timestamps, then by a stable tie id) — and after *every* event pumps the
//! pool to a work-conserving fixpoint: each startable shard begins a batch
//! from its own queue if idle, then idle shards with empty queues steal the
//! oldest waiting sequence from the most-backlogged shard. The
//! post-condition (no startable shard idle while any compatible work waits
//! anywhere) is audited on every event, not assumed.
//!
//! Scheduling policy, in one paragraph: admission control caps
//! admitted-but-incomplete requests at `max_in_flight` (typed `QueueFull`
//! rejection past it; `NoCapacity` when no shard is in service; `Shed` when
//! the best achievable backlog-estimated latency exceeds
//! `shed_deadline_factor × slo`). Placement charges each in-service shard
//! its estimated backlog plus the request's estimated remaining work — both
//! priced from the shard's *measured* cost table times its fault capacity
//! factor — and picks the minimum, lowest shard id on ties. Batches form
//! from a shard's queue around the most urgent waiting sequence (lowest
//! priority class, FIFO within a class — identical to plain FIFO when every
//! tenant shares one class): all members share one compatibility key
//! `(tenant, phase, shape bucket)`; prefill runs at batch 1, decode packs
//! up to `max_batch`. Completions re-enqueue unfinished sequences at the
//! tail (continuous batching).
//!
//! Failure semantics come in two flavors. The legacy [`FaultEvent`] list
//! keeps PR 6's *drain* semantics — the plan re-prices the shard, queued
//! work re-places, the in-flight batch finishes even on a now-dead shard —
//! bit-identical to before chaos existed. [`ChaosEvent`]s are the violent
//! path (DESIGN.md §12): a `Crash` kills the in-flight batch *mid-step*
//! (none of its tokens commit — replay idempotence is the accounting rule,
//! not an aspiration) and every member enters the bounded-backoff retry
//! ladder ([`RetryPolicy`]); exhausting the budget yields a typed
//! [`Outcome::Abandoned`]. A `CompileOutage` lets running work finish but
//! blocks new batches until the window expires. The extended audit proves
//! conservation under all of it: every admitted request reaches exactly one
//! terminal state, and `tokens_committed == tokens_reported` — a token is
//! counted exactly when its batch completes, never when a batch dies.
//!
//! When `preempt` is on, a running low-priority *decode* batch is preempted
//! (its members return to the queue head; the partial step never commits)
//! as soon as a strictly-higher-priority prefill would otherwise miss a
//! TTFT bound of `slo / 4`. Urgency is resolved through an *exact*
//! per-shard index — a `BTreeMap` counting queued sequences per
//! `(priority class, phase)` bucket, maintained at every queue mutation —
//! so a TTFT-threatened prefill is found no matter how deep it sits in the
//! queue (the old implementation scanned only the first 64 positions and
//! went blind past them).
//!
//! Everything is a pure function of the [`ServeConfig`] (including its
//! seed): no wall clock, no ambient randomness, no hash-order iteration on
//! any decision path. That is the bit-exact replay invariant, and the
//! thread-determinism regression holds because the only parallelism in
//! reach — kernel compilation inside a PICACHU shard — is itself
//! bit-deterministic in the thread count.

use crate::arrivals::{arrival_trace, ArrivalPattern, Request, Tenant};
use crate::chaos::{ChaosAction, ChaosEvent};
use crate::pool::{bucket_log2, Shard, ShardReport, ShardSpec};
use picachu_faults::{FaultPlan, RetryPolicy};
use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// A fault injection scheduled into the serving trace, with PR 6 *drain*
/// semantics: the in-flight batch completes even if the plan takes the
/// shard out of service. For crash-style mid-batch failure use
/// [`ServeConfig::chaos`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the plan lands, in ns.
    pub at_ns: u64,
    /// Which shard it hits.
    pub shard: usize,
    /// The plan (empty plan = repair to full health).
    pub plan: FaultPlan,
}


/// Fraction of a request's SLO budgeted for time-to-first-token by the
/// preemption rule: a queued prefill whose wait would push TTFT past
/// `slo / 4` may preempt a strictly-lower-priority decode batch.
pub const PREEMPT_TTFT_DIVISOR: u64 = 4;

/// Full configuration of one serving run — the replay seed of everything.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Seed for the arrival trace.
    pub seed: u64,
    /// The tenants sharing the pool.
    pub tenants: Vec<Tenant>,
    /// Load shape.
    pub pattern: ArrivalPattern,
    /// Requests to generate.
    pub n_requests: usize,
    /// The accelerator pool.
    pub pool: Vec<ShardSpec>,
    /// Max sequences per decode batch.
    pub max_batch: usize,
    /// Admission cap: max admitted-but-incomplete requests.
    pub max_in_flight: usize,
    /// Mid-trace fault injections (drain semantics).
    pub faults: Vec<FaultEvent>,
    /// Mid-trace chaos injections (crash/recover/outage semantics); build
    /// with [`chaos_schedule`](crate::chaos_schedule) or by hand.
    pub chaos: Vec<ChaosEvent>,
    /// Retry budget and backoff for requests whose shard crashed under
    /// them. Shares the audited [`RetryPolicy`] implementation with the
    /// DMA channel's hardware retry ladder.
    pub retry: RetryPolicy,
    /// Allow high-priority prefills to preempt lower-priority decode
    /// batches (off = strict FIFO-within-priority, no preemption).
    pub preempt: bool,
    /// Load shedding: reject at admission (typed [`RejectReason::Shed`])
    /// when the best shard's backlog-estimated completion exceeds
    /// `factor × slo_ns`. `None` disables shedding.
    pub shed_deadline_factor: Option<f64>,
    /// Record every batch in [`ServeReport::batch_log`] (tests; costs
    /// memory on long traces).
    pub log_batches: bool,
}

impl ServeConfig {
    /// A minimal config over `pool` with sane defaults (tests/smoke):
    /// no chaos, no preemption, no shedding, a 3-retry / 0.5 ms-base
    /// backoff ladder.
    pub fn new(tenants: Vec<Tenant>, pattern: ArrivalPattern, pool: Vec<ShardSpec>) -> ServeConfig {
        ServeConfig {
            seed: 0x5E2F,
            tenants,
            pattern,
            n_requests: 100,
            pool,
            max_batch: 8,
            max_in_flight: 1024,
            faults: Vec::new(),
            chaos: Vec::new(),
            retry: RetryPolicy::new(3, 500_000),
            preempt: false,
            shed_deadline_factor: None,
            log_batches: false,
        }
    }
}

/// Why a request was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Admission control: the pool already holds `max_in_flight` admitted
    /// incomplete requests.
    QueueFull,
    /// No shard is in service (at arrival, or after losing the shard that
    /// held the sequence with no healthy shard to re-place onto).
    NoCapacity,
    /// Load shedding: even the best shard's backlog-estimated completion
    /// would exceed the deadline bound, so admitting the request would
    /// only add a guaranteed SLO miss to the backlog.
    Shed,
}

/// Terminal state of a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The request finished all its tokens.
    Completed {
        /// Time to first token: prefill completion, in ns since arrival.
        ttft_ns: u64,
        /// Completion time in absolute ns.
        finish_ns: u64,
        /// Tokens produced (1 prefill token + decode tokens).
        tokens: usize,
        /// Distinct shards that served it, in first-touch order.
        shards: Vec<usize>,
        /// Crash-retry re-dispatches this request survived (0 = clean run).
        retries: u32,
    },
    /// The request was rejected.
    Rejected {
        /// When, in absolute ns.
        at_ns: u64,
        /// Why.
        reason: RejectReason,
        /// Whether it had been admitted first (lost to a pool-wide outage).
        after_admission: bool,
    },
    /// The request exhausted its crash-retry budget and was dropped.
    Abandoned {
        /// When the budget ran out, in absolute ns.
        at_ns: u64,
        /// Retry attempts issued before giving up (= the full budget).
        attempts: u32,
    },
}

/// Per-request completion record — the unit of the determinism and
/// conservation contracts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// Request id (generation order).
    pub id: u64,
    /// Tenant index.
    pub tenant: usize,
    /// Arrival time in ns.
    pub arrival_ns: u64,
    /// Completion deadline relative to arrival.
    pub slo_ns: u64,
    /// How it ended.
    pub outcome: Outcome,
}

/// One executed batch (recorded when [`ServeConfig::log_batches`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRecord {
    /// Shard that ran it.
    pub shard: usize,
    /// Tenant of every member.
    pub tenant: usize,
    /// Prefill or decode.
    pub prefill: bool,
    /// log2 shape bucket of every member.
    pub bucket: u32,
    /// Member request ids.
    pub members: Vec<u64>,
    /// Issue time in ns.
    pub start_ns: u64,
    /// Step cost in ns (capacity-scaled).
    pub cost_ns: u64,
}

/// Machine-checked counters for the scheduler invariants (PR 6's four plus
/// conservation-under-failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Audit {
    /// Requests generated by the arrival trace.
    pub generated: u64,
    /// Requests admitted past admission control.
    pub admitted: u64,
    /// Admitted requests that completed.
    pub completed: u64,
    /// Requests rejected at admission (includes shed).
    pub rejected_at_admission: u64,
    /// Admitted requests rejected later (pool-wide outage).
    pub rejected_after_admission: u64,
    /// Requests rejected by load shedding (subset of
    /// `rejected_at_admission`).
    pub shed: u64,
    /// Admitted requests dropped after exhausting the retry budget.
    pub abandoned: u64,
    /// Retry re-dispatches scheduled (crash recovery).
    pub retries: u64,
    /// Decode batches preempted for a higher-priority prefill.
    pub preemptions: u64,
    /// In-flight batches killed by chaos crashes.
    pub killed_batches: u64,
    /// Tokens committed by completed batch steps: one per member at
    /// prefill completion, one per member per decode step. Killed and
    /// preempted batches commit nothing — that is replay idempotence.
    pub tokens_committed: u64,
    /// Tokens the per-request terminal states account for (prefill token
    /// if TTFT was ever set, plus decode tokens produced). Must equal
    /// `tokens_committed`: the conservation-under-failure invariant.
    pub tokens_reported: u64,
    /// Times a startable shard sat idle while compatible work waited
    /// (work-conservation invariant; must stay 0).
    pub work_conservation_violations: u64,
    /// Batches whose members mixed tenants/phases/buckets (batching
    /// legality; must stay 0).
    pub batch_legality_violations: u64,
    /// Requests driven to a terminal state twice (conservation; must stay 0).
    pub double_terminal_violations: u64,
    /// Requests left non-terminal when the event queue drained (must stay 0).
    pub stranded: u64,
}

impl Audit {
    /// Checks the conservation arithmetic and the violation counters,
    /// returning the first broken invariant as text.
    ///
    /// # Errors
    /// A human-readable description of the violated invariant.
    pub fn check(&self) -> Result<(), String> {
        if self.generated != self.admitted + self.rejected_at_admission {
            return Err(format!(
                "conservation: generated {} != admitted {} + rejected-at-admission {}",
                self.generated, self.admitted, self.rejected_at_admission
            ));
        }
        if self.admitted != self.completed + self.rejected_after_admission + self.abandoned {
            return Err(format!(
                "conservation: admitted {} != completed {} + rejected-after {} + abandoned {}",
                self.admitted, self.completed, self.rejected_after_admission, self.abandoned
            ));
        }
        if self.shed > self.rejected_at_admission {
            return Err(format!(
                "shed {} exceeds rejected-at-admission {}",
                self.shed, self.rejected_at_admission
            ));
        }
        if self.tokens_committed != self.tokens_reported {
            return Err(format!(
                "failure conservation: {} tokens committed by batches but {} reported \
                 by terminal states (lost or double-counted work)",
                self.tokens_committed, self.tokens_reported
            ));
        }
        if self.stranded != 0 {
            return Err(format!("{} requests stranded non-terminal", self.stranded));
        }
        if self.double_terminal_violations != 0 {
            return Err(format!(
                "{} requests reached a terminal state twice",
                self.double_terminal_violations
            ));
        }
        if self.work_conservation_violations != 0 {
            return Err(format!(
                "{} work-conservation violations (idle shard with waiting work)",
                self.work_conservation_violations
            ));
        }
        if self.batch_legality_violations != 0 {
            return Err(format!(
                "{} illegal batches (mixed tenant/phase/bucket)",
                self.batch_legality_violations
            ));
        }
        Ok(())
    }
}

/// Everything one serving run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Per-request records, indexed by request id.
    pub records: Vec<RequestRecord>,
    /// Per-shard reports.
    pub shards: Vec<ShardReport>,
    /// Invariant counters.
    pub audit: Audit,
    /// Time of the last event, in ns.
    pub horizon_ns: u64,
    /// Events processed by the loop (arrivals, completions, faults,
    /// retries, resumes) — the soak harness's scale measure.
    pub events: u64,
    /// Batch log (empty unless [`ServeConfig::log_batches`]).
    pub batch_log: Vec<BatchRecord>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeqPhase {
    Prefill,
    Decode,
}

/// Scheduler-side state of one admitted request.
struct SeqState {
    req: Request,
    phase: SeqPhase,
    /// KV-cache length (tokens) once decoding.
    context: usize,
    /// Decode tokens produced so far.
    produced: usize,
    /// Current shard assignment.
    shard: usize,
    /// Shards that ever ran a step of this request, first-touch order.
    shards_touched: Vec<usize>,
    /// Estimated remaining work charged to the current shard's backlog.
    charged_ns: u64,
    /// Crash-retry re-dispatches issued so far.
    attempts: u32,
    ttft_ns: Option<u64>,
    outcome: Option<Outcome>,
}

impl SeqState {
    fn bucket(&self) -> u32 {
        match self.phase {
            SeqPhase::Prefill => bucket_log2(self.req.prompt),
            SeqPhase::Decode => bucket_log2(self.context),
        }
    }
}

/// Event classes in processing order at equal timestamps. Faults strike
/// before anything else sees the instant; resumes beat completions so a
/// shard unblocked at t can be audited as startable at t; completions beat
/// retries and arrivals so freed capacity is visible to them; retries beat
/// arrivals so recovered work keeps its seniority.
const CLASS_FAULT: u8 = 0;
const CLASS_RESUME: u8 = 1;
const CLASS_COMPLETION: u8 = 2;
const CLASS_RETRY: u8 = 3;
const CLASS_ARRIVAL: u8 = 4;

/// A heap event: `(time, class, tie, payload)` — fully ordered, so the
/// pop sequence is a pure function of the pushes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Ev {
    t: u64,
    class: u8,
    tie: u64,
    payload: u64,
}

struct InFlight {
    /// Unique id; a completion event whose payload doesn't match the
    /// occupant is stale (its batch was killed or preempted) and ignored —
    /// the only way to "cancel" an event already in the heap.
    batch_id: u64,
    members: Vec<usize>,
    cost_ns: u64,
    start_ns: u64,
    done_at: u64,
    tenant: usize,
    prefill: bool,
}

struct ShardState {
    shard: Shard,
    queue: VecDeque<usize>,
    /// Exact urgency index over `queue`: `(priority class, is_prefill)` →
    /// number of queued sequences in that bucket. Zero-count entries are
    /// removed, so the first key *is* the most urgent bucket present. Every
    /// queue mutation goes through the `enqueue_*`/`dequeue_*` helpers that
    /// keep this in sync; a sequence's bucket is stable while it waits
    /// (phase only flips between batches, never in the queue).
    urgency: BTreeMap<(u8, bool), usize>,
    busy: Option<InFlight>,
    est_backlog_ns: u64,
    /// Compile-outage gate: no new batch starts before this instant.
    blocked_until: u64,
    batches: u64,
    steps: u64,
    busy_ns: u64,
    killed_batches: u64,
    preempted_batches: u64,
    wasted_ns: u64,
}

/// How a FAULT-class event resolves: index into the legacy `faults` list
/// or into the `chaos` list.
enum FaultSrc {
    Legacy(usize),
    Chaos(usize),
}

struct Sim<'a> {
    cfg: &'a ServeConfig,
    shards: Vec<ShardState>,
    seqs: Vec<SeqState>,
    events: BinaryHeap<Reverse<Ev>>,
    audit: Audit,
    batch_log: Vec<BatchRecord>,
    in_flight_requests: u64,
    next_batch_id: u64,
    horizon_ns: u64,
    rejected_at_arrival: Vec<Option<RequestRecord>>,
}

/// Runs one serving trace to completion. Pure in `cfg`.
pub fn run(cfg: &ServeConfig) -> ServeReport {
    let requests = arrival_trace(cfg.pattern, &cfg.tenants, cfg.n_requests, cfg.seed);
    let shards: Vec<ShardState> = cfg
        .pool
        .iter()
        .enumerate()
        .map(|(id, spec)| ShardState {
            shard: Shard::new(id, spec.clone(), &cfg.tenants, cfg.max_batch),
            queue: VecDeque::new(),
            urgency: BTreeMap::new(),
            busy: None,
            est_backlog_ns: 0,
            blocked_until: 0,
            batches: 0,
            steps: 0,
            busy_ns: 0,
            killed_batches: 0,
            preempted_batches: 0,
            wasted_ns: 0,
        })
        .collect();

    let mut sim = Sim {
        cfg,
        shards,
        seqs: Vec::new(),
        events: BinaryHeap::new(),
        audit: Audit { generated: requests.len() as u64, ..Audit::default() },
        batch_log: Vec::new(),
        in_flight_requests: 0,
        next_batch_id: 0,
        horizon_ns: 0,
        rejected_at_arrival: vec![None; requests.len()],
    };

    // legacy faults take tie ids [0, faults.len()); chaos follows, so a
    // legacy-only config replays the exact pre-chaos event sequence
    for (i, f) in cfg.faults.iter().enumerate() {
        sim.events.push(Reverse(Ev {
            t: f.at_ns,
            class: CLASS_FAULT,
            tie: i as u64,
            payload: i as u64,
        }));
    }
    for (i, c) in cfg.chaos.iter().enumerate() {
        let tie = (cfg.faults.len() + i) as u64;
        sim.events.push(Reverse(Ev { t: c.at_ns, class: CLASS_FAULT, tie, payload: tie }));
    }
    let mut records: Vec<Option<RequestRecord>> = vec![None; requests.len()];
    for r in &requests {
        sim.events.push(Reverse(Ev {
            t: r.arrival_ns,
            class: CLASS_ARRIVAL,
            tie: r.id,
            payload: r.id,
        }));
    }

    let mut events_processed: u64 = 0;
    while let Some(Reverse(ev)) = sim.events.pop() {
        events_processed += 1;
        sim.horizon_ns = sim.horizon_ns.max(ev.t);
        match ev.class {
            CLASS_FAULT => {
                let src = if (ev.payload as usize) < cfg.faults.len() {
                    FaultSrc::Legacy(ev.payload as usize)
                } else {
                    FaultSrc::Chaos(ev.payload as usize - cfg.faults.len())
                };
                sim.on_fault(ev.t, &src);
            }
            CLASS_RESUME => {} // the gate is time-based; pumping suffices
            CLASS_COMPLETION => sim.on_completion(ev.t, ev.tie as usize, ev.payload),
            CLASS_RETRY => sim.on_retry(ev.t, ev.payload as usize),
            CLASS_ARRIVAL => sim.on_arrival(ev.t, &requests[ev.payload as usize]),
            _ => unreachable!("unknown event class"),
        }
        sim.pump(ev.t);
    }

    // conservation: everything admitted must have reached exactly one
    // terminal state by drain time, and the tokens its terminal state
    // reports must be exactly the tokens its batches committed
    for s in &sim.seqs {
        sim.audit.tokens_reported +=
            s.produced as u64 + u64::from(s.ttft_ns.is_some());
        match &s.outcome {
            Some(o) => {
                records[s.req.id as usize] = Some(RequestRecord {
                    id: s.req.id,
                    tenant: s.req.tenant,
                    arrival_ns: s.req.arrival_ns,
                    slo_ns: s.req.slo_ns,
                    outcome: o.clone(),
                });
            }
            None => sim.audit.stranded += 1,
        }
    }
    // arrival-time rejections were recorded directly
    for (i, r) in sim.rejected_at_arrival.into_iter().enumerate() {
        if let Some(rec) = r {
            records[i] = Some(rec);
        }
    }
    let records: Vec<RequestRecord> = records.into_iter().flatten().collect();

    let shards = sim
        .shards
        .iter()
        .map(|s| ShardReport {
            shard: s.shard.id,
            backend: s.shard.backend_name.clone(),
            batches: s.batches,
            steps: s.steps,
            busy_ns: s.busy_ns,
            cost_table: s.shard.cost_table(),
            final_capacity_factor: s.shard.capacity_factor,
            killed_batches: s.killed_batches,
            preempted_batches: s.preempted_batches,
            wasted_ns: s.wasted_ns,
        })
        .collect();

    ServeReport {
        records,
        shards,
        audit: sim.audit,
        horizon_ns: sim.horizon_ns,
        events: events_processed,
        batch_log: sim.batch_log,
    }
}

impl Sim<'_> {
    /// Estimated remaining work of `seq` on shard `sid`, capacity-scaled:
    /// pending prefill plus remaining tokens at the amortized max-batch
    /// decode rate.
    fn estimate_remaining(&self, seq: &SeqState, sid: usize) -> u64 {
        let sh = &self.shards[sid].shard;
        let t = seq.req.tenant;
        let mut ns = 0u64;
        if seq.phase == SeqPhase::Prefill {
            ns += sh.healthy_prefill_cost(t, seq.req.prompt);
        }
        let remaining = seq.req.decode.saturating_sub(seq.produced) as u64;
        if remaining > 0 {
            let ctx = if seq.phase == SeqPhase::Prefill { seq.req.prompt } else { seq.context };
            let b = self.cfg.max_batch.max(1);
            let step = sh.healthy_decode_cost(t, ctx, b);
            ns += (step / b as u64).max(1).saturating_mul(remaining);
        }
        sh.scaled(ns.max(1))
    }

    /// Best in-service shard for `seq` with its estimated-completion score
    /// (backlog + this request's remaining work); ties go to the lowest
    /// shard id. `None` when the whole pool is out of service.
    fn place_scored(&self, seq: &SeqState) -> Option<(u64, usize)> {
        let mut best: Option<(u64, usize)> = None;
        for (sid, s) in self.shards.iter().enumerate() {
            if !s.shard.in_service() {
                continue;
            }
            let score = s.est_backlog_ns.saturating_add(self.estimate_remaining(seq, sid));
            if best.is_none_or(|(b, _)| score < b) {
                best = Some((score, sid));
            }
        }
        best
    }

    /// [`Sim::place_scored`] without the score.
    fn place(&self, seq: &SeqState) -> Option<usize> {
        self.place_scored(seq).map(|(_, sid)| sid)
    }

    /// Assigns `seq_idx` to `sid`, charging the backlog estimate.
    fn assign(&mut self, seq_idx: usize, sid: usize) {
        let est = self.estimate_remaining(&self.seqs[seq_idx], sid);
        let seq = &mut self.seqs[seq_idx];
        seq.shard = sid;
        seq.charged_ns = est;
        let s = &mut self.shards[sid];
        s.est_backlog_ns = s.est_backlog_ns.saturating_add(est);
        self.enqueue_back(sid, seq_idx);
    }

    /// Removes `seq_idx`'s backlog charge from its current shard.
    fn discharge(&mut self, seq_idx: usize) {
        let (sid, charged) = {
            let seq = &self.seqs[seq_idx];
            (seq.shard, seq.charged_ns)
        };
        let s = &mut self.shards[sid];
        s.est_backlog_ns = s.est_backlog_ns.saturating_sub(charged);
        self.seqs[seq_idx].charged_ns = 0;
    }

    fn terminal(&mut self, seq_idx: usize, outcome: Outcome) {
        let seq = &mut self.seqs[seq_idx];
        if seq.outcome.is_some() {
            self.audit.double_terminal_violations += 1;
            return;
        }
        match &outcome {
            Outcome::Completed { .. } => self.audit.completed += 1,
            Outcome::Rejected { .. } => self.audit.rejected_after_admission += 1,
            Outcome::Abandoned { .. } => self.audit.abandoned += 1,
        }
        seq.outcome = Some(outcome);
        self.in_flight_requests -= 1;
    }

    /// Re-dispatches a sequence that lost its shard: schedules a retry
    /// after the policy's backoff, or abandons it once the budget is gone.
    /// The sequence keeps all committed progress (`produced`, `ttft_ns`) —
    /// a retry replays only the step that died.
    fn retry_or_abandon(&mut self, seq_idx: usize, now: u64) {
        if self.seqs[seq_idx].outcome.is_some() {
            return;
        }
        let attempts = self.seqs[seq_idx].attempts;
        if self.cfg.retry.exhausted(attempts) {
            self.terminal(seq_idx, Outcome::Abandoned { at_ns: now, attempts });
            return;
        }
        self.seqs[seq_idx].attempts = attempts + 1;
        self.audit.retries += 1;
        self.events.push(Reverse(Ev {
            t: now.saturating_add(self.cfg.retry.backoff(attempts)),
            class: CLASS_RETRY,
            tie: seq_idx as u64,
            payload: seq_idx as u64,
        }));
    }

    fn on_retry(&mut self, now: u64, seq_idx: usize) {
        if self.seqs[seq_idx].outcome.is_some() {
            return;
        }
        match self.place(&self.seqs[seq_idx]) {
            Some(sid) => self.assign(seq_idx, sid),
            // pool still fully down: burn another attempt and back off more
            None => self.retry_or_abandon(seq_idx, now),
        }
    }

    fn on_arrival(&mut self, now: u64, req: &Request) {
        if self.in_flight_requests >= self.cfg.max_in_flight as u64 {
            self.reject_at_arrival(now, req, RejectReason::QueueFull);
            return;
        }
        if !self.shards.iter().any(|s| s.shard.in_service()) {
            self.reject_at_arrival(now, req, RejectReason::NoCapacity);
            return;
        }
        let seq = SeqState {
            req: *req,
            phase: SeqPhase::Prefill,
            context: 0,
            produced: 0,
            shard: usize::MAX,
            shards_touched: Vec::new(),
            charged_ns: 0,
            attempts: 0,
            ttft_ns: None,
            outcome: None,
        };
        // load shedding: if even the best placement blows the deadline
        // bound, admitting only manufactures a guaranteed SLO miss
        let placed = self.place_scored(&seq);
        if let (Some(factor), Some((score, _))) = (self.cfg.shed_deadline_factor, placed) {
            let bound = (req.slo_ns as f64 * factor.max(0.0)) as u64;
            if score > bound {
                self.audit.shed += 1;
                self.reject_at_arrival(now, req, RejectReason::Shed);
                return;
            }
        }
        self.audit.admitted += 1;
        self.in_flight_requests += 1;
        let seq_idx = self.seqs.len();
        self.seqs.push(seq);
        // admission passed and some shard is in service, so place() holds
        if let Some((_, sid)) = placed {
            self.assign(seq_idx, sid);
        }
    }

    fn on_completion(&mut self, now: u64, sid: usize, batch_id: u64) {
        let fl = match self.shards[sid].busy.take() {
            Some(fl) if fl.batch_id == batch_id => fl,
            Some(fl) => {
                // stale completion: the batch this event announced was
                // killed or preempted and someone else runs now
                self.shards[sid].busy = Some(fl);
                return;
            }
            None => return,
        };
        {
            let s = &mut self.shards[sid];
            s.busy_ns += fl.cost_ns;
            s.batches += 1;
            s.steps += fl.members.len() as u64;
        }
        let in_service = self.shards[sid].shard.in_service();
        for &seq_idx in &fl.members {
            self.audit.tokens_committed += 1;
            let done = {
                let seq = &mut self.seqs[seq_idx];
                if !seq.shards_touched.contains(&sid) {
                    seq.shards_touched.push(sid);
                }
                match seq.phase {
                    SeqPhase::Prefill => {
                        seq.phase = SeqPhase::Decode;
                        seq.context = seq.req.prompt;
                        seq.ttft_ns = Some(now.saturating_sub(seq.req.arrival_ns));
                        seq.req.decode == 0
                    }
                    SeqPhase::Decode => {
                        seq.produced += 1;
                        seq.context += 1;
                        seq.produced >= seq.req.decode
                    }
                }
            };
            if done {
                let seq = &self.seqs[seq_idx];
                let outcome = Outcome::Completed {
                    ttft_ns: seq.ttft_ns.unwrap_or(0),
                    finish_ns: now,
                    tokens: 1 + seq.req.decode,
                    shards: seq.shards_touched.clone(),
                    retries: seq.attempts,
                };
                self.discharge(seq_idx);
                self.terminal(seq_idx, outcome);
            } else if in_service {
                // continuous batching: back to this shard's queue tail
                self.enqueue_back(sid, seq_idx);
            } else {
                // the shard died under this batch: re-place or reject
                self.discharge(seq_idx);
                match self.place(&self.seqs[seq_idx]) {
                    Some(new_sid) => self.assign(seq_idx, new_sid),
                    None => self.terminal(
                        seq_idx,
                        Outcome::Rejected {
                            at_ns: now,
                            reason: RejectReason::NoCapacity,
                            after_admission: true,
                        },
                    ),
                }
            }
        }
    }

    fn on_fault(&mut self, now: u64, src: &FaultSrc) {
        // self.cfg outlives &mut self: reborrow it so the event data stays
        // readable across the mutating handlers
        let cfg = self.cfg;
        match src {
            FaultSrc::Legacy(i) => {
                let f = &cfg.faults[*i];
                if f.shard >= self.shards.len() {
                    return;
                }
                self.degrade(now, f.shard, &f.plan, false);
            }
            FaultSrc::Chaos(i) => {
                let c = &cfg.chaos[*i];
                if c.shard >= self.shards.len() {
                    return;
                }
                match &c.action {
                    ChaosAction::Crash => self.crash(now, c.shard),
                    ChaosAction::Degrade(plan) => self.degrade(now, c.shard, plan, true),
                    ChaosAction::Recover => self.recover(c.shard),
                    ChaosAction::CompileOutage { for_ns } => {
                        self.compile_outage(now, c.shard, *for_ns);
                    }
                }
            }
        }
    }

    /// Applies `plan` to `sid` with drain semantics: the in-flight batch
    /// finishes, queued work re-places. On a now-dead pool, displaced work
    /// goes to the retry ladder for chaos events (`retryable`) and to the
    /// PR 6 typed rejection for legacy fault events — the legacy path must
    /// replay bit-identically to before retries existed.
    fn degrade(&mut self, now: u64, sid: usize, plan: &FaultPlan, retryable: bool) {
        self.shards[sid].shard.apply_fault(plan, &self.cfg.tenants);
        let displaced = self.drain_queue(sid);
        for seq_idx in displaced {
            self.discharge(seq_idx);
            match self.place(&self.seqs[seq_idx]) {
                Some(new_sid) => self.assign(seq_idx, new_sid),
                None if retryable => self.retry_or_abandon(seq_idx, now),
                None => self.terminal(
                    seq_idx,
                    Outcome::Rejected {
                        at_ns: now,
                        reason: RejectReason::NoCapacity,
                        after_admission: true,
                    },
                ),
            }
        }
    }

    /// Kills `sid` outright: capacity goes infinite, the in-flight batch
    /// dies with *nothing* committed (its completion event goes stale via
    /// the batch id), and every member — running or queued — re-places on
    /// the survivors or enters the retry ladder.
    fn crash(&mut self, now: u64, sid: usize) {
        self.shards[sid].shard.force_out_of_service();
        if let Some(fl) = self.shards[sid].busy.take() {
            self.audit.killed_batches += 1;
            self.shards[sid].killed_batches += 1;
            self.shards[sid].wasted_ns += now.saturating_sub(fl.start_ns);
            for &seq_idx in &fl.members {
                self.discharge(seq_idx);
                self.retry_or_abandon(seq_idx, now);
            }
        }
        let displaced = self.drain_queue(sid);
        for seq_idx in displaced {
            self.discharge(seq_idx);
            match self.place(&self.seqs[seq_idx]) {
                Some(new_sid) => self.assign(seq_idx, new_sid),
                None => self.retry_or_abandon(seq_idx, now),
            }
        }
    }

    /// Chaos recovery: clears faults and outage gates — full health.
    fn recover(&mut self, sid: usize) {
        self.shards[sid].shard.apply_fault(&FaultPlan::none(), &self.cfg.tenants);
        self.shards[sid].blocked_until = 0;
    }

    /// Transient compile failure: running work finishes, nothing new
    /// starts until the window expires (a RESUME event re-pumps then).
    fn compile_outage(&mut self, now: u64, sid: usize, for_ns: u64) {
        let until = now.saturating_add(for_ns);
        let s = &mut self.shards[sid];
        s.blocked_until = s.blocked_until.max(until);
        let until = s.blocked_until;
        self.events.push(Reverse(Ev {
            t: until,
            class: CLASS_RESUME,
            tie: sid as u64,
            payload: sid as u64,
        }));
    }

    /// Whether `sid` may begin a new batch at `now`.
    fn startable(&self, sid: usize, now: u64) -> bool {
        let s = &self.shards[sid];
        s.shard.in_service() && s.busy.is_none() && now >= s.blocked_until
    }

    /// Urgency-index bucket of a sequence: priority class first (BTreeMap
    /// order makes the smallest key the most urgent), phase second.
    fn urgency_key(&self, seq_idx: usize) -> (u8, bool) {
        let seq = &self.seqs[seq_idx];
        (self.cfg.tenants[seq.req.tenant].priority, seq.phase == SeqPhase::Prefill)
    }

    /// Enqueues `seq_idx` at the tail of `sid`'s queue, charging the index.
    fn enqueue_back(&mut self, sid: usize, seq_idx: usize) {
        let key = self.urgency_key(seq_idx);
        let s = &mut self.shards[sid];
        s.queue.push_back(seq_idx);
        *s.urgency.entry(key).or_insert(0) += 1;
    }

    /// Enqueues `seq_idx` at the head of `sid`'s queue, charging the index.
    fn enqueue_front(&mut self, sid: usize, seq_idx: usize) {
        let key = self.urgency_key(seq_idx);
        let s = &mut self.shards[sid];
        s.queue.push_front(seq_idx);
        *s.urgency.entry(key).or_insert(0) += 1;
    }

    /// Removes one index charge for `seq_idx` (zero-count buckets drop out
    /// so the first remaining key is always the most urgent one present).
    fn uncharge_urgency(&mut self, sid: usize, seq_idx: usize) {
        let key = self.urgency_key(seq_idx);
        if let Some(c) = self.shards[sid].urgency.get_mut(&key) {
            *c -= 1;
            if *c == 0 {
                self.shards[sid].urgency.remove(&key);
            }
        }
    }

    /// Pops the head of `sid`'s queue, discharging the index.
    fn dequeue_front(&mut self, sid: usize) -> Option<usize> {
        let seq_idx = self.shards[sid].queue.pop_front()?;
        self.uncharge_urgency(sid, seq_idx);
        Some(seq_idx)
    }

    /// Removes the sequence at queue position `pos`, discharging the index.
    fn dequeue_at(&mut self, sid: usize, pos: usize) -> Option<usize> {
        let seq_idx = self.shards[sid].queue.remove(pos)?;
        self.uncharge_urgency(sid, seq_idx);
        Some(seq_idx)
    }

    /// Empties `sid`'s queue (fault displacement), resetting the index.
    fn drain_queue(&mut self, sid: usize) -> Vec<usize> {
        let s = &mut self.shards[sid];
        s.urgency.clear();
        s.queue.drain(..).collect()
    }

    /// Queue position of the most urgent waiting sequence on `sid`: lowest
    /// priority class wins, FIFO within a class. The class comes from the
    /// exact urgency index (first key = most urgent bucket present, at any
    /// queue depth); the position is the class's first — most senior —
    /// occupant. With every tenant in one class this is always position 0 —
    /// plain FIFO, bit-identical to PR 6.
    fn urgent_front(&self, sid: usize) -> Option<usize> {
        let s = &self.shards[sid];
        let &(p, _) = s.urgency.keys().next()?;
        s.queue
            .iter()
            .position(|&qi| self.cfg.tenants[self.seqs[qi].req.tenant].priority == p)
    }

    /// Starts a batch on `sid` keyed by its most urgent waiting sequence.
    fn start_batch(&mut self, sid: usize, now: u64) {
        let (tenant, phase, bucket) = {
            let front = match self.urgent_front(sid) {
                Some(pos) => &self.seqs[self.shards[sid].queue[pos]],
                None => return,
            };
            (front.req.tenant, front.phase, front.bucket())
        };
        let cap = if phase == SeqPhase::Prefill { 1 } else { self.cfg.max_batch.max(1) };
        let mut members = Vec::with_capacity(cap);
        // rotate through exactly the original occupants: matches leave the
        // queue (and the urgency index), the rest re-append in order
        let qlen = self.shards[sid].queue.len();
        for _ in 0..qlen {
            let Some(i) = self.dequeue_front(sid) else { break };
            let s = &self.seqs[i];
            if members.len() < cap
                && s.req.tenant == tenant
                && s.phase == phase
                && s.bucket() == bucket
            {
                members.push(i);
            } else {
                self.enqueue_back(sid, i);
            }
        }

        // batching legality audit: every member shares the key
        for &i in &members {
            let s = &self.seqs[i];
            if s.req.tenant != tenant || s.phase != phase || s.bucket() != bucket {
                self.audit.batch_legality_violations += 1;
            }
        }

        let healthy = match phase {
            SeqPhase::Prefill => {
                self.shards[sid].shard.healthy_prefill_cost(tenant, 1usize << bucket)
            }
            SeqPhase::Decode => self.shards[sid].shard.healthy_decode_cost(
                tenant,
                1usize << bucket,
                members.len(),
            ),
        };
        let cost = self.shards[sid].shard.scaled(healthy);
        let done_at = now.saturating_add(cost);
        if self.cfg.log_batches {
            self.batch_log.push(BatchRecord {
                shard: sid,
                tenant,
                prefill: phase == SeqPhase::Prefill,
                bucket,
                members: members.iter().map(|&i| self.seqs[i].req.id).collect(),
                start_ns: now,
                cost_ns: cost,
            });
        }
        let batch_id = self.next_batch_id;
        self.next_batch_id += 1;
        self.shards[sid].busy = Some(InFlight {
            batch_id,
            members,
            cost_ns: cost,
            start_ns: now,
            done_at,
            tenant,
            prefill: phase == SeqPhase::Prefill,
        });
        self.events.push(Reverse(Ev {
            t: done_at,
            class: CLASS_COMPLETION,
            tie: sid as u64,
            payload: batch_id,
        }));
    }

    /// Preempts low-priority decode batches whose continued run would make
    /// a strictly-higher-priority queued prefill miss its TTFT bound
    /// (`slo / PREEMPT_TTFT_DIVISOR`). Preemption only fires when it is
    /// *useful*: starting the prefill now must still meet the bound — a
    /// prefill whose bound is already unreachable must not keep shooting
    /// down every batch behind it (that livelocks the shard). The killed
    /// step commits nothing; the preemptor jumps to the queue head so it
    /// actually starts next, with the preempted members right behind it.
    fn preempt_for_priority(&mut self, now: u64) {
        for sid in 0..self.shards.len() {
            if !self.shards[sid].shard.in_service() || now < self.shards[sid].blocked_until {
                continue;
            }
            let (batch_prio, done_at) = match &self.shards[sid].busy {
                Some(fl) if !fl.prefill => {
                    (self.cfg.tenants[fl.tenant].priority, fl.done_at)
                }
                _ => continue,
            };
            // exact: the first prefill bucket in the urgency index is the
            // most urgent queued prefill, no matter how deep it sits
            let best_prio = self.shards[sid]
                .urgency
                .keys()
                .find(|&&(_, prefill)| prefill)
                .map(|&(p, _)| p);
            let Some(p) = best_prio.filter(|&p| p < batch_prio) else { continue };
            let Some(pos) = self.shards[sid].queue.iter().position(|&qi| {
                let s = &self.seqs[qi];
                s.phase == SeqPhase::Prefill
                    && self.cfg.tenants[s.req.tenant].priority == p
            }) else {
                continue;
            };
            let (tenant, prompt, arrival, slo) = {
                let s = &self.seqs[self.shards[sid].queue[pos]];
                (s.req.tenant, s.req.prompt, s.req.arrival_ns, s.req.slo_ns)
            };
            let cost = {
                let sh = &self.shards[sid].shard;
                sh.scaled(sh.healthy_prefill_cost(tenant, prompt))
            };
            let deadline = arrival.saturating_add(slo / PREEMPT_TTFT_DIVISOR);
            if done_at.saturating_add(cost) <= deadline {
                continue; // waiting out the decode batch still meets TTFT
            }
            if now.saturating_add(cost) > deadline {
                // the bound is already unsalvageable: killing the decode
                // batch would waste its partial step without saving the
                // prefill, and an ever-doomed prefill must not shoot down
                // every batch behind it forever
                continue;
            }
            let Some(fl) = self.shards[sid].busy.take() else { continue };
            self.audit.preemptions += 1;
            self.shards[sid].preempted_batches += 1;
            self.shards[sid].wasted_ns += now.saturating_sub(fl.start_ns);
            // the preempting prefill jumps to the queue head: preemption
            // must actually start it next, not re-lose the shard to
            // whatever sits in front of it (the preempted members would
            // otherwise push it past the urgent-front scan window and the
            // restarted batch would be preempted again — a livelock)
            let preemptor = self.dequeue_at(sid, pos);
            // preempted members return to the head in original order, so
            // they stay senior to everything behind them; the preemptor
            // goes in front of even them
            for &m in fl.members.iter().rev() {
                self.enqueue_front(sid, m);
            }
            if let Some(qi) = preemptor {
                self.enqueue_front(sid, qi);
            }
        }
    }

    /// Drives the pool to the work-conserving fixpoint, then audits it.
    fn pump(&mut self, now: u64) {
        // 0. priority preemption frees shards before anything starts
        if self.cfg.preempt {
            self.preempt_for_priority(now);
        }
        // 1. every idle startable shard starts from its own queue
        for sid in 0..self.shards.len() {
            if self.startable(sid, now) && !self.shards[sid].queue.is_empty() {
                self.start_batch(sid, now);
            }
        }
        // 2. idle startable shards with empty queues steal the oldest
        //    waiting sequence from the most-backlogged queue, to fixpoint
        loop {
            let thief = (0..self.shards.len())
                .find(|&sid| self.startable(sid, now) && self.shards[sid].queue.is_empty());
            let thief = match thief {
                Some(t) => t,
                None => break,
            };
            let donor = (0..self.shards.len())
                .filter(|&sid| sid != thief && !self.shards[sid].queue.is_empty())
                .max_by_key(|&sid| (self.shards[sid].queue.len(), Reverse(sid)));
            let donor = match donor {
                Some(d) => d,
                None => break,
            };
            let seq_idx = match self.dequeue_front(donor) {
                Some(i) => i,
                None => break,
            };
            self.discharge(seq_idx);
            let est = self.estimate_remaining(&self.seqs[seq_idx], thief);
            self.seqs[seq_idx].shard = thief;
            self.seqs[seq_idx].charged_ns = est;
            self.shards[thief].est_backlog_ns =
                self.shards[thief].est_backlog_ns.saturating_add(est);
            self.enqueue_back(thief, seq_idx);
            self.start_batch(thief, now);
        }
        // 3. audit: no startable shard may now be idle while work waits
        let waiting: usize = self.shards.iter().map(|s| s.queue.len()).sum();
        if waiting > 0 {
            for sid in 0..self.shards.len() {
                if self.startable(sid, now) {
                    self.audit.work_conservation_violations += 1;
                }
            }
        }
    }

    fn reject_at_arrival(&mut self, now: u64, req: &Request, reason: RejectReason) {
        self.audit.rejected_at_admission += 1;
        self.rejected_at_arrival[req.id as usize] = Some(RequestRecord {
            id: req.id,
            tenant: req.tenant,
            arrival_ns: req.arrival_ns,
            slo_ns: req.slo_ns,
            outcome: Outcome::Rejected { at_ns: now, reason, after_admission: false },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ShardSpec;
    use picachu_llm::ModelConfig;

    fn tiny_tenant(name: &'static str, priority: u8, slo_ns: u64) -> Tenant {
        Tenant {
            name,
            model: ModelConfig { name, layers: 1, d_model: 32, n_heads: 4, d_ff: 64, ..ModelConfig::gpt2() },
            weight: 1,
            prompt: 16,
            decode: (1, 2),
            slo_ns,
            priority,
        }
    }

    fn seq(tenant: usize, phase: SeqPhase, prompt: usize, slo_ns: u64) -> SeqState {
        SeqState {
            req: Request { id: 0, tenant, arrival_ns: 0, prompt, decode: 2, slo_ns },
            phase,
            context: prompt,
            produced: 0,
            shard: 0,
            shards_touched: Vec::new(),
            charged_ns: 0,
            attempts: 0,
            ttft_ns: None,
            outcome: None,
        }
    }

    /// The regression the exact urgency index exists for: under the old
    /// bounded 64-entry scan, a TTFT-threatened high-priority prefill
    /// parked *behind* 100 bulk decodes was invisible to both
    /// `urgent_front` and the preemption pass. The index must find it at
    /// any depth and preempt the running low-priority decode batch.
    #[test]
    fn ttft_threatened_prefill_beyond_position_64_still_preempts() {
        const BULK: usize = 0;
        const VIP: usize = 1;
        let cfg = ServeConfig {
            preempt: true,
            ..ServeConfig::new(
                vec![tiny_tenant("bulk", 1, u64::MAX), tiny_tenant("vip", 0, 0)],
                ArrivalPattern::Poisson { mean_gap_ns: 1e6 },
                vec![ShardSpec::Gemmini],
            )
        };
        let shard = Shard::new(0, ShardSpec::Gemmini, &cfg.tenants, cfg.max_batch);
        // pick the vip SLO so its TTFT bound (slo/4) is threatened by the
        // running batch but still reachable by preempting right now
        let prefill_cost = shard.scaled(shard.healthy_prefill_cost(VIP, 16));
        let vip_slo = 8 * prefill_cost;
        let mut sim = Sim {
            cfg: &cfg,
            shards: vec![ShardState {
                shard,
                queue: VecDeque::new(),
                urgency: BTreeMap::new(),
                busy: None,
                est_backlog_ns: 0,
                blocked_until: 0,
                batches: 0,
                steps: 0,
                busy_ns: 0,
                killed_batches: 0,
                preempted_batches: 0,
                wasted_ns: 0,
            }],
            seqs: Vec::new(),
            events: BinaryHeap::new(),
            audit: Audit::default(),
            batch_log: Vec::new(),
            in_flight_requests: 0,
            next_batch_id: 1,
            horizon_ns: 0,
            rejected_at_arrival: Vec::new(),
        };

        // a low-priority decode batch occupies the shard until far future
        for _ in 0..2 {
            sim.seqs.push(seq(BULK, SeqPhase::Decode, 16, u64::MAX));
        }
        sim.shards[0].busy = Some(InFlight {
            batch_id: 0,
            members: vec![0, 1],
            cost_ns: u64::MAX / 4,
            start_ns: 0,
            done_at: u64::MAX / 4,
            tenant: BULK,
            prefill: false,
        });

        // 100 bulk decodes queue ahead of the one vip prefill
        for _ in 0..100 {
            let i = sim.seqs.len();
            sim.seqs.push(seq(BULK, SeqPhase::Decode, 16, u64::MAX));
            sim.enqueue_back(0, i);
        }
        let vip_idx = sim.seqs.len();
        sim.seqs.push(seq(VIP, SeqPhase::Prefill, 16, vip_slo));
        sim.enqueue_back(0, vip_idx);
        assert_eq!(
            sim.urgent_front(0),
            Some(100),
            "the exact index must surface the prefill at depth 100"
        );

        sim.preempt_for_priority(0);
        assert_eq!(sim.audit.preemptions, 1, "the decode batch must be preempted");
        assert!(sim.shards[0].busy.is_none(), "preemption frees the shard");
        assert_eq!(sim.shards[0].queue.len(), 103, "vip + 2 preempted + 100 bulk");
        assert_eq!(sim.shards[0].queue[0], vip_idx, "the preemptor jumps to the head");
        assert_eq!((sim.shards[0].queue[1], sim.shards[0].queue[2]), (0, 1));
        // the urgency index survived the churn: sum matches the queue and
        // the vip prefill actually starts next
        let indexed: usize = sim.shards[0].urgency.values().sum();
        assert_eq!(indexed, sim.shards[0].queue.len());
        sim.start_batch(0, 0);
        let fl = sim.shards[0].busy.as_ref().expect("prefill batch starts");
        assert!(fl.prefill);
        assert_eq!(fl.tenant, VIP);
        assert_eq!(fl.members, vec![vip_idx]);
    }

    /// A prefill whose TTFT bound is already unreachable must not preempt
    /// (killing the batch would waste its partial step for nothing) — the
    /// exact index must not have changed the livelock guard.
    #[test]
    fn doomed_prefill_does_not_preempt_even_when_indexed() {
        const BULK: usize = 0;
        const VIP: usize = 1;
        let cfg = ServeConfig {
            preempt: true,
            ..ServeConfig::new(
                vec![tiny_tenant("bulk", 1, u64::MAX), tiny_tenant("vip", 0, 0)],
                ArrivalPattern::Poisson { mean_gap_ns: 1e6 },
                vec![ShardSpec::Gemmini],
            )
        };
        let shard = Shard::new(0, ShardSpec::Gemmini, &cfg.tenants, cfg.max_batch);
        let mut sim = Sim {
            cfg: &cfg,
            shards: vec![ShardState {
                shard,
                queue: VecDeque::new(),
                urgency: BTreeMap::new(),
                busy: None,
                est_backlog_ns: 0,
                blocked_until: 0,
                batches: 0,
                steps: 0,
                busy_ns: 0,
                killed_batches: 0,
                preempted_batches: 0,
                wasted_ns: 0,
            }],
            seqs: Vec::new(),
            events: BinaryHeap::new(),
            audit: Audit::default(),
            batch_log: Vec::new(),
            in_flight_requests: 0,
            next_batch_id: 1,
            horizon_ns: 0,
            rejected_at_arrival: Vec::new(),
        };
        sim.seqs.push(seq(BULK, SeqPhase::Decode, 16, u64::MAX));
        sim.shards[0].busy = Some(InFlight {
            batch_id: 0,
            members: vec![0],
            cost_ns: u64::MAX / 4,
            start_ns: 0,
            done_at: u64::MAX / 4,
            tenant: BULK,
            prefill: false,
        });
        // slo 0 → TTFT deadline 0: already missed at now=0, cost > 0
        sim.seqs.push(seq(VIP, SeqPhase::Prefill, 16, 0));
        sim.enqueue_back(0, 1);
        sim.preempt_for_priority(0);
        assert_eq!(sim.audit.preemptions, 0, "a doomed prefill must not shoot the batch");
        assert!(sim.shards[0].busy.is_some());
    }
}
