//! Configuration-memory generation (§2.2, §4.3).
//!
//! A CGRA executes by having every tile read its configuration memory each
//! cycle: the entry at `cycle mod II` names the operation the tile performs
//! and where its operands come from. [`CgraConfig::from_mapping`] translates
//! the compiler's placement into exactly that structure, including the
//! routing hops an operand takes through intermediate tiles.

use picachu_compiler::arch::CgraSpec;
use picachu_compiler::mapper::Mapping;
use picachu_ir::dfg::{Dfg, NodeId};
use picachu_ir::opcode::Opcode;
use std::fmt;

/// One operand source in a tile's configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperandSource {
    /// Producing node.
    pub node: NodeId,
    /// Tile the producer executes on.
    pub tile: usize,
    /// Cycle (absolute, first iteration) the operand becomes available there.
    pub ready_at: u32,
    /// Loop-carried distance of the consuming edge.
    pub distance: u32,
}

/// What one tile does in one slot of the II window.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SlotAction {
    /// Nothing scheduled.
    #[default]
    Idle,
    /// Execute a DFG node.
    Execute {
        /// The node to execute.
        node: NodeId,
        /// Its opcode.
        op: Opcode,
        /// Operand sources.
        operands: Vec<OperandSource>,
        /// Absolute time of the first firing (iteration 0).
        first_time: u32,
    },
}

/// Per-tile configuration memory: `slots[c]` is the action at
/// `cycle mod II == c`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileProgram {
    /// The slot table, length = II.
    pub slots: Vec<SlotAction>,
}

/// A complete fabric configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CgraConfig {
    /// Initiation interval.
    pub ii: u32,
    /// One program per tile (row-major).
    pub tiles: Vec<TileProgram>,
    /// Schedule length (prologue cycles before steady state).
    pub schedule_len: u32,
}

impl CgraConfig {
    /// Builds the configuration from a mapping.
    ///
    /// # Panics
    /// Panics if two nodes collide on the same (tile, slot) — the mapper
    /// guarantees they cannot.
    pub fn from_mapping(dfg: &Dfg, mapping: &Mapping, spec: &CgraSpec) -> CgraConfig {
        let ii = mapping.ii;
        let mut tiles = vec![
            TileProgram { slots: vec![SlotAction::Idle; ii as usize] };
            spec.len()
        ];
        for p in &mapping.placements {
            let node = &dfg.nodes()[p.node.0];
            let operands = node
                .inputs
                .iter()
                .map(|e| {
                    let src = mapping.placements[e.from.0];
                    OperandSource {
                        node: e.from,
                        tile: src.tile,
                        ready_at: src.time + dfg.nodes()[e.from.0].op.latency(),
                        distance: e.distance,
                    }
                })
                .collect();
            let slot = (p.time % ii) as usize;
            let entry = &mut tiles[p.tile].slots[slot];
            assert!(
                matches!(entry, SlotAction::Idle),
                "slot collision on tile {} slot {}",
                p.tile,
                slot
            );
            *entry = SlotAction::Execute {
                node: p.node,
                op: node.op,
                operands,
                first_time: p.time,
            };
        }
        CgraConfig { ii, tiles, schedule_len: mapping.schedule_len }
    }

    /// Number of configured (non-idle) slots — the configuration memory
    /// footprint in entries.
    pub fn configured_slots(&self) -> usize {
        self.tiles
            .iter()
            .flat_map(|t| &t.slots)
            .filter(|s| !matches!(s, SlotAction::Idle))
            .count()
    }

    /// Configuration-memory size in bytes, assuming 8-byte entries (opcode +
    /// operand routing fields), counting all slots like real config SRAM.
    pub fn size_bytes(&self) -> usize {
        self.tiles.len() * self.ii as usize * 8
    }
}

impl fmt::Display for CgraConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "config: II={} ({} slots used)", self.ii, self.configured_slots())?;
        for (t, prog) in self.tiles.iter().enumerate() {
            for (s, slot) in prog.slots.iter().enumerate() {
                if let SlotAction::Execute { node, op, .. } = slot {
                    writeln!(f, "  tile {t} slot {s}: {node} = {op}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_compiler::mapper::map_dfg;
    use picachu_compiler::transform::fuse_patterns;
    use picachu_ir::kernels::{kernel_library, relu_kernel};

    fn setup() -> (Dfg, Mapping, CgraSpec) {
        let spec = CgraSpec::picachu(4, 4);
        let dfg = fuse_patterns(&relu_kernel().loops[0].dfg);
        let m = map_dfg(&dfg, &spec, 3).unwrap();
        (dfg, m, spec)
    }

    #[test]
    fn every_node_configured_once() {
        let (dfg, m, spec) = setup();
        let cfg = CgraConfig::from_mapping(&dfg, &m, &spec);
        assert_eq!(cfg.configured_slots(), dfg.len());
    }

    #[test]
    fn operands_reference_mapped_producers() {
        let (dfg, m, spec) = setup();
        let cfg = CgraConfig::from_mapping(&dfg, &m, &spec);
        for prog in &cfg.tiles {
            for slot in &prog.slots {
                if let SlotAction::Execute { operands, .. } = slot {
                    for o in operands {
                        let p = m.placements[o.node.0];
                        assert_eq!(p.tile, o.tile);
                        assert_eq!(o.ready_at, p.time + dfg.nodes()[o.node.0].op.latency());
                    }
                }
            }
        }
    }

    #[test]
    fn config_size_scales_with_ii() {
        let spec = CgraSpec::picachu(4, 4);
        for k in kernel_library(4) {
            for l in &k.loops {
                let d = fuse_patterns(&l.dfg);
                let m = map_dfg(&d, &spec, 5).unwrap();
                let cfg = CgraConfig::from_mapping(&d, &m, &spec);
                assert_eq!(cfg.size_bytes(), 16 * m.ii as usize * 8);
                assert_eq!(cfg.ii, m.ii);
            }
        }
    }
}
