//! # picachu-cgra — the PICACHU CGRA: configuration, simulation, cost
//!
//! The paper evaluates its CGRA with an RTL framework generated from VecPAC
//! plus Synopsys DC and CACTI for area/power. This crate is the simulation
//! substitute (see DESIGN.md §1):
//!
//! * [`config`] — turns a compiler [`picachu_compiler::Mapping`] into per-tile
//!   configuration memories (the "control signals for each tile" of §4.3);
//! * [`sim`] — a cycle-level simulator that executes the configuration in
//!   steady state, dynamically verifying the static schedule (operands must
//!   arrive before firing) and producing cycle counts, per-tile activity and
//!   NoC traffic;
//! * [`cost`] — the analytical area/power model calibrated to reproduce the
//!   Table 7 breakdown and the per-FU overhead percentages of §5.3.1.
//!
//! ```
//! use picachu_compiler::{arch::CgraSpec, mapper::map_dfg, transform::fuse_patterns};
//! use picachu_cgra::{config::CgraConfig, sim::CgraSimulator};
//! use picachu_ir::kernels::relu_kernel;
//!
//! let spec = CgraSpec::picachu(4, 4);
//! let dfg = fuse_patterns(&relu_kernel().loops[0].dfg);
//! let mapping = map_dfg(&dfg, &spec, 1).expect("maps");
//! let cfg = CgraConfig::from_mapping(&dfg, &mapping, &spec);
//! let report = CgraSimulator::new(&spec, &dfg, &cfg).run(1000);
//! assert!(report.cycles >= 1000 * mapping.ii as u64);
//! ```

pub mod config;
pub mod cost;
pub mod schedule;
pub mod sim;

pub use config::CgraConfig;
pub use cost::{CostModel, FabricCost};
pub use schedule::{reservation_table, stats, ScheduleStats};
pub use sim::{CgraSimulator, FaultedRun, SimFault, SimReport};
