//! Cycle-level CGRA simulator.
//!
//! Executes a [`CgraConfig`] the way the hardware would: every cycle each
//! tile consults its configuration slot; a scheduled operation fires only if
//! all operands have arrived (producer fire time + latency + mesh hops),
//! which dynamically re-verifies the static modulo schedule. The simulator
//! reports total cycles, per-tile activity, per-opcode activation counts and
//! NoC hop traffic — the activity factors the energy model consumes.

use crate::config::{CgraConfig, SlotAction};
use picachu_compiler::arch::CgraSpec;
use picachu_compiler::mapper::ResourceMask;
use picachu_faults::{EccReport, FaultPlan};
use picachu_ir::dfg::Dfg;
use picachu_ir::opcode::Opcode;
use std::collections::HashMap;
use std::fmt;

/// Execution statistics from a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total cycles for the requested iterations.
    pub cycles: u64,
    /// Iterations executed.
    pub iterations: u64,
    /// Initiation interval the configuration ran at.
    pub ii: u64,
    /// Length of one full schedule pass (the prologue depth).
    pub schedule_len: u64,
    /// Busy cycles per tile.
    pub tile_busy: Vec<u64>,
    /// Number of firings per opcode.
    pub activations: HashMap<Opcode, u64>,
    /// Total operand hops through the mesh.
    pub noc_hops: u64,
    /// Loads + stores issued to the Shared Buffer.
    pub buffer_accesses: u64,
}

impl SimReport {
    /// Average fraction of tiles busy per cycle.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let busy: u64 = self.tile_busy.iter().sum();
        busy as f64 / (self.cycles as f64 * self.tile_busy.len() as f64)
    }

    /// Throughput in iterations per cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.iterations as f64 / self.cycles as f64
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sim: {} iters in {} cycles (util {:.1}%, {} hops, {} buffer accesses)",
            self.iterations,
            self.cycles,
            self.utilization() * 100.0,
            self.noc_hops,
            self.buffer_accesses
        )
    }
}

/// A fault the simulator detected while executing a configuration.
///
/// Every variant is a *typed* rejection — the simulator refuses to pretend a
/// broken configuration ran, but it never takes the process down for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimFault {
    /// A configured slot sits on a PE the fault plan killed.
    DeadTileInUse {
        /// The dead tile with a configured slot.
        tile: usize,
    },
    /// An operand has no route on the alive fabric.
    Unroutable {
        /// Producing tile.
        from: usize,
        /// Consuming tile.
        to: usize,
    },
    /// An operand would arrive after its consumer fires: the static schedule
    /// is invalid for this fabric (a compiler bug, or a mapping compiled for
    /// a different fault plan).
    DataflowViolation {
        /// The late-fed consumer node id.
        node: usize,
        /// Cycle the consumer fires.
        fires_at: u64,
        /// Cycle the operand lands.
        arrives_at: u64,
    },
    /// Some DFG node never fired — the configuration is incomplete.
    MissingFirings {
        /// Firings counted.
        fired: u64,
        /// Firings expected (`nodes × iterations`).
        expected: u64,
    },
}

impl fmt::Display for SimFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimFault::DeadTileInUse { tile } => {
                write!(f, "configuration uses dead tile {tile}")
            }
            SimFault::Unroutable { from, to } => {
                write!(f, "no alive route from tile {from} to tile {to}")
            }
            SimFault::DataflowViolation { node, fires_at, arrives_at } => write!(
                f,
                "node {node} fires at {fires_at} but an operand arrives at {arrives_at}"
            ),
            SimFault::MissingFirings { fired, expected } => {
                write!(f, "{fired} firings counted, {expected} expected")
            }
        }
    }
}

impl std::error::Error for SimFault {}

/// Result of a fault-injected run: the pipeline statistics plus the ECC
/// activity on the configuration SRAM. `report.cycles` stays the *pure*
/// pipeline count (`schedule_len + (iters−1)·II` — the accounting identity
/// the oracle checks); the one-time ECC overhead is reported separately for
/// the engine to add to its end-to-end latency.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedRun {
    /// Pipeline statistics (identical identities as the healthy run).
    pub report: SimReport,
    /// ECC outcomes over the configuration SRAM under the fault plan.
    pub ecc: EccReport,
}

/// The simulator: drives one configured fabric in steady state.
#[derive(Debug)]
pub struct CgraSimulator<'a> {
    spec: &'a CgraSpec,
    dfg: &'a Dfg,
    config: &'a CgraConfig,
}

impl<'a> CgraSimulator<'a> {
    /// Creates a simulator over a fabric, kernel DFG and configuration.
    pub fn new(spec: &'a CgraSpec, dfg: &'a Dfg, config: &'a CgraConfig) -> CgraSimulator<'a> {
        CgraSimulator { spec, dfg, config }
    }

    /// Runs `iterations` loop iterations and reports statistics.
    ///
    /// # Panics
    /// Panics if the configuration violates dataflow (an operand would not
    /// have arrived when its consumer fires) — that would be a compiler bug,
    /// and the simulator exists to catch it. Serve paths that must stay up
    /// use [`CgraSimulator::try_run`] instead.
    pub fn run(&self, iterations: u64) -> SimReport {
        match self.try_run(iterations, None) {
            Ok(r) => r,
            Err(fault) => panic!("{fault}"),
        }
    }

    /// Runs under a fault plan: operand distances come from the alive-fabric
    /// routing of `plan`'s dead tiles/links, a configured slot on a dead PE
    /// is rejected, and the plan's SRAM flips are evaluated as ECC outcomes
    /// over the configuration memory
    /// (`config.size_bytes() / 8` words).
    ///
    /// # Errors
    /// Any [`SimFault`]: the configuration is unusable on this degraded
    /// fabric (compile it with the matching `ResourceMask` first).
    pub fn run_faulted(&self, iterations: u64, plan: &FaultPlan) -> Result<FaultedRun, SimFault> {
        let mask = ResourceMask::degraded(
            self.spec,
            plan.dead_tiles.iter().copied(),
            plan.dead_links.iter().copied(),
        );
        for (tile, prog) in self.config.tiles.iter().enumerate() {
            let configured = prog
                .slots
                .iter()
                .any(|s| matches!(s, SlotAction::Execute { .. }));
            if configured && !mask.tile_alive(tile) {
                return Err(SimFault::DeadTileInUse { tile });
            }
        }
        let report = self.try_run(iterations, Some(&mask))?;
        let ecc = plan
            .ecc
            .classify_sram(&plan.sram_flips, (self.config.size_bytes() / 8) as u64);
        Ok(FaultedRun { report, ecc })
    }

    /// The non-panicking core: verifies the schedule dynamically and
    /// accumulates statistics, using `mask`'s alive-fabric hop distances
    /// when given (detours around dead resources) and plain Manhattan
    /// distance otherwise.
    ///
    /// # Errors
    /// A [`SimFault`] describing the first violation found.
    pub fn try_run(
        &self,
        iterations: u64,
        mask: Option<&ResourceMask>,
    ) -> Result<SimReport, SimFault> {
        let ii = self.config.ii as u64;
        let mut report = SimReport {
            cycles: 0,
            iterations,
            ii,
            schedule_len: self.config.schedule_len as u64,
            tile_busy: vec![0; self.spec.len()],
            activations: HashMap::new(),
            noc_hops: 0,
            buffer_accesses: 0,
        };
        if iterations == 0 {
            return Ok(report);
        }
        let hops_of = |from: usize, to: usize| -> Result<u64, SimFault> {
            match mask {
                Some(m) => m
                    .hops(self.spec, from, to)
                    .map(u64::from)
                    .ok_or(SimFault::Unroutable { from, to }),
                None => Ok(self.spec.hops(from, to) as u64),
            }
        };

        // Representative probe iterations: steady state repeats with period
        // II, so the first and last iteration suffice to catch wraparound
        // bugs. A single-iteration run has only one distinct probe — the old
        // `[0, iterations - 1]` pair verified iteration 0 twice.
        let probes = if iterations == 1 {
            vec![0u64]
        } else {
            vec![0u64, iterations - 1]
        };

        // fire_time(node, iter) = first_time + iter * II — the modulo
        // schedule. Walk every firing in time order per tile and verify
        // operand arrival dynamically.
        for tile in 0..self.spec.len() {
            for slot in &self.config.tiles[tile].slots {
                let SlotAction::Execute { node, op, operands, first_time } = slot else {
                    continue;
                };
                // verify operand arrival at each probe iteration.
                for &iter in &probes {
                    let t_fire = *first_time as u64 + iter * ii;
                    for o in operands {
                        // the producing firing is `distance` iterations back
                        if o.distance as u64 > iter {
                            continue; // fed by loop prologue / initial value
                        }
                        let prod_iter = iter - o.distance as u64;
                        let arrive =
                            o.ready_at as u64 + prod_iter * ii + hops_of(o.tile, tile)?;
                        if arrive > t_fire {
                            return Err(SimFault::DataflowViolation {
                                node: node.0,
                                fires_at: t_fire,
                                arrives_at: arrive,
                            });
                        }
                    }
                }
                // accumulate statistics over all iterations
                report.tile_busy[tile] += iterations;
                *report.activations.entry(*op).or_insert(0) += iterations;
                if op.is_memory() {
                    report.buffer_accesses += iterations;
                }
                for o in operands {
                    report.noc_hops += hops_of(o.tile, tile)? * iterations;
                }
            }
        }

        report.cycles = self.config.schedule_len as u64 + (iterations - 1) * ii;
        // sanity: every node fired
        let fired: u64 = report.activations.values().sum();
        let expected = self.dfg.len() as u64 * iterations;
        if fired != expected {
            return Err(SimFault::MissingFirings { fired, expected });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_compiler::mapper::map_dfg;
    use picachu_compiler::transform::{fuse_patterns, lower_special_ops, unroll, vectorize};
    use picachu_ir::kernels::{kernel_library, relu_kernel, softmax_kernel};

    fn simulate(dfg: &Dfg, spec: &CgraSpec, iters: u64) -> SimReport {
        let m = map_dfg(dfg, spec, 17).unwrap();
        let cfg = CgraConfig::from_mapping(dfg, &m, spec);
        CgraSimulator::new(spec, dfg, &cfg).run(iters)
    }

    #[test]
    fn all_kernels_simulate_consistently() {
        let spec = CgraSpec::picachu(4, 4);
        for k in kernel_library(4) {
            for l in &k.loops {
                let d = fuse_patterns(&l.dfg);
                let r = simulate(&d, &spec, 256);
                assert_eq!(r.iterations, 256, "{}", l.label);
                assert!(r.utilization() > 0.0 && r.utilization() <= 1.0);
            }
        }
    }

    #[test]
    fn baseline_kernels_simulate_too() {
        let spec = CgraSpec::homogeneous(4, 4);
        for k in kernel_library(4) {
            for l in &k.loops {
                let d = lower_special_ops(&l.dfg);
                let r = simulate(&d, &spec, 64);
                assert!(r.cycles > 0, "{}", l.label);
            }
        }
    }

    #[test]
    fn cycles_scale_linearly_with_iterations() {
        let spec = CgraSpec::picachu(4, 4);
        let d = fuse_patterns(&relu_kernel().loops[0].dfg);
        let m = map_dfg(&d, &spec, 17).unwrap();
        let cfg = CgraConfig::from_mapping(&d, &m, &spec);
        let sim = CgraSimulator::new(&spec, &d, &cfg);
        let r1 = sim.run(100);
        let r2 = sim.run(200);
        assert_eq!(r2.cycles - r1.cycles, 100 * m.ii as u64);
    }

    #[test]
    fn memory_activations_counted() {
        let spec = CgraSpec::picachu(4, 4);
        let d = fuse_patterns(&relu_kernel().loops[0].dfg);
        let r = simulate(&d, &spec, 50);
        // relu: 1 load + 1 store per iteration
        assert_eq!(r.buffer_accesses, 100);
    }

    #[test]
    fn unrolled_throughput_scales() {
        let spec = CgraSpec::picachu(4, 4);
        let base = fuse_patterns(&relu_kernel().loops[0].dfg);
        let u4 = fuse_patterns(&unroll(&relu_kernel().loops[0].dfg, 4));
        let r1 = simulate(&base, &spec, 1000);
        let r4 = simulate(&u4, &spec, 250); // 250 iters x 4 elements
        // same element count, UF4 must be faster per element
        assert!(
            r4.cycles < r1.cycles,
            "UF4 {} cycles !< UF1 {} cycles",
            r4.cycles,
            r1.cycles
        );
    }

    #[test]
    fn vectorized_kernels_simulate() {
        let spec = CgraSpec::picachu(4, 4);
        let k = softmax_kernel(4);
        let v = vectorize(&fuse_patterns(&k.loops[2].dfg), 4);
        let r = simulate(&v.dfg, &spec, 128);
        assert!(r.cycles > 0);
        // 4 divisions per iteration after lane splitting
        assert_eq!(r.activations[&Opcode::Div], 4 * 128);
    }

    #[test]
    fn zero_iterations() {
        let spec = CgraSpec::picachu(4, 4);
        let d = fuse_patterns(&relu_kernel().loops[0].dfg);
        let m = map_dfg(&d, &spec, 17).unwrap();
        let cfg = CgraConfig::from_mapping(&d, &m, &spec);
        let r = CgraSimulator::new(&spec, &d, &cfg).run(0);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.utilization(), 0.0);
    }

    #[test]
    fn single_iteration_probes_once() {
        let spec = CgraSpec::picachu(4, 4);
        let d = fuse_patterns(&relu_kernel().loops[0].dfg);
        let m = map_dfg(&d, &spec, 17).unwrap();
        let cfg = CgraConfig::from_mapping(&d, &m, &spec);
        let r = CgraSimulator::new(&spec, &d, &cfg).run(1);
        // one iteration = exactly one schedule pass: the prologue depth
        assert_eq!(r.cycles, cfg.schedule_len as u64);
        assert_eq!(r.iterations, 1);
        assert_eq!(r.ii, m.ii as u64);
        assert_eq!(r.schedule_len, cfg.schedule_len as u64);
        // per-node stats count each firing exactly once
        let fired: u64 = r.activations.values().sum();
        assert_eq!(fired, d.len() as u64);
        assert_eq!(r.buffer_accesses, 2); // relu: 1 load + 1 store
    }

    #[test]
    fn noc_hops_positive_for_multi_tile_kernels() {
        let spec = CgraSpec::picachu(4, 4);
        let k = softmax_kernel(4);
        let d = fuse_patterns(&k.loops[1].dfg);
        let r = simulate(&d, &spec, 10);
        assert!(r.noc_hops > 0, "a 15-node kernel must route between tiles");
    }

    #[test]
    fn run_faulted_with_empty_plan_matches_healthy_run() {
        let spec = CgraSpec::picachu(4, 4);
        let d = fuse_patterns(&relu_kernel().loops[0].dfg);
        let m = map_dfg(&d, &spec, 17).unwrap();
        let cfg = CgraConfig::from_mapping(&d, &m, &spec);
        let sim = CgraSimulator::new(&spec, &d, &cfg);
        let healthy = sim.run(100);
        let faulted = sim.run_faulted(100, &FaultPlan::none()).unwrap();
        assert_eq!(faulted.report, healthy);
        assert_eq!(faulted.ecc, EccReport::default());
    }

    #[test]
    fn degraded_mapping_simulates_under_matching_plan() {
        use picachu_compiler::mapper::map_dfg_with;
        let spec = CgraSpec::picachu(4, 4);
        let d = fuse_patterns(&relu_kernel().loops[0].dfg);
        let plan = FaultPlan::dead_tile(5).with_dead_link(0, 1);
        let mask = ResourceMask::degraded(
            &spec,
            plan.dead_tiles.iter().copied(),
            plan.dead_links.iter().copied(),
        );
        let m = map_dfg_with(&d, &spec, 17, &mask, None).unwrap();
        let cfg = CgraConfig::from_mapping(&d, &m, &spec);
        let run = CgraSimulator::new(&spec, &d, &cfg)
            .run_faulted(64, &plan)
            .unwrap();
        // degraded runs keep the pure pipeline identity
        assert_eq!(
            run.report.cycles,
            cfg.schedule_len as u64 + 63 * m.ii as u64
        );
        let fired: u64 = run.report.activations.values().sum();
        assert_eq!(fired, d.len() as u64 * 64);
    }

    #[test]
    fn healthy_mapping_on_dead_tile_is_rejected_typed() {
        let spec = CgraSpec::picachu(4, 4);
        let d = fuse_patterns(&relu_kernel().loops[0].dfg);
        let m = map_dfg(&d, &spec, 17).unwrap();
        let cfg = CgraConfig::from_mapping(&d, &m, &spec);
        let sim = CgraSimulator::new(&spec, &d, &cfg);
        // kill every tile the mapping uses in turn: each must be rejected
        // with the dead-tile fault, never a panic
        let mut rejected = 0;
        for p in &m.placements {
            let err = sim.run_faulted(16, &FaultPlan::dead_tile(p.tile)).unwrap_err();
            assert_eq!(err, SimFault::DeadTileInUse { tile: p.tile });
            rejected += 1;
        }
        assert!(rejected > 0);
    }

    #[test]
    fn ecc_outcomes_reported_for_config_sram() {
        let spec = CgraSpec::picachu(4, 4);
        let d = fuse_patterns(&relu_kernel().loops[0].dfg);
        let m = map_dfg(&d, &spec, 17).unwrap();
        let cfg = CgraConfig::from_mapping(&d, &m, &spec);
        let sim = CgraSimulator::new(&spec, &d, &cfg);
        let plan = FaultPlan::none()
            .with_sram_flip(0, 1)
            .with_sram_flip(1, 2)
            .with_sram_flip(2, 3);
        let run = sim.run_faulted(10, &plan).unwrap();
        assert_eq!(run.ecc.corrected, 1);
        assert_eq!(run.ecc.detected, 1);
        assert_eq!(run.ecc.silent, 1);
        assert!(run.ecc.overhead_cycles > 0);
        // ECC overhead never leaks into the pipeline identity
        assert_eq!(
            run.report.cycles,
            cfg.schedule_len as u64 + 9 * m.ii as u64
        );
    }
}
