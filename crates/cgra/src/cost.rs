//! Analytical area/power model (Table 7, §5.3.1).
//!
//! **Substitution note (DESIGN.md §1):** the paper synthesizes Verilog with
//! Synopsys DC on a 45 nm library and uses CACTI for SRAM. This model is
//! calibrated so the *component breakdown* — the numbers Table 7 actually
//! argues from — reproduces: a 4×4 PICACHU CGRA around 1 mm² / 64 mW at
//! 1 GHz, the FP2FX / vectorized-FU / FP-FU / LUT overheads at their reported
//! percentages of a basic tile, and SRAM-dominated totals.

use picachu_compiler::arch::{CgraSpec, TileClass};
use std::fmt;

/// Area and power of one fabric or component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FabricCost {
    /// Area in mm² (45 nm).
    pub area_mm2: f64,
    /// Power in mW at 1 GHz and the given activity.
    pub power_mw: f64,
}

impl std::ops::Add for FabricCost {
    type Output = FabricCost;

    /// Component-wise sum.
    fn add(self, other: FabricCost) -> FabricCost {
        FabricCost {
            area_mm2: self.area_mm2 + other.area_mm2,
            power_mw: self.power_mw + other.power_mw,
        }
    }
}

impl fmt::Display for FabricCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} mm², {:.1} mW", self.area_mm2, self.power_mw)
    }
}

/// One FU-overhead line of §5.3.1: cost relative to a basic tile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuOverhead {
    /// Component name.
    pub name: &'static str,
    /// Extra area as a fraction of a basic tile's area.
    pub area_frac: f64,
    /// Extra power as a fraction of a basic tile's power.
    pub power_frac: f64,
}

/// The §5.3.1 overhead table: FP2FX 1.7%/0.8%, vectorized FUs 59.8%/18.4%,
/// FP FUs 11.6%/26.3%, LUT 0.5%/3.8%.
pub const FU_OVERHEADS: [FuOverhead; 4] = [
    FuOverhead { name: "FP2FX unit", area_frac: 0.017, power_frac: 0.008 },
    FuOverhead { name: "vectorized FUs", area_frac: 0.598, power_frac: 0.184 },
    FuOverhead { name: "floating-point FUs", area_frac: 0.116, power_frac: 0.263 },
    FuOverhead { name: "LUTs", area_frac: 0.005, power_frac: 0.038 },
];

/// Calibrated 45 nm / 1 GHz cost constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Basic scalar tile area (mm²).
    pub basic_tile_area: f64,
    /// Basic scalar tile power (mW) at full activity.
    pub basic_tile_power: f64,
    /// Static (leakage + clock) fraction of tile power.
    pub static_fraction: f64,
    /// One MAC unit of the systolic array (mm²).
    pub mac_area: f64,
    /// One MAC unit power at full activity (mW).
    pub mac_power: f64,
    /// SRAM area per KB (mm²), CACTI-like 45 nm.
    pub sram_area_per_kb: f64,
    /// SRAM power per KB (mW), leakage plus amortized access energy.
    pub sram_power_per_kb: f64,
    /// Interconnect/control glue ("Others" in Table 7) area (mm²).
    pub glue_area: f64,
    /// Glue power (mW).
    pub glue_power: f64,
}

impl Default for CostModel {
    /// Calibration: 16 PICACHU tiles ≈ 1.0 mm² / 64.2 mW; 1024 MACs ≈
    /// 0.4 mm² / 16.1 mW; 265 KB of SRAM ≈ 5.3 mm² / 106.9 mW; glue ≈
    /// 0.1 mm² / 0.7 mW — the Table 7 column totals.
    fn default() -> CostModel {
        let overhead_area: f64 = 1.0 + FU_OVERHEADS.iter().map(|o| o.area_frac).sum::<f64>();
        let overhead_power: f64 = 1.0 + FU_OVERHEADS.iter().map(|o| o.power_frac).sum::<f64>();
        CostModel {
            basic_tile_area: 1.0 / (16.0 * overhead_area),
            basic_tile_power: 64.2 / (16.0 * overhead_power),
            static_fraction: 0.3,
            mac_area: 0.4 / 1024.0,
            mac_power: 16.1 / 1024.0,
            sram_area_per_kb: 0.02,
            sram_power_per_kb: 0.4,
            glue_area: 0.1,
            glue_power: 0.7,
        }
    }
}

impl CostModel {
    /// Area of one tile of the given class. CoTs carry the FP2FX, LUT and
    /// divider; all PICACHU tiles carry the vectorized integer lanes and the
    /// FP pipeline. The homogeneous baseline tile is the bare basic tile.
    pub fn tile_area(&self, class: TileClass) -> f64 {
        let frac: f64 = match class {
            TileClass::Homogeneous => 0.0,
            TileClass::Basic | TileClass::Branch => {
                // vectorized lanes + FP FUs, no special units
                FU_OVERHEADS[1].area_frac + FU_OVERHEADS[2].area_frac
            }
            TileClass::Compute => FU_OVERHEADS.iter().map(|o| o.area_frac).sum(),
            // every FU plus replicated branch/predication logic
            TileClass::Universal => {
                FU_OVERHEADS.iter().map(|o| o.area_frac).sum::<f64>() + 0.12
            }
        };
        self.basic_tile_area * (1.0 + frac)
    }

    /// Peak power of one tile of the given class.
    pub fn tile_power(&self, class: TileClass) -> f64 {
        let frac: f64 = match class {
            TileClass::Homogeneous => 0.0,
            TileClass::Basic | TileClass::Branch => {
                FU_OVERHEADS[1].power_frac + FU_OVERHEADS[2].power_frac
            }
            TileClass::Compute => FU_OVERHEADS.iter().map(|o| o.power_frac).sum(),
            TileClass::Universal => {
                FU_OVERHEADS.iter().map(|o| o.power_frac).sum::<f64>() + 0.10
            }
        };
        self.basic_tile_power * (1.0 + frac)
    }

    /// Total CGRA fabric cost at a given average utilization (busy-slot
    /// fraction — e.g. `Mapping::utilization`'s `placements / (tiles × II)`
    /// from the compiled mappings, or the simulator's busy-tile fraction).
    /// Dynamic power scales with utilization; the static fraction is always
    /// paid. The factor is clamped to `[0, 1]` (and NaN to 0) so a bad
    /// caller estimate can never price the fabric below leakage or above
    /// peak; area is independent of activity.
    pub fn cgra_cost(&self, spec: &CgraSpec, utilization: f64) -> FabricCost {
        let u = if utilization.is_nan() { 0.0 } else { utilization.clamp(0.0, 1.0) };
        let mut area = 0.0;
        let mut peak = 0.0;
        for i in 0..spec.len() {
            let class = spec.tile(i).class;
            area += self.tile_area(class);
            peak += self.tile_power(class);
        }
        let power = peak * (self.static_fraction + (1.0 - self.static_fraction) * u);
        FabricCost { area_mm2: area, power_mw: power }
    }

    /// Systolic-array MAC grid cost.
    pub fn systolic_cost(&self, rows: usize, cols: usize, utilization: f64) -> FabricCost {
        let n = (rows * cols) as f64;
        FabricCost {
            area_mm2: self.mac_area * n,
            power_mw: self.mac_power
                * n
                * (self.static_fraction + (1.0 - self.static_fraction) * utilization),
        }
    }

    /// SRAM cost for a capacity in KB.
    pub fn sram_cost(&self, kb: f64) -> FabricCost {
        FabricCost {
            area_mm2: self.sram_area_per_kb * kb,
            power_mw: self.sram_power_per_kb * kb,
        }
    }

    /// The "Others" row of Table 7.
    pub fn glue_cost(&self) -> FabricCost {
        FabricCost { area_mm2: self.glue_area, power_mw: self.glue_power }
    }

    /// Energy in nJ for `cycles` at 1 GHz under the given power (mW):
    /// `mW × ns = pJ`, so `power_mw × cycles / 1000` nJ.
    pub fn energy_nj(&self, power_mw: f64, cycles: u64) -> f64 {
        power_mw * cycles as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_cgra_calibration() {
        let m = CostModel::default();
        let spec = CgraSpec::picachu(4, 4);
        let c = m.cgra_cost(&spec, 1.0);
        // CoT tiles carry all overheads, Ba/Br a subset: total must land
        // close to (and not above) the Table 7 point of 1.0 mm² / 64.2 mW.
        assert!(c.area_mm2 > 0.8 && c.area_mm2 <= 1.0, "area {c}");
        assert!(c.power_mw > 50.0 && c.power_mw <= 64.2 + 1e-9, "power {c}");
    }

    #[test]
    fn table7_sram_dominates_area() {
        let m = CostModel::default();
        let sram = m.sram_cost(265.0);
        let cgra = m.cgra_cost(&CgraSpec::picachu(4, 4), 1.0);
        let mac = m.systolic_cost(32, 32, 1.0);
        let total = sram + cgra + mac + m.glue_cost();
        assert!(sram.area_mm2 / total.area_mm2 > 0.7, "SRAM share of area");
        assert!((sram.area_mm2 - 5.3).abs() < 0.01);
        assert!((mac.area_mm2 - 0.4).abs() < 1e-9);
    }

    #[test]
    fn baseline_tile_cheaper_than_picachu_tile() {
        let m = CostModel::default();
        assert!(m.tile_area(TileClass::Homogeneous) < m.tile_area(TileClass::Basic));
        assert!(m.tile_area(TileClass::Basic) < m.tile_area(TileClass::Compute));
        assert!(m.tile_power(TileClass::Homogeneous) < m.tile_power(TileClass::Compute));
    }

    #[test]
    fn fu_overhead_table_matches_paper() {
        assert_eq!(FU_OVERHEADS[0].area_frac, 0.017);
        assert_eq!(FU_OVERHEADS[1].area_frac, 0.598);
        assert_eq!(FU_OVERHEADS[2].power_frac, 0.263);
        assert_eq!(FU_OVERHEADS[3].power_frac, 0.038);
    }

    #[test]
    fn utilization_scales_power_not_area() {
        let m = CostModel::default();
        let spec = CgraSpec::picachu(4, 4);
        let idle = m.cgra_cost(&spec, 0.0);
        let busy = m.cgra_cost(&spec, 1.0);
        assert_eq!(idle.area_mm2, busy.area_mm2);
        assert!(idle.power_mw < busy.power_mw);
        assert!(idle.power_mw > 0.0, "static power is always paid");
    }

    #[test]
    fn energy_accounting() {
        let m = CostModel::default();
        // 64.2 mW for 1000 cycles at 1 GHz = 64.2 nJ
        assert!((m.energy_nj(64.2, 1000) - 64.2).abs() < 1e-9);
    }

    #[test]
    fn homogeneous_fabric_cheaper() {
        let m = CostModel::default();
        let p = m.cgra_cost(&CgraSpec::picachu(4, 4), 1.0);
        let h = m.cgra_cost(&CgraSpec::homogeneous(4, 4), 1.0);
        assert!(h.area_mm2 < p.area_mm2);
        assert!(h.power_mw < p.power_mw);
    }
}
