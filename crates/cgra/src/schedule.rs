//! Schedule visualization and configuration reporting.
//!
//! A CGRA developer debugs mappings by looking at the modulo reservation
//! table: which tile executes what in which slot, where operands travel, and
//! how busy each resource is. This module renders a [`CgraConfig`] as a
//! human-readable reservation table plus per-tile/per-class occupancy
//! statistics — the textual stand-in for a mapping-visualizer GUI.

use crate::config::{CgraConfig, SlotAction};
use picachu_compiler::arch::{CgraSpec, TileClass};
use std::fmt::Write as _;

/// Occupancy statistics derived from a configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleStats {
    /// Fraction of (tile, slot) pairs holding an operation.
    pub slot_occupancy: f64,
    /// Busy slot count per tile class, as `(class, busy, capacity)`.
    pub per_class: Vec<(TileClass, usize, usize)>,
    /// The busiest tile index and its busy-slot count.
    pub busiest_tile: (usize, usize),
}

/// Computes occupancy statistics for a configuration on its fabric.
pub fn stats(config: &CgraConfig, spec: &CgraSpec) -> ScheduleStats {
    let ii = config.ii as usize;
    let mut per_class: Vec<(TileClass, usize, usize)> = Vec::new();
    let mut busiest = (0usize, 0usize);
    let mut busy_total = 0usize;
    for (t, prog) in config.tiles.iter().enumerate() {
        let busy = prog
            .slots
            .iter()
            .filter(|s| !matches!(s, SlotAction::Idle))
            .count();
        busy_total += busy;
        if busy > busiest.1 {
            busiest = (t, busy);
        }
        let class = spec.tile(t).class;
        match per_class.iter_mut().find(|(c, _, _)| *c == class) {
            Some(entry) => {
                entry.1 += busy;
                entry.2 += ii;
            }
            None => per_class.push((class, busy, ii)),
        }
    }
    ScheduleStats {
        slot_occupancy: busy_total as f64 / (spec.len() * ii) as f64,
        per_class,
        busiest_tile: busiest,
    }
}

/// Renders the modulo reservation table: one row per slot, one column per
/// tile, each cell the mnemonic of the scheduled operation (or `.`).
pub fn reservation_table(config: &CgraConfig, spec: &CgraSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "modulo reservation table (II = {}, {} tiles):",
        config.ii,
        spec.len()
    );
    let _ = write!(out, "{:>5} ", "slot");
    for t in 0..spec.len() {
        let _ = write!(out, "{:>12}", format!("t{t}({})", spec.tile(t).class.label()));
    }
    let _ = writeln!(out);
    for s in 0..config.ii as usize {
        let _ = write!(out, "{s:>5} ");
        for prog in &config.tiles {
            match &prog.slots[s] {
                SlotAction::Idle => {
                    let _ = write!(out, "{:>12}", ".");
                }
                SlotAction::Execute { node, op, .. } => {
                    let _ = write!(out, "{:>12}", format!("{node}:{op}"));
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use picachu_compiler::mapper::map_dfg;
    use picachu_compiler::transform::fuse_patterns;
    use picachu_ir::kernels::{relu_kernel, softmax_kernel};

    fn cfg_for(dfg: &picachu_ir::Dfg, spec: &CgraSpec) -> CgraConfig {
        let m = map_dfg(dfg, spec, 7).expect("maps");
        CgraConfig::from_mapping(dfg, &m, spec)
    }

    #[test]
    fn stats_account_every_node() {
        let spec = CgraSpec::picachu(4, 4);
        let dfg = fuse_patterns(&softmax_kernel(4).loops[1].dfg);
        let cfg = cfg_for(&dfg, &spec);
        let s = stats(&cfg, &spec);
        let busy: usize = s.per_class.iter().map(|(_, b, _)| *b).sum();
        assert_eq!(busy, dfg.len());
        assert!(s.slot_occupancy > 0.0 && s.slot_occupancy <= 1.0);
        assert!(s.busiest_tile.1 >= 1);
    }

    #[test]
    fn class_capacities_sum_to_fabric() {
        let spec = CgraSpec::picachu(4, 4);
        let dfg = fuse_patterns(&relu_kernel().loops[0].dfg);
        let cfg = cfg_for(&dfg, &spec);
        let s = stats(&cfg, &spec);
        let capacity: usize = s.per_class.iter().map(|(_, _, c)| *c).sum();
        assert_eq!(capacity, spec.len() * cfg.ii as usize);
    }

    #[test]
    fn reservation_table_renders_every_node() {
        let spec = CgraSpec::picachu(4, 4);
        let dfg = fuse_patterns(&softmax_kernel(4).loops[0].dfg);
        let cfg = cfg_for(&dfg, &spec);
        let table = reservation_table(&cfg, &spec);
        // every node's mnemonic appears
        for n in dfg.nodes() {
            assert!(
                table.contains(&format!("{}:{}", n.id, n.op)),
                "missing {} in\n{table}",
                n.id
            );
        }
        // header row mentions the tile classes
        assert!(table.contains("(Co)") && table.contains("(Br)"));
    }
}
