//! # picachu-baselines — the comparison systems of §5.4
//!
//! Every baseline executes the same [`picachu_llm::trace`] operator traces
//! behind the unified [`picachu_backend::Accelerator`] contract, so
//! end-to-end comparisons differ only in how each device handles GEMMs and
//! nonlinear operations:
//!
//! * [`cpu`] — the host-CPU fallback (systolic array for GEMM, SIMD CPU for
//!   every nonlinear op, DRAM round trips without streaming overlap);
//! * [`gpu`] — an A100-class roofline model (FP16 tensor-core peak vs HBM
//!   bandwidth, per-kernel launch overhead) behind Figs. 1, 8b and 9;
//! * [`gemmini`] — a Gemmini-class accelerator: dedicated pipelined units
//!   for ReLU/GeLU/Softmax/LayerNorm, RISC-V scalar fallback for everything
//!   else (SwiGLU, RMSNorm, RoPE), no streaming/double-buffering;
//! * [`tandem`] — a Tandem-class tightly-coupled vector processor covering
//!   all nonlinear ops at vector rate (its accuracy cost is what Table 2
//!   measures);
//! * [`homogeneous`] — a conventional scalar 4×4 CGRA (the Fig. 7a
//!   baseline): real modulo-scheduled mappings, but no heterogeneous FUs,
//!   fusion, unrolling or streaming;
//! * [`common`] — the shared systolic-hosted harness ([`common::Hosted`])
//!   that lifts the per-device cost models onto the backend contract. The
//!   latency [`Breakdown`] itself is canonical in `picachu-backend` and
//!   only re-exported here.

pub mod common;
pub mod cpu;
pub mod gemmini;
pub mod gpu;
pub mod homogeneous;
pub mod tandem;

pub use common::{Breakdown, Hosted, NonlinearExecutor, UnitCost};
pub use cpu::CpuModel;
pub use gemmini::GemminiModel;
pub use gpu::GpuModel;
pub use homogeneous::HomogeneousCgraModel;
pub use picachu_backend::{Accelerator, CompileHint, ExecutionReport};
pub use tandem::TandemModel;
