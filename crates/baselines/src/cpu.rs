//! Host-CPU nonlinear execution (the Fig. 8a "CPU" baseline).
//!
//! The paper's CPU configuration keeps GEMMs on the systolic array and runs
//! every nonlinear operation on an i7-class CPU. We model a SIMD core: each
//! operation has an amortized cycles-per-element cost (vector math library
//! rates), and every tensor made by the accelerator must cross to host
//! memory and back without streaming overlap — the data-movement penalty the
//! paper calls out.

use crate::common::{Hosted, NonlinearExecutor, UnitCost};
use picachu_backend::CompileHint;
use picachu_nonlinear::NonlinearOp;

/// SIMD-CPU cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Host link bandwidth in bytes per accelerator cycle (PCIe-class).
    pub link_bytes_per_cycle: f64,
    /// Element width in bytes (FP16 tensors).
    pub elem_bytes: f64,
}

impl Default for CpuModel {
    fn default() -> CpuModel {
        CpuModel { link_bytes_per_cycle: 16.0, elem_bytes: 2.0 }
    }
}

impl CpuModel {
    /// The CPU configuration behind the unified [`Accelerator`]
    /// (`picachu_backend::Accelerator`) contract: GEMMs on the shared
    /// systolic array, nonlinear ops on the host CPU. The host core is
    /// off-package silicon, so it contributes no accelerator area; its
    /// active power is an i7-class core running vector math (~15 W).
    pub fn hosted() -> Hosted<CpuModel> {
        Hosted::new(
            CpuModel::default(),
            UnitCost { area_mm2: 0.0, power_mw: 15_000.0, hint: CompileHint::analytical() },
        )
    }

    /// Amortized cycles per element for one operation on a SIMD core
    /// (AVX2-class vector math: exp ≈ 6 cyc/elem, cheap compares ≈ 0.6).
    pub fn cycles_per_element(op: NonlinearOp) -> f64 {
        match op {
            NonlinearOp::Relu => 0.6,
            NonlinearOp::Softmax => 6.0,
            NonlinearOp::Gelu | NonlinearOp::Geglu => 8.0,
            NonlinearOp::Silu | NonlinearOp::Swiglu => 7.0,
            NonlinearOp::LayerNorm => 3.0,
            NonlinearOp::RmsNorm => 2.5,
            NonlinearOp::Rope => 10.0,
        }
    }
}

impl NonlinearExecutor for CpuModel {
    fn name(&self) -> &'static str {
        "CPU"
    }

    fn nonlinear_cycles(&self, op: NonlinearOp, rows: usize, channel: usize) -> f64 {
        (rows * channel) as f64 * CpuModel::cycles_per_element(op)
    }

    fn data_movement_cycles(&self, op: NonlinearOp, rows: usize, channel: usize) -> f64 {
        // tensor out to host and result back, no overlap
        let tensors = op.input_arity() + 1;
        (rows * channel) as f64 * self.elem_bytes * tensors as f64 / self.link_bytes_per_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::evaluate_model;
    use picachu_llm::ModelConfig;
    use picachu_systolic::SystolicArray;

    #[test]
    fn exp_ops_cost_more_than_relu() {
        let cpu = CpuModel::default();
        let relu = cpu.nonlinear_cycles(NonlinearOp::Relu, 10, 100);
        let gelu = cpu.nonlinear_cycles(NonlinearOp::Gelu, 10, 100);
        assert!(gelu > 10.0 * relu);
    }

    #[test]
    fn gated_ops_move_more_data() {
        let cpu = CpuModel::default();
        let single = cpu.data_movement_cycles(NonlinearOp::Gelu, 10, 100);
        let gated = cpu.data_movement_cycles(NonlinearOp::Swiglu, 10, 100);
        assert!(gated > single);
    }

    #[test]
    fn nonlinear_dominates_cpu_time_at_long_seq() {
        // the Fig. 1/8a premise: with GEMMs accelerated, CPU-side nonlinear
        // work is a comparable or larger share of the runtime.
        let cpu = CpuModel::default();
        let sys = SystolicArray::new(32, 32);
        let b = evaluate_model(&cpu, &sys, &ModelConfig::llama2_7b(), 1024);
        let nl_share = (b.nonlinear + b.data_movement) / b.total();
        assert!(nl_share > 0.4, "share {nl_share}");
    }
}
