//! Gemmini-class accelerator (the Fig. 8a "Gemmini" baseline).
//!
//! Gemmini pairs the systolic array with **dedicated hardware units** for the
//! nonlinear operations it was designed around — ReLU, GeLU, Softmax and
//! LayerNorm — and offloads everything else (SwiGLU, RMSNorm, RoPE, the
//! gated variants) to its on-chip RISC-V scalar core. That asymmetry is
//! exactly what Fig. 8a shows: competitive on GPT2-XL/OPT, far behind on the
//! LLaMA models. Gemmini also lacks PICACHU's streaming/double-buffering, so
//! reduction ops pay exposed DMA time.

use crate::common::{Hosted, NonlinearExecutor, UnitCost};
use picachu_backend::CompileHint;
use picachu_nonlinear::NonlinearOp;

/// Gemmini-class cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemminiModel {
    /// Lanes of the dedicated nonlinear units (elements/cycle).
    pub dedicated_lanes: f64,
    /// RISC-V scalar fallback cost in cycles per element.
    pub scalar_cycles_per_element: f64,
    /// DMA bytes per cycle for the exposed (un-overlapped) transfers.
    pub dma_bytes_per_cycle: f64,
    /// Element width in bytes.
    pub elem_bytes: f64,
}

impl Default for GemminiModel {
    fn default() -> GemminiModel {
        GemminiModel {
            dedicated_lanes: 16.0,
            scalar_cycles_per_element: 30.0,
            dma_bytes_per_cycle: 16.0,
            elem_bytes: 2.0,
        }
    }
}

impl GemminiModel {
    /// Gemmini behind the unified `Accelerator` contract. The dedicated
    /// ReLU/GeLU/Softmax/LayerNorm pipelines plus the RISC-V scalar core
    /// are small fixed-function silicon (~0.6 mm², ~90 mW active).
    pub fn hosted() -> Hosted<GemminiModel> {
        Hosted::new(
            GemminiModel::default(),
            UnitCost { area_mm2: 0.6, power_mw: 90.0, hint: CompileHint::analytical() },
        )
    }

    /// Whether Gemmini has a dedicated unit for the operation.
    pub fn has_dedicated_unit(op: NonlinearOp) -> bool {
        matches!(
            op,
            NonlinearOp::Relu | NonlinearOp::Gelu | NonlinearOp::Softmax | NonlinearOp::LayerNorm
        )
    }
}

impl NonlinearExecutor for GemminiModel {
    fn name(&self) -> &'static str {
        "Gemmini"
    }

    fn nonlinear_cycles(&self, op: NonlinearOp, rows: usize, channel: usize) -> f64 {
        let elems = (rows * channel) as f64;
        if GemminiModel::has_dedicated_unit(op) {
            // pipelined dedicated unit; softmax makes two passes (max+exp,
            // then divide), norms two (stats, then scale)
            let passes = match op {
                NonlinearOp::Softmax | NonlinearOp::LayerNorm => 2.0,
                _ => 1.0,
            };
            elems * passes / self.dedicated_lanes
        } else {
            // RISC-V scalar core fallback
            elems * self.scalar_cycles_per_element
        }
    }

    fn data_movement_cycles(&self, op: NonlinearOp, rows: usize, channel: usize) -> f64 {
        // reduction ops round-trip through scratchpad/DRAM without
        // double-buffering; element-wise ops consume the array's output
        // directly. The scalar fallback also round-trips.
        let needs_round_trip = matches!(
            op,
            NonlinearOp::Softmax | NonlinearOp::LayerNorm | NonlinearOp::RmsNorm
        ) || !GemminiModel::has_dedicated_unit(op);
        if needs_round_trip {
            let tensors = (op.input_arity() + 1) as f64;
            (rows * channel) as f64 * self.elem_bytes * tensors / self.dma_bytes_per_cycle
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::evaluate_model;
    use crate::cpu::CpuModel;
    use picachu_llm::ModelConfig;
    use picachu_systolic::SystolicArray;

    #[test]
    fn dedicated_unit_coverage_matches_paper() {
        assert!(GemminiModel::has_dedicated_unit(NonlinearOp::Gelu));
        assert!(GemminiModel::has_dedicated_unit(NonlinearOp::Softmax));
        assert!(!GemminiModel::has_dedicated_unit(NonlinearOp::Swiglu));
        assert!(!GemminiModel::has_dedicated_unit(NonlinearOp::RmsNorm));
        assert!(!GemminiModel::has_dedicated_unit(NonlinearOp::Rope));
    }

    #[test]
    fn fallback_is_much_slower() {
        let g = GemminiModel::default();
        let fast = g.nonlinear_cycles(NonlinearOp::Gelu, 100, 100);
        let slow = g.nonlinear_cycles(NonlinearOp::Swiglu, 100, 100);
        assert!(slow > 100.0 * fast);
    }

    #[test]
    fn gemmini_beats_cpu_on_opt_but_not_llama() {
        // the Fig. 8a pattern
        let sys = SystolicArray::new(32, 32);
        let gem = GemminiModel::default();
        let cpu = CpuModel::default();
        let opt = ModelConfig::opt_6_7b();
        let llama = ModelConfig::llama2_13b();
        let gem_opt = evaluate_model(&gem, &sys, &opt, 1024).total();
        let cpu_opt = evaluate_model(&cpu, &sys, &opt, 1024).total();
        assert!(gem_opt < cpu_opt, "Gemmini should win on OPT");
        let gem_llama = evaluate_model(&gem, &sys, &llama, 1024).total();
        let cpu_llama = evaluate_model(&cpu, &sys, &llama, 1024).total();
        assert!(gem_llama > cpu_llama, "Gemmini should lose on LLaMA2");
    }
}
