//! Conventional homogeneous CGRA (the Fig. 7a baseline, end-to-end).
//!
//! A scalar 4×4 CGRA whose every tile carries the same plain ALU: no
//! heterogeneous special-function tiles, no Table 4 fusion, no unrolling,
//! no INT16 lanes — the configuration Fig. 7a's per-kernel speedups are
//! measured against, here promoted to a full end-to-end comparison target.
//! Each nonlinear kernel loop is modulo-scheduled once (UF 1) with the
//! special ops lowered to their scalar expansions, and the resulting IIs
//! price the whole trace. The memory system is equally conventional:
//! no streaming against the systolic array and no channel-wise double
//! buffering, so every operator round-trips its tensors over DMA.

use crate::common::{Hosted, NonlinearExecutor, UnitCost};
use picachu_backend::CompileHint;
use picachu_compiler::arch::CgraSpec;
use picachu_compiler::mapper::{map_dfg, Mapping};
use picachu_compiler::transform::lower_special_ops;
use picachu_ir::kernels::kernel_library;
use picachu_nonlinear::NonlinearOp;
use std::collections::HashMap;

/// Mapper seed for the baseline compilations — the same seed Fig. 7a uses,
/// so the per-kernel IIs here are the figure's baseline IIs exactly.
const BASELINE_SEED: u64 = 9;

/// Homogeneous-CGRA cost model: per-op mappings compiled once at
/// construction, plus the conventional (round-trip) memory path.
#[derive(Debug, Clone)]
pub struct HomogeneousCgraModel {
    /// One UF-1 mapping per kernel loop, per operation.
    mappings: HashMap<NonlinearOp, Vec<Mapping>>,
    /// DMA bytes per cycle for the exposed round trips.
    pub dma_bytes_per_cycle: f64,
    /// Element width in bytes.
    pub elem_bytes: f64,
}

impl Default for HomogeneousCgraModel {
    fn default() -> HomogeneousCgraModel {
        HomogeneousCgraModel::new(4, 4)
    }
}

impl HomogeneousCgraModel {
    /// Compiles every paper kernel onto an `rows × cols` homogeneous scalar
    /// fabric (lowered special ops, UF 1, no fusion).
    ///
    /// # Panics
    /// Panics if a kernel loop fails to map — a fabric misconfiguration
    /// (the 4×4 default is proven by the Fig. 7a harness), not a runtime
    /// condition.
    pub fn new(rows: usize, cols: usize) -> HomogeneousCgraModel {
        let spec = CgraSpec::homogeneous(rows, cols);
        let mut mappings: HashMap<NonlinearOp, Vec<Mapping>> = HashMap::new();
        for k in kernel_library(4) {
            let Some(op) = NonlinearOp::ALL.iter().copied().find(|o| o.name() == k.name) else {
                continue; // alternate kernels (e.g. gelu-lut) are not trace ops
            };
            let loops = k
                .loops
                .iter()
                .map(|l| {
                    map_dfg(&lower_special_ops(&l.dfg), &spec, BASELINE_SEED)
                        .unwrap_or_else(|e| panic!("{}: baseline map failed: {e}", l.label))
                })
                .collect();
            mappings.insert(op, loops);
        }
        HomogeneousCgraModel { mappings, dma_bytes_per_cycle: 16.0, elem_bytes: 2.0 }
    }

    /// The homogeneous CGRA behind the unified `Accelerator` contract.
    /// Sixteen scalar tiles are roughly the silicon of PICACHU's fabric
    /// without the special FUs (~1.1 mm², ~160 mW active).
    pub fn hosted() -> Hosted<HomogeneousCgraModel> {
        Hosted::new(
            HomogeneousCgraModel::default(),
            UnitCost {
                area_mm2: 1.1,
                power_mw: 160.0,
                hint: CompileHint { cached_kernel_compilation: true, vectorizes_int16: false },
            },
        )
    }

    /// The compiled II of loop `idx` of `op` (for tests/figures).
    pub fn loop_ii(&self, op: NonlinearOp, idx: usize) -> Option<u32> {
        self.mappings.get(&op).and_then(|ls| ls.get(idx)).map(|m| m.ii)
    }
}

impl NonlinearExecutor for HomogeneousCgraModel {
    fn name(&self) -> &'static str {
        "CGRA-base"
    }

    fn nonlinear_cycles(&self, op: NonlinearOp, rows: usize, channel: usize) -> f64 {
        let elems = (rows * channel) as u64;
        self.mappings
            .get(&op)
            .map(|loops| loops.iter().map(|m| m.cycles_for(elems)).sum::<u64>())
            .unwrap_or(0) as f64
    }

    fn data_movement_cycles(&self, op: NonlinearOp, rows: usize, channel: usize) -> f64 {
        // no streaming, no double buffering: all input tensors in and the
        // result back out over DMA, fully exposed
        let tensors = (op.input_arity() + 1) as f64;
        (rows * channel) as f64 * self.elem_bytes * tensors / self.dma_bytes_per_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::evaluate_model;
    use picachu_backend::Accelerator;
    use picachu_llm::ModelConfig;
    use picachu_systolic::SystolicArray;

    #[test]
    fn every_trace_op_has_a_compiled_kernel() {
        let m = HomogeneousCgraModel::default();
        for op in NonlinearOp::ALL {
            assert!(
                m.nonlinear_cycles(op, 4, 16) > 0.0,
                "{op:?} has no baseline mapping"
            );
        }
    }

    #[test]
    fn end_to_end_slower_than_tandem() {
        // The homogeneous baseline must lose to Tandem-class vector
        // execution (the Fig. 7a premise scaled end-to-end): its scalar
        // IIs cost multiple cycles per element.
        let sys = SystolicArray::new(32, 32);
        let cfg = ModelConfig::gpt2();
        let base = evaluate_model(&HomogeneousCgraModel::default(), &sys, &cfg, 256);
        let tan = evaluate_model(&crate::TandemModel::default(), &sys, &cfg, 256);
        assert!(base.total() > tan.total(), "{} vs {}", base.total(), tan.total());
    }

    #[test]
    fn hosted_backend_reports_sane_rows() {
        let mut b = HomogeneousCgraModel::hosted();
        let r = b.execute_model(&ModelConfig::gpt2(), 128);
        assert!(r.is_sane() && r.total() > 0.0);
        assert_eq!(r.backend, "CGRA-base");
        assert!(b.compile_hint().cached_kernel_compilation);
    }
}
